package sim

import (
	"math/rand"
	"testing"
)

// The differential test: randomized workloads — schedules at mixed near and
// far offsets, cancels, cancel-then-reschedules, events scheduled from inside
// callbacks — driven identically through the calendar-queue Engine and the
// heap-backed RefEngine, asserting bit-identical firing order. This pins the
// tentpole invariant: the queue swap must not change a single virtual-time
// result.

// diffScript is one deterministic workload: opKind selects what each fired
// event does next, so both engines execute the same decision sequence.
type diffOp struct {
	kind   int   // 0: nothing, 1: schedule near, 2: schedule far, 3: cancel a pending event, 4: cancel+reschedule same timestamp
	delay  int64 // offset for schedules, in ps
	target int   // index of the event to cancel, modulo live handles
}

func genScript(rng *rand.Rand, n int) []diffOp {
	ops := make([]diffOp, n)
	for i := range ops {
		kind := rng.Intn(5)
		var delay int64
		switch rng.Intn(3) {
		case 0: // near: within a few buckets
			delay = rng.Int63n(1 << 20)
		case 1: // mid: within the window
			delay = rng.Int63n(1 << 29)
		default: // far: multiple epochs ahead
			delay = rng.Int63n(1 << 34)
		}
		ops[i] = diffOp{kind: kind, delay: delay, target: rng.Int()}
	}
	return ops
}

func TestEngineMatchesRefEngineOnRandomWorkloads(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(0xD1FF + trial)))
		script := genScript(rng, 400)

		var calOrder, refOrder []int

		// Drive the calendar engine.
		{
			e := NewEngine()
			var live []Event
			var id int
			var runOp func(op diffOp)
			schedule := func(at Time) {
				myID := id
				id++
				opIdx := myID % len(script)
				live = append(live, e.At(at, func() {
					calOrder = append(calOrder, myID)
					runOp(script[opIdx])
				}))
			}
			runOp = func(op diffOp) {
				switch op.kind {
				case 1, 2:
					schedule(e.Now().Add(Duration(op.delay)))
				case 3:
					if len(live) > 0 {
						e.Cancel(live[op.target%len(live)])
					}
				case 4:
					if len(live) > 0 {
						i := op.target % len(live)
						h := live[i]
						if h.Pending() {
							when, _ := h.When()
							e.Cancel(h)
							// Reschedule at the identical timestamp: the
							// replacement must fire in fresh-seq order.
							schedule(when)
						}
					}
				}
			}
			for i := 0; i < 64; i++ {
				schedule(Time(script[i%len(script)].delay))
			}
			e.Run()
		}

		// Drive the reference heap engine with the same script.
		{
			e := NewRefEngine()
			var live []*RefEvent
			var id int
			var runOp func(op diffOp)
			schedule := func(at Time) {
				myID := id
				id++
				opIdx := myID % len(script)
				live = append(live, e.At(at, func() {
					refOrder = append(refOrder, myID)
					runOp(script[opIdx])
				}))
			}
			runOp = func(op diffOp) {
				switch op.kind {
				case 1, 2:
					schedule(e.Now().Add(Duration(op.delay)))
				case 3:
					if len(live) > 0 {
						e.Cancel(live[op.target%len(live)])
					}
				case 4:
					if len(live) > 0 {
						i := op.target % len(live)
						ev := live[i]
						if ev.Pending() {
							when := ev.when
							e.Cancel(ev)
							schedule(when)
						}
					}
				}
			}
			for i := 0; i < 64; i++ {
				schedule(Time(script[i%len(script)].delay))
			}
			e.Run()
		}

		if len(calOrder) != len(refOrder) {
			t.Fatalf("trial %d: fired %d events, reference fired %d", trial, len(calOrder), len(refOrder))
		}
		for i := range calOrder {
			if calOrder[i] != refOrder[i] {
				t.Fatalf("trial %d: firing order diverges at position %d: calendar %d, reference %d",
					trial, i, calOrder[i], refOrder[i])
			}
		}
	}
}

// TestEngineMatchesRefEngineRunUntil pins RunUntil horizons — including ones
// landing between calendar buckets and beyond the current window — to the
// reference semantics. Crucially, it also schedules between horizons: after a
// RunUntil has peeked at (but not consumed) the next event, new events land
// at times between Now() and that peeked event, in buckets before it, and in
// the far-future overflow tier — the seam where a peek that moved the cursor
// or window would reorder firing.
func TestEngineMatchesRefEngineRunUntil(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5EED))
	horizons := []Time{
		0, 1, 1 << calShift, 1<<calShift + 1, (calBuckets / 2) << calShift,
		calBuckets << calShift, (calBuckets + 3) << calShift, 1 << 33, 1 << 40,
	}

	e := NewEngine()
	r := NewRefEngine()
	var calOrder, refOrder []int
	id := 0
	sched := func(tm Time) {
		i := id
		id++
		e.At(tm, func() { calOrder = append(calOrder, i) })
		r.At(tm, func() { refOrder = append(refOrder, i) })
	}
	for i := 0; i < 300; i++ {
		sched(Time(rng.Int63n(1 << 33)))
	}
	// Keep a far-future overflow event pending across every horizon so each
	// RunUntil's horizon peek sees a populated overflow heap.
	sched(Time(calBuckets*20) << calShift)
	for _, h := range horizons {
		e.RunUntil(h)
		r.RunUntil(h)
		if e.Now() != r.Now() {
			t.Fatalf("horizon %v: Now() = %v, reference %v", h, e.Now(), r.Now())
		}
		if e.Pending() != r.Pending() {
			t.Fatalf("horizon %v: Pending() = %d, reference %d", h, e.Pending(), r.Pending())
		}
		if len(calOrder) != len(refOrder) {
			t.Fatalf("horizon %v: fired %d, reference %d", h, len(calOrder), len(refOrder))
		}
		// Post-peek scheduling, nearest first: at the parked clock, a few ps
		// later (almost surely before the peeked next event), the adjacent
		// bucket, a few buckets out, and multiple windows out (overflow).
		now := e.Now()
		sched(now)
		sched(now.Add(Duration(1 + rng.Int63n(8))))
		sched(now.Add(Duration(1) << calShift))
		sched(now.Add(Duration(rng.Int63n(1 << 22))))
		sched(now.Add(Duration(calBuckets*4) << calShift).Add(Duration(rng.Int63n(1 << 20))))
	}
	e.Run()
	r.Run()
	if len(calOrder) != len(refOrder) {
		t.Fatalf("fired %d events, reference fired %d", len(calOrder), len(refOrder))
	}
	for i := range refOrder {
		if calOrder[i] != refOrder[i] {
			t.Fatalf("order diverges at %d: %d vs %d", i, calOrder[i], refOrder[i])
		}
	}
}
