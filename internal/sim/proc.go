package sim

// Proc models a serial execution resource in virtual time: a CPU core, a
// pinned communication thread, or a NIC engine. Work items submitted to a
// Proc execute one at a time, in FIFO order; each item occupies the resource
// for its declared cost and its completion function runs when the cost has
// been paid.
//
// A Proc optionally charges a wake latency when it transitions from idle to
// busy. This models the granularity at which a polling thread notices new
// work (or, for a "floating" communication thread that shares a core with
// workers, the wait to be scheduled back in).
//
// The wait queue is a power-of-two ring buffer and the engine callback is a
// single method value created at construction, so steady-state Submit/dispatch
// cycles allocate nothing: the dequeue is an index bump instead of the O(n)
// copy-shift it replaced, and the per-item completion closure is gone.
type Proc struct {
	eng *Engine

	// WakeLatency is added to the first item of every busy period.
	WakeLatency Duration

	busy      bool
	ring      []procItem // power-of-two circular wait queue
	head      int
	count     int
	cur       procItem // item occupying the resource
	done      func()   // p.complete, bound once
	busySince Time
	busyTotal Duration
	executed  uint64
}

type procItem struct {
	cost Duration
	fn   func()
}

// NewProc returns an idle processor bound to eng.
func NewProc(eng *Engine) *Proc {
	p := &Proc{eng: eng}
	p.done = p.complete
	return p
}

// Engine returns the engine the processor is bound to.
func (p *Proc) Engine() *Engine { return p.eng }

// Busy reports whether the processor is currently occupied.
func (p *Proc) Busy() bool { return p.busy }

// QueueLen returns the number of items waiting behind the current one.
func (p *Proc) QueueLen() int { return p.count }

// BusyTime returns the total virtual time this processor has spent executing
// work. When called mid-item it includes the elapsed part of that item.
func (p *Proc) BusyTime() Duration {
	t := p.busyTotal
	if p.busy {
		t += p.eng.Now().Sub(p.busySince)
	}
	return t
}

// Executed returns the number of completed work items.
func (p *Proc) Executed() uint64 { return p.executed }

// Submit enqueues a work item costing cost; fn (which may be nil) runs when
// the item completes. Negative costs panic.
func (p *Proc) Submit(cost Duration, fn func()) {
	if cost < 0 {
		panic("sim: negative work cost")
	}
	if p.busy {
		p.push(procItem{cost, fn})
		return
	}
	p.busy = true
	p.busySince = p.eng.Now()
	p.start(procItem{cost + p.WakeLatency, fn})
}

func (p *Proc) start(it procItem) {
	p.cur = it
	p.eng.After(it.cost, p.done)
}

func (p *Proc) complete() {
	p.executed++
	fn := p.cur.fn
	p.cur.fn = nil
	// Run the completion before dispatching the next item so that work
	// it submits lands behind already-queued items, exactly as a real
	// thread returning from one handler and picking up the next.
	if fn != nil {
		fn()
	}
	if p.count > 0 {
		p.start(p.popFront())
		return
	}
	p.busy = false
	p.busyTotal += p.eng.Now().Sub(p.busySince)
}

func (p *Proc) push(it procItem) {
	if p.count == len(p.ring) {
		p.grow()
	}
	p.ring[(p.head+p.count)&(len(p.ring)-1)] = it
	p.count++
}

func (p *Proc) popFront() procItem {
	it := p.ring[p.head]
	p.ring[p.head] = procItem{}
	p.head = (p.head + 1) & (len(p.ring) - 1)
	p.count--
	return it
}

func (p *Proc) grow() {
	n := 2 * len(p.ring)
	if n == 0 {
		n = 8
	}
	ring := make([]procItem, n)
	for i := 0; i < p.count; i++ {
		ring[i] = p.ring[(p.head+i)&(len(p.ring)-1)]
	}
	p.ring, p.head = ring, 0
}
