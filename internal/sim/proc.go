package sim

// Proc models a serial execution resource in virtual time: a CPU core, a
// pinned communication thread, or a NIC engine. Work items submitted to a
// Proc execute one at a time, in FIFO order; each item occupies the resource
// for its declared cost and its completion function runs when the cost has
// been paid.
//
// A Proc optionally charges a wake latency when it transitions from idle to
// busy. This models the granularity at which a polling thread notices new
// work (or, for a "floating" communication thread that shares a core with
// workers, the wait to be scheduled back in).
type Proc struct {
	eng *Engine

	// WakeLatency is added to the first item of every busy period.
	WakeLatency Duration

	busy      bool
	queue     []procItem
	busySince Time
	busyTotal Duration
	executed  uint64
}

type procItem struct {
	cost Duration
	fn   func()
}

// NewProc returns an idle processor bound to eng.
func NewProc(eng *Engine) *Proc { return &Proc{eng: eng} }

// Engine returns the engine the processor is bound to.
func (p *Proc) Engine() *Engine { return p.eng }

// Busy reports whether the processor is currently occupied.
func (p *Proc) Busy() bool { return p.busy }

// QueueLen returns the number of items waiting behind the current one.
func (p *Proc) QueueLen() int { return len(p.queue) }

// BusyTime returns the total virtual time this processor has spent executing
// work. When called mid-item it includes the elapsed part of that item.
func (p *Proc) BusyTime() Duration {
	t := p.busyTotal
	if p.busy {
		t += p.eng.Now().Sub(p.busySince)
	}
	return t
}

// Executed returns the number of completed work items.
func (p *Proc) Executed() uint64 { return p.executed }

// Submit enqueues a work item costing cost; fn (which may be nil) runs when
// the item completes. Negative costs panic.
func (p *Proc) Submit(cost Duration, fn func()) {
	if cost < 0 {
		panic("sim: negative work cost")
	}
	if p.busy {
		p.queue = append(p.queue, procItem{cost, fn})
		return
	}
	p.busy = true
	p.busySince = p.eng.Now()
	p.start(procItem{cost + p.WakeLatency, fn})
}

func (p *Proc) start(it procItem) {
	p.eng.After(it.cost, func() {
		p.executed++
		// Run the completion before dispatching the next item so that work
		// it submits lands behind already-queued items, exactly as a real
		// thread returning from one handler and picking up the next.
		if it.fn != nil {
			it.fn()
		}
		if len(p.queue) > 0 {
			next := p.queue[0]
			copy(p.queue, p.queue[1:])
			p.queue = p.queue[:len(p.queue)-1]
			p.start(next)
			return
		}
		p.busy = false
		p.busyTotal += p.eng.Now().Sub(p.busySince)
	})
}
