package sim

import (
	"fmt"
	"testing"
)

// traceRec is one fired event in a rank's observation stream: virtual time
// plus a payload identifying the logical event. Bit-identity of these
// per-rank streams across shard counts is the exactness criterion.
type traceRec struct {
	at  Time
	tag uint64
}

// quantum is the timestamp granularity of the synthetic workload: every
// delay is a whole number of quanta, and every scheduled event adds a
// globally unique sub-quantum offset. Unique timestamps make the workload's
// firing order a pure function of timestamps — same-instant ties between a
// cross-shard arrival and an independently scheduled local event are the one
// place serial and sharded tie-breaking legitimately differ (serial breaks
// by global scheduling order, which no parallel admission can reconstruct;
// see DESIGN.md §5.12), and the fabric's jitter makes such ties measure-zero
// in real workloads. Tie-breaking that IS preserved (same-source sends,
// same-rank scheduling) gets its own deterministic tests below.
const quantum = Duration(1 << 20)

// runWorkload drives a synthetic multi-rank message-passing workload on any
// Domain. Every rank owns an RNG and a bounded event budget; each event
// records itself, then randomly schedules local follow-ups and cross-rank
// sends at >= lookQ quanta of lookahead distance, the shape the fabric
// produces. All randomness is drawn in the observing rank's execution order,
// so identical per-rank firing order implies identical draws implies
// identical traces — any conservative-sync bug shows up as a divergence.
func runWorkload(dom Domain, ranks int, seed uint64, events, lookQ int) [][]traceRec {
	lookahead := quantum * Duration(lookQ)
	traces := make([][]traceRec, ranks)
	rngs := make([]*RNG, ranks)
	budget := make([]int, ranks)
	offs := make([]uint64, ranks)
	for r := 0; r < ranks; r++ {
		rngs[r] = NewRNG(seed + uint64(r)*0x9e3779b97f4a7c15)
		budget[r] = events
	}
	// nextOff returns a globally unique offset < quantum, drawn in the
	// calling rank's execution order (hence identically across shardings).
	nextOff := func(rank int) Time {
		o := offs[rank]*uint64(ranks) + uint64(rank)
		offs[rank]++
		return Time(o)
	}
	alignUp := func(t Time) Time {
		q := Time(quantum)
		return (t + q - 1) / q * q
	}
	var fire func(rank int, tag uint64)
	fire = func(rank int, tag uint64) {
		eng := dom.RankEngine(rank)
		traces[rank] = append(traces[rank], traceRec{at: eng.Now(), tag: tag})
		if budget[rank] <= 0 {
			return
		}
		budget[rank]--
		rng := rngs[rank]
		n := rng.Intn(3)
		for i := 0; i < n; i++ {
			base := alignUp(eng.Now())
			switch rng.Intn(3) {
			case 0: // local follow-up, possibly within the current quantum
				at := base + Time(quantum)*Time(rng.Intn(3)) + nextOff(rank)
				next := tag*8 + uint64(i) + 1
				eng.At(at, func() { fire(rank, next) })
			case 1: // cross-rank send at the lookahead floor
				dst := rng.Intn(ranks)
				at := base.Add(lookahead) + nextOff(rank)
				next := tag*8 + uint64(i) + 2
				dom.CrossAt(rank, dst, at, func() { fire(dst, next) })
			default: // cross-rank send with extra wire delay
				dst := rng.Intn(ranks)
				at := base.Add(lookahead+quantum*Duration(rng.Intn(3))) + nextOff(rank)
				next := tag*8 + uint64(i) + 3
				dom.CrossAt(rank, dst, at, func() { fire(dst, next) })
			}
		}
	}
	for r := 0; r < ranks; r++ {
		rank := r
		at := Time(quantum)*Time(rank%5+1) + nextOff(rank)
		dom.RankEngine(rank).At(at, func() { fire(rank, uint64(rank)<<32) })
	}
	dom.Run()
	return traces
}

func diffTraces(t *testing.T, label string, want, got [][]traceRec) {
	t.Helper()
	for r := range want {
		if len(want[r]) != len(got[r]) {
			t.Fatalf("%s: rank %d fired %d events, serial fired %d", label, r, len(got[r]), len(want[r]))
		}
		for i := range want[r] {
			if want[r][i] != got[r][i] {
				t.Fatalf("%s: rank %d event %d = %+v, serial %+v", label, r, i, got[r][i], want[r][i])
			}
		}
	}
}

// The tentpole differential: the same workload on the serial engine and on
// Parallel domains with shards in {1, 2, 4, 8} must produce bit-identical
// per-rank event streams.
func TestParallelMatchesSerialEngine(t *testing.T) {
	const lookQ = 2
	for _, ranks := range []int{1, 3, 8, 16} {
		for _, seed := range []uint64{1, 42, 0xdead} {
			serial := runWorkload(NewEngine(), ranks, seed, 40, lookQ)
			for _, shards := range []int{1, 2, 4, 8} {
				p := NewParallel(ranks, shards, quantum*lookQ)
				got := runWorkload(p, ranks, seed, 40, lookQ)
				diffTraces(t, fmt.Sprintf("ranks=%d seed=%d shards=%d", ranks, seed, shards), serial, got)
				if p.Pending() != 0 {
					t.Fatalf("ranks=%d shards=%d: %d events still pending after Run", ranks, shards, p.Pending())
				}
			}
		}
	}
}

// Repeated runs of the same sharded configuration must agree with each other
// (and with serial) even under scheduler noise; -race makes this the shard
// handoff race test.
func TestParallelDeterministicAcrossRepeats(t *testing.T) {
	const ranks, shards, lookQ = 12, 4, 1
	serial := runWorkload(NewEngine(), ranks, 7, 60, lookQ)
	for rep := 0; rep < 8; rep++ {
		got := runWorkload(NewParallel(ranks, shards, quantum*lookQ), ranks, 7, 60, lookQ)
		diffTraces(t, fmt.Sprintf("repeat %d", rep), serial, got)
	}
}

func TestParallelStopHaltsAllShards(t *testing.T) {
	const ranks, shards = 8, 4
	p := NewParallel(ranks, shards, Duration(1000))
	fired := make([]int, shards)
	for r := 0; r < ranks; r++ {
		rank := r
		sh := p.ShardOf(rank)
		var tick func()
		tick = func() {
			fired[sh]++
			p.RankEngine(rank).After(500, tick)
		}
		p.RankEngine(rank).At(0, tick)
	}
	// Stop from inside rank 0's execution once it has done some work.
	stopAt := 200
	var watch func()
	watch = func() {
		if fired[0] >= stopAt {
			p.Stop()
			return
		}
		p.RankEngine(0).After(250, watch)
	}
	p.RankEngine(0).At(0, watch)

	end := p.Run()
	if fired[0] < stopAt {
		t.Fatalf("stopped before the trigger: shard 0 fired %d", fired[0])
	}
	total := 0
	for _, n := range fired {
		total += n
	}
	if total > stopAt*shards*4 {
		t.Fatalf("stop did not halt promptly: %d events fired (end clock %v)", total, end)
	}
	// The stop was consumed: a fresh Run drains nothing... there is still
	// pending work, so arm a pre-stop and verify it aborts immediately.
	p.Stop()
	before := p.Fired()
	p.Run()
	if p.Fired() != before {
		t.Fatalf("pre-armed domain stop fired %d events", p.Fired()-before)
	}
}

// A shard engine's own armed stop (e.g. a failure handler calling
// RankEngine(r).Stop()) must stop the whole domain at the window boundary.
func TestParallelShardEngineStopStopsDomain(t *testing.T) {
	const ranks, shards = 8, 4
	p := NewParallel(ranks, shards, Duration(1000))
	perShard := make([]int, shards) // each element touched only by its shard
	for r := 0; r < ranks; r++ {
		rank := r
		sh := p.ShardOf(rank)
		var tick func()
		tick = func() {
			perShard[sh]++
			p.RankEngine(rank).After(600, tick)
		}
		p.RankEngine(rank).At(0, tick)
	}
	p.RankEngine(ranks-1).At(5000, func() { p.RankEngine(ranks - 1).Stop() })
	p.Run()
	count := 0
	for _, n := range perShard {
		count += n
	}
	if count == 0 {
		t.Fatal("nothing fired before the shard stop")
	}
	if count > ranks*100 {
		t.Fatalf("shard stop did not propagate: %d events fired", count)
	}
}

func TestParallelCrossAtLookaheadViolationPanics(t *testing.T) {
	p := NewParallel(4, 2, Duration(1000))
	defer func() {
		if recover() == nil {
			t.Fatal("cross-shard CrossAt below lookahead did not panic")
		}
	}()
	// Rank 0 is shard 0, rank 3 is shard 1: 999 < lookahead 1000.
	p.CrossAt(0, 3, Time(999), func() {})
}

func TestParallelSameShardCrossAtIgnoresLookahead(t *testing.T) {
	p := NewParallel(4, 2, Duration(1000))
	ran := false
	p.CrossAt(0, 1, Time(3), func() { ran = true }) // both ranks on shard 0
	if got := p.Run(); got != 3 || !ran {
		t.Fatalf("Run() = %v (ran=%v), want 3 (true)", got, ran)
	}
}

func TestBlockOwnerPartition(t *testing.T) {
	for _, c := range []struct{ ranks, shards int }{{8, 1}, {8, 2}, {8, 8}, {7, 3}, {1024, 8}, {5, 4}} {
		prev := 0
		counts := make([]int, c.shards)
		for r := 0; r < c.ranks; r++ {
			s := blockOwner(r, c.ranks, c.shards)
			if s < 0 || s >= c.shards {
				t.Fatalf("blockOwner(%d, %d, %d) = %d out of range", r, c.ranks, c.shards, s)
			}
			if s < prev {
				t.Fatalf("blockOwner not monotone at rank %d (%d/%d)", r, c.ranks, c.shards)
			}
			prev = s
			counts[s]++
		}
		for s, n := range counts {
			if n == 0 {
				t.Fatalf("shard %d empty for ranks=%d shards=%d", s, c.ranks, c.shards)
			}
			if n > (c.ranks+c.shards-1)/c.shards+1 {
				t.Fatalf("shard %d owns %d ranks of %d/%d: unbalanced", s, n, c.ranks, c.shards)
			}
		}
	}
}

// Two cross-shard sends from the same source to the same destination at the
// same timestamp must fire in send order — the inbox's (when, src, seq) sort
// reproduces exactly the serial engine's generation-order tie-break for this
// case, because srcSeq increments in the source's execution order.
func TestParallelSameSourceTieOrder(t *testing.T) {
	const L = Duration(1000)
	run := func(dom Domain) []int {
		var order []int
		dom.RankEngine(0).At(0, func() {
			at := dom.RankEngine(0).Now().Add(L)
			for i := 0; i < 5; i++ {
				i := i
				dom.CrossAt(0, 3, at, func() { order = append(order, i) })
			}
		})
		dom.Run()
		return order
	}
	serial := run(NewEngine())
	sharded := run(NewParallel(4, 2, L))
	if len(serial) != 5 || len(sharded) != 5 {
		t.Fatalf("fired %d serial / %d sharded events, want 5 each", len(serial), len(sharded))
	}
	for i := range serial {
		if serial[i] != i || sharded[i] != i {
			t.Fatalf("tie order: serial %v, sharded %v, want send order", serial, sharded)
		}
	}
}

// FuzzInboxOrder fuzzes the cross-shard handoff directly: arbitrary staged
// timestamps, sources, and interleavings must always be admitted in (when,
// src shard, src seq) order and produce serial-identical traces.
func FuzzInboxOrder(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(2), uint8(20))
	f.Add(uint64(99), uint8(9), uint8(3), uint8(35))
	f.Add(uint64(0xfeed), uint8(16), uint8(8), uint8(10))
	f.Fuzz(func(t *testing.T, seed uint64, ranks, shards, events uint8) {
		nr := int(ranks)%16 + 1
		ns := int(shards)%8 + 1
		ev := int(events) % 48
		const lookQ = 1
		serial := runWorkload(NewEngine(), nr, seed, ev, lookQ)
		got := runWorkload(NewParallel(nr, ns, quantum*lookQ), nr, seed, ev, lookQ)
		diffTraces(t, fmt.Sprintf("ranks=%d shards=%d", nr, ns), serial, got)
	})
}
