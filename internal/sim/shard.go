package sim

// A Domain is the scheduling surface of one simulation, spanning one or more
// shards. Every layer of the stack that used to hold the single *Engine now
// holds a Domain: the serial engine itself satisfies the interface (one
// shard, zero lookahead), so existing call sites that pass a *Engine compile
// and behave exactly as before, while a *Parallel domain (psim.go) spreads
// the same simulation across host cores.
//
// The contract that makes conservative parallel execution exact:
//
//   - every per-rank object (NIC engine Procs, library timers, worker
//     threads) is built on RankEngine(rank) and is only ever touched from
//     that engine's callbacks;
//   - the ONLY cross-rank channel is CrossAt, and a cross-shard CrossAt must
//     target a time at least the shard pair's lookahead past the source
//     rank's clock — Lookahead() in the uniform case, or the tighter
//     per-pair bound when a distance matrix is installed
//     (Parallel.SetLookahead with fabric.LookaheadMatrix). In this codebase
//     that is the fabric's wire latency floor for the pair, which every
//     inter-rank message pays before it can touch the destination.
//
// Violating the second rule panics rather than silently reordering events.
type Domain interface {
	// RankEngine returns the engine that owns rank's events. All of a
	// rank's self-scheduling goes straight to this engine.
	RankEngine(rank int) *Engine

	// CrossAt schedules fn at absolute time t on dst's engine, from within
	// src's execution. Same-shard calls are ordinary At; cross-shard calls
	// are staged in the destination shard's inbox and admitted when its
	// conservative window reaches t.
	CrossAt(src, dst int, t Time, fn func())

	// Shards returns the number of shards (1 for a serial engine).
	Shards() int

	// ShardOf returns the shard index owning rank.
	ShardOf(rank int) int

	// Lookahead returns the minimum cross-shard scheduling distance over
	// all shard pairs (zero for a serial engine, where any distance is
	// legal). Individual pairs may allow more; see Parallel.SetLookahead.
	Lookahead() Duration

	// Now returns the domain clock: the serial engine's clock, or the
	// maximum shard clock. Only meaningful outside Run on a parallel
	// domain — mid-run, shards legitimately disagree by up to Lookahead.
	Now() Time

	// Run executes the simulation to completion (or Stop) and returns the
	// time of the last fired event.
	Run() Time

	// Stop arms a domain-wide stop: a serial engine stops after the current
	// event, a parallel domain stops every shard on its next event check.
	Stop()
}

// Engine implements Domain as the one-shard degenerate case.

// RankEngine returns the engine itself: a serial engine owns every rank.
func (e *Engine) RankEngine(rank int) *Engine { return e }

// CrossAt is plain At on a serial engine; src and dst only matter when
// shards exist.
func (e *Engine) CrossAt(src, dst int, t Time, fn func()) { e.At(t, fn) }

// Shards returns 1: the serial engine is a single shard.
func (e *Engine) Shards() int { return 1 }

// ShardOf returns 0 for every rank.
func (e *Engine) ShardOf(rank int) int { return 0 }

// Lookahead returns zero: with one shard there is no synchronization
// distance to respect.
func (e *Engine) Lookahead() Duration { return 0 }

// blockOwner maps rank onto one of shards contiguous blocks. Contiguity is
// deliberate: neighboring ranks exchange the most traffic in the paper's
// workloads (2D block-cyclic tile ownership, ring-structured control
// protocols), so block partitions keep the bulk of it intra-shard.
func blockOwner(rank, ranks, shards int) int {
	return rank * shards / ranks
}
