package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
)

// Parallel is a sharded discrete-event domain: ranks are partitioned into
// contiguous blocks, each block owns a private Engine (calendar queue,
// event pool, clock), and the blocks advance conservatively in lockstep
// windows of one lookahead.
//
// # Synchronization protocol (time-window barrier)
//
// Each round, the coordinator computes the global minimum pending timestamp
// T — over every shard's calendar AND every staged-but-unadmitted inbox
// event — and opens the window [T, T+L), L the lookahead. Every shard then,
// in parallel: (1) admits the staged cross-shard arrivals with timestamps
// inside the window into its calendar, in (timestamp, source shard, source
// sequence) order, and (2) fires its local events with timestamps strictly
// below T+L. A barrier separates rounds.
//
// # Exactness
//
// Firing order within a shard is exactly the engine's (timestamp, seq)
// order, and the seq assignment is deterministic: local events are numbered
// in execution order (deterministic given a deterministic workload), and
// staged arrivals are admitted at a deterministic round in a deterministic
// sort order. The conservative window makes the staged set per round
// execution-independent: a cross-shard event generated in round k targets a
// time >= T_k + L (CrossAt enforces the lookahead distance against the
// source clock, and the source clock is >= T_k), so it is never admissible
// in round k itself — by the time a round opens, every event that can land
// in its window is already in the inbox, no matter how the previous rounds'
// shards interleaved in real time. Per-rank event sequences are therefore
// bit-identical across shard counts and to the serial engine; the
// differential tests in psim_test.go and internal/bench pin this.
//
// # Inbox bound
//
// Inboxes are append-only slices drained every round, so their occupancy is
// naturally bounded by one round's cross-shard traffic: a staged event needs
// a fired source event with a timestamp inside a single lookahead window,
// and the arrival lands at most one serialization + fault delay past the
// window after next. There is no artificial capacity that could block a
// mid-window sender (a block inside a window would deadlock the barrier);
// InboxHighWater exposes the realized bound for monitoring.
type Parallel struct {
	shards    []*pshard
	owner     []int // rank -> shard index
	lookahead Duration

	// halt is the domain-wide stop flag: checked by every shard before
	// every event, armed by Stop from any goroutine.
	halt atomic.Bool

	// Round barrier. horizon and quit are published by the coordinator
	// before the round counter bump (atomic round/done establish the
	// happens-before edges both ways).
	round   atomic.Uint64
	done    atomic.Int64
	horizon Time
	quit    bool

	rounds uint64 // windows executed (stats)
}

// pshard is one shard: a private engine plus the cross-shard inbox.
type pshard struct {
	id  int
	eng *Engine
	par *Parallel

	// crossSeq stamps outgoing cross-shard events from this shard, in
	// execution order; the (when, src shard, seq) triple is the
	// deterministic admission order at the destination. Only this shard's
	// goroutine touches it.
	crossSeq uint64

	mu      chan struct{} // 1-slot semaphore guarding inbox (see lock())
	inbox   []crossEvent
	inboxHW int

	batch []crossEvent // drain scratch, owner-goroutine only
}

type crossEvent struct {
	when Time
	src  int32
	seq  uint64
	fn   func()
}

func (sh *pshard) lock()   { sh.mu <- struct{}{} }
func (sh *pshard) unlock() { <-sh.mu }

// NewParallel builds a domain of `shards` engines over `ranks` ranks with
// the given conservative lookahead. shards is clamped to ranks; a single
// shard degenerates to exactly the serial engine (no goroutines, no
// windows). lookahead must be positive when shards > 1 — with zero
// lookahead no window can admit parallelism conservatively.
func NewParallel(ranks, shards int, lookahead Duration) *Parallel {
	if ranks <= 0 {
		panic("sim: NewParallel needs at least one rank")
	}
	if shards <= 0 {
		panic("sim: NewParallel needs at least one shard")
	}
	if shards > ranks {
		shards = ranks
	}
	if shards > 1 && lookahead <= 0 {
		panic("sim: sharded execution needs a positive lookahead")
	}
	p := &Parallel{lookahead: lookahead, owner: make([]int, ranks)}
	for r := range p.owner {
		p.owner[r] = blockOwner(r, ranks, shards)
	}
	p.shards = make([]*pshard, shards)
	for s := range p.shards {
		p.shards[s] = &pshard{id: s, eng: NewEngine(), par: p, mu: make(chan struct{}, 1)}
	}
	return p
}

// RankEngine returns the engine owning rank's events.
func (p *Parallel) RankEngine(rank int) *Engine { return p.shards[p.owner[rank]].eng }

// Shards returns the shard count.
func (p *Parallel) Shards() int { return len(p.shards) }

// ShardOf returns the shard index owning rank.
func (p *Parallel) ShardOf(rank int) int { return p.owner[rank] }

// Lookahead returns the conservative window length.
func (p *Parallel) Lookahead() Duration { return p.lookahead }

// Rounds returns how many synchronization windows Run has executed.
func (p *Parallel) Rounds() uint64 { return p.rounds }

// InboxHighWater returns the largest staged-event backlog any shard's inbox
// reached — the realized bound of the handoff queues.
func (p *Parallel) InboxHighWater() int {
	hw := 0
	for _, sh := range p.shards {
		if sh.inboxHW > hw {
			hw = sh.inboxHW
		}
	}
	return hw
}

// Fired sums the event counts of every shard.
func (p *Parallel) Fired() uint64 {
	var n uint64
	for _, sh := range p.shards {
		n += sh.eng.Fired()
	}
	return n
}

// Pending sums the scheduled events of every shard, including staged
// cross-shard events not yet admitted.
func (p *Parallel) Pending() int {
	n := 0
	for _, sh := range p.shards {
		n += sh.eng.Pending()
		sh.lock()
		n += len(sh.inbox)
		sh.unlock()
	}
	return n
}

// Now returns the maximum shard clock: the time of the last fired event once
// Run has returned. Mid-run it is only a lower bound on global progress.
func (p *Parallel) Now() Time {
	var t Time
	for _, sh := range p.shards {
		if n := sh.eng.Now(); n > t {
			t = n
		}
	}
	return t
}

// Stop arms a domain-wide stop: every shard halts before its next event and
// Run returns at the current window boundary. Safe to call from any shard's
// execution (a communication-engine failure handler, typically) or from
// outside the domain entirely. Like Engine.Stop, the armed stop is consumed
// by the run it ends — or by the next Run when armed while idle.
func (p *Parallel) Stop() { p.halt.Store(true) }

// CrossAt schedules fn at absolute time t on dst's engine from within src's
// execution. Cross-shard calls must respect the lookahead distance measured
// against the source shard's clock; violations panic, because admitting such
// an event could require rewinding a destination shard that already advanced
// past t.
func (p *Parallel) CrossAt(src, dst int, t Time, fn func()) {
	s, d := p.owner[src], p.owner[dst]
	if s == d {
		p.shards[d].eng.At(t, fn)
		return
	}
	se := p.shards[s].eng
	if t < se.now.Add(p.lookahead) {
		panic(fmt.Sprintf("sim: cross-shard event at %v from rank %d (clock %v) violates lookahead %v",
			t, src, se.now, p.lookahead))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ssh := p.shards[s]
	seq := ssh.crossSeq
	ssh.crossSeq++
	dsh := p.shards[d]
	dsh.lock()
	dsh.inbox = append(dsh.inbox, crossEvent{when: t, src: int32(s), seq: seq, fn: fn})
	if len(dsh.inbox) > dsh.inboxHW {
		dsh.inboxHW = len(dsh.inbox)
	}
	dsh.unlock()
}

// Run executes the sharded simulation until every calendar and inbox drains
// or a stop is armed, and returns the time of the last fired event. One
// worker goroutine per extra shard lives for the duration of the call; the
// caller's goroutine drives shard 0 and the window barrier.
func (p *Parallel) Run() Time {
	n := len(p.shards)
	if n == 1 {
		// Degenerate case: the serial engine IS the one shard (CrossAt
		// never stages), so serial semantics apply verbatim.
		return p.shards[0].eng.Run()
	}

	p.quit = false
	// Capture the round baseline before the workers start: only this
	// goroutine bumps the counter, so a worker that begins after the first
	// window opens still sees the bump relative to this value.
	base := p.round.Load()
	for _, sh := range p.shards[1:] {
		go p.work(sh, base)
	}

	for !p.halt.Load() {
		T, ok := p.nextTime()
		if !ok {
			break
		}
		p.openWindow(T.Add(p.lookahead))
		p.rounds++
		if p.anyShardStopped() {
			break
		}
	}

	// Dismiss the workers through one final round.
	p.quit = true
	p.openWindow(0)

	// Consume stop flags, mirroring Engine.Run.
	p.halt.Store(false)
	for _, sh := range p.shards {
		sh.eng.stopped = false
	}
	return p.Now()
}

// openWindow publishes the horizon, releases every shard for one round, runs
// shard 0 on the calling goroutine, and waits for the barrier.
func (p *Parallel) openWindow(w Time) {
	p.horizon = w
	p.done.Store(0)
	p.round.Add(1)
	if !p.quit {
		p.shards[0].runWindow(w)
	}
	workers := int64(len(p.shards) - 1)
	for p.done.Load() < workers {
		runtime.Gosched()
	}
}

// work is the per-shard worker loop: spin (yielding) on the round counter,
// run the published window, signal the barrier. The atomic round/done pair
// carries the happens-before edges that make the coordinator's pre-round
// writes (horizon, quit, staged inboxes, engine state from its own shard-0
// window) visible here and this shard's effects visible back.
func (p *Parallel) work(sh *pshard, last uint64) {
	for {
		r := p.round.Load()
		if r == last {
			runtime.Gosched()
			continue
		}
		last = r
		if p.quit {
			p.done.Add(1)
			return
		}
		sh.runWindow(p.horizon)
		p.done.Add(1)
	}
}

// nextTime returns the global minimum pending timestamp across calendars and
// inboxes. Called at the barrier, so the uncontended inbox locks are for the
// race detector's benefit more than for exclusion.
func (p *Parallel) nextTime() (Time, bool) {
	var best Time
	found := false
	for _, sh := range p.shards {
		if w, ok := sh.eng.peek(); ok && (!found || w < best) {
			best, found = w, true
		}
		sh.lock()
		for i := range sh.inbox {
			if w := sh.inbox[i].when; !found || w < best {
				best, found = w, true
			}
		}
		sh.unlock()
	}
	return best, found
}

func (p *Parallel) anyShardStopped() bool {
	for _, sh := range p.shards {
		if sh.eng.stopped {
			return true
		}
	}
	return false
}

// runWindow admits this shard's staged arrivals below the horizon and fires
// its local events below the horizon.
func (sh *pshard) runWindow(w Time) {
	sh.drainInbox(w)
	sh.eng.runBefore(w, &sh.par.halt)
}

// drainInbox moves staged events with timestamps inside the window into the
// calendar, in (when, source shard, source seq) order. The order is the
// whole point: engine seq numbers are assigned at insertion, so a
// deterministic insertion order makes tie-breaking among same-timestamp
// arrivals — and against local events scheduled later in the window —
// independent of real-time arrival interleaving.
func (sh *pshard) drainInbox(w Time) {
	sh.lock()
	for i := 0; i < len(sh.inbox); {
		if sh.inbox[i].when < w {
			sh.batch = append(sh.batch, sh.inbox[i])
			last := len(sh.inbox) - 1
			sh.inbox[i] = sh.inbox[last]
			sh.inbox[last] = crossEvent{}
			sh.inbox = sh.inbox[:last]
		} else {
			i++
		}
	}
	sh.unlock()
	if len(sh.batch) == 0 {
		return
	}
	sort.Slice(sh.batch, func(i, j int) bool {
		a, b := sh.batch[i], sh.batch[j]
		if a.when != b.when {
			return a.when < b.when
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for _, ce := range sh.batch {
		sh.eng.At(ce.when, ce.fn)
	}
	for i := range sh.batch {
		sh.batch[i] = crossEvent{}
	}
	sh.batch = sh.batch[:0]
}
