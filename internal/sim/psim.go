package sim

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// Parallel is a sharded discrete-event domain: ranks are partitioned into
// contiguous blocks, each block owns a private Engine (calendar queue,
// event pool, clock), and the blocks advance conservatively in rounds
// bounded by pairwise lookahead.
//
// # Synchronization protocol (v2: published slots, pairwise horizons)
//
// Every shard j publishes its earliest pending timestamp E_j — the minimum
// over its calendar and its staged-but-unadmitted inbox — into a padded
// atomic slot. Each round, the coordinator scans the slots lock-free and
// computes a per-shard horizon
//
//	H_i = min over j != i of (E_j + L[j][i])
//
// where D[j][i] is the pairwise distance: the min-plus closure of the
// lookahead matrix installed by SetLookahead (without one every entry is
// the global lookahead). The closure matters: an event pending at shard j
// can reach shard i through relays, and the shortest path bounds the
// earliest possible arrival. Shards whose earliest event lies below their
// horizon run the round in parallel: each admits staged arrivals strictly
// below H_i into its calendar in (timestamp, source shard, source
// sequence) order, fires local events strictly below H_i, republishes its
// slot, and arrives at the barrier. Shards with nothing below their
// horizon are elided — no wakeup, no barrier arrival.
//
// The static horizon alone is not safe: it bounds arrivals seeded by
// events pending at OTHER shards, but a shard's own window can seed a
// reflection — fire an event, stage a cross send, and have the chain
// relay back below a clock that advanced too far. The reflection bound is
// enforced dynamically instead of pessimistically: a window starts with no
// self-bound, and the moment it stages a cross event at time t toward
// shard j, its bound clamps to t + D[j][i] (the earliest any chain seeded
// by that send can return). Until the first send, any local event below
// H_i is safe — a future send happens at or after the current clock, so
// its reflection lands strictly later. A round that stages nothing
// therefore keeps its full horizon; when only one shard has events at all,
// H_i is unbounded and a communication-free stretch drains in a single
// round (window coalescing). Once the round ends, the staged send is
// visible in the destination's published slot and the static term takes
// over the protection.
//
// The protocol takes no locks on the happy path: the slot scan, the
// horizon computation, the work-queue dispatch, and the barrier are all
// plain atomics. Runner goroutines are capped at GOMAXPROCS (shard
// semantics are unchanged — one goroutine just runs several shards'
// windows per round), and barrier waits spin briefly before parking on a
// per-waiter channel, so idle cores are released instead of burned.
// Tuning gates each optimization independently for differential testing;
// with every gate off the horizons collapse to the v1 protocol's single
// global window [T, T+L).
//
// # Exactness
//
// Firing order within a shard is exactly the engine's (timestamp, seq)
// order, and the seq assignment is deterministic: local events are numbered
// in execution order (deterministic given a deterministic workload), and
// staged arrivals are admitted at a deterministic round in a deterministic
// sort order. The conservative horizon makes the admissible staged set
// execution-independent: a cross event staged by shard j during a round
// targets a time >= E_j + L[j][i] >= E_j + D[j][i] >= H_i (CrossAt
// enforces the raw pair distance against the source clock, and the closure
// entry is never larger), so it is never admissible in the round that
// stages it — by the time a round opens, every event that can land below
// any shard's horizon is already in that shard's inbox, no matter how
// previous rounds' shards interleaved in real time. Admission batches are
// therefore disjoint, consecutive timestamp bands: shrinking horizons
// (disabling optimizations) only splits a batch, never reorders across
// batches, so every Tuning combination yields the same per-rank event
// sequences; the differential tests in psim_test.go and internal/bench pin
// this against the serial engine and RefEngine.
//
// # Inbox bound
//
// Inboxes are append-only slices drained every round a shard runs, so
// occupancy is bounded by the cross traffic of the rounds since the shard
// last ran. There is no artificial capacity that could block a mid-window
// sender (a block inside a window would deadlock the barrier);
// InboxHighWater exposes the realized bound for monitoring.
type Parallel struct {
	shards    []*pshard
	owner     []int // rank -> shard index
	lookahead Duration
	look      [][]Duration // raw pairwise lookahead matrix, nil = uniform
	dist      [][]Duration // min-plus closure of look (horizon distances)
	tune      Tuning

	// halt is the domain-wide stop flag: checked by every shard before
	// every event, armed by Stop from any goroutine.
	halt atomic.Bool

	// slots[i] is shard i's published state, read lock-free by the
	// coordinator's scan. One cache line per shard.
	slots []pslot

	// Round coordination. The coordinator writes the round plan (horizons,
	// active set), then resets arrived, then cursor and nActive — in that
	// order — then bumps round; the bump is the release fence runners
	// synchronize on. The cursor packs the round's low 32 bits into its
	// high half and the work-queue index into its low half, and claims are
	// CAS increments that carry the expected tag, so a straggler still
	// inside runActive when the next plan is published can never claim a
	// slot against the new plan with a stale index (see runActive).
	round   paddedUint64
	cursor  paddedUint64 // (round tag << 32) | work-queue index into active[:nActive]
	arrived paddedInt64  // barrier arrivals this round
	nActive paddedInt64
	quit    atomic.Bool
	quitAck atomic.Int64

	active  []*pshard // round plan: the shards that run, coordinator-written
	workers []parker  // runner goroutines beyond the coordinator
	nw      int       // runners actually spawned by this Run
	coord   parker

	eMin []uint64 // scratch: per-shard earliest pending, coordinator-only

	rounds uint64 // rounds executed (stats)
	elided uint64 // shard-rounds skipped by idle elision (stats)
}

// Tuning gates the protocol's optimizations independently. Every
// combination is conservative (each gate can only shrink horizons or run
// more shards per round than strictly needed), so all eight produce
// bit-identical event sequences — the differential tests run the matrix.
// The zero value is the v1 protocol; NewParallel defaults to
// AllOptimizations. Set before Run; not safe to change mid-run.
type Tuning struct {
	// PairwiseLookahead uses the per-shard-pair distance matrix installed
	// by SetLookahead for horizons and CrossAt validation. Off (or with no
	// matrix installed), every pair uses the single global lookahead.
	PairwiseLookahead bool

	// ElideIdleShards skips shards with no calendar or inbox event below
	// their horizon: no wakeup, no barrier arrival.
	ElideIdleShards bool

	// CoalesceWindows lets each shard's horizon be purely data-driven
	// (min_j E_j + D[j][i], clamped mid-window by the reflection guard).
	// Off, horizons are additionally capped at one lookahead past the
	// global minimum — the v1 window [T, T+L) — forcing one round per
	// lookahead quantum. The cap makes the guard vacuous: any send's
	// reflection lands at least two lookaheads past the global minimum.
	CoalesceWindows bool
}

// AllOptimizations is the default Tuning: every fast path on.
func AllOptimizations() Tuning {
	return Tuning{PairwiseLookahead: true, ElideIdleShards: true, CoalesceWindows: true}
}

// noTime is the published-slot encoding of "no pending event". Time is a
// non-negative int64, so uint64(t) preserves order and leaves ^0 free.
const noTime = ^uint64(0)

// timeUnbounded marks a horizon beyond every representable timestamp: the
// shard drains its calendar completely instead of running a bounded
// window.
const timeUnbounded = Time(1<<63 - 1)

// pslot is one shard's published state: next is the shard's calendar
// minimum as of its last window, inboxMin the minimum staged-but-unadmitted
// inbox timestamp (maintained under the inbox lock by senders and drains).
// Padded to its own cache line so neighbor publishes don't false-share.
type pslot struct {
	next     atomic.Uint64
	inboxMin atomic.Uint64
	_        [112]byte
}

type paddedUint64 struct {
	atomic.Uint64
	_ [56]byte
}

type paddedInt64 struct {
	atomic.Int64
	_ [56]byte
}

// parker is one waiter's parking slot for the bounded-spin-then-park
// barrier. state is the CAS handshake (awake/parked); wake carries at most
// one token. The invariant — a token is sent only after a successful
// parked->awake CAS and consumed by exactly one receive — keeps the
// channel empty whenever its owner is not parked.
type parker struct {
	state atomic.Int32
	wake  chan struct{}
	_     [52]byte
}

const (
	pkAwake  = 0
	pkParked = 1
)

// Barrier spin budget: pure loads first (a window on another core usually
// ends within a microsecond), then yielding spins, then park. On a host
// with fewer cores than waiters the pure spins fail fast and the Gosched
// phase hands the CPU to whoever holds the work.
const (
	spinPure  = 4096
	spinYield = 64
)

// pshard is one shard: a private engine plus the cross-shard inbox.
type pshard struct {
	id  int
	eng *Engine
	par *Parallel

	// horizon is this round's static bound, written by the coordinator
	// during planning (before the round bump that releases runners).
	horizon Time

	// guard is the dynamic reflection bound: reset to unbounded at window
	// start, clamped by CrossAt to staged-time + return-distance on the
	// first (earliest) cross send of the window. Only the goroutine
	// executing this shard's window touches it; the engine re-reads it
	// before every event.
	guard Time

	// crossSeq stamps outgoing cross-shard events from this shard, in
	// execution order; the (when, src shard, seq) triple is the
	// deterministic admission order at the destination. Only this shard's
	// window execution touches it.
	crossSeq uint64

	mu      chan struct{} // 1-slot semaphore guarding inbox (see lock())
	inbox   []crossEvent
	inboxHW int

	batch []crossEvent // drain scratch, window-execution only
}

type crossEvent struct {
	when Time
	src  int32
	seq  uint64
	fn   func()
}

func (sh *pshard) lock()   { sh.mu <- struct{}{} }
func (sh *pshard) unlock() { <-sh.mu }

// NewParallel builds a domain of `shards` engines over `ranks` ranks with
// the given conservative lookahead. shards is clamped to ranks; a single
// shard degenerates to exactly the serial engine (no goroutines, no
// windows). lookahead must be positive when shards > 1 — with zero
// lookahead no window can admit parallelism conservatively. All protocol
// optimizations default on (AllOptimizations); SetTuning overrides.
func NewParallel(ranks, shards int, lookahead Duration) *Parallel {
	if ranks <= 0 {
		panic("sim: NewParallel needs at least one rank")
	}
	if shards <= 0 {
		panic("sim: NewParallel needs at least one shard")
	}
	if shards > ranks {
		shards = ranks
	}
	if shards > 1 && lookahead <= 0 {
		panic("sim: sharded execution needs a positive lookahead")
	}
	p := &Parallel{
		lookahead: lookahead,
		owner:     make([]int, ranks),
		tune:      AllOptimizations(),
	}
	for r := range p.owner {
		p.owner[r] = blockOwner(r, ranks, shards)
	}
	p.shards = make([]*pshard, shards)
	for s := range p.shards {
		p.shards[s] = &pshard{id: s, eng: NewEngine(), par: p, mu: make(chan struct{}, 1)}
	}
	p.slots = make([]pslot, shards)
	p.eMin = make([]uint64, shards)
	p.active = make([]*pshard, shards)
	p.workers = make([]parker, shards-1)
	for i := range p.workers {
		p.workers[i].wake = make(chan struct{}, 1)
	}
	p.coord.wake = make(chan struct{}, 1)
	return p
}

// SetTuning replaces the optimization gates. Call before Run.
func (p *Parallel) SetTuning(t Tuning) { p.tune = t }

// Tuning returns the active optimization gates.
func (p *Parallel) Tuning() Tuning { return p.tune }

// SetLookahead installs a per-shard-pair lookahead matrix: m[j][i] is the
// guaranteed minimum distance of any cross event from a rank in shard j to
// a rank in shard i, measured against the source clock. Off-diagonal
// entries must be positive; the diagonal is ignored (same-shard scheduling
// is direct). The global lookahead becomes the matrix's off-diagonal
// minimum, so the uniform bound stays available as the conservative
// fallback when Tuning.PairwiseLookahead is off. Horizon math uses the
// matrix's min-plus closure (shortest relay path), computed here once; the
// raw entries remain the CrossAt validation bound. The matrix is retained,
// not copied. Call before Run; a 1-shard domain ignores it.
func (p *Parallel) SetLookahead(m [][]Duration) {
	n := len(p.shards)
	if n == 1 {
		return
	}
	if len(m) != n {
		panic(fmt.Sprintf("sim: lookahead matrix is %dx?, want %dx%d", len(m), n, n))
	}
	min := Duration(0)
	for i := range m {
		if len(m[i]) != n {
			panic(fmt.Sprintf("sim: lookahead matrix row %d has %d entries, want %d", i, len(m[i]), n))
		}
		for j, d := range m[i] {
			if i == j {
				continue
			}
			if d <= 0 {
				panic(fmt.Sprintf("sim: lookahead matrix entry [%d][%d] = %v must be positive", i, j, d))
			}
			if min == 0 || d < min {
				min = d
			}
		}
	}
	// Floyd–Warshall min-plus closure over the off-diagonal entries, with
	// a zero diagonal so a "path through yourself" is a no-op.
	dist := make([][]Duration, n)
	for i := range dist {
		dist[i] = make([]Duration, n)
		copy(dist[i], m[i])
		dist[i][i] = 0
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				// Entries are non-negative, so the sum overflows iff it
				// wraps below an operand; an overflowed relay path is
				// effectively infinite and can never be the shorter one.
				v := dist[i][k] + dist[k][j]
				if v >= dist[i][k] && v < dist[i][j] {
					dist[i][j] = v
				}
			}
		}
	}
	p.look = m
	p.dist = dist
	p.lookahead = min
}

// pairLookahead returns the enforced minimum distance for cross events
// from shard s to shard d — the raw matrix entry when one is installed and
// the pairwise gate is on, the global floor otherwise.
func (p *Parallel) pairLookahead(s, d int) Duration {
	if p.look != nil && p.tune.PairwiseLookahead {
		return p.look[s][d]
	}
	return p.lookahead
}

// pairDist returns the horizon distance from shard s to shard d: the
// min-plus closure entry (the earliest any chain seeded at s can reach d),
// or the global floor without a matrix. closure <= raw, so horizons from
// pairDist are never wider than CrossAt's validation admits.
func (p *Parallel) pairDist(s, d int) Duration {
	if p.dist != nil && p.tune.PairwiseLookahead {
		return p.dist[s][d]
	}
	return p.lookahead
}

// RankEngine returns the engine owning rank's events.
func (p *Parallel) RankEngine(rank int) *Engine { return p.shards[p.owner[rank]].eng }

// Shards returns the shard count.
func (p *Parallel) Shards() int { return len(p.shards) }

// ShardOf returns the shard index owning rank.
func (p *Parallel) ShardOf(rank int) int { return p.owner[rank] }

// Lookahead returns the global conservative window floor (the minimum
// pairwise distance when a matrix is installed).
func (p *Parallel) Lookahead() Duration { return p.lookahead }

// Rounds returns how many synchronization rounds Run has executed.
func (p *Parallel) Rounds() uint64 { return p.rounds }

// ElidedShardRounds returns how many shard-rounds idle elision skipped:
// shards that were not woken for a round because they had nothing below
// their horizon.
func (p *Parallel) ElidedShardRounds() uint64 { return p.elided }

// InboxHighWater returns the largest staged-event backlog any shard's inbox
// reached — the realized bound of the handoff queues.
func (p *Parallel) InboxHighWater() int {
	hw := 0
	for _, sh := range p.shards {
		if sh.inboxHW > hw {
			hw = sh.inboxHW
		}
	}
	return hw
}

// Fired sums the event counts of every shard.
func (p *Parallel) Fired() uint64 {
	var n uint64
	for _, sh := range p.shards {
		n += sh.eng.Fired()
	}
	return n
}

// Pending sums the scheduled events of every shard, including staged
// cross-shard events not yet admitted.
func (p *Parallel) Pending() int {
	n := 0
	for _, sh := range p.shards {
		n += sh.eng.Pending()
		sh.lock()
		n += len(sh.inbox)
		sh.unlock()
	}
	return n
}

// Now returns the maximum shard clock: the time of the last fired event once
// Run has returned. Mid-run it is only a lower bound on global progress.
func (p *Parallel) Now() Time {
	var t Time
	for _, sh := range p.shards {
		if n := sh.eng.Now(); n > t {
			t = n
		}
	}
	return t
}

// Stop arms a domain-wide stop: every shard halts before its next event and
// Run returns at the current round boundary. Safe to call from any shard's
// execution (a communication-engine failure handler, typically) or from
// outside the domain entirely. Like Engine.Stop, the armed stop is consumed
// by the run it ends — or by the next Run when armed while idle.
func (p *Parallel) Stop() { p.halt.Store(true) }

// CrossAt schedules fn at absolute time t on dst's engine from within src's
// execution. Cross-shard calls must respect the pairwise lookahead distance
// measured against the source shard's clock; violations panic, because
// admitting such an event could require rewinding a destination shard that
// already advanced past t.
func (p *Parallel) CrossAt(src, dst int, t Time, fn func()) {
	s, d := p.owner[src], p.owner[dst]
	if s == d {
		p.shards[d].eng.At(t, fn)
		return
	}
	se := p.shards[s].eng
	if la := p.pairLookahead(s, d); t < se.now.Add(la) {
		panic(fmt.Sprintf("sim: cross-shard event at %v from rank %d (clock %v) violates lookahead %v",
			t, src, se.now, la))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ssh := p.shards[s]
	seq := ssh.crossSeq
	ssh.crossSeq++
	// Clamp the source window's reflection guard: a chain seeded by this
	// send can return no earlier than the staged time plus the shortest
	// path back.
	if g := t.Add(p.pairDist(d, s)); g < ssh.guard {
		ssh.guard = g
	}
	dsh := p.shards[d]
	dsh.lock()
	dsh.inbox = append(dsh.inbox, crossEvent{when: t, src: int32(s), seq: seq, fn: fn})
	if len(dsh.inbox) > dsh.inboxHW {
		dsh.inboxHW = len(dsh.inbox)
	}
	if w := uint64(t); w < p.slots[d].inboxMin.Load() {
		p.slots[d].inboxMin.Store(w)
	}
	dsh.unlock()
}

// Run executes the sharded simulation until every calendar and inbox drains
// or a stop is armed, and returns the time of the last fired event. Runner
// goroutines are capped at GOMAXPROCS-1 beyond the caller's (running more
// runnable goroutines than cores would only add scheduler churn to the
// barrier); the caller's goroutine plans rounds, runs shard windows off the
// same work queue as the runners, and coordinates the barrier.
func (p *Parallel) Run() Time {
	n := len(p.shards)
	if n == 1 {
		// Degenerate case: the serial engine IS the one shard (CrossAt
		// never stages), so serial semantics apply verbatim.
		return p.shards[0].eng.Run()
	}

	// Seed the published slots from current state: events scheduled since
	// the last Run (setup, or a stopped run's leftovers) predate any
	// publishing window.
	for i, sh := range p.shards {
		if w, ok := sh.eng.peek(); ok {
			p.slots[i].next.Store(uint64(w))
		} else {
			p.slots[i].next.Store(noTime)
		}
		sh.lock()
		min := noTime
		for j := range sh.inbox {
			if w := uint64(sh.inbox[j].when); w < min {
				min = w
			}
		}
		p.slots[i].inboxMin.Store(min)
		sh.unlock()
	}

	nw := runtime.GOMAXPROCS(0)
	if nw > n {
		nw = n
	}
	nw-- // the calling goroutine is runner zero
	p.nw = nw
	p.quit.Store(false)
	p.quitAck.Store(0)
	base := p.round.Load()
	for i := 0; i < nw; i++ {
		go p.work(&p.workers[i], base)
	}

	for !p.halt.Load() {
		if !p.openRound() {
			break
		}
		if p.anyShardStopped() {
			break
		}
	}

	// Dismiss the runners through one final empty round, using the same
	// publish sequence as openRound so stragglers cannot misread the plan.
	p.quit.Store(true)
	r := p.round.Load() + 1
	p.arrived.Store(0)
	p.cursor.Store(cursorTag(r))
	p.nActive.Store(0)
	p.round.Store(r)
	for i := 0; i < nw; i++ {
		p.unpark(&p.workers[i])
	}
	for p.quitAck.Load() < int64(nw) {
		runtime.Gosched()
	}

	// Consume stop flags, mirroring Engine.Run.
	p.halt.Store(false)
	for _, sh := range p.shards {
		sh.eng.stopped = false
	}
	return p.Now()
}

// openRound plans one round from the published slots, releases the
// runners, executes shard windows off the shared work queue, and waits out
// the barrier. Returns false when no shard has anything pending. The whole
// happy path is lock-free and allocation-free: a slot scan, the horizon
// arithmetic, atomic plan publication, and the spin-then-park barrier.
func (p *Parallel) openRound() bool {
	// Scan the published slots: E_i = min(calendar next, staged inbox min).
	found := false
	for i := range p.slots {
		e := p.slots[i].next.Load()
		if im := p.slots[i].inboxMin.Load(); im < e {
			e = im
		}
		p.eMin[i] = e
		if e != noTime {
			found = true
		}
	}
	if !found {
		return false
	}

	// Horizons. With coalescing off, cap every horizon one lookahead past
	// the global minimum — the v1 fixed window.
	cap := noTime
	if !p.tune.CoalesceWindows {
		g := noTime
		for _, e := range p.eMin {
			if e < g {
				g = e
			}
		}
		cap = satAdd(g, p.lookahead)
	}
	nact := 0
	for i, sh := range p.shards {
		h := cap
		for j := range p.shards {
			if j == i || p.eMin[j] == noTime {
				continue
			}
			if b := satAdd(p.eMin[j], p.pairDist(j, i)); b < h {
				h = b
			}
		}
		if h > uint64(timeUnbounded) {
			sh.horizon = timeUnbounded
		} else {
			sh.horizon = Time(h)
		}
		if p.tune.ElideIdleShards && p.eMin[i] >= h {
			p.elided++
			continue
		}
		p.active[nact] = sh
		nact++
	}
	p.rounds++

	// Publish the plan, then release. Order matters twice over. Horizons
	// and the active set are plain writes made visible by the seq-cst
	// stores that follow. And the cursor's round tag must be rewritten
	// BEFORE nActive: a straggler still in runActive (awaitArrivals only
	// waits for window arrivals, not for runners to exit the claim loop)
	// validates its exhausted cursor against nActive, so nActive may only
	// grow after the cursor already carries the new tag — then the
	// straggler's claim CAS is doomed to fail and it retires. With the old
	// order a straggler could pair the old exhausted index with the new,
	// larger nActive and claim a slot of the new plan, double-running one
	// shard's window.
	r := p.round.Load() + 1
	p.arrived.Store(0)
	p.cursor.Store(cursorTag(r))
	p.nActive.Store(int64(nact))
	p.round.Store(r)
	// Wake parked runners until the plan is staffed; only a successful
	// wake counts, because a worker that is already awake (spinning, or
	// straggling out of the previous round) joins via the round bump on
	// its own and must not absorb a wake meant for a parked one.
	need := nact - 1 // this goroutine takes a share
	for i := 0; i < p.nw && need > 0; i++ {
		if p.unpark(&p.workers[i]) {
			need--
		}
	}

	p.runActive(r)
	p.awaitArrivals(int64(nact))
	return true
}

// satAdd is saturating horizon arithmetic: any bound past the largest
// representable timestamp is unbounded (no event can exist beyond it).
func satAdd(t uint64, d Duration) uint64 {
	if t == noTime {
		return noTime
	}
	s := t + uint64(d)
	if s < t {
		return noTime
	}
	return s
}

// cursorTag is the round-tagged cursor base: the round's low 32 bits in
// the high half, index zero in the low half. Truncation to 32 bits leaves
// a theoretical ABA only if one goroutine stalls mid-claim for 2^32
// consecutive rounds — impossible for a runnable goroutine in practice.
func cursorTag(r uint64) uint64 { return r << 32 }

// runActive pulls shard windows off round r's work queue until it is
// exhausted. Shared by the coordinator and every runner; the tagged atomic
// cursor is the only coordination. A claim is a CAS increment that carries
// the caller's round tag, so it can only succeed against the plan the
// caller was released for: once the coordinator rewrites the cursor for
// the next round, every in-flight claim fails its CAS, observes the
// foreign tag on reload, and retires. Exhaustion is checked against
// nActive, which is safe because the coordinator re-tags the cursor before
// enlarging nActive — a CAS that succeeds proves the cursor (and hence
// nActive) was still this round's when the index was read.
func (p *Parallel) runActive(r uint64) {
	tag := cursorTag(r)
	for {
		c := p.cursor.Load()
		if c&^uint64(1<<32-1) != tag {
			return // the plan this cursor indexes is no longer ours
		}
		i := int64(c & (1<<32 - 1))
		if i >= p.nActive.Load() {
			return
		}
		if !p.cursor.CompareAndSwap(c, c+1) {
			continue
		}
		sh := p.active[i]
		sh.runWindow(sh.horizon)
		p.arrive()
	}
}

// arrive signals one shard window's completion; the last arrival of the
// round wakes the coordinator if it parked.
func (p *Parallel) arrive() {
	if p.arrived.Add(1) == p.nActive.Load() {
		if p.coord.state.CompareAndSwap(pkParked, pkAwake) {
			p.coord.wake <- struct{}{}
		}
	}
}

// awaitArrivals is the coordinator's barrier wait: bounded spin, then park
// on the coordinator channel. The arrival counter's final increment (or the
// wake token sent after it) carries the happens-before edge that makes
// every shard's window effects visible before the next plan.
func (p *Parallel) awaitArrivals(target int64) {
	for i := 0; i < spinPure; i++ {
		if p.arrived.Load() >= target {
			return
		}
	}
	for i := 0; i < spinYield; i++ {
		runtime.Gosched()
		if p.arrived.Load() >= target {
			return
		}
	}
	c := &p.coord
	c.state.Store(pkParked)
	// Recheck after declaring the park: the last arrival may have read
	// pkAwake just before the store, in which case no token is coming.
	if p.arrived.Load() >= target {
		if c.state.CompareAndSwap(pkParked, pkAwake) {
			return
		}
		<-c.wake // a racing arrival won the CAS; consume its token
		return
	}
	<-c.wake
}

// unpark wakes a parked runner and reports whether it actually woke one; a
// no-op returning false if the runner is spinning or already awake (it
// will observe the round bump on its own).
func (p *Parallel) unpark(w *parker) bool {
	if w.state.CompareAndSwap(pkParked, pkAwake) {
		w.wake <- struct{}{}
		return true
	}
	return false
}

// work is the runner loop: await a round bump, pull shard windows off the
// work queue, repeat — until the quit round. The round counter load that
// observes a bump synchronizes with the coordinator's plan writes; this
// runner's window effects travel back through its barrier arrivals.
func (p *Parallel) work(w *parker, last uint64) {
	for {
		last = p.awaitRound(w, last)
		if p.quit.Load() {
			p.quitAck.Add(1)
			return
		}
		p.runActive(last)
	}
}

// awaitRound blocks until the round counter moves past last: bounded spin,
// then park until the coordinator's unpark. Returns the new round value.
func (p *Parallel) awaitRound(w *parker, last uint64) uint64 {
	for i := 0; i < spinPure; i++ {
		if r := p.round.Load(); r != last {
			return r
		}
	}
	for i := 0; i < spinYield; i++ {
		runtime.Gosched()
		if r := p.round.Load(); r != last {
			return r
		}
	}
	w.state.Store(pkParked)
	// Recheck after declaring the park: the coordinator may have bumped
	// the round just before the store and skipped the unpark.
	if r := p.round.Load(); r != last {
		if w.state.CompareAndSwap(pkParked, pkAwake) {
			return r
		}
		<-w.wake // a racing unpark won the CAS; consume its token
		return p.round.Load()
	}
	<-w.wake
	return p.round.Load()
}

func (p *Parallel) anyShardStopped() bool {
	for _, sh := range p.shards {
		if sh.eng.stopped {
			return true
		}
	}
	return false
}

// runWindow admits this shard's staged arrivals below the static horizon,
// fires its local events below the horizon and the dynamic reflection
// guard, and republishes the shard's slot.
func (sh *pshard) runWindow(w Time) {
	sh.drainInbox(w)
	sh.guard = timeUnbounded
	sh.eng.runGuarded(w, &sh.par.halt, &sh.guard)
	slot := &sh.par.slots[sh.id]
	if t, ok := sh.eng.peek(); ok {
		slot.next.Store(uint64(t))
	} else {
		slot.next.Store(noTime)
	}
}

// drainInbox moves staged events with timestamps inside the window into the
// calendar, in (when, source shard, source seq) order, and republishes the
// minimum of what remains staged. The order is the whole point: engine seq
// numbers are assigned at insertion, so a deterministic insertion order
// makes tie-breaking among same-timestamp arrivals — and against local
// events scheduled later in the window — independent of real-time arrival
// interleaving.
func (sh *pshard) drainInbox(w Time) {
	unbounded := w == timeUnbounded
	slot := &sh.par.slots[sh.id]
	sh.lock()
	if len(sh.inbox) == 0 {
		sh.unlock()
		return
	}
	rest := noTime
	for i := 0; i < len(sh.inbox); {
		if unbounded || sh.inbox[i].when < w {
			sh.batch = append(sh.batch, sh.inbox[i])
			last := len(sh.inbox) - 1
			sh.inbox[i] = sh.inbox[last]
			sh.inbox[last] = crossEvent{}
			sh.inbox = sh.inbox[:last]
		} else {
			if t := uint64(sh.inbox[i].when); t < rest {
				rest = t
			}
			i++
		}
	}
	slot.inboxMin.Store(rest)
	sh.unlock()
	if len(sh.batch) == 0 {
		return
	}
	sortCross(sh.batch)
	for _, ce := range sh.batch {
		sh.eng.At(ce.when, ce.fn)
	}
	for i := range sh.batch {
		sh.batch[i] = crossEvent{}
	}
	sh.batch = sh.batch[:0]
}

// sortCross is an allocation-free insertion sort by (when, src, seq).
// Batches are small (one round's traffic into one shard) and near-sorted
// (senders stage in execution order), the regime where insertion sort beats
// sort.Slice — and sort.Slice's closure allocates, which the round hot
// path must not.
func sortCross(b []crossEvent) {
	for i := 1; i < len(b); i++ {
		e := b[i]
		j := i - 1
		for j >= 0 && crossAfter(b[j], e) {
			b[j+1] = b[j]
			j--
		}
		b[j+1] = e
	}
}

func crossAfter(a, b crossEvent) bool {
	if a.when != b.when {
		return a.when > b.when
	}
	if a.src != b.src {
		return a.src > b.src
	}
	return a.seq > b.seq
}
