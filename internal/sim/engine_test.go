package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Errorf("Now() = %v, want 30", e.Now())
	}
}

func TestEngineTieBreaksBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie order = %v, want ascending", got)
		}
	}
}

func TestEngineEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.At(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("fired = %v, want [10 15]", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.At(10, func() { ran = true })
	if !ev.Pending() {
		t.Fatal("event should be pending")
	}
	e.Cancel(ev)
	if ev.Pending() {
		t.Fatal("event should not be pending after cancel")
	}
	e.Run()
	if ran {
		t.Fatal("canceled event ran")
	}
	e.Cancel(ev) // double-cancel is a no-op
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []int
	var evs []Event
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, e.At(Time(i*10), func() { got = append(got, i) }))
	}
	for i := 3; i < 20; i += 4 {
		e.Cancel(evs[i])
	}
	e.Run()
	for _, v := range got {
		if v >= 3 && (v-3)%4 == 0 {
			t.Fatalf("canceled event %d ran", v)
		}
	}
	if len(got) != 15 {
		t.Fatalf("got %d events, want 15", len(got))
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 5 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for i := 1; i <= 5; i++ {
		tt := Time(i * 10)
		e.At(tt, func() { fired = append(fired, tt) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Now() != 25 {
		t.Fatalf("Now() = %v, want 25", e.Now())
	}
	e.Run()
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
}

func TestHeapOrderProperty(t *testing.T) {
	// Property: for any set of (time, id) pairs, the engine fires them in
	// nondecreasing time order with scheduling order as tie-break.
	f := func(times []uint16) bool {
		e := NewEngine()
		type rec struct {
			when Time
			seq  int
		}
		var got []rec
		for i, tm := range times {
			when := Time(tm)
			seq := i
			e.At(when, func() { got = append(got, rec{when, seq}) })
		}
		e.Run()
		for i := 1; i < len(got); i++ {
			if got[i].when < got[i-1].when {
				return false
			}
			if got[i].when == got[i-1].when && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return len(got) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ps"},
		{5 * Nanosecond, "5ns"},
		{3 * Microsecond, "3µs"},
		{42 * Millisecond, "42ms"},
		{2 * Second, "2s"},
		{-5 * Nanosecond, "-5ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	if d := FromSeconds(1.5); d != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", d)
	}
	if d := FromMicroseconds(2); d != 2*Microsecond {
		t.Errorf("FromMicroseconds(2) = %v", d)
	}
	if d := FromNanoseconds(7); d != 7*Nanosecond {
		t.Errorf("FromNanoseconds(7) = %v", d)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v", got)
	}
	// Saturation instead of overflow wrap.
	if d := FromSeconds(1e20); d <= 0 {
		t.Errorf("FromSeconds(1e20) = %v, want saturated positive", d)
	}
}
