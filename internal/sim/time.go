// Package sim provides a deterministic discrete-event simulation engine with
// a virtual clock. It is the substrate on which every other component of this
// repository runs: network links, NICs, CPU cores, communication threads and
// runtime schedulers are all modeled as event producers whose costs are
// charged in virtual time.
//
// The engine is intentionally single-threaded: determinism (bit-identical
// event ordering for a given seed) is a design requirement, because the
// experiments in the paper compare two communication backends and the
// comparison must not be polluted by host-machine scheduling noise.
// Independent engines may run concurrently on separate goroutines; a single
// engine must only be driven from one goroutine.
package sim

import "fmt"

// Time is an absolute virtual timestamp in picoseconds.
//
// Picosecond resolution is required because wire serialization of small
// messages on a 100 Gbit/s link takes single-digit nanoseconds (64 bytes =
// 5.12 ns) and rounding such costs to nanoseconds would distort message-rate
// limited experiments. An int64 of picoseconds covers about 106 days of
// virtual time, far beyond any experiment in this repository.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration int64

// Common durations, following the time package idiom.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Nanoseconds returns d as a floating-point number of nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// Microseconds returns d as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Seconds returns d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d < 0:
		return "-" + (-d).String()
	case d < Nanosecond:
		return fmt.Sprintf("%dps", int64(d))
	case d < Microsecond:
		return fmt.Sprintf("%.3gns", d.Nanoseconds())
	case d < Millisecond:
		return fmt.Sprintf("%.4gµs", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.4gms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6gs", d.Seconds())
	}
}

// String formats the absolute time as a duration since the epoch.
func (t Time) String() string { return Duration(t).String() }

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// FromSeconds converts seconds to a Duration, saturating on overflow of the
// picosecond representation.
func FromSeconds(s float64) Duration {
	d := s * float64(Second)
	const maxD = float64(1<<63 - 1)
	if d >= maxD {
		return Duration(1<<63 - 1)
	}
	if d <= -maxD {
		return -Duration(1<<63 - 1)
	}
	return Duration(d)
}

// FromMicroseconds converts microseconds to a Duration.
func FromMicroseconds(us float64) Duration { return FromSeconds(us * 1e-6) }

// FromNanoseconds converts nanoseconds to a Duration.
func FromNanoseconds(ns float64) Duration { return FromSeconds(ns * 1e-9) }
