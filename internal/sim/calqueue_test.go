package sim

import "testing"

// Edge cases the old heap handled implicitly and the calendar queue must get
// right explicitly: same-timestamp cancel/reschedule, mass cancellation
// (collective abort paths), far-future events crossing calendar epochs
// (heartbeat leases), and RunUntil horizons landing between buckets.

func TestCancelThenRescheduleSameTimestamp(t *testing.T) {
	e := NewEngine()
	var got []string
	e.At(100, func() { got = append(got, "a") })
	ev := e.At(100, func() { got = append(got, "victim") })
	e.At(100, func() { got = append(got, "b") })
	e.Cancel(ev)
	// The replacement shares the timestamp but gets a fresh sequence
	// number, so it must fire after every survivor of the original batch.
	e.At(100, func() { got = append(got, "replacement") })
	e.Run()
	want := []string{"a", "b", "replacement"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCancelStaleHandleAfterSlotReuse(t *testing.T) {
	e := NewEngine()
	ran := false
	stale := e.At(10, func() {})
	e.Cancel(stale) // slot goes back to the free list
	fresh := e.At(10, func() { ran = true })
	// The stale handle now points at a recycled slot holding a live event;
	// the generation counter must keep this cancel from touching it.
	e.Cancel(stale)
	if !fresh.Pending() {
		t.Fatal("stale cancel killed the recycled slot's live event")
	}
	e.Run()
	if !ran {
		t.Fatal("recycled event did not fire")
	}
	if stale.Pending() {
		t.Fatal("stale handle reports pending")
	}
}

func TestMassCancellation(t *testing.T) {
	e := NewEngine()
	fired := 0
	var evs []Event
	// Spread events over buckets, the current bucket, and the overflow
	// heap, as a collective abort would see them.
	for i := 0; i < 500; i++ {
		d := Duration(i) * 100 * Nanosecond
		if i%3 == 0 {
			d = Duration(i) * 10 * Millisecond // far future: overflow tier
		}
		evs = append(evs, e.After(d, func() { fired++ }))
	}
	for _, ev := range evs {
		e.Cancel(ev)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after mass cancel, want 0", e.Pending())
	}
	e.Run()
	if fired != 0 {
		t.Fatalf("%d canceled events fired", fired)
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved to %v with nothing to run", e.Now())
	}
	// The queue must still work after a full purge (tombstone sweep).
	ok := false
	e.After(Second, func() { ok = true })
	e.Run()
	if !ok {
		t.Fatal("engine dead after mass cancellation")
	}
}

func TestFarFutureEventsCrossCalendarEpochs(t *testing.T) {
	e := NewEngine()
	var got []Time
	// Heartbeat-lease-like spacing: each event several windows beyond the
	// previous one, forcing repeated epoch advances, plus near events
	// scheduled from within each epoch.
	window := Duration(calBuckets << calShift)
	for i := 1; i <= 10; i++ {
		e.After(Duration(i)*3*window, func() {
			got = append(got, e.Now())
			e.After(60*Nanosecond, func() { got = append(got, e.Now()) })
		})
	}
	e.Run()
	if len(got) != 20 {
		t.Fatalf("fired %d events, want 20", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("time went backwards across epochs: %v after %v", got[i], got[i-1])
		}
	}
}

func TestRunUntilHorizonBetweenBuckets(t *testing.T) {
	e := NewEngine()
	bucket := Duration(1) << calShift
	var fired []Time
	for i := 1; i <= 4; i++ {
		tm := Time(i) * Time(bucket) * 2
		e.At(tm, func() { fired = append(fired, tm) })
	}
	// Horizon in the empty gap between the second and third event's
	// buckets: exactly two fire, and the clock parks on the horizon.
	h := Time(5 * bucket)
	e.RunUntil(h)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Now() != h {
		t.Fatalf("Now() = %v, want %v", e.Now(), h)
	}
	// Horizon beyond the whole calendar window with pending overflow: the
	// engine must not fire the far event early.
	far := e.After(Duration(calBuckets+10)<<calShift, func() { fired = append(fired, e.Now()) })
	e.RunUntil(h.Add(Duration(2 * bucket)))
	if len(fired) != 3 || !far.Pending() {
		t.Fatalf("horizon crossed the window: fired=%d farPending=%t", len(fired), far.Pending())
	}
	e.Run()
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
}

// A RunUntil horizon peeks at the next busy bucket and stops short of it.
// Scheduling afterward, at a valid time >= now but in a bucket before the
// peeked one, must still fire in timestamp order: the peek must not strand
// the scan cursor past the new event's bucket.
func TestScheduleBeforePeekedBucketAfterRunUntil(t *testing.T) {
	e := NewEngine()
	var got []string
	e.At(3<<calShift, func() { got = append(got, "far") })
	e.RunUntil(1 << calShift)
	e.At(1<<calShift+5, func() { got = append(got, "near") })
	e.Run()
	if len(got) != 2 || got[0] != "near" || got[1] != "far" {
		t.Fatalf("firing order %v, want [near far]", got)
	}
	if e.Now() != 3<<calShift {
		t.Fatalf("Now() = %v, want %v", e.Now(), Time(3<<calShift))
	}
}

// Same seam, overflow tier: with only a far-future overflow event pending, a
// RunUntil that stops before its epoch must not jump the window base to it.
// A later near-time event would otherwise alias into the far window, fire
// after the far event, and drag the clock backward.
func TestScheduleBeforeOverflowEpochAfterRunUntil(t *testing.T) {
	e := NewEngine()
	farAt := Time(calBuckets*10) << calShift
	var got []string
	e.At(farAt, func() { got = append(got, "far") })
	e.RunUntil(1 << calShift)
	e.At(2<<calShift, func() {
		got = append(got, "near")
		if e.Now() != 2<<calShift {
			t.Fatalf("near event fired at %v, want %v", e.Now(), Time(2<<calShift))
		}
	})
	e.Run()
	if len(got) != 2 || got[0] != "near" || got[1] != "far" {
		t.Fatalf("firing order %v, want [near far]", got)
	}
	if e.Now() != farAt {
		t.Fatalf("Now() = %v, want %v", e.Now(), farAt)
	}
}

func TestScheduleAfterRunUntilParksBeyondWindow(t *testing.T) {
	e := NewEngine()
	// Park the clock multiple windows ahead with an empty queue, then
	// schedule near events: they must land relative to the parked clock.
	e.RunUntil(Time(3 * calBuckets << calShift))
	ran := false
	e.After(100*Nanosecond, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("event scheduled after a long RunUntil never fired")
	}
	if e.Now() != Time(3*calBuckets<<calShift)+Time(100*Nanosecond) {
		t.Fatalf("Now() = %v", e.Now())
	}
}
