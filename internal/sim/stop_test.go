package sim

import "testing"

// Regression: a stop armed while the engine is idle used to be silently
// discarded because Run/RunUntil reset the flag on entry. A pre-armed stop
// must make the next run return immediately at the current clock, firing
// nothing — and be consumed by that run, so the one after proceeds normally.
func TestPreArmedStopAbortsNextRun(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++ })
	e.Stop()
	if !e.Stopping() {
		t.Fatal("Stopping() = false after Stop()")
	}
	if got := e.Run(); got != 0 {
		t.Fatalf("pre-armed stop: Run() = %v, want 0 (entry clock)", got)
	}
	if fired != 0 {
		t.Fatalf("pre-armed stop fired %d events, want 0", fired)
	}
	if e.Stopping() {
		t.Fatal("stop flag not consumed by the aborted run")
	}
	// The same Run now proceeds: the stop must not leak.
	if got := e.Run(); got != 10 || fired != 1 {
		t.Fatalf("post-stop Run() = %v (fired %d), want 10 (fired 1)", got, fired)
	}
}

func TestPreArmedStopAbortsNextRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++ })
	e.Stop()
	// A pre-armed stop revokes the horizon advance too: the clock stays at
	// the entry clock rather than jumping to t.
	if got := e.RunUntil(50); got != 0 {
		t.Fatalf("pre-armed stop: RunUntil(50) = %v, want 0", got)
	}
	if fired != 0 {
		t.Fatalf("pre-armed stop fired %d events, want 0", fired)
	}
	if got := e.RunUntil(50); got != 50 || fired != 1 {
		t.Fatalf("post-stop RunUntil(50) = %v (fired %d), want 50 (fired 1)", got, fired)
	}
}

// Pin the documented RunUntil+Stop contract: a mid-horizon stop leaves the
// clock at the last fired event, NOT advanced to t.
func TestRunUntilMidHorizonStopLeavesClockAtLastEvent(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.At(10, func() { fired = append(fired, e.Now()) })
	e.At(20, func() {
		fired = append(fired, e.Now())
		e.Stop()
	})
	e.At(30, func() { fired = append(fired, e.Now()) })
	if got := e.RunUntil(100); got != 20 {
		t.Fatalf("RunUntil(100) with stop at t=20 returned %v, want 20", got)
	}
	if e.Now() != 20 {
		t.Fatalf("clock advanced to %v after mid-horizon stop, want 20", e.Now())
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v, want exactly the events at 10 and 20", fired)
	}
	// Flag consumed: the 30-event and the horizon advance happen next call.
	if got := e.RunUntil(100); got != 100 || len(fired) != 3 {
		t.Fatalf("resumed RunUntil(100) = %v (fired %d), want 100 (fired 3)", got, len(fired))
	}
}

// Differential: RefEngine must agree with Engine on every Stop interaction.
func TestStopSemanticsMatchRefEngine(t *testing.T) {
	type run struct {
		ret   Time
		fired []Time
	}
	drive := func(preArm bool, stopAt Time, horizon Time) (eng, ref run) {
		e := NewEngine()
		r := NewRefEngine()
		for _, at := range []Time{5, 15, 25, 35} {
			at := at
			e.At(at, func() {
				eng.fired = append(eng.fired, e.Now())
				if at == stopAt {
					e.Stop()
				}
			})
			r.At(at, func() {
				ref.fired = append(ref.fired, r.Now())
				if at == stopAt {
					r.Stop()
				}
			})
		}
		if preArm {
			e.Stop()
			r.Stop()
		}
		eng.ret = e.RunUntil(horizon)
		ref.ret = r.RunUntil(horizon)
		return
	}
	cases := []struct {
		preArm  bool
		stopAt  Time
		horizon Time
	}{
		{false, -1, 30}, // no stop: plain horizon
		{false, 15, 30}, // mid-horizon stop
		{false, 35, 30}, // stop event beyond horizon: never fires
		{true, -1, 30},  // pre-armed stop
	}
	for _, c := range cases {
		eng, ref := drive(c.preArm, c.stopAt, c.horizon)
		if eng.ret != ref.ret {
			t.Errorf("case %+v: Engine returned %v, RefEngine %v", c, eng.ret, ref.ret)
		}
		if len(eng.fired) != len(ref.fired) {
			t.Errorf("case %+v: Engine fired %v, RefEngine %v", c, eng.fired, ref.fired)
			continue
		}
		for i := range eng.fired {
			if eng.fired[i] != ref.fired[i] {
				t.Errorf("case %+v: firing diverged: %v vs %v", c, eng.fired, ref.fired)
				break
			}
		}
	}
}

// Regression: When() used to return a bare 0 for both dead handles and
// legitimate time-zero events. The two-value form distinguishes them.
func TestWhenDistinguishesTimeZeroFromDead(t *testing.T) {
	e := NewEngine()
	ev := e.At(0, func() {})
	if w, ok := ev.When(); !ok || w != 0 {
		t.Fatalf("pending time-zero event: When() = (%v, %v), want (0, true)", w, ok)
	}
	later := e.At(7, func() {})
	if w, ok := later.When(); !ok || w != 7 {
		t.Fatalf("pending event: When() = (%v, %v), want (7, true)", w, ok)
	}
	e.Run()
	if _, ok := ev.When(); ok {
		t.Fatal("fired event still reports a When")
	}
	e.Cancel(later) // no-op on fired handle, and keeps Cancel covered here
	var zero Event
	if w, ok := zero.When(); ok || w != 0 {
		t.Fatalf("zero-value handle: When() = (%v, %v), want (0, false)", w, ok)
	}
	canceled := e.At(e.Now().Add(5), func() {})
	e.Cancel(canceled)
	if _, ok := canceled.When(); ok {
		t.Fatal("canceled event still reports a When")
	}
}
