package sim

import "math/bits"

// Two-tier calendar queue.
//
// Tier one is a ring of calBuckets buckets, each spanning 2^calShift
// picoseconds of virtual time; together they cover a sliding window of about
// a millisecond starting at the scan cursor. A network simulator's event
// distribution is overwhelmingly near-future — NIC gaps (tens of ns), wire
// latencies (~µs), receive overheads — so almost every event lands in a
// bucket close to the cursor: insertion is a bucket-index computation plus an
// append (the common case; a short memmove when an event arrives out of
// order within its bucket), and popping the minimum is a bitmap scan to the
// first non-empty bucket plus a head-index bump. Both are O(1) amortized,
// against O(log n) for the binary heap this replaced.
//
// Tier two is a plain min-heap holding events beyond the window — heartbeat
// leases, crash scripts, multi-epoch RunUntil horizons. When the window
// drains, the cursor jumps directly to the heap minimum's epoch and every
// overflow event inside the new window migrates into buckets, so each
// far-future event pays one heap push and one heap pop no matter how many
// epochs pass before it fires.
//
// Ordering invariant: buckets hold events with bucket number in
// [base, base+calBuckets) sorted ascending by (when, seq); the overflow heap
// holds everything at or beyond base+calBuckets. The global minimum is
// therefore the front of the first non-empty bucket, and firing order is
// exactly the (timestamp, scheduling sequence) order of the old heap — the
// differential test in engine_diff_test.go pins this against refqueue.go.
const (
	calShift   = 18   // bucket width 2^18 ps ≈ 262 ns
	calBuckets = 4096 // window ≈ 1.07 ms
	calMask    = calBuckets - 1
)

// bucket is one calendar slot: a slice consumed from head so that popping
// the front costs an index bump, not a memmove.
type bucket struct {
	evs  []*event
	head int
}

func eventLess(a, b *event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// insert places a newly scheduled event into the calendar or the overflow
// heap. Callers guarantee ev.when >= e.now, and cursor/base only advance in
// pop() — to the bucket of an event that fires and becomes e.now — so the
// event's bucket can never precede the cursor or the window start.
func (e *Engine) insert(ev *event) {
	if int64(ev.when)>>calShift >= e.base+calBuckets {
		ev.where = whereOver
		e.overPush(ev)
		return
	}
	e.bucketInsert(ev)
}

func (e *Engine) bucketInsert(ev *event) {
	idx := int(int64(ev.when)>>calShift) & calMask
	ev.where = int32(idx)
	b := &e.buckets[idx]
	// Fast path: most events arrive in firing order within their bucket.
	if n := len(b.evs); n == b.head || eventLess(b.evs[n-1], ev) {
		b.evs = append(b.evs, ev)
	} else {
		lo, hi := b.head, len(b.evs)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if eventLess(b.evs[mid], ev) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		b.evs = append(b.evs, nil)
		copy(b.evs[lo+1:], b.evs[lo:])
		b.evs[lo] = ev
	}
	e.words[idx>>6] |= 1 << (idx & 63)
}

// remove cancels a scheduled event. Bucketed events are cut out of their
// slot and recycled immediately; overflow events become tombstones (the heap
// has no cheap random removal) that are swept when their epoch is reached.
func (e *Engine) remove(ev *event) {
	switch {
	case ev.where >= 0:
		idx := int(ev.where)
		b := &e.buckets[idx]
		for i := b.head; i < len(b.evs); i++ {
			if b.evs[i] == ev {
				copy(b.evs[i:], b.evs[i+1:])
				b.evs[len(b.evs)-1] = nil
				b.evs = b.evs[:len(b.evs)-1]
				break
			}
		}
		if b.head == len(b.evs) {
			b.evs, b.head = b.evs[:0], 0
			e.words[idx>>6] &^= 1 << (idx & 63)
		}
		e.n--
		e.release(ev)
	case ev.where == whereOver:
		ev.fn = nil
		ev.gen++
		ev.where = whereTomb
		e.n--
	}
}

// peek returns the earliest scheduled timestamp without consuming the event.
// Returns false when no live events remain.
//
// peek must not move the cursor or the window: RunUntil peeks and may then
// stop at its horizon without consuming anything, and events scheduled
// afterward — at valid times >= now but in buckets before the peeked one, or
// before an overflow event's epoch — must still be scannable. Committing
// cursor and window advances is pop()'s job, where an event at the new
// position actually fires and pins e.now past everything earlier. The only
// mutation here is sweeping canceled tombstones off the overflow heap top,
// which is invisible to firing order and keeps the returned minimum live.
func (e *Engine) peek() (Time, bool) {
	if b := e.nextBusy(); b >= 0 {
		bk := &e.buckets[int(b)&calMask]
		return bk.evs[bk.head].when, true
	}
	// Window empty: the minimum, if any, tops the overflow heap (the
	// ordering invariant puts every bucketed event before every overflow
	// event). Do not migrate it into the window here.
	for len(e.over) > 0 && e.over[0].where == whereTomb {
		tomb := e.overPop()
		tomb.where = whereFree
		e.free = append(e.free, tomb)
	}
	if len(e.over) == 0 {
		return 0, false
	}
	return e.over[0].when, true
}

// pop removes and returns the earliest event. Callers guarantee e.n > 0.
// This is the only place the cursor and window advance: the popped event
// immediately fires and sets e.now to its timestamp, so no later insert
// (which must be >= now) can land behind the new cursor or window base.
func (e *Engine) pop() *event {
	for {
		if b := e.nextBusy(); b >= 0 {
			e.cur = b
			idx := int(b) & calMask
			bk := &e.buckets[idx]
			ev := bk.evs[bk.head]
			bk.evs[bk.head] = nil
			bk.head++
			if bk.head == len(bk.evs) {
				bk.evs, bk.head = bk.evs[:0], 0
				e.words[idx>>6] &^= 1 << (idx & 63)
			}
			return ev
		}
		if !e.advance() {
			panic("sim: pop from empty event queue")
		}
	}
}

// nextBusy scans the non-empty bitmap from the cursor to the window end and
// returns the first busy absolute bucket number, or -1. The bitmap makes a
// sparse window cheap: 64 buckets per word lookup.
func (e *Engine) nextBusy() int64 {
	limit := e.base + calBuckets
	for b := e.cur; b < limit; {
		idx := int(b) & calMask
		w := e.words[idx>>6] >> uint(idx&63)
		if w != 0 {
			n := b + int64(bits.TrailingZeros64(w))
			if n < limit {
				return n
			}
			return -1
		}
		b += int64(64 - idx&63)
	}
	return -1
}

// advance jumps the window to the overflow heap's earliest epoch and
// migrates every overflow event that now falls inside it into buckets.
// Tombstones surfacing at the heap top are swept onto the free list. Returns
// false when the overflow heap holds no live events.
func (e *Engine) advance() bool {
	for len(e.over) > 0 && e.over[0].where == whereTomb {
		tomb := e.overPop()
		tomb.where = whereFree
		e.free = append(e.free, tomb)
	}
	if len(e.over) == 0 {
		return false
	}
	e.base = int64(e.over[0].when) >> calShift
	e.cur = e.base
	limit := e.base + calBuckets
	for len(e.over) > 0 && int64(e.over[0].when)>>calShift < limit {
		ev := e.overPop()
		if ev.where == whereTomb {
			ev.where = whereFree
			e.free = append(e.free, ev)
			continue
		}
		e.bucketInsert(ev)
	}
	return true
}

// Overflow min-heap on (when, seq). Hand-rolled to keep *event elements
// unboxed; no index maintenance is needed because removal is by tombstone.

func (e *Engine) overPush(ev *event) {
	e.over = append(e.over, ev)
	i := len(e.over) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(e.over[i], e.over[parent]) {
			break
		}
		e.over[i], e.over[parent] = e.over[parent], e.over[i]
		i = parent
	}
}

func (e *Engine) overPop() *event {
	h := e.over
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	e.over = h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && eventLess(h[l], h[small]) {
			small = l
		}
		if r < n && eventLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}
