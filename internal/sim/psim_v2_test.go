package sim

import (
	"fmt"
	"testing"
)

// allTunings enumerates every combination of the protocol's optimization
// gates. Each one must be bit-identical to serial — disabling a gate only
// shrinks horizons or runs more shards per round, never reorders.
func allTunings() []Tuning {
	var ts []Tuning
	for i := 0; i < 8; i++ {
		ts = append(ts, Tuning{
			PairwiseLookahead: i&1 != 0,
			ElideIdleShards:   i&2 != 0,
			CoalesceWindows:   i&4 != 0,
		})
	}
	return ts
}

func tuningLabel(tn Tuning) string {
	return fmt.Sprintf("pair=%v elide=%v coalesce=%v",
		tn.PairwiseLookahead, tn.ElideIdleShards, tn.CoalesceWindows)
}

// The fast paths in isolation: every tuning combination, from the all-off
// v1 protocol to the all-on default, must reproduce the serial trace on the
// standard workload.
func TestParallelTuningMatrixMatchesSerial(t *testing.T) {
	const lookQ = 2
	for _, ranks := range []int{3, 8} {
		for _, seed := range []uint64{1, 0xbeef} {
			serial := runWorkload(NewEngine(), ranks, seed, 40, lookQ)
			for _, shards := range []int{2, 4} {
				for _, tn := range allTunings() {
					p := NewParallel(ranks, shards, quantum*lookQ)
					p.SetTuning(tn)
					got := runWorkload(p, ranks, seed, 40, lookQ)
					diffTraces(t, fmt.Sprintf("ranks=%d seed=%d shards=%d %s", ranks, seed, shards, tuningLabel(tn)), serial, got)
					if p.Pending() != 0 {
						t.Fatalf("shards=%d %s: %d events still pending", shards, tuningLabel(tn), p.Pending())
					}
				}
			}
		}
	}
}

// runRefWorkload is runWorkload's body on the heap-backed reference engine,
// which is not a Domain (its At returns *RefEvent): cross-rank sends are
// plain At, exactly like the serial engine's CrossAt.
func runRefWorkload(ranks int, seed uint64, events, lookQ int) [][]traceRec {
	e := NewRefEngine()
	lookahead := quantum * Duration(lookQ)
	traces := make([][]traceRec, ranks)
	rngs := make([]*RNG, ranks)
	budget := make([]int, ranks)
	offs := make([]uint64, ranks)
	for r := 0; r < ranks; r++ {
		rngs[r] = NewRNG(seed + uint64(r)*0x9e3779b97f4a7c15)
		budget[r] = events
	}
	nextOff := func(rank int) Time {
		o := offs[rank]*uint64(ranks) + uint64(rank)
		offs[rank]++
		return Time(o)
	}
	alignUp := func(t Time) Time {
		q := Time(quantum)
		return (t + q - 1) / q * q
	}
	var fire func(rank int, tag uint64)
	fire = func(rank int, tag uint64) {
		traces[rank] = append(traces[rank], traceRec{at: e.Now(), tag: tag})
		if budget[rank] <= 0 {
			return
		}
		budget[rank]--
		rng := rngs[rank]
		n := rng.Intn(3)
		for i := 0; i < n; i++ {
			base := alignUp(e.Now())
			switch rng.Intn(3) {
			case 0:
				at := base + Time(quantum)*Time(rng.Intn(3)) + nextOff(rank)
				next := tag*8 + uint64(i) + 1
				e.At(at, func() { fire(rank, next) })
			case 1:
				dst := rng.Intn(ranks)
				at := base.Add(lookahead) + nextOff(rank)
				next := tag*8 + uint64(i) + 2
				e.At(at, func() { fire(dst, next) })
			default:
				dst := rng.Intn(ranks)
				at := base.Add(lookahead+quantum*Duration(rng.Intn(3))) + nextOff(rank)
				next := tag*8 + uint64(i) + 3
				e.At(at, func() { fire(dst, next) })
			}
		}
	}
	for r := 0; r < ranks; r++ {
		rank := r
		at := Time(quantum)*Time(rank%5+1) + nextOff(rank)
		e.At(at, func() { fire(rank, uint64(rank)<<32) })
	}
	e.Run()
	return traces
}

// The second independent oracle: the sharded domain with every optimization
// on (and with each gate off) must match the container/heap reference
// engine, not just the calendar-queue serial engine.
func TestParallelMatchesRefEngine(t *testing.T) {
	const lookQ = 2
	for _, ranks := range []int{3, 8} {
		for _, seed := range []uint64{7, 0xcafe} {
			ref := runRefWorkload(ranks, seed, 40, lookQ)
			for _, tn := range []Tuning{AllOptimizations(), {}, {PairwiseLookahead: true}, {ElideIdleShards: true}, {CoalesceWindows: true}} {
				p := NewParallel(ranks, 4, quantum*lookQ)
				p.SetTuning(tn)
				got := runWorkload(p, ranks, seed, 40, lookQ)
				diffTraces(t, fmt.Sprintf("ref ranks=%d seed=%d %s", ranks, seed, tuningLabel(tn)), ref, got)
			}
		}
	}
}

// runPairWorkload is runWorkload with a per-rank-pair send distance: sends
// from src to dst keep >= lookFor(src, dst) of lookahead. The distances are
// a pure function of the rank pair, so serial and sharded runs of the same
// workload produce identical timestamps.
func runPairWorkload(dom Domain, ranks int, seed uint64, events int, lookFor func(src, dst int) Duration) [][]traceRec {
	traces := make([][]traceRec, ranks)
	rngs := make([]*RNG, ranks)
	budget := make([]int, ranks)
	offs := make([]uint64, ranks)
	for r := 0; r < ranks; r++ {
		rngs[r] = NewRNG(seed + uint64(r)*0x9e3779b97f4a7c15)
		budget[r] = events
	}
	nextOff := func(rank int) Time {
		o := offs[rank]*uint64(ranks) + uint64(rank)
		offs[rank]++
		return Time(o)
	}
	alignUp := func(t Time) Time {
		q := Time(quantum)
		return (t + q - 1) / q * q
	}
	var fire func(rank int, tag uint64)
	fire = func(rank int, tag uint64) {
		eng := dom.RankEngine(rank)
		traces[rank] = append(traces[rank], traceRec{at: eng.Now(), tag: tag})
		if budget[rank] <= 0 {
			return
		}
		budget[rank]--
		rng := rngs[rank]
		n := rng.Intn(3)
		for i := 0; i < n; i++ {
			base := alignUp(eng.Now())
			switch rng.Intn(3) {
			case 0:
				at := base + Time(quantum)*Time(rng.Intn(3)) + nextOff(rank)
				next := tag*8 + uint64(i) + 1
				eng.At(at, func() { fire(rank, next) })
			default:
				dst := rng.Intn(ranks)
				at := base.Add(lookFor(rank, dst)+quantum*Duration(rng.Intn(2))) + nextOff(rank)
				next := tag*8 + uint64(i) + 2
				dom.CrossAt(rank, dst, at, func() { fire(dst, next) })
			}
		}
	}
	for r := 0; r < ranks; r++ {
		rank := r
		at := Time(quantum)*Time(rank%5+1) + nextOff(rank)
		dom.RankEngine(rank).At(at, func() { fire(rank, uint64(rank)<<32) })
	}
	dom.Run()
	return traces
}

// pairMatrix is the heterogeneous test topology: shards 0 and 1 are close
// (2 quanta), shard 2 is far (5 quanta) from both.
func pairMatrix() [][]Duration {
	const close, far = 2 * quantum, 5 * quantum
	return [][]Duration{
		{0, close, far},
		{close, 0, far},
		{far, far, 0},
	}
}

// Pair-lookahead vs global-floor in isolation: a workload that respects the
// heterogeneous per-pair distances must be serial-identical whether the
// horizon math uses the matrix (wide windows between close shards) or
// collapses to the uniform 2-quanta floor.
func TestParallelPairwiseLookaheadMatchesSerial(t *testing.T) {
	const ranks, shards = 6, 3
	m := pairMatrix()
	shardOf := func(r int) int { return blockOwner(r, ranks, shards) }
	lookFor := func(src, dst int) Duration {
		s, d := shardOf(src), shardOf(dst)
		if s == d {
			return quantum
		}
		return m[s][d]
	}
	for _, seed := range []uint64{3, 0x5eed} {
		serial := runPairWorkload(NewEngine(), ranks, seed, 50, lookFor)
		for _, tn := range allTunings() {
			p := NewParallel(ranks, shards, quantum)
			p.SetLookahead(pairMatrix())
			p.SetTuning(tn)
			if want := 2 * quantum; p.Lookahead() != want {
				t.Fatalf("Lookahead() = %v after SetLookahead, want matrix minimum %v", p.Lookahead(), want)
			}
			got := runPairWorkload(p, ranks, seed, 50, lookFor)
			diffTraces(t, fmt.Sprintf("pairwise seed=%d %s", seed, tuningLabel(tn)), serial, got)
		}
	}
}

func TestParallelSetLookaheadValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	p := NewParallel(6, 3, quantum)
	mustPanic("wrong dimension", func() { p.SetLookahead(make([][]Duration, 2)) })
	mustPanic("ragged row", func() {
		p.SetLookahead([][]Duration{{0, 1, 1}, {1, 0, 1}, {1, 1}})
	})
	mustPanic("zero off-diagonal", func() {
		p.SetLookahead([][]Duration{{0, 0, 1}, {1, 0, 1}, {1, 1, 0}})
	})
	// A violating cross send against the tighter pair bound panics even
	// though it satisfies the old global floor.
	p2 := NewParallel(6, 3, quantum)
	p2.SetLookahead(pairMatrix())
	mustPanic("pair bound violation", func() {
		// rank 0 (shard 0) -> rank 5 (shard 2): bound is 5 quanta.
		p2.CrossAt(0, 5, Time(3*quantum), func() {})
	})
	// The same distance toward the close shard is legal.
	ok := false
	p2.CrossAt(0, 2, Time(3*quantum), func() { ok = true })
	p2.Run()
	if !ok {
		t.Fatal("legal pair-distance send did not fire")
	}
	// Near-MaxInt64 entries must not overflow the min-plus closure into
	// negative distances: relay sums that wrap are discarded, so every
	// closure entry stays positive (bounded by its raw matrix entry).
	huge := Duration(1<<63 - 2)
	p3 := NewParallel(6, 3, quantum)
	p3.SetLookahead([][]Duration{
		{0, huge, huge},
		{huge, 0, huge},
		{huge, huge, 0},
	})
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			if d := p3.pairDist(i, j); d <= 0 || d > huge {
				t.Fatalf("closure[%d][%d] = %v corrupted by overflow", i, j, d)
			}
		}
	}
}

// Idle-shard elision in isolation: with work confined to one shard, the
// other shards must be skipped (no barrier arrivals), and the elision
// counter proves the fast path actually ran.
func TestParallelElisionSkipsIdleShards(t *testing.T) {
	const ranks, shards = 8, 4
	build := func(tn Tuning) *Parallel {
		p := NewParallel(ranks, shards, quantum)
		p.SetTuning(tn)
		// All work on rank 0 (shard 0): a local chain plus one late
		// self-shard event, so several rounds run while shards 1..3 idle.
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 64 {
				p.RankEngine(0).After(Duration(quantum/8), tick)
			}
		}
		p.RankEngine(0).At(0, tick)
		return p
	}
	on := build(Tuning{ElideIdleShards: true}) // coalescing off: forces multiple rounds
	on.Run()
	if on.ElidedShardRounds() == 0 {
		t.Fatalf("elision on: no shard-rounds elided across %d rounds", on.Rounds())
	}
	off := build(Tuning{})
	off.Run()
	if off.ElidedShardRounds() != 0 {
		t.Fatalf("elision off: counted %d elided shard-rounds", off.ElidedShardRounds())
	}
	if on.Fired() != off.Fired() {
		t.Fatalf("elision changed event count: %d vs %d", on.Fired(), off.Fired())
	}
}

// Window coalescing in isolation: a dense communication-free stretch on one
// shard must collapse into far fewer rounds when horizons are data-driven
// than under the fixed [T, T+L) window.
func TestParallelCoalescingCollapsesQuietStretches(t *testing.T) {
	const ranks, shards = 2, 2
	const chain = 256
	build := func(tn Tuning) *Parallel {
		p := NewParallel(ranks, shards, quantum)
		p.SetTuning(tn)
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < chain {
				p.RankEngine(0).After(Duration(quantum/4), tick)
			}
		}
		p.RankEngine(0).At(0, tick)
		// Shard 1 has one distant event, so the domain stays genuinely
		// multi-shard throughout the stretch.
		p.RankEngine(1).At(Time(quantum)*chain, func() {})
		return p
	}
	on := build(Tuning{CoalesceWindows: true, ElideIdleShards: true})
	on.Run()
	off := build(Tuning{ElideIdleShards: true})
	off.Run()
	if on.Fired() != off.Fired() {
		t.Fatalf("coalescing changed event count: %d vs %d", on.Fired(), off.Fired())
	}
	// The fixed window needs ~chain/4 rounds for the stretch; data-driven
	// horizons see shard 1's event a full chain-length away and take the
	// whole stretch in one or two rounds.
	if off.Rounds() < chain/8 {
		t.Fatalf("fixed-window run took only %d rounds; workload does not exercise coalescing", off.Rounds())
	}
	if on.Rounds()*8 > off.Rounds() {
		t.Fatalf("coalescing did not collapse rounds: %d vs %d fixed-window", on.Rounds(), off.Rounds())
	}
}

// A round that stages a cross send must clamp its window to the send's
// reflection bound: the destination echoes every arrival straight back, and
// any over-advance past the echo's timestamp would panic inside the engine
// (scheduling before now) or diverge from serial. This pins the guard
// against the one-shard-drains-everything failure mode.
func TestParallelReflectionGuard(t *testing.T) {
	const L = Duration(quantum)
	run := func(dom Domain) []traceRec {
		var trace []traceRec
		// Rank 0 (shard 0): dense local chain; its first event also sends
		// one cross message. Rank 1 (shard 1): echoes the arrival back.
		n := 0
		var tick func()
		tick = func() {
			trace = append(trace, traceRec{at: dom.RankEngine(0).Now(), tag: uint64(n)})
			n++
			if n < 128 {
				dom.RankEngine(0).After(Duration(quantum/8), tick)
			}
		}
		// The +1 offsets keep cross timestamps off the chain's tick grid:
		// same-timestamp cross/local ties are the protocol's one documented
		// (measure-zero) divergence from serial and not what this test pins.
		dom.RankEngine(0).At(0, func() {
			at := dom.RankEngine(0).Now().Add(L) + 1
			dom.CrossAt(0, 1, at, func() {
				back := dom.RankEngine(1).Now().Add(L) + 1
				dom.CrossAt(1, 0, back, func() {
					trace = append(trace, traceRec{at: dom.RankEngine(0).Now(), tag: 0xec0})
				})
			})
			tick()
		})
		dom.Run()
		return trace
	}
	serial := run(NewEngine())
	got := run(NewParallel(2, 2, L))
	if len(serial) != len(got) {
		t.Fatalf("sharded fired %d events, serial %d", len(got), len(serial))
	}
	for i := range serial {
		if serial[i] != got[i] {
			t.Fatalf("event %d = %+v, serial %+v", i, got[i], serial[i])
		}
	}
}

// runPulseWorkload drives a pulse-shaped workload: rank 0 runs a quiet
// local chain (every other shard elided), then broadcasts to all ranks at
// the lookahead floor (regrowing the active set to every shard at once),
// and the replies converge back onto shard 0 to seed the next pulse. Every
// timestamp is unique by construction, so the firing order is a pure
// function of virtual time.
func runPulseWorkload(dom Domain, ranks, pulses, quiet int) [][]traceRec {
	lookahead := quantum
	traces := make([][]traceRec, ranks)
	q := Time(quantum)
	rec := func(rank int, tag uint64) {
		traces[rank] = append(traces[rank], traceRec{at: dom.RankEngine(rank).Now(), tag: tag})
	}
	replies := 0 // touched only by shard 0's execution
	var pulse func(p int)
	pulse = func(p int) {
		if p >= pulses {
			return
		}
		e0 := dom.RankEngine(0)
		base := (e0.Now()/q + 1) * q
		for i := 0; i < quiet; i++ {
			tag := uint64(p)<<16 | uint64(i)
			e0.At(base+Time(i)*q, func() { rec(0, tag) })
		}
		bcast := base + Time(quiet)*q
		for d := 1; d < ranks; d++ {
			dst := d
			tag := uint64(p)<<16 | 0x100 | uint64(dst)
			rtag := uint64(p)<<16 | 0x200 | uint64(dst)
			dom.CrossAt(0, dst, bcast.Add(lookahead)+Time(dst), func() {
				rec(dst, tag)
				dom.CrossAt(dst, 0, dom.RankEngine(dst).Now().Add(lookahead), func() {
					rec(0, rtag)
					replies++
					if replies == ranks-1 {
						replies = 0
						pulse(p + 1)
					}
				})
			})
		}
	}
	dom.RankEngine(0).At(q, func() { pulse(0) })
	dom.Run()
	return traces
}

// The per-round active set oscillating between one shard and every shard —
// elision shrinks one round's plan, the following broadcast regrows it — is
// the regime where a runner straggling out of a small round could once pair
// its stale, exhausted work-queue cursor with the next, larger plan and
// claim (hence double-run) one of its windows. Many pulses under the race
// detector pin the round-tagged claim protocol; the trace must stay
// bit-identical to serial throughout.
func TestParallelActiveSetOscillationStress(t *testing.T) {
	const ranks, pulses, quiet = 8, 150, 3
	serial := runPulseWorkload(NewEngine(), ranks, pulses, quiet)
	for _, shards := range []int{4, 8} {
		for _, tn := range []Tuning{
			AllOptimizations(),
			{ElideIdleShards: true}, // coalescing off: one round per quantum, more transitions
		} {
			p := NewParallel(ranks, shards, quantum)
			p.SetTuning(tn)
			got := runPulseWorkload(p, ranks, pulses, quiet)
			diffTraces(t, fmt.Sprintf("shards=%d %s", shards, tuningLabel(tn)), serial, got)
			if p.Pending() != 0 {
				t.Fatalf("shards=%d %s: %d events still pending", shards, tuningLabel(tn), p.Pending())
			}
			if p.ElidedShardRounds() == 0 {
				t.Fatalf("shards=%d %s: quiet phases elided nothing across %d rounds; workload does not oscillate",
					shards, tuningLabel(tn), p.Rounds())
			}
		}
	}
}

// FuzzTuningMatrix extends the inbox-order fuzzer across the optimization
// gates: arbitrary workloads under arbitrary gate combinations must stay
// serial-identical.
func FuzzTuningMatrix(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(2), uint8(20), uint8(7))
	f.Add(uint64(99), uint8(9), uint8(3), uint8(35), uint8(0))
	f.Add(uint64(0xfeed), uint8(16), uint8(8), uint8(10), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, ranks, shards, events, gates uint8) {
		nr := int(ranks)%16 + 1
		ns := int(shards)%8 + 1
		ev := int(events) % 48
		tn := Tuning{
			PairwiseLookahead: gates&1 != 0,
			ElideIdleShards:   gates&2 != 0,
			CoalesceWindows:   gates&4 != 0,
		}
		const lookQ = 1
		serial := runWorkload(NewEngine(), nr, seed, ev, lookQ)
		p := NewParallel(nr, ns, quantum*lookQ)
		p.SetTuning(tn)
		got := runWorkload(p, nr, seed, ev, lookQ)
		diffTraces(t, fmt.Sprintf("ranks=%d shards=%d %s", nr, ns, tuningLabel(tn)), serial, got)
	})
}
