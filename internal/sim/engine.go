package sim

import (
	"fmt"
	"sync/atomic"
)

// event is the pooled internal representation of a scheduled callback.
// Objects are recycled through the engine's free list; gen increments every
// time an event leaves the queue (fired or canceled) so stale handles held by
// callers can never touch a reused slot.
type event struct {
	when  Time
	seq   uint64
	fn    func()
	gen   uint32
	where int32 // bucket index, or one of the where* sentinels
}

const (
	whereFree int32 = -1 // on the free list (or never scheduled)
	whereOver int32 = -2 // in the overflow heap
	whereTomb int32 = -3 // canceled but still buried in the overflow heap
)

// Event is a generation-counted handle to a scheduled callback. The zero
// value is a valid "no event" handle: Pending reports false and Cancel is a
// no-op. Handles stay safe after the underlying slot is recycled for a new
// event — operations on a stale handle do nothing.
type Event struct {
	ev  *event
	gen uint32
}

// When returns the virtual time at which the event will fire. The boolean is
// false when the event has already fired or been canceled (including the
// zero-value handle); a true result with a zero Time is a legitimate event
// scheduled at time zero, which the old single-value signature could not
// distinguish from a dead handle.
func (e Event) When() (Time, bool) {
	if !e.Pending() {
		return 0, false
	}
	return e.ev.when, true
}

// Pending reports whether the event is still scheduled.
func (e Event) Pending() bool { return e.ev != nil && e.ev.gen == e.gen }

// Engine is a deterministic discrete-event scheduler. Events that share a
// timestamp fire in the order they were scheduled.
//
// The event queue is a two-tier calendar queue (calqueue.go): near-future
// events — the bulk of a network simulation's schedule — pay O(1) per
// operation, far-future events (heartbeat leases, crash scripts, RunUntil
// horizons) overflow into a small binary heap and migrate into the calendar
// when their epoch comes around. Firing order is exactly (timestamp,
// scheduling sequence), bit-identical to the container/heap implementation
// kept in refqueue.go as the differential-test oracle.
type Engine struct {
	now     Time
	seq     uint64
	fired   uint64
	stopped bool
	n       int // scheduled events (tombstones excluded)

	// Calendar queue state; see calqueue.go.
	buckets []bucket
	words   []uint64 // non-empty bitmap, one bit per bucket
	base    int64    // absolute bucket number of the window start
	cur     int64    // scan cursor, base <= cur < base+calBuckets
	over    []*event // far-future min-heap keyed (when, seq)
	free    []*event // recycled event objects
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{
		buckets: make([]bucket, calBuckets),
		words:   make([]uint64, calBuckets/64),
		base:    0,
		cur:     0,
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (a cheap progress and
// complexity metric for experiments).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return e.n }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a cost-model bug, and silently clamping would corrupt
// causality.
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := e.acquire()
	ev.when, ev.seq, ev.fn = t, e.seq, fn
	e.seq++
	e.n++
	e.insert(ev)
	return Event{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d Duration, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel removes a pending event. Canceling a fired, already-canceled, or
// zero-value event is a no-op.
func (e *Engine) Cancel(h Event) {
	ev := h.ev
	if ev == nil || ev.gen != h.gen {
		return
	}
	e.remove(ev)
}

// Stop arms the engine's stop flag. A stop armed while Run or RunUntil is
// executing makes it return after the currently executing event completes; a
// stop armed while the engine is idle makes the NEXT Run or RunUntil return
// immediately at the current clock, firing nothing. Each run consumes the
// flag on return, so a stop never leaks into the run after the one it ended.
func (e *Engine) Stop() { e.stopped = true }

// Stopping reports whether a stop is armed (set by Stop and not yet consumed
// by a run). The parallel coordinator uses it to tell "stopped" from "queue
// drained" at a window boundary.
func (e *Engine) Stopping() bool { return e.stopped }

// Run executes events until the queue drains or Stop is called. It returns
// the final virtual time. A stop armed before the call makes it return
// immediately at the current clock; either way the stop is consumed.
func (e *Engine) Run() Time {
	for e.n > 0 && !e.stopped {
		e.step()
	}
	e.stopped = false
	return e.now
}

// RunUntil executes events with timestamps <= t and then advances the clock
// to t. Events scheduled during execution are honored if they fall within
// the horizon.
//
// Stop interaction: when an event calls Stop mid-horizon — or a stop was
// armed before the call — RunUntil returns with the clock left at the last
// fired event (the entry clock for a pre-armed stop), NOT advanced to t. The
// horizon advance is a statement that "nothing happens until t", which a
// stop explicitly revokes: the caller stopped the run precisely because it
// no longer wants the remaining virtual time to pass. Like Run, RunUntil
// consumes the stop flag on return.
func (e *Engine) RunUntil(t Time) Time {
	stopped := e.stopped
	for e.n > 0 && !stopped {
		w, ok := e.peek()
		if !ok || w > t {
			break
		}
		e.step()
		stopped = e.stopped
	}
	if !stopped && e.now < t {
		e.now = t
	}
	e.stopped = false
	return e.now
}

// runGuarded executes events with timestamps strictly below both t and the
// dynamic guard, leaving the clock at the last fired event. The guard is
// re-read before every event: the sharded engine lowers it mid-window when
// an event stages a cross-shard send whose reflection could return earlier
// than the static horizon assumed (psim.go). A bound equal to the maximum
// representable Time means unbounded — the window where every other shard
// is drained runs to completion instead of stranding events at the limit.
// runGuarded honors the engine's own stop flag and, when halt is non-nil, a
// domain-wide stop shared across shards — but unlike Run it consumes
// neither: the parallel coordinator owns both flags' lifecycles across
// window boundaries. Events exactly at the bound belong to the next window,
// where freshly staged cross-shard arrivals can still order ahead of them.
func (e *Engine) runGuarded(t Time, halt *atomic.Bool, guard *Time) {
	for e.n > 0 && !e.stopped {
		w, ok := e.peek()
		if !ok {
			return
		}
		if w >= t && t != timeUnbounded {
			return
		}
		if g := *guard; w >= g && g != timeUnbounded {
			return
		}
		if halt != nil && halt.Load() {
			return
		}
		e.step()
	}
}

func (e *Engine) step() {
	ev := e.pop()
	e.n--
	e.now = ev.when
	e.fired++
	fn := ev.fn
	e.release(ev)
	fn()
}

// acquire takes an event object off the free list, or allocates one.
func (e *Engine) acquire() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{where: whereFree}
}

// release retires an event that has left the queue: the generation bump
// invalidates every outstanding handle before the object is recycled.
func (e *Engine) release(ev *event) {
	ev.fn = nil
	ev.gen++
	ev.where = whereFree
	e.free = append(e.free, ev)
}
