package sim

import "fmt"

// event is the pooled internal representation of a scheduled callback.
// Objects are recycled through the engine's free list; gen increments every
// time an event leaves the queue (fired or canceled) so stale handles held by
// callers can never touch a reused slot.
type event struct {
	when  Time
	seq   uint64
	fn    func()
	gen   uint32
	where int32 // bucket index, or one of the where* sentinels
}

const (
	whereFree int32 = -1 // on the free list (or never scheduled)
	whereOver int32 = -2 // in the overflow heap
	whereTomb int32 = -3 // canceled but still buried in the overflow heap
)

// Event is a generation-counted handle to a scheduled callback. The zero
// value is a valid "no event" handle: Pending reports false and Cancel is a
// no-op. Handles stay safe after the underlying slot is recycled for a new
// event — operations on a stale handle do nothing.
type Event struct {
	ev  *event
	gen uint32
}

// When returns the virtual time at which the event will fire, or zero when
// the event has already fired or been canceled.
func (e Event) When() Time {
	if !e.Pending() {
		return 0
	}
	return e.ev.when
}

// Pending reports whether the event is still scheduled.
func (e Event) Pending() bool { return e.ev != nil && e.ev.gen == e.gen }

// Engine is a deterministic discrete-event scheduler. Events that share a
// timestamp fire in the order they were scheduled.
//
// The event queue is a two-tier calendar queue (calqueue.go): near-future
// events — the bulk of a network simulation's schedule — pay O(1) per
// operation, far-future events (heartbeat leases, crash scripts, RunUntil
// horizons) overflow into a small binary heap and migrate into the calendar
// when their epoch comes around. Firing order is exactly (timestamp,
// scheduling sequence), bit-identical to the container/heap implementation
// kept in refqueue.go as the differential-test oracle.
type Engine struct {
	now     Time
	seq     uint64
	fired   uint64
	stopped bool
	n       int // scheduled events (tombstones excluded)

	// Calendar queue state; see calqueue.go.
	buckets []bucket
	words   []uint64 // non-empty bitmap, one bit per bucket
	base    int64    // absolute bucket number of the window start
	cur     int64    // scan cursor, base <= cur < base+calBuckets
	over    []*event // far-future min-heap keyed (when, seq)
	free    []*event // recycled event objects
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{
		buckets: make([]bucket, calBuckets),
		words:   make([]uint64, calBuckets/64),
		base:    0,
		cur:     0,
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (a cheap progress and
// complexity metric for experiments).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return e.n }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a cost-model bug, and silently clamping would corrupt
// causality.
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := e.acquire()
	ev.when, ev.seq, ev.fn = t, e.seq, fn
	e.seq++
	e.n++
	e.insert(ev)
	return Event{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d Duration, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel removes a pending event. Canceling a fired, already-canceled, or
// zero-value event is a no-op.
func (e *Engine) Cancel(h Event) {
	ev := h.ev
	if ev == nil || ev.gen != h.gen {
		return
	}
	e.remove(ev)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called. It returns
// the final virtual time.
func (e *Engine) Run() Time {
	e.stopped = false
	for e.n > 0 && !e.stopped {
		e.step()
	}
	return e.now
}

// RunUntil executes events with timestamps <= t and then advances the clock
// to t. Events scheduled during execution are honored if they fall within
// the horizon.
func (e *Engine) RunUntil(t Time) Time {
	e.stopped = false
	for e.n > 0 && !e.stopped {
		w, ok := e.peek()
		if !ok || w > t {
			break
		}
		e.step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
	return e.now
}

func (e *Engine) step() {
	ev := e.pop()
	e.n--
	e.now = ev.when
	e.fired++
	fn := ev.fn
	e.release(ev)
	fn()
}

// acquire takes an event object off the free list, or allocates one.
func (e *Engine) acquire() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{where: whereFree}
}

// release retires an event that has left the queue: the generation bump
// invalidates every outstanding handle before the object is recycled.
func (e *Engine) release(ev *event) {
	ev.fn = nil
	ev.gen++
	ev.where = whereFree
	e.free = append(e.free, ev)
}
