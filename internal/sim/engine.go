package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. The zero value is not useful; events are
// created through Engine.At and Engine.After.
type Event struct {
	when  Time
	seq   uint64
	fn    func()
	index int // position in the heap, -1 when fired or canceled
}

// When returns the virtual time at which the event will fire.
func (e *Event) When() Time { return e.when }

// Pending reports whether the event is still scheduled.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event scheduler. Events that share a
// timestamp fire in the order they were scheduled.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	fired   uint64
	stopped bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far (a cheap progress and
// complexity metric for experiments).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a cost-model bug, and silently clamping would corrupt
// causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := &Event{when: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel removes a pending event. Canceling a fired or already-canceled
// event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called. It returns
// the final virtual time.
func (e *Engine) Run() Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		e.step()
	}
	return e.now
}

// RunUntil executes events with timestamps <= t and then advances the clock
// to t. Events scheduled during execution are honored if they fall within
// the horizon.
func (e *Engine) RunUntil(t Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped && e.queue[0].when <= t {
		e.step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
	return e.now
}

func (e *Engine) step() {
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.when
	e.fired++
	fn := ev.fn
	ev.fn = nil
	fn()
}
