package sim

import (
	"testing"
	"testing/quick"
)

func TestProcSerializesWork(t *testing.T) {
	e := NewEngine()
	p := NewProc(e)
	var ends []Time
	p.Submit(10, func() { ends = append(ends, e.Now()) })
	p.Submit(20, func() { ends = append(ends, e.Now()) })
	p.Submit(5, func() { ends = append(ends, e.Now()) })
	e.Run()
	want := []Time{10, 30, 35}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if p.Busy() {
		t.Error("proc still busy after drain")
	}
	if p.BusyTime() != 35 {
		t.Errorf("BusyTime = %v, want 35", p.BusyTime())
	}
	if p.Executed() != 3 {
		t.Errorf("Executed = %d, want 3", p.Executed())
	}
}

func TestProcWakeLatencyChargedPerBusyPeriod(t *testing.T) {
	e := NewEngine()
	p := NewProc(e)
	p.WakeLatency = 100
	var ends []Time
	p.Submit(10, func() { ends = append(ends, e.Now()) }) // wake + 10 = 110
	p.Submit(10, func() { ends = append(ends, e.Now()) }) // back-to-back: 120
	e.Run()
	if ends[0] != 110 || ends[1] != 120 {
		t.Fatalf("ends = %v, want [110 120]", ends)
	}
	// New busy period pays the wake latency again.
	e.After(880, func() { // now = 1000, proc idle
		p.Submit(10, func() { ends = append(ends, e.Now()) })
	})
	e.Run()
	if ends[2] != 1110 {
		t.Fatalf("third end = %v, want 1110", ends[2])
	}
}

func TestProcWorkSubmittedByCompletionRunsAfterQueued(t *testing.T) {
	e := NewEngine()
	p := NewProc(e)
	var order []string
	p.Submit(1, func() {
		order = append(order, "a")
		p.Submit(1, func() { order = append(order, "a-child") })
	})
	p.Submit(1, func() { order = append(order, "b") })
	e.Run()
	want := []string{"a", "b", "a-child"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcZeroCostAndNilFn(t *testing.T) {
	e := NewEngine()
	p := NewProc(e)
	ran := false
	p.Submit(0, nil)
	p.Submit(0, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("zero-cost item did not run")
	}
}

func TestProcNegativeCostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative cost did not panic")
		}
	}()
	e := NewEngine()
	NewProc(e).Submit(-1, nil)
}

func TestProcBusyTimeEqualsSumOfCosts(t *testing.T) {
	// Property: with zero wake latency, total busy time equals the sum of
	// submitted costs regardless of arrival pattern.
	f := func(costs []uint16, gaps []uint16) bool {
		e := NewEngine()
		p := NewProc(e)
		var total Duration
		now := Time(0)
		for i, c := range costs {
			d := Duration(c)
			total += d
			gap := Duration(0)
			if i < len(gaps) {
				gap = Duration(gaps[i])
			}
			now = now.Add(gap)
			e.At(now, func() { p.Submit(d, nil) })
		}
		e.Run()
		return p.BusyTime() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds collided on first draw")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRNGJitterStaysClose(t *testing.T) {
	r := NewRNG(99)
	base := Duration(1_000_000)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		j := r.Jitter(base, 0.03)
		sum += float64(j)
		if j < base/2 || j > base*2 {
			t.Fatalf("3%% jitter produced wild value %v", j)
		}
	}
	mean := sum / n / float64(base)
	if mean < 0.99 || mean > 1.01 {
		t.Fatalf("jitter mean ratio = %v, want ~1", mean)
	}
	if r.Jitter(base, 0) != base {
		t.Fatal("sigma=0 must be identity")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(5)
	s := r.Split()
	if r.Uint64() == s.Uint64() {
		t.Fatal("split stream equals parent stream")
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(123)
	var sum, sumsq float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Errorf("norm mean = %v, want ~0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Errorf("norm variance = %v, want ~1", variance)
	}
}
