package sim

import (
	"container/heap"
	"fmt"
)

// RefEngine is the original container/heap event scheduler, kept verbatim as
// the reference implementation for the calendar queue in Engine: the
// differential test in engine_diff_test.go drives randomized workloads
// through both and asserts bit-identical (timestamp, seq) firing order, and
// cmd/benchrecord measures it as the ns/event baseline that BENCH_sim.json
// regressions are judged against. It is not used on any hot path.
type RefEngine struct {
	now     Time
	queue   refHeap
	seq     uint64
	fired   uint64
	stopped bool
}

// RefEvent is a scheduled callback on a RefEngine.
type RefEvent struct {
	when  Time
	seq   uint64
	fn    func()
	index int // position in the heap, -1 when fired or canceled
}

// Pending reports whether the event is still scheduled.
func (e *RefEvent) Pending() bool { return e != nil && e.index >= 0 }

type refHeap []*RefEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *refHeap) Push(x any) {
	e := x.(*RefEvent)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// NewRefEngine returns a heap-backed engine with the clock at zero.
func NewRefEngine() *RefEngine { return &RefEngine{} }

// Now returns the current virtual time.
func (e *RefEngine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *RefEngine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled events.
func (e *RefEngine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t.
func (e *RefEngine) At(t Time, fn func()) *RefEvent {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := &RefEvent{when: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *RefEngine) After(d Duration, fn func()) *RefEvent {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel removes a pending event; fired or canceled events are a no-op.
func (e *RefEngine) Cancel(ev *RefEvent) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
}

// Stop arms the stop flag; see Engine.Stop for the arming semantics the
// reference implementation mirrors.
func (e *RefEngine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called. A pre-armed
// stop returns immediately; the flag is consumed on return.
func (e *RefEngine) Run() Time {
	for len(e.queue) > 0 && !e.stopped {
		e.step()
	}
	e.stopped = false
	return e.now
}

// RunUntil executes events with timestamps <= t and then advances the clock
// to t. A stop — pre-armed or fired mid-horizon — leaves the clock at the
// last fired event instead of advancing it to t, exactly as Engine.RunUntil
// documents.
func (e *RefEngine) RunUntil(t Time) Time {
	stopped := e.stopped
	for len(e.queue) > 0 && !stopped && e.queue[0].when <= t {
		e.step()
		stopped = e.stopped
	}
	if !stopped && e.now < t {
		e.now = t
	}
	e.stopped = false
	return e.now
}

func (e *RefEngine) step() {
	ev := heap.Pop(&e.queue).(*RefEvent)
	e.now = ev.when
	e.fired++
	fn := ev.fn
	ev.fn = nil
	fn()
}
