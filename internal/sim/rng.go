package sim

import "math"

// RNG is a small, allocation-free, splittable pseudo-random generator
// (SplitMix64) used for deterministic execution-time jitter. Experiments
// need repeatable noise: the paper's methodology (run 18 times, discard 3,
// average 15) is only meaningful if successive runs differ, and comparisons
// between backends are only meaningful if the noise stream is reproducible.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Split derives an independent generator; the parent advances.
func (r *RNG) Split() *RNG { return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15} }

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal variate (Box-Muller; one value per call).
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// jitterClamp bounds the normal variate feeding Jitter to ±4 standard
// deviations. The truncation is statistically invisible (P(|z|>4) ≈ 6e-5,
// and the affected tail mass moves by < 1e-4 of the mean) but it makes the
// jitter factor hard-bounded: a jittered duration d is always within
// [d·e^(-4σ), d·e^(+4σ)]. The sharded engine depends on the lower bound —
// the conservative lookahead is derived as wire latency · e^(-4σ), and an
// unbounded normal would make any fixed lookahead unsound.
const jitterClamp = 4.0

// JitterFloor returns the guaranteed minimum value Jitter can produce for d
// at the given sigma: d scaled by the worst-case clamped factor.
func JitterFloor(d Duration, sigma float64) Duration {
	if sigma <= 0 || d == 0 {
		return d
	}
	return Duration(float64(d) * math.Exp(-jitterClamp*sigma))
}

// Jitter scales d by a log-normal factor with the given relative standard
// deviation (e.g. 0.03 for ~3% noise). sigma <= 0 returns d unchanged.
// The factor's distribution has median 1, so jitter never biases means by
// more than the (second-order) log-normal mean shift. The underlying normal
// draw is clamped to ±jitterClamp sigmas, so the result is guaranteed to be
// at least JitterFloor(d, sigma) (and at most the symmetric ceiling).
func (r *RNG) Jitter(d Duration, sigma float64) Duration {
	if sigma <= 0 || d == 0 {
		return d
	}
	z := r.Norm()
	if z > jitterClamp {
		z = jitterClamp
	} else if z < -jitterClamp {
		z = -jitterClamp
	}
	f := math.Exp(z * sigma)
	return Duration(float64(d) * f)
}
