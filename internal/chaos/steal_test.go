package chaos

import (
	"testing"

	"amtlci/internal/core/stack"
	"amtlci/internal/sim"
)

// TestStealUnderFaults: the steal × fault matrix — both workloads, both
// backends, 0.5% and 2% fault rates — must still verify numerically, and
// every run must end with a proven termination announcement, never an
// assumed one.
func TestStealUnderFaults(t *testing.T) {
	for _, backend := range stack.Backends {
		for _, w := range Workloads {
			for _, rate := range []float64{0.005, 0.02} {
				t.Run(backend.String()+"/"+w.String()+"/"+ratePct(rate), func(t *testing.T) {
					res := Run(Opts{
						Backend: backend, Workload: w,
						Faults: faultCfg(rate, 31), Rel: relCfg(),
						Steal: true,
					})
					if res.Err != nil {
						t.Fatalf("steal run aborted: %v", res.Err)
					}
					if !res.Verified {
						t.Fatalf("factor error %g with stealing under faults", res.RelErr)
					}
					if !res.TermAnnounced {
						t.Fatal("run completed without a termination announcement")
					}
				})
			}
		}
	}
}

// TestStealDeterministicReplay: identical steal-enabled options (same fault
// seed) reproduce the execution exactly, steal counters included.
func TestStealDeterministicReplay(t *testing.T) {
	o := Opts{
		Backend: stack.LCI, Workload: Cholesky,
		Faults: faultCfg(0.02, 99), Rel: relCfg(),
		Steal: true,
	}
	a, b := Run(o), Run(o)
	if a.Err != nil || b.Err != nil {
		t.Fatalf("aborts: %v / %v", a.Err, b.Err)
	}
	if a.Makespan != b.Makespan || a.Steals != b.Steals ||
		a.StealTasks != b.StealTasks || a.StealGranted != b.StealGranted ||
		a.TermRounds != b.TermRounds {
		t.Fatalf("steal replay diverged:\n a %+v\n b %+v", a, b)
	}
}

// TestStealFlattensPostCrashImbalance is the tentpole acceptance on the
// paper's workload: after a mid-run crash dumps the dead rank's tasks on one
// buddy, work stealing must (a) actually fire, (b) improve the recovered
// makespan, and (c) demonstrably rebalance the per-rank busy time — all
// while the detector still proves termination.
//
// The run is placed in the paper's compute-dominant regime (TaskScale scales
// the chaos mini-problem's kernels back up to where worker busy time, not
// network latency, bounds the makespan; one worker per rank gives the DAG
// width for migrated tasks to overlap). In the unscaled mini-problem the
// makespan is latency-bound and no scheduling policy can move it.
func TestStealFlattensPostCrashImbalance(t *testing.T) {
	const scale, workers = 300, 1
	for _, backend := range stack.Backends {
		t.Run(backend.String(), func(t *testing.T) {
			heavy := Run(Opts{Backend: backend, Workload: HiCMA, TaskScale: scale, Workers: workers})
			if heavy.Err != nil || !heavy.Verified {
				t.Fatalf("scaled fault-free baseline broken: %+v", heavy)
			}
			crash := CrashSpec{Rank: 1, At: heavy.Makespan * 2 / 5}
			base := Run(Opts{
				Backend: backend, Workload: HiCMA, TaskScale: scale, Workers: workers,
				Crash: &crash, Recover: true,
			})
			res := Run(Opts{
				Backend: backend, Workload: HiCMA, TaskScale: scale, Workers: workers,
				Crash: &crash, Recover: true,
				Steal: true,
			})
			for name, r := range map[string]Result{"no-steal": base, "steal": res} {
				if r.Err != nil {
					t.Fatalf("%s crash run aborted: %v", name, r.Err)
				}
				if !r.Verified {
					t.Fatalf("%s factor error %g after recovery", name, r.RelErr)
				}
				if r.Restarts != 1 {
					t.Fatalf("%s restarts = %d, want 1", name, r.Restarts)
				}
				if !r.TermAnnounced {
					t.Fatalf("%s run completed without a termination announcement", name)
				}
			}
			if base.Steals != 0 {
				t.Fatalf("no-steal run recorded %d steals", base.Steals)
			}
			if res.Steals == 0 {
				t.Fatal("post-crash imbalance triggered zero steals")
			}
			if res.Makespan >= base.Makespan {
				t.Fatalf("stealing did not improve the recovered makespan: %v (steal) vs %v (no steal)",
					res.Makespan, base.Makespan)
			}
			// Rebalance evidence: the busy-time spread across surviving ranks
			// (max−min over the idle survivors vs the overloaded buddy) must
			// shrink when stealing is on.
			spread := func(r Result) sim.Duration {
				min, max := sim.Duration(1<<62), sim.Duration(0)
				for rank, busy := range r.WorkerBusy {
					if rank == crash.Rank {
						continue // the crashed rank's truncated busy time is noise
					}
					if busy < min {
						min = busy
					}
					if busy > max {
						max = busy
					}
				}
				return max - min
			}
			if ss, bs := spread(res), spread(base); ss >= bs {
				t.Fatalf("stealing did not shrink the busy-time spread: %v (steal) vs %v (no steal)", ss, bs)
			}
		})
	}
}

// TestStealCrashUnderFaults: stealing, a mid-run crash, and 0.5% fault rates
// together — the full chaos stack — still converge to a verified factor with
// announced termination on both backends and both workloads.
func TestStealCrashUnderFaults(t *testing.T) {
	for _, backend := range stack.Backends {
		for _, w := range Workloads {
			t.Run(backend.String()+"/"+w.String(), func(t *testing.T) {
				crash := midRunCrash(t, backend, w)
				res := Run(Opts{
					Backend: backend, Workload: w,
					Faults: faultCfg(0.005, 17), Rel: relCfg(),
					Crash: &crash, Recover: true,
					Steal: true,
				})
				if res.Err != nil {
					t.Fatalf("aborted: %v", res.Err)
				}
				if !res.Verified {
					t.Fatalf("factor error %g", res.RelErr)
				}
				if res.Restarts != 1 {
					t.Fatalf("restarts = %d, want 1", res.Restarts)
				}
				if !res.TermAnnounced {
					t.Fatal("no termination announcement")
				}
			})
		}
	}
}
