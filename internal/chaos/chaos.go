// Package chaos runs the repository's real task graphs — dense tiled
// Cholesky (internal/cholesky) and the TLR HiCMA factorization
// (internal/hicma) — over a fault-injected fabric with the reliability layer
// (internal/rel) interposed, and verifies the numerical result afterwards.
//
// This is the proof obligation of the fault-injection work: under seeded
// drop/duplicate/corrupt/reorder faults the runtime must still drive the DAG
// to a bit-verified factorization on both communication backends, and a
// severed link must surface rel.PeerUnreachable through the engine's error
// path as a clean graph abort — never a hang, never a panic. Everything is
// deterministic: one Opts value (including the fault seed) reproduces one
// execution exactly.
package chaos

import (
	"fmt"
	"math"

	"amtlci/internal/cholesky"
	"amtlci/internal/core/stack"
	"amtlci/internal/fabric"
	"amtlci/internal/hicma"
	"amtlci/internal/linalg"
	"amtlci/internal/metrics"
	"amtlci/internal/parsec"
	recov "amtlci/internal/recover"
	"amtlci/internal/rel"
	"amtlci/internal/sim"
	"amtlci/internal/tlr"
)

// Workload selects the task graph to run.
type Workload int

const (
	// Cholesky is the dense tiled factorization (8×8 tiles of 4, n=32).
	Cholesky Workload = iota
	// HiCMA is the tile-low-rank factorization (n=96, nb=16).
	HiCMA
)

// Workloads lists both graphs.
var Workloads = []Workload{Cholesky, HiCMA}

// String names the workload for tables and subtests.
func (w Workload) String() string {
	switch w {
	case Cholesky:
		return "cholesky"
	case HiCMA:
		return "hicma"
	default:
		return fmt.Sprintf("Workload(%d)", int(w))
	}
}

// Opts configures one chaos execution.
type Opts struct {
	Backend  stack.Backend
	Workload Workload
	Ranks    int // default 4
	Workers  int // per-rank worker cores, default 2

	// Faults, when non-nil, is installed on the fabric. Rel, when non-nil,
	// interposes the reliability layer. Both nil reproduces the fault-free
	// baseline the slowdown bound is measured against.
	Faults *fabric.FaultConfig
	Rel    *rel.Config

	// Crash, when non-nil, scripts one rank's fail-stop failure on the
	// fabric. Without Recover the run aborts with a peer-death error.
	Crash *CrashSpec
	// Crashes scripts a cascade of fail-stop failures (distinct ranks, any
	// times — including a buddy pair dying together or a crash landing
	// inside an earlier crash's recovery window). Combined with Crash when
	// both are set.
	Crashes []CrashSpec
	// Recover arms crash recovery: the reliability layer (forced on) runs
	// the heartbeat failure detector, every rank buddy-checkpoints its
	// completed tasks' outputs, and the parsec runtime re-executes each dead
	// rank's work on the rank holding its checkpoints. The recovery budget
	// is sized to the scripted cascade (every scripted crash is absorbed).
	Recover bool

	// Steal enables inter-rank work stealing in the runtime: idle ranks
	// probe loaded ones and migrate ready tasks, which is what flattens the
	// post-crash imbalance a restart dumps on one buddy.
	Steal bool

	// TaskScale multiplies every task's simulated compute cost (values <= 1
	// mean 1, i.e. unscaled). The chaos mini-problems shrink the matrices so
	// the numerics verify quickly, which leaves their runs network-latency
	// bound; scaling compute back up restores the paper's regime, where
	// worker busy time dominates and a post-crash imbalance is visible in
	// the makespan. Numerics are unaffected — only simulated durations grow.
	TaskScale float64
}

// scaledPool wraps a Taskpool, multiplying task costs by a constant.
type scaledPool struct {
	parsec.Taskpool
	scale float64
}

func (p scaledPool) Cost(t parsec.TaskID) sim.Duration {
	return sim.Duration(float64(p.Taskpool.Cost(t)) * p.scale)
}

// CrashSpec schedules one rank's fail-stop crash.
type CrashSpec struct {
	Rank int
	// At is the virtual time of the crash, from job start.
	At sim.Duration
}

// Storm stride and jitter: consecutive storm crashes land one detection
// lease apart, give or take a seeded jitter, so a cascade mixes every
// regime — crashes folding into an in-flight recovery round, crashes
// landing mid-re-execution, and cleanly sequential rounds.
const (
	stormStride = 1500 * sim.Microsecond
	stormJitter = 1000 * sim.Microsecond
)

// Storm derives a seeded cascade of k fail-stop crashes on distinct ranks.
// The first crash lands at ~40% of the given fault-free makespan; each
// subsequent one follows a stride plus seeded jitter, which keeps the
// cascade inside the (ever-extending) recovery tail. At least one rank
// always survives: k is clamped to ranks-1. The same (seed, k, ranks,
// base) reproduces the same schedule.
func Storm(seed uint64, k, ranks int, base sim.Duration) []CrashSpec {
	if ranks <= 1 || k <= 0 {
		return nil
	}
	if k > ranks-1 {
		k = ranks - 1
	}
	// splitmix64: tiny, seedable, deterministic — no global rand state.
	s := seed
	next := func() uint64 {
		s += 0x9E3779B97F4A7C15
		z := s
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	// Seeded Fisher-Yates over all ranks; the first k entries crash.
	perm := make([]int, ranks)
	for i := range perm {
		perm[i] = i
	}
	for i := ranks - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	at := base * 2 / 5
	cs := make([]CrashSpec, 0, k)
	for i := 0; i < k; i++ {
		cs = append(cs, CrashSpec{Rank: perm[i], At: at})
		at += stormStride + sim.Duration(next()%uint64(stormJitter))
	}
	return cs
}

// crashSpecs merges the single-crash and cascade fields into one schedule.
func (o *Opts) crashSpecs() []CrashSpec {
	var cs []CrashSpec
	if o.Crash != nil {
		cs = append(cs, *o.Crash)
	}
	return append(cs, o.Crashes...)
}

// Result reports one execution.
type Result struct {
	// Makespan is the virtual time from release to completion (zero when
	// the graph aborted).
	Makespan sim.Duration
	// Err is the graph abort, nil when the DAG ran to completion.
	Err error
	// RelErr is the numerical relative error of the assembled factor
	// against the reference problem (valid when Err is nil).
	RelErr float64
	// Verified reports RelErr within the workload's tolerance.
	Verified bool
	// Faults and Rel are the fabric's and reliability layer's counters
	// (zero-valued when the corresponding option was off).
	Faults fabric.FaultStats
	Rel    rel.Stats
	// Recovery counters, summed across ranks from the metrics registry
	// (all zero when Opts.Recover was off).
	Restarts      uint64 // completed recovery restarts (one can absorb several deaths)
	RoundsAborted uint64 // recovery rounds interrupted by a fresh death verdict
	PeerDeaths    uint64 // lease-expiry verdicts raised by the detector
	CkptSent      uint64 // checkpoint frames streamed to buddies
	CkptBytes     uint64 // checkpoint bytes streamed to buddies
	CkptStored    uint64 // checkpoint frames retained for a buddy
	Rereplicated  uint64 // checkpoints re-shipped to a new buddy after a death
	Orphaned      uint64 // checkpoints adopted from dead owners by their heirs
	TasksRestored uint64 // done tasks rebuilt from checkpoints at restart
	StaleDropped  uint64 // pre-crash messages dropped by the epoch guard
	// Work-stealing and termination-detection counters (steals are all zero
	// when Opts.Steal was off; the detector always runs).
	Steals        uint64 // successful steal exchanges (thief side)
	StealTasks    uint64 // tasks migrated to thieves
	StealGranted  uint64 // tasks granted by victims
	TermRounds    uint64 // detector rounds initiated
	TermAnnounced bool   // the detector proved and announced termination
	// WorkerBusy is each rank's total worker-core busy time: the per-rank
	// idle/busy split that demonstrates a post-crash rebalance.
	WorkerBusy []sim.Duration
	// Metrics is the deployment's shared instrument registry, for
	// end-of-run dumps (cmd/chaos -metrics).
	Metrics *metrics.Registry
}

// tolerance is the verification threshold per workload: exact arithmetic for
// the dense factorization, the compression accuracy for TLR.
func tolerance(w Workload) float64 {
	if w == HiCMA {
		return 1e-6
	}
	return 1e-10
}

// Run executes one configuration to quiescence and verifies the numerics.
func Run(o Opts) Result {
	if o.Ranks <= 0 {
		o.Ranks = 4
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}

	so := stack.DefaultOptions(o.Backend, o.Ranks)
	so.Fabric.Jitter = 0
	so.Faults = o.Faults
	so.Rel = o.Rel
	crashes := o.crashSpecs()
	if len(crashes) > 0 {
		// Copy the fault config before appending: the caller's value (often
		// shared across a sweep) must not grow crashes per run.
		var fc fabric.FaultConfig
		if o.Faults != nil {
			fc = *o.Faults
		}
		fc.Crashes = append([]fabric.NodeCrash(nil), fc.Crashes...)
		for _, c := range crashes {
			fc.Crashes = append(fc.Crashes, fabric.NodeCrash{Rank: c.Rank, At: sim.Time(c.At)})
		}
		so.Faults = &fc
	}
	if o.Recover {
		// Recovery needs the failure detector, which lives in the
		// reliability layer; force it on (over the caller's tuning if
		// given) without mutating the caller's config.
		rc := rel.DefaultConfig()
		if o.Rel != nil {
			rc = *o.Rel
		}
		rc.EnableHeartbeats()
		so.Rel = &rc
	}
	s := stack.Build(so)

	var (
		tp     parsec.Taskpool
		verify func() float64
	)
	switch o.Workload {
	case Cholesky:
		const tiles, nb = 8, 4
		n := tiles * nb
		prob := tlr.NewProblem(n, 0.3, 1e-2)
		p := cholesky.NewReal(tiles, nb, o.Ranks, 30, prob.Entry)
		tp = p
		verify = func() float64 {
			l := p.AssembleFactor()
			recon := linalg.NewMatrix(n, n)
			linalg.GEMM(recon, l, l, 1, false, true)
			a := prob.Block(0, 0, n, n)
			return linalg.Sub(recon, a).FrobNorm() / a.FrobNorm()
		}
	case HiCMA:
		const n, nb = 96, 16
		prob := tlr.NewProblem(n, 0.4, 1e-2)
		par := hicma.DefaultParams(n, nb)
		par.Acc = 1e-10
		par.MaxRank = nb
		p := hicma.NewReal(par, o.Ranks, prob)
		tp = p
		verify = func() float64 {
			l := p.AssembleFactor()
			recon := linalg.NewMatrix(n, n)
			linalg.GEMM(recon, l, l, 1, false, true)
			a := prob.Block(0, 0, n, n)
			// Only the lower triangle is meaningful.
			var num, den float64
			for i := 0; i < n; i++ {
				for j := 0; j <= i; j++ {
					d := recon.At(i, j) - a.At(i, j)
					num += d * d
					den += a.At(i, j) * a.At(i, j)
				}
			}
			return math.Sqrt(num / den)
		}
	default:
		panic(fmt.Sprintf("chaos: unknown workload %d", int(o.Workload)))
	}
	if o.TaskScale > 1 {
		tp = scaledPool{Taskpool: tp, scale: o.TaskScale}
	}

	cfg := parsec.DefaultConfig(o.Workers)
	cfg.Jitter = 0
	cfg.Metrics = s.Metrics
	cfg.Steal = o.Steal
	rt := parsec.New(s.Eng, s.Engines, tp, cfg)
	if o.Recover {
		mgrs := make([]*recov.Manager, len(s.Engines))
		for i, ce := range s.Engines {
			mgrs[i] = recov.NewManager(ce, s.Metrics)
		}
		// The recovery budget covers exactly the scripted cascade: every
		// scripted crash is absorbed, one more is an abort — and a crashless
		// recovered run still tolerates a single surprise, preserving the
		// pre-cascade default.
		budget := len(crashes)
		if budget < 1 {
			budget = 1
		}
		rt.EnableRecovery(parsec.RecoveryConfig{
			Managers:      mgrs,
			RestartDelay:  100 * sim.Microsecond,
			MaxRecoveries: budget,
		})
		// The runtime learns of a crash the instant the fabric scripts it
		// (handlers and workers go inert); the death *verdicts* still come
		// from the survivors' failure detectors.
		s.Fab.OnCrash(rt.KillRank)
		// Heartbeats are the one event source that outlives the workload;
		// they stop when the termination detector *proves* the computation
		// over (global quiet + no counted message in flight), so the
		// simulation can drain — detection, not orchestrator fiat.
		rt.OnTerminate(s.Rel.StopHeartbeats)
	}

	var res Result
	res.Metrics = s.Metrics
	res.Makespan, res.Err = rt.Run()
	res.Restarts = s.Metrics.Total("parsec", "restarts")
	res.RoundsAborted = s.Metrics.Total("parsec", "recovery_rounds_aborted")
	res.PeerDeaths = s.Metrics.Total("rel", "peer_dead")
	res.CkptSent = s.Metrics.Total("recover", "ckpt_sent")
	res.CkptBytes = s.Metrics.Total("recover", "ckpt_bytes")
	res.CkptStored = s.Metrics.Total("recover", "ckpt_stored")
	res.Rereplicated = s.Metrics.Total("recover", "ckpt_rereplicated")
	res.Orphaned = s.Metrics.Total("recover", "ckpt_orphaned")
	res.TasksRestored = s.Metrics.Total("parsec", "tasks_restored")
	res.StaleDropped = s.Metrics.Total("parsec", "stale_drops")
	res.Steals = s.Metrics.Total("parsec", "steals")
	res.StealTasks = s.Metrics.Total("parsec", "steal_tasks")
	res.StealGranted = s.Metrics.Total("parsec", "steal_granted")
	res.TermRounds = s.Metrics.Total("parsec", "term_rounds")
	res.TermAnnounced = rt.Terminated()
	res.WorkerBusy = make([]sim.Duration, o.Ranks)
	for r := 0; r < o.Ranks; r++ {
		res.WorkerBusy[r] = rt.Stats(r).WorkerBusy
	}
	if so.Faults != nil {
		res.Faults = s.Fab.FaultStats()
	}
	if s.Rel != nil {
		res.Rel = s.Rel.Stats()
	}
	if res.Err != nil {
		res.Makespan = 0
		return res
	}
	res.RelErr = verify()
	res.Verified = res.RelErr <= tolerance(o.Workload)
	if !res.Verified {
		res.Err = fmt.Errorf("chaos: %v factor error %g exceeds %g",
			o.Workload, res.RelErr, tolerance(o.Workload))
	}
	return res
}
