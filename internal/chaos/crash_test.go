package chaos

import (
	"testing"

	"amtlci/internal/core/stack"
	"amtlci/internal/sim"
)

// midRunCrash places the crash at ~40% of the workload's fault-free
// makespan: late enough that completed tasks (and their checkpoints) exist,
// early enough that plenty of work is lost with the rank.
func midRunCrash(t *testing.T, backend stack.Backend, w Workload) CrashSpec {
	t.Helper()
	base := Run(Opts{Backend: backend, Workload: w})
	if base.Err != nil || !base.Verified {
		t.Fatalf("fault-free baseline broken: %+v", base)
	}
	return CrashSpec{Rank: 1, At: base.Makespan * 2 / 5}
}

// TestCrashRecoveryCompletes is the tentpole acceptance: both workloads on
// both backends survive a mid-run rank crash — the survivors detect the
// death by lease expiry, the buddy adopts the dead rank's tasks, and the
// factorization still verifies numerically.
func TestCrashRecoveryCompletes(t *testing.T) {
	for _, backend := range stack.Backends {
		for _, w := range Workloads {
			t.Run(backend.String()+"/"+w.String(), func(t *testing.T) {
				crash := midRunCrash(t, backend, w)
				res := Run(Opts{
					Backend: backend, Workload: w,
					Crash: &crash, Recover: true,
				})
				if res.Err != nil {
					t.Fatalf("graph aborted despite recovery: %v", res.Err)
				}
				if !res.Verified {
					t.Fatalf("factor error %g after recovery", res.RelErr)
				}
				if res.Restarts != 1 {
					t.Fatalf("restarts = %d, want exactly 1", res.Restarts)
				}
				if res.PeerDeaths == 0 {
					t.Fatal("no lease-expiry verdicts despite a crash")
				}
				if res.CkptSent == 0 || res.CkptStored == 0 {
					t.Fatalf("checkpoint traffic idle: sent=%d stored=%d",
						res.CkptSent, res.CkptStored)
				}
				if res.TasksRestored == 0 {
					t.Fatal("restart restored no tasks from checkpoints")
				}
				if res.Faults.Crashes != 1 {
					t.Fatalf("fabric crash count = %d, want 1", res.Faults.Crashes)
				}
			})
		}
	}
}

// TestCrashRecoveryDeterministic: the same crash replayed from the same
// options reproduces the execution exactly — makespan and every counter.
func TestCrashRecoveryDeterministic(t *testing.T) {
	crash := midRunCrash(t, stack.LCI, Cholesky)
	o := Opts{
		Backend: stack.LCI, Workload: Cholesky,
		Crash: &crash, Recover: true,
	}
	a, b := Run(o), Run(o)
	if a.Err != nil || b.Err != nil {
		t.Fatalf("aborts: %v / %v", a.Err, b.Err)
	}
	if a.Makespan != b.Makespan ||
		a.Restarts != b.Restarts || a.PeerDeaths != b.PeerDeaths ||
		a.CkptSent != b.CkptSent || a.CkptBytes != b.CkptBytes ||
		a.TasksRestored != b.TasksRestored || a.StaleDropped != b.StaleDropped {
		t.Fatalf("crash replay diverged:\n a %+v\n b %+v", a, b)
	}
}

// TestRecoveryOverheadWithoutCrash: arming recovery (heartbeats +
// checkpointing) on a healthy run must not break anything and must cost a
// bounded slowdown — checkpoints ride the same fabric as the workload.
func TestRecoveryOverheadWithoutCrash(t *testing.T) {
	for _, backend := range stack.Backends {
		t.Run(backend.String(), func(t *testing.T) {
			base := Run(Opts{Backend: backend, Workload: Cholesky})
			if base.Err != nil || !base.Verified {
				t.Fatalf("fault-free baseline broken: %+v", base)
			}
			res := Run(Opts{Backend: backend, Workload: Cholesky, Recover: true})
			if res.Err != nil || !res.Verified {
				t.Fatalf("recovery-armed healthy run broken: %+v", res)
			}
			if res.Restarts != 0 {
				t.Fatalf("spurious restart on a healthy run: %d", res.Restarts)
			}
			if res.PeerDeaths != 0 {
				t.Fatalf("false-positive death verdicts: %d", res.PeerDeaths)
			}
			if res.CkptSent == 0 {
				t.Fatal("recovery armed but no checkpoints streamed")
			}
			if limit := 3 * base.Makespan; res.Makespan > limit {
				t.Fatalf("recovery overhead unbounded: %v armed vs %v clean",
					res.Makespan, base.Makespan)
			}
		})
	}
}

// TestCrashWithoutRecoveryAborts: with the reliability layer but no recovery
// armed, a crashed rank surfaces as a clean graph abort (retry exhaustion →
// peer unreachable), never a hang.
func TestCrashWithoutRecoveryAborts(t *testing.T) {
	for _, backend := range stack.Backends {
		t.Run(backend.String(), func(t *testing.T) {
			res := Run(Opts{
				Backend: backend, Workload: Cholesky,
				Crash: &CrashSpec{Rank: 1, At: 200 * sim.Microsecond},
				Rel:   relCfg(),
			})
			if res.Err == nil {
				t.Fatal("rank crashed without recovery but the graph claims success")
			}
		})
	}
}

// TestCrashSpecDoesNotMutateCallerFaults: the crash must be appended to a
// copy of the caller's fault config, or a shared config grows one crash per
// run and replay breaks.
func TestCrashSpecDoesNotMutateCallerFaults(t *testing.T) {
	fc := faultCfg(0.005, 11)
	crash := CrashSpec{Rank: 1, At: 200 * sim.Microsecond}
	o := Opts{
		Backend: stack.LCI, Workload: Cholesky,
		Faults: fc, Rel: relCfg(),
		Crash: &crash, Recover: true,
	}
	Run(o)
	if len(fc.Crashes) != 0 {
		t.Fatalf("caller's fault config mutated: %d crashes appended", len(fc.Crashes))
	}
}
