package chaos

import (
	"errors"
	"testing"

	"amtlci/internal/core/stack"
	"amtlci/internal/fabric"
	"amtlci/internal/rel"
)

// faultCfg is the swept chaos point: rate each of drop, duplicate, corrupt,
// and reorder, from a fixed seed so failures reproduce.
func faultCfg(rate float64, seed uint64) *fabric.FaultConfig {
	return &fabric.FaultConfig{
		Drop: rate, Duplicate: rate, Corrupt: rate, Reorder: rate, Seed: seed,
	}
}

func relCfg() *rel.Config {
	c := rel.DefaultConfig()
	return &c
}

// TestGraphsCompleteUnderSweptFaults is the tentpole acceptance: both task
// graphs on both backends run to a numerically verified factorization with
// drop/duplicate/corrupt/reorder each swept up to 2%.
func TestGraphsCompleteUnderSweptFaults(t *testing.T) {
	rates := []float64{0.005, 0.02}
	if testing.Short() {
		rates = []float64{0.02}
	}
	var agg fabric.FaultStats
	var retransmits uint64
	for _, backend := range stack.Backends {
		for _, w := range Workloads {
			for _, rate := range rates {
				t.Run(sub(backend, w, rate), func(t *testing.T) {
					const seed = 0xC7A05
					res := Run(Opts{
						Backend: backend, Workload: w,
						Faults: faultCfg(rate, seed), Rel: relCfg(),
					})
					if res.Err != nil {
						t.Fatalf("seed %#x: graph aborted: %v", seed, res.Err)
					}
					if !res.Verified {
						t.Fatalf("seed %#x: factor error %g", seed, res.RelErr)
					}
					f := res.Faults
					if rate >= 0.02 && f.Dropped+f.Duplicated+f.Corrupted+f.Reordered == 0 {
						t.Fatalf("seed %#x: fault injection idle: %+v", seed, f)
					}
					// A lost ACK needs no retransmit (the next cumulative ACK
					// covers it), so per-run drops do not imply per-run
					// retransmits — recovery is asserted on the aggregate.
					agg.Dropped += f.Dropped
					agg.Duplicated += f.Duplicated
					agg.Corrupted += f.Corrupted
					agg.Reordered += f.Reordered
					retransmits += res.Rel.Retransmits
				})
			}
		}
	}
	// Across the sweep every fault class must have fired, and recovery must
	// have actually happened — otherwise the chaos harness proves nothing.
	if agg.Dropped == 0 || agg.Duplicated == 0 || agg.Corrupted == 0 || agg.Reordered == 0 {
		t.Fatalf("sweep left a fault class unexercised: %+v", agg)
	}
	if retransmits == 0 {
		t.Fatal("sweep finished without a single retransmission")
	}
}

func sub(b stack.Backend, w Workload, rate float64) string {
	return b.String() + "/" + w.String() + "/" + ratePct(rate)
}

func ratePct(rate float64) string {
	switch rate {
	case 0.005:
		return "0.5pct"
	case 0.02:
		return "2pct"
	default:
		return "rate"
	}
}

// TestSeveredLinkAbortsCleanly severs one link permanently: the sender must
// exhaust its retry budget, declare the peer unreachable, and the runtime
// must abort the graph with that error — no hang, no panic.
func TestSeveredLinkAbortsCleanly(t *testing.T) {
	for _, backend := range stack.Backends {
		t.Run(backend.String(), func(t *testing.T) {
			fc := &fabric.FaultConfig{
				Seed:  7,
				Links: []fabric.LinkFault{{Src: 0, Dst: 1, Sever: true}},
			}
			res := Run(Opts{
				Backend: backend, Workload: Cholesky,
				Faults: fc, Rel: relCfg(),
			})
			if res.Err == nil {
				t.Fatal("severed link but the graph claims success")
			}
			var pu *rel.PeerUnreachable
			if !errors.As(res.Err, &pu) {
				t.Fatalf("abort error does not carry PeerUnreachable: %v", res.Err)
			}
			// Either endpoint may detect: rank 0's sends to 1 are dropped
			// outright, and rank 1's sends to 0 are delivered but lose their
			// ACKs on the severed return direction. The termination detector's
			// t=0 control traffic means rank 1 often races ahead.
			if !(pu.From == 0 && pu.To == 1) && !(pu.From == 1 && pu.To == 0) {
				t.Fatalf("unreachable pair (%d,%d), want the severed pair {0,1}", pu.From, pu.To)
			}
			if res.Rel.Unreachable == 0 {
				t.Fatalf("rel stats show no unreachable peer: %+v", res.Rel)
			}
		})
	}
}

// TestDeterministicReplay: identical Opts (same seed) must reproduce the
// execution exactly, counters included.
func TestDeterministicReplay(t *testing.T) {
	o := Opts{
		Backend: stack.LCI, Workload: Cholesky,
		Faults: faultCfg(0.02, 99), Rel: relCfg(),
	}
	a, b := Run(o), Run(o)
	if a.Err != nil || b.Err != nil {
		t.Fatalf("aborts: %v / %v", a.Err, b.Err)
	}
	if a.Makespan != b.Makespan || a.Faults != b.Faults || a.Rel != b.Rel {
		t.Fatalf("replay diverged:\n a %+v\n b %+v", a, b)
	}
}

// TestBoundedSlowdownUnderFaults: 2% fault rates may cost retransmissions
// and ACK traffic, but not an unbounded makespan blow-up.
func TestBoundedSlowdownUnderFaults(t *testing.T) {
	for _, backend := range stack.Backends {
		t.Run(backend.String(), func(t *testing.T) {
			base := Run(Opts{Backend: backend, Workload: Cholesky})
			if base.Err != nil || !base.Verified {
				t.Fatalf("fault-free baseline broken: %+v", base)
			}
			faulty := Run(Opts{
				Backend: backend, Workload: Cholesky,
				Faults: faultCfg(0.02, 5), Rel: relCfg(),
			})
			if faulty.Err != nil || !faulty.Verified {
				t.Fatalf("faulty run broken: %+v", faulty)
			}
			if limit := 5 * base.Makespan; faulty.Makespan > limit {
				t.Fatalf("slowdown unbounded: %v faulty vs %v clean",
					faulty.Makespan, base.Makespan)
			}
		})
	}
}

// TestReliabilityLayerAloneIsBenign: rel over a clean fabric must not change
// correctness and must not retransmit.
func TestReliabilityLayerAloneIsBenign(t *testing.T) {
	res := Run(Opts{Backend: stack.LCI, Workload: HiCMA, Rel: relCfg()})
	if res.Err != nil || !res.Verified {
		t.Fatalf("rel over a clean fabric broke the run: %+v", res)
	}
	if res.Rel.Retransmits != 0 || res.Rel.DupDropped != 0 {
		t.Fatalf("spurious recovery on a clean fabric: %+v", res.Rel)
	}
}
