package chaos

import (
	"strconv"
	"testing"

	"amtlci/internal/core/stack"
	"amtlci/internal/sim"
)

// Multi-crash acceptance: the runtime must survive cascading fail-stop
// failures — staggered crashes across recovery rounds, a buddy pair dying
// together (taking a whole checkpoint replica set with it), and a crash
// landing inside an earlier crash's recovery window — and still drive both
// workloads to a numerically verified factorization on both backends.
//
// The crash times are derived, not guessed: the second crash is placed just
// before the single-crash recovered run would have finished, which
// guarantees it interrupts the re-execution of the first crash's lost work
// (the run is still alive there by construction). Detection takes a full
// lease (~2ms), so every derived instant is deterministic per Opts.

// staggeredCrashes returns a two-crash cascade for the workload: rank 1 at
// ~40% of the fault-free makespan, then rank 2 just before the moment the
// single-crash recovered run would have completed — i.e. mid-way through
// re-executing rank 1's lost work, after the first restart round retired.
func staggeredCrashes(t *testing.T, o Opts) []CrashSpec {
	t.Helper()
	base := Run(o)
	if base.Err != nil || !base.Verified {
		t.Fatalf("fault-free baseline broken: %+v", base)
	}
	c1 := CrashSpec{Rank: 1, At: base.Makespan * 2 / 5}
	o1 := o
	o1.Crashes, o1.Recover = []CrashSpec{c1}, true
	m1 := Run(o1)
	if m1.Err != nil || !m1.Verified {
		t.Fatalf("single-crash recovery broken: %+v", m1)
	}
	return []CrashSpec{c1, {Rank: 2, At: m1.Makespan - 60*sim.Microsecond}}
}

// TestTwoStaggeredCrashesComplete: rank 1 dies mid-run, recovery restarts,
// and rank 2 — by then the heir executing rank 1's adopted work — dies
// during the re-execution. Two full recovery rounds; the second remaps
// rank 1's tasks a second time (1 → 2 → 3), so completion exercises the
// chained-heir lookup and the re-replicated checkpoints made after round
// one (without re-replication, rank 1's checkpoints die with rank 2).
func TestTwoStaggeredCrashesComplete(t *testing.T) {
	for _, backend := range stack.Backends {
		for _, w := range Workloads {
			t.Run(backend.String()+"/"+w.String(), func(t *testing.T) {
				o := Opts{Backend: backend, Workload: w}
				o.Crashes, o.Recover = staggeredCrashes(t, o), true
				res := Run(o)
				if res.Err != nil {
					t.Fatalf("cascade aborted despite recovery: %v", res.Err)
				}
				if !res.Verified {
					t.Fatalf("factor error %g after two-crash recovery", res.RelErr)
				}
				if res.Faults.Crashes != 2 {
					t.Fatalf("fabric crash count = %d, want 2", res.Faults.Crashes)
				}
				if res.Restarts != 2 {
					t.Fatalf("restarts = %d, want 2 (one per staggered crash)", res.Restarts)
				}
				// Verdicts: three survivors see rank 1 die, then the two
				// remaining survivors see rank 2 die.
				if res.PeerDeaths != 5 {
					t.Fatalf("peer-death verdicts = %d, want 5", res.PeerDeaths)
				}
				if res.Orphaned == 0 {
					t.Fatal("heirs adopted no orphaned checkpoints")
				}
				if res.Rereplicated == 0 {
					t.Fatal("no checkpoints re-replicated to new buddies")
				}
				if res.TasksRestored == 0 {
					t.Fatal("restarts restored no tasks from checkpoints")
				}
				if !res.TermAnnounced {
					t.Fatal("run completed without a termination announcement")
				}
			})
		}
	}
}

// TestBuddyPairCrashCompletes: ranks 1 and 2 — a protection pair on the
// ring — die at the same instant, destroying both the pair's primaries and
// every checkpoint they held for each other. One combined recovery round
// absorbs both deaths; the lost work is simply re-executed (checkpoint loss
// degrades to recomputation, never to a wrong answer).
func TestBuddyPairCrashCompletes(t *testing.T) {
	for _, backend := range stack.Backends {
		for _, w := range Workloads {
			t.Run(backend.String()+"/"+w.String(), func(t *testing.T) {
				base := Run(Opts{Backend: backend, Workload: w})
				if base.Err != nil || !base.Verified {
					t.Fatalf("fault-free baseline broken: %+v", base)
				}
				at := base.Makespan * 2 / 5
				res := Run(Opts{
					Backend: backend, Workload: w,
					Crashes: []CrashSpec{{Rank: 1, At: at}, {Rank: 2, At: at}},
					Recover: true,
				})
				if res.Err != nil {
					t.Fatalf("buddy-pair crash aborted despite recovery: %v", res.Err)
				}
				if !res.Verified {
					t.Fatalf("factor error %g after buddy-pair recovery", res.RelErr)
				}
				// Simultaneous verdicts converge into one combined round.
				if res.Restarts != 1 {
					t.Fatalf("restarts = %d, want 1 combined round", res.Restarts)
				}
				// Each of the two survivors raises one verdict per dead rank.
				if res.PeerDeaths != 4 {
					t.Fatalf("peer-death verdicts = %d, want 4", res.PeerDeaths)
				}
				if res.TasksRestored == 0 {
					t.Fatal("surviving checkpoints restored no tasks")
				}
				if res.Rereplicated == 0 {
					t.Fatal("survivors did not re-protect onto the collapsed ring")
				}
				if !res.TermAnnounced {
					t.Fatal("run completed without a termination announcement")
				}
			})
		}
	}
}

// TestCrashDuringRecoveryCompletes: the second crash lands 150µs after the
// first — deep inside the first crash's detection window, long before its
// restart round can fire. The round must not rebuild state around a rank
// that is already gone: it either folds both deaths into one combined
// restart directly, or aborts and re-converges (counted in RoundsAborted,
// which varies with lease-tick phase — the differential test below pins it
// per configuration). Either way: exactly one completed round, verified.
func TestCrashDuringRecoveryCompletes(t *testing.T) {
	for _, backend := range stack.Backends {
		for _, w := range Workloads {
			t.Run(backend.String()+"/"+w.String(), func(t *testing.T) {
				base := Run(Opts{Backend: backend, Workload: w})
				if base.Err != nil || !base.Verified {
					t.Fatalf("fault-free baseline broken: %+v", base)
				}
				at := base.Makespan * 2 / 5
				res := Run(Opts{
					Backend: backend, Workload: w,
					Crashes: []CrashSpec{
						{Rank: 1, At: at},
						{Rank: 2, At: at + 150*sim.Microsecond},
					},
					Recover: true,
				})
				if res.Err != nil {
					t.Fatalf("mid-recovery crash aborted the run: %v", res.Err)
				}
				if !res.Verified {
					t.Fatalf("factor error %g after mid-recovery crash", res.RelErr)
				}
				if res.Restarts != 1 {
					t.Fatalf("restarts = %d, want 1 combined round", res.Restarts)
				}
				if res.PeerDeaths != 4 {
					t.Fatalf("peer-death verdicts = %d, want 4", res.PeerDeaths)
				}
				if res.TasksRestored == 0 {
					t.Fatal("combined round restored no tasks")
				}
				if !res.TermAnnounced {
					t.Fatal("run completed without a termination announcement")
				}
			})
		}
	}
}

// TestRecoveryRoundAborted pins the interruptible-round machinery itself:
// with the second crash one full lease after the first, rank 2 is already
// marked dead (fabric-side) when rank 1's armed restart fires, but its
// death verdicts have not converged yet — the round must abort rather than
// rebuild around the unconverged corpse, then re-run combined once the
// votes arrive.
func TestRecoveryRoundAborted(t *testing.T) {
	for _, backend := range stack.Backends {
		t.Run(backend.String(), func(t *testing.T) {
			base := Run(Opts{Backend: backend, Workload: Cholesky})
			if base.Err != nil || !base.Verified {
				t.Fatalf("fault-free baseline broken: %+v", base)
			}
			at := base.Makespan * 2 / 5
			res := Run(Opts{
				Backend: backend, Workload: Cholesky,
				Crashes: []CrashSpec{
					{Rank: 1, At: at},
					{Rank: 2, At: at + 2*sim.Millisecond},
				},
				Recover: true,
			})
			if res.Err != nil || !res.Verified {
				t.Fatalf("aborting round broke the run: %+v", res)
			}
			if res.RoundsAborted == 0 {
				t.Fatal("restart fired with an unconverged dead rank and did not abort")
			}
			if res.Restarts != 1 {
				t.Fatalf("restarts = %d, want 1 combined round after the abort", res.Restarts)
			}
		})
	}
}

// TestThreeCrashSoleSurvivor: three staggered crashes leave rank 0 alone.
// The protection ring collapses to a single node (self-buddy — checkpoints
// become local-only), every dead rank's work chains onto the survivor, and
// the run still verifies. Scaled HiCMA keeps the re-execution tails long
// enough that each derived crash instant lands mid-recovery of the last.
func TestThreeCrashSoleSurvivor(t *testing.T) {
	for _, backend := range stack.Backends {
		t.Run(backend.String(), func(t *testing.T) {
			o := Opts{Backend: backend, Workload: HiCMA, TaskScale: 300}
			cascade := staggeredCrashes(t, o)
			o2 := o
			o2.Crashes, o2.Recover = cascade, true
			m2 := Run(o2)
			if m2.Err != nil || !m2.Verified {
				t.Fatalf("two-crash stage broken: %+v", m2)
			}
			o3 := o
			o3.Crashes = append(cascade, CrashSpec{Rank: 3, At: m2.Makespan - 60*sim.Microsecond})
			o3.Recover = true
			res := Run(o3)
			if res.Err != nil {
				t.Fatalf("near-wipeout aborted despite recovery: %v", res.Err)
			}
			if !res.Verified {
				t.Fatalf("factor error %g with a sole survivor", res.RelErr)
			}
			if res.Faults.Crashes != 3 {
				t.Fatalf("fabric crash count = %d, want 3", res.Faults.Crashes)
			}
			// 3 verdicts for rank 1, 2 for rank 2, 1 for rank 3: every crash
			// was detected by every rank still alive at the time.
			if res.PeerDeaths != 6 {
				t.Fatalf("peer-death verdicts = %d, want 6", res.PeerDeaths)
			}
			if res.Restarts < 2 {
				t.Fatalf("restarts = %d, want >= 2", res.Restarts)
			}
			if res.TasksRestored == 0 {
				t.Fatal("no tasks restored across the cascade")
			}
			if !res.TermAnnounced {
				t.Fatal("sole survivor never proved termination")
			}
		})
	}
}

// TestRankZeroCrashCompletes: the lowest rank is not special — it holds the
// deadvote collector and the termination detector's home, both of which
// must re-home onto the lowest survivor when rank 0 itself dies.
func TestRankZeroCrashCompletes(t *testing.T) {
	for _, backend := range stack.Backends {
		t.Run(backend.String(), func(t *testing.T) {
			base := Run(Opts{Backend: backend, Workload: Cholesky})
			if base.Err != nil || !base.Verified {
				t.Fatalf("fault-free baseline broken: %+v", base)
			}
			res := Run(Opts{
				Backend: backend, Workload: Cholesky,
				Crashes: []CrashSpec{{Rank: 0, At: base.Makespan * 2 / 5}},
				Recover: true,
			})
			if res.Err != nil || !res.Verified {
				t.Fatalf("rank-0 crash broke recovery: %+v", res)
			}
			if res.Restarts != 1 {
				t.Fatalf("restarts = %d, want 1", res.Restarts)
			}
			if !res.TermAnnounced {
				t.Fatal("run completed without a termination announcement")
			}
		})
	}
}

// TestCrashStormCompletes: the seeded storm generator (the CLI's
// -crash-storm) produces cascades that the runtime absorbs on both
// backends, for several seeds, with deterministic replay. Storm schedules
// may fold crashes into combined or aborted rounds depending on the seed —
// the invariants are completion, verification, and replay identity.
func TestCrashStormCompletes(t *testing.T) {
	for _, backend := range stack.Backends {
		for _, seed := range []uint64{0xC7A05, 99} {
			t.Run(backend.String()+"/"+strconv.FormatUint(seed, 16), func(t *testing.T) {
				base := Run(Opts{Backend: backend, Workload: Cholesky})
				if base.Err != nil || !base.Verified {
					t.Fatalf("fault-free baseline broken: %+v", base)
				}
				cascade := Storm(seed, 3, 4, base.Makespan)
				if len(cascade) != 3 {
					t.Fatalf("storm produced %d crashes, want 3", len(cascade))
				}
				o := Opts{Backend: backend, Workload: Cholesky, Crashes: cascade, Recover: true}
				a, b := Run(o), Run(o)
				if a.Err != nil || !a.Verified {
					t.Fatalf("storm broke the run: %+v", a)
				}
				if a.Faults.Crashes != 3 {
					t.Fatalf("fabric crash count = %d, want 3", a.Faults.Crashes)
				}
				if a.Restarts < 1 || a.Restarts > 3 {
					t.Fatalf("restarts = %d, want 1..3", a.Restarts)
				}
				if !sameResult(a, b) {
					t.Fatalf("storm replay diverged:\n a %+v\n b %+v", a, b)
				}
			})
		}
	}
}

// sameResult compares every deterministic field of two runs: makespan, the
// numerical error to the bit, and all recovery/steal/termination counters.
func sameResult(a, b Result) bool {
	if len(a.WorkerBusy) != len(b.WorkerBusy) {
		return false
	}
	for i := range a.WorkerBusy {
		if a.WorkerBusy[i] != b.WorkerBusy[i] {
			return false
		}
	}
	return a.Makespan == b.Makespan && a.RelErr == b.RelErr &&
		a.Restarts == b.Restarts && a.RoundsAborted == b.RoundsAborted &&
		a.PeerDeaths == b.PeerDeaths &&
		a.CkptSent == b.CkptSent && a.CkptBytes == b.CkptBytes &&
		a.CkptStored == b.CkptStored &&
		a.Rereplicated == b.Rereplicated && a.Orphaned == b.Orphaned &&
		a.TasksRestored == b.TasksRestored && a.StaleDropped == b.StaleDropped &&
		a.Steals == b.Steals && a.StealTasks == b.StealTasks &&
		a.StealGranted == b.StealGranted && a.TermRounds == b.TermRounds
}

// TestTwoCrashDeterministicDifferential is the differential determinism
// obligation for cascades: one Opts value — two crashes, recovery, with and
// without work stealing — replays to a bit-identical execution on both
// backends. Every counter (including the new re-replication, orphan, and
// aborted-round counters), the per-rank busy times, and the numerical error
// itself must match exactly across two independent runs.
func TestTwoCrashDeterministicDifferential(t *testing.T) {
	for _, backend := range stack.Backends {
		for _, steal := range []bool{false, true} {
			name := backend.String() + "/steal=off"
			if steal {
				name = backend.String() + "/steal=on"
			}
			t.Run(name, func(t *testing.T) {
				// The steal regime needs compute-dominant tasks and DAG
				// width for migration to fire; the no-steal regime uses the
				// plain mini-problem.
				o := Opts{Backend: backend, Workload: Cholesky}
				if steal {
					o = Opts{Backend: backend, Workload: HiCMA, TaskScale: 300, Workers: 1, Steal: true}
				}
				o.Crashes, o.Recover = staggeredCrashes(t, o), true
				a, b := Run(o), Run(o)
				if a.Err != nil || b.Err != nil {
					t.Fatalf("aborts: %v / %v", a.Err, b.Err)
				}
				if !a.Verified || !b.Verified {
					t.Fatalf("unverified: %g / %g", a.RelErr, b.RelErr)
				}
				if steal && a.Steals == 0 {
					t.Fatal("steal regime produced zero steals")
				}
				if !sameResult(a, b) {
					t.Fatalf("two-crash replay diverged:\n a %+v\n b %+v", a, b)
				}
			})
		}
	}
}
