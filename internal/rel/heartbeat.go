package rel

import (
	"fmt"

	"amtlci/internal/fabric"
	"amtlci/internal/sim"
)

// Heartbeat failure detection. When Config.HeartbeatPeriod is set, every
// endpoint runs a lease-based failure detector over all of its peers:
//
//   - any arrival from a peer — data frame, ACK, or explicit heartbeat —
//     renews that peer's lease (lastHeard);
//   - a peer the endpoint has not transmitted anything to for a full period
//     receives an explicit heartbeat beacon, so the beacons piggyback on
//     regular protocol traffic and cost nothing on busy links;
//   - a peer whose lease has been silent for LeaseTimeout is declared dead
//     with a PeerDead notification — a whole-rank verdict, distinct from the
//     per-send PeerUnreachable of an exhausted retry budget.
//
// Because every endpoint monitors every peer, all survivors of a rank crash
// converge on the same verdict within LeaseTimeout + HeartbeatPeriod of the
// failure, whether or not they had traffic in flight toward the dead rank.
//
// The detector's tick is an ordinary simulation event, so detection does not
// depend on application traffic keeping the event loop alive; a recovery
// orchestrator stops the ticks at quiescence via StopHeartbeats.

// PeerDead reports that From's failure detector declared To dead: nothing
// has been heard from To for a full lease window.
type PeerDead struct {
	From, To int
	// LastHeard is the last virtual time anything arrived from To.
	LastHeard sim.Time
	// Lease is the configured lease timeout that expired.
	Lease sim.Duration
}

func (e *PeerDead) Error() string {
	return fmt.Sprintf("rel: rank %d declared peer %d dead (silent since %v, lease %v)",
		e.From, e.To, e.LastHeard, e.Lease)
}

// DeadPeer returns the rank declared dead (core.PeerDeath).
func (e *PeerDead) DeadPeer() int { return e.To }

// hbMsg marks a fabric message as a heartbeat beacon; the encoded Heartbeat
// travels in the payload so fault injection can damage real bytes.
type hbMsg struct{}

// Heartbeat is the wire content of an explicit beacon.
type Heartbeat struct {
	// From is the sender's rank (validated against the fabric source on
	// receipt, so a corrupted beacon cannot renew the wrong lease).
	From int32
	// Seq increments per beacon the sender emits.
	Seq uint64
	// Sent is the send time in virtual picoseconds.
	Sent int64
}

const (
	hbMagic   = 0x4842 // "HB"
	hbVersion = 1
	// HeartbeatBytes is the encoded size of a beacon: magic, version,
	// sender, sequence number, send time.
	HeartbeatBytes = 2 + 1 + 4 + 8 + 8
)

// EncodeHeartbeat serializes a beacon.
func EncodeHeartbeat(h Heartbeat) []byte {
	b := make([]byte, HeartbeatBytes)
	b[0] = byte(hbMagic & 0xFF)
	b[1] = byte(hbMagic >> 8)
	b[2] = hbVersion
	put32 := func(off int, v uint32) {
		b[off] = byte(v)
		b[off+1] = byte(v >> 8)
		b[off+2] = byte(v >> 16)
		b[off+3] = byte(v >> 24)
	}
	put64 := func(off int, v uint64) {
		put32(off, uint32(v))
		put32(off+4, uint32(v>>32))
	}
	put32(3, uint32(h.From))
	put64(7, h.Seq)
	put64(15, uint64(h.Sent))
	return b
}

// DecodeHeartbeat parses a beacon, rejecting anything malformed: wrong
// length, wrong magic, unknown version, or a negative sender rank. It never
// panics on arbitrary input (fuzzed).
func DecodeHeartbeat(b []byte) (Heartbeat, error) {
	var h Heartbeat
	if len(b) != HeartbeatBytes {
		return h, fmt.Errorf("rel: heartbeat length %d, want %d", len(b), HeartbeatBytes)
	}
	if m := uint16(b[0]) | uint16(b[1])<<8; m != hbMagic {
		return h, fmt.Errorf("rel: heartbeat magic %#x, want %#x", m, hbMagic)
	}
	if b[2] != hbVersion {
		return h, fmt.Errorf("rel: heartbeat version %d, want %d", b[2], hbVersion)
	}
	rd32 := func(off int) uint32 {
		return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
	}
	rd64 := func(off int) uint64 {
		return uint64(rd32(off)) | uint64(rd32(off+4))<<32
	}
	h.From = int32(rd32(3))
	h.Seq = rd64(7)
	h.Sent = int64(rd64(15))
	if h.From < 0 {
		return h, fmt.Errorf("rel: heartbeat from negative rank %d", h.From)
	}
	return h, nil
}

// startHeartbeats opens every peer's lease as of now and arms the first
// detector tick.
func (ep *endpoint) startHeartbeats() {
	s := ep.s
	ep.lastSent = make(map[int]sim.Time, len(s.eps)-1)
	ep.lastHeard = make(map[int]sim.Time, len(s.eps)-1)
	now := ep.eng.Now()
	for p := range s.eps {
		if p != ep.rank {
			ep.lastHeard[p] = now
		}
	}
	ep.hbTick = ep.eng.After(s.cfg.HeartbeatPeriod, ep.tickHeartbeats)
}

// tickHeartbeats runs once per period: expire silent leases, then beacon to
// any peer the endpoint has not transmitted to for a full period.
func (ep *endpoint) tickHeartbeats() {
	s := ep.s
	if ep.crashed || s.hbStopped.Load() {
		return
	}
	now := ep.eng.Now()
	for p := range s.eps {
		if p == ep.rank || ep.alreadyNotified(p) {
			continue
		}
		if now.Sub(ep.lastHeard[p]) > s.cfg.LeaseTimeout {
			ep.leaseExpired(p)
			continue
		}
		if now.Sub(ep.lastSent[p]) >= s.cfg.HeartbeatPeriod {
			ep.sendHeartbeat(p)
		}
	}
	// A failure callback above may have stopped the detector for good.
	if !s.hbStopped.Load() && !ep.crashed {
		ep.hbTick = ep.eng.After(s.cfg.HeartbeatPeriod, ep.tickHeartbeats)
	}
}

func (ep *endpoint) sendHeartbeat(peer int) {
	s := ep.s
	ep.hbSeq++
	payload := EncodeHeartbeat(Heartbeat{
		From: int32(ep.rank),
		Seq:  ep.hbSeq,
		Sent: int64(ep.eng.Now()),
	})
	ep.hbSent.Inc()
	ep.noteSent(peer)
	s.fab.Send(&fabric.Message{
		Src:     ep.rank,
		Dst:     peer,
		Size:    int64(len(payload)),
		Payload: payload,
		Meta:    &hbMsg{},
	})
}

// onHeartbeat validates an explicit beacon. The lease itself was already
// renewed by onArrival (any sign of life counts, even a damaged frame); the
// decode exists to keep the wire format honest and countable.
func (ep *endpoint) onHeartbeat(m *fabric.Message) {
	hb, err := DecodeHeartbeat(m.Payload)
	if err != nil || int(hb.From) != m.Src {
		ep.hbBad.Inc()
		return
	}
	ep.hbRecv.Inc()
}

// leaseExpired converts a silent lease into a PeerDead verdict: the tx side
// toward the peer is silenced exactly as an exhausted retry budget would,
// then the (deduplicated) notification fires.
func (ep *endpoint) leaseExpired(peer int) {
	s := ep.s
	ep.silence(ep.txPeerFor(peer))
	ep.notifyPeerFailure(peer, &PeerDead{
		From:      ep.rank,
		To:        peer,
		LastHeard: ep.lastHeard[peer],
		Lease:     s.cfg.LeaseTimeout,
	})
}

// noteSent records a transmission toward peer, suppressing the next explicit
// beacon (the traffic itself is the heartbeat). No-op when the detector is
// off.
func (ep *endpoint) noteSent(peer int) {
	if ep.lastSent != nil {
		ep.lastSent[peer] = ep.eng.Now()
	}
}

// noteHeard renews peer's lease. No-op when the detector is off.
func (ep *endpoint) noteHeard(peer int) {
	if ep.lastHeard != nil {
		ep.lastHeard[peer] = ep.eng.Now()
	}
}

// freeze models the failed rank's own side of a crash: the endpoint stops
// every timer it owns and goes silent, so the dead rank cannot observe its
// peers "failing" (it is the one that is gone). Registered on the fabric's
// crash notification.
func (ep *endpoint) freeze() {
	ep.crashed = true
	ep.eng.Cancel(ep.hbTick)
	ep.hbTick = sim.Event{}
	for _, tp := range ep.tx {
		ep.silence(tp)
	}
	for _, rp := range ep.rx {
		ep.eng.Cancel(rp.ackTimer)
	}
}

// StopHeartbeats cancels every endpoint's detector tick. The termination
// detector calls it when it *proves* the computation over — once the
// workload has completed everywhere there is nothing left to monitor, and
// the perpetual ticks would otherwise keep the simulation alive forever.
// Idempotent: the detector may announce once per recovery epoch, and crashed
// endpoints have already frozen their own timers.
func (s *Stack) StopHeartbeats() {
	if !s.hbStopped.CompareAndSwap(false, true) {
		return
	}
	if s.fab.Domain().Shards() == 1 {
		// Serial: cancel eagerly so the simulation ends at the announcement.
		for _, ep := range s.eps {
			ep.eng.Cancel(ep.hbTick)
			ep.hbTick = sim.Event{}
		}
		return
	}
	// Sharded: canceling another shard's timer would race. Each endpoint's
	// next tick observes the flag and declines to re-arm, so the detector
	// winds down within one heartbeat period instead of instantly — the
	// simulation tail grows by at most one period.
}
