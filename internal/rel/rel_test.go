package rel

import (
	"errors"
	"fmt"
	"testing"

	"amtlci/internal/fabric"
	"amtlci/internal/sim"
)

func pairStack(t *testing.T, ranks int, fc *fabric.FaultConfig) (*sim.Engine, *fabric.Fabric, *Stack) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := fabric.DefaultConfig()
	cfg.Jitter = 0
	fab, err := fabric.New(eng, ranks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fc != nil {
		if err := fab.InstallFaults(*fc); err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(fab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return eng, fab, s
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Config){
		func(c *Config) { c.AckBytes = 0 },
		func(c *Config) { c.RTO = 0 },
		func(c *Config) { c.Backoff = 0.5 },
		func(c *Config) { c.MaxRTO = c.RTO / 2 },
		func(c *Config) { c.MaxRetries = 0 },
		func(c *Config) { c.AckDelay = -1 },
		func(c *Config) { c.HeaderBytes = -1 },
	}
	for i, mod := range bads {
		c := DefaultConfig()
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestLossyLinkExactlyOnceInOrder is the core protocol property: under
// simultaneous drop, duplication, reordering and corruption, every message
// is delivered exactly once, in send order, with intact payload.
func TestLossyLinkExactlyOnceInOrder(t *testing.T) {
	eng, _, s := pairStack(t, 2, &fabric.FaultConfig{
		Drop: 0.08, Duplicate: 0.08, Corrupt: 0.08, Reorder: 0.08, Seed: 7,
	})
	const count = 300
	var got []int
	s.SetHandler(1, func(m *fabric.Message) {
		idx := m.Meta.(int)
		if m.Corrupted {
			t.Fatalf("corrupted message %d reached the upper layer", idx)
		}
		if int64(len(m.Payload)) != m.Size {
			t.Fatalf("message %d payload length %d != size %d", idx, len(m.Payload), m.Size)
		}
		if m.Payload[0] != byte(idx) || m.Payload[99] != byte(idx^0x5A) {
			t.Fatalf("message %d payload damaged", idx)
		}
		got = append(got, idx)
	})
	s.SetHandler(0, func(m *fabric.Message) {})
	for i := 0; i < count; i++ {
		p := make([]byte, 100)
		p[0], p[99] = byte(i), byte(i^0x5A)
		s.Send(&fabric.Message{Src: 0, Dst: 1, Size: 100, Payload: p, Meta: i})
	}
	eng.Run()
	if len(got) != count {
		t.Fatalf("delivered %d messages, want %d", len(got), count)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("delivery order broken at %d: got %d", i, v)
		}
	}
	st := s.Stats()
	if st.Retransmits == 0 || st.DupDropped == 0 {
		t.Fatalf("fault recovery never exercised: %+v", st)
	}
}

func TestCleanFabricNoRetransmits(t *testing.T) {
	eng, _, s := pairStack(t, 2, nil)
	n := 0
	s.SetHandler(1, func(m *fabric.Message) { n++ })
	s.SetHandler(0, func(m *fabric.Message) {})
	for i := 0; i < 50; i++ {
		s.Send(&fabric.Message{Src: 0, Dst: 1, Size: 64})
	}
	eng.Run()
	st := s.Stats()
	if n != 50 || st.Retransmits != 0 || st.DupDropped != 0 || st.CorruptDropped != 0 {
		t.Fatalf("clean run delivered %d, stats %+v", n, st)
	}
}

func TestOnTxFiresExactlyOncePerSend(t *testing.T) {
	// OnTx is a completion signal the libraries key buffer reuse off; a
	// retransmission must not fire it again.
	eng, _, s := pairStack(t, 2, &fabric.FaultConfig{Drop: 0.3, Seed: 3})
	s.SetHandler(1, func(m *fabric.Message) {})
	s.SetHandler(0, func(m *fabric.Message) {})
	tx := 0
	const count = 100
	for i := 0; i < count; i++ {
		s.Send(&fabric.Message{Src: 0, Dst: 1, Size: 64, OnTx: func() { tx++ }})
	}
	eng.Run()
	if tx != count {
		t.Fatalf("OnTx fired %d times for %d sends", tx, count)
	}
	if s.Stats().Retransmits == 0 {
		t.Fatal("no retransmissions at 30% drop — test proves nothing")
	}
}

func TestSeveredLinkDeclaresPeerUnreachable(t *testing.T) {
	eng, _, s := pairStack(t, 2, &fabric.FaultConfig{
		Links: []fabric.LinkFault{{Src: 0, Dst: 1, Sever: true}},
	})
	var gotPeer = -1
	var gotErr error
	s.SetErrHandler(0, func(peer int, err error) { gotPeer, gotErr = peer, err })
	s.SetHandler(1, func(m *fabric.Message) { t.Fatal("delivery across a severed link") })
	s.SetHandler(0, func(m *fabric.Message) {})
	s.Send(&fabric.Message{Src: 0, Dst: 1, Size: 64})
	end := eng.Run() // must terminate: timers stop after the budget
	if gotPeer != 1 {
		t.Fatalf("error handler saw peer %d, want 1", gotPeer)
	}
	var pu *PeerUnreachable
	if !errors.As(gotErr, &pu) {
		t.Fatalf("error %v is not PeerUnreachable", gotErr)
	}
	if pu.From != 0 || pu.To != 1 || pu.Attempts != DefaultConfig().MaxRetries+1 {
		t.Fatalf("bad error detail %+v", pu)
	}
	if s.Stats().Unreachable != 1 {
		t.Fatalf("stats %+v", s.Stats())
	}
	// Later sends to the dead peer are swallowed, not retried.
	sent := s.Stats().DataSent
	s.Send(&fabric.Message{Src: 0, Dst: 1, Size: 64})
	eng.Run()
	if s.Stats().DataSent != sent {
		t.Fatal("send to dead peer was accepted")
	}
	if end == 0 {
		t.Fatal("simulation ended at time zero")
	}
}

func TestLostAcksDoNotDuplicateDelivery(t *testing.T) {
	// Sever the reverse path only: data flows, every ACK is lost, the
	// sender retries until the budget declares the peer dead — but the
	// receiver must still see exactly one copy.
	eng, _, s := pairStack(t, 2, &fabric.FaultConfig{
		Links: []fabric.LinkFault{{Src: 1, Dst: 0, Sever: true}},
	})
	failed := false
	s.SetErrHandler(0, func(peer int, err error) { failed = true })
	n := 0
	s.SetHandler(1, func(m *fabric.Message) { n++ })
	s.SetHandler(0, func(m *fabric.Message) {})
	s.Send(&fabric.Message{Src: 0, Dst: 1, Size: 64})
	eng.Run()
	if n != 1 {
		t.Fatalf("receiver saw %d copies, want 1 (dup detection)", n)
	}
	if !failed {
		t.Fatal("sender never gave up without ACKs")
	}
	if s.Stats().DupDropped == 0 {
		t.Fatal("retransmissions were not recognized as duplicates")
	}
}

func TestUnhandledPeerDeathPanics(t *testing.T) {
	eng, _, s := pairStack(t, 2, &fabric.FaultConfig{
		Links: []fabric.LinkFault{{Src: 0, Dst: 1, Sever: true}},
	})
	s.SetHandler(1, func(m *fabric.Message) {})
	s.SetHandler(0, func(m *fabric.Message) {})
	s.Send(&fabric.Message{Src: 0, Dst: 1, Size: 64})
	defer func() {
		if recover() == nil {
			t.Fatal("peer death with no error handler must panic, not hang")
		}
	}()
	eng.Run()
}

func TestLoopbackBypassesProtocol(t *testing.T) {
	eng, _, s := pairStack(t, 2, &fabric.FaultConfig{Drop: 1})
	n := 0
	s.SetHandler(0, func(m *fabric.Message) { n++ })
	s.Send(&fabric.Message{Src: 0, Dst: 0, Size: 1 << 20})
	eng.Run()
	if n != 1 {
		t.Fatalf("loopback delivered %d, want 1", n)
	}
	if st := s.Stats(); st.DataSent != 0 {
		t.Fatalf("loopback entered the protocol: %+v", st)
	}
}

func TestManyPeersConcurrently(t *testing.T) {
	// All-to-all traffic on a lossy 8-rank fabric: per-pair ordering holds
	// independently.
	const ranks, per = 8, 40
	eng, _, s := pairStack(t, ranks, &fabric.FaultConfig{
		Drop: 0.05, Duplicate: 0.05, Reorder: 0.05, Seed: 11,
	})
	got := make(map[[2]int][]int)
	for r := 0; r < ranks; r++ {
		rr := r
		s.SetHandler(rr, func(m *fabric.Message) {
			key := [2]int{m.Src, rr}
			got[key] = append(got[key], m.Meta.(int))
		})
	}
	for i := 0; i < per; i++ {
		for src := 0; src < ranks; src++ {
			for dst := 0; dst < ranks; dst++ {
				if src == dst {
					continue
				}
				s.Send(&fabric.Message{Src: src, Dst: dst, Size: 128, Meta: i})
			}
		}
	}
	eng.Run()
	for src := 0; src < ranks; src++ {
		for dst := 0; dst < ranks; dst++ {
			if src == dst {
				continue
			}
			seq := got[[2]int{src, dst}]
			if len(seq) != per {
				t.Fatalf("pair %d->%d delivered %d, want %d", src, dst, len(seq), per)
			}
			for i, v := range seq {
				if v != i {
					t.Fatalf("pair %d->%d order broken: %v", src, dst, seq)
				}
			}
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (sim.Time, Stats, string) {
		eng, fab, s := pairStack(t, 4, &fabric.FaultConfig{
			Drop: 0.1, Duplicate: 0.1, Corrupt: 0.1, Reorder: 0.1, Seed: 99,
		})
		var trace string
		for r := 0; r < 4; r++ {
			rr := r
			s.SetHandler(rr, func(m *fabric.Message) {
				trace += fmt.Sprintf("%d<%d:%v;", rr, m.Src, m.Meta)
			})
		}
		for i := 0; i < 60; i++ {
			s.Send(&fabric.Message{Src: i % 3, Dst: (i + 1) % 4, Size: 256, Meta: i})
		}
		end := eng.Run()
		_ = fab
		return end, s.Stats(), trace
	}
	e1, s1, t1 := run()
	e2, s2, t2 := run()
	if e1 != e2 || s1 != s2 || t1 != t2 {
		t.Fatalf("same seed diverged:\n%v %+v\n%v %+v", e1, s1, e2, s2)
	}
}
