package rel

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"amtlci/internal/fabric"
	"amtlci/internal/sim"
)

// hbStack builds a stack with the failure detector armed.
func hbStack(t *testing.T, ranks int, fc *fabric.FaultConfig) (*sim.Engine, *fabric.Fabric, *Stack) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := fabric.DefaultConfig()
	cfg.Jitter = 0
	fab, err := fabric.New(eng, ranks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fc != nil {
		if err := fab.InstallFaults(*fc); err != nil {
			t.Fatal(err)
		}
	}
	rc := DefaultConfig()
	rc.EnableHeartbeats()
	s, err := New(fab, rc)
	if err != nil {
		t.Fatal(err)
	}
	return eng, fab, s
}

func TestHeartbeatConfigValidate(t *testing.T) {
	good := DefaultConfig()
	good.EnableHeartbeats()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*Config){
		func(c *Config) { c.HeartbeatPeriod = -1 },
		func(c *Config) { c.LeaseTimeout = -1 },
		func(c *Config) { c.HeartbeatPeriod = sim.Millisecond }, // period without lease
		func(c *Config) { c.LeaseTimeout = sim.Millisecond },    // lease without period
		func(c *Config) {
			c.HeartbeatPeriod = sim.Millisecond
			c.LeaseTimeout = sim.Millisecond // below two periods
		},
	}
	for i, mod := range bads {
		c := DefaultConfig()
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad heartbeat config %d accepted", i)
		}
	}
}

func TestHeartbeatCodecRoundTrip(t *testing.T) {
	in := Heartbeat{From: 13, Seq: 1<<40 + 7, Sent: 123456789}
	b := EncodeHeartbeat(in)
	if len(b) != HeartbeatBytes {
		t.Fatalf("encoded %d bytes, want %d", len(b), HeartbeatBytes)
	}
	out, err := DecodeHeartbeat(b)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}

	for name, corrupt := range map[string]func([]byte) []byte{
		"short":        func(b []byte) []byte { return b[:len(b)-1] },
		"long":         func(b []byte) []byte { return append(b, 0) },
		"bad magic":    func(b []byte) []byte { b[0] ^= 0xFF; return b },
		"bad version":  func(b []byte) []byte { b[2] = 99; return b },
		"negative src": func(b []byte) []byte { b[6] |= 0x80; return b },
	} {
		mut := corrupt(bytes.Clone(b))
		if _, err := DecodeHeartbeat(mut); err == nil {
			t.Errorf("%s: corrupted beacon accepted", name)
		}
	}
}

// TestHeartbeatDetectsCrashedPeer is the detector's core property: after a
// whole-rank crash, every survivor independently converges on the same
// PeerDead verdict within a bounded window, and the dead rank itself stays
// silent (its endpoint froze).
func TestHeartbeatDetectsCrashedPeer(t *testing.T) {
	const ranks, dead = 4, 2
	crashAt := sim.Time(0).Add(sim.Millisecond)
	eng, _, s := hbStack(t, ranks, &fabric.FaultConfig{
		Crashes: []fabric.NodeCrash{{Rank: dead, At: crashAt}},
	})
	type verdict struct {
		peer int
		err  error
		at   sim.Time
	}
	verdicts := make(map[int][]verdict)
	for r := 0; r < ranks; r++ {
		r := r
		s.SetHandler(r, func(m *fabric.Message) {})
		s.SetErrHandler(r, func(peer int, err error) {
			verdicts[r] = append(verdicts[r], verdict{peer, err, eng.Now()})
			if len(verdicts) == ranks-1 {
				s.StopHeartbeats()
			}
		})
	}
	eng.Run()

	if got := len(verdicts); got != ranks-1 {
		t.Fatalf("%d ranks produced verdicts, want the %d survivors (map %v)", got, ranks-1, verdicts)
	}
	bound := crashAt.Add(s.cfg.LeaseTimeout + 2*s.cfg.HeartbeatPeriod)
	for r := 0; r < ranks; r++ {
		vs := verdicts[r]
		if r == dead {
			if len(vs) != 0 {
				t.Fatalf("the crashed rank produced verdicts: %v", vs)
			}
			continue
		}
		if len(vs) != 1 {
			t.Fatalf("rank %d produced %d verdicts, want exactly 1: %v", r, len(vs), vs)
		}
		v := vs[0]
		var pd *PeerDead
		if v.peer != dead || !errors.As(v.err, &pd) || pd.DeadPeer() != dead || pd.From != r {
			t.Fatalf("rank %d verdict = peer %d err %v, want PeerDead for rank %d", r, v.peer, v.err, dead)
		}
		if v.at > bound {
			t.Fatalf("rank %d converged at %v, after the bound %v", r, v.at, bound)
		}
	}
	if st := s.Stats(); st.PeerDeaths != uint64(ranks-1) || st.HeartbeatsSent == 0 {
		t.Fatalf("stats = %+v, want %d peer deaths and some beacons", st, ranks-1)
	}
}

// TestHeartbeatPiggybacksOnTraffic pins the zero-overhead property: links
// busy with protocol traffic (data one way, ACKs the other) emit no explicit
// beacons at all.
func TestHeartbeatPiggybacksOnTraffic(t *testing.T) {
	eng, _, s := hbStack(t, 2, nil)
	for r := 0; r < 2; r++ {
		s.SetHandler(r, func(m *fabric.Message) {})
	}
	// One small message every 100us — under the 250us beacon period — for
	// the whole run.
	end := sim.Time(0).Add(3 * sim.Millisecond)
	var pump func()
	pump = func() {
		if eng.Now() > end {
			s.StopHeartbeats()
			return
		}
		s.Send(&fabric.Message{Src: 0, Dst: 1, Size: 64})
		eng.After(100*sim.Microsecond, pump)
	}
	pump()
	eng.Run()
	st := s.Stats()
	if st.HeartbeatsSent != 0 {
		t.Fatalf("busy link emitted %d explicit beacons, want 0 (traffic is the heartbeat)", st.HeartbeatsSent)
	}
	if st.PeerDeaths != 0 || st.Unreachable != 0 {
		t.Fatalf("healthy link produced failure verdicts: %+v", st)
	}
}

// TestHeartbeatKeepsQuietLinkAlive is the complement: a link with no
// application traffic at all stays alive on explicit beacons alone.
func TestHeartbeatKeepsQuietLinkAlive(t *testing.T) {
	eng, _, s := hbStack(t, 2, nil)
	for r := 0; r < 2; r++ {
		s.SetHandler(r, func(m *fabric.Message) {})
	}
	eng.At(sim.Time(0).Add(10*sim.Millisecond), s.StopHeartbeats)
	eng.Run()
	st := s.Stats()
	if st.PeerDeaths != 0 {
		t.Fatalf("idle but healthy link declared %d peers dead", st.PeerDeaths)
	}
	if st.HeartbeatsSent == 0 || st.HeartbeatsReceived == 0 {
		t.Fatalf("stats = %+v, want beacons flowing both ways", st)
	}
}

// TestPeerFailureNotifiedOnce is the dedupe regression: a burst of sends
// into a severed link must surface exactly one PeerUnreachable, no matter
// how many frames time out.
func TestPeerFailureNotifiedOnce(t *testing.T) {
	eng, _, s := pairStack(t, 2, &fabric.FaultConfig{
		Links: []fabric.LinkFault{{Src: 0, Dst: 1, Sever: true}},
	})
	s.SetHandler(0, func(m *fabric.Message) {})
	s.SetHandler(1, func(m *fabric.Message) {})
	var calls []error
	s.SetErrHandler(0, func(peer int, err error) {
		if peer != 1 {
			t.Errorf("notified about peer %d, want 1", peer)
		}
		calls = append(calls, err)
	})
	for i := 0; i < 16; i++ {
		s.Send(&fabric.Message{Src: 0, Dst: 1, Size: 256})
	}
	eng.Run()
	if len(calls) != 1 {
		t.Fatalf("error callback fired %d times for one dead peer, want exactly 1", len(calls))
	}
	var pu *PeerUnreachable
	if !errors.As(calls[0], &pu) {
		t.Fatalf("notification %v is not PeerUnreachable", calls[0])
	}
	if st := s.Stats(); st.Unreachable != 1 {
		t.Fatalf("stats = %+v, want exactly 1 unreachable", st)
	}
}

// TestCrashNotifiedOncePerEndpoint covers the race between the two
// detectors: with traffic in flight toward a rank that crashes, both the
// retry budget and the lease may condemn it — the upper layer must still
// hear about the death exactly once.
func TestCrashNotifiedOncePerEndpoint(t *testing.T) {
	crashAt := sim.Time(0).Add(500 * sim.Microsecond)
	eng, _, s := hbStack(t, 2, &fabric.FaultConfig{
		Crashes: []fabric.NodeCrash{{Rank: 1, At: crashAt}},
	})
	s.SetHandler(0, func(m *fabric.Message) {})
	s.SetHandler(1, func(m *fabric.Message) {})
	calls := 0
	s.SetErrHandler(0, func(peer int, err error) {
		calls++
		s.StopHeartbeats()
	})
	s.SetErrHandler(1, func(peer int, err error) {
		t.Errorf("the crashed rank reported a failure: peer %d, %v", peer, err)
	})
	// Keep traffic in flight across the crash instant so retransmit timers
	// are armed when the lease expires.
	var pump func()
	pump = func() {
		if eng.Now() > crashAt.Add(sim.Millisecond) {
			return
		}
		s.Send(&fabric.Message{Src: 0, Dst: 1, Size: 64})
		eng.After(50*sim.Microsecond, pump)
	}
	pump()
	eng.Run()
	if calls != 1 {
		t.Fatalf("error callback fired %d times, want exactly 1", calls)
	}
}

// TestNotifyPeerFailureConcurrentIdempotent pins the delivery contract under
// concurrent detector firings: however many detectors declare the same peer
// dead at once (a lease expiry racing a retry exhaustion), the upper layer
// hears exactly one verdict per endpoint-pair. The goroutines here model the
// sharded-domain worst case; run with -race.
func TestNotifyPeerFailureConcurrentIdempotent(t *testing.T) {
	_, _, s := hbStack(t, 3, nil)
	ep := s.eps[0]
	var calls, forPeer1 atomic.Int64
	s.SetErrHandler(0, func(peer int, err error) {
		calls.Add(1)
		if peer == 1 {
			forPeer1.Add(1)
		}
	})

	const firings = 64
	var wg sync.WaitGroup
	for i := 0; i < firings; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i%2 == 0 {
				ep.notifyPeerFailure(1, &PeerDead{From: 0, To: 1, Lease: s.cfg.LeaseTimeout})
			} else {
				ep.notifyPeerFailure(1, &PeerUnreachable{From: 0, To: 1, Attempts: 1})
			}
		}()
	}
	wg.Wait()
	if got := forPeer1.Load(); got != 1 {
		t.Fatalf("concurrent firings for one peer delivered %d verdicts, want exactly 1", got)
	}
	// The claim is per endpoint-PAIR: a verdict about a different peer still
	// gets through afterwards.
	ep.notifyPeerFailure(2, &PeerDead{From: 0, To: 2, Lease: s.cfg.LeaseTimeout})
	if got := calls.Load(); got != 2 {
		t.Fatalf("verdicts across two peers = %d, want 2", got)
	}
}

// TestMultiCrashOneVerdictPerDeadPeer drives two staggered real crashes
// through the detector: every survivor endpoint must raise exactly one
// PeerDead per dead rank — two verdicts, two distinct peers, no
// double-eviction fodder — and the crashed ranks must raise none.
func TestMultiCrashOneVerdictPerDeadPeer(t *testing.T) {
	const ranks = 4
	crash1 := sim.Time(0).Add(sim.Millisecond)
	crash2 := sim.Time(0).Add(4 * sim.Millisecond)
	eng, _, s := hbStack(t, ranks, &fabric.FaultConfig{
		Crashes: []fabric.NodeCrash{{Rank: 1, At: crash1}, {Rank: 2, At: crash2}},
	})
	verdicts := make(map[int][]int) // observer -> dead peers, in order
	total := 0
	for r := 0; r < ranks; r++ {
		r := r
		s.SetHandler(r, func(m *fabric.Message) {})
		s.SetErrHandler(r, func(peer int, err error) {
			var pd *PeerDead
			if !errors.As(err, &pd) {
				t.Errorf("rank %d: verdict %v is not PeerDead", r, err)
			}
			verdicts[r] = append(verdicts[r], peer)
			total++
			// Survivors 0 and 3 each see both deaths; rank 2 sees only the
			// first before dying itself.
			if total == 2*2+1 {
				s.StopHeartbeats()
			}
		})
	}
	eng.Run()

	for _, r := range []int{0, 3} {
		if got := verdicts[r]; len(got) != 2 || got[0] != 1 || got[1] != 2 {
			t.Fatalf("survivor %d verdicts = %v, want [1 2]", r, got)
		}
	}
	if got := verdicts[2]; len(got) != 1 || got[0] != 1 {
		t.Fatalf("rank 2 (dead second) verdicts = %v, want [1] before its own crash", got)
	}
	if got := verdicts[1]; len(got) != 0 {
		t.Fatalf("crashed rank 1 raised verdicts %v", got)
	}
}

func FuzzDecodeHeartbeat(f *testing.F) {
	f.Add(EncodeHeartbeat(Heartbeat{From: 3, Seq: 42, Sent: 1 << 30}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xA5}, HeartbeatBytes))
	f.Fuzz(func(t *testing.T, b []byte) {
		h, err := DecodeHeartbeat(b)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode to the identical bytes.
		if out := EncodeHeartbeat(h); !bytes.Equal(out, b) {
			t.Fatalf("decode/encode mismatch: in %x out %x", b, out)
		}
	})
}

// TestStopHeartbeatsIdempotent: the termination detector may fire its
// listeners once per recovery epoch, so a second StopHeartbeats must be a
// harmless no-op — and beacons must stay stopped.
func TestStopHeartbeatsIdempotent(t *testing.T) {
	eng, _, s := hbStack(t, 2, nil)
	for r := 0; r < 2; r++ {
		s.SetHandler(r, func(m *fabric.Message) {})
	}
	eng.At(sim.Time(0).Add(5*sim.Millisecond), s.StopHeartbeats)
	eng.At(sim.Time(0).Add(5*sim.Millisecond), s.StopHeartbeats) // double stop, same instant
	eng.At(sim.Time(0).Add(6*sim.Millisecond), s.StopHeartbeats) // and again later
	end := eng.Run()
	if st := s.Stats(); st.PeerDeaths != 0 {
		t.Fatalf("healthy pair declared %d peers dead across a double stop", st.PeerDeaths)
	}
	if end.Sub(sim.Time(0)) > 7*sim.Millisecond {
		t.Fatalf("simulation ran to %v: a stopped detector kept scheduling ticks", end)
	}
}

// TestStopHeartbeatsAfterPeerDead: stopping after a crash verdict (the
// detector announces once the survivors' work drains) must not panic on the
// frozen endpoint's already-cancelled timers, and must let the simulation
// drain.
func TestStopHeartbeatsAfterPeerDead(t *testing.T) {
	const ranks, dead = 3, 1
	crashAt := sim.Time(0).Add(sim.Millisecond)
	eng, _, s := hbStack(t, ranks, &fabric.FaultConfig{
		Crashes: []fabric.NodeCrash{{Rank: dead, At: crashAt}},
	})
	verdicts := 0
	for r := 0; r < ranks; r++ {
		s.SetHandler(r, func(m *fabric.Message) {})
		s.SetErrHandler(r, func(peer int, err error) {
			verdicts++
			if verdicts == ranks-1 {
				s.StopHeartbeats()
				s.StopHeartbeats() // idempotent even right after the verdict
			}
		})
	}
	eng.Run()
	if verdicts != ranks-1 {
		t.Fatalf("%d verdicts, want %d", verdicts, ranks-1)
	}
}
