// Package rel restores exactly-once, in-order delivery on top of a lossy
// fabric. It is the reliability boundary of the stack: the communication
// libraries (internal/mpi, internal/lci) are written for a lossless wire, and
// rel.Stack gives them one even when fault injection drops, duplicates,
// reorders or corrupts messages underneath.
//
// The protocol is deliberately classical — a per-peer go-back-N variant:
//
//   - every data message carries a per-(src,dst) sequence number and an
//     FNV-1a checksum over header and payload;
//   - the receiver delivers strictly in sequence order, buffers early
//     arrivals, discards duplicates and corrupted frames, and returns a
//     delayed cumulative ACK;
//   - the sender retransmits on a virtual-time timeout (measured from egress
//     completion) with exponential backoff, and after a capped number of
//     retries declares the peer dead, surfacing PeerUnreachable through the
//     registered error handler instead of retrying forever.
//
// When no faults are injected the layer costs one framing header per data
// message and one delayed ACK per burst; when it is absent entirely (the
// default stack), the libraries bind straight to the fabric and nothing here
// runs at all.
package rel

import (
	"fmt"
	"sync"
	"sync/atomic"

	"amtlci/internal/fabric"
	"amtlci/internal/metrics"
	"amtlci/internal/sim"
)

// Config tunes the reliability protocol.
type Config struct {
	// HeaderBytes is the framing overhead added to every data message
	// (sequence number, checksum, length).
	HeaderBytes int64
	// AckBytes is the wire size of a cumulative ACK.
	AckBytes int64
	// AckDelay batches ACKs: the receiver acknowledges the highest
	// in-order sequence seen AckDelay after the first unacknowledged
	// delivery.
	AckDelay sim.Duration
	// RTO is the initial retransmit timeout, measured from egress
	// completion (OnTx) so queueing in the transmit engine is not charged
	// against the peer.
	RTO sim.Duration
	// Backoff multiplies the timeout after each retransmission.
	Backoff float64
	// MaxRTO caps the backed-off timeout.
	MaxRTO sim.Duration
	// MaxRetries is the retry budget: after this many retransmissions of
	// one frame without an ACK the peer is declared unreachable.
	MaxRetries int

	// HeartbeatPeriod arms the lease-based failure detector (see
	// heartbeat.go): each endpoint beacons to every peer it has not
	// transmitted to for a full period. Zero disables the detector, which
	// is the default — detection then happens only through per-send retry
	// exhaustion, as before.
	HeartbeatPeriod sim.Duration
	// LeaseTimeout is how long a peer may stay completely silent before it
	// is declared dead (PeerDead). Must be set together with
	// HeartbeatPeriod, and at least twice it.
	LeaseTimeout sim.Duration

	// Metrics is the registry the layer registers its instruments in
	// (protocol counters per rank, in-flight window depth, an RTO
	// histogram). Nil gets a private registry; stack.Build shares one
	// across every layer.
	Metrics *metrics.Registry
}

// DefaultConfig returns timeouts sized for the simulated fabric: RTT is a
// few microseconds, so a 50us initial timeout only fires on real loss, and
// the full retry budget resolves a severed link in single-digit virtual
// milliseconds.
func DefaultConfig() Config {
	return Config{
		HeaderBytes: 16,
		AckBytes:    32,
		AckDelay:    500 * sim.Nanosecond,
		RTO:         50 * sim.Microsecond,
		Backoff:     2,
		MaxRTO:      sim.Millisecond,
		MaxRetries:  8,
	}
}

// Validate reports the first nonsensical parameter, or nil.
func (c *Config) Validate() error {
	switch {
	case c.HeaderBytes < 0 || c.AckBytes <= 0:
		return fmt.Errorf("rel: bad frame sizes header=%d ack=%d", c.HeaderBytes, c.AckBytes)
	case c.AckDelay < 0:
		return fmt.Errorf("rel: negative ack delay %v", c.AckDelay)
	case c.RTO <= 0:
		return fmt.Errorf("rel: retransmit timeout must be positive, got %v", c.RTO)
	case c.Backoff < 1:
		return fmt.Errorf("rel: backoff %g must be >= 1", c.Backoff)
	case c.MaxRTO < c.RTO:
		return fmt.Errorf("rel: max timeout %v below initial %v", c.MaxRTO, c.RTO)
	case c.MaxRetries < 1:
		return fmt.Errorf("rel: retry budget %d must be >= 1", c.MaxRetries)
	case c.HeartbeatPeriod < 0 || c.LeaseTimeout < 0:
		return fmt.Errorf("rel: negative heartbeat timing (period=%v lease=%v)", c.HeartbeatPeriod, c.LeaseTimeout)
	case (c.HeartbeatPeriod > 0) != (c.LeaseTimeout > 0):
		return fmt.Errorf("rel: heartbeat period (%v) and lease timeout (%v) must be set together", c.HeartbeatPeriod, c.LeaseTimeout)
	case c.LeaseTimeout > 0 && c.LeaseTimeout < 2*c.HeartbeatPeriod:
		return fmt.Errorf("rel: lease timeout %v below two heartbeat periods (%v)", c.LeaseTimeout, c.HeartbeatPeriod)
	}
	return nil
}

// EnableHeartbeats arms the failure detector with timings sized for the
// simulated fabric: the lease (2ms) expires well before a severed peer's
// retry budget (roughly 4.5ms of backed-off retransmits under
// DefaultConfig), so a whole-rank crash surfaces as one PeerDead verdict per
// survivor rather than a scatter of per-send aborts.
func (c *Config) EnableHeartbeats() {
	c.HeartbeatPeriod = 250 * sim.Microsecond
	c.LeaseTimeout = 2 * sim.Millisecond
}

// PeerUnreachable reports that From exhausted its retry budget toward To.
type PeerUnreachable struct {
	From, To int
	// Attempts is the total number of transmissions of the frame that gave
	// up (1 original + retries).
	Attempts int
	// LastSeq is the sequence number of that frame.
	LastSeq uint64
}

func (e *PeerUnreachable) Error() string {
	return fmt.Sprintf("rel: peer %d unreachable from rank %d (seq %d, %d attempts)",
		e.To, e.From, e.LastSeq, e.Attempts)
}

// Stats counts protocol activity across the whole stack.
type Stats struct {
	DataSent       uint64 // upper-layer messages accepted
	DataDelivered  uint64 // messages handed to the upper layer
	Retransmits    uint64
	AcksSent       uint64
	DupDropped     uint64 // duplicate frames discarded
	CorruptDropped uint64 // corrupted frames discarded
	OutOfOrder     uint64 // early frames buffered for later delivery
	Unreachable    uint64 // per-send retry budgets exhausted (PeerUnreachable)

	HeartbeatsSent     uint64 // explicit beacons emitted
	HeartbeatsReceived uint64 // beacons that decoded cleanly
	HeartbeatsBad      uint64 // beacons dropped by the decoder
	PeerDeaths         uint64 // leases expired (PeerDead verdicts)
}

// frame is the reliability header riding in Message.Meta of a data message;
// the upper layer's payload and Meta travel inside it so a retransmission
// redelivers pristine content even if the sender reused its buffer after
// OnTx.
type frame struct {
	seq     uint64
	sum     uint64
	size    int64
	payload []byte
	meta    any
	sent    sim.Time
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func (fr *frame) checksum(src, dst int) uint64 {
	h := uint64(fnvOffset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= fnvPrime
			v >>= 8
		}
	}
	mix(uint64(src))
	mix(uint64(dst))
	mix(fr.seq)
	mix(uint64(fr.size))
	for _, b := range fr.payload {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// ackMsg is the Meta of a cumulative ACK: every frame below cum has been
// delivered in order.
type ackMsg struct {
	cum uint64
}

type txEntry struct {
	seq     uint64
	fr      *frame
	userTx  func()
	timer   sim.Event
	rto     sim.Duration
	retries int
	acked   bool
}

type txPeer struct {
	peer    int
	nextSeq uint64
	q       []*txEntry // unacknowledged, ascending seq
	dead    bool
}

type rxPeer struct {
	next     uint64            // next expected seq
	ooo      map[uint64]*frame // early arrivals
	ackTimer sim.Event
}

type endpoint struct {
	s     *Stack
	rank  int
	eng   *sim.Engine // owning shard engine: every timer this endpoint arms
	up    fabric.Handler
	errFn func(peer int, err error)
	tx    map[int]*txPeer
	rx    map[int]*rxPeer

	// notified dedupes upper-layer failure notifications: a dead peer
	// produces exactly one callback per endpoint, whether the verdict came
	// from retry exhaustion, a lease expiry, or both — and no matter how
	// many detectors fire concurrently. notifyMu guards the check-and-set
	// (and every other read of the map): under a sharded domain a retry
	// exhaustion on this endpoint's shard can race a lease expiry observed
	// through state another shard published, and the winner of the lock is
	// the one verdict the upper layer hears.
	notifyMu sync.Mutex
	notified map[int]bool

	// Failure-detector state (heartbeat.go); the maps stay nil when the
	// detector is off.
	crashed   bool
	hbSeq     uint64
	hbTick    sim.Event
	lastSent  map[int]sim.Time
	lastHeard map[int]sim.Time

	// Protocol counters (metrics registry, layer "rel", per rank).
	dataSent, dataDelivered *metrics.Counter
	retransmits, acksSent   *metrics.Counter
	dupDropped, corruptDrop *metrics.Counter
	outOfOrder              *metrics.Counter
	hbSent, hbRecv, hbBad   *metrics.Counter
}

// inFlight is the total unacknowledged-frame window across all peers.
func (ep *endpoint) inFlight() int {
	n := 0
	for _, tp := range ep.tx {
		n += len(tp.q)
	}
	return n
}

// Stack is the reliable transport. It implements fabric.Network (so the
// communication libraries bind to it exactly as they would to the raw
// fabric) and fabric.ErrNotifier.
type Stack struct {
	fab *fabric.Fabric
	cfg Config
	eps []*endpoint
	reg *metrics.Registry

	unreachable *metrics.Counter
	peerDead    *metrics.Counter
	rtoHist     *metrics.Histogram

	// hbStopped ends the failure detector permanently (StopHeartbeats); the
	// flag keeps a tick that is already executing from re-arming itself.
	// Atomic because the termination detector announces from one rank while
	// other shards' ticks read it.
	hbStopped atomic.Bool
}

// New interposes a reliability layer on fab. It takes over the fabric's
// delivery handlers; callers must register theirs through the returned
// Stack.
func New(fab *fabric.Fabric, cfg Config) (*Stack, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.New()
	}
	s := &Stack{
		fab: fab, cfg: cfg, reg: reg,
		unreachable: reg.Counter("rel", "unreachable", metrics.StackRank),
		peerDead:    reg.Counter("rel", "peer_dead", metrics.StackRank),
		rtoHist:     reg.Histogram("rel", "rto_ns", metrics.StackRank),
	}
	s.eps = make([]*endpoint, fab.Ranks())
	for i := range s.eps {
		ep := &endpoint{
			s: s, rank: i, eng: fab.RankEngine(i),
			tx: make(map[int]*txPeer), rx: make(map[int]*rxPeer),
			notified:      make(map[int]bool),
			dataSent:      reg.Counter("rel", "data_sent", i),
			dataDelivered: reg.Counter("rel", "data_delivered", i),
			retransmits:   reg.Counter("rel", "retransmits", i),
			acksSent:      reg.Counter("rel", "acks_sent", i),
			dupDropped:    reg.Counter("rel", "dup_dropped", i),
			corruptDrop:   reg.Counter("rel", "corrupt_dropped", i),
			outOfOrder:    reg.Counter("rel", "out_of_order", i),
			hbSent:        reg.Counter("rel", "heartbeats_sent", i),
			hbRecv:        reg.Counter("rel", "heartbeats_received", i),
			hbBad:         reg.Counter("rel", "heartbeats_bad", i),
		}
		reg.Probe("rel", "in_flight", i, false, func() float64 { return float64(ep.inFlight()) })
		s.eps[i] = ep
		fab.SetHandler(i, ep.onArrival)
		if cfg.HeartbeatPeriod > 0 {
			ep.startHeartbeats()
		}
	}
	// A crashed rank's own endpoint goes silent too: without this, the dead
	// rank would stop hearing from everyone and "detect" all of its peers.
	fab.OnCrash(func(r int) { s.eps[r].freeze() })
	return s, nil
}

// Ranks returns the number of ranks (fabric.Network).
func (s *Stack) Ranks() int { return len(s.eps) }

// Stats returns protocol counters summed across all ranks, rebuilt from the
// metrics registry.
func (s *Stack) Stats() Stats {
	return Stats{
		DataSent:       s.reg.Total("rel", "data_sent"),
		DataDelivered:  s.reg.Total("rel", "data_delivered"),
		Retransmits:    s.reg.Total("rel", "retransmits"),
		AcksSent:       s.reg.Total("rel", "acks_sent"),
		DupDropped:     s.reg.Total("rel", "dup_dropped"),
		CorruptDropped: s.reg.Total("rel", "corrupt_dropped"),
		OutOfOrder:     s.reg.Total("rel", "out_of_order"),
		Unreachable:    s.unreachable.Value(),

		HeartbeatsSent:     s.reg.Total("rel", "heartbeats_sent"),
		HeartbeatsReceived: s.reg.Total("rel", "heartbeats_received"),
		HeartbeatsBad:      s.reg.Total("rel", "heartbeats_bad"),
		PeerDeaths:         s.peerDead.Value(),
	}
}

// SetHandler installs the upper layer's delivery handler for rank
// (fabric.Network).
func (s *Stack) SetHandler(rank int, h fabric.Handler) { s.eps[rank].up = h }

// SetErrHandler installs rank's unreachable-peer callback
// (fabric.ErrNotifier). Without one, an exhausted retry budget panics: a
// peer death nobody listens for is a silent hang waiting to happen.
func (s *Stack) SetErrHandler(rank int, fn func(peer int, err error)) {
	s.eps[rank].errFn = fn
}

// Send accepts an upper-layer message (fabric.Network). Loopback traffic
// bypasses the protocol — it models in-process delivery, and the fabric
// never faults it. Sends to a peer already declared unreachable are
// discarded: the error handler has fired and the graph is aborting.
func (s *Stack) Send(m *fabric.Message) {
	ep := s.eps[m.Src]
	if ep.crashed {
		return
	}
	if m.Src == m.Dst {
		s.fab.Send(m)
		return
	}
	tp := ep.txPeerFor(m.Dst)
	if tp.dead {
		return
	}
	fr := &frame{seq: tp.nextSeq, size: m.Size, meta: m.Meta, sent: ep.eng.Now()}
	tp.nextSeq++
	if m.Payload != nil {
		fr.payload = append([]byte(nil), m.Payload...)
	}
	fr.sum = fr.checksum(m.Src, m.Dst)
	e := &txEntry{seq: fr.seq, fr: fr, userTx: m.OnTx, rto: s.cfg.RTO}
	tp.q = append(tp.q, e)
	ep.dataSent.Inc()
	ep.transmit(tp, e, true)
}

func (ep *endpoint) txPeerFor(peer int) *txPeer {
	tp := ep.tx[peer]
	if tp == nil {
		tp = &txPeer{peer: peer}
		ep.tx[peer] = tp
	}
	return tp
}

func (ep *endpoint) rxPeerFor(peer int) *rxPeer {
	rp := ep.rx[peer]
	if rp == nil {
		rp = &rxPeer{ooo: make(map[uint64]*frame)}
		ep.rx[peer] = rp
	}
	return rp
}

// transmit puts one framed copy of e on the wire. The retransmit timer
// starts at egress completion so transmit-queue backlog does not count
// against the peer; the timer is armed even when the injector drops the
// copy, because OnTx models NIC-side completion, not receipt.
func (ep *endpoint) transmit(tp *txPeer, e *txEntry, first bool) {
	s := ep.s
	userTx := e.userTx
	wm := &fabric.Message{
		Src:  ep.rank,
		Dst:  tp.peer,
		Size: e.fr.size + s.cfg.HeaderBytes,
		Meta: e.fr,
	}
	wm.OnTx = func() {
		if first && userTx != nil {
			userTx()
		}
		if e.acked || tp.dead {
			return
		}
		e.timer = ep.eng.After(e.rto, func() { ep.timeout(tp, e) })
	}
	ep.noteSent(tp.peer)
	s.fab.Send(wm)
}

func (ep *endpoint) timeout(tp *txPeer, e *txEntry) {
	if e.acked || tp.dead {
		return
	}
	s := ep.s
	if e.retries >= s.cfg.MaxRetries {
		ep.declareDead(tp, e)
		return
	}
	e.retries++
	ep.retransmits.Inc()
	e.rto = sim.Duration(float64(e.rto) * s.cfg.Backoff)
	if e.rto > s.cfg.MaxRTO {
		e.rto = s.cfg.MaxRTO
	}
	s.rtoHist.Observe(uint64(e.rto / sim.Nanosecond))
	ep.transmit(tp, e, false)
}

func (ep *endpoint) declareDead(tp *txPeer, e *txEntry) {
	ep.silence(tp)
	ep.notifyPeerFailure(tp.peer,
		&PeerUnreachable{From: ep.rank, To: tp.peer, Attempts: e.retries + 1, LastSeq: e.seq})
}

// silence marks peer's tx side dead and cancels every pending retransmit
// timer, discarding the unacknowledged queue. Further sends toward the peer
// are swallowed.
func (ep *endpoint) silence(tp *txPeer) {
	tp.dead = true
	for _, q := range tp.q {
		ep.eng.Cancel(q.timer)
	}
	tp.q = nil
}

// notifyPeerFailure surfaces one — exactly one — failure verdict per peer to
// the upper layer, whichever detector fired first; concurrent firings race
// for the claim under notifyMu and every loser returns silently. The
// callback itself runs outside the lock (it re-enters the stack: recovery
// casts deadvotes through rel). Without a registered handler the verdict
// panics: a peer death nobody listens for is a silent hang waiting to
// happen.
// alreadyNotified reports whether a failure verdict for peer has fired.
func (ep *endpoint) alreadyNotified(peer int) bool {
	ep.notifyMu.Lock()
	defer ep.notifyMu.Unlock()
	return ep.notified[peer]
}

func (ep *endpoint) notifyPeerFailure(peer int, err error) {
	ep.notifyMu.Lock()
	if ep.notified[peer] {
		ep.notifyMu.Unlock()
		return
	}
	ep.notified[peer] = true
	ep.notifyMu.Unlock()
	switch err.(type) {
	case *PeerDead:
		ep.s.peerDead.Inc()
	default:
		ep.s.unreachable.Inc()
	}
	if ep.errFn == nil {
		panic(err.Error())
	}
	ep.errFn(peer, err)
}

func (ep *endpoint) onArrival(m *fabric.Message) {
	if ep.crashed {
		return
	}
	if m.Src == m.Dst {
		ep.up(m)
		return
	}
	// Any arrival — even a frame damaged in flight — proves the peer's NIC
	// is alive, so the lease renews before the protocol inspects content.
	ep.noteHeard(m.Src)
	switch meta := m.Meta.(type) {
	case *frame:
		ep.onFrame(m, meta)
	case *ackMsg:
		if m.Corrupted {
			return
		}
		ep.onAck(m.Src, meta.cum)
	case *hbMsg:
		ep.onHeartbeat(m)
	default:
		panic(fmt.Sprintf("rel: rank %d: message from %d without reliability framing", ep.rank, m.Src))
	}
}

func (ep *endpoint) onFrame(m *fabric.Message, fr *frame) {
	if m.Corrupted || fr.sum != fr.checksum(m.Src, m.Dst) {
		// Damaged in flight: discard without touching receive state; the
		// sender's timeout redelivers an intact copy. The payload of a
		// Corrupted message is a private copy the fabric made to flip a byte
		// in — hand it back for reuse.
		ep.corruptDrop.Inc()
		ep.s.fab.RecyclePayload(m)
		return
	}
	rp := ep.rxPeerFor(m.Src)
	switch {
	case fr.seq < rp.next:
		// Duplicate of something already delivered (injector copy, or a
		// retransmission whose ACK was lost). Re-ACK so the sender stops.
		ep.dupDropped.Inc()
		ep.scheduleAck(rp, m.Src)
	case fr.seq > rp.next:
		ep.outOfOrder.Inc()
		rp.ooo[fr.seq] = fr
		ep.scheduleAck(rp, m.Src)
	default:
		ep.deliverUp(m.Src, fr)
		rp.next++
		for {
			nf := rp.ooo[rp.next]
			if nf == nil {
				break
			}
			delete(rp.ooo, rp.next)
			ep.deliverUp(m.Src, nf)
			rp.next++
		}
		ep.scheduleAck(rp, m.Src)
	}
}

func (ep *endpoint) deliverUp(src int, fr *frame) {
	ep.dataDelivered.Inc()
	ep.up(&fabric.Message{
		Src:     src,
		Dst:     ep.rank,
		Size:    fr.size,
		Payload: fr.payload,
		Meta:    fr.meta,
		Sent:    fr.sent,
	})
}

// scheduleAck arms the delayed cumulative ACK for src if one is not already
// pending. The ACK carries rp.next as of fire time, so a burst of in-order
// deliveries is acknowledged once.
func (ep *endpoint) scheduleAck(rp *rxPeer, src int) {
	s := ep.s
	if rp.ackTimer.Pending() {
		return
	}
	rp.ackTimer = ep.eng.After(s.cfg.AckDelay, func() {
		ep.acksSent.Inc()
		ep.noteSent(src)
		s.fab.Send(&fabric.Message{
			Src:  ep.rank,
			Dst:  src,
			Size: s.cfg.AckBytes,
			Meta: &ackMsg{cum: rp.next},
		})
	})
}

func (ep *endpoint) onAck(peer int, cum uint64) {
	tp := ep.tx[peer]
	if tp == nil || tp.dead {
		return
	}
	for len(tp.q) > 0 && tp.q[0].seq < cum {
		e := tp.q[0]
		tp.q = tp.q[1:]
		e.acked = true
		ep.eng.Cancel(e.timer)
	}
}
