// Virtual-time sampling: turn the registry into per-metric time series.
package metrics

import (
	"amtlci/internal/sim"
)

// Sample is one reading of one metric at a virtual-time instant.
type Sample struct {
	At sim.Time
	V  float64
}

// Track is the full time series of one metric. Counters and cumulative
// probes are differentiated: V is the per-second rate over the preceding
// sampling interval (for cumulative busy-seconds probes that rate is the
// busy fraction in [0,1]). Gauges and level probes are instantaneous.
type Track struct {
	Desc    Desc
	Rate    bool // true when V is a differentiated per-second rate
	Samples []Sample
}

// trackState pairs a registry entry with its accumulated series.
type trackState struct {
	e       *entry
	rate    bool
	prev    float64
	samples []Sample
}

// Sampler periodically reads every sampleable instrument (counters, gauges,
// probes — histograms are summary-only) against virtual time. It drives
// itself with engine events but never keeps the simulation alive: after each
// tick it reschedules only while other events remain pending, so in a closed
// simulation the series ends exactly when the workload does.
type Sampler struct {
	eng    *sim.Engine
	reg    *Registry
	period sim.Duration
	tracks []*trackState
	seen   int // registry entries already assigned a trackState
	lastAt sim.Time
}

// NewSampler prepares a sampler reading reg every period of virtual time.
// Instruments registered after Start are picked up on the next tick.
//
// The sampler requires a serial simulation: its probes read per-rank state
// owned by whichever shard the rank lives on, which is only safe when every
// rank shares one engine. Sharded deployments expose no single engine
// (stack.Stack.Eng is nil), so there is nothing valid to pass here.
func NewSampler(eng *sim.Engine, reg *Registry, period sim.Duration) *Sampler {
	if period <= 0 {
		panic("metrics: sampler period must be positive")
	}
	return &Sampler{eng: eng, reg: reg, period: period}
}

// Start records the baseline reading at the current virtual time and
// schedules the first tick one period out.
func (s *Sampler) Start() {
	s.refresh()
	s.lastAt = s.eng.Now()
	for _, t := range s.tracks {
		t.prev = read(t.e)
	}
	s.eng.After(s.period, s.tick)
}

// refresh adopts registry entries added since the last tick.
func (s *Sampler) refresh() {
	fresh := s.reg.entriesFrom(s.seen)
	s.seen += len(fresh)
	for _, e := range fresh {
		if e.kind == KindHistogram {
			continue
		}
		s.tracks = append(s.tracks, &trackState{
			e:    e,
			rate: e.kind == KindCounter || (e.kind == KindProbe && e.p.cumulative),
		})
	}
}

func (s *Sampler) tick() {
	s.sample()
	// Reschedule only while the simulation has other work: the tick we are
	// inside has already been popped, so Pending counts everything else. A
	// closed discrete-event run must end when its real events drain — the
	// sampler must never keep it alive.
	if s.eng.Pending() > 0 {
		s.eng.After(s.period, s.tick)
	}
}

// sample takes one reading of every track at the current virtual time.
func (s *Sampler) sample() {
	s.refresh()
	now := s.eng.Now()
	dt := now.Sub(s.lastAt).Seconds()
	for _, t := range s.tracks {
		cur := read(t.e)
		v := cur
		if t.rate {
			if dt <= 0 {
				continue // no interval to differentiate over
			}
			v = (cur - t.prev) / dt
			t.prev = cur
		}
		t.samples = append(t.samples, Sample{At: now, V: v})
	}
	s.lastAt = now
}

// Flush takes a final reading at the current virtual time (call after the
// run completes so the series covers the tail end).
func (s *Sampler) Flush() { s.sample() }

// Tracks returns every series with at least one sample.
func (s *Sampler) Tracks() []Track {
	out := make([]Track, 0, len(s.tracks))
	for _, t := range s.tracks {
		if len(t.samples) == 0 {
			continue
		}
		out = append(out, Track{Desc: t.e.desc, Rate: t.rate, Samples: t.samples})
	}
	return out
}

// read returns the instantaneous scalar reading of a sampleable entry.
func read(e *entry) float64 {
	switch e.kind {
	case KindCounter:
		return float64(e.c.Value())
	case KindGauge:
		return float64(e.g.Value())
	case KindProbe:
		if e.p.fn != nil {
			return e.p.fn()
		}
	}
	return 0
}
