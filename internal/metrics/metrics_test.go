package metrics

import (
	"math"
	"testing"

	"amtlci/internal/sim"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("lci", "sent", 0)
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("lci", "sent", 0) != c {
		t.Fatal("second registration did not return the same counter")
	}
	if r.Counter("lci", "sent", 1) == c {
		t.Fatal("different rank returned the same counter")
	}

	g := r.Gauge("mpi", "unexpected_depth", 0)
	g.Add(3)
	g.Add(4)
	g.Add(-5)
	if g.Value() != 2 || g.Max() != 7 {
		t.Fatalf("gauge = (%d, max %d), want (2, max 7)", g.Value(), g.Max())
	}
	g.Set(9)
	if g.Value() != 9 || g.Max() != 9 {
		t.Fatalf("gauge after Set = (%d, max %d), want (9, max 9)", g.Value(), g.Max())
	}
}

func TestKindCollisionPanics(t *testing.T) {
	r := New()
	r.Counter("lci", "sent", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("registering lci/sent as a gauge should panic")
		}
	}()
	r.Gauge("lci", "sent", 0)
}

func TestHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("rel", "rto_ns", StackRank)
	for _, v := range []uint64{0, 1, 1, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if want := (0 + 1 + 1 + 3 + 100 + 1000) / 6.0; math.Abs(h.Mean()-want) > 1e-9 {
		t.Fatalf("mean = %g, want %g", h.Mean(), want)
	}
	// Median of {0,1,1,3,100,1000}: the 3rd observation is 1, whose log2
	// bucket has upper edge 1.
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %g, want 1", got)
	}
	// p99 lands in the bucket of 1000: [512, 1024), upper edge 1023.
	if got := h.Quantile(0.99); got != 1023 {
		t.Fatalf("p99 = %g, want 1023", got)
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestSnapshotsSortedAndTyped(t *testing.T) {
	r := New()
	r.Counter("zz", "a", 0).Add(7)
	r.Gauge("aa", "b", 1).Set(3)
	depth := 11
	r.Probe("mm", "depth", 0, false, func() float64 { return float64(depth) })
	snaps := r.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots, want 3", len(snaps))
	}
	if snaps[0].Desc.Layer != "aa" || snaps[1].Desc.Layer != "mm" || snaps[2].Desc.Layer != "zz" {
		t.Fatalf("snapshots not sorted by layer: %+v", snaps)
	}
	if snaps[1].Value != 11 {
		t.Fatalf("probe snapshot = %g, want 11", snaps[1].Value)
	}
	if snaps[2].Kind != KindCounter || snaps[2].Value != 7 {
		t.Fatalf("counter snapshot wrong: %+v", snaps[2])
	}
}

func TestTotalAcrossRanks(t *testing.T) {
	r := New()
	r.Counter("rel", "retransmits", 0).Add(2)
	r.Counter("rel", "retransmits", 1).Add(3)
	r.Counter("rel", "retransmits", StackRank).Add(5)
	if got := r.Total("rel", "retransmits"); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	if got := r.Total("rel", "missing"); got != 0 {
		t.Fatalf("Total of missing metric = %d, want 0", got)
	}
}

// TestSamplerSeries drives a sampler against a synthetic workload: a counter
// incremented once per microsecond and a level probe. The sampler must
// produce a rate track for the counter, a level track for the probe, and the
// simulation must still terminate (the sampler cannot keep it alive).
func TestSamplerSeries(t *testing.T) {
	eng := sim.NewEngine()
	reg := New()
	c := reg.Counter("l", "events", 0)
	depth := 0
	reg.Probe("l", "depth", 0, false, func() float64 { return float64(depth) })

	// Workload: 100 events, one per microsecond.
	var step func(i int)
	step = func(i int) {
		c.Inc()
		depth = i % 7
		if i < 99 {
			eng.After(sim.Microsecond, func() { step(i + 1) })
		}
	}
	eng.After(sim.Microsecond, func() { step(0) })

	s := NewSampler(eng, reg, 10*sim.Microsecond)
	s.Start()
	end := eng.Run()
	s.Flush()

	// The sampler may trail the last real event by at most one period (a
	// tick firing alongside the final event sees it pending and reschedules
	// once more), but must never keep the simulation alive beyond that.
	if end > sim.Time(110*sim.Microsecond) {
		t.Fatalf("run ended at %v, want <= 110us (sampler kept the engine alive?)", end)
	}
	tracks := s.Tracks()
	var events, depthTrack *Track
	for i := range tracks {
		switch tracks[i].Desc.Name {
		case "events":
			events = &tracks[i]
		case "depth":
			depthTrack = &tracks[i]
		}
	}
	if events == nil || depthTrack == nil {
		t.Fatalf("missing tracks, got %+v", tracks)
	}
	if !events.Rate || depthTrack.Rate {
		t.Fatalf("rate flags wrong: events.Rate=%v depth.Rate=%v", events.Rate, depthTrack.Rate)
	}
	// One event per microsecond ~ 1e6 events/s per full interval. An event
	// landing exactly on a tick boundary counts in the adjacent interval, so
	// allow a one-event-per-interval tolerance.
	for _, smp := range events.Samples[:len(events.Samples)-1] {
		if smp.V < 0.85e6 || smp.V > 1.15e6 {
			t.Fatalf("rate at %v = %g, want ~1e6", smp.At, smp.V)
		}
	}
	if got := len(depthTrack.Samples); got < 9 {
		t.Fatalf("depth track has %d samples, want >= 9", got)
	}
}

// TestSamplerCumulativeProbe checks busy-fraction differentiation: a probe
// reporting cumulative seconds of busy time samples as a fraction in [0,1].
func TestSamplerCumulativeProbe(t *testing.T) {
	eng := sim.NewEngine()
	reg := New()
	busy := 0.0
	reg.Probe("l", "busy", 0, true, func() float64 { return busy })
	// Busy half the time: every 2us tick adds 1us of busy.
	for i := 1; i <= 50; i++ {
		eng.At(sim.Time(i)*sim.Time(2*sim.Microsecond), func() {
			busy += sim.Microsecond.Seconds()
		})
	}
	s := NewSampler(eng, reg, 10*sim.Microsecond)
	s.Start()
	eng.Run()
	s.Flush()
	tracks := s.Tracks()
	if len(tracks) != 1 {
		t.Fatalf("got %d tracks, want 1", len(tracks))
	}
	for _, smp := range tracks[0].Samples {
		if math.Abs(smp.V-0.5) > 1e-9 {
			t.Fatalf("busy fraction at %v = %g, want 0.5", smp.At, smp.V)
		}
	}
}
