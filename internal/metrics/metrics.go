// Package metrics is the runtime-wide observability registry: counters,
// gauges, log2-bucketed histograms, and probes, keyed by (layer, name, rank)
// and cheap enough to be always-on. Every layer of the stack — fabric, mpi,
// lci, the two communication engines, rel, parsec — registers its instruments
// here instead of keeping private ad-hoc counter fields, so one registry per
// deployment describes the whole run.
//
// Instruments live against virtual time: a Sampler (sampler.go) turns the
// registry into per-metric time series suitable for Perfetto counter tracks,
// and bench.MetricsTable renders an end-of-run summary as a CSV table.
//
// Concurrency: a Registry is bound to one simulation domain. With a serial
// engine everything runs on one goroutine; with a sharded domain
// (sim.Parallel) ranks owned by different shards update instruments
// concurrently — per-rank instruments are naturally shard-local, but
// StackRank instruments (fault injection, rel's shared stack) and lazy
// first-use registration cross shards. Instruments therefore use atomics
// and registration takes a mutex: an increment is one uncontended atomic
// add on the hot path, which keeps always-on affordable.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates instrument types in snapshots.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count of events.
	KindCounter Kind = iota
	// KindGauge is an instantaneous level with a high-water mark.
	KindGauge
	// KindHistogram is a log2-bucketed distribution of observed values.
	KindHistogram
	// KindProbe is a callback sampled on demand (queue depths, busy time).
	KindProbe
)

// String names the kind for tables.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	case KindProbe:
		return "probe"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// StackRank is the rank value for instruments that describe the whole
// deployment rather than one rank (fault injection, rel's shared stack).
const StackRank = -1

// Counter is a monotonically increasing event count.
type Counter struct{ n atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds d.
func (c *Counter) Add(d uint64) { c.n.Add(d) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is an instantaneous level (queue depth, in-flight window) with a
// high-water mark.
type Gauge struct{ v, max atomic.Int64 }

func (g *Gauge) raiseMax(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Add moves the level by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.raiseMax(g.v.Add(d)) }

// Set replaces the level.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	g.raiseMax(v)
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// Histogram buckets observations by log2 magnitude: bucket i counts values v
// with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). Fixed 65 buckets cover
// the whole uint64 range with no configuration and O(1) observation. The sum
// is kept as float64 bits behind a CAS loop; observations from different
// shards commute because float addition of same-magnitude latencies is
// order-insensitive at snapshot precision.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // math.Float64bits of the running sum
	buckets [65]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + float64(v))
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	h.buckets[bits.Len64(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean returns the average observed value, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1): the upper
// edge of the first bucket whose cumulative count reaches q. Resolution is a
// factor of two, which is what a log2 histogram buys.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	need := uint64(math.Ceil(q * float64(total)))
	if need == 0 {
		need = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= need {
			if i == 0 {
				return 0
			}
			return math.Ldexp(1, i) - 1 // upper edge: 2^i - 1
		}
	}
	return math.Inf(1) // unreachable
}

// probe is a registered sampling callback.
type probe struct {
	fn func() float64
	// cumulative marks monotone probes (e.g. cumulative busy seconds): the
	// sampler differentiates consecutive readings into a rate, exactly as it
	// does for counters. Level probes (queue depths) are plotted directly.
	cumulative bool
}

// Desc identifies one instrument.
type Desc struct {
	Layer string // owning subsystem: "fabric", "lci", "mpice", ...
	Name  string // metric name within the layer, e.g. "deferred_queue_depth"
	Rank  int    // owning rank, or StackRank
}

// entry is one registered instrument.
type entry struct {
	desc Desc
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
	p    probe
}

// Registry holds every instrument of one deployment, in registration order.
// Lookup and registration are mutex-protected: under a sharded domain,
// first-use creation can race between shards. The instruments themselves are
// returned by pointer and used lock-free.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	index   map[Desc]*entry
}

// New returns an empty registry.
func New() *Registry { return &Registry{index: make(map[Desc]*entry)} }

func (r *Registry) get(layer, name string, rank int, kind Kind) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := Desc{Layer: layer, Name: name, Rank: rank}
	if e, ok := r.index[d]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %s/%s rank %d registered as %v, requested as %v",
				layer, name, rank, e.kind, kind))
		}
		return e
	}
	e := &entry{desc: d, kind: kind}
	// Allocate the instrument under the lock: letting the caller fill it in
	// lazily would let two shards observe a half-initialized entry.
	switch kind {
	case KindCounter:
		e.c = &Counter{}
	case KindGauge:
		e.g = &Gauge{}
	case KindHistogram:
		e.h = &Histogram{}
	}
	r.entries = append(r.entries, e)
	r.index[d] = e
	return e
}

// Counter returns the counter for (layer, name, rank), creating it on first
// use. Requesting an existing name as a different kind panics: a metric name
// collision is a programming error.
func (r *Registry) Counter(layer, name string, rank int) *Counter {
	return r.get(layer, name, rank, KindCounter).c
}

// Gauge returns the gauge for (layer, name, rank), creating it on first use.
func (r *Registry) Gauge(layer, name string, rank int) *Gauge {
	return r.get(layer, name, rank, KindGauge).g
}

// Histogram returns the histogram for (layer, name, rank), creating it on
// first use.
func (r *Registry) Histogram(layer, name string, rank int) *Histogram {
	return r.get(layer, name, rank, KindHistogram).h
}

// Probe registers fn as the sampling callback for (layer, name, rank). A
// cumulative probe reports a monotone total (busy seconds, bytes moved) that
// the sampler differentiates into a rate; a level probe reports an
// instantaneous value (queue depth) plotted directly. Re-registering replaces
// the callback.
func (r *Registry) Probe(layer, name string, rank int, cumulative bool, fn func() float64) {
	e := r.get(layer, name, rank, KindProbe)
	e.p = probe{fn: fn, cumulative: cumulative}
}

// Len returns the number of registered instruments.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// entriesFrom returns the entries registered at index i onward, copied under
// the lock; the sampler uses it to adopt instruments created after Start.
func (r *Registry) entriesFrom(i int) []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i >= len(r.entries) {
		return nil
	}
	out := make([]*entry, len(r.entries)-i)
	copy(out, r.entries[i:])
	return out
}

// snapshotEntries copies the entry list under the lock; the instruments
// themselves are read lock-free.
func (r *Registry) snapshotEntries() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*entry, len(r.entries))
	copy(out, r.entries)
	return out
}

// Snapshot is the current state of one instrument.
type Snapshot struct {
	Desc Desc
	Kind Kind

	// Value is the counter count, gauge level, or probe reading. For
	// histograms it is the observation count.
	Value float64
	// Max is the gauge high-water mark (gauges only).
	Max float64
	// Sum, Mean, P50 and P99 summarize histograms (histograms only; P50/P99
	// are log2-bucket upper bounds).
	Sum, Mean, P50, P99 float64
	// Cumulative marks probes whose Value is a monotone total.
	Cumulative bool
}

// Snapshots returns the state of every instrument, sorted by layer, name,
// rank, for stable tables.
func (r *Registry) Snapshots() []Snapshot {
	entries := r.snapshotEntries()
	out := make([]Snapshot, 0, len(entries))
	for _, e := range entries {
		s := Snapshot{Desc: e.desc, Kind: e.kind}
		switch e.kind {
		case KindCounter:
			s.Value = float64(e.c.Value())
		case KindGauge:
			s.Value = float64(e.g.Value())
			s.Max = float64(e.g.Max())
		case KindHistogram:
			s.Value = float64(e.h.Count())
			s.Sum = e.h.Sum()
			s.Mean = e.h.Mean()
			s.P50 = e.h.Quantile(0.50)
			s.P99 = e.h.Quantile(0.99)
		case KindProbe:
			if e.p.fn != nil {
				s.Value = e.p.fn()
			}
			s.Cumulative = e.p.cumulative
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Desc, out[j].Desc
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Rank < b.Rank
	})
	return out
}

// Total sums a counter metric across all ranks of a layer (including
// StackRank entries). Missing metrics total zero.
func (r *Registry) Total(layer, name string) uint64 {
	var t uint64
	for _, e := range r.snapshotEntries() {
		if e.kind == KindCounter && e.desc.Layer == layer && e.desc.Name == name {
			t += e.c.Value()
		}
	}
	return t
}
