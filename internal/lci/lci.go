// Package lci implements the Lightweight Communication Interface of the
// paper (Section 5; Snir, Dang, Mor, Yan — LCI v1.7). It mirrors the
// properties that make LCI a better substrate for asynchronous many-task
// runtimes than MPI:
//
//   - three explicit protocols chosen by the caller: Immediate (inline,
//     about a cache line), Buffered (a few pages, copied through
//     pre-registered packets, dynamically allocated at the receiver), and
//     Direct (any length, RDMA rendezvous with tag matching);
//   - non-blocking calls that fail with ErrRetry instead of blocking when
//     resources are exhausted, letting the library exert back-pressure on
//     the runtime (§5.1);
//   - completion delivered through synchronizers, completion queues, or
//     handler functions invoked from the explicit Progress call — no
//     per-request polling arrays (§5.2);
//   - receiver-side dynamic buffer allocation for unexpected short/medium
//     messages, so no persistent receives or message probing are needed;
//   - a cost model substantially leaner than MPI's: completions cost O(work
//     completed), not O(requests outstanding).
//
// Cost accounting follows the same convention as internal/mpi: state
// mutations are immediate; callers charge the exposed cost estimators on
// their thread Procs before invoking them.
package lci

import (
	"errors"

	"amtlci/internal/buf"
	"amtlci/internal/metrics"
	"amtlci/internal/sim"
)

// ErrRetry reports that the library lacks the resources to start the
// requested operation; the caller must progress existing communications and
// resubmit (§5.1).
var ErrRetry = errors.New("lci: insufficient resources, retry after progress")

// Config holds protocol thresholds, resource limits, and the CPU cost model.
type Config struct {
	// ImmediateMax is the largest payload for the Immediate protocol
	// (about a cache line, sent inline from the user buffer).
	ImmediateMax int64
	// BufferedMax is the largest payload for the Buffered protocol. The
	// paper reports an upper AM limit of about 12 KiB in the current
	// implementation (§5.3.2).
	BufferedMax int64
	// SendPackets bounds in-flight Immediate+Buffered sends (the
	// pre-registered packet pool); exceeding it returns ErrRetry.
	SendPackets int
	// MaxDirect bounds concurrently posted Direct receives and sends
	// (hardware queue-pair resources); exceeding it returns ErrRetry.
	MaxDirect int
	// PostCost is the CPU cost of initiating any communication call.
	PostCost sim.Duration
	// ProgressBase is the fixed cost of one Progress pass.
	ProgressBase sim.Duration
	// PerCompletion is the cost of retiring one completion (CQ drain,
	// descriptor recycle, handler dispatch).
	PerCompletion sim.Duration
	// MatchCost is the tag-matching cost for Direct traffic.
	MatchCost sim.Duration
	// CopyPsPerByte prices the Buffered protocol's copies.
	CopyPsPerByte int64
	// HeaderBytes frames payload-bearing messages; CtrlBytes sizes
	// rendezvous control messages.
	HeaderBytes int64
	CtrlBytes   int64
	// MTSendCost is the extra per-call cost of a concurrent (multithreaded)
	// send — an atomic reservation rather than MPI's global lock.
	MTSendCost sim.Duration

	// Metrics is the registry every endpoint registers its instruments in
	// (send/receive/retry counters, packet-pool and direct-slot occupancy,
	// staged completion-queue depth, progress-call count). Nil gets a
	// private registry; stack.Build shares one across every layer.
	Metrics *metrics.Registry
}

// DefaultConfig returns a cost model for a lean communication library: LCI
// is a thin layer over the NIC, so software costs sit well below the MPI
// stack's (compare mpi.DefaultConfig).
func DefaultConfig() Config {
	return Config{
		ImmediateMax:  64,
		BufferedMax:   12 << 10,
		SendPackets:   4096,
		MaxDirect:     1024,
		PostCost:      90 * sim.Nanosecond,
		ProgressBase:  60 * sim.Nanosecond,
		PerCompletion: 110 * sim.Nanosecond,
		MatchCost:     120 * sim.Nanosecond,
		CopyPsPerByte: 50,
		HeaderBytes:   32,
		CtrlBytes:     32,
		MTSendCost:    40 * sim.Nanosecond,
	}
}

func (c Config) copyCost(n int64) sim.Duration {
	if n <= 0 {
		return 0
	}
	return sim.Duration(n * c.CopyPsPerByte)
}

// SendCost is the caller-side CPU cost of posting a send of n bytes.
func (c Config) SendCost(n int64) sim.Duration {
	if n <= c.BufferedMax {
		return c.PostCost + c.copyCost(n)
	}
	return c.PostCost
}

// Request is the completion descriptor delivered to synchronizers, queues,
// and handlers (LCI_request_t).
type Request struct {
	Rank    int     // peer rank
	Tag     int     // message tag
	Data    buf.Buf // received data (receives) or the sent buffer (sends)
	Extra   buf.Buf // second segment of an iovec send (Sendmx), if any
	UserCtx any     // context supplied when the operation was posted
}

// Handler is a completion handler invoked from Progress.
type Handler func(Request)

// Sync is a synchronizer: a single-use completion flag analogous to an MPI
// request that can only be tested, not matched.
type Sync struct {
	done bool
	req  Request
}

// Test reports completion and, when complete, the completion descriptor.
func (s *Sync) Test() (Request, bool) { return s.req, s.done }

func (s *Sync) signal(r Request) {
	if s.done {
		panic("lci: synchronizer signaled twice")
	}
	s.done, s.req = true, r
}

// CQ is a completion queue.
type CQ struct {
	items []Request
}

// Pop removes the oldest completion, reporting whether one existed.
func (q *CQ) Pop() (Request, bool) {
	if len(q.items) == 0 {
		return Request{}, false
	}
	r := q.items[0]
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	return r, true
}

// Len returns the number of queued completions.
func (q *CQ) Len() int { return len(q.items) }

func (q *CQ) push(r Request) { q.items = append(q.items, r) }

// Comp is a completion target: *Sync, *CQ, or Handler. A nil Comp discards
// the completion.
type Comp any

func deliver(c Comp, r Request) {
	switch t := c.(type) {
	case nil:
	case *Sync:
		t.signal(r)
	case *CQ:
		t.push(r)
	case Handler:
		t(r)
	default:
		panic("lci: unsupported completion target")
	}
}
