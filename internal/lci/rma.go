package lci

import (
	"fmt"

	"amtlci/internal/buf"
	"amtlci/internal/fabric"
)

// This file implements the paper's stated future work (§7): "introducing
// new features to LCI that can directly implement the PaRSEC put interface".
// Putd is a true one-sided put with a remote completion notification: the
// initiator names the target's registered region, the payload travels in a
// single wire transfer with no rendezvous handshake, the NIC writes memory
// directly (no target-CPU copy cost), and the target's RMA completion
// handler receives the initiator-supplied metadata.

// RMAKey names a remotely writable registered region of an endpoint. Keys
// are chosen by the registrar and must be unique per endpoint; consumers
// exchange them out of band (e.g. inside a GET DATA message).
type RMAKey struct {
	ID uint64
}

// RegisterRMA exposes b for one-sided writes under the given key. It panics
// on a duplicate key.
func (ep *Endpoint) RegisterRMA(key RMAKey, b buf.Buf) {
	if ep.rmaMem == nil {
		ep.rmaMem = make(map[RMAKey]buf.Buf)
	}
	if _, dup := ep.rmaMem[key]; dup {
		panic(fmt.Sprintf("lci: RMA key %v registered twice", key))
	}
	ep.rmaMem[key] = b
}

// DeregisterRMA withdraws a registration; unknown keys panic (a put may be
// in flight toward them).
func (ep *Endpoint) DeregisterRMA(key RMAKey) {
	if _, ok := ep.rmaMem[key]; !ok {
		panic(fmt.Sprintf("lci: deregistering unknown RMA key %v", key))
	}
	delete(ep.rmaMem, key)
}

// SetRMAComp installs the completion target invoked (from Progress) when a
// one-sided put lands: the Request carries the initiator's metadata in Data
// and the initiator rank.
func (ep *Endpoint) SetRMAComp(c Comp) { ep.rmaComp = c }

// Putd starts a one-sided put of b into the region registered at dst under
// key, at byte offset off. meta is delivered to the target's RMA completion
// handler; comp fires at the initiator when the source buffer is reusable.
// Putd participates in the Direct resource pool (ErrRetry back-pressure).
// The caller charges Config.PostCost.
func (ep *Endpoint) Putd(dst int, key RMAKey, off int64, b buf.Buf, meta []byte, comp Comp, userCtx any) error {
	if ep.direct.Value() >= int64(ep.rt.cfg.MaxDirect) {
		ep.retries.Inc()
		return ErrRetry
	}
	ep.direct.Add(1)
	ep.sent.Inc()
	op := &directOp{ep: ep, peer: dst, b: b, comp: comp, userCtx: userCtx}
	metaCopy := append([]byte(nil), meta...)
	ep.rt.fab.Send(&fabric.Message{
		Src: ep.me, Dst: dst, Size: b.Size + int64(len(meta)) + ep.rt.cfg.HeaderBytes,
		Meta: &packet{kind: kindPut, src: ep.me, size: b.Size, payload: b,
			rmaKey: key, rmaOff: off, rmaMeta: metaCopy},
		OnTx: func() { ep.stage(&packet{kind: kindSendDone, sctx: op}) },
	})
	return nil
}
