package lci

import (
	"fmt"

	"amtlci/internal/buf"
	"amtlci/internal/fabric"
	"amtlci/internal/metrics"
	"amtlci/internal/sim"
)

// Runtime is an LCI deployment over a fabric: one Endpoint per rank.
type Runtime struct {
	dom sim.Domain
	fab fabric.Network
	cfg Config
	eps []*Endpoint
	reg *metrics.Registry
}

// NewRuntime attaches one Endpoint per fabric port. fab may be the raw
// fabric or a reliability layer; when it can report peer failures
// (fabric.ErrNotifier), those are forwarded to each endpoint's error
// handler.
func NewRuntime(dom sim.Domain, fab fabric.Network, cfg Config) *Runtime {
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.New()
	}
	rt := &Runtime{dom: dom, fab: fab, cfg: cfg, reg: reg}
	rt.eps = make([]*Endpoint, fab.Ranks())
	for i := range rt.eps {
		ep := &Endpoint{
			rt: rt, me: i,
			sent:          reg.Counter("lci", "sent", i),
			received:      reg.Counter("lci", "received", i),
			retries:       reg.Counter("lci", "retries", i),
			progressCalls: reg.Counter("lci", "progress_calls", i),
			packets:       reg.Gauge("lci", "packets_in_flight", i),
			direct:        reg.Gauge("lci", "direct_in_flight", i),
		}
		reg.Probe("lci", "cq_depth", i, false, func() float64 { return float64(len(ep.staged)) })
		rt.eps[i] = ep
		fab.SetHandler(i, ep.onArrival)
	}
	if en, ok := fab.(fabric.ErrNotifier); ok {
		for i := range rt.eps {
			ep := rt.eps[i]
			en.SetErrHandler(i, ep.deliverErr)
		}
	}
	return rt
}

// Endpoint returns rank i's endpoint.
func (rt *Runtime) Endpoint(i int) *Endpoint { return rt.eps[i] }

// Size returns the number of ranks.
func (rt *Runtime) Size() int { return len(rt.eps) }

// Config returns the runtime's parameters.
func (rt *Runtime) Config() Config { return rt.cfg }

// Metrics returns the registry the runtime's instruments live in.
func (rt *Runtime) Metrics() *metrics.Registry { return rt.reg }

type lciKind int8

const (
	kindMsg      lciKind = iota // immediate or buffered payload
	kindRTS                     // direct rendezvous request-to-send
	kindCTS                     // direct rendezvous clear-to-send
	kindData                    // direct payload
	kindSendDone                // local: direct send buffer drained
	kindPktDone                 // local: immediate/buffered packet released
	kindPut                     // one-sided put payload (rma.go)
)

type packet struct {
	kind    lciKind
	src     int
	tag     int
	size    int64
	payload buf.Buf
	extra   buf.Buf   // second iovec segment (Sendmx)
	sctx    *directOp // sender-side direct operation
	rctx    *directOp // receiver-side direct operation

	// One-sided put fields (rma.go).
	rmaKey  RMAKey
	rmaOff  int64
	rmaMeta []byte
}

// directOp tracks one posted Direct send or receive.
type directOp struct {
	ep      *Endpoint
	tag     int
	peer    int // AnyRank for wildcard receives
	b       buf.Buf
	comp    Comp
	userCtx any
}

// AnyRank matches a Direct receive against any peer.
const AnyRank = -1

// Endpoint is one rank's LCI context. All methods must run on the owning
// engine's goroutine.
type Endpoint struct {
	rt *Runtime
	me int

	staged []*packet // arrivals awaiting Progress

	// Receiver-side Direct state.
	postedRecv []*directOp
	pendingRTS []*packet // RTSes with no matching posted receive yet

	// Resource accounting for back-pressure: packet-pool occupancy and
	// posted Direct operations, kept as gauges so occupancy and high-water
	// marks are observable (metrics registry, layer "lci").
	packets *metrics.Gauge
	direct  *metrics.Gauge

	// msgComp receives completions for Immediate/Buffered arrivals; buffers
	// are allocated dynamically, no receive needs to be posted (§5.2).
	msgComp Comp

	// One-sided put state (rma.go).
	rmaMem  map[RMAKey]buf.Buf
	rmaComp Comp

	wake  func()
	errFn func(peer int, err error)

	// Counters for tests and experiments (metrics registry, layer "lci").
	sent, received, retries *metrics.Counter
	progressCalls           *metrics.Counter
}

// Sent counts messages this endpoint has sent (all protocols).
func (ep *Endpoint) Sent() uint64 { return ep.sent.Value() }

// Received counts payload deliveries at this endpoint.
func (ep *Endpoint) Received() uint64 { return ep.received.Value() }

// Retries counts ErrRetry back-pressure rejections.
func (ep *Endpoint) Retries() uint64 { return ep.retries.Value() }

// ID returns the endpoint's rank.
func (ep *Endpoint) ID() int { return ep.me }

// SetMsgComp installs the completion target for dynamically-allocated
// short/medium message arrivals.
func (ep *Endpoint) SetMsgComp(c Comp) { ep.msgComp = c }

// SetWake installs a callback invoked when new progress work appears.
func (ep *Endpoint) SetWake(fn func()) { ep.wake = fn }

func (ep *Endpoint) notify() {
	if ep.wake != nil {
		ep.wake()
	}
}

// SetErrHandler installs the callback run when the transport declares a peer
// unreachable. Without one, the failure panics: an unnoticed dead peer
// otherwise turns into a silent hang.
func (ep *Endpoint) SetErrHandler(fn func(peer int, err error)) { ep.errFn = fn }

func (ep *Endpoint) deliverErr(peer int, err error) {
	if ep.errFn == nil {
		panic(err)
	}
	ep.errFn(peer, err)
}

func (ep *Endpoint) onArrival(m *fabric.Message) { ep.stage(m.Meta.(*packet)) }

func (ep *Endpoint) stage(p *packet) {
	wasEmpty := len(ep.staged) == 0
	ep.staged = append(ep.staged, p)
	if wasEmpty {
		ep.notify()
	}
}

// Sends transmits an Immediate message: at most ImmediateMax bytes, inline
// from the user buffer, fire-and-forget. The caller charges
// Config.SendCost(n).
func (ep *Endpoint) Sends(dst, tag int, b buf.Buf) error {
	if b.Size > ep.rt.cfg.ImmediateMax {
		panic(fmt.Sprintf("lci: Sends payload %d exceeds immediate max %d", b.Size, ep.rt.cfg.ImmediateMax))
	}
	return ep.eagerSend(dst, tag, b)
}

// Sendm transmits a Buffered message: at most BufferedMax bytes, copied into
// a registered packet. The caller charges Config.SendCost(n).
func (ep *Endpoint) Sendm(dst, tag int, b buf.Buf) error {
	if b.Size > ep.rt.cfg.BufferedMax {
		panic(fmt.Sprintf("lci: Sendm payload %d exceeds buffered max %d", b.Size, ep.rt.cfg.BufferedMax))
	}
	return ep.eagerSend(dst, tag, b)
}

// Sendmx transmits a Buffered message with two segments — a header and an
// opaque extra segment — in one wire transfer (an iovec-style send). The
// PaRSEC LCI backend uses it to piggyback small put payloads on the
// rendezvous handshake (§5.3.3, "if the message data is sufficiently small,
// then it can be sent eagerly inside the handshake message"). The caller
// charges Config.SendCost(header.Size + extra.Size).
func (ep *Endpoint) Sendmx(dst, tag int, header, extra buf.Buf) error {
	if header.Size+extra.Size > ep.rt.cfg.BufferedMax {
		panic(fmt.Sprintf("lci: Sendmx payload %d exceeds buffered max %d",
			header.Size+extra.Size, ep.rt.cfg.BufferedMax))
	}
	if ep.packets.Value() >= int64(ep.rt.cfg.SendPackets) {
		ep.retries.Inc()
		return ErrRetry
	}
	ep.packets.Add(1)
	ep.sent.Inc()
	ep.rt.fab.Send(&fabric.Message{
		Src: ep.me, Dst: dst, Size: header.Size + extra.Size + ep.rt.cfg.HeaderBytes,
		Meta: &packet{kind: kindMsg, src: ep.me, tag: tag, size: header.Size + extra.Size,
			payload: snapshot(header), extra: snapshot(extra)},
		OnTx: func() { ep.stage(&packet{kind: kindPktDone}) },
	})
	return nil
}

func snapshot(b buf.Buf) buf.Buf {
	if b.IsVirtual() {
		return b
	}
	c := make([]byte, b.Size)
	copy(c, b.Bytes)
	return buf.FromBytes(c)
}

func (ep *Endpoint) eagerSend(dst, tag int, b buf.Buf) error {
	if ep.packets.Value() >= int64(ep.rt.cfg.SendPackets) {
		ep.retries.Inc()
		return ErrRetry
	}
	ep.packets.Add(1)
	ep.sent.Inc()
	ep.rt.fab.Send(&fabric.Message{
		Src: ep.me, Dst: dst, Size: b.Size + ep.rt.cfg.HeaderBytes,
		Meta: &packet{kind: kindMsg, src: ep.me, tag: tag, size: b.Size, payload: snapshot(b)},
		OnTx: func() { ep.stage(&packet{kind: kindPktDone}) },
	})
	return nil
}

// Sendd posts a Direct (RDMA rendezvous) send of any length. comp receives a
// completion when the source buffer may be reused. The caller charges
// Config.PostCost.
func (ep *Endpoint) Sendd(dst, tag int, b buf.Buf, comp Comp, userCtx any) error {
	if ep.direct.Value() >= int64(ep.rt.cfg.MaxDirect) {
		ep.retries.Inc()
		return ErrRetry
	}
	ep.direct.Add(1)
	ep.sent.Inc()
	op := &directOp{ep: ep, tag: tag, peer: dst, b: b, comp: comp, userCtx: userCtx}
	ep.rt.fab.Send(&fabric.Message{
		Src: ep.me, Dst: dst, Size: ep.rt.cfg.CtrlBytes,
		Meta: &packet{kind: kindRTS, src: ep.me, tag: tag, size: b.Size, sctx: op},
	})
	return nil
}

// Recvd posts a Direct receive matching (src, tag); src may be AnyRank. comp
// receives a completion when the data has landed. The caller charges
// Config.PostCost. Recvd participates in back-pressure: with MaxDirect
// operations outstanding it returns ErrRetry, which the PaRSEC LCI backend
// handles by delegating the retry to the communication thread (§5.3.3).
func (ep *Endpoint) Recvd(src, tag int, b buf.Buf, comp Comp, userCtx any) error {
	if ep.direct.Value() >= int64(ep.rt.cfg.MaxDirect) {
		ep.retries.Inc()
		return ErrRetry
	}
	ep.direct.Add(1)
	op := &directOp{ep: ep, tag: tag, peer: src, b: b, comp: comp, userCtx: userCtx}
	// Match an already-arrived RTS first.
	for i, p := range ep.pendingRTS {
		if matchDirect(op, p) {
			ep.pendingRTS = append(ep.pendingRTS[:i], ep.pendingRTS[i+1:]...)
			ep.sendCTS(op, p)
			return nil
		}
	}
	ep.postedRecv = append(ep.postedRecv, op)
	return nil
}

func matchDirect(op *directOp, p *packet) bool {
	return (op.peer == AnyRank || op.peer == p.src) && op.tag == p.tag
}

func (ep *Endpoint) sendCTS(op *directOp, rts *packet) {
	ep.rt.fab.Send(&fabric.Message{
		Src: ep.me, Dst: rts.src, Size: ep.rt.cfg.CtrlBytes,
		Meta: &packet{kind: kindCTS, src: ep.me, tag: rts.tag, size: rts.size, sctx: rts.sctx, rctx: op},
	})
}

// ProgressCost prices the work currently staged for one Progress pass.
func (ep *Endpoint) ProgressCost() sim.Duration {
	d := ep.rt.cfg.ProgressBase
	for _, p := range ep.staged {
		switch p.kind {
		case kindMsg:
			d += ep.rt.cfg.PerCompletion + ep.rt.cfg.copyCost(p.size)
		case kindRTS, kindCTS, kindData:
			d += ep.rt.cfg.MatchCost + ep.rt.cfg.PerCompletion
		case kindPut:
			// The NIC wrote memory directly: only the completion
			// notification costs CPU, no matching and no copy.
			d += ep.rt.cfg.PerCompletion
		case kindSendDone, kindPktDone:
			d += ep.rt.cfg.PerCompletion
		}
	}
	return d
}

// StagedWork reports whether Progress has anything to do.
func (ep *Endpoint) StagedWork() bool { return len(ep.staged) > 0 }

// Progress drains hardware completion queues: delivers dynamically-buffered
// message arrivals, matches Direct traffic, answers rendezvous RTSes,
// launches CTS-cleared data, and retires send completions. Completion
// handlers run in the caller's context — the paper's LCI backend dedicates a
// progress thread to exactly this call (§5.3.1). Callers charge
// ProgressCost (sampled immediately before).
func (ep *Endpoint) Progress() {
	ep.progressCalls.Inc()
	staged := ep.staged
	ep.staged = nil
	for _, p := range staged {
		switch p.kind {
		case kindMsg:
			ep.received.Inc()
			deliver(ep.msgComp, Request{Rank: p.src, Tag: p.tag, Data: p.payload, Extra: p.extra})
		case kindRTS:
			if op := ep.findPostedRecv(p); op != nil {
				ep.sendCTS(op, p)
			} else {
				ep.pendingRTS = append(ep.pendingRTS, p)
			}
		case kindCTS:
			sctx := p.sctx
			ep.rt.fab.Send(&fabric.Message{
				Src: ep.me, Dst: p.src, Size: sctx.b.Size + ep.rt.cfg.HeaderBytes,
				Meta: &packet{kind: kindData, src: ep.me, tag: p.tag, size: sctx.b.Size, payload: sctx.b, rctx: p.rctx},
				OnTx: func() { ep.stage(&packet{kind: kindSendDone, sctx: sctx}) },
			})
		case kindData:
			op := p.rctx
			ep.received.Inc()
			ep.direct.Add(-1)
			buf.Copy(op.b, p.payload)
			deliver(op.comp, Request{Rank: p.src, Tag: p.tag, Data: op.b, UserCtx: op.userCtx})
		case kindPut:
			target, ok := ep.rmaMem[p.rmaKey]
			if !ok {
				panic(fmt.Sprintf("lci: one-sided put to unknown RMA key %v at rank %d", p.rmaKey, ep.me))
			}
			ep.received.Inc()
			buf.Copy(target.Slice(p.rmaOff, p.size), p.payload)
			deliver(ep.rmaComp, Request{Rank: p.src, Data: buf.FromBytes(p.rmaMeta)})
		case kindSendDone:
			op := p.sctx
			ep.direct.Add(-1)
			deliver(op.comp, Request{Rank: op.peer, Tag: op.tag, Data: op.b, UserCtx: op.userCtx})
		case kindPktDone:
			ep.packets.Add(-1)
		}
	}
}

func (ep *Endpoint) findPostedRecv(p *packet) *directOp {
	for i, op := range ep.postedRecv {
		if matchDirect(op, p) {
			ep.postedRecv = append(ep.postedRecv[:i], ep.postedRecv[i+1:]...)
			return op
		}
	}
	return nil
}
