package lci

import (
	"testing"
	"testing/quick"

	"amtlci/internal/buf"
	"amtlci/internal/fabric"
	"amtlci/internal/sim"
)

func harness(n int) (*sim.Engine, *Runtime) {
	eng := sim.NewEngine()
	fc := fabric.DefaultConfig()
	fc.Jitter = 0
	fab, err := fabric.New(eng, n, fc)
	if err != nil {
		panic(err)
	}
	return eng, NewRuntime(eng, fab, DefaultConfig())
}

// pump progresses every endpoint promptly, like a dedicated progress thread.
func pump(eng *sim.Engine, rt *Runtime) {
	for i := 0; i < rt.Size(); i++ {
		ep := rt.Endpoint(i)
		ep.SetWake(func() { eng.After(10*sim.Nanosecond, ep.Progress) })
	}
}

func TestImmediateSendDeliversToHandler(t *testing.T) {
	eng, rt := harness(2)
	pump(eng, rt)
	var got []Request
	rt.Endpoint(1).SetMsgComp(Handler(func(r Request) { got = append(got, r) }))
	if err := rt.Endpoint(0).Sends(1, 42, buf.FromBytes([]byte("ping"))); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(got) != 1 || got[0].Tag != 42 || got[0].Rank != 0 || string(got[0].Data.Bytes) != "ping" {
		t.Fatalf("got = %+v", got)
	}
}

func TestImmediateOversizePanics(t *testing.T) {
	_, rt := harness(2)
	defer func() {
		if recover() == nil {
			t.Fatal("oversize Sends did not panic")
		}
	}()
	rt.Endpoint(0).Sends(1, 1, buf.Virtual(rt.Config().ImmediateMax+1))
}

func TestBufferedSendNoPostedReceiveNeeded(t *testing.T) {
	// The receiver allocates dynamically: no receive is ever posted, yet the
	// message is delivered (contrast with MPI's persistent-receive dance).
	eng, rt := harness(2)
	pump(eng, rt)
	cq := &CQ{}
	rt.Endpoint(1).SetMsgComp(cq)
	payload := make([]byte, rt.Config().BufferedMax)
	payload[17] = 99
	if err := rt.Endpoint(0).Sendm(1, 5, buf.FromBytes(payload)); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	r, ok := cq.Pop()
	if !ok || r.Data.Bytes[17] != 99 {
		t.Fatalf("CQ pop = %+v ok=%v", r, ok)
	}
	if _, ok := cq.Pop(); ok {
		t.Fatal("CQ should be empty")
	}
}

func TestBufferedSenderMayReuseBuffer(t *testing.T) {
	eng, rt := harness(2)
	pump(eng, rt)
	var seen byte
	rt.Endpoint(1).SetMsgComp(Handler(func(r Request) { seen = r.Data.Bytes[0] }))
	b := []byte{7}
	rt.Endpoint(0).Sendm(1, 1, buf.FromBytes(b))
	b[0] = 0xFF
	eng.Run()
	if seen != 7 {
		t.Fatalf("receiver saw %d, want 7 (buffered copy)", seen)
	}
}

func TestDirectRendezvousRoundTrip(t *testing.T) {
	eng, rt := harness(2)
	pump(eng, rt)
	const n = 1 << 20
	src := make([]byte, n)
	for i := range src {
		src[i] = byte(i)
	}
	dst := make([]byte, n)
	sDone, rDone := &Sync{}, &Sync{}
	if err := rt.Endpoint(1).Recvd(0, 9, buf.FromBytes(dst), rDone, "rctx"); err != nil {
		t.Fatal(err)
	}
	if err := rt.Endpoint(0).Sendd(1, 9, buf.FromBytes(src), sDone, "sctx"); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if r, ok := sDone.Test(); !ok || r.UserCtx != "sctx" {
		t.Fatalf("send sync = %+v ok=%v", r, ok)
	}
	r, ok := rDone.Test()
	if !ok || r.UserCtx != "rctx" || r.Rank != 0 {
		t.Fatalf("recv sync = %+v ok=%v", r, ok)
	}
	for i := 0; i < n; i += 4097 {
		if dst[i] != byte(i) {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
}

func TestDirectSendBeforeRecvMatchesLater(t *testing.T) {
	eng, rt := harness(2)
	pump(eng, rt)
	sDone := &Sync{}
	rt.Endpoint(0).Sendd(1, 3, buf.Virtual(1<<16), sDone, nil)
	eng.Run()
	if _, ok := sDone.Test(); ok {
		t.Fatal("direct send completed before a receive was posted")
	}
	rDone := &Sync{}
	rt.Endpoint(1).Recvd(AnyRank, 3, buf.Virtual(1<<16), rDone, nil)
	eng.Run()
	if _, ok := sDone.Test(); !ok {
		t.Fatal("direct send never completed")
	}
	if _, ok := rDone.Test(); !ok {
		t.Fatal("direct recv never completed")
	}
}

func TestDirectTagAndPeerSelectivity(t *testing.T) {
	eng, rt := harness(3)
	pump(eng, rt)
	wrongTag, rightTag := &Sync{}, &Sync{}
	rt.Endpoint(2).Recvd(0, 1, buf.Virtual(1<<15), wrongTag, nil) // tag mismatch
	rt.Endpoint(2).Recvd(1, 2, buf.Virtual(1<<15), rightTag, nil) // exact match
	rt.Endpoint(1).Sendd(2, 2, buf.Virtual(1<<15), nil, nil)
	eng.Run()
	if _, ok := wrongTag.Test(); ok {
		t.Fatal("mismatched receive completed")
	}
	if _, ok := rightTag.Test(); !ok {
		t.Fatal("matching receive did not complete")
	}
}

func TestRecvdBackPressureErrRetry(t *testing.T) {
	eng, rt := harness(2)
	cfg := rt.Config()
	ep := rt.Endpoint(1)
	for i := 0; i < cfg.MaxDirect; i++ {
		if err := ep.Recvd(AnyRank, i, buf.Virtual(8), nil, nil); err != nil {
			t.Fatalf("post %d failed early: %v", i, err)
		}
	}
	if err := ep.Recvd(AnyRank, 999999, buf.Virtual(8), nil, nil); err != ErrRetry {
		t.Fatalf("err = %v, want ErrRetry", err)
	}
	if ep.Retries() != 1 {
		t.Fatalf("Retries = %d, want 1", ep.Retries())
	}
	_ = eng
}

func TestSendPacketPoolBackPressureAndRecycle(t *testing.T) {
	eng, rt := harness(2)
	pump(eng, rt)
	rt.Endpoint(1).SetMsgComp(Handler(func(Request) {}))
	ep := rt.Endpoint(0)
	n := rt.Config().SendPackets
	for i := 0; i < n; i++ {
		if err := ep.Sends(1, 1, buf.Virtual(8)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := ep.Sends(1, 1, buf.Virtual(8)); err != ErrRetry {
		t.Fatalf("err = %v, want ErrRetry at pool exhaustion", err)
	}
	// Drain the network; packets recycle and sends work again.
	eng.Run()
	if err := ep.Sends(1, 1, buf.Virtual(8)); err != nil {
		t.Fatalf("send after recycle: %v", err)
	}
}

func TestCompletionHandlersRunInProgressContext(t *testing.T) {
	// Without a Progress call, nothing completes — LCI's explicit-progress
	// contract (§5.2).
	eng, rt := harness(2)
	got := 0
	rt.Endpoint(1).SetMsgComp(Handler(func(Request) { got++ }))
	rt.Endpoint(0).Sends(1, 1, buf.Virtual(8))
	eng.Run() // no wake installed => no Progress
	if got != 0 {
		t.Fatal("completion delivered without Progress")
	}
	if !rt.Endpoint(1).StagedWork() {
		t.Fatal("arrival not staged")
	}
	rt.Endpoint(1).Progress()
	if got != 1 {
		t.Fatal("completion not delivered by Progress")
	}
}

func TestProgressCostScalesWithCompletionsNotPosted(t *testing.T) {
	// LCI's key cost property: a pile of posted-but-idle receives costs
	// nothing to progress; only completed work costs.
	eng, rt := harness(2)
	ep := rt.Endpoint(1)
	for i := 0; i < 500; i++ {
		ep.Recvd(AnyRank, i+100, buf.Virtual(8), nil, nil)
	}
	idleCost := ep.ProgressCost()
	if idleCost > rt.Config().ProgressBase {
		t.Fatalf("idle progress cost %v grew with posted receives", idleCost)
	}
	rt.Endpoint(0).Sends(1, 1, buf.Virtual(8))
	eng.Run()
	if ep.ProgressCost() <= idleCost {
		t.Fatal("staged arrival did not increase progress cost")
	}
}

func TestSyncDoubleSignalPanics(t *testing.T) {
	s := &Sync{}
	s.signal(Request{})
	defer func() {
		if recover() == nil {
			t.Fatal("double signal did not panic")
		}
	}()
	s.signal(Request{})
}

func TestCQFIFO(t *testing.T) {
	q := &CQ{}
	for i := 0; i < 10; i++ {
		q.push(Request{Tag: i})
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 10; i++ {
		r, ok := q.Pop()
		if !ok || r.Tag != i {
			t.Fatalf("pop %d = %+v ok=%v", i, r, ok)
		}
	}
}

func TestManyConcurrentDirectTransfersConserveData(t *testing.T) {
	f := func(seeds []uint16) bool {
		if len(seeds) > 64 {
			seeds = seeds[:64]
		}
		eng, rt := harness(4)
		pump(eng, rt)
		completed := 0
		want := 0
		for i, s := range seeds {
			src := int(s % 4)
			dst := int((s / 4) % 4)
			if src == dst {
				continue
			}
			want++
			size := int64(s)*100 + 1
			tag := 1000 + i
			rt.Endpoint(dst).Recvd(src, tag, buf.Virtual(size), Handler(func(r Request) {
				if r.Data.Size == size {
					completed++
				}
			}), nil)
			rt.Endpoint(src).Sendd(dst, tag, buf.Virtual(size), nil, nil)
		}
		eng.Run()
		return completed == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLCIPerMessageCostBelowMPI(t *testing.T) {
	// Structural sanity for the paper's premise: the LCI software path is
	// cheaper than the MPI software path for an eager-sized message.
	lciCfg := DefaultConfig()
	if lciCfg.SendCost(1024) >= 220*sim.Nanosecond+sim.Duration(1024*50) {
		t.Skip("cost models changed; revisit calibration")
	}
}

func TestOneSidedPutdRoundTrip(t *testing.T) {
	eng, rt := harness(2)
	pump(eng, rt)
	const n = 256 << 10
	src := make([]byte, n)
	for i := range src {
		src[i] = byte(i * 3)
	}
	dst := make([]byte, n+64)
	rt.Endpoint(1).RegisterRMA(RMAKey{ID: 9}, buf.FromBytes(dst))
	var meta []byte
	var from int
	rt.Endpoint(1).SetRMAComp(Handler(func(r Request) {
		meta = r.Data.Bytes
		from = r.Rank
	}))
	done := &Sync{}
	if err := rt.Endpoint(0).Putd(1, RMAKey{ID: 9}, 64, buf.FromBytes(src), []byte("notify"), done, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if _, ok := done.Test(); !ok {
		t.Fatal("initiator completion missing")
	}
	if string(meta) != "notify" || from != 0 {
		t.Fatalf("remote completion meta=%q from=%d", meta, from)
	}
	for i := 0; i < n; i += 1777 {
		if dst[64+i] != byte(i*3) {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
	if dst[0] != 0 {
		t.Fatal("offset not honored")
	}
}

func TestPutdBackPressure(t *testing.T) {
	eng, rt := harness(2)
	_ = eng
	rt.Endpoint(1).RegisterRMA(RMAKey{ID: 1}, buf.Virtual(1<<20))
	ep := rt.Endpoint(0)
	for i := 0; i < rt.Config().MaxDirect; i++ {
		if err := ep.Putd(1, RMAKey{ID: 1}, 0, buf.Virtual(8), nil, nil, nil); err != nil {
			t.Fatalf("putd %d: %v", i, err)
		}
	}
	if err := ep.Putd(1, RMAKey{ID: 1}, 0, buf.Virtual(8), nil, nil, nil); err != ErrRetry {
		t.Fatalf("err = %v, want ErrRetry", err)
	}
}

func TestPutdUnknownKeyPanics(t *testing.T) {
	eng, rt := harness(2)
	pump(eng, rt)
	rt.Endpoint(0).Putd(1, RMAKey{ID: 77}, 0, buf.Virtual(8), nil, nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("put to unknown key did not panic")
		}
	}()
	eng.Run()
}

func TestRMARegistrationLifecycle(t *testing.T) {
	_, rt := harness(1)
	ep := rt.Endpoint(0)
	ep.RegisterRMA(RMAKey{ID: 5}, buf.Virtual(128))
	ep.DeregisterRMA(RMAKey{ID: 5})
	ep.RegisterRMA(RMAKey{ID: 5}, buf.Virtual(64)) // id reusable after dereg
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate RMA key did not panic")
		}
	}()
	ep.RegisterRMA(RMAKey{ID: 5}, buf.Virtual(64))
}
