// Package stats provides the small statistical toolkit used by the
// experiment harnesses: summary statistics over float64 samples and the
// paper's measurement methodology (Section 6.1.3: run a benchmark 18 times in
// succession, discard the first three runs, and report the mean of the
// remaining 15; HiCMA runs use a straight mean of five).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes summary statistics. An empty sample yields a zero
// Summary with N == 0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	return s
}

// Mean returns the arithmetic mean, or NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) using linear interpolation
// between closest ranks. It returns NaN for an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Methodology describes a repeated-measurement protocol.
type Methodology struct {
	Runs    int // total executions
	Discard int // warm-up executions dropped from the front
}

// Microbenchmark is the protocol of Sections 6.2 and 6.3: 18 runs, discard
// the first 3, mean of the remaining 15.
var Microbenchmark = Methodology{Runs: 18, Discard: 3}

// HiCMA is the protocol of Section 6.4: mean of five successive executions.
var HiCMA = Methodology{Runs: 5, Discard: 0}

// Quick is a cheap protocol for unit tests and -short benchmarks.
var Quick = Methodology{Runs: 3, Discard: 1}

// Collect runs f Runs times (passing the run index) and returns the mean of
// the retained samples. It panics if the methodology retains nothing.
func (m Methodology) Collect(f func(run int) float64) float64 {
	if m.Runs <= m.Discard {
		panic(fmt.Sprintf("stats: methodology retains no runs (%d runs, %d discarded)", m.Runs, m.Discard))
	}
	samples := make([]float64, 0, m.Runs-m.Discard)
	for i := 0; i < m.Runs; i++ {
		v := f(i)
		if i >= m.Discard {
			samples = append(samples, v)
		}
	}
	return Mean(samples)
}

// CollectAll is Collect but returns every retained sample.
func (m Methodology) CollectAll(f func(run int) float64) []float64 {
	if m.Runs <= m.Discard {
		panic(fmt.Sprintf("stats: methodology retains no runs (%d runs, %d discarded)", m.Runs, m.Discard))
	}
	samples := make([]float64, 0, m.Runs-m.Discard)
	for i := 0; i < m.Runs; i++ {
		v := f(i)
		if i >= m.Discard {
			samples = append(samples, v)
		}
	}
	return samples
}

// Online accumulates streaming mean/min/max/count without storing samples.
// The zero value is ready to use.
type Online struct {
	n          int
	mean, m2   float64
	min, max   float64
	hasExtrema bool
}

// Add incorporates x (Welford update).
func (o *Online) Add(x float64) {
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
	if !o.hasExtrema || x < o.min {
		o.min = x
	}
	if !o.hasExtrema || x > o.max {
		o.max = x
	}
	o.hasExtrema = true
}

// Merge folds another accumulator into this one (Chan et al. parallel
// Welford combine), as if every sample of b had been Added here. Merging the
// same accumulators in the same order is deterministic; different orders
// differ only in float rounding.
func (o *Online) Merge(b *Online) {
	if b.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *b
		return
	}
	n := o.n + b.n
	d := b.mean - o.mean
	o.m2 += b.m2 + d*d*float64(o.n)*float64(b.n)/float64(n)
	o.mean += d * float64(b.n) / float64(n)
	o.n = n
	if b.min < o.min {
		o.min = b.min
	}
	if b.max > o.max {
		o.max = b.max
	}
}

// N returns the count of samples.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (NaN when empty).
func (o *Online) Mean() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.mean
}

// Std returns the running sample standard deviation (0 for n < 2).
func (o *Online) Std() float64 {
	if o.n < 2 {
		return 0
	}
	return math.Sqrt(o.m2 / float64(o.n-1))
}

// Min returns the smallest sample (NaN when empty).
func (o *Online) Min() float64 {
	if !o.hasExtrema {
		return math.NaN()
	}
	return o.min
}

// Max returns the largest sample (NaN when empty).
func (o *Online) Max() float64 {
	if !o.hasExtrema {
		return math.NaN()
	}
	return o.max
}
