package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Std = %v, want sqrt(2.5)", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatalf("empty summary N = %d", s.N)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) should be NaN")
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Fatalf("bad singleton summary: %+v", s)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {105, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMethodologyDiscardsWarmup(t *testing.T) {
	// First three runs are wildly slower, as the paper observed.
	values := []float64{100, 90, 80, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10}
	got := Microbenchmark.Collect(func(run int) float64 { return values[run] })
	if got != 10 {
		t.Fatalf("mean = %v, want 10 (warm-up not discarded?)", got)
	}
}

func TestMethodologyCollectAll(t *testing.T) {
	xs := Quick.CollectAll(func(run int) float64 { return float64(run) })
	if len(xs) != 2 || xs[0] != 1 || xs[1] != 2 {
		t.Fatalf("CollectAll = %v", xs)
	}
}

func TestMethodologyPanicsWhenNothingRetained(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for degenerate methodology")
		}
	}()
	Methodology{Runs: 3, Discard: 3}.Collect(func(int) float64 { return 0 })
}

func TestOnlineMatchesBatch(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var o Online
		for i, v := range raw {
			xs[i] = float64(v)
			o.Add(float64(v))
		}
		s := Summarize(xs)
		tol := 1e-9 * (1 + math.Abs(s.Mean))
		return o.N() == s.N &&
			math.Abs(o.Mean()-s.Mean) < tol &&
			math.Abs(o.Std()-s.Std) < 1e-6*(1+s.Std) &&
			o.Min() == s.Min && o.Max() == s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOnlineEmpty(t *testing.T) {
	var o Online
	if o.N() != 0 || !math.IsNaN(o.Mean()) || !math.IsNaN(o.Min()) || !math.IsNaN(o.Max()) || o.Std() != 0 {
		t.Fatal("zero Online not in expected empty state")
	}
}
