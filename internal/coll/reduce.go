package coll

import (
	"fmt"

	"amtlci/internal/buf"
)

// runReduce executes one reduction. The schedule is the broadcast shape
// reversed: a rank receives full-size partial sums from its (binomial or
// chain) children, combines them segment by segment into an accumulator,
// and pushes each segment to its parent once every child has contributed
// to it — so reductions pipeline exactly like broadcasts do.
func (c *Communicator) runReduce(seq uint32, dst, src buf.Buf, op Op, root int, algo Algorithm, done func()) {
	n, r := c.e.Size(), c.e.Rank()
	if n == 1 {
		c.copyInto(dst, src, func() { c.finish(done) })
		return
	}
	rr := (r - root + n) % n
	abs := func(rel int) int { return (rel + root) % n }

	var parent int
	var children []int
	switch algo {
	case Binomial:
		parent, children = binomialParentChildren(rr, n)
	case Chain:
		// Data flows from relative rank n-1 down to the root: each rank's
		// source is rr+1 and its sink is rr-1.
		if rr > 0 {
			parent = rr - 1
		} else {
			parent = -1
		}
		if rr+1 < n {
			children = []int{rr + 1}
		}
	default:
		panic(fmt.Sprintf("coll: reduce cannot run %v", algo))
	}

	size := src.Size
	nsegs := c.tune.nsegsFor(size)

	// Leaves forward their contribution directly from src — no combine, no
	// scratch copy.
	if len(children) == 0 {
		c.sendTo(abs(parent), seq, 0, src, func() { c.finish(done) })
		return
	}

	// Interior ranks (and the root) accumulate into acc: dst at the root,
	// scratch elsewhere. The initial src copy is submitted first, so it is
	// charged before any segment combine can run on the serial thread.
	acc := dst
	if parent >= 0 {
		acc = allocLike(src, size)
	}
	c.copyInto(acc, src, func() {})

	var send *sendState
	if parent >= 0 {
		send = c.openSend(abs(parent), seq, 0, acc, func() { c.finish(done) })
	}
	segLeft := make([]int, nsegs)
	for i := range segLeft {
		segLeft[i] = len(children)
	}
	rootLeft := nsegs
	ready := func(seg int) {
		if send != nil {
			send.pushSeg(seg)
			return
		}
		rootLeft--
		if rootLeft == 0 {
			c.finish(done)
		}
	}

	for _, ch := range children {
		rb := allocLike(src, size)
		c.postRecv(abs(ch), seq, 0, rb, func(seg int) {
			off, ln := c.tune.segment(size, seg)
			c.reduceInto(acc.Slice(off, ln), rb.Slice(off, ln), op, func() {
				segLeft[seg]--
				if segLeft[seg] == 0 {
					ready(seg)
				}
			})
		}, nil)
	}
}
