package coll

import (
	"fmt"

	"amtlci/internal/buf"
)

func (c *Communicator) runBarrier(seq uint32, algo Algorithm, done func()) {
	n := c.e.Size()
	if n == 1 {
		c.finish(done)
		return
	}
	switch algo {
	case Dissemination:
		c.barrierDissemination(seq, done)
	case Tree:
		c.barrierTree(seq, done)
	default:
		panic(fmt.Sprintf("coll: barrier cannot run %v", algo))
	}
}

// token is the zero-byte payload barrier rounds exchange; it travels as a
// pure control active message.
var token = buf.Buf{}

// barrierDissemination runs ceil(log2 n) rounds: in round k, rank r signals
// r+2^k and waits for r-2^k. No rank is a bottleneck, and every rank exits
// within one round of the last arrival — the scalable default.
func (c *Communicator) barrierDissemination(seq uint32, done func()) {
	n, r := c.e.Size(), c.e.Rank()
	slot := uint32(0)
	dist := 1
	var doRound func()
	doRound = func() {
		if dist >= n {
			c.finish(done)
			return
		}
		pending := 2
		arrive := func() {
			pending--
			if pending == 0 {
				dist <<= 1
				slot++
				doRound()
			}
		}
		c.sendTo((r+dist)%n, seq, slot, token, arrive)
		c.postRecv((r-dist+n)%n, seq, slot, token, nil, arrive)
	}
	doRound()
}

// barrierTree gathers tokens up a binomial tree rooted at rank 0 and
// broadcasts a release wave back down: 2(n-1) messages in total — fewer
// than dissemination's n·ceil(log2 n), which wins at small rank counts.
func (c *Communicator) barrierTree(seq uint32, done func()) {
	n, r := c.e.Size(), c.e.Rank()
	parent, children := binomialParentChildren(r, n)

	release := func() {
		for _, ch := range children {
			c.sendTo(ch, seq, 1, token, nil)
		}
		c.finish(done)
	}
	afterGather := func() {
		if parent < 0 {
			release()
			return
		}
		c.sendTo(parent, seq, 0, token, nil)
		c.postRecv(parent, seq, 1, token, nil, release)
	}

	if len(children) == 0 {
		afterGather()
		return
	}
	left := len(children)
	for _, ch := range children {
		c.postRecv(ch, seq, 0, token, nil, func() {
			left--
			if left == 0 {
				afterGather()
			}
		})
	}
}
