package coll

import (
	"fmt"

	"amtlci/internal/buf"
	"amtlci/internal/sim"
)

func (c *Communicator) runAllgather(seq uint32, dst, src buf.Buf, algo Algorithm, done func()) {
	n := c.e.Size()
	if n == 1 {
		c.copyInto(dst, src, func() { c.finish(done) })
		return
	}
	switch algo {
	case Ring:
		c.allgatherRing(seq, dst, src, done)
	case Bruck:
		c.allgatherBruck(seq, dst, src, done)
	default:
		panic(fmt.Sprintf("coll: allgather cannot run %v", algo))
	}
}

// allgatherRing circulates blocks around the ring for n-1 steps; every
// block lands directly at its final offset, and each rank both sends and
// receives one block per step, keeping both link directions busy.
func (c *Communicator) allgatherRing(seq uint32, dst, src buf.Buf, done func()) {
	n, r := c.e.Size(), c.e.Rank()
	blk := src.Size
	next := (r + 1) % n
	prev := (r - 1 + n) % n
	mod := func(i int) int { return ((i % n) + n) % n }

	step := 0
	var doStep func()
	doStep = func() {
		if step == n-1 {
			c.finish(done)
			return
		}
		k := step
		pending := 2
		arrive := func() {
			pending--
			if pending == 0 {
				step++
				doStep()
			}
		}
		sendIdx := mod(r - k)
		recvIdx := mod(r - 1 - k)
		c.sendTo(next, seq, uint32(k), dst.Slice(int64(sendIdx)*blk, blk), arrive)
		c.postRecv(prev, seq, uint32(k), dst.Slice(int64(recvIdx)*blk, blk), nil, arrive)
	}
	c.copyInto(dst.Slice(int64(r)*blk, blk), src, doStep)
}

// allgatherBruck is the dissemination allgather: ceil(log2 n) rounds in
// which rank r sends its first min(2^k, n-2^k) gathered blocks to rank
// r-2^k and receives as many from r+2^k, followed by a local rotation that
// moves block j to offset j*blk. Fewer, larger messages than the ring —
// the latency-bound choice for small blocks.
func (c *Communicator) allgatherBruck(seq uint32, dst, src buf.Buf, done func()) {
	n, r := c.e.Size(), c.e.Rank()
	blk := src.Size
	tmp := allocLike(src, int64(n)*blk)

	slot := uint32(0)
	dist := 1
	var doStep func()
	doStep = func() {
		if dist >= n {
			// Rotate: tmp position p holds block (r+p) mod n.
			c.e.Submit(sim.Duration(int64(n)*blk)*c.tune.CopyPerByte, func() {
				if dst.Bytes != nil && tmp.Bytes != nil {
					for p := 0; p < n; p++ {
						at := int64((r+p)%n) * blk
						copy(dst.Bytes[at:at+blk], tmp.Bytes[int64(p)*blk:int64(p+1)*blk])
					}
				}
				c.finish(done)
			})
			return
		}
		cnt := dist
		if n-dist < cnt {
			cnt = n - dist
		}
		pending := 2
		arrive := func() {
			pending--
			if pending == 0 {
				dist <<= 1
				slot++
				doStep()
			}
		}
		to := (r - dist + n) % n
		from := (r + dist) % n
		c.sendTo(to, seq, slot, tmp.Slice(0, int64(cnt)*blk), arrive)
		c.postRecv(from, seq, slot, tmp.Slice(int64(dist)*blk, int64(cnt)*blk), nil, arrive)
	}
	c.copyInto(tmp.Slice(0, blk), src, doStep)
}
