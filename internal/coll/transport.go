// The transport layer: matched point-to-point transfers between collective
// schedules, built on the engine's active messages and one-sided put.
//
// Every transfer is named by (peer, sequence, slot): the sequence numbers
// the collective call on the communicator and the slot numbers the transfer
// within the algorithm's schedule, so both endpoints derive the same key
// independently. Payloads at or below Tune.EagerMax travel inside the
// control active message (one traversal, control lane). Larger payloads use
// a receiver-driven rendezvous: the receiver registers its landing buffer
// and sends a CTS carrying the handle; the sender answers with one put per
// segment, whose remote-completion tag tells the receiver which segment
// landed. Segments exist so pipelined algorithms can forward data that is
// still arriving, and so several puts overlap on the fabric.
//
// Everything here runs on the engine's communication thread: operations
// enter through Engine.Submit and callbacks are active-message handlers,
// which the engines already serialize onto that thread.
package coll

import (
	"encoding/binary"
	"fmt"

	"amtlci/internal/buf"
	"amtlci/internal/core"
)

// xkey names one transfer from this rank's point of view.
type xkey struct {
	peer int32
	seq  uint32
	slot uint32
}

func key(peer int, seq, slot uint32) xkey {
	return xkey{peer: int32(peer), seq: seq, slot: slot}
}

// Control-message kinds (first byte of a tagCtl payload).
const (
	kindEager = 1
	kindCTS   = 2
)

// ctlHeaderBytes is the fixed prefix of a control message: kind, seq, slot,
// then a kind-specific body (size for eager, handle for CTS).
const ctlHeaderBytes = 1 + 4 + 4 + 12

// segDoneBytes is the put remote-completion payload: seq, slot, segment.
const segDoneBytes = 4 + 4 + 4

// sendState is one posted (possibly still filling) outgoing transfer.
type sendState struct {
	c     *Communicator
	k     xkey
	b     buf.Buf
	nsegs int

	eager      bool
	rreg       core.MemHandle // CTS handle, valid once ctsSeen
	ctsSeen    bool
	queued     []int // segments pushed before the CTS arrived
	lreg       core.MemHandle
	registered bool
	localDone  int
	done       func()
}

// recvState is one posted incoming transfer.
type recvState struct {
	c     *Communicator
	k     xkey
	b     buf.Buf
	nsegs int

	eager      bool
	reg        core.MemHandle
	registered bool
	got        int
	onSeg      func(seg int)
	done       func()
}

// nsegsFor derives the segment count both endpoints agree on.
func (t Tune) nsegsFor(size int64) int {
	if size <= t.EagerMax {
		return 1
	}
	return int((size + t.SegSize - 1) / t.SegSize)
}

// segment returns segment i's offset and length within a transfer of size.
func (t Tune) segment(size int64, i int) (off, ln int64) {
	if size <= t.EagerMax {
		return 0, size
	}
	off = int64(i) * t.SegSize
	ln = t.SegSize
	if off+ln > size {
		ln = size - off
	}
	return off, ln
}

// openSend posts an outgoing transfer of b to peer. Segments become eligible
// to travel as the schedule calls pushSeg; done fires when the local buffer
// is reusable (all segments locally complete).
func (c *Communicator) openSend(peer int, seq, slot uint32, b buf.Buf, done func()) *sendState {
	k := key(peer, seq, slot)
	if _, dup := c.sends[k]; dup {
		panic(fmt.Sprintf("coll: duplicate send %+v at rank %d", k, c.e.Rank()))
	}
	s := &sendState{
		c: c, k: k, b: b,
		nsegs: c.tune.nsegsFor(b.Size),
		eager: b.Size <= c.tune.EagerMax,
		done:  done,
	}
	c.sends[k] = s
	if !s.eager {
		if h, ok := c.earlyCTS[k]; ok {
			delete(c.earlyCTS, k)
			s.rreg = h
			s.ctsSeen = true
		}
	}
	return s
}

// pushSeg marks segment i of the send final and eligible to travel.
// Pipelined schedules call it as data becomes ready; sendAll pushes
// everything at once.
func (s *sendState) pushSeg(i int) {
	if s.eager {
		s.sendEager()
		return
	}
	if !s.ctsSeen {
		s.queued = append(s.queued, i)
		return
	}
	s.putSeg(i)
}

// sendAll pushes every segment of the transfer.
func (s *sendState) sendAll() {
	for i := 0; i < s.nsegs; i++ {
		s.pushSeg(i)
	}
}

func (s *sendState) sendEager() {
	c := s.c
	msg := make([]byte, ctlHeaderBytes, ctlHeaderBytes+s.b.Size)
	msg[0] = kindEager
	binary.LittleEndian.PutUint32(msg[1:5], s.k.seq)
	binary.LittleEndian.PutUint32(msg[5:9], s.k.slot)
	binary.LittleEndian.PutUint64(msg[9:17], uint64(s.b.Size))
	if s.b.Bytes != nil {
		msg = append(msg, s.b.Bytes...)
	} else {
		// Virtual payload: materialize zeros so the wire cost is charged
		// for the real length (eager payloads are small by construction).
		msg = append(msg, make([]byte, s.b.Size)...)
	}
	c.e.SendAM(c.tagCtl, int(s.k.peer), msg)
	delete(c.sends, s.k)
	c.e.Submit(0, func() {
		if s.done != nil {
			s.done()
		}
	})
}

func (s *sendState) putSeg(i int) {
	c := s.c
	if !s.registered {
		s.lreg = c.e.MemReg(s.b)
		s.registered = true
	}
	off, ln := c.tune.segment(s.b.Size, i)
	rcb := make([]byte, segDoneBytes)
	binary.LittleEndian.PutUint32(rcb[0:4], s.k.seq)
	binary.LittleEndian.PutUint32(rcb[4:8], s.k.slot)
	binary.LittleEndian.PutUint32(rcb[8:12], uint32(i))
	c.e.Put(core.PutArgs{
		LReg: s.lreg, LDispl: off,
		RReg: s.rreg, RDispl: off,
		Size: ln, Remote: int(s.k.peer),
		LocalCB: func() {
			s.localDone++
			if s.localDone == s.nsegs {
				c.e.MemDereg(s.lreg)
				s.registered = false
				delete(c.sends, s.k)
				if s.done != nil {
					s.done()
				}
			}
		},
		RTag: c.tagData, RCBData: rcb,
	})
}

// postRecv posts an incoming transfer from peer into b. onSeg, if non-nil,
// fires once per landed segment (pipelining hook); done fires when the
// whole transfer has landed.
func (c *Communicator) postRecv(peer int, seq, slot uint32, b buf.Buf, onSeg func(int), done func()) {
	k := key(peer, seq, slot)
	if _, dup := c.recvs[k]; dup {
		panic(fmt.Sprintf("coll: duplicate recv %+v at rank %d", k, c.e.Rank()))
	}
	r := &recvState{
		c: c, k: k, b: b,
		nsegs: c.tune.nsegsFor(b.Size),
		eager: b.Size <= c.tune.EagerMax,
		onSeg: onSeg,
		done:  done,
	}
	if r.eager {
		if data, ok := c.earlyEager[k]; ok {
			delete(c.earlyEager, k)
			c.deliverEager(r, data)
			return
		}
		c.recvs[k] = r
		return
	}
	c.recvs[k] = r
	r.reg = c.e.MemReg(b)
	r.registered = true
	msg := make([]byte, ctlHeaderBytes)
	msg[0] = kindCTS
	binary.LittleEndian.PutUint32(msg[1:5], seq)
	binary.LittleEndian.PutUint32(msg[5:9], slot)
	binary.LittleEndian.PutUint32(msg[9:13], uint32(r.reg.Rank))
	binary.LittleEndian.PutUint64(msg[13:21], r.reg.ID)
	c.e.SendAM(c.tagCtl, peer, msg)
}

// onCtl handles control active messages: eager payloads and CTS handles.
func (c *Communicator) onCtl(_ core.Engine, _ core.Tag, data []byte, src int) {
	if len(data) < ctlHeaderBytes {
		c.fail(fmt.Errorf("coll: short control message (%d bytes) at rank %d", len(data), c.e.Rank()))
		return
	}
	seq := binary.LittleEndian.Uint32(data[1:5])
	slot := binary.LittleEndian.Uint32(data[5:9])
	k := key(src, seq, slot)
	switch data[0] {
	case kindEager:
		size := int64(binary.LittleEndian.Uint64(data[9:17]))
		if size < 0 || ctlHeaderBytes+size > int64(len(data)) {
			c.fail(fmt.Errorf("coll: eager length %d exceeds %d-byte message at rank %d",
				size, len(data), c.e.Rank()))
			return
		}
		payload := data[ctlHeaderBytes : ctlHeaderBytes+size]
		r, ok := c.recvs[k]
		if !ok {
			// Unexpected: the receiver has not posted yet. AM payloads are
			// only valid during the callback, so stash a copy.
			c.earlyEager[k] = append([]byte(nil), payload...)
			return
		}
		delete(c.recvs, k)
		c.deliverEager(r, payload)
	case kindCTS:
		h := core.MemHandle{
			Rank: int32(binary.LittleEndian.Uint32(data[9:13])),
			ID:   binary.LittleEndian.Uint64(data[13:21]),
		}
		s, ok := c.sends[k]
		if !ok {
			c.earlyCTS[k] = h
			return
		}
		s.rreg = h
		s.ctsSeen = true
		queued := s.queued
		s.queued = nil
		for _, i := range queued {
			s.putSeg(i)
		}
	default:
		c.fail(fmt.Errorf("coll: unknown control kind %d at rank %d", data[0], c.e.Rank()))
	}
}

func (c *Communicator) deliverEager(r *recvState, payload []byte) {
	if r.b.Size != int64(len(payload)) {
		c.fail(fmt.Errorf("coll: eager size mismatch for %+v at rank %d: posted %d, got %d",
			r.k, c.e.Rank(), r.b.Size, len(payload)))
		return
	}
	if r.b.Bytes != nil {
		copy(r.b.Bytes, payload)
	}
	if r.onSeg != nil {
		r.onSeg(0)
	}
	if r.done != nil {
		r.done()
	}
}

// onData handles a put remote-completion: one rendezvous segment landed.
func (c *Communicator) onData(_ core.Engine, _ core.Tag, data []byte, src int) {
	if len(data) != segDoneBytes {
		c.fail(fmt.Errorf("coll: segment completion is %d bytes at rank %d, want %d",
			len(data), c.e.Rank(), segDoneBytes))
		return
	}
	seq := binary.LittleEndian.Uint32(data[0:4])
	slot := binary.LittleEndian.Uint32(data[4:8])
	seg := int(binary.LittleEndian.Uint32(data[8:12]))
	k := key(src, seq, slot)
	r, ok := c.recvs[k]
	if !ok {
		// Puts only flow after our CTS, so the receive must exist — unless a
		// failure already dropped the transfer state.
		c.fail(fmt.Errorf("coll: segment for unposted recv %+v at rank %d", k, c.e.Rank()))
		return
	}
	r.got++
	if r.onSeg != nil {
		r.onSeg(seg)
	}
	if r.got == r.nsegs {
		delete(c.recvs, k)
		if r.registered {
			c.e.MemDereg(r.reg)
			r.registered = false
		}
		if r.done != nil {
			r.done()
		}
	}
}

// sendTo opens a send and pushes everything: the common non-pipelined case.
func (c *Communicator) sendTo(peer int, seq, slot uint32, b buf.Buf, done func()) {
	c.openSend(peer, seq, slot, b, done).sendAll()
}
