package coll

import (
	"fmt"
	"math/bits"

	"amtlci/internal/buf"
)

// chunkRange returns per-rank chunk i of a size-byte buffer split n ways
// (the ring algorithms' unit of exchange).
func chunkRange(size int64, n, i int) (off, ln int64) {
	i = ((i % n) + n) % n
	off = int64(i) * size / int64(n)
	end := int64(i+1) * size / int64(n)
	return off, end - off
}

func (c *Communicator) runAllreduce(seq uint32, dst, src buf.Buf, op Op, algo Algorithm, done func()) {
	n := c.e.Size()
	if n == 1 {
		c.copyInto(dst, src, func() { c.finish(done) })
		return
	}
	switch algo {
	case Ring:
		c.allreduceRing(seq, dst, src, op, done)
	case RecursiveDoubling:
		c.allreduceRD(seq, dst, src, op, done)
	default:
		panic(fmt.Sprintf("coll: allreduce cannot run %v", algo))
	}
}

// allreduceRing is the bandwidth-optimal ring: n-1 reduce-scatter steps in
// which each rank forwards a per-rank chunk to its successor and combines
// the chunk arriving from its predecessor, then n-1 allgather steps that
// circulate the fully reduced chunks. Each rank moves 2(n-1)/n of the
// buffer in total, independent of n.
func (c *Communicator) allreduceRing(seq uint32, dst, src buf.Buf, op Op, done func()) {
	n, r := c.e.Size(), c.e.Rank()
	size := src.Size
	next := (r + 1) % n
	prev := (r - 1 + n) % n
	// Scratch for incoming reduce-scatter chunks; sized for the largest.
	_, maxLn := chunkRange(size, n, n-1)
	if _, ln0 := chunkRange(size, n, 0); ln0 > maxLn {
		maxLn = ln0
	}
	tmp := allocLike(src, maxLn)

	step := 0
	var doStep func()
	doStep = func() {
		if step == 2*(n-1) {
			c.finish(done)
			return
		}
		k := step
		pending := 2
		arrive := func() {
			pending--
			if pending == 0 {
				step++
				doStep()
			}
		}
		if k < n-1 {
			// Reduce-scatter: send the chunk combined last step, fold the
			// incoming one.
			soff, sln := chunkRange(size, n, r-k)
			roff, rln := chunkRange(size, n, r-k-1)
			c.sendTo(next, seq, uint32(k), dst.Slice(soff, sln), arrive)
			in := tmp.Slice(0, rln)
			c.postRecv(prev, seq, uint32(k), in, nil, func() {
				c.reduceInto(dst.Slice(roff, rln), in, op, arrive)
			})
		} else {
			// Allgather: circulate the fully reduced chunks in place.
			k2 := k - (n - 1)
			soff, sln := chunkRange(size, n, r+1-k2)
			roff, rln := chunkRange(size, n, r-k2)
			c.sendTo(next, seq, uint32(k), dst.Slice(soff, sln), arrive)
			c.postRecv(prev, seq, uint32(k), dst.Slice(roff, rln), nil, arrive)
		}
	}
	c.copyInto(dst, src, doStep)
}

// allreduceRD is recursive doubling on full buffers — log2(n) rounds — with
// the Rabenseifner fold for non-power-of-two rank counts: the first 2*rem
// ranks pair up so that a power-of-two subset runs the exchange, and the
// folded-out ranks receive the finished result afterwards. Best for small
// payloads, where round count dominates.
func (c *Communicator) allreduceRD(seq uint32, dst, src buf.Buf, op Op, done func()) {
	n, r := c.e.Size(), c.e.Rank()
	size := src.Size
	p := 1 << (bits.Len(uint(n)) - 1) // largest power of two <= n
	rem := n - p
	nrounds := bits.Len(uint(p)) - 1
	postSlot := uint32(1 + nrounds)

	participate := func() {
		newrank := r - rem
		if r < 2*rem {
			newrank = r / 2
		}
		tmp := allocLike(src, size)
		round := 0
		var doRound func()
		doRound = func() {
			mask := 1 << round
			if mask >= p {
				// Post: odd folded ranks return the result to their pair.
				if r < 2*rem {
					c.sendTo(r-1, seq, postSlot, dst, func() { c.finish(done) })
				} else {
					c.finish(done)
				}
				return
			}
			pn := newrank ^ mask
			pr := pn + rem
			if pn < rem {
				pr = pn*2 + 1
			}
			// Exchange full buffers; combine only after the outgoing put
			// has locally completed, so the buffer is reusable.
			pending := 2
			arrive := func() {
				pending--
				if pending == 0 {
					c.reduceInto(dst, tmp, op, func() {
						round++
						doRound()
					})
				}
			}
			c.sendTo(pr, seq, uint32(1+round), dst, arrive)
			c.postRecv(pr, seq, uint32(1+round), tmp, nil, arrive)
		}
		doRound()
	}

	c.copyInto(dst, src, func() {
		if r < 2*rem && r%2 == 0 {
			// Folded out: contribute to the odd neighbor, then wait for
			// the finished result.
			c.sendTo(r+1, seq, 0, dst, nil)
			c.postRecv(r+1, seq, postSlot, dst, nil, func() { c.finish(done) })
			return
		}
		if r < 2*rem {
			// Odd half of a fold pair: absorb the neighbor first.
			tmp := allocLike(src, size)
			c.postRecv(r-1, seq, 0, tmp, nil, func() {
				c.reduceInto(dst, tmp, op, participate)
			})
			return
		}
		participate()
	})
}
