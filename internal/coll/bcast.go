package coll

import (
	"fmt"

	"amtlci/internal/buf"
)

// binomialParentChildren returns rr's parent (-1 at the root) and children
// in relative rank space for n ranks, children in decreasing-subtree order.
// The shape matches the MPICH binomial schedule: a rank receives at its
// lowest set bit and serves the bits below it.
func binomialParentChildren(rr, n int) (parent int, children []int) {
	parent = -1
	mask := 1
	for mask < n {
		if rr&mask != 0 {
			parent = rr - mask
			break
		}
		mask <<= 1
	}
	for cm := mask >> 1; cm > 0; cm >>= 1 {
		if rr+cm < n {
			children = append(children, rr+cm)
		}
	}
	return parent, children
}

// runBcast executes one broadcast. Both algorithms share the same engine:
// a parent/children shape plus per-segment forwarding — a rank pushes
// segment i to every child as soon as segment i has landed, so large
// buffers pipeline down the tree or chain.
func (c *Communicator) runBcast(seq uint32, b buf.Buf, root int, algo Algorithm, done func()) {
	n, r := c.e.Size(), c.e.Rank()
	if n == 1 {
		c.finish(done)
		return
	}
	rr := (r - root + n) % n
	abs := func(rel int) int { return (rel + root) % n }

	var parent int
	var children []int
	switch algo {
	case Binomial:
		parent, children = binomialParentChildren(rr, n)
	case Chain:
		if rr > 0 {
			parent = rr - 1
		} else {
			parent = -1
		}
		if rr+1 < n {
			children = []int{rr + 1}
		}
	default:
		panic(fmt.Sprintf("coll: bcast cannot run %v", algo))
	}

	remaining := len(children)
	if parent >= 0 {
		remaining++
	}
	if remaining == 0 {
		c.finish(done)
		return
	}
	step := func() {
		remaining--
		if remaining == 0 {
			c.finish(done)
		}
	}

	sends := make([]*sendState, len(children))
	for i, ch := range children {
		sends[i] = c.openSend(abs(ch), seq, 0, b, step)
	}
	if parent < 0 {
		for _, s := range sends {
			s.sendAll()
		}
		return
	}
	c.postRecv(abs(parent), seq, 0, b, func(seg int) {
		for _, s := range sends {
			s.pushSeg(seg)
		}
	}, step)
}
