package coll_test

import (
	"bytes"
	"fmt"
	"testing"

	"amtlci/internal/buf"
	"amtlci/internal/coll"
	"amtlci/internal/core/stack"
	"amtlci/internal/fabric"
	"amtlci/internal/rel"
	"amtlci/internal/sim"
)

// testTune shrinks the protocol thresholds so modest test payloads cross
// the eager/rendezvous boundary and segment several times.
func testTune() coll.Tune {
	t := coll.DefaultTune()
	t.EagerMax = 256
	t.SegSize = 1 << 10
	return t
}

// testRanks is the acceptance matrix: odd, even, power-of-two and
// non-power-of-two counts.
var testRanks = []int{2, 3, 4, 7, 8, 16, 64}

// testSizes crosses zero, eager, single-segment rendezvous, and
// multi-segment rendezvous under testTune.
var testSizes = []int64{1, 100, 300, 3000, 10000}

// pattern is rank r's deterministic contribution.
func pattern(r int, size int64) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = byte(r*31 + i*7 + 13)
	}
	return b
}

func buildCommsOpts(o stack.Options) (*stack.Stack, []*coll.Communicator) {
	s := stack.Build(o)
	comms := make([]*coll.Communicator, o.Ranks)
	for r := 0; r < o.Ranks; r++ {
		comms[r] = coll.New(s.Engines[r], coll.DefaultTagBase, testTune())
	}
	return s, comms
}

func buildComms(b stack.Backend, n int) (*stack.Stack, []*coll.Communicator) {
	return buildCommsOpts(stack.DefaultOptions(b, n))
}

// lossyOptions arms ~1% drop/duplicate/corrupt fault injection with the
// reliability layer interposed, so the collectives see an exactly-once
// in-order transport over a faulty wire.
func lossyOptions(b stack.Backend, n int, seed uint64) stack.Options {
	o := stack.DefaultOptions(b, n)
	o.Faults = &fabric.FaultConfig{Drop: 0.01, Duplicate: 0.01, Corrupt: 0.01, Seed: seed}
	rc := rel.DefaultConfig()
	o.Rel = &rc
	return o
}

// check is one verified collective call across all ranks: issue launches
// the operation on every communicator (marking completion), verify runs
// after the simulation drains.
type check struct {
	name   string
	done   []bool
	verify func(t *testing.T)
}

// runCollectiveMatrix issues the full op × algorithm × root × size matrix on
// an already-built deployment, runs the simulation to quiescence, and
// verifies every result against the sequential reference.
func runCollectiveMatrix(t *testing.T, s *stack.Stack, comms []*coll.Communicator) {
	n := len(comms)
	var checks []*check
	mark := func(c *check, r int) func() {
		return func() {
			if c.done[r] {
				t.Errorf("%s: rank %d completed twice", c.name, r)
			}
			c.done[r] = true
		}
	}
	newCheck := func(name string) *check {
		c := &check{name: name, done: make([]bool, n)}
		checks = append(checks, c)
		return c
	}

	roots := []int{0, n - 1}
	if n > 8 {
		roots = []int{n / 3}
	}

	// All operations are issued up front, in the same order on
	// every rank; sequence numbers keep the concurrent
	// collectives apart, which doubles as an interleaving
	// stress test.
	for _, algo := range coll.Algorithms(coll.OpBcast) {
		for _, root := range roots {
			for _, size := range testSizes {
				c := newCheck(fmt.Sprintf("bcast/%v/root%d/%d", algo, root, size))
				bufs := make([][]byte, n)
				for r := 0; r < n; r++ {
					if r == root {
						bufs[r] = pattern(root, size)
					} else {
						bufs[r] = make([]byte, size)
					}
					comms[r].Bcast(buf.FromBytes(bufs[r]), root, algo, mark(c, r))
				}
				want := pattern(root, size)
				c.verify = func(t *testing.T) {
					for r := 0; r < n; r++ {
						if !bytes.Equal(bufs[r], want) {
							t.Errorf("%s: rank %d data mismatch", c.name, r)
							return
						}
					}
				}
			}
		}
	}

	for _, algo := range coll.Algorithms(coll.OpReduce) {
		for _, root := range roots {
			for _, size := range testSizes {
				c := newCheck(fmt.Sprintf("reduce/%v/root%d/%d", algo, root, size))
				dst := make([]byte, size)
				for r := 0; r < n; r++ {
					var d buf.Buf
					if r == root {
						d = buf.FromBytes(dst)
					}
					comms[r].Reduce(d, buf.FromBytes(pattern(r, size)),
						coll.Sum, root, algo, mark(c, r))
				}
				want := make([]byte, size)
				for r := 0; r < n; r++ {
					for i, v := range pattern(r, size) {
						want[i] += v
					}
				}
				c.verify = func(t *testing.T) {
					if !bytes.Equal(dst, want) {
						t.Errorf("%s: root data mismatch", c.name)
					}
				}
			}
		}
	}

	for _, algo := range coll.Algorithms(coll.OpAllreduce) {
		for _, size := range testSizes {
			c := newCheck(fmt.Sprintf("allreduce/%v/%d", algo, size))
			dsts := make([][]byte, n)
			for r := 0; r < n; r++ {
				dsts[r] = make([]byte, size)
				comms[r].Allreduce(buf.FromBytes(dsts[r]),
					buf.FromBytes(pattern(r, size)), coll.Sum, algo, mark(c, r))
			}
			want := make([]byte, size)
			for r := 0; r < n; r++ {
				for i, v := range pattern(r, size) {
					want[i] += v
				}
			}
			c.verify = func(t *testing.T) {
				for r := 0; r < n; r++ {
					if !bytes.Equal(dsts[r], want) {
						t.Errorf("%s: rank %d data mismatch", c.name, r)
						return
					}
				}
			}
		}
	}

	for _, algo := range coll.Algorithms(coll.OpAllgather) {
		for _, size := range testSizes {
			c := newCheck(fmt.Sprintf("allgather/%v/%d", algo, size))
			dsts := make([][]byte, n)
			for r := 0; r < n; r++ {
				dsts[r] = make([]byte, size*int64(n))
				comms[r].Allgather(buf.FromBytes(dsts[r]),
					buf.FromBytes(pattern(r, size)), algo, mark(c, r))
			}
			want := make([]byte, 0, size*int64(n))
			for r := 0; r < n; r++ {
				want = append(want, pattern(r, size)...)
			}
			c.verify = func(t *testing.T) {
				for r := 0; r < n; r++ {
					if !bytes.Equal(dsts[r], want) {
						t.Errorf("%s: rank %d data mismatch", c.name, r)
						return
					}
				}
			}
		}
	}

	for _, algo := range coll.Algorithms(coll.OpBarrier) {
		c := newCheck(fmt.Sprintf("barrier/%v", algo))
		for r := 0; r < n; r++ {
			comms[r].Barrier(algo, mark(c, r))
		}
		c.verify = func(*testing.T) {}
	}

	s.Eng.Run()
	for _, c := range checks {
		for r := 0; r < n; r++ {
			if !c.done[r] {
				t.Fatalf("%s: rank %d never completed", c.name, r)
			}
		}
		c.verify(t)
	}
	for r := 0; r < n; r++ {
		if err := comms[r].Err(); err != nil {
			t.Fatalf("rank %d communicator failed: %v", r, err)
		}
	}
}

func TestCollectivesMatchSequentialReference(t *testing.T) {
	for _, backend := range stack.Backends {
		for _, n := range testRanks {
			t.Run(fmt.Sprintf("%v/n%d", backend, n), func(t *testing.T) {
				s, comms := buildComms(backend, n)
				runCollectiveMatrix(t, s, comms)
			})
		}
	}
}

// TestCollectivesSurviveLossyFabric reruns the full matrix over a fabric
// dropping, duplicating, and corrupting ~1% of messages each, with the
// reliability layer restoring exactly-once in-order delivery. Results must
// match the sequential reference bit for bit on both backends, and the
// injected faults must actually have fired.
func TestCollectivesSurviveLossyFabric(t *testing.T) {
	lossyRanks := testRanks
	if testing.Short() {
		lossyRanks = []int{2, 4, 8}
	}
	for _, backend := range stack.Backends {
		for _, n := range lossyRanks {
			t.Run(fmt.Sprintf("%v/n%d", backend, n), func(t *testing.T) {
				s, comms := buildCommsOpts(lossyOptions(backend, n, 0xC011))
				runCollectiveMatrix(t, s, comms)
				fs := s.Fab.FaultStats()
				if fs.Dropped == 0 || fs.Duplicated == 0 || fs.Corrupted == 0 {
					t.Fatalf("fault injection idle: %+v", fs)
				}
				if rs := s.Rel.Stats(); rs.Retransmits == 0 {
					t.Fatalf("no retransmissions despite %d drops", fs.Dropped)
				}
			})
		}
	}
}

// TestBarrierHoldsUntilLastEntry staggers barrier entry and checks that no
// rank exits before the last rank has entered.
func TestBarrierHoldsUntilLastEntry(t *testing.T) {
	for _, backend := range stack.Backends {
		for _, algo := range coll.Algorithms(coll.OpBarrier) {
			for _, n := range []int{3, 8, 16} {
				t.Run(fmt.Sprintf("%v/%v/n%d", backend, algo, n), func(t *testing.T) {
					s, comms := buildComms(backend, n)
					entry := make([]sim.Time, n)
					exit := make([]sim.Time, n)
					for r := 0; r < n; r++ {
						r := r
						delay := sim.Duration(r) * 50 * sim.Microsecond
						s.Eng.After(delay, func() {
							entry[r] = s.Eng.Now()
							comms[r].Barrier(algo, func() { exit[r] = s.Eng.Now() })
						})
					}
					s.Eng.Run()
					var lastEntry sim.Time
					for r := 0; r < n; r++ {
						if entry[r] > lastEntry {
							lastEntry = entry[r]
						}
					}
					for r := 0; r < n; r++ {
						if exit[r] == 0 {
							t.Fatalf("rank %d never exited", r)
						}
						if exit[r] < lastEntry {
							t.Errorf("rank %d exited at %v before last entry at %v",
								r, exit[r], lastEntry)
						}
					}
				})
			}
		}
	}
}

// TestCollectivesOnVirtualBuffers runs the full algorithm matrix on
// storage-less payloads (the collbench mode): completion and determinism
// without byte content.
func TestCollectivesOnVirtualBuffers(t *testing.T) {
	for _, backend := range stack.Backends {
		t.Run(backend.String(), func(t *testing.T) {
			n := 7
			const size = int64(1 << 20)
			s, comms := buildComms(backend, n)
			left := 0
			dec := func() { left-- }
			issue := func(f func(c *coll.Communicator, done func())) {
				left += n
				for r := 0; r < n; r++ {
					f(comms[r], dec)
				}
			}
			for _, algo := range coll.Algorithms(coll.OpBcast) {
				algo := algo
				issue(func(c *coll.Communicator, done func()) {
					c.Bcast(buf.Virtual(size), 0, algo, done)
				})
			}
			for _, algo := range coll.Algorithms(coll.OpReduce) {
				algo := algo
				issue(func(c *coll.Communicator, done func()) {
					c.Reduce(buf.Virtual(size), buf.Virtual(size), coll.Sum, 0, algo, done)
				})
			}
			for _, algo := range coll.Algorithms(coll.OpAllreduce) {
				algo := algo
				issue(func(c *coll.Communicator, done func()) {
					c.Allreduce(buf.Virtual(size), buf.Virtual(size), coll.Sum, algo, done)
				})
			}
			for _, algo := range coll.Algorithms(coll.OpAllgather) {
				algo := algo
				issue(func(c *coll.Communicator, done func()) {
					c.Allgather(buf.Virtual(size*int64(n)), buf.Virtual(size), algo, done)
				})
			}
			s.Eng.Run()
			if left != 0 {
				t.Fatalf("%d rank-operations never completed", left)
			}
		})
	}
}

// TestCollectivesDeterministic runs one mixed workload twice and requires
// bit-identical virtual end times.
func TestCollectivesDeterministic(t *testing.T) {
	run := func(backend stack.Backend) sim.Time {
		n := 8
		s, comms := buildComms(backend, n)
		for r := 0; r < n; r++ {
			c := comms[r]
			c.Bcast(buf.Virtual(100<<10), 2, coll.Auto, nil)
			c.Allreduce(buf.Virtual(64<<10), buf.Virtual(64<<10), coll.Sum, coll.Auto, nil)
			c.Barrier(coll.Auto, nil)
		}
		return s.Eng.Run()
	}
	for _, backend := range stack.Backends {
		a, b := run(backend), run(backend)
		if a != b {
			t.Errorf("%v: end times differ: %v vs %v", backend, a, b)
		}
	}
}

// TestSingleRankCollectives covers the degenerate communicator.
func TestSingleRankCollectives(t *testing.T) {
	s, comms := buildComms(stack.LCI, 1)
	c := comms[0]
	src := []byte{1, 2, 3}
	dst := make([]byte, 3)
	all := make([]byte, 3)
	completions := 0
	done := func() { completions++ }
	c.Bcast(buf.FromBytes(src), 0, coll.Auto, done)
	c.Reduce(buf.FromBytes(dst), buf.FromBytes(src), coll.Sum, 0, coll.Auto, done)
	c.Allgather(buf.FromBytes(all), buf.FromBytes(src), coll.Auto, done)
	c.Barrier(coll.Auto, done)
	s.Eng.Run()
	if completions != 4 {
		t.Fatalf("completions = %d, want 4", completions)
	}
	if !bytes.Equal(dst, src) || !bytes.Equal(all, src) {
		t.Fatalf("single-rank results wrong: dst=%v all=%v", dst, all)
	}
}

// TestReduceOps exercises the non-default operators end to end.
func TestReduceOps(t *testing.T) {
	ops := []coll.Op{coll.XOR, coll.Max}
	refs := []func(a, b byte) byte{
		func(a, b byte) byte { return a ^ b },
		func(a, b byte) byte {
			if b > a {
				return b
			}
			return a
		},
	}
	for i, op := range ops {
		n := 5
		const size = 400
		s, comms := buildComms(stack.MPI, n)
		dsts := make([][]byte, n)
		for r := 0; r < n; r++ {
			dsts[r] = make([]byte, size)
			comms[r].Allreduce(buf.FromBytes(dsts[r]), buf.FromBytes(pattern(r, size)),
				op, coll.Ring, nil)
		}
		s.Eng.Run()
		want := pattern(0, size)
		for r := 1; r < n; r++ {
			for j, v := range pattern(r, size) {
				want[j] = refs[i](want[j], v)
			}
		}
		for r := 0; r < n; r++ {
			if !bytes.Equal(dsts[r], want) {
				t.Errorf("op %s: rank %d mismatch", op.Name, r)
			}
		}
	}
}

func TestPickValidatesAndCovers(t *testing.T) {
	tune := coll.DefaultTune()
	kinds := []coll.Kind{coll.OpBcast, coll.OpReduce, coll.OpAllreduce, coll.OpAllgather, coll.OpBarrier}
	for _, k := range kinds {
		algos := coll.Algorithms(k)
		if len(algos) < 2 {
			t.Errorf("%v: only %d algorithms", k, len(algos))
		}
		for _, n := range []int{1, 2, 3, 64, 1024} {
			for _, size := range []int64{0, 1 << 10, 1 << 20, 64 << 20} {
				pick := tune.Pick(k, size, n)
				ok := false
				for _, a := range algos {
					if a == pick {
						ok = true
					}
				}
				if !ok {
					t.Errorf("Pick(%v, %d, %d) = %v, not an implemented algorithm", k, size, n, pick)
				}
			}
		}
	}
}

func TestSelectorPrefersLatencyAlgosWhenSmall(t *testing.T) {
	tune := coll.DefaultTune()
	// Small payloads: log-depth schedules.
	if got := tune.Pick(coll.OpBcast, 1<<10, 16); got != coll.Binomial {
		t.Errorf("small bcast pick = %v", got)
	}
	if got := tune.Pick(coll.OpAllreduce, 1<<10, 16); got != coll.RecursiveDoubling {
		t.Errorf("small allreduce pick = %v", got)
	}
	// Large payloads: bandwidth schedules.
	if got := tune.Pick(coll.OpBcast, 64<<20, 8); got != coll.Chain {
		t.Errorf("large bcast pick = %v", got)
	}
	if got := tune.Pick(coll.OpAllreduce, 64<<20, 8); got != coll.Ring {
		t.Errorf("large allreduce pick = %v", got)
	}
}

func TestTreeSplitMatchesBinomialShape(t *testing.T) {
	// Every rank of a 13-rank list appears exactly once across the
	// child-rooted subtrees.
	ranks := make([]int32, 13)
	for i := range ranks {
		ranks[i] = int32(i * 3)
	}
	seen := map[int32]int{}
	var walk func(sub []int32)
	walk = func(sub []int32) {
		seen[sub[0]]++
		for _, ch := range coll.TreeSplit(sub) {
			walk(ch)
		}
	}
	walk(ranks)
	for _, r := range ranks {
		if seen[r] != 1 {
			t.Errorf("rank %d seen %d times", r, seen[r])
		}
	}
	if len(coll.TreeSplit([]int32{7})) != 0 {
		t.Error("singleton list has children")
	}
}
