package coll

// TreeSplit computes the binomial multicast children of the first rank in
// ranks: it returns, for each child, the child-rooted slice of the subtree
// (child first). The list may be any ordered set of ranks — the runtime's
// dataflow multicast uses it with the sorted consumer set of one flow, so
// no single rank serves every consumer. internal/parsec delegates its tree
// construction here; collectives use the same shape through
// binomialParentChildren over dense rank intervals.
func TreeSplit(ranks []int32) [][]int32 {
	var children [][]int32
	// Binomial: repeatedly hand off the upper half of the remaining list.
	lo, hi := 0, len(ranks)
	for hi-lo > 1 {
		mid := lo + (hi-lo+1)/2
		children = append(children, ranks[mid:hi])
		hi = mid
	}
	return children
}
