// Package coll is an algorithm-selectable collective-communication subsystem
// built directly on the backend-independent communication-engine API of
// internal/core (TagReg / SendAM / Put), so every collective runs unmodified
// on both the MPI (internal/core/mpice) and LCI (internal/core/lcice)
// backends in virtual time.
//
// The paper's PaRSEC runtime only ever multicasts dataflows down a
// hard-coded binomial tree inside the communication thread (§4.3); the
// related work on HPX+LCI and on LCI itself identifies collective patterns —
// broadcast, reduction, barrier — as the next scaling bottleneck once
// point-to-point overhead is fixed. This package provides the five classic
// collectives with at least two algorithms each:
//
//	Broadcast  — binomial tree, chain (pipelined)
//	Reduce     — binomial tree, chain (pipelined)
//	Allreduce  — ring (reduce-scatter + allgather), recursive doubling
//	             with the Rabenseifner power-of-two pre/post fold
//	Allgather  — ring, Bruck (dissemination)
//	Barrier    — dissemination, binomial gather/release tree
//
// Algorithm choice is delegated to a size- and fanout-aware selector
// (Tune.Pick) unless the caller forces one. Large payloads are segmented
// (Tune.SegSize) and pipelined: a forwarding rank pushes segment i to its
// children as soon as segment i has arrived (and, for reductions, been
// combined), so bulk transfers overlap on the fabric's dual lanes.
//
// A Communicator is per-rank state over one core.Engine. Collectives follow
// MPI semantics: every rank of the communicator must call the same sequence
// of operations with matching arguments, and all ranks must share the same
// tag base and Tune. Operations are asynchronous — completion is reported
// through a callback on the rank's communication thread, as everything in
// this repository runs in discrete-event virtual time.
package coll

import (
	"fmt"

	"amtlci/internal/buf"
	"amtlci/internal/core"
	"amtlci/internal/sim"
)

// Kind names a collective operation class for the selector.
type Kind int

const (
	OpBcast Kind = iota
	OpReduce
	OpAllreduce
	OpAllgather
	OpBarrier
)

// String names the kind as collbench columns do.
func (k Kind) String() string {
	switch k {
	case OpBcast:
		return "bcast"
	case OpReduce:
		return "reduce"
	case OpAllreduce:
		return "allreduce"
	case OpAllgather:
		return "allgather"
	case OpBarrier:
		return "barrier"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Algorithm selects the schedule used by one collective call.
type Algorithm int

const (
	// Auto delegates the choice to Tune.Pick.
	Auto Algorithm = iota
	// Binomial is the log-depth tree (Bcast, Reduce, Barrier gather phase).
	Binomial
	// Chain is the pipelined linear chain (Bcast, Reduce).
	Chain
	// Ring is the bandwidth-optimal ring (Allreduce, Allgather).
	Ring
	// RecursiveDoubling is the log-round full-buffer exchange with the
	// Rabenseifner pre/post fold for non-power-of-two rank counts
	// (Allreduce).
	RecursiveDoubling
	// Bruck is the dissemination allgather with a final local rotation.
	Bruck
	// Dissemination is the log-round barrier with no root bottleneck.
	Dissemination
	// Tree is the binomial gather + release barrier.
	Tree
)

// String names the algorithm as collbench columns do.
func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case Binomial:
		return "binomial"
	case Chain:
		return "chain"
	case Ring:
		return "ring"
	case RecursiveDoubling:
		return "rdbl"
	case Bruck:
		return "bruck"
	case Dissemination:
		return "dissem"
	case Tree:
		return "tree"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Algorithms lists the concrete schedules available for one operation, in
// the order collbench sweeps them.
func Algorithms(k Kind) []Algorithm {
	switch k {
	case OpBcast, OpReduce:
		return []Algorithm{Binomial, Chain}
	case OpAllreduce:
		return []Algorithm{RecursiveDoubling, Ring}
	case OpAllgather:
		return []Algorithm{Bruck, Ring}
	case OpBarrier:
		return []Algorithm{Dissemination, Tree}
	default:
		panic(fmt.Sprintf("coll: unknown kind %d", int(k)))
	}
}

// Op combines src into dst element-by-element (dst = dst ⊕ src). Reductions
// assume the operator is commutative and associative, as MPI's built-ins
// are. On virtual buffers only the combine cost is charged.
type Op struct {
	Name string
	Fn   func(dst, src []byte)
}

// Sum is per-byte modular addition (commutative; exact in tests).
var Sum = Op{Name: "sum", Fn: func(dst, src []byte) {
	for i := range src {
		dst[i] += src[i]
	}
}}

// XOR is per-byte exclusive or.
var XOR = Op{Name: "xor", Fn: func(dst, src []byte) {
	for i := range src {
		dst[i] ^= src[i]
	}
}}

// Max is per-byte maximum.
var Max = Op{Name: "max", Fn: func(dst, src []byte) {
	for i := range src {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}}

// Tune holds the protocol constants and the selector crossovers. All ranks
// of one communicator must share the same Tune, because sender and receiver
// independently derive eager/rendezvous mode and segment counts from it.
type Tune struct {
	// EagerMax is the largest payload carried inside the control active
	// message (one network traversal, no rendezvous). At or below the
	// fabric's control-lane cutoff (4 KiB) eager transfers also bypass
	// queued bulk traffic.
	EagerMax int64
	// SegSize is the put segmentation granularity for rendezvous
	// transfers; pipelined algorithms forward at this granularity.
	SegSize int64
	// ReducePerByte is the communication-thread cost of combining one
	// byte (read-modify-write at memory bandwidth).
	ReducePerByte sim.Duration
	// CopyPerByte is the communication-thread cost of a local copy byte.
	CopyPerByte sim.Duration

	// Selector crossovers, calibrated per backend against the
	// cmd/collbench sweep (bench.CollTuneFor holds the measured values).
	// The pipelined chain needs a deep enough segment pipeline to cover
	// its linear startup; the ring variants win once per-rank chunks
	// clear the eager and segmentation overheads.
	BcastChainMin         int64 // chain when size >= this ...
	BcastChainMinRanks    int   // ... and n >= this
	ReduceChainMin        int64 // chain when size >= this ...
	ReduceChainMinRanks   int   // ... and n >= this
	AllreduceRingMin      int64 // ring when the per-rank chunk size/n >= this
	AllgatherRingMin      int64 // ring when the block size >= this ...
	AllgatherRingMaxRanks int   // ... and n <= this (Bruck scales better above)
	BarrierTreeMaxRanks   int   // tree at or below this rank count
}

// DefaultTune returns the defaults calibrated for the LCI backend, the
// paper's primary target (use bench.CollTuneFor for per-backend values).
func DefaultTune() Tune {
	return Tune{
		EagerMax:              4 << 10,
		SegSize:               128 << 10,
		ReducePerByte:         60 * sim.Picosecond,
		CopyPerByte:           30 * sim.Picosecond,
		BcastChainMin:         1 << 20,
		BcastChainMinRanks:    4,
		ReduceChainMin:        1 << 20,
		ReduceChainMinRanks:   4,
		AllreduceRingMin:      64 << 10,
		AllgatherRingMin:      256 << 10,
		AllgatherRingMaxRanks: 1 << 20,
		BarrierTreeMaxRanks:   2,
	}
}

// Pick chooses the algorithm for one call: size is the payload (the full
// buffer for Bcast/Reduce/Allreduce, one rank's block for Allgather, 0 for
// Barrier) and n the communicator size.
func (t Tune) Pick(k Kind, size int64, n int) Algorithm {
	switch k {
	case OpBcast:
		if n > 2 && n >= t.BcastChainMinRanks && size >= t.BcastChainMin {
			return Chain
		}
		return Binomial
	case OpReduce:
		if n > 2 && n >= t.ReduceChainMinRanks && size >= t.ReduceChainMin {
			return Chain
		}
		return Binomial
	case OpAllreduce:
		if n > 2 && size/int64(n) >= t.AllreduceRingMin {
			return Ring
		}
		return RecursiveDoubling
	case OpAllgather:
		if n > 2 && n <= t.AllgatherRingMaxRanks && size >= t.AllgatherRingMin {
			return Ring
		}
		return Bruck
	case OpBarrier:
		if n <= t.BarrierTreeMaxRanks {
			return Tree
		}
		return Dissemination
	default:
		panic(fmt.Sprintf("coll: unknown kind %d", int(k)))
	}
}

// DefaultTagBase is the active-message tag range communicators claim unless
// told otherwise; it is disjoint from the runtime's tags (1..3) and the
// backends' internal ranges.
const DefaultTagBase core.Tag = 0x434C00 // "CL"

// Communicator is one rank's collective state over a communication engine.
// Build one per rank with the same tag base and Tune on every engine of a
// deployment.
type Communicator struct {
	e    core.Engine
	tune Tune

	tagCtl  core.Tag
	tagData core.Tag

	nextSeq uint32

	sends      map[xkey]*sendState
	recvs      map[xkey]*recvState
	earlyCTS   map[xkey]core.MemHandle
	earlyEager map[xkey][]byte

	// active holds the completion callback of every outstanding operation,
	// keyed by sequence number, so a transport failure can unwind them all.
	active map[uint32]func()
	failed error
}

// New builds a communicator over e, registering two active-message tags at
// base and base+1. It must be called once per (engine, base) pair, before
// the simulation runs.
func New(e core.Engine, base core.Tag, t Tune) *Communicator {
	if t.EagerMax < 0 || t.SegSize <= 0 {
		panic("coll: Tune needs EagerMax >= 0 and SegSize > 0")
	}
	c := &Communicator{
		e:          e,
		tune:       t,
		tagCtl:     base,
		tagData:    base + 1,
		sends:      make(map[xkey]*sendState),
		recvs:      make(map[xkey]*recvState),
		earlyCTS:   make(map[xkey]core.MemHandle),
		earlyEager: make(map[xkey][]byte),
		active:     make(map[uint32]func()),
	}
	e.TagReg(c.tagCtl, c.onCtl, ctlHeaderBytes+t.EagerMax)
	e.TagReg(c.tagData, c.onData, segDoneBytes)
	// An engine failure (peer unreachable, malformed wire traffic) aborts
	// every outstanding collective: the schedules would otherwise wait
	// forever for messages that will never arrive.
	e.OnError(c.fail)
	return c
}

// NewDefault is shorthand for New(e, DefaultTagBase, DefaultTune()).
func NewDefault(e core.Engine) *Communicator {
	return New(e, DefaultTagBase, DefaultTune())
}

// Err returns the first transport failure this communicator observed, or
// nil. After a failure every operation's done callback still fires (so
// waiting callers unwind), but buffer contents are unspecified.
func (c *Communicator) Err() error { return c.failed }

// fail records the first failure, drops all transfer state (no further wire
// activity), and completes every outstanding operation's callback.
func (c *Communicator) fail(err error) {
	if c.failed != nil {
		return
	}
	c.failed = err
	c.sends = make(map[xkey]*sendState)
	c.recvs = make(map[xkey]*recvState)
	c.earlyCTS = make(map[xkey]core.MemHandle)
	c.earlyEager = make(map[xkey][]byte)
	for _, fire := range c.active {
		fire() // removes itself from c.active
	}
}

// track registers done under seq and returns an idempotent wrapper: it fires
// at most once, whether completion comes from the schedule or from fail.
func (c *Communicator) track(seq uint32, done func()) func() {
	fire := func() {
		if _, ok := c.active[seq]; !ok {
			return
		}
		delete(c.active, seq)
		if done != nil {
			done()
		}
	}
	c.active[seq] = fire
	return fire
}

// Rank returns this communicator's rank.
func (c *Communicator) Rank() int { return c.e.Rank() }

// Size returns the communicator size.
func (c *Communicator) Size() int { return c.e.Size() }

// Tune returns the communicator's tuning parameters.
func (c *Communicator) Tune() Tune { return c.tune }

// resolve maps Auto to the selector's pick and validates a forced choice.
func (c *Communicator) resolve(k Kind, size int64, a Algorithm) Algorithm {
	if a == Auto {
		return c.tune.Pick(k, size, c.e.Size())
	}
	for _, ok := range Algorithms(k) {
		if a == ok {
			return a
		}
	}
	panic(fmt.Sprintf("coll: algorithm %v not implemented for %v", a, k))
}

// Bcast broadcasts root's buffer b to every rank's b. done, if non-nil,
// runs on the communication thread when this rank's participation is
// complete (data delivered locally and all forwarding obligations met).
func (c *Communicator) Bcast(b buf.Buf, root int, a Algorithm, done func()) {
	c.checkRoot(root)
	seq := c.claimSeq()
	algo := c.resolve(OpBcast, b.Size, a)
	fire := c.track(seq, done)
	c.e.Submit(0, func() {
		if c.failed != nil {
			fire()
			return
		}
		c.runBcast(seq, b, root, algo, fire)
	})
}

// Reduce combines every rank's src with op into dst at root. Non-root ranks
// may pass a zero dst. dst and src must not alias.
func (c *Communicator) Reduce(dst, src buf.Buf, op Op, root int, a Algorithm, done func()) {
	c.checkRoot(root)
	if c.e.Rank() == root && dst.Size != src.Size {
		panic(fmt.Sprintf("coll: reduce dst size %d != src size %d", dst.Size, src.Size))
	}
	seq := c.claimSeq()
	algo := c.resolve(OpReduce, src.Size, a)
	fire := c.track(seq, done)
	c.e.Submit(0, func() {
		if c.failed != nil {
			fire()
			return
		}
		c.runReduce(seq, dst, src, op, root, algo, fire)
	})
}

// Allreduce combines every rank's src with op into every rank's dst.
// dst and src must not alias.
func (c *Communicator) Allreduce(dst, src buf.Buf, op Op, a Algorithm, done func()) {
	if dst.Size != src.Size {
		panic(fmt.Sprintf("coll: allreduce dst size %d != src size %d", dst.Size, src.Size))
	}
	seq := c.claimSeq()
	algo := c.resolve(OpAllreduce, src.Size, a)
	fire := c.track(seq, done)
	c.e.Submit(0, func() {
		if c.failed != nil {
			fire()
			return
		}
		c.runAllreduce(seq, dst, src, op, algo, fire)
	})
}

// Allgather concatenates every rank's src block into every rank's dst in
// rank order; dst must be Size() times the block size.
func (c *Communicator) Allgather(dst, src buf.Buf, a Algorithm, done func()) {
	if dst.Size != src.Size*int64(c.e.Size()) {
		panic(fmt.Sprintf("coll: allgather dst size %d != %d ranks x block %d",
			dst.Size, c.e.Size(), src.Size))
	}
	seq := c.claimSeq()
	algo := c.resolve(OpAllgather, src.Size, a)
	fire := c.track(seq, done)
	c.e.Submit(0, func() {
		if c.failed != nil {
			fire()
			return
		}
		c.runAllgather(seq, dst, src, algo, fire)
	})
}

// Barrier completes on each rank only after every rank has entered it.
func (c *Communicator) Barrier(a Algorithm, done func()) {
	seq := c.claimSeq()
	algo := c.resolve(OpBarrier, 0, a)
	fire := c.track(seq, done)
	c.e.Submit(0, func() {
		if c.failed != nil {
			fire()
			return
		}
		c.runBarrier(seq, algo, fire)
	})
}

func (c *Communicator) checkRoot(root int) {
	if root < 0 || root >= c.e.Size() {
		panic(fmt.Sprintf("coll: root %d out of range [0,%d)", root, c.e.Size()))
	}
}

// claimSeq numbers one collective call. Every rank must issue the same
// sequence of calls, so the per-rank counters stay in lockstep; the number
// is what matches one rank's sends to its peers' receives.
func (c *Communicator) claimSeq() uint32 {
	s := c.nextSeq
	c.nextSeq++
	return s
}

// finish funnels an operation's completion callback.
func (c *Communicator) finish(done func()) {
	if done != nil {
		done()
	}
}

// reduceInto charges the combine cost and applies op (real buffers only).
func (c *Communicator) reduceInto(dst, src buf.Buf, op Op, then func()) {
	n := src.Size
	if dst.Size < n {
		n = dst.Size
	}
	c.e.Submit(sim.Duration(n)*c.tune.ReducePerByte, func() {
		if dst.Bytes != nil && src.Bytes != nil {
			op.Fn(dst.Bytes[:n], src.Bytes[:n])
		}
		then()
	})
}

// copyInto charges the copy cost and copies (real buffers only).
func (c *Communicator) copyInto(dst, src buf.Buf, then func()) {
	n := src.Size
	if dst.Size < n {
		n = dst.Size
	}
	c.e.Submit(sim.Duration(n)*c.tune.CopyPerByte, func() {
		buf.Copy(dst, src)
		then()
	})
}

// allocLike returns an n-byte scratch buffer matching ref's storage mode.
func allocLike(ref buf.Buf, n int64) buf.Buf {
	if ref.Bytes != nil {
		return buf.FromBytes(make([]byte, n))
	}
	return buf.Virtual(n)
}
