package hicma

import (
	"math"
	"testing"

	"amtlci/internal/core/stack"
	"amtlci/internal/linalg"
	"amtlci/internal/parsec"
	"amtlci/internal/sim"
	"amtlci/internal/tlr"
)

func TestRankModelCalibration(t *testing.T) {
	// The paper reports, for N=360,000 at nb=1200: average rank 10.44
	// (packed U x V tiles ~196 KiB) and a largest low-rank tile of rank 29
	// (544 KiB), §6.4.2. The synthetic model must match those statistics.
	par := DefaultParams(360000, 1200)
	p := NewVirtual(par, 16)
	avg := p.AvgRank()
	if avg < 9.4 || avg > 11.5 {
		t.Fatalf("average rank %.2f, want ~10.44", avg)
	}
	maxRank := 0
	for m := 1; m < p.T; m++ {
		if r := p.Rank(m, m-1); r > maxRank {
			maxRank = r
		}
	}
	if maxRank < 26 || maxRank > 32 {
		t.Fatalf("max rank %d, want ~29", maxRank)
	}
	// Packed sizes: average ~196 KiB, max ~544 KiB.
	avgBytes := 2.0 * 1200 * avg * 8
	if avgBytes < 150e3 || avgBytes > 250e3 {
		t.Fatalf("average packed tile %.0f bytes, want ~196 KiB", avgBytes)
	}
	if got := tlr.PackedBytes(1200, maxRank); got < 450<<10 || got > 620<<10 {
		t.Fatalf("largest packed tile %d bytes, want ~544 KiB", got)
	}
}

func TestRankDecaysWithDistanceAndFloorsAtOne(t *testing.T) {
	p := NewVirtual(DefaultParams(360000, 1200), 16)
	prev := 1 << 30
	for d := 1; d < p.T; d += 20 {
		r := p.Rank(d, 0)
		if r > prev {
			t.Fatalf("rank grew with distance at d=%d", d)
		}
		prev = r
	}
	if p.Rank(p.T-1, 0) != 1 {
		t.Fatalf("far tile rank = %d, want 1", p.Rank(p.T-1, 0))
	}
}

func TestRankRespectsMaxRankCap(t *testing.T) {
	par := DefaultParams(360000, 6000)
	par.RankBase = 1e6 // force saturation
	p := NewVirtual(par, 16)
	if r := p.Rank(1, 0); r != par.MaxRank {
		t.Fatalf("rank %d, want cap %d", r, par.MaxRank)
	}
}

func TestCostsReflectCompression(t *testing.T) {
	// A TLR GEMM must be far cheaper than the dense nb^3 GEMM at the same
	// tile size — the reason HiCMA scales at all.
	par := DefaultParams(360000, 3000)
	p := NewVirtual(par, 16)
	gemm := parsec.TaskID{Class: ClassGEMM, Index: (0*int64(p.T)+100)*int64(p.T) + 50}
	tlrCost := p.Cost(gemm)
	denseFlops := 2.0 * 3000 * 3000 * 3000
	denseCost := sim.FromSeconds(denseFlops / (25 * 1e9))
	if tlrCost >= denseCost/10 {
		t.Fatalf("TLR GEMM %v not well below dense %v", tlrCost, denseCost)
	}
}

func TestVirtualSizesMatchRankModel(t *testing.T) {
	par := DefaultParams(36000, 1200)
	p := NewVirtual(par, 4)
	trsm := parsec.TaskID{Class: ClassTRSM, Index: 0*int64(p.T) + 7}
	out := p.Execute(trsm, nil)
	if len(out) != 1 {
		t.Fatalf("flows = %d", len(out))
	}
	want := tlr.PackedBytes(1200, p.Rank(7, 0))
	if out[0].Buf.Size != want {
		t.Fatalf("TRSM payload %d, want %d", out[0].Buf.Size, want)
	}
	potrf := parsec.TaskID{Class: ClassPOTRF, Index: 3}
	if got := p.Execute(potrf, nil)[0].Buf.Size; got != 1200*1200*8 {
		t.Fatalf("POTRF payload %d, want dense tile", got)
	}
}

func runPool(t *testing.T, p parsec.Taskpool, b stack.Backend, ranks, workers int) (sim.Duration, *parsec.Runtime) {
	t.Helper()
	o := stack.DefaultOptions(b, ranks)
	o.Fabric.Jitter = 0
	s := stack.Build(o)
	cfg := parsec.DefaultConfig(workers)
	cfg.Jitter = 0
	rt := parsec.New(s.Eng, s.Engines, p, cfg)
	d, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	return d, rt
}

func TestRealTLRCholeskyMatchesDense(t *testing.T) {
	for _, b := range stack.Backends {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			const n, nb, ranks = 64, 16, 4
			prob := tlr.NewProblem(n, 0.4, 1e-2)
			par := DefaultParams(n, nb)
			par.Acc = 1e-10
			par.MaxRank = nb
			p := NewReal(par, ranks, prob)
			runPool(t, p, b, ranks, 2)

			l := p.AssembleFactor()
			recon := linalg.NewMatrix(n, n)
			linalg.GEMM(recon, l, l, 1, false, true)
			a := prob.Block(0, 0, n, n)
			// Only the lower triangle is meaningful.
			var num, den float64
			for i := 0; i < n; i++ {
				for j := 0; j <= i; j++ {
					d := recon.At(i, j) - a.At(i, j)
					num += d * d
					den += a.At(i, j) * a.At(i, j)
				}
			}
			if e := math.Sqrt(num / den); e > 1e-6 {
				t.Fatalf("TLR factorization error %g", e)
			}
		})
	}
}

func TestRealTLRCompressionActuallyUsed(t *testing.T) {
	const n, nb = 64, 16
	prob := tlr.NewProblem(n, 0.6, 1e-2)
	par := DefaultParams(n, nb)
	par.Acc = 1e-5
	par.MaxRank = nb
	p := NewReal(par, 1, prob)
	// At least one original off-diagonal tile must have rank < nb.
	compressed := false
	for _, lr := range p.origLR {
		if lr.Rank() < nb {
			compressed = true
		}
	}
	if !compressed {
		t.Fatal("no off-diagonal tile compressed; problem too rough")
	}
	runPool(t, p, stack.LCI, 1, 2)
	if len(p.ResultLR) == 0 {
		t.Fatal("no low-rank results recorded")
	}
}

func TestVirtualHiCMACompletesOnBothBackends(t *testing.T) {
	for _, b := range stack.Backends {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			par := DefaultParams(24000, 1200) // T=20
			p := NewVirtual(par, 4)
			d, rt := runPool(t, p, b, 4, 8)
			if d <= 0 {
				t.Fatal("zero makespan")
			}
			var ran int64
			for r := 0; r < 4; r++ {
				ran += rt.Stats(r).TasksRun
			}
			if ran != p.TotalTasks() {
				t.Fatalf("ran %d tasks, want %d", ran, p.TotalTasks())
			}
			if rt.Tracer().EndToEnd().N() == 0 {
				t.Fatal("no latency samples collected")
			}
		})
	}
}

func TestLCIBeatsMPIOnLatencyAtFineTiles(t *testing.T) {
	// The central claim, miniaturized: on fine tiles the LCI backend's
	// end-to-end communication latency beats the MPI backend's, and
	// time-to-solution is no worse. (At this miniature scale the run is
	// compute-bound, so the full time-to-solution gap only appears in the
	// paper-scale benchmarks; see internal/bench and bench_test.go.)
	par := DefaultParams(19200, 600) // T=32, small tiles
	run := func(b stack.Backend) (sim.Duration, float64) {
		p := NewVirtual(par, 4)
		d, rt := runPool(t, p, b, 4, 8)
		return d, rt.Tracer().EndToEnd().Mean()
	}
	lci, lciLat := run(stack.LCI)
	mpi, mpiLat := run(stack.MPI)
	if lciLat >= mpiLat {
		t.Fatalf("LCI latency (%.1fus) not below MPI (%.1fus)", lciLat, mpiLat)
	}
	if float64(lci) > float64(mpi)*1.02 {
		t.Fatalf("LCI time-to-solution (%v) worse than MPI (%v)", lci, mpi)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	u := linalg.NewMatrix(8, 3)
	v := linalg.NewMatrix(8, 3)
	for i := range u.Data {
		u.Data[i] = float64(i) * 1.5
		v.Data[i] = -float64(i)
	}
	lr := &tlr.LowRank{U: u, V: v}
	got := lrFromBytes(lrToBytes(lr), 8)
	if got.Rank() != 3 || !linalg.Equalish(got.U, u, 0) || !linalg.Equalish(got.V, v, 0) {
		t.Fatal("low-rank round trip failed")
	}
	d := linalg.FromRows([][]float64{{1, 2}, {3, 4}})
	if !linalg.Equalish(denseFromBytes(denseToBytes(d), 2), d, 0) {
		t.Fatal("dense round trip failed")
	}
}

func TestTotalGEMMWorkScalesInverselyWithTileSize(t *testing.T) {
	// The TLR property behind Figure 4a's left edge: halving the tile size
	// roughly doubles the total recompression work (total GEMM flops scale
	// like 1/nb for rank ~ sqrt(nb)), so over-decomposing eventually costs
	// more compute, not just more communication.
	total := func(nb int) float64 {
		p := NewVirtual(DefaultParams(72000, nb), 1)
		var sum float64
		tt := p.T
		for k := 0; k < tt; k++ {
			for m := k + 1; m < tt; m++ {
				for n := k + 1; n < m; n++ {
					sum += p.Cost(parsec.TaskID{Class: ClassGEMM,
						Index: (int64(k)*int64(tt)+int64(m))*int64(tt) + int64(n)}).Seconds()
				}
			}
		}
		return sum
	}
	coarse := total(3000)
	fine := total(1500)
	if fine < 1.4*coarse || fine > 3.5*coarse {
		t.Fatalf("halving nb changed GEMM work by %.2fx, want ~2x", fine/coarse)
	}
}

func TestDiagonalTilePayloadDominatesAtLargeTiles(t *testing.T) {
	// §6.4.1: "Dense tiles on the diagonal band are very large and can
	// easily saturate network bandwidth alone."
	p := NewVirtual(DefaultParams(360000, 6000), 16)
	diag := p.Execute(parsec.TaskID{Class: ClassPOTRF, Index: 0}, nil)[0].Buf.Size
	lr := p.Execute(parsec.TaskID{Class: ClassTRSM, Index: 1}, nil)[0].Buf.Size
	if diag < 20*lr {
		t.Fatalf("diagonal payload %d not dominant over low-rank %d", diag, lr)
	}
}
