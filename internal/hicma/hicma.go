// Package hicma implements the paper's headline application (Section 6.4):
// HiCMA-style tile low-rank (TLR) Cholesky factorization on the PaRSEC
// runtime. Diagonal tiles are dense (band size 1); off-diagonal tiles are
// rank-r products U V^T. The task graph is the dense Cholesky graph of
// internal/cholesky, but the kernels, payload sizes, and costs follow the
// compressed format:
//
//	POTRF(k):    dense Cholesky of D[k][k]
//	TRSM(k,m):   triangular solve applied to the V factor of A[m][k]
//	SYRK(k,m):   D[m][m] -= U (V^T V) U^T
//	GEMM(k,m,n): TLR update of A[m][n] with QR+SVD recompression
//
// Two modes: a virtual mode for paper-scale performance experiments, whose
// tile ranks come from a synthetic model calibrated to the paper's reported
// statistics (average rank 10.44 and maximum low-rank tile rank 29 at
// nb = 1200 for the N = 360,000 st-2d-sqexp problem, §6.4.2), and a real
// mode that compresses an actual covariance matrix and runs the TLR kernels,
// verifiable against a dense factorization.
package hicma

import (
	"encoding/binary"
	"fmt"
	"math"

	"amtlci/internal/cholesky"
	"amtlci/internal/linalg"
	"amtlci/internal/parsec"
	"amtlci/internal/sim"
	"amtlci/internal/tlr"
)

// Task classes (same shape as the dense factorization).
const (
	ClassPOTRF = cholesky.ClassPOTRF
	ClassTRSM  = cholesky.ClassTRSM
	ClassSYRK  = cholesky.ClassSYRK
	ClassGEMM  = cholesky.ClassGEMM
)

// Params configures the factorization.
type Params struct {
	N       int     // matrix dimension
	NB      int     // tile dimension
	MaxRank int     // rank cap (150 in the paper)
	Acc     float64 // compression accuracy (1e-8 in the paper)

	// Kernel efficiency in effective GFLOP/s per core. TRSM and SYRK on a
	// rank-r factor are BLAS-3-rich and run near dense speed; the TLR GEMM
	// is dominated by skinny QR + small SVD recompression and runs far
	// below peak — the paper calls the low-rank GEMMs "far less
	// compute-intense than traditional GEMM kernels" (§6.4.1).
	PotrfGFLOPS float64
	TrsmGFLOPS  float64
	SyrkGFLOPS  float64
	GemmGFLOPS  float64

	// PotrfMaxSplit caps the internal parallelization of the dense diagonal
	// POTRF. HiCMA/DPLASMA subdivide large dense panel operations so a
	// 6000x6000 diagonal tile does not serialize the whole factorization;
	// we model that as a speedup of min((nb/1200)^2, PotrfMaxSplit).
	PotrfMaxSplit float64

	// RateRefRank and MaxGFLOPS describe how kernel efficiency grows with
	// the ranks involved: a QR on a 3000x130 factor runs near dense BLAS-3
	// speed while a 1200x30 one is bandwidth-bound. The effective rate is
	// min(MaxGFLOPS, base * max(1, r/RateRefRank)).
	RateRefRank float64
	MaxGFLOPS   float64

	// Synthetic rank model (virtual mode): rank(d) =
	// RankBase * sqrt(nb/1200) * exp(-(d/T)/RankDecay), clamped to
	// [1, min(MaxRank, nb)].
	RankBase  float64
	RankDecay float64
}

// DefaultParams mirrors the paper's HiCMA configuration for matrix size n
// and tile size nb.
func DefaultParams(n, nb int) Params {
	return Params{
		N:       n,
		NB:      nb,
		MaxRank: 150,
		Acc:     1e-8,

		PotrfGFLOPS:   25,
		TrsmGFLOPS:    20,
		SyrkGFLOPS:    20,
		GemmGFLOPS:    4,
		PotrfMaxSplit: 64,
		RateRefRank:   30,
		MaxGFLOPS:     25,

		RankBase:  29,
		RankDecay: 0.225,
	}
}

// Pool is the TLR Cholesky taskpool. It embeds the dense pool's graph
// structure (identical dependences and placement) and overrides costs,
// payload sizes, and kernels.
type Pool struct {
	*cholesky.Pool
	par Params

	real bool
	prob *tlr.Problem
	// Original compressed tiles (real mode).
	origDiag map[int]*linalg.Matrix
	origLR   map[[2]int]*tlr.LowRank

	// ResultDiag / ResultLR collect the factor in real mode.
	ResultDiag map[int]*linalg.Matrix
	ResultLR   map[[2]int]*tlr.LowRank
}

// NewVirtual builds the performance-mode pool for the given parameters over
// ranks processes.
func NewVirtual(par Params, ranks int) *Pool {
	if par.N%par.NB != 0 {
		panic(fmt.Sprintf("hicma: N=%d not divisible by nb=%d", par.N, par.NB))
	}
	t := par.N / par.NB
	return &Pool{
		Pool: cholesky.NewVirtual(t, par.NB, ranks, par.PotrfGFLOPS),
		par:  par,
	}
}

// NewReal builds the correctness-mode pool: it generates the st-2d-sqexp
// covariance problem, compresses off-diagonal tiles, and runs the actual
// TLR kernels.
func NewReal(par Params, ranks int, prob *tlr.Problem) *Pool {
	p := NewVirtual(par, ranks)
	p.real = true
	p.prob = prob
	p.origDiag = make(map[int]*linalg.Matrix)
	p.origLR = make(map[[2]int]*tlr.LowRank)
	p.ResultDiag = make(map[int]*linalg.Matrix)
	p.ResultLR = make(map[[2]int]*tlr.LowRank)
	nb := par.NB
	t := p.T
	for m := 0; m < t; m++ {
		p.origDiag[m] = prob.Block(m*nb, m*nb, nb, nb)
		for n := 0; n < m; n++ {
			block := prob.Block(m*nb, n*nb, nb, nb)
			p.origLR[[2]int{m, n}] = tlr.Compress(block, par.Acc, par.MaxRank)
		}
	}
	return p
}

// Params returns the pool's configuration.
func (p *Pool) Params() Params { return p.par }

// Rank returns the modeled rank of off-diagonal tile (m, n) in virtual
// mode. It decays exponentially with distance from the diagonal, as the
// paper describes for st-2d-sqexp ("low-rank tiles far from the diagonal
// can see their rank drop to 1", §6.4.1).
func (p *Pool) Rank(m, n int) int {
	d := m - n
	if d < 0 {
		d = -d
	}
	if d == 0 {
		panic("hicma: diagonal tiles are dense")
	}
	delta := float64(d) / float64(p.T)
	r := int(math.Round(p.par.RankBase * math.Sqrt(float64(p.par.NB)/1200) *
		math.Exp(-delta/p.par.RankDecay)))
	if r < 1 {
		r = 1
	}
	cap := p.par.MaxRank
	if p.par.NB < cap {
		cap = p.par.NB
	}
	if r > cap {
		r = cap
	}
	return r
}

// AvgRank reports the mean modeled off-diagonal rank (used to validate the
// calibration against the paper's 10.44 at nb=1200).
func (p *Pool) AvgRank() float64 {
	var sum, cnt float64
	for m := 1; m < p.T; m++ {
		for n := 0; n < m; n++ {
			sum += float64(p.Rank(m, n))
			cnt++
		}
	}
	return sum / cnt
}

// denseBytes is the payload of a dense diagonal tile.
func (p *Pool) denseBytes() int64 { return int64(p.NB) * int64(p.NB) * 8 }

// lrBytes is the payload of a packed rank-r tile.
func (p *Pool) lrBytes(r int) int64 { return tlr.PackedBytes(p.NB, r) }

// taskKMN recovers the loop indices of any task.
func (p *Pool) taskKMN(t parsec.TaskID) (k, m, n int) {
	switch t.Class {
	case ClassPOTRF:
		k = int(t.Index)
		return k, k, k
	case ClassTRSM:
		k = int(t.Index / int64(p.T))
		m = int(t.Index % int64(p.T))
		return k, m, k
	case ClassSYRK:
		k = int(t.Index / int64(p.T))
		m = int(t.Index % int64(p.T))
		return k, m, m
	case ClassGEMM:
		n = int(t.Index % int64(p.T))
		rest := t.Index / int64(p.T)
		return int(rest / int64(p.T)), int(rest % int64(p.T)), n
	}
	panic("hicma: bad class")
}

// Cost overrides the dense flop model with the TLR one.
func (p *Pool) Cost(t parsec.TaskID) sim.Duration {
	nb := float64(p.NB)
	k, m, n := p.taskKMN(t)
	_ = k
	switch t.Class {
	case ClassPOTRF:
		split := (nb / 1200) * (nb / 1200)
		if split < 1 {
			split = 1
		}
		if split > p.par.PotrfMaxSplit {
			split = p.par.PotrfMaxSplit
		}
		return sim.FromSeconds(nb * nb * nb / 3 / split / (p.par.PotrfGFLOPS * 1e9))
	case ClassTRSM:
		r := float64(p.Rank(m, k))
		return sim.FromSeconds(nb * nb * r / (p.rate(p.par.TrsmGFLOPS, r) * 1e9))
	case ClassSYRK:
		r := float64(p.Rank(m, k))
		return sim.FromSeconds((2*nb*nb*r + 2*nb*r*r) / (p.rate(p.par.SyrkGFLOPS, r) * 1e9))
	case ClassGEMM:
		rsum := float64(p.Rank(m, k) + p.Rank(n, k) + p.Rank(m, n))
		// Two skinny QRs (~24 nb rsum^2 flops with their BLAS-1/2 tails
		// priced in) plus an O(rsum^3) SVD: recompression dominates.
		return sim.FromSeconds((24*nb*rsum*rsum + 30*rsum*rsum*rsum) / (p.rate(p.par.GemmGFLOPS, rsum) * 1e9))
	}
	panic("hicma: bad class")
}

// rate returns the rank-dependent effective kernel rate.
func (p *Pool) rate(base, r float64) float64 {
	f := r / p.par.RateRefRank
	if f < 1 {
		f = 1
	}
	rate := base * f
	if rate > p.par.MaxGFLOPS {
		rate = p.par.MaxGFLOPS
	}
	return rate
}

// Name implements Taskpool.
func (p *Pool) Name() string {
	return fmt.Sprintf("hicma[N=%d,nb=%d,maxrank=%d]", p.par.N, p.par.NB, p.par.MaxRank)
}

// Execute runs the TLR kernels (real mode) or returns modeled payloads.
func (p *Pool) Execute(t parsec.TaskID, inputs []parsec.DataRef) []parsec.DataRef {
	if !p.real {
		return []parsec.DataRef{parsec.VirtualData(p.virtualOutBytes(t))}
	}
	return []parsec.DataRef{p.executeReal(t, inputs)}
}

func (p *Pool) virtualOutBytes(t parsec.TaskID) int64 {
	k, m, n := p.taskKMN(t)
	_ = k
	switch t.Class {
	case ClassPOTRF, ClassSYRK:
		return p.denseBytes()
	case ClassTRSM:
		return p.lrBytes(p.Rank(m, k))
	case ClassGEMM:
		return p.lrBytes(p.Rank(m, n))
	}
	panic("hicma: bad class")
}

// MakeCopy implements Taskpool.
func (p *Pool) MakeCopy(t parsec.TaskID, flow int32, size int64) parsec.DataRef {
	if p.real {
		return parsec.RealData(make([]byte, size))
	}
	return parsec.VirtualData(size)
}

func (p *Pool) executeReal(t parsec.TaskID, in []parsec.DataRef) parsec.DataRef {
	nb := p.NB
	k, m, n := p.taskKMN(t)
	switch t.Class {
	case ClassPOTRF:
		var d *linalg.Matrix
		if k == 0 {
			d = p.takeDiag(k)
		} else {
			d = denseFromBytes(in[0].Buf.Bytes, nb)
		}
		if err := linalg.POTRF(d); err != nil {
			panic(fmt.Sprintf("hicma: POTRF(%d): %v", k, err))
		}
		p.ResultDiag[k] = d
		return parsec.RealData(denseToBytes(d))
	case ClassTRSM:
		l := denseFromBytes(in[0].Buf.Bytes, nb)
		var a *tlr.LowRank
		if k == 0 {
			a = p.takeLR(m, k)
		} else {
			a = lrFromBytes(in[1].Buf.Bytes, nb)
		}
		tlr.TRSM(a, l)
		p.ResultLR[[2]int{m, k}] = a
		return parsec.RealData(lrToBytes(a))
	case ClassSYRK:
		a := lrFromBytes(in[0].Buf.Bytes, nb)
		var d *linalg.Matrix
		if k == 0 {
			d = p.takeDiag(m)
		} else {
			d = denseFromBytes(in[1].Buf.Bytes, nb)
		}
		tlr.SYRKDense(d, a, -1)
		return parsec.RealData(denseToBytes(d))
	case ClassGEMM:
		a := lrFromBytes(in[0].Buf.Bytes, nb)
		b := lrFromBytes(in[1].Buf.Bytes, nb)
		var c *tlr.LowRank
		if k == 0 {
			c = p.takeLR(m, n)
		} else {
			c = lrFromBytes(in[2].Buf.Bytes, nb)
		}
		tlr.AddLRProduct(c, a, b, -1, p.par.Acc, p.par.MaxRank)
		return parsec.RealData(lrToBytes(c))
	}
	panic("hicma: bad class")
}

// takeDiag and takeLR hand kernels the original tiles. The kernels mutate
// in place, so callers get clones and the pristine tiles stay in the pool —
// crash recovery may re-execute the k=0 tasks, and they must see the same
// input both times.
func (p *Pool) takeDiag(k int) *linalg.Matrix {
	d, ok := p.origDiag[k]
	if !ok {
		panic(fmt.Sprintf("hicma: diagonal tile %d missing", k))
	}
	return d.Clone()
}

func (p *Pool) takeLR(m, n int) *tlr.LowRank {
	lr, ok := p.origLR[[2]int{m, n}]
	if !ok {
		panic(fmt.Sprintf("hicma: low-rank tile (%d,%d) missing", m, n))
	}
	return lr.Clone()
}

// AssembleFactor reconstructs the dense lower-triangular factor from the
// real-mode results.
func (p *Pool) AssembleFactor() *linalg.Matrix {
	nb := p.NB
	nn := p.T * nb
	l := linalg.NewMatrix(nn, nn)
	for m := 0; m < p.T; m++ {
		diag, ok := p.ResultDiag[m]
		if !ok {
			panic(fmt.Sprintf("hicma: missing diagonal result %d", m))
		}
		for i := 0; i < nb; i++ {
			for j := 0; j <= i; j++ {
				l.Set(m*nb+i, m*nb+j, diag.At(i, j))
			}
		}
		for c := 0; c < m; c++ {
			lr, ok := p.ResultLR[[2]int{m, c}]
			if !ok {
				panic(fmt.Sprintf("hicma: missing low-rank result (%d,%d)", m, c))
			}
			dd := lr.Dense()
			for i := 0; i < nb; i++ {
				for j := 0; j < nb; j++ {
					l.Set(m*nb+i, c*nb+j, dd.At(i, j))
				}
			}
		}
	}
	return l
}

// Serialization: dense tiles are raw little-endian float64s; low-rank tiles
// carry an 8-byte rank header followed by U then V.

func denseToBytes(m *linalg.Matrix) []byte {
	out := make([]byte, 8*len(m.Data))
	for i, v := range m.Data {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func denseFromBytes(b []byte, nb int) *linalg.Matrix {
	if len(b) != nb*nb*8 {
		panic(fmt.Sprintf("hicma: dense payload %d bytes, want %d", len(b), nb*nb*8))
	}
	m := linalg.NewMatrix(nb, nb)
	for i := range m.Data {
		m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return m
}

func lrToBytes(lr *tlr.LowRank) []byte {
	r := lr.Rank()
	nb := lr.Rows()
	out := make([]byte, 8+8*2*nb*r)
	binary.LittleEndian.PutUint64(out, uint64(r))
	off := 8
	for _, v := range lr.U.Data {
		binary.LittleEndian.PutUint64(out[off:], math.Float64bits(v))
		off += 8
	}
	for _, v := range lr.V.Data {
		binary.LittleEndian.PutUint64(out[off:], math.Float64bits(v))
		off += 8
	}
	return out
}

func lrFromBytes(b []byte, nb int) *tlr.LowRank {
	r := int(binary.LittleEndian.Uint64(b))
	want := 8 + 8*2*nb*r
	if len(b) != want {
		panic(fmt.Sprintf("hicma: low-rank payload %d bytes, want %d (rank %d)", len(b), want, r))
	}
	u := linalg.NewMatrix(nb, r)
	v := linalg.NewMatrix(nb, r)
	off := 8
	for i := range u.Data {
		u.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	for i := range v.Data {
		v.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	return &tlr.LowRank{U: u, V: v}
}
