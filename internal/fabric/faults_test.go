package fabric

import (
	"strings"
	"testing"

	"amtlci/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	mod := func(f func(*Config)) Config {
		c := DefaultConfig()
		f(&c)
		return c
	}
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error; "" means valid
	}{
		{"default", DefaultConfig(), ""},
		{"zero latency ok", mod(func(c *Config) { c.Latency = 0 }), ""},
		{"zero gap ok", mod(func(c *Config) { c.MessageGap = 0 }), ""},
		{"zero bandwidth", mod(func(c *Config) { c.BandwidthGbps = 0 }), "bandwidth"},
		{"negative bandwidth", mod(func(c *Config) { c.BandwidthGbps = -1 }), "bandwidth"},
		{"negative latency", mod(func(c *Config) { c.Latency = -sim.Nanosecond }), "latency"},
		{"negative gap", mod(func(c *Config) { c.MessageGap = -sim.Nanosecond }), "gap"},
		{"negative rx", mod(func(c *Config) { c.RxOverhead = -1 }), "rx overhead"},
		{"negative loopback", mod(func(c *Config) { c.LoopbackLatency = -1 }), "loopback"},
		{"negative ctl bypass", mod(func(c *Config) { c.CtlBypass = -1 }), "control-lane"},
		{"negative jitter", mod(func(c *Config) { c.Jitter = -0.1 }), "jitter"},
		{"jitter one", mod(func(c *Config) { c.Jitter = 1 }), "jitter"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if _, err := New(sim.NewEngine(), 0, DefaultConfig()); err == nil {
		t.Error("New with zero ranks must fail")
	}
	if _, err := New(sim.NewEngine(), 2, Config{}); err == nil {
		t.Error("New with zero config must fail (no bandwidth)")
	}
}

func TestFaultConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  FaultConfig
		ok   bool
	}{
		{"zero", FaultConfig{}, true},
		{"typical", FaultConfig{Drop: 0.02, Duplicate: 0.02, Corrupt: 0.02, Reorder: 0.02}, true},
		{"prob high", FaultConfig{Drop: 1.5}, false},
		{"prob negative", FaultConfig{Corrupt: -0.1}, false},
		{"negative delay", FaultConfig{ReorderDelay: -1}, false},
		{"bad link rank", FaultConfig{Links: []LinkFault{{Src: -2, Dst: 0}}}, false},
		{"inverted window", FaultConfig{Links: []LinkFault{{Src: 0, Dst: 1, From: 100, Until: 50}}}, false},
		{"wildcard sever", FaultConfig{Links: []LinkFault{{Src: -1, Dst: -1, Sever: true}}}, true},
		{"bad bw factor", FaultConfig{Links: []LinkFault{{Src: 0, Dst: 1, BandwidthFactor: 2}}}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
}

// lossyPair builds a 2-rank fabric with the given fault schedule and counts
// deliveries at rank 1.
func lossyPair(t *testing.T, fc FaultConfig) (*sim.Engine, *Fabric, *int) {
	t.Helper()
	eng := sim.NewEngine()
	f := mustNew(eng, 2, quietConfig())
	if err := f.InstallFaults(fc); err != nil {
		t.Fatal(err)
	}
	n := new(int)
	f.SetHandler(1, func(m *Message) { *n++ })
	f.SetHandler(0, func(m *Message) {})
	return eng, f, n
}

func TestDropStillFiresOnTx(t *testing.T) {
	eng, f, n := lossyPair(t, FaultConfig{Drop: 1})
	tx := 0
	for i := 0; i < 20; i++ {
		f.Send(&Message{Src: 0, Dst: 1, Size: 64, OnTx: func() { tx++ }})
	}
	eng.Run()
	if *n != 0 {
		t.Fatalf("%d messages delivered with drop probability 1", *n)
	}
	if tx != 20 {
		t.Fatalf("OnTx fired %d times, want 20 (tx completes even when the wire drops)", tx)
	}
	if s := f.FaultStats(); s.Dropped != 20 {
		t.Fatalf("stats = %+v, want 20 dropped", s)
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	eng, f, n := lossyPair(t, FaultConfig{Duplicate: 1})
	const count = 10
	for i := 0; i < count; i++ {
		f.Send(&Message{Src: 0, Dst: 1, Size: 64})
	}
	eng.Run()
	if *n != 2*count {
		t.Fatalf("delivered %d, want %d (every message duplicated)", *n, 2*count)
	}
	// Bulk lane duplicates too.
	eng2, f2, n2 := lossyPair(t, FaultConfig{Duplicate: 1})
	f2.Send(&Message{Src: 0, Dst: 1, Size: 1 << 20})
	eng2.Run()
	if *n2 != 2 {
		t.Fatalf("bulk duplicate delivered %d, want 2", *n2)
	}
}

func TestCorruptFlagAndPayloadFlip(t *testing.T) {
	eng := sim.NewEngine()
	f := mustNew(eng, 2, quietConfig())
	if err := f.InstallFaults(FaultConfig{Corrupt: 1}); err != nil {
		t.Fatal(err)
	}
	orig := []byte{1, 2, 3, 4}
	var got *Message
	f.SetHandler(1, func(m *Message) { got = m })
	f.Send(&Message{Src: 0, Dst: 1, Size: 4, Payload: orig})
	eng.Run()
	if got == nil || !got.Corrupted {
		t.Fatal("message not marked corrupted")
	}
	diff := 0
	for i := range orig {
		if got.Payload[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d payload bytes differ, want exactly 1", diff)
	}
	if orig[0] != 1 || orig[1] != 2 || orig[2] != 3 || orig[3] != 4 {
		t.Fatal("sender's buffer was mutated; corruption must copy")
	}
}

func TestLoopbackNeverFaulted(t *testing.T) {
	eng, f, _ := lossyPair(t, FaultConfig{Drop: 1, Corrupt: 1})
	delivered := 0
	f.SetHandler(0, func(m *Message) {
		delivered++
		if m.Corrupted {
			t.Error("loopback message corrupted")
		}
	})
	f.Send(&Message{Src: 0, Dst: 0, Size: 64})
	eng.Run()
	if delivered != 1 {
		t.Fatalf("loopback delivered %d, want 1", delivered)
	}
}

func TestFaultScheduleDeterministic(t *testing.T) {
	run := func() FaultStats {
		eng := sim.NewEngine()
		f := mustNew(eng, 3, quietConfig())
		if err := f.InstallFaults(FaultConfig{Drop: 0.3, Duplicate: 0.2, Corrupt: 0.1, Reorder: 0.1, Seed: 42}); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 3; r++ {
			f.SetHandler(r, func(m *Message) {})
		}
		for i := 0; i < 200; i++ {
			f.Send(&Message{Src: i % 2, Dst: 2, Size: 64})
		}
		eng.Run()
		return f.FaultStats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.Dropped == 0 || a.Duplicated == 0 || a.Corrupted == 0 || a.Reordered == 0 {
		t.Fatalf("expected every fault class to fire over 200 messages: %+v", a)
	}
}

func TestSeverWindow(t *testing.T) {
	// Sever 0->1 during [10us, 20us): messages sent before and after get
	// through, messages inside vanish.
	eng := sim.NewEngine()
	f := mustNew(eng, 2, quietConfig())
	err := f.InstallFaults(FaultConfig{Links: []LinkFault{{
		Src: 0, Dst: 1, Sever: true,
		From:  sim.Time(10 * sim.Microsecond),
		Until: sim.Time(20 * sim.Microsecond),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	f.SetHandler(1, func(m *Message) { got++ })
	for _, at := range []sim.Duration{0, 5 * sim.Microsecond, 12 * sim.Microsecond, 15 * sim.Microsecond, 25 * sim.Microsecond} {
		eng.After(at, func() { f.Send(&Message{Src: 0, Dst: 1, Size: 64}) })
	}
	eng.Run()
	if got != 3 {
		t.Fatalf("delivered %d, want 3 (two sends fall inside the sever window)", got)
	}
	if s := f.FaultStats(); s.Severed != 2 {
		t.Fatalf("stats = %+v, want 2 severed", s)
	}
}

func TestLatencySpikeAndBandwidthCut(t *testing.T) {
	base := func(fc *FaultConfig) sim.Time {
		eng := sim.NewEngine()
		f := mustNew(eng, 2, quietConfig())
		if fc != nil {
			if err := f.InstallFaults(*fc); err != nil {
				t.Fatal(err)
			}
		}
		var at sim.Time
		f.SetHandler(1, func(m *Message) { at = eng.Now() })
		f.Send(&Message{Src: 0, Dst: 1, Size: 1 << 20})
		eng.Run()
		return at
	}
	clean := base(nil)
	spike := base(&FaultConfig{Links: []LinkFault{{Src: -1, Dst: -1, ExtraLatency: 50 * sim.Microsecond}}})
	if want := clean + sim.Time(50*sim.Microsecond); spike != want {
		t.Fatalf("latency spike arrival %v, want %v", spike, want)
	}
	cut := base(&FaultConfig{Links: []LinkFault{{Src: -1, Dst: -1, BandwidthFactor: 0.5}}})
	if cut <= clean {
		t.Fatalf("bandwidth cut arrival %v not later than clean %v", cut, clean)
	}
}

func TestNodeCrashSilencesRank(t *testing.T) {
	eng := sim.NewEngine()
	f := mustNew(eng, 3, quietConfig())
	crashAt := sim.Time(0).Add(50 * sim.Microsecond)
	if err := f.InstallFaults(FaultConfig{Crashes: []NodeCrash{{Rank: 1, At: crashAt}}}); err != nil {
		t.Fatal(err)
	}
	var crashedRank = -1
	f.OnCrash(func(r int) { crashedRank = r })
	got := make([]int, 3)
	for r := 0; r < 3; r++ {
		r := r
		f.SetHandler(r, func(m *Message) { got[r]++ })
	}
	// Before the crash everything flows; after it rank 1 neither sends nor
	// receives, while the 0<->2 link is untouched.
	send := func(src, dst int) { f.Send(&Message{Src: src, Dst: dst, Size: 64}) }
	send(0, 1)
	send(1, 0)
	send(0, 2)
	eng.At(crashAt.Add(sim.Microsecond), func() {
		send(0, 1) // into the dead rank: dropped
		send(1, 0) // out of the dead rank: dropped
		send(2, 0) // survivors unaffected
	})
	eng.Run()
	if crashedRank != 1 {
		t.Fatalf("OnCrash saw rank %d, want 1", crashedRank)
	}
	if !f.Crashed(1) || f.Crashed(0) || f.Crashed(2) {
		t.Fatalf("Crashed() = [%v %v %v], want only rank 1", f.Crashed(0), f.Crashed(1), f.Crashed(2))
	}
	if got[0] != 2 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("deliveries = %v, want [2 1 1]", got)
	}
	if s := f.FaultStats(); s.Crashes != 1 || s.CrashDropped != 2 {
		t.Fatalf("stats = %+v, want 1 crash, 2 crash-dropped", s)
	}
}

func TestNodeCrashDropsInFlight(t *testing.T) {
	eng := sim.NewEngine()
	f := mustNew(eng, 2, quietConfig())
	// Crash the destination while a bulk message is on the wire: it left the
	// sender's NIC before the failure but must not be delivered.
	if err := f.InstallFaults(FaultConfig{Crashes: []NodeCrash{{Rank: 1, At: sim.Time(0).Add(2 * sim.Microsecond)}}}); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	f.SetHandler(1, func(m *Message) { delivered++ })
	f.SetHandler(0, func(m *Message) {})
	tx := false
	f.Send(&Message{Src: 0, Dst: 1, Size: 1 << 20, OnTx: func() { tx = true }})
	eng.Run()
	if !tx {
		t.Fatal("OnTx must fire: the message left the source NIC before the crash")
	}
	if delivered != 0 {
		t.Fatalf("delivered %d messages to a crashed rank, want 0", delivered)
	}
	if s := f.FaultStats(); s.CrashDropped != 1 {
		t.Fatalf("stats = %+v, want 1 crash-dropped", s)
	}
}

func TestNodeCrashValidation(t *testing.T) {
	bad := []FaultConfig{
		{Crashes: []NodeCrash{{Rank: -1, At: sim.Time(0).Add(sim.Microsecond)}}},
		{Crashes: []NodeCrash{{Rank: 0, At: 0}}},
		{Crashes: []NodeCrash{
			{Rank: 0, At: sim.Time(0).Add(sim.Microsecond)},
			{Rank: 0, At: sim.Time(0).Add(2 * sim.Microsecond)},
		}},
	}
	for i, fc := range bad {
		if err := fc.Validate(); err == nil {
			t.Errorf("case %d: invalid crash config accepted", i)
		}
	}
	eng := sim.NewEngine()
	f := mustNew(eng, 2, quietConfig())
	if err := f.InstallFaults(FaultConfig{Crashes: []NodeCrash{{Rank: 7, At: sim.Time(0).Add(sim.Microsecond)}}}); err == nil {
		t.Error("out-of-range crash rank accepted")
	}
}
