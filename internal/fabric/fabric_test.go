package fabric

import (
	"testing"
	"testing/quick"

	"amtlci/internal/sim"
)

func quietConfig() Config {
	c := DefaultConfig()
	c.Jitter = 0
	return c
}

func mustNew(eng *sim.Engine, n int, cfg Config) *Fabric {
	f, err := New(eng, n, cfg)
	if err != nil {
		panic(err)
	}
	return f
}

func TestSerializeTime(t *testing.T) {
	eng := sim.NewEngine()
	f := mustNew(eng, 2, quietConfig())
	// 100 Gbit/s = 80 ps/byte.
	if got := f.SerializeTime(1); got != 80 {
		t.Errorf("SerializeTime(1) = %v ps, want 80", int64(got))
	}
	if got := f.SerializeTime(1 << 20); got != 80<<20 {
		t.Errorf("SerializeTime(1MiB) = %v, want %v", int64(got), 80<<20)
	}
	if f.SerializeTime(0) != 0 || f.SerializeTime(-5) != 0 {
		t.Error("non-positive sizes must serialize in zero time")
	}
}

func TestSingleMessageEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	cfg := quietConfig()
	f := mustNew(eng, 2, cfg)
	var arrived sim.Time
	f.SetHandler(1, func(m *Message) { arrived = eng.Now() })
	f.SetHandler(0, func(m *Message) {})
	f.Send(&Message{Src: 0, Dst: 1, Size: 1024})
	eng.Run()
	// Cut-through: serialization is paid once (LogGP), plus wire latency and
	// the receive engine's per-message overhead.
	want := sim.Time(cfg.MessageGap + f.SerializeTime(1024) + cfg.Latency + cfg.RxOverhead)
	if arrived != want {
		t.Fatalf("arrival = %v, want %v", arrived, want)
	}
}

func TestPayloadDelivery(t *testing.T) {
	eng := sim.NewEngine()
	f := mustNew(eng, 2, quietConfig())
	payload := []byte{1, 2, 3, 4}
	var got []byte
	f.SetHandler(1, func(m *Message) { got = m.Payload })
	f.Send(&Message{Src: 0, Dst: 1, Size: 4, Payload: payload})
	eng.Run()
	if len(got) != 4 || got[2] != 3 {
		t.Fatalf("payload = %v", got)
	}
}

func TestPayloadSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on payload/size mismatch")
		}
	}()
	eng := sim.NewEngine()
	f := mustNew(eng, 2, quietConfig())
	f.Send(&Message{Src: 0, Dst: 1, Size: 8, Payload: []byte{1}})
}

func TestStreamAchievesLinkBandwidth(t *testing.T) {
	// A back-to-back stream of large messages must sustain ~the configured
	// bandwidth: tx and rx serialization pipeline rather than add.
	eng := sim.NewEngine()
	cfg := quietConfig()
	f := mustNew(eng, 2, cfg)
	const msgSize = 1 << 20
	const count = 64
	var last sim.Time
	n := 0
	f.SetHandler(1, func(m *Message) { n++; last = eng.Now() })
	for i := 0; i < count; i++ {
		f.Send(&Message{Src: 0, Dst: 1, Size: msgSize})
	}
	eng.Run()
	if n != count {
		t.Fatalf("delivered %d, want %d", n, count)
	}
	gbps := float64(count*msgSize) * 8 / (sim.Duration(last).Seconds()) / 1e9
	if gbps < 0.9*cfg.BandwidthGbps || gbps > cfg.BandwidthGbps {
		t.Fatalf("stream bandwidth = %.1f Gbit/s, want ~%.0f", gbps, cfg.BandwidthGbps)
	}
}

func TestFullDuplexDirectionsIndependent(t *testing.T) {
	// Simultaneous opposite streams should each get full bandwidth.
	eng := sim.NewEngine()
	cfg := quietConfig()
	f := mustNew(eng, 2, cfg)
	const msgSize = 1 << 20
	const count = 32
	var done [2]sim.Time
	f.SetHandler(0, func(m *Message) { done[0] = eng.Now() })
	f.SetHandler(1, func(m *Message) { done[1] = eng.Now() })
	for i := 0; i < count; i++ {
		f.Send(&Message{Src: 0, Dst: 1, Size: msgSize})
		f.Send(&Message{Src: 1, Dst: 0, Size: msgSize})
	}
	eng.Run()
	for dir, last := range done {
		gbps := float64(count*msgSize) * 8 / sim.Duration(last).Seconds() / 1e9
		if gbps < 0.9*cfg.BandwidthGbps {
			t.Errorf("direction %d got %.1f Gbit/s under bidirectional load", dir, gbps)
		}
	}
}

func TestIngressContention(t *testing.T) {
	// Two senders converging on one receiver share its ingress: aggregate
	// delivered bandwidth stays ~BandwidthGbps, not 2x.
	eng := sim.NewEngine()
	cfg := quietConfig()
	f := mustNew(eng, 3, cfg)
	const msgSize = 1 << 20
	const count = 32
	var last sim.Time
	f.SetHandler(2, func(m *Message) { last = eng.Now() })
	for i := 0; i < count; i++ {
		f.Send(&Message{Src: 0, Dst: 2, Size: msgSize})
		f.Send(&Message{Src: 1, Dst: 2, Size: msgSize})
	}
	eng.Run()
	gbps := float64(2*count*msgSize) * 8 / sim.Duration(last).Seconds() / 1e9
	if gbps > 1.05*cfg.BandwidthGbps {
		t.Fatalf("incast delivered %.1f Gbit/s, exceeding link rate %.0f", gbps, cfg.BandwidthGbps)
	}
}

func TestSelfSendLoopback(t *testing.T) {
	eng := sim.NewEngine()
	cfg := quietConfig()
	f := mustNew(eng, 1, cfg)
	var at sim.Time
	f.SetHandler(0, func(m *Message) { at = eng.Now() })
	f.Send(&Message{Src: 0, Dst: 0, Size: 1 << 30}) // size must not matter
	eng.Run()
	if at != sim.Time(cfg.LoopbackLatency) {
		t.Fatalf("loopback at %v, want %v", at, cfg.LoopbackLatency)
	}
}

func TestBulkLaneOrderPreservedPerPair(t *testing.T) {
	// The bulk lane is FIFO per direction; only control-lane messages may
	// interleave (multi-queue-pair hardware has no cross-lane ordering).
	eng := sim.NewEngine()
	cfg := quietConfig()
	f := mustNew(eng, 2, cfg)
	var got []int
	f.SetHandler(1, func(m *Message) { got = append(got, m.Meta.(int)) })
	for i := 0; i < 50; i++ {
		f.Send(&Message{Src: 0, Dst: 1, Size: cfg.CtlBypass + int64(1+i%7*100), Meta: i})
	}
	eng.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("delivery order %v", got)
		}
	}
}

func TestControlLaneBypassesBulkQueue(t *testing.T) {
	// A small control message sent after a deep queue of bulk transfers
	// must not wait for them (the CTS-starvation scenario).
	eng := sim.NewEngine()
	cfg := quietConfig()
	f := mustNew(eng, 2, cfg)
	var ctlAt sim.Time
	f.SetHandler(1, func(m *Message) {
		if m.Meta == "ctl" {
			ctlAt = eng.Now()
		}
	})
	for i := 0; i < 64; i++ {
		f.Send(&Message{Src: 0, Dst: 1, Size: 1 << 20})
	}
	f.Send(&Message{Src: 0, Dst: 1, Size: 64, Meta: "ctl"})
	eng.Run()
	if ctlAt == 0 {
		t.Fatal("control message never delivered")
	}
	if d := sim.Duration(ctlAt); d > cfg.Latency+10*sim.Microsecond {
		t.Fatalf("control message delayed %v behind bulk queue", d)
	}
}

func TestStatsConservation(t *testing.T) {
	// Property: for random traffic, total bytes/messages sent == received,
	// and per-rank counters are consistent.
	f := func(pairs []uint16) bool {
		eng := sim.NewEngine()
		fb := mustNew(eng, 4, quietConfig())
		for r := 0; r < 4; r++ {
			fb.SetHandler(r, func(m *Message) {})
		}
		for _, p := range pairs {
			src := int(p % 4)
			dst := int((p / 4) % 4)
			size := int64(p%1000) + 1
			fb.Send(&Message{Src: src, Dst: dst, Size: size})
		}
		eng.Run()
		var sentB, recvB, sentM, recvM uint64
		for r := 0; r < 4; r++ {
			s := fb.Stats(r)
			sentB += s.BytesSent
			recvB += s.BytesReceived
			sentM += s.MsgsSent
			recvM += s.MsgsReceived
		}
		return sentB == recvB && sentM == recvM && sentM == uint64(len(pairs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMissingHandlerPanics(t *testing.T) {
	eng := sim.NewEngine()
	f := mustNew(eng, 2, quietConfig())
	f.Send(&Message{Src: 0, Dst: 1, Size: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("delivery without handler did not panic")
		}
	}()
	eng.Run()
}

func TestSmallMessageLatencyDominatedByWire(t *testing.T) {
	eng := sim.NewEngine()
	cfg := quietConfig()
	f := mustNew(eng, 2, cfg)
	var at sim.Time
	f.SetHandler(1, func(m *Message) { at = eng.Now() })
	f.Send(&Message{Src: 0, Dst: 1, Size: 8})
	eng.Run()
	lat := sim.Duration(at)
	if lat < cfg.Latency || lat > cfg.Latency+cfg.MessageGap+cfg.RxOverhead+sim.Microsecond {
		t.Fatalf("8B latency = %v, implausible for wire latency %v", lat, cfg.Latency)
	}
}

func TestJitterIsDeterministicAcrossFabrics(t *testing.T) {
	run := func() []sim.Time {
		eng := sim.NewEngine()
		cfg := DefaultConfig() // jitter enabled
		f := mustNew(eng, 2, cfg)
		var times []sim.Time
		f.SetHandler(1, func(m *Message) { times = append(times, eng.Now()) })
		for i := 0; i < 20; i++ {
			f.Send(&Message{Src: 0, Dst: 1, Size: 64})
		}
		eng.Run()
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed fabrics diverged")
		}
	}
}

func TestOnTxFiresAtSerializationEnd(t *testing.T) {
	eng := sim.NewEngine()
	cfg := quietConfig()
	f := mustNew(eng, 2, cfg)
	var txAt, rxAt sim.Time
	f.SetHandler(1, func(m *Message) { rxAt = eng.Now() })
	f.Send(&Message{Src: 0, Dst: 1, Size: 1 << 20, OnTx: func() { txAt = eng.Now() }})
	eng.Run()
	wantTx := sim.Time(cfg.MessageGap + f.SerializeTime(1<<20))
	if txAt != wantTx {
		t.Fatalf("OnTx at %v, want %v", txAt, wantTx)
	}
	if rxAt <= txAt {
		t.Fatalf("delivery %v not after OnTx %v", rxAt, txAt)
	}
}
