package fabric

import (
	"fmt"

	"amtlci/internal/metrics"
	"amtlci/internal/sim"
)

// FaultConfig arms deterministic fault injection on a fabric. Probabilities
// apply independently per message to every non-loopback link; Links adds
// scripted per-link degradation on top. All randomness derives from Seed via
// one RNG per (src,dst) pair, so a fault schedule is exactly reproducible —
// and independent of which other links carry traffic.
type FaultConfig struct {
	// Drop, Duplicate, Corrupt and Reorder are per-message probabilities in
	// [0,1]. A dropped message still occupies the transmit engine and fires
	// OnTx (the NIC read it out of memory; the wire lost it). A duplicated
	// message is delivered twice, the copies separated by DupDelay. A
	// corrupted message arrives with Corrupted set (and, when it carries a
	// real payload, one byte flipped in a private copy). A reordered message
	// has ReorderDelay added to its wire latency so later traffic on other
	// lanes overtakes it.
	Drop, Duplicate, Corrupt, Reorder float64
	// ReorderDelay is the extra wire latency of a reordered message.
	// Zero defaults to 4x the fabric's base latency.
	ReorderDelay sim.Duration
	// DupDelay separates the two deliveries of a duplicated message.
	// Zero defaults to the fabric's base latency.
	DupDelay sim.Duration
	// Seed seeds the per-link fault streams. Zero is a valid seed.
	Seed uint64
	// Links scripts additional degradation over virtual-time windows.
	Links []LinkFault
	// Crashes scripts whole-rank fail-stop failures: at At, the rank goes
	// silent. Every message it sends afterwards vanishes at the NIC, and
	// every message addressed to it — including traffic already in flight —
	// is dropped at the destination port. Unlike a Sever, which cuts one
	// directed link, a crash silences all of a rank's links at once.
	Crashes []NodeCrash
}

// NodeCrash schedules one rank's fail-stop failure.
type NodeCrash struct {
	// Rank is the rank that dies.
	Rank int
	// At is the virtual time of the failure; it must be positive (a rank
	// that is dead at t=0 should simply not be part of the job).
	At sim.Time
}

// LinkFault degrades one link (or a wildcard set of links) during a
// virtual-time window: a flap, a bandwidth cut, a latency spike, or a full
// sever. Probabilities add to the global FaultConfig rates while the window
// is open.
type LinkFault struct {
	// Src and Dst select the link; -1 matches any rank.
	Src, Dst int
	// From and Until bound the window. Until == 0 means the fault never
	// lifts.
	From, Until sim.Time
	// Sever drops every message on the link during the window.
	Sever bool
	// Extra per-message probabilities while the window is open.
	Drop, Duplicate, Corrupt, Reorder float64
	// BandwidthFactor scales the link's effective bandwidth: 0.25 quarters
	// it (serialization takes 4x as long). Zero means unchanged.
	BandwidthFactor float64
	// ExtraLatency is added to the wire latency of every message in the
	// window (a latency spike).
	ExtraLatency sim.Duration
}

func (l *LinkFault) matches(src, dst int, now sim.Time) bool {
	if l.Src >= 0 && l.Src != src {
		return false
	}
	if l.Dst >= 0 && l.Dst != dst {
		return false
	}
	if now < l.From {
		return false
	}
	return l.Until == 0 || now < l.Until
}

// Validate reports the first nonsensical parameter, or nil.
func (c *FaultConfig) Validate() error {
	check := func(name string, p float64) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("fabric: fault probability %s=%g outside [0,1]", name, p)
		}
		return nil
	}
	for _, pr := range []struct {
		name string
		p    float64
	}{{"drop", c.Drop}, {"duplicate", c.Duplicate}, {"corrupt", c.Corrupt}, {"reorder", c.Reorder}} {
		if err := check(pr.name, pr.p); err != nil {
			return err
		}
	}
	if c.ReorderDelay < 0 || c.DupDelay < 0 {
		return fmt.Errorf("fabric: negative fault delay (reorder=%v dup=%v)", c.ReorderDelay, c.DupDelay)
	}
	for i := range c.Links {
		l := &c.Links[i]
		if l.Src < -1 || l.Dst < -1 {
			return fmt.Errorf("fabric: link fault %d: bad ranks src=%d dst=%d (-1 is the wildcard)", i, l.Src, l.Dst)
		}
		if l.Until != 0 && l.Until < l.From {
			return fmt.Errorf("fabric: link fault %d: window ends (%v) before it starts (%v)", i, l.Until, l.From)
		}
		for _, pr := range []struct {
			name string
			p    float64
		}{{"drop", l.Drop}, {"duplicate", l.Duplicate}, {"corrupt", l.Corrupt}, {"reorder", l.Reorder}} {
			if err := check(fmt.Sprintf("links[%d].%s", i, pr.name), pr.p); err != nil {
				return err
			}
		}
		if l.BandwidthFactor < 0 || l.BandwidthFactor > 1 {
			return fmt.Errorf("fabric: link fault %d: bandwidth factor %g outside (0,1]", i, l.BandwidthFactor)
		}
		if l.ExtraLatency < 0 {
			return fmt.Errorf("fabric: link fault %d: negative extra latency %v", i, l.ExtraLatency)
		}
	}
	seen := make(map[int]bool, len(c.Crashes))
	for i, cr := range c.Crashes {
		if cr.Rank < 0 {
			return fmt.Errorf("fabric: crash %d: negative rank %d", i, cr.Rank)
		}
		if cr.At <= 0 {
			return fmt.Errorf("fabric: crash %d: time %v not positive", i, cr.At)
		}
		if seen[cr.Rank] {
			return fmt.Errorf("fabric: crash %d: rank %d crashes twice", i, cr.Rank)
		}
		seen[cr.Rank] = true
	}
	return nil
}

// FaultStats counts injected faults across the whole fabric.
type FaultStats struct {
	Dropped      uint64 // messages lost (including severed)
	Severed      uint64 // messages lost to a Sever window specifically
	Duplicated   uint64 // messages delivered twice
	Corrupted    uint64 // messages delivered with Corrupted set
	Reordered    uint64 // messages delayed past later traffic
	Crashes      uint64 // ranks that failed (NodeCrash events fired)
	CrashDropped uint64 // messages lost to a crashed endpoint
}

// injector implements the fault schedule. One RNG per directed link keeps
// every link's fault stream independent of traffic elsewhere; the lazy
// per-link maps are partitioned by source rank, because judge always runs on
// the sending rank's shard and a single shared map would race under a
// sharded domain. Fault counters live in the fabric's metrics registry under
// layer "fabric", rank metrics.StackRank (faults describe the wire, not one
// port).
type injector struct {
	cfg          FaultConfig
	n            int
	rngs         []map[int]*sim.RNG // indexed by src rank, touched only by its shard
	reorderDelay sim.Duration
	dupDelay     sim.Duration

	dropped, severed, duplicated, corrupted, reordered *metrics.Counter
	crashes, crashDropped                              *metrics.Counter
}

func newInjector(cfg FaultConfig, n int, base Config, reg *metrics.Registry) *injector {
	in := &injector{
		cfg: cfg, n: n, rngs: make([]map[int]*sim.RNG, n),
		dropped:    reg.Counter("fabric", "faults_dropped", metrics.StackRank),
		severed:    reg.Counter("fabric", "faults_severed", metrics.StackRank),
		duplicated: reg.Counter("fabric", "faults_duplicated", metrics.StackRank),
		corrupted:  reg.Counter("fabric", "faults_corrupted", metrics.StackRank),
		reordered:  reg.Counter("fabric", "faults_reordered", metrics.StackRank),

		crashes:      reg.Counter("fabric", "crashes", metrics.StackRank),
		crashDropped: reg.Counter("fabric", "faults_crash_dropped", metrics.StackRank),
	}
	in.reorderDelay = cfg.ReorderDelay
	if in.reorderDelay == 0 {
		in.reorderDelay = 4 * base.Latency
	}
	in.dupDelay = cfg.DupDelay
	if in.dupDelay == 0 {
		in.dupDelay = base.Latency
	}
	return in
}

func (in *injector) linkRNG(src, dst int) *sim.RNG {
	m := in.rngs[src]
	if m == nil {
		m = make(map[int]*sim.RNG)
		in.rngs[src] = m
	}
	r := m[dst]
	if r == nil {
		key := src*in.n + dst
		r = sim.NewRNG(in.cfg.Seed ^ (uint64(key)+1)*0x9E3779B97F4A7C15)
		m[dst] = r
	}
	return r
}

// fate is the injector's verdict on one message.
type fate struct {
	drop, sever  bool
	dup, corrupt bool
	reorder      bool
	extra        sim.Duration
	bwFactor     float64
	corruptAt    int
}

func (in *injector) judge(src, dst int, now sim.Time) fate {
	rng := in.linkRNG(src, dst)
	ft := fate{bwFactor: 1}
	drop, dup, corrupt, reorder := in.cfg.Drop, in.cfg.Duplicate, in.cfg.Corrupt, in.cfg.Reorder
	for i := range in.cfg.Links {
		l := &in.cfg.Links[i]
		if !l.matches(src, dst, now) {
			continue
		}
		if l.Sever {
			ft.drop, ft.sever = true, true
		}
		drop += l.Drop
		dup += l.Duplicate
		corrupt += l.Corrupt
		reorder += l.Reorder
		if l.BandwidthFactor > 0 {
			ft.bwFactor *= l.BandwidthFactor
		}
		ft.extra += l.ExtraLatency
	}
	// Always draw all four variates, in a fixed order, so a link's fault
	// stream stays aligned no matter which fault classes are enabled or
	// which windows are open.
	if rng.Float64() < drop {
		ft.drop = true
	}
	if rng.Float64() < dup {
		ft.dup = true
	}
	if rng.Float64() < corrupt {
		ft.corrupt = true
		ft.corruptAt = rng.Intn(1 << 20)
	}
	if rng.Float64() < reorder {
		ft.reorder = true
		ft.extra += in.reorderDelay
	}
	return ft
}

// InstallFaults arms fault injection; it replaces any previous schedule,
// including pending NodeCrash events. Loopback (self-send) traffic is never
// faulted: it models in-process shared-memory delivery, not the wire.
func (f *Fabric) InstallFaults(cfg FaultConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if len(cfg.Crashes) > 0 && f.dom.Shards() > 1 {
		// A crash flips shared state (f.crashed) that every rank's Send
		// consults, and OnCrash listeners freeze cross-rank protocol state
		// directly — simulator conveniences that have no race-free sharded
		// form. Crash chaos stays a serial-engine feature.
		return fmt.Errorf("fabric: NodeCrash schedules require a single-shard domain (have %d shards)", f.dom.Shards())
	}
	for _, cr := range cfg.Crashes {
		if cr.Rank >= len(f.ports) {
			return fmt.Errorf("fabric: crash rank %d out of range (have %d ranks)", cr.Rank, len(f.ports))
		}
		if now := f.ports[cr.Rank].eng.Now(); cr.At < now {
			return fmt.Errorf("fabric: crash of rank %d scheduled in the past (%v < %v)", cr.Rank, cr.At, now)
		}
	}
	f.inj = newInjector(cfg, len(f.ports), f.cfg, f.reg)
	// Pending crash events can only exist on a single-shard domain (the gate
	// above has always held), so every one lives on shard 0's engine.
	for _, ev := range f.crashEvents {
		f.dom.RankEngine(0).Cancel(ev)
	}
	f.crashEvents = f.crashEvents[:0]
	if len(cfg.Crashes) > 0 && f.crashed == nil {
		f.crashed = make([]bool, len(f.ports))
	}
	for _, cr := range cfg.Crashes {
		rank := cr.Rank
		f.crashEvents = append(f.crashEvents, f.ports[rank].eng.At(cr.At, func() { f.crash(rank) }))
	}
	return nil
}

// crash silences rank and notifies the OnCrash listeners in registration
// order (fault injection first, then higher layers that freeze the dead
// rank's local state).
func (f *Fabric) crash(rank int) {
	if f.crashed[rank] {
		return
	}
	f.crashed[rank] = true
	f.inj.crashes.Inc()
	for _, fn := range f.onCrash {
		fn(rank)
	}
}

// OnCrash registers a listener that runs when a rank's scripted NodeCrash
// fires, on the owning engine's goroutine. Layers above the fabric use it to
// freeze the dead rank's local protocol state (a crashed node stops its own
// timers too, not just its NIC).
func (f *Fabric) OnCrash(fn func(rank int)) { f.onCrash = append(f.onCrash, fn) }

// Crashed reports whether rank's scripted crash has fired.
func (f *Fabric) Crashed(rank int) bool {
	return f.crashed != nil && f.crashed[rank]
}

// FaultStats returns fault-injection counters, rebuilt from the metrics
// registry (zero when injection is off).
func (f *Fabric) FaultStats() FaultStats {
	if f.inj == nil {
		return FaultStats{}
	}
	return FaultStats{
		Dropped:      f.inj.dropped.Value(),
		Severed:      f.inj.severed.Value(),
		Duplicated:   f.inj.duplicated.Value(),
		Corrupted:    f.inj.corrupted.Value(),
		Reordered:    f.inj.reordered.Value(),
		Crashes:      f.inj.crashes.Value(),
		CrashDropped: f.inj.crashDropped.Value(),
	}
}
