package fabric

import "amtlci/internal/sim"

// xfer is the pooled per-message transfer state. A message in flight needs
// several deferred steps — egress completion, wire arrival (twice when the
// injector duplicates), receive-engine completion — and expressing each as a
// fresh closure made every Send allocate four to six times. An xfer instead
// carries the message and its timing parameters in reusable fields, with the
// step callbacks bound ONCE when the object is first constructed: recycling
// the xfer recycles its closures, so the steady-state delivery path
// (virtual-payload scheduling in particular) allocates nothing.
//
// Lifecycle: Send acquires an xfer, arms pending with the number of delivery
// callbacks that will run (0 when the injector drops every copy), and the
// last step releases the object back to the fabric's free list *before*
// invoking the handler — the handler may re-enter Send and reuse it, which
// is safe because the finishing callback never touches the xfer again.
type xfer struct {
	f       *Fabric
	m       *Message
	wire    sim.Duration
	ser     sim.Duration
	copies  int
	dupGap  sim.Duration
	pending int

	// Step callbacks, bound to this object once at construction.
	loopback func()
	ctlTx    func()
	ctlRx    func()
	bulkTx   func()
	bulkWire func()
	bulkRx   func()
}

func (f *Fabric) getXfer(m *Message) *xfer {
	var x *xfer
	if n := len(f.xfree); n > 0 {
		x = f.xfree[n-1]
		f.xfree[n-1] = nil
		f.xfree = f.xfree[:n-1]
	} else {
		x = &xfer{f: f}
		x.bind()
	}
	x.m = m
	return x
}

func (f *Fabric) putXfer(x *xfer) {
	x.m = nil
	f.xfree = append(f.xfree, x)
}

// finish retires one delivery copy: the xfer is released before the handler
// runs so a re-entrant Send can reuse it.
func (x *xfer) finish() {
	m := x.m
	x.pending--
	if x.pending <= 0 {
		x.f.putXfer(x)
	}
	x.f.deliver(m)
}

func (x *xfer) bind() {
	f := x.f
	x.loopback = func() {
		if x.m.OnTx != nil {
			x.m.OnTx()
		}
		x.finish()
	}
	// Control lane: egress serialization done; schedule each copy's
	// arrival directly (the control lane bypasses the FIFO engines).
	x.ctlTx = func() {
		if x.m.OnTx != nil {
			x.m.OnTx()
		}
		if x.copies == 0 {
			f.putXfer(x)
			return
		}
		for c := 0; c < x.copies; c++ {
			f.eng.After(x.wire+f.cfg.RxOverhead+sim.Duration(c)*x.dupGap, x.ctlRx)
		}
	}
	x.ctlRx = func() { x.finish() }
	// Bulk lane: the transmit engine has drained the message from memory.
	x.bulkTx = func() {
		f.ports[x.m.Src].txQueuedBytes.Add(-x.m.Size)
		if x.m.OnTx != nil {
			x.m.OnTx()
		}
		if x.copies == 0 {
			f.putXfer(x)
			return
		}
		for c := 0; c < x.copies; c++ {
			f.eng.After(x.wire+sim.Duration(c)*x.dupGap, x.bulkWire)
		}
	}
	x.bulkWire = func() {
		rx := f.ports[x.m.Dst].rx
		rx.Submit(f.cfg.RxOverhead, x.bulkRx)
		if x.ser > 0 {
			rx.Submit(x.ser, nil)
		}
	}
	x.bulkRx = func() { x.finish() }
}

// getCorruptBuf returns an n-byte scratch buffer for a corrupted-payload
// copy, reusing buffers handed back through RecyclePayload when one is big
// enough (frame sizes within a run cluster around a few distinct values, so
// first-fit reuse almost always hits).
func (f *Fabric) getCorruptBuf(n int) []byte {
	for i := len(f.corruptFree) - 1; i >= 0; i-- {
		if cap(f.corruptFree[i]) >= n {
			b := f.corruptFree[i][:n]
			last := len(f.corruptFree) - 1
			f.corruptFree[i] = f.corruptFree[last]
			f.corruptFree[last] = nil
			f.corruptFree = f.corruptFree[:last]
			return b
		}
	}
	return make([]byte, n)
}

// RecyclePayload returns the payload of a corrupted message to the fabric's
// scratch pool. Only the private copy the fabric itself made when corrupting
// a message is eligible — calling it for a pristine message would recycle a
// sender-owned buffer — so callers must pass messages they are discarding on
// the Corrupted flag, as the reliability layer does, and must not touch the
// payload afterwards.
func (f *Fabric) RecyclePayload(m *Message) {
	if !m.Corrupted || m.Payload == nil {
		return
	}
	if len(f.corruptFree) < 32 { // cap retained scratch memory
		f.corruptFree = append(f.corruptFree, m.Payload)
	}
	m.Payload = nil
}
