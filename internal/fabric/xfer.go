package fabric

import "amtlci/internal/sim"

// xfer is the pooled per-message transfer state. A message in flight needs
// several deferred steps — egress completion, wire arrival (twice when the
// injector duplicates), receive-engine completion — and expressing each as a
// fresh closure made every Send allocate four to six times. An xfer instead
// carries the message and its timing parameters in reusable fields, with the
// step callbacks bound ONCE when the object is first constructed: recycling
// the xfer recycles its closures, so the steady-state delivery path
// (virtual-payload scheduling in particular) allocates nothing.
//
// Sharding: the early steps (loopback, ctlTx, bulkTx) run on the source
// rank's shard; the wire hop crosses to the destination shard, where the
// remaining steps (ctlRx, bulkWire, bulkRx) and the final release run. An
// xfer whose endpoints share a shard is recycled through the source port's
// free list as before; a cross-shard xfer is released on the destination
// shard, where touching the source pool would race, so it is simply dropped
// for the GC. remote caches that decision at acquisition time.
//
// Lifecycle: Send acquires an xfer, arms pending with the number of delivery
// callbacks that will run (0 when the injector drops every copy), and the
// last step releases the object back to the source port's free list *before*
// invoking the handler — the handler may re-enter Send and reuse it, which
// is safe because the finishing callback never touches the xfer again.
type xfer struct {
	f       *Fabric
	m       *Message
	src     *port
	remote  bool // endpoints on different shards: do not recycle
	wire    sim.Duration
	ser     sim.Duration
	copies  int
	dupGap  sim.Duration
	pending int

	// Step callbacks, bound to this object once at construction.
	loopback func()
	ctlTx    func()
	ctlRx    func()
	bulkTx   func()
	bulkWire func()
	bulkRx   func()
}

func (f *Fabric) getXfer(m *Message) *xfer {
	src := f.ports[m.Src]
	var x *xfer
	if n := len(src.xfree); n > 0 {
		x = src.xfree[n-1]
		src.xfree[n-1] = nil
		src.xfree = src.xfree[:n-1]
	} else {
		x = &xfer{f: f}
		x.bind()
	}
	x.m = m
	x.src = src
	x.remote = f.dom.ShardOf(m.Src) != f.dom.ShardOf(m.Dst)
	return x
}

func (f *Fabric) putXfer(x *xfer) {
	src := x.src
	x.m = nil
	x.src = nil
	if !x.remote {
		src.xfree = append(src.xfree, x)
	}
}

// finish retires one delivery copy: the xfer is released before the handler
// runs so a re-entrant Send can reuse it.
func (x *xfer) finish() {
	m := x.m
	x.pending--
	if x.pending <= 0 {
		x.f.putXfer(x)
	}
	x.f.deliver(m)
}

// hop schedules fn on the destination rank's shard after delay, measured
// from the source shard's clock. delay always includes one wire latency, so
// cross-shard hops satisfy the domain's lookahead by construction.
func (x *xfer) hop(delay sim.Duration, fn func()) {
	at := x.src.eng.Now().Add(delay)
	if x.remote {
		x.f.dom.CrossAt(x.m.Src, x.m.Dst, at, fn)
	} else {
		x.src.eng.At(at, fn)
	}
}

func (x *xfer) bind() {
	f := x.f
	x.loopback = func() {
		if x.m.OnTx != nil {
			x.m.OnTx()
		}
		x.finish()
	}
	// Control lane: egress serialization done (source shard); schedule each
	// copy's arrival directly (the control lane bypasses the FIFO engines).
	x.ctlTx = func() {
		if x.m.OnTx != nil {
			x.m.OnTx()
		}
		if x.copies == 0 {
			f.putXfer(x)
			return
		}
		for c := 0; c < x.copies; c++ {
			x.hop(x.wire+f.cfg.RxOverhead+sim.Duration(c)*x.dupGap, x.ctlRx)
		}
	}
	x.ctlRx = func() { x.finish() }
	// Bulk lane: the transmit engine has drained the message from memory
	// (source shard).
	x.bulkTx = func() {
		x.src.txQueuedBytes.Add(-x.m.Size)
		if x.m.OnTx != nil {
			x.m.OnTx()
		}
		if x.copies == 0 {
			f.putXfer(x)
			return
		}
		for c := 0; c < x.copies; c++ {
			x.hop(x.wire+sim.Duration(c)*x.dupGap, x.bulkWire)
		}
	}
	// bulkWire onward runs on the destination shard.
	x.bulkWire = func() {
		rx := f.ports[x.m.Dst].rx
		rx.Submit(f.cfg.RxOverhead, x.bulkRx)
		if x.ser > 0 {
			rx.Submit(x.ser, nil)
		}
	}
	x.bulkRx = func() { x.finish() }
}

// getCorruptBuf returns an n-byte scratch buffer for a corrupted-payload
// copy, reusing buffers handed back through RecyclePayload when one is big
// enough (frame sizes within a run cluster around a few distinct values, so
// first-fit reuse almost always hits). The pool is per source port;
// RecyclePayload only refills it for intra-shard messages.
func (p *port) getCorruptBuf(n int) []byte {
	for i := len(p.corruptFree) - 1; i >= 0; i-- {
		if cap(p.corruptFree[i]) >= n {
			b := p.corruptFree[i][:n]
			last := len(p.corruptFree) - 1
			p.corruptFree[i] = p.corruptFree[last]
			p.corruptFree[last] = nil
			p.corruptFree = p.corruptFree[:last]
			return b
		}
	}
	return make([]byte, n)
}

// RecyclePayload returns the payload of a corrupted message to the source
// port's scratch pool. Only the private copy the fabric itself made when
// corrupting a message is eligible — calling it for a pristine message would
// recycle a sender-owned buffer — so callers must pass messages they are
// discarding on the Corrupted flag, as the reliability layer does, and must
// not touch the payload afterwards. Cross-shard payloads are dropped for the
// GC: the recycle runs on the destination shard, where the source pool is
// off-limits.
func (f *Fabric) RecyclePayload(m *Message) {
	if !m.Corrupted || m.Payload == nil {
		return
	}
	if f.dom.ShardOf(m.Src) == f.dom.ShardOf(m.Dst) {
		src := f.ports[m.Src]
		if len(src.corruptFree) < 32 { // cap retained scratch memory
			src.corruptFree = append(src.corruptFree, m.Payload)
		}
	}
	m.Payload = nil
}
