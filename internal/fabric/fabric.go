// Package fabric models the cluster interconnect of the paper's experimental
// platform (SDSC Expanse: Mellanox ConnectX-6 NICs, 2x50 Gb/s HDR InfiniBand,
// Table 1) as a deterministic discrete-event network.
//
// The model is LogGP-like. Every rank owns a full-duplex port with one
// transmit and one receive engine; a message from src to dst is
//
//	tx engine busy:  MessageGap + size/Bandwidth   (egress serialization)
//	wire:            Latency                        (propagation + switching)
//	rx engine busy:  RxOverhead + size/Bandwidth    (ingress serialization)
//
// after which the destination rank's registered handler runs. Egress and
// ingress serialize independently, so a single stream achieves full link
// bandwidth (the engines pipeline) while many-to-one traffic contends at the
// receiver, as on real hardware. CPU-side software costs (posting descriptors,
// matching, callbacks) are deliberately NOT charged here; they belong to the
// communication libraries built on top (internal/mpi, internal/lci), because
// the difference between those software stacks is exactly what the paper
// measures.
package fabric

import (
	"fmt"

	"amtlci/internal/metrics"
	"amtlci/internal/sim"
)

// Config holds the hardware parameters of the interconnect.
type Config struct {
	// Latency is the one-way wire latency (propagation plus switch hops).
	Latency sim.Duration
	// BandwidthGbps is the per-direction bandwidth of one port in Gbit/s.
	// Expanse nodes have 2x50 Gb/s HDR links, i.e. 100 Gbit/s per direction.
	BandwidthGbps float64
	// MessageGap is the per-message occupancy of the transmit engine beyond
	// serialization; 1/MessageGap bounds the achievable message rate.
	MessageGap sim.Duration
	// RxOverhead is the per-message occupancy of the receive engine beyond
	// serialization (descriptor completion, PCIe writeback).
	RxOverhead sim.Duration
	// LoopbackLatency is the delivery latency for self-sends, which bypass
	// the NIC engines entirely.
	LoopbackLatency sim.Duration
	// CtlBypass is the largest message that travels on the control lane:
	// real NICs service many queue pairs round-robin, so a small control
	// message (CTS, handshake, GET DATA) interleaves between the packets of
	// queued bulk transfers instead of waiting behind them. Messages at or
	// below this size bypass the FIFO engines; their (negligible) bandwidth
	// is not charged.
	CtlBypass int64
	// Jitter is the relative sigma of log-normal noise applied to the wire
	// latency of each message. Zero disables noise.
	Jitter float64
	// Seed seeds the fabric's deterministic noise stream.
	Seed uint64

	// NodeGroup, when positive, arranges ranks into groups of NodeGroup
	// consecutive ranks (rank/NodeGroup is the group index) — a two-level
	// fat-tree: ranks in the same group share a leaf switch, cross-group
	// messages traverse the spine and pay GroupExtra on top of Latency.
	// Zero keeps the flat single-switch topology. Grouping also makes the
	// sharded lookahead genuinely heterogeneous: shard pairs with no
	// co-grouped ranks are provably GroupExtra further apart, and
	// LookaheadMatrix widens their synchronization windows accordingly.
	NodeGroup int
	// GroupExtra is the additional one-way wire latency of a cross-group
	// hop. Meaningful only with NodeGroup > 0.
	GroupExtra sim.Duration

	// Metrics is the registry the fabric registers its instruments in
	// (per-port traffic counters, queued bytes, engine utilization, fault
	// counters). Nil gets a private registry, so standalone fabrics work
	// unchanged; stack.Build shares one registry across every layer.
	Metrics *metrics.Registry
}

// Validate reports the first nonsensical hardware parameter, or nil. Zero
// latencies and gaps are legal (an idealized fabric); negative durations,
// non-positive bandwidth and out-of-range jitter are not.
func (c Config) Validate() error {
	switch {
	case c.BandwidthGbps <= 0:
		return fmt.Errorf("fabric: bandwidth must be positive, got %g Gbit/s", c.BandwidthGbps)
	case c.Latency < 0:
		return fmt.Errorf("fabric: negative wire latency %v", c.Latency)
	case c.MessageGap < 0:
		return fmt.Errorf("fabric: negative message gap %v", c.MessageGap)
	case c.RxOverhead < 0:
		return fmt.Errorf("fabric: negative rx overhead %v", c.RxOverhead)
	case c.LoopbackLatency < 0:
		return fmt.Errorf("fabric: negative loopback latency %v", c.LoopbackLatency)
	case c.CtlBypass < 0:
		return fmt.Errorf("fabric: negative control-lane cutoff %d", c.CtlBypass)
	case c.Jitter < 0 || c.Jitter >= 1:
		return fmt.Errorf("fabric: jitter %g outside [0,1)", c.Jitter)
	case c.NodeGroup < 0:
		return fmt.Errorf("fabric: negative node group size %d", c.NodeGroup)
	case c.GroupExtra < 0:
		return fmt.Errorf("fabric: negative cross-group latency %v", c.GroupExtra)
	case c.GroupExtra > 0 && c.NodeGroup <= 0:
		return fmt.Errorf("fabric: cross-group latency %v without a node group size", c.GroupExtra)
	}
	return nil
}

// DefaultConfig returns parameters calibrated against Table 1 and the
// NetPIPE baseline of Figure 2a: ~100 Gbit/s peak one-direction bandwidth,
// ~200 Gbit/s bidirectional, microsecond-scale small-message latency.
func DefaultConfig() Config {
	return Config{
		Latency:         1100 * sim.Nanosecond,
		BandwidthGbps:   100,
		MessageGap:      60 * sim.Nanosecond,
		RxOverhead:      100 * sim.Nanosecond,
		LoopbackLatency: 200 * sim.Nanosecond,
		CtlBypass:       4 << 10,
		Jitter:          0.01,
		Seed:            0x1C992023, // deterministic default
	}
}

// Message is a unit of transfer. Payload may be nil for modeled-size-only
// traffic (large virtual workloads); when non-nil its length must equal Size.
// Meta carries the header of the library that sent the message and is opaque
// to the fabric.
type Message struct {
	Src, Dst int
	Size     int64
	Payload  []byte
	Meta     any
	Sent     sim.Time // stamped by Send

	// Corrupted marks a message damaged in flight by fault injection (the
	// wire-level CRC the model elides would have failed). A reliability
	// layer must discard it; when the payload is real, one byte of a
	// private copy has been flipped.
	Corrupted bool

	// OnTx, if non-nil, runs when the source NIC has finished reading the
	// message out of memory (egress serialization complete). This is the
	// point at which a zero-copy sender may reuse its buffer — the local
	// completion semantics of a rendezvous send.
	OnTx func()
}

// Handler receives delivered messages at a rank.
type Handler func(*Message)

// Network is the transport surface the communication libraries bind to: the
// raw Fabric, or a reliability layer (internal/rel) wrapped around it.
type Network interface {
	Ranks() int
	SetHandler(rank int, h Handler)
	Send(m *Message)
}

// ErrNotifier is implemented by transports that can declare a peer dead (the
// raw lossless Fabric never does). fn runs on the owning engine's goroutine
// when rank's traffic toward peer exhausts its retry budget.
type ErrNotifier interface {
	SetErrHandler(rank int, fn func(peer int, err error))
}

// DebugSend, when non-nil, observes every Send (calibration tooling).
var DebugSend func(*Message)

// PortStats counts traffic through one rank's port.
type PortStats struct {
	MsgsSent      uint64
	MsgsReceived  uint64
	BytesSent     uint64
	BytesReceived uint64
}

type port struct {
	eng     *sim.Engine // owning shard engine: all of this rank's NIC events
	tx, rx  *sim.Proc
	handler Handler

	// rng drives this rank's egress jitter and is drawn in the rank's own
	// send order: per-source streams keep the noise identical no matter how
	// ranks are sharded, where a single fabric-wide stream would entangle
	// every rank's draws through global send interleaving.
	rng *sim.RNG

	// xfree recycles per-message transfer state (xfer) for intra-shard
	// traffic so the steady-state Send/deliver cycle allocates nothing;
	// see xfer.go. Cross-shard xfers are released on the destination shard
	// and deliberately not recycled.
	xfree []*xfer
	// corruptFree recycles the payload copies made for corrupted messages
	// addressed to this rank; a reliability layer that discards a damaged
	// frame hands the buffer back through RecyclePayload.
	corruptFree [][]byte

	msgsSent, msgsRecv   *metrics.Counter
	bytesSent, bytesRecv *metrics.Counter
	// txQueuedBytes tracks payload bytes accepted by Send but not yet read
	// out of memory by the transmit engine (bulk lane back-pressure).
	txQueuedBytes *metrics.Gauge
}

// Fabric connects a fixed set of ranks across the shards of a sim.Domain.
// Rank-addressed methods (Send, SetHandler at runtime) must be called from
// the owning rank's shard; whole-fabric methods (InstallFaults, Stats
// readers) belong to setup and teardown, outside Run.
type Fabric struct {
	dom   sim.Domain
	cfg   Config
	ports []*port
	inj   *injector
	reg   *metrics.Registry

	// group maps rank -> node group when the config defines a grouped
	// topology with a nonzero cross-group latency; nil keeps the flat
	// fast path (Send adds no branch work beyond one nil check).
	group []int32

	// Crash state (nil slices unless a NodeCrash schedule is installed, so
	// the fault-free fast path stays branch-cheap). Crash schedules are
	// serial-only: a crash flips state every rank's Send consults.
	crashed     []bool
	crashEvents []sim.Event
	onCrash     []func(rank int)
}

// New builds a fabric with n ranks on dom — a serial *sim.Engine or a
// sharded *sim.Parallel. It returns a descriptive error for n <= 0 or an
// invalid Config.
func New(dom sim.Domain, n int, cfg Config) (*Fabric, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fabric: need at least one rank, got %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dom.Shards() > 1 && Lookahead(cfg) <= 0 {
		return nil, fmt.Errorf("fabric: sharded domain needs a positive wire latency floor (latency %v, jitter %g)", cfg.Latency, cfg.Jitter)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.New()
	}
	f := &Fabric{dom: dom, cfg: cfg, reg: reg}
	if cfg.NodeGroup > 0 && cfg.GroupExtra > 0 {
		f.group = make([]int32, n)
		for i := range f.group {
			f.group[i] = int32(i / cfg.NodeGroup)
		}
	}
	f.ports = make([]*port, n)
	for i := range f.ports {
		eng := dom.RankEngine(i)
		p := &port{
			eng:           eng,
			tx:            sim.NewProc(eng),
			rx:            sim.NewProc(eng),
			rng:           sim.NewRNG(cfg.Seed + uint64(i)*0x9E3779B97F4A7C15),
			msgsSent:      reg.Counter("fabric", "msgs_sent", i),
			msgsRecv:      reg.Counter("fabric", "msgs_received", i),
			bytesSent:     reg.Counter("fabric", "bytes_sent", i),
			bytesRecv:     reg.Counter("fabric", "bytes_received", i),
			txQueuedBytes: reg.Gauge("fabric", "tx_queued_bytes", i),
		}
		reg.Probe("fabric", "tx_busy", i, true, func() float64 { return p.tx.BusyTime().Seconds() })
		reg.Probe("fabric", "rx_busy", i, true, func() float64 { return p.rx.BusyTime().Seconds() })
		reg.Probe("fabric", "tx_queue_depth", i, false, func() float64 { return float64(p.tx.QueueLen()) })
		f.ports[i] = p
	}
	return f, nil
}

// Lookahead returns the guaranteed minimum cross-rank delivery distance of a
// fabric with this config: the jitter floor of the wire latency. Every
// inter-rank path pays at least one wire hop, and the hop's jitter factor is
// hard-bounded below by sim.JitterFloor, so this is a sound conservative
// lookahead for sharded execution.
func Lookahead(cfg Config) sim.Duration {
	return sim.JitterFloor(cfg.Latency, cfg.Jitter)
}

// LookaheadMatrix returns the per-shard-pair latency floor — the classic
// conservative-PDES distance matrix — for `shards` shards over `ranks`
// ranks assigned by shardOf: entry [i][j] is the guaranteed minimum
// delivery distance from any rank in shard i to any distinct rank in shard
// j. On a flat fabric every entry is Lookahead(cfg); with a grouped
// topology (NodeGroup > 0, GroupExtra > 0) shard pairs that share no node
// group are provably a spine hop apart, so their entry is the jitter floor
// of Latency+GroupExtra and their synchronization windows widen. Shard
// pairs with no rank pairs at all (an empty shard) also get the
// cross-group floor: nothing can travel between them, so any sound bound
// works and the wider one is kept. Diagonal entries get the base floor;
// sharded domains never consult them (same-shard scheduling is direct).
// The result is symmetric because the latency model is.
func LookaheadMatrix(cfg Config, ranks, shards int, shardOf func(rank int) int) [][]sim.Duration {
	base := sim.JitterFloor(cfg.Latency, cfg.Jitter)
	far := base
	if cfg.NodeGroup > 0 && cfg.GroupExtra > 0 {
		far = sim.JitterFloor(cfg.Latency+cfg.GroupExtra, cfg.Jitter)
	}
	m := make([][]sim.Duration, shards)
	for i := range m {
		m[i] = make([]sim.Duration, shards)
		for j := range m[i] {
			m[i][j] = far
		}
		m[i][i] = base
	}
	if far == base {
		return m
	}
	// Heterogeneous case: a shard pair is `base` apart iff some rank pair
	// between them shares a node group. Collect each shard's group set and
	// intersect.
	groups := make([]map[int32]struct{}, shards)
	for i := range groups {
		groups[i] = make(map[int32]struct{})
	}
	for r := 0; r < ranks; r++ {
		s := shardOf(r)
		if s < 0 || s >= shards {
			panic(fmt.Sprintf("fabric: shardOf(%d) = %d outside [0,%d)", r, s, shards))
		}
		groups[s][int32(r/cfg.NodeGroup)] = struct{}{}
	}
	for i := 0; i < shards; i++ {
		for j := i + 1; j < shards; j++ {
			a, b := groups[i], groups[j]
			if len(b) < len(a) {
				a, b = b, a
			}
			for g := range a {
				if _, ok := b[g]; ok {
					m[i][j] = base
					m[j][i] = base
					break
				}
			}
		}
	}
	return m
}

// Metrics returns the registry the fabric's instruments live in.
func (f *Fabric) Metrics() *metrics.Registry { return f.reg }

// Ranks returns the number of ranks.
func (f *Fabric) Ranks() int { return len(f.ports) }

// Config returns the fabric's configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Engine returns the simulation engine of a single-shard fabric. It exists
// for the serial tooling written before domains; sharded fabrics have no
// single engine, so it panics loudly rather than handing back a wrong one.
func (f *Fabric) Engine() *sim.Engine {
	if f.dom.Shards() != 1 {
		panic("fabric: Engine() on a sharded domain; use Domain() or RankEngine(rank)")
	}
	return f.dom.RankEngine(0)
}

// Domain returns the simulation domain the fabric schedules on.
func (f *Fabric) Domain() sim.Domain { return f.dom }

// RankEngine returns the shard engine owning rank.
func (f *Fabric) RankEngine(rank int) *sim.Engine { return f.ports[rank].eng }

// SetHandler installs the delivery handler for rank. Messages arriving at a
// rank without a handler panic: dropped traffic always indicates a bug in a
// communication library.
func (f *Fabric) SetHandler(rank int, h Handler) { f.ports[rank].handler = h }

// SerializeTime returns the wire serialization time for size bytes in one
// direction at the configured bandwidth.
func (f *Fabric) SerializeTime(size int64) sim.Duration {
	if size <= 0 {
		return 0
	}
	// ps/byte = 8 bits / (Gbps * 1e9 bit/s) * 1e12 ps/s = 8000/Gbps.
	return sim.Duration(float64(size) * 8000.0 / f.cfg.BandwidthGbps)
}

// Stats returns traffic counters for rank, rebuilt from the metrics
// registry (the registry is the single source of truth).
func (f *Fabric) Stats(rank int) PortStats {
	p := f.ports[rank]
	return PortStats{
		MsgsSent:      p.msgsSent.Value(),
		MsgsReceived:  p.msgsRecv.Value(),
		BytesSent:     p.bytesSent.Value(),
		BytesReceived: p.bytesRecv.Value(),
	}
}

// TxBusy returns the cumulative occupancy of rank's transmit engine.
func (f *Fabric) TxBusy(rank int) sim.Duration { return f.ports[rank].tx.BusyTime() }

// RxBusy returns the cumulative occupancy of rank's receive engine.
func (f *Fabric) RxBusy(rank int) sim.Duration { return f.ports[rank].rx.BusyTime() }

// Send injects m from src toward m.Dst. The caller is responsible for
// charging its own CPU-side posting cost; Send itself only occupies NIC and
// wire resources. Payload slices are handed over by reference: the sender
// must not mutate a payload after Send, matching zero-copy RDMA semantics.
func (f *Fabric) Send(m *Message) {
	if m.Src < 0 || m.Src >= len(f.ports) || m.Dst < 0 || m.Dst >= len(f.ports) {
		panic(fmt.Sprintf("fabric: bad ranks src=%d dst=%d", m.Src, m.Dst))
	}
	if m.Payload != nil && int64(len(m.Payload)) != m.Size {
		panic(fmt.Sprintf("fabric: payload length %d != size %d", len(m.Payload), m.Size))
	}
	if m.Size < 0 {
		panic("fabric: negative message size")
	}
	src := f.ports[m.Src]
	m.Sent = src.eng.Now()
	if DebugSend != nil {
		DebugSend(m)
	}
	// A crashed endpoint neither transmits nor receives: drop before the
	// traffic counters and before any fault-stream RNG draw, so a crash
	// leaves the surviving links' fault schedules untouched. Messages
	// already in flight when the destination dies are caught in deliver.
	if f.crashed != nil && (f.crashed[m.Src] || f.crashed[m.Dst]) {
		f.inj.crashDropped.Inc()
		return
	}
	src.msgsSent.Inc()
	src.bytesSent.Add(uint64(m.Size))

	x := f.getXfer(m)

	if m.Src == m.Dst {
		x.pending = 1
		src.eng.After(f.cfg.LoopbackLatency, x.loopback)
		return
	}

	lat := f.cfg.Latency
	if f.group != nil && f.group[m.Src] != f.group[m.Dst] {
		lat += f.cfg.GroupExtra
	}
	wire := src.rng.Jitter(lat, f.cfg.Jitter)
	ser := f.SerializeTime(m.Size)

	// Fault injection. A dropped message still charges the transmit engine
	// and fires OnTx — the NIC did its work; the wire lost the packet.
	copies := 1
	var dupGap sim.Duration
	if f.inj != nil {
		ft := f.inj.judge(m.Src, m.Dst, src.eng.Now())
		if ft.bwFactor < 1 {
			ser = sim.Duration(float64(ser) / ft.bwFactor)
		}
		wire += ft.extra
		if ft.reorder {
			f.inj.reordered.Inc()
		}
		if ft.corrupt {
			f.inj.corrupted.Inc()
			m.Corrupted = true
			if m.Payload != nil {
				// Copy before flipping a byte so the sender's buffer stays
				// intact; the copy comes from (and returns to, via
				// RecyclePayload) the fabric's scratch pool.
				p := src.getCorruptBuf(len(m.Payload))
				copy(p, m.Payload)
				p[ft.corruptAt%len(p)] ^= 0xA5
				m.Payload = p
			}
		}
		switch {
		case ft.drop:
			copies = 0
			f.inj.dropped.Inc()
			if ft.sever {
				f.inj.severed.Inc()
			}
		case ft.dup:
			copies = 2
			dupGap = f.inj.dupDelay
			f.inj.duplicated.Inc()
		}
	}

	x.wire, x.ser, x.copies, x.dupGap, x.pending = wire, ser, copies, dupGap, copies

	// Control lane: small messages interleave between bulk packets instead
	// of queueing behind whole transfers (round-robin queue-pair service).
	if m.Size <= f.cfg.CtlBypass {
		src.eng.After(f.cfg.MessageGap+ser, x.ctlTx)
		return
	}

	// Bulk lane, cut-through timing (LogGP): the wire pipelines at packet
	// granularity, so serialization is paid once. The receive engine
	// delivers after its per-message overhead, then stays occupied for the
	// ingress serialization time so that converging senders contend for the
	// port's bandwidth without delaying their own already-arrived bytes.
	src.txQueuedBytes.Add(m.Size)
	src.tx.Submit(f.cfg.MessageGap+ser, x.bulkTx)
}

func (f *Fabric) deliver(m *Message) {
	if f.crashed != nil && f.crashed[m.Dst] {
		f.inj.crashDropped.Inc()
		return
	}
	p := f.ports[m.Dst]
	p.msgsRecv.Inc()
	p.bytesRecv.Add(uint64(m.Size))
	if p.handler == nil {
		panic(fmt.Sprintf("fabric: rank %d has no handler for message from %d", m.Dst, m.Src))
	}
	p.handler(m)
}
