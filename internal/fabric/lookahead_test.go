package fabric

import (
	"testing"

	"amtlci/internal/sim"
)

// groupedConfig is a quiet two-level topology: groups of `group` nodes, an
// extra spine latency between groups.
func groupedConfig(group int, extra sim.Duration) Config {
	c := quietConfig()
	c.NodeGroup = group
	c.GroupExtra = extra
	return c
}

func TestGroupedConfigValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"negative NodeGroup", func(c *Config) { c.NodeGroup = -1 }},
		{"negative GroupExtra", func(c *Config) { c.GroupExtra = -5 }},
		{"GroupExtra without NodeGroup", func(c *Config) { c.GroupExtra = 100; c.NodeGroup = 0 }},
	} {
		cfg := quietConfig()
		tc.mut(&cfg)
		if _, err := New(sim.NewEngine(), 4, cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", tc.name)
		}
	}
}

func TestGroupExtraAppliesAcrossGroupsOnly(t *testing.T) {
	eng := sim.NewEngine()
	cfg := groupedConfig(2, 3000) // ranks {0,1} group 0, {2,3} group 1
	f := mustNew(eng, 4, cfg)
	arrivals := map[int]sim.Time{}
	for r := 0; r < 4; r++ {
		rank := r
		f.SetHandler(rank, func(m *Message) { arrivals[rank] = eng.Now() })
	}
	f.Send(&Message{Src: 0, Dst: 1, Size: 64}) // intra-group
	f.Send(&Message{Src: 2, Dst: 3, Size: 64}) // intra-group, other group
	eng.Run()
	base := arrivals[1]
	if arrivals[3] != base {
		t.Fatalf("intra-group arrivals differ: %v vs %v", base, arrivals[3])
	}
	eng2 := sim.NewEngine()
	f2 := mustNew(eng2, 4, cfg)
	var cross sim.Time
	f2.SetHandler(2, func(m *Message) { cross = eng2.Now() })
	f2.Send(&Message{Src: 0, Dst: 2, Size: 64}) // cross-group
	eng2.Run()
	if want := base + sim.Time(cfg.GroupExtra); cross != want {
		t.Fatalf("cross-group arrival = %v, want intra %v + extra %v", cross, base, cfg.GroupExtra)
	}
}

func TestFlatFabricUnchangedByGroupFields(t *testing.T) {
	// A grouped config where every rank shares one group must reproduce the
	// flat fabric's timings exactly (same RNG draw sequence).
	run := func(cfg Config) []sim.Time {
		eng := sim.NewEngine()
		f := mustNew(eng, 4, cfg)
		var times []sim.Time
		f.SetHandler(1, func(m *Message) { times = append(times, eng.Now()) })
		f.SetHandler(3, func(m *Message) { times = append(times, eng.Now()) })
		for i := 0; i < 10; i++ {
			f.Send(&Message{Src: 0, Dst: 1, Size: 64})
			f.Send(&Message{Src: 2, Dst: 3, Size: 256})
		}
		eng.Run()
		return times
	}
	flat := run(DefaultConfig())
	grouped := DefaultConfig()
	grouped.NodeGroup = 4 // all four ranks in group 0
	grouped.GroupExtra = 7000
	got := run(grouped)
	if len(flat) != len(got) {
		t.Fatalf("arrival counts differ: %d vs %d", len(flat), len(got))
	}
	for i := range flat {
		if flat[i] != got[i] {
			t.Fatalf("arrival %d: flat %v, single-group %v", i, flat[i], got[i])
		}
	}
}

func blockShardOf(ranks, shards int) func(int) int {
	return func(r int) int { return r * shards / ranks }
}

func TestLookaheadMatrixFlat(t *testing.T) {
	cfg := DefaultConfig()
	m := LookaheadMatrix(cfg, 8, 4, blockShardOf(8, 4))
	want := Lookahead(cfg)
	for i := range m {
		for j := range m[i] {
			if m[i][j] != want {
				t.Fatalf("flat matrix [%d][%d] = %v, want uniform %v", i, j, m[i][j], want)
			}
		}
	}
}

func TestLookaheadMatrixGrouped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NodeGroup = 4
	cfg.GroupExtra = 3 * cfg.Latency
	base := sim.JitterFloor(cfg.Latency, cfg.Jitter)
	far := sim.JitterFloor(cfg.Latency+cfg.GroupExtra, cfg.Jitter)
	if far <= base {
		t.Fatal("test topology must separate the floors")
	}
	// 16 ranks, 4 shards of 4, groups of 4: shards align exactly with
	// groups, so every off-diagonal pair is far apart.
	m := LookaheadMatrix(cfg, 16, 4, blockShardOf(16, 4))
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := far
			if i == j {
				want = base
			}
			if m[i][j] != want {
				t.Fatalf("aligned [%d][%d] = %v, want %v", i, j, m[i][j], want)
			}
		}
	}
	// 16 ranks, 2 shards of 8: each shard spans two groups, no sharing —
	// still far. 16 ranks, 2 shards with groups of 8: shard boundary splits
	// a group only if blocks and groups misalign; with groups of 6, ranks
	// 0..5 and 6..11 and 12..15 — shard 0 = ranks 0..7 holds groups {0,1},
	// shard 1 = ranks 8..15 holds groups {1,2}: shared group 1 → base.
	cfg.NodeGroup = 6
	m2 := LookaheadMatrix(cfg, 16, 2, blockShardOf(16, 2))
	if m2[0][1] != base || m2[1][0] != base {
		t.Fatalf("group-straddling pair = %v/%v, want base %v", m2[0][1], m2[1][0], base)
	}
}

func TestLookaheadMatrixEmptyShard(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NodeGroup = 2
	cfg.GroupExtra = 2 * cfg.Latency
	far := sim.JitterFloor(cfg.Latency+cfg.GroupExtra, cfg.Jitter)
	// Map every rank to shard 0; shards 1 and 2 are empty and keep the
	// conservative cross-group floor.
	m := LookaheadMatrix(cfg, 4, 3, func(int) int { return 0 })
	for _, pair := range [][2]int{{1, 2}, {0, 1}, {2, 0}} {
		if m[pair[0]][pair[1]] != far {
			t.Fatalf("empty-shard entry [%d][%d] = %v, want far %v", pair[0], pair[1], m[pair[0]][pair[1]], far)
		}
	}
}

func TestLookaheadMatrixRejectsBadShardOf(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NodeGroup = 2
	cfg.GroupExtra = cfg.Latency
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range shardOf did not panic")
		}
	}()
	LookaheadMatrix(cfg, 4, 2, func(int) int { return 5 })
}

// FuzzLookaheadMatrix checks the matrix against a brute-force reference for
// arbitrary rank→shard assignments: every entry positive, the matrix
// symmetric, and each populated pair equal to the true minimum latency floor
// over its rank pairs.
func FuzzLookaheadMatrix(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(3), uint8(2), uint8(4))
	f.Add(uint64(7), uint8(16), uint8(4), uint8(4), uint8(0))
	f.Add(uint64(42), uint8(5), uint8(7), uint8(1), uint8(9))
	f.Fuzz(func(t *testing.T, assign uint64, ranksB, shardsB, groupB, extraB uint8) {
		ranks := int(ranksB)%16 + 1
		shards := int(shardsB)%8 + 1
		cfg := DefaultConfig()
		cfg.NodeGroup = int(groupB) % 5 // 0 = flat
		cfg.GroupExtra = sim.Duration(extraB) * cfg.Latency / 4
		if cfg.NodeGroup == 0 {
			cfg.GroupExtra = 0
		}
		// Decode an arbitrary assignment from the fuzz word: 3 bits per rank.
		shardOf := func(r int) int { return int(assign>>(uint(r%21)*3)) % shards }

		m := LookaheadMatrix(cfg, ranks, shards, shardOf)

		base := sim.JitterFloor(cfg.Latency, cfg.Jitter)
		far := base
		grouped := cfg.NodeGroup > 0 && cfg.GroupExtra > 0
		if grouped {
			far = sim.JitterFloor(cfg.Latency+cfg.GroupExtra, cfg.Jitter)
		}
		groupOf := func(r int) int {
			if !grouped {
				return 0
			}
			return r / cfg.NodeGroup
		}
		// Brute force: min floor over distinct rank pairs of each shard pair.
		ref := make([][]sim.Duration, shards)
		for i := range ref {
			ref[i] = make([]sim.Duration, shards)
			for j := range ref[i] {
				ref[i][j] = far
			}
			ref[i][i] = base
		}
		for a := 0; a < ranks; a++ {
			for b := 0; b < ranks; b++ {
				if a == b {
					continue
				}
				d := far
				if groupOf(a) == groupOf(b) {
					d = base
				}
				sa, sb := shardOf(a), shardOf(b)
				if sa != sb && d < ref[sa][sb] {
					ref[sa][sb] = d
				}
			}
		}
		for i := 0; i < shards; i++ {
			for j := 0; j < shards; j++ {
				if m[i][j] <= 0 {
					t.Fatalf("entry [%d][%d] = %v, want positive", i, j, m[i][j])
				}
				if m[i][j] != m[j][i] {
					t.Fatalf("asymmetric: [%d][%d]=%v, [%d][%d]=%v", i, j, m[i][j], j, i, m[j][i])
				}
				if m[i][j] != ref[i][j] {
					t.Fatalf("entry [%d][%d] = %v, brute force says %v (ranks=%d shards=%d group=%d)",
						i, j, m[i][j], ref[i][j], ranks, shards, cfg.NodeGroup)
				}
			}
		}
	})
}
