package recover

import (
	"bytes"
	"testing"
)

func TestCkptCodecRoundTrip(t *testing.T) {
	k := Key{Class: 7, Index: 1 << 33}
	flows := []FlowCkpt{
		{Flow: 0, Size: 5, Data: []byte{1, 2, 3, 4, 5}},
		{Flow: 2, Size: 0, Data: nil},
	}
	b := encodeCkpt(k, flows)
	got, gk, owner, err := decodeWire(b)
	if err != nil {
		t.Fatal(err)
	}
	if gk != k || len(got) != len(flows) {
		t.Fatalf("decoded key %+v, %d flows", gk, len(got))
	}
	if owner != -1 {
		t.Fatalf("v1 frame decoded owner %d, want -1 (implied by sender)", owner)
	}
	for i := range flows {
		if got[i].Flow != flows[i].Flow || got[i].Size != flows[i].Size ||
			!bytes.Equal(got[i].Data, flows[i].Data) {
			t.Fatalf("flow %d: got %+v want %+v", i, got[i], flows[i])
		}
	}

	for name, corrupt := range map[string]func([]byte) []byte{
		"short header": func(b []byte) []byte { return b[:ckptHdrLen-1] },
		"bad magic":    func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version":  func(b []byte) []byte { b[2] = 9; return b },
		"trailing":     func(b []byte) []byte { return append(b, 0) },
		"cut flow":     func(b []byte) []byte { return b[:len(b)-1] },
	} {
		mut := corrupt(bytes.Clone(b))
		if _, _, _, err := decodeWire(mut); err == nil {
			t.Errorf("%s: corrupted checkpoint accepted", name)
		}
	}
}

func TestRereplicateCodecRoundTrip(t *testing.T) {
	k := Key{Class: 3, Index: 99}
	flows := []FlowCkpt{
		{Flow: 1, Size: 4, Data: []byte{9, 8, 7, 6}},
		{Flow: 5, Size: 0, Data: nil},
	}
	b := encodeRereplicate(k, flows, 6)
	got, gk, owner, err := decodeWire(b)
	if err != nil {
		t.Fatal(err)
	}
	if gk != k || owner != 6 || len(got) != len(flows) {
		t.Fatalf("decoded key %+v owner %d, %d flows", gk, owner, len(got))
	}
	for i := range flows {
		if got[i].Flow != flows[i].Flow || got[i].Size != flows[i].Size ||
			!bytes.Equal(got[i].Data, flows[i].Data) {
			t.Fatalf("flow %d: got %+v want %+v", i, got[i], flows[i])
		}
	}

	for name, corrupt := range map[string]func([]byte) []byte{
		"short v2 header": func(b []byte) []byte { return b[:ckptHdrLen2-1] },
		"negative owner":  func(b []byte) []byte { b[6] = 0x80; return b },
		"trailing":        func(b []byte) []byte { return append(b, 0) },
		"cut flow":        func(b []byte) []byte { return b[:len(b)-1] },
	} {
		mut := corrupt(bytes.Clone(b))
		if _, _, _, err := decodeWire(mut); err == nil {
			t.Errorf("%s: corrupted v2 checkpoint accepted", name)
		}
	}
}

// reencode rebuilds the frame a successful decode came from, choosing the
// codec by the version byte — the shared invariant both fuzzers check.
func reencode(b []byte, k Key, flows []FlowCkpt, owner int) []byte {
	if b[2] == ckptVersion2 {
		return encodeRereplicate(k, flows, owner)
	}
	return encodeCkpt(k, flows)
}

func FuzzDecodeCheckpoint(f *testing.F) {
	f.Add(encodeCkpt(Key{Class: 1, Index: 2}, []FlowCkpt{{Flow: 0, Size: 3, Data: []byte{7, 8, 9}}}))
	f.Add(encodeCkpt(Key{}, nil))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, ckptHdrLen+ckptFlowLen))
	f.Fuzz(func(t *testing.T, b []byte) {
		flows, k, owner, err := decodeWire(b)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode to the identical bytes.
		if out := reencode(b, k, flows, owner); !bytes.Equal(out, b) {
			t.Fatalf("decode/encode mismatch: in %x out %x", b, out)
		}
	})
}

func FuzzDecodeRereplicate(f *testing.F) {
	f.Add(encodeRereplicate(Key{Class: 1, Index: 2}, []FlowCkpt{{Flow: 0, Size: 3, Data: []byte{7, 8, 9}}}, 4))
	f.Add(encodeRereplicate(Key{}, nil, 0))
	f.Add(encodeRereplicate(Key{Class: -1, Index: 1 << 40}, []FlowCkpt{{Flow: 2, Size: 0}}, 1<<20))
	f.Add([]byte{'C', 'K', ckptVersion2})
	f.Add(bytes.Repeat([]byte{0xFF}, ckptHdrLen2+ckptFlowLen))
	f.Fuzz(func(t *testing.T, b []byte) {
		flows, k, owner, err := decodeWire(b)
		if err != nil {
			return
		}
		if b[2] == ckptVersion2 && owner < 0 {
			t.Fatalf("v2 frame decoded with owner %d", owner)
		}
		if out := reencode(b, k, flows, owner); !bytes.Equal(out, b) {
			t.Fatalf("decode/encode mismatch: in %x out %x", b, out)
		}
	})
}
