package recover

import (
	"bytes"
	"testing"
)

func TestCkptCodecRoundTrip(t *testing.T) {
	k := Key{Class: 7, Index: 1 << 33}
	flows := []FlowCkpt{
		{Flow: 0, Size: 5, Data: []byte{1, 2, 3, 4, 5}},
		{Flow: 2, Size: 0, Data: nil},
	}
	b := encodeCkpt(k, flows)
	got, gk, err := decodeWire(b)
	if err != nil {
		t.Fatal(err)
	}
	if gk != k || len(got) != len(flows) {
		t.Fatalf("decoded key %+v, %d flows", gk, len(got))
	}
	for i := range flows {
		if got[i].Flow != flows[i].Flow || got[i].Size != flows[i].Size ||
			!bytes.Equal(got[i].Data, flows[i].Data) {
			t.Fatalf("flow %d: got %+v want %+v", i, got[i], flows[i])
		}
	}

	for name, corrupt := range map[string]func([]byte) []byte{
		"short header": func(b []byte) []byte { return b[:ckptHdrLen-1] },
		"bad magic":    func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version":  func(b []byte) []byte { b[2] = 9; return b },
		"trailing":     func(b []byte) []byte { return append(b, 0) },
		"cut flow":     func(b []byte) []byte { return b[:len(b)-1] },
	} {
		mut := corrupt(bytes.Clone(b))
		if _, _, err := decodeWire(mut); err == nil {
			t.Errorf("%s: corrupted checkpoint accepted", name)
		}
	}
}

func FuzzDecodeCheckpoint(f *testing.F) {
	f.Add(encodeCkpt(Key{Class: 1, Index: 2}, []FlowCkpt{{Flow: 0, Size: 3, Data: []byte{7, 8, 9}}}))
	f.Add(encodeCkpt(Key{}, nil))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, ckptHdrLen+ckptFlowLen))
	f.Fuzz(func(t *testing.T, b []byte) {
		flows, k, err := decodeWire(b)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode to the identical bytes.
		if out := encodeCkpt(k, flows); !bytes.Equal(out, b) {
			t.Fatalf("decode/encode mismatch: in %x out %x", b, out)
		}
	})
}
