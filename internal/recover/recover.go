// Package recover implements buddy checkpointing for crash recovery: every
// rank streams the output tiles of its completed tasks to a buddy rank (the
// next rank in a ring), so that when a rank dies, its buddy holds both a
// completion marker and a copy of the data for every task the dead rank had
// finished. The recovery orchestrator (internal/parsec) re-maps the dead
// rank's work onto the buddy, restores the checkpointed outputs instead of
// re-executing their producers, and re-executes only the tasks that had not
// reached a checkpoint.
//
// Checkpoints travel as ordinary active messages over the rank's
// communication engine, so they share the wire, the retry budget, and the
// failure detector with the runtime's own traffic. The protocol is
// fire-and-forget: a checkpoint lost in flight with the crash merely forces
// re-execution of that one task — correctness never depends on a checkpoint
// having arrived.
package recover

import (
	"encoding/binary"
	"fmt"

	"amtlci/internal/core"
	"amtlci/internal/metrics"
)

// TagCkpt is the active-message tag checkpoint frames travel on. It is
// disjoint from the runtime's tags (parsec uses small positive tags, the
// backends use 0x7FFF0000 and 1<<24 upward).
const TagCkpt core.Tag = 0x7EC0

// Key names one checkpointed task: the task-class id and the task's index
// within the class (both as the runtime numbers them).
type Key struct {
	Class int32
	Index int64
}

// FlowCkpt is one output flow of a checkpointed task. Data nil with Size 0
// marks a purely-virtual flow (a dependency with no payload); otherwise Data
// holds Size bytes of tile content.
type FlowCkpt struct {
	Flow int32
	Size int64
	Data []byte
}

// Stats summarizes one manager's activity.
type Stats struct {
	// Sent counts checkpoints shipped to the buddy; Bytes their payload.
	Sent  uint64
	Bytes uint64
	// Stored counts checkpoints accepted on behalf of the backed-up peer.
	Stored uint64
	// Bad counts malformed checkpoint frames dropped on arrival.
	Bad uint64
}

// Manager is the per-rank checkpoint store: it holds this rank's own
// checkpoints (presence = the task completed here) plus the checkpoints
// received from the peer this rank backs up.
type Manager struct {
	eng   core.Engine
	buddy int

	local  map[Key][]FlowCkpt
	stored map[Key][]FlowCkpt

	sent, bytes, stored_, bad *metrics.Counter
}

// maxCkptBytes bounds one checkpoint frame; tiles in this simulation are a
// few KiB, so anything larger is a protocol bug.
const maxCkptBytes = 1 << 20

// NewManager builds the manager for e's rank and registers the checkpoint
// tag on the engine. The default buddy is the next rank in the ring.
func NewManager(e core.Engine, mreg *metrics.Registry) *Manager {
	if mreg == nil {
		mreg = metrics.New()
	}
	m := &Manager{
		eng:    e,
		buddy:  (e.Rank() + 1) % e.Size(),
		local:  make(map[Key][]FlowCkpt),
		stored: make(map[Key][]FlowCkpt),

		sent:    mreg.Counter("recover", "ckpt_sent", e.Rank()),
		bytes:   mreg.Counter("recover", "ckpt_bytes", e.Rank()),
		stored_: mreg.Counter("recover", "ckpt_stored", e.Rank()),
		bad:     mreg.Counter("recover", "ckpt_bad", e.Rank()),
	}
	e.TagReg(TagCkpt, m.onCkpt, maxCkptBytes)
	return m
}

// Rank returns the owning rank.
func (m *Manager) Rank() int { return m.eng.Rank() }

// Buddy returns the rank this manager ships its checkpoints to.
func (m *Manager) Buddy() int { return m.buddy }

// SetBuddy redirects future checkpoints — the orchestrator calls it after a
// restart so survivors do not keep shipping to a dead rank.
func (m *Manager) SetBuddy(r int) { m.buddy = r }

// Checkpoint records k's output flows locally and ships a copy to the buddy.
// It must be called on the communication thread. The local store keeps the
// decoded form of the wire frame (not the caller's slices), so the codec is
// exercised on every checkpoint and callers may reuse their buffers.
func (m *Manager) Checkpoint(k Key, flows []FlowCkpt) {
	frame := encodeCkpt(k, flows)
	dec, _, err := decodeWire(frame)
	if err != nil {
		panic(fmt.Sprintf("recover: self-encoded checkpoint undecodable: %v", err))
	}
	m.local[k] = dec
	if m.buddy != m.eng.Rank() {
		m.sent.Inc()
		m.bytes.Add(uint64(len(frame)))
		m.eng.SendAM(TagCkpt, m.buddy, frame)
	}
}

// CheckpointFor records a completion executed away from its owner (work
// stealing): the frame ships to the given destinations — conventionally the
// owner and the owner's buddy, the same two places a home execution would
// have left it — so a restart's done-set scan finds the completion no matter
// which of them survives. A destination equal to this rank stores the copy
// directly. Must be called on the communication thread.
func (m *Manager) CheckpointFor(k Key, flows []FlowCkpt, dsts ...int) {
	frame := encodeCkpt(k, flows)
	dec, _, err := decodeWire(frame)
	if err != nil {
		panic(fmt.Sprintf("recover: self-encoded checkpoint undecodable: %v", err))
	}
	seen := make(map[int]bool, len(dsts))
	for _, d := range dsts {
		if seen[d] {
			continue
		}
		seen[d] = true
		if d == m.eng.Rank() {
			m.stored[k] = dec
			m.stored_.Inc()
			continue
		}
		m.sent.Inc()
		m.bytes.Add(uint64(len(frame)))
		m.eng.SendAM(TagCkpt, d, frame)
	}
}

// Has reports whether k completed here or is stored on behalf of the peer.
func (m *Manager) Has(k Key) bool {
	_, okL := m.local[k]
	_, okS := m.stored[k]
	return okL || okS
}

// Lookup returns k's checkpointed flows, local copies first.
func (m *Manager) Lookup(k Key) ([]FlowCkpt, bool) {
	if fs, ok := m.local[k]; ok {
		return fs, true
	}
	fs, ok := m.stored[k]
	return fs, ok
}

// Stats returns this manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Sent:   m.sent.Value(),
		Bytes:  m.bytes.Value(),
		Stored: m.stored_.Value(),
		Bad:    m.bad.Value(),
	}
}

// onCkpt accepts a checkpoint frame from the peer this rank backs up. The AM
// payload is only valid during the callback, so decodeCkpt's copies are
// load-bearing.
func (m *Manager) onCkpt(_ core.Engine, _ core.Tag, data []byte, _ int) {
	flows, k, err := decodeWire(data)
	if err != nil {
		m.bad.Inc()
		return
	}
	m.stored_.Inc()
	m.stored[k] = flows
}

// Wire format: magic "CK" (2) version (1) class (4) index (8) nflows (2),
// then per flow: flow (4) size (8) dlen (4) data (dlen). dlen 0 with size 0
// is a virtual flow; all integers little-endian.
const (
	ckptMagic0  = 'C'
	ckptMagic1  = 'K'
	ckptVersion = 1
	ckptHdrLen  = 2 + 1 + 4 + 8 + 2
	ckptFlowLen = 4 + 8 + 4
)

func encodeCkpt(k Key, flows []FlowCkpt) []byte {
	n := ckptHdrLen
	for _, f := range flows {
		n += ckptFlowLen + len(f.Data)
	}
	b := make([]byte, 0, n)
	b = append(b, ckptMagic0, ckptMagic1, ckptVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(k.Class))
	b = binary.LittleEndian.AppendUint64(b, uint64(k.Index))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(flows)))
	for _, f := range flows {
		b = binary.LittleEndian.AppendUint32(b, uint32(f.Flow))
		b = binary.LittleEndian.AppendUint64(b, uint64(f.Size))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(f.Data)))
		b = append(b, f.Data...)
	}
	return b
}

// decodeWire parses a checkpoint frame, copying flow data out of b (AM
// payloads do not survive the callback). Anything malformed — short buffer,
// wrong magic or version, negative sizes, trailing garbage — is an error,
// never a panic (fuzzed).
func decodeWire(b []byte) ([]FlowCkpt, Key, error) {
	var k Key
	if len(b) < ckptHdrLen {
		return nil, k, fmt.Errorf("recover: checkpoint truncated: %d bytes, header needs %d", len(b), ckptHdrLen)
	}
	if b[0] != ckptMagic0 || b[1] != ckptMagic1 {
		return nil, k, fmt.Errorf("recover: checkpoint magic %#x%#x", b[0], b[1])
	}
	if b[2] != ckptVersion {
		return nil, k, fmt.Errorf("recover: checkpoint version %d, want %d", b[2], ckptVersion)
	}
	k.Class = int32(binary.LittleEndian.Uint32(b[3:7]))
	k.Index = int64(binary.LittleEndian.Uint64(b[7:15]))
	nflows := int(binary.LittleEndian.Uint16(b[15:17]))
	if k.Index < 0 {
		return nil, k, fmt.Errorf("recover: checkpoint index %d negative", k.Index)
	}
	off := ckptHdrLen
	flows := make([]FlowCkpt, 0, nflows)
	for i := 0; i < nflows; i++ {
		if len(b)-off < ckptFlowLen {
			return nil, k, fmt.Errorf("recover: checkpoint flow %d truncated", i)
		}
		var f FlowCkpt
		f.Flow = int32(binary.LittleEndian.Uint32(b[off : off+4]))
		f.Size = int64(binary.LittleEndian.Uint64(b[off+4 : off+12]))
		dlen := int(int32(binary.LittleEndian.Uint32(b[off+12 : off+16])))
		off += ckptFlowLen
		if f.Size < 0 || dlen < 0 || dlen > len(b)-off {
			return nil, k, fmt.Errorf("recover: checkpoint flow %d data length %d invalid", i, dlen)
		}
		if dlen > 0 {
			f.Data = append([]byte(nil), b[off:off+dlen]...)
		}
		off += dlen
		flows = append(flows, f)
	}
	if off != len(b) {
		return nil, k, fmt.Errorf("recover: checkpoint has %d trailing bytes", len(b)-off)
	}
	return flows, k, nil
}
