// Package recover implements buddy checkpointing for crash recovery: every
// rank streams the output tiles of its completed tasks to a buddy rank (the
// next rank in a ring), so that when a rank dies, its buddy holds both a
// completion marker and a copy of the data for every task the dead rank had
// finished. The recovery orchestrator (internal/parsec) re-maps the dead
// rank's work onto the buddy, restores the checkpointed outputs instead of
// re-executing their producers, and re-executes only the tasks that had not
// reached a checkpoint.
//
// Checkpoints travel as ordinary active messages over the rank's
// communication engine, so they share the wire, the retry budget, and the
// failure detector with the runtime's own traffic. The protocol is
// fire-and-forget: a checkpoint lost in flight with the crash merely forces
// re-execution of that one task — correctness never depends on a checkpoint
// having arrived.
//
// Cascading crashes are survived by keeping the protection invariant ("every
// completion is held at its owner and at one live non-owner") repaired after
// each death:
//
//   - a manager whose failure detector has declared a peer dead stops
//     shipping frames to it (MarkDead — the NIC would drop them anyway, and
//     the ckpt_sent/ckpt_bytes books must not count frames that cannot
//     arrive);
//   - the rank that inherits a dead rank's work adopts the checkpoints it
//     was storing on the dead rank's behalf (AdoptOrphans — they become part
//     of its own protected set, counted by ckpt_orphaned);
//   - a rank whose buddy died re-replicates its checkpoint set to its new
//     buddy over the live ring (Rereplicate/RereplicateAll, counted by
//     ckpt_rereplicated), so the next crash finds a live copy again.
//
// Re-replicated and stolen-completion frames carry an explicit owner rank
// (wire version 2), because the rank a frame arrives FROM is no longer the
// rank whose death orphans it.
package recover

import (
	"encoding/binary"
	"fmt"
	"sort"

	"amtlci/internal/core"
	"amtlci/internal/metrics"
)

// TagCkpt is the active-message tag checkpoint frames travel on. It is
// disjoint from the runtime's tags (parsec uses small positive tags, the
// backends use 0x7FFF0000 and 1<<24 upward). Re-replication frames share the
// tag: they are the same protocol, distinguished by wire version.
const TagCkpt core.Tag = 0x7EC0

// Key names one checkpointed task: the task-class id and the task's index
// within the class (both as the runtime numbers them).
type Key struct {
	Class int32
	Index int64
}

// FlowCkpt is one output flow of a checkpointed task. Data nil with Size 0
// marks a purely-virtual flow (a dependency with no payload); otherwise Data
// holds Size bytes of tile content.
type FlowCkpt struct {
	Flow int32
	Size int64
	Data []byte
}

// Stats summarizes one manager's activity.
type Stats struct {
	// Sent counts checkpoints shipped to live destinations; Bytes their
	// payload. Frames suppressed because the destination is known dead are
	// counted by neither.
	Sent  uint64
	Bytes uint64
	// Stored counts checkpoints accepted from the wire on behalf of a peer.
	Stored uint64
	// Bad counts malformed checkpoint frames dropped on arrival.
	Bad uint64
	// Rereplicated counts checkpoints re-shipped to a new buddy after a
	// death broke the protection pairing.
	Rereplicated uint64
	// Orphaned counts checkpoints this rank adopted from a dead owner.
	Orphaned uint64
}

// Manager is the per-rank checkpoint store: it holds this rank's own
// checkpoints (presence = the task completed here) plus the checkpoints
// received on behalf of peers, tagged with the owning rank so a cascade of
// deaths can re-home them one hop at a time.
type Manager struct {
	eng   core.Engine
	buddy int

	local  map[Key][]FlowCkpt
	stored map[Key][]FlowCkpt
	// owner[k] is the rank whose death orphans stored[k]. Keys in local are
	// always owned by this rank and carry no entry here.
	owner map[Key]int

	// dead[r] marks peers this rank's failure detector has declared gone:
	// frames to them are suppressed instead of counted into sent/bytes.
	dead []bool

	sent, bytes, stored_, bad, rerep, orphaned *metrics.Counter
}

// maxCkptBytes bounds one checkpoint frame; tiles in this simulation are a
// few KiB, so anything larger is a protocol bug.
const maxCkptBytes = 1 << 20

// NewManager builds the manager for e's rank and registers the checkpoint
// tag on the engine. The default buddy is the next rank in the ring.
func NewManager(e core.Engine, mreg *metrics.Registry) *Manager {
	if mreg == nil {
		mreg = metrics.New()
	}
	m := &Manager{
		eng:    e,
		buddy:  (e.Rank() + 1) % e.Size(),
		local:  make(map[Key][]FlowCkpt),
		stored: make(map[Key][]FlowCkpt),
		owner:  make(map[Key]int),
		dead:   make([]bool, e.Size()),

		sent:     mreg.Counter("recover", "ckpt_sent", e.Rank()),
		bytes:    mreg.Counter("recover", "ckpt_bytes", e.Rank()),
		stored_:  mreg.Counter("recover", "ckpt_stored", e.Rank()),
		bad:      mreg.Counter("recover", "ckpt_bad", e.Rank()),
		rerep:    mreg.Counter("recover", "ckpt_rereplicated", e.Rank()),
		orphaned: mreg.Counter("recover", "ckpt_orphaned", e.Rank()),
	}
	e.TagReg(TagCkpt, m.onCkpt, maxCkptBytes)
	return m
}

// Rank returns the owning rank.
func (m *Manager) Rank() int { return m.eng.Rank() }

// Buddy returns the rank this manager ships its checkpoints to.
func (m *Manager) Buddy() int { return m.buddy }

// SetBuddy redirects future checkpoints — the orchestrator calls it after a
// restart so survivors do not keep shipping to a dead rank.
func (m *Manager) SetBuddy(r int) { m.buddy = r }

// MarkDead records this rank's death verdict for peer r: checkpoint and
// re-replication frames aimed at r are suppressed from here on. The verdict
// is permanent — crashed ranks never revive. Idempotent.
func (m *Manager) MarkDead(r int) {
	if r >= 0 && r < len(m.dead) {
		m.dead[r] = true
	}
}

// PeerDead reports whether MarkDead has been called for r.
func (m *Manager) PeerDead(r int) bool { return r >= 0 && r < len(m.dead) && m.dead[r] }

// ship sends one encoded frame to dst unless dst is this rank or known dead,
// booking sent/bytes only for frames that actually hit the wire.
func (m *Manager) ship(dst int, frame []byte) bool {
	if dst == m.eng.Rank() || m.dead[dst] {
		return false
	}
	m.sent.Inc()
	m.bytes.Add(uint64(len(frame)))
	m.eng.SendAM(TagCkpt, dst, frame)
	return true
}

// Checkpoint records k's output flows locally and ships a copy to the buddy
// (skipped without touching the sent/bytes books when the buddy is known
// dead — the NIC would drop the frame). It must be called on the
// communication thread. The local store keeps the decoded form of the wire
// frame (not the caller's slices), so the codec is exercised on every
// checkpoint and callers may reuse their buffers.
func (m *Manager) Checkpoint(k Key, flows []FlowCkpt) {
	frame := encodeCkpt(k, flows)
	dec, _, _, err := decodeWire(frame)
	if err != nil {
		panic(fmt.Sprintf("recover: self-encoded checkpoint undecodable: %v", err))
	}
	m.local[k] = dec
	m.ship(m.buddy, frame)
}

// CheckpointFor records a completion executed away from its owner (work
// stealing): the frame carries the owner rank explicitly (wire v2) and ships
// to the given destinations — conventionally the owner and the owner's
// buddy, the same two places a home execution would have left it — so a
// restart's done-set scan finds the completion no matter which of them
// survives. A destination equal to this rank stores the copy directly;
// known-dead destinations are skipped without touching the books. Must be
// called on the communication thread.
func (m *Manager) CheckpointFor(k Key, flows []FlowCkpt, owner int, dsts ...int) {
	frame := encodeRereplicate(k, flows, owner)
	dec, _, _, err := decodeWire(frame)
	if err != nil {
		panic(fmt.Sprintf("recover: self-encoded checkpoint undecodable: %v", err))
	}
	seen := make(map[int]bool, len(dsts))
	for _, d := range dsts {
		if seen[d] {
			continue
		}
		seen[d] = true
		if d == m.eng.Rank() {
			m.accept(k, dec, owner)
			continue
		}
		m.ship(d, frame)
	}
}

// AdoptOrphans re-homes every checkpoint stored on behalf of the dead owner
// into this rank's own protected set, returning the adopted keys in
// deterministic (Class, Index) order. The orchestrator calls it on the rank
// that inherits the dead rank's work; the caller is expected to follow with
// Rereplicate so the adopted set regains a second live copy.
func (m *Manager) AdoptOrphans(deadOwner int) []Key {
	var keys []Key
	for k, o := range m.owner {
		if o != deadOwner {
			continue
		}
		if _, ok := m.local[k]; !ok {
			m.local[k] = m.stored[k]
		}
		delete(m.stored, k)
		delete(m.owner, k)
		m.orphaned.Inc()
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Class != keys[j].Class {
			return keys[i].Class < keys[j].Class
		}
		return keys[i].Index < keys[j].Index
	})
	return keys
}

// Rereplicate ships this rank's local copies of the given keys to the
// current buddy as owner-stamped (v2) frames, re-establishing protection
// after a death. Keys without a local copy are skipped. Returns the number
// of frames shipped; a buddy that is this rank itself (ring collapsed to
// one) or known dead ships nothing.
func (m *Manager) Rereplicate(keys []Key) int {
	n := 0
	for _, k := range keys {
		flows, ok := m.local[k]
		if !ok {
			continue
		}
		frame := encodeRereplicate(k, flows, m.eng.Rank())
		if m.ship(m.buddy, frame) {
			m.rerep.Inc()
			n++
		}
	}
	return n
}

// RereplicateAll ships this rank's entire local checkpoint set to the
// current buddy in deterministic key order — the full repair a rank performs
// when its buddy dies and a fresh one is assigned.
func (m *Manager) RereplicateAll() int {
	keys := make([]Key, 0, len(m.local))
	for k := range m.local {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Class != keys[j].Class {
			return keys[i].Class < keys[j].Class
		}
		return keys[i].Index < keys[j].Index
	})
	return m.Rereplicate(keys)
}

// Has reports whether k completed here or is stored on behalf of a peer.
func (m *Manager) Has(k Key) bool {
	_, okL := m.local[k]
	_, okS := m.stored[k]
	return okL || okS
}

// Lookup returns k's checkpointed flows, local copies first.
func (m *Manager) Lookup(k Key) ([]FlowCkpt, bool) {
	if fs, ok := m.local[k]; ok {
		return fs, true
	}
	fs, ok := m.stored[k]
	return fs, ok
}

// Stats returns this manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Sent:         m.sent.Value(),
		Bytes:        m.bytes.Value(),
		Stored:       m.stored_.Value(),
		Bad:          m.bad.Value(),
		Rereplicated: m.rerep.Value(),
		Orphaned:     m.orphaned.Value(),
	}
}

// accept files one decoded checkpoint under its owner: this rank's own
// completions (stolen tasks coming home, adopted orphans re-arriving) join
// the local set; anything else is stored on the owner's behalf.
func (m *Manager) accept(k Key, flows []FlowCkpt, owner int) {
	m.stored_.Inc()
	if owner == m.eng.Rank() {
		m.local[k] = flows
		delete(m.stored, k)
		delete(m.owner, k)
		return
	}
	m.stored[k] = flows
	m.owner[k] = owner
}

// onCkpt accepts a checkpoint frame from the wire. The AM payload is only
// valid during the callback, so decodeWire's copies are load-bearing. A v1
// frame's owner is the sender; a v2 frame names its owner explicitly.
func (m *Manager) onCkpt(_ core.Engine, _ core.Tag, data []byte, src int) {
	flows, k, owner, err := decodeWire(data)
	if err != nil {
		m.bad.Inc()
		return
	}
	if owner < 0 {
		owner = src
	}
	if owner >= m.eng.Size() {
		m.bad.Inc()
		return
	}
	m.accept(k, flows, owner)
}

// Wire format v1: magic "CK" (2) version (1) class (4) index (8) nflows (2),
// then per flow: flow (4) size (8) dlen (4) data (dlen). dlen 0 with size 0
// is a virtual flow; all integers little-endian.
//
// Wire format v2 (re-replication / stolen completions) inserts the owner
// rank (4, little-endian, non-negative) between version and class; the flow
// section is identical.
const (
	ckptMagic0   = 'C'
	ckptMagic1   = 'K'
	ckptVersion  = 1
	ckptVersion2 = 2
	ckptHdrLen   = 2 + 1 + 4 + 8 + 2
	ckptHdrLen2  = 2 + 1 + 4 + 4 + 8 + 2
	ckptFlowLen  = 4 + 8 + 4
)

func encodeCkpt(k Key, flows []FlowCkpt) []byte {
	n := ckptHdrLen
	for _, f := range flows {
		n += ckptFlowLen + len(f.Data)
	}
	b := make([]byte, 0, n)
	b = append(b, ckptMagic0, ckptMagic1, ckptVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(k.Class))
	b = binary.LittleEndian.AppendUint64(b, uint64(k.Index))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(flows)))
	return appendFlows(b, flows)
}

// encodeRereplicate builds an owner-stamped v2 frame.
func encodeRereplicate(k Key, flows []FlowCkpt, owner int) []byte {
	n := ckptHdrLen2
	for _, f := range flows {
		n += ckptFlowLen + len(f.Data)
	}
	b := make([]byte, 0, n)
	b = append(b, ckptMagic0, ckptMagic1, ckptVersion2)
	b = binary.LittleEndian.AppendUint32(b, uint32(owner))
	b = binary.LittleEndian.AppendUint32(b, uint32(k.Class))
	b = binary.LittleEndian.AppendUint64(b, uint64(k.Index))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(flows)))
	return appendFlows(b, flows)
}

func appendFlows(b []byte, flows []FlowCkpt) []byte {
	for _, f := range flows {
		b = binary.LittleEndian.AppendUint32(b, uint32(f.Flow))
		b = binary.LittleEndian.AppendUint64(b, uint64(f.Size))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(f.Data)))
		b = append(b, f.Data...)
	}
	return b
}

// decodeWire parses a checkpoint frame, copying flow data out of b (AM
// payloads do not survive the callback). The returned owner is the v2
// owner stamp, or -1 for a v1 frame (owner implied by the sender). Anything
// malformed — short buffer, wrong magic or version, negative sizes or owner,
// trailing garbage — is an error, never a panic (fuzzed).
func decodeWire(b []byte) ([]FlowCkpt, Key, int, error) {
	var k Key
	if len(b) < ckptHdrLen {
		return nil, k, -1, fmt.Errorf("recover: checkpoint truncated: %d bytes, header needs %d", len(b), ckptHdrLen)
	}
	if b[0] != ckptMagic0 || b[1] != ckptMagic1 {
		return nil, k, -1, fmt.Errorf("recover: checkpoint magic %#x%#x", b[0], b[1])
	}
	owner := -1
	rest := b[3:]
	switch b[2] {
	case ckptVersion:
	case ckptVersion2:
		if len(b) < ckptHdrLen2 {
			return nil, k, -1, fmt.Errorf("recover: v2 checkpoint truncated: %d bytes, header needs %d", len(b), ckptHdrLen2)
		}
		o := int32(binary.LittleEndian.Uint32(rest[:4]))
		if o < 0 {
			return nil, k, -1, fmt.Errorf("recover: checkpoint owner %d negative", o)
		}
		owner = int(o)
		rest = rest[4:]
	default:
		return nil, k, -1, fmt.Errorf("recover: checkpoint version %d, want %d or %d", b[2], ckptVersion, ckptVersion2)
	}
	k.Class = int32(binary.LittleEndian.Uint32(rest[:4]))
	k.Index = int64(binary.LittleEndian.Uint64(rest[4:12]))
	nflows := int(binary.LittleEndian.Uint16(rest[12:14]))
	if k.Index < 0 {
		return nil, k, owner, fmt.Errorf("recover: checkpoint index %d negative", k.Index)
	}
	rest = rest[14:]
	flows := make([]FlowCkpt, 0, nflows)
	for i := 0; i < nflows; i++ {
		if len(rest) < ckptFlowLen {
			return nil, k, owner, fmt.Errorf("recover: checkpoint flow %d truncated", i)
		}
		var f FlowCkpt
		f.Flow = int32(binary.LittleEndian.Uint32(rest[:4]))
		f.Size = int64(binary.LittleEndian.Uint64(rest[4:12]))
		dlen := int(int32(binary.LittleEndian.Uint32(rest[12:16])))
		rest = rest[ckptFlowLen:]
		if f.Size < 0 || dlen < 0 || dlen > len(rest) {
			return nil, k, owner, fmt.Errorf("recover: checkpoint flow %d data length %d invalid", i, dlen)
		}
		if dlen > 0 {
			f.Data = append([]byte(nil), rest[:dlen]...)
		}
		rest = rest[dlen:]
		flows = append(flows, f)
	}
	if len(rest) != 0 {
		return nil, k, owner, fmt.Errorf("recover: checkpoint has %d trailing bytes", len(rest))
	}
	return flows, k, owner, nil
}
