package recover_test

import (
	"bytes"
	"testing"

	"amtlci/internal/core/stack"
	"amtlci/internal/metrics"
	recov "amtlci/internal/recover"
)

// buildPair assembles a 2-rank stack with a checkpoint manager on each rank.
func buildPair(t *testing.T, b stack.Backend) (*stack.Stack, []*recov.Manager) {
	t.Helper()
	o := stack.DefaultOptions(b, 2)
	o.Fabric.Jitter = 0
	s := stack.Build(o)
	ms := make([]*recov.Manager, 2)
	for r := 0; r < 2; r++ {
		ms[r] = recov.NewManager(s.Engines[r], s.Metrics)
	}
	return s, ms
}

func TestBuddyRing(t *testing.T) {
	s, ms := buildPair(t, stack.LCI)
	_ = s
	if ms[0].Buddy() != 1 || ms[1].Buddy() != 0 {
		t.Fatalf("buddies = %d, %d; want the ring 1, 0", ms[0].Buddy(), ms[1].Buddy())
	}
	ms[0].SetBuddy(0)
	if ms[0].Buddy() != 0 {
		t.Fatal("SetBuddy did not take")
	}
}

// TestCheckpointReachesBuddy is the protocol's core property on both
// backends: a checkpoint taken at one rank becomes visible at its buddy,
// with the data intact and owned by the buddy (not aliased to the wire).
func TestCheckpointReachesBuddy(t *testing.T) {
	for _, b := range stack.Backends {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			s, ms := buildPair(t, b)
			k := recov.Key{Class: 3, Index: 41}
			tile := bytes.Repeat([]byte{0xC5}, 2048)
			s.Engines[0].Submit(0, func() {
				ms[0].Checkpoint(k, []recov.FlowCkpt{
					{Flow: 0, Size: int64(len(tile)), Data: tile},
					{Flow: 1, Size: 0, Data: nil}, // virtual control flow
				})
			})
			s.Eng.Run()

			if !ms[0].Has(k) {
				t.Fatal("checkpoint not recorded locally at the owner")
			}
			if !ms[1].Has(k) {
				t.Fatal("checkpoint did not reach the buddy")
			}
			flows, ok := ms[1].Lookup(k)
			if !ok || len(flows) != 2 {
				t.Fatalf("buddy lookup = %v, %v; want both flows", flows, ok)
			}
			if !bytes.Equal(flows[0].Data, tile) || flows[0].Size != int64(len(tile)) {
				t.Fatalf("buddy flow 0 corrupted: size %d", flows[0].Size)
			}
			if flows[1].Size != 0 || flows[1].Data != nil {
				t.Fatalf("virtual flow not preserved: %+v", flows[1])
			}
			st0, st1 := ms[0].Stats(), ms[1].Stats()
			if st0.Sent != 1 || st0.Bytes == 0 || st1.Stored != 1 || st1.Bad != 0 {
				t.Fatalf("stats owner %+v buddy %+v", st0, st1)
			}
		})
	}
}

// TestSelfBuddyStoresLocally covers the degenerate single-rank job: with
// buddy == self nothing goes on the wire, but Lookup still works.
func TestSelfBuddyStoresLocally(t *testing.T) {
	o := stack.DefaultOptions(stack.LCI, 1)
	o.Fabric.Jitter = 0
	s := stack.Build(o)
	m := recov.NewManager(s.Engines[0], s.Metrics)
	if m.Buddy() != 0 {
		t.Fatalf("single-rank buddy = %d, want self", m.Buddy())
	}
	k := recov.Key{Class: 1, Index: 7}
	s.Engines[0].Submit(0, func() {
		m.Checkpoint(k, []recov.FlowCkpt{{Flow: 0, Size: 4, Data: []byte{1, 2, 3, 4}}})
	})
	s.Eng.Run()
	if !m.Has(k) {
		t.Fatal("self-buddy checkpoint lost")
	}
	if st := m.Stats(); st.Sent != 0 {
		t.Fatalf("self-buddy shipped %d checkpoints onto the wire", st.Sent)
	}
}

// TestCheckpointCopiesCallerBuffer pins the aliasing contract: Checkpoint
// snapshots the tile, so the caller may keep mutating it afterwards.
func TestCheckpointCopiesCallerBuffer(t *testing.T) {
	s, ms := buildPair(t, stack.MPI)
	k := recov.Key{Class: 0, Index: 0}
	tile := []byte{10, 20, 30, 40}
	s.Engines[0].Submit(0, func() {
		ms[0].Checkpoint(k, []recov.FlowCkpt{{Flow: 0, Size: 4, Data: tile}})
		tile[0] = 99 // mutate after the call
	})
	s.Eng.Run()
	for who, m := range ms {
		flows, ok := m.Lookup(k)
		if !ok {
			t.Fatalf("rank %d missing checkpoint", who)
		}
		if flows[0].Data[0] != 10 {
			t.Fatalf("rank %d checkpoint aliases the caller's tile", who)
		}
	}
}

func TestCkptStatsStartZero(t *testing.T) {
	_, ms := buildPair(t, stack.LCI)
	if st := ms[0].Stats(); st != (recov.Stats{}) {
		t.Fatalf("fresh manager stats = %+v", st)
	}
}

func TestMetricsRegistered(t *testing.T) {
	reg := metrics.New()
	o := stack.DefaultOptions(stack.LCI, 2)
	o.Fabric.Jitter = 0
	o.Metrics = reg
	s := stack.Build(o)
	ms := []*recov.Manager{
		recov.NewManager(s.Engines[0], reg),
		recov.NewManager(s.Engines[1], reg),
	}
	s.Engines[0].Submit(0, func() {
		ms[0].Checkpoint(recov.Key{Class: 2, Index: 5},
			[]recov.FlowCkpt{{Flow: 0, Size: 8, Data: make([]byte, 8)}})
	})
	s.Eng.Run()
	if got := reg.Total("recover", "ckpt_sent"); got != 1 {
		t.Fatalf("registry total ckpt_sent = %v, want 1", got)
	}
	if got := reg.Total("recover", "ckpt_stored"); got != 1 {
		t.Fatalf("registry total ckpt_stored = %v, want 1", got)
	}
}
