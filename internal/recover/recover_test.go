package recover_test

import (
	"bytes"
	"testing"

	"amtlci/internal/core/stack"
	"amtlci/internal/metrics"
	recov "amtlci/internal/recover"
)

// buildPair assembles a 2-rank stack with a checkpoint manager on each rank.
func buildPair(t *testing.T, b stack.Backend) (*stack.Stack, []*recov.Manager) {
	t.Helper()
	o := stack.DefaultOptions(b, 2)
	o.Fabric.Jitter = 0
	s := stack.Build(o)
	ms := make([]*recov.Manager, 2)
	for r := 0; r < 2; r++ {
		ms[r] = recov.NewManager(s.Engines[r], s.Metrics)
	}
	return s, ms
}

func TestBuddyRing(t *testing.T) {
	s, ms := buildPair(t, stack.LCI)
	_ = s
	if ms[0].Buddy() != 1 || ms[1].Buddy() != 0 {
		t.Fatalf("buddies = %d, %d; want the ring 1, 0", ms[0].Buddy(), ms[1].Buddy())
	}
	ms[0].SetBuddy(0)
	if ms[0].Buddy() != 0 {
		t.Fatal("SetBuddy did not take")
	}
}

// TestCheckpointReachesBuddy is the protocol's core property on both
// backends: a checkpoint taken at one rank becomes visible at its buddy,
// with the data intact and owned by the buddy (not aliased to the wire).
func TestCheckpointReachesBuddy(t *testing.T) {
	for _, b := range stack.Backends {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			s, ms := buildPair(t, b)
			k := recov.Key{Class: 3, Index: 41}
			tile := bytes.Repeat([]byte{0xC5}, 2048)
			s.Engines[0].Submit(0, func() {
				ms[0].Checkpoint(k, []recov.FlowCkpt{
					{Flow: 0, Size: int64(len(tile)), Data: tile},
					{Flow: 1, Size: 0, Data: nil}, // virtual control flow
				})
			})
			s.Eng.Run()

			if !ms[0].Has(k) {
				t.Fatal("checkpoint not recorded locally at the owner")
			}
			if !ms[1].Has(k) {
				t.Fatal("checkpoint did not reach the buddy")
			}
			flows, ok := ms[1].Lookup(k)
			if !ok || len(flows) != 2 {
				t.Fatalf("buddy lookup = %v, %v; want both flows", flows, ok)
			}
			if !bytes.Equal(flows[0].Data, tile) || flows[0].Size != int64(len(tile)) {
				t.Fatalf("buddy flow 0 corrupted: size %d", flows[0].Size)
			}
			if flows[1].Size != 0 || flows[1].Data != nil {
				t.Fatalf("virtual flow not preserved: %+v", flows[1])
			}
			st0, st1 := ms[0].Stats(), ms[1].Stats()
			if st0.Sent != 1 || st0.Bytes == 0 || st1.Stored != 1 || st1.Bad != 0 {
				t.Fatalf("stats owner %+v buddy %+v", st0, st1)
			}
		})
	}
}

// TestSelfBuddyStoresLocally covers the degenerate single-rank job: with
// buddy == self nothing goes on the wire, but Lookup still works.
func TestSelfBuddyStoresLocally(t *testing.T) {
	o := stack.DefaultOptions(stack.LCI, 1)
	o.Fabric.Jitter = 0
	s := stack.Build(o)
	m := recov.NewManager(s.Engines[0], s.Metrics)
	if m.Buddy() != 0 {
		t.Fatalf("single-rank buddy = %d, want self", m.Buddy())
	}
	k := recov.Key{Class: 1, Index: 7}
	s.Engines[0].Submit(0, func() {
		m.Checkpoint(k, []recov.FlowCkpt{{Flow: 0, Size: 4, Data: []byte{1, 2, 3, 4}}})
	})
	s.Eng.Run()
	if !m.Has(k) {
		t.Fatal("self-buddy checkpoint lost")
	}
	if st := m.Stats(); st.Sent != 0 {
		t.Fatalf("self-buddy shipped %d checkpoints onto the wire", st.Sent)
	}
}

// TestCheckpointCopiesCallerBuffer pins the aliasing contract: Checkpoint
// snapshots the tile, so the caller may keep mutating it afterwards.
func TestCheckpointCopiesCallerBuffer(t *testing.T) {
	s, ms := buildPair(t, stack.MPI)
	k := recov.Key{Class: 0, Index: 0}
	tile := []byte{10, 20, 30, 40}
	s.Engines[0].Submit(0, func() {
		ms[0].Checkpoint(k, []recov.FlowCkpt{{Flow: 0, Size: 4, Data: tile}})
		tile[0] = 99 // mutate after the call
	})
	s.Eng.Run()
	for who, m := range ms {
		flows, ok := m.Lookup(k)
		if !ok {
			t.Fatalf("rank %d missing checkpoint", who)
		}
		if flows[0].Data[0] != 10 {
			t.Fatalf("rank %d checkpoint aliases the caller's tile", who)
		}
	}
}

func TestCkptStatsStartZero(t *testing.T) {
	_, ms := buildPair(t, stack.LCI)
	if st := ms[0].Stats(); st != (recov.Stats{}) {
		t.Fatalf("fresh manager stats = %+v", st)
	}
}

// buildRing assembles an n-rank stack with a checkpoint manager per rank.
func buildRing(t *testing.T, b stack.Backend, n int) (*stack.Stack, []*recov.Manager) {
	t.Helper()
	o := stack.DefaultOptions(b, n)
	o.Fabric.Jitter = 0
	s := stack.Build(o)
	ms := make([]*recov.Manager, n)
	for r := 0; r < n; r++ {
		ms[r] = recov.NewManager(s.Engines[r], s.Metrics)
	}
	return s, ms
}

// TestCheckpointSkipsDeadBuddy is the regression test for the metrics leak:
// before MarkDead existed, a rank kept shipping checkpoint frames to a
// crashed buddy until the restart called SetBuddy, and ckpt_sent/ckpt_bytes
// counted frames the NIC was dropping. The counters must freeze at the
// moment of the death verdict.
func TestCheckpointSkipsDeadBuddy(t *testing.T) {
	s, ms := buildPair(t, stack.LCI)
	k1 := recov.Key{Class: 0, Index: 1}
	k2 := recov.Key{Class: 0, Index: 2}
	tile := bytes.Repeat([]byte{7}, 512)
	flows := []recov.FlowCkpt{{Flow: 0, Size: int64(len(tile)), Data: tile}}

	s.Engines[0].Submit(0, func() { ms[0].Checkpoint(k1, flows) })
	s.Eng.Run()
	before := ms[0].Stats()
	if before.Sent != 1 || before.Bytes == 0 {
		t.Fatalf("live-buddy checkpoint not booked: %+v", before)
	}

	// The failure detector declares the buddy dead; the next checkpoint must
	// stay local and leave the wire books untouched.
	ms[0].MarkDead(1)
	s.Engines[0].Submit(0, func() { ms[0].Checkpoint(k2, flows) })
	s.Eng.Run()
	after := ms[0].Stats()
	if after.Sent != before.Sent || after.Bytes != before.Bytes {
		t.Fatalf("checkpoint to dead buddy counted: before %+v after %+v", before, after)
	}
	if !ms[0].Has(k2) {
		t.Fatal("local copy lost when the buddy is dead")
	}
	if !ms[0].PeerDead(1) || ms[0].PeerDead(0) {
		t.Fatal("PeerDead view wrong")
	}

	// CheckpointFor skips dead destinations the same way.
	s.Engines[0].Submit(0, func() {
		ms[0].CheckpointFor(recov.Key{Class: 0, Index: 3}, flows, 1, 1)
	})
	s.Eng.Run()
	if st := ms[0].Stats(); st.Sent != after.Sent {
		t.Fatalf("CheckpointFor to dead destination counted: %+v", st)
	}
}

// TestAdoptAndRereplicate walks the repair protocol on a 4-rank ring: rank 1
// checkpoints to its buddy 2, rank 1 "dies", rank 2 adopts the orphans and
// re-replicates them (now owner-stamped as rank 2's) to its buddy 3.
func TestAdoptAndRereplicate(t *testing.T) {
	for _, b := range stack.Backends {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			s, ms := buildRing(t, b, 4)
			k := recov.Key{Class: 2, Index: 17}
			tile := bytes.Repeat([]byte{0xAB}, 256)
			flows := []recov.FlowCkpt{{Flow: 0, Size: int64(len(tile)), Data: tile}}

			s.Engines[1].Submit(0, func() { ms[1].Checkpoint(k, flows) })
			s.Eng.Run()
			if !ms[2].Has(k) {
				t.Fatal("checkpoint did not reach the buddy")
			}

			// Rank 1 dies; rank 2 inherits its work.
			for _, m := range ms {
				m.MarkDead(1)
			}
			var adopted []recov.Key
			s.Engines[2].Submit(0, func() {
				adopted = ms[2].AdoptOrphans(1)
				if n := ms[2].Rereplicate(adopted); n != len(adopted) {
					t.Errorf("re-replicated %d of %d adopted checkpoints", n, len(adopted))
				}
			})
			s.Eng.Run()

			if len(adopted) != 1 || adopted[0] != k {
				t.Fatalf("adopted %v, want [%v]", adopted, k)
			}
			st2 := ms[2].Stats()
			if st2.Orphaned != 1 || st2.Rereplicated != 1 {
				t.Fatalf("rank 2 stats %+v, want 1 orphaned + 1 rereplicated", st2)
			}
			// The copy now lives at rank 3, owned by rank 2: if rank 2 dies
			// next, rank 3 can adopt it in turn (the cascade case).
			if !ms[3].Has(k) {
				t.Fatal("re-replicated checkpoint did not reach the new buddy")
			}
			if got, ok := ms[3].Lookup(k); !ok || !bytes.Equal(got[0].Data, tile) {
				t.Fatal("re-replicated payload corrupted")
			}
			for _, m := range ms {
				m.MarkDead(2)
			}
			var chained []recov.Key
			s.Engines[3].Submit(0, func() { chained = ms[3].AdoptOrphans(2) })
			s.Eng.Run()
			if len(chained) != 1 || chained[0] != k {
				t.Fatalf("chained adoption %v, want [%v]", chained, k)
			}
		})
	}
}

// TestCheckpointForCarriesOwner pins the v2 provenance: a stolen completion
// shipped by a thief lands at the owner's buddy tagged with the OWNER, not
// the thief — so the buddy re-homes it when the owner (not the thief) dies.
func TestCheckpointForCarriesOwner(t *testing.T) {
	s, ms := buildRing(t, stack.LCI, 4)
	k := recov.Key{Class: 5, Index: 8}
	flows := []recov.FlowCkpt{{Flow: 0, Size: 2, Data: []byte{1, 2}}}

	// Rank 3 (the thief) executed a task owned by rank 1; buddy of 1 is 2.
	s.Engines[3].Submit(0, func() { ms[3].CheckpointFor(k, flows, 1, 1, 2) })
	s.Eng.Run()
	if !ms[1].Has(k) || !ms[2].Has(k) {
		t.Fatal("stolen completion missing at owner or owner's buddy")
	}

	// The thief dying must orphan nothing at rank 2...
	s.Engines[2].Submit(0, func() {
		if got := ms[2].AdoptOrphans(3); len(got) != 0 {
			t.Errorf("thief death orphaned %v at the owner's buddy", got)
		}
		// ...while the owner dying orphans exactly the stolen completion.
		if got := ms[2].AdoptOrphans(1); len(got) != 1 || got[0] != k {
			t.Errorf("owner death adoption = %v, want [%v]", got, k)
		}
	})
	s.Eng.Run()

	// At the owner itself the completion joined the LOCAL set (it is the
	// owner's own task), so a buddy-death repair re-replicates it.
	s.Engines[1].Submit(0, func() {
		ms[1].MarkDead(2)
		ms[1].SetBuddy(3)
		if n := ms[1].RereplicateAll(); n != 1 {
			t.Errorf("owner re-replicated %d checkpoints, want 1", n)
		}
	})
	s.Eng.Run()
	if !ms[3].Has(k) {
		t.Fatal("owner's repair did not reach the new buddy")
	}
}

func TestMetricsRegistered(t *testing.T) {
	reg := metrics.New()
	o := stack.DefaultOptions(stack.LCI, 2)
	o.Fabric.Jitter = 0
	o.Metrics = reg
	s := stack.Build(o)
	ms := []*recov.Manager{
		recov.NewManager(s.Engines[0], reg),
		recov.NewManager(s.Engines[1], reg),
	}
	s.Engines[0].Submit(0, func() {
		ms[0].Checkpoint(recov.Key{Class: 2, Index: 5},
			[]recov.FlowCkpt{{Flow: 0, Size: 8, Data: make([]byte, 8)}})
	})
	s.Eng.Run()
	if got := reg.Total("recover", "ckpt_sent"); got != 1 {
		t.Fatalf("registry total ckpt_sent = %v, want 1", got)
	}
	if got := reg.Total("recover", "ckpt_stored"); got != 1 {
		t.Fatalf("registry total ckpt_stored = %v, want 1", got)
	}
}
