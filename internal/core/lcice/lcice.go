// Package lcice is the LCI backend of the PaRSEC communication engine,
// implementing Section 5.3 of the paper:
//
//   - a dedicated progress thread calls LCI progress: it drains hardware
//     completion queues, matches direct traffic, answers rendezvous
//     handshakes, and runs LCI-level completion handlers. Active-message
//     callbacks therefore never block wire progress (§5.3.1);
//   - active messages go through a tag→callback hash table; receive buffers
//     are allocated dynamically by LCI at the destination, with no posted
//     receives and no message matching (§5.3.2);
//   - the put is a specialized handshake (bypassing the AM hash-table
//     lookup) followed by an LCI Direct transfer; sufficiently small data
//     rides inside the handshake itself, skipping the data transfer
//     entirely (§5.3.3);
//   - when the progress thread cannot post a matching Direct receive
//     (LCI back-pressure, ErrRetry), the post is delegated to the
//     communication thread rather than retried in the handler (§5.3.3);
//   - completions are consumed by the communication thread from two FIFO
//     queues — up to five active-message completions, then all bulk-data
//     completions, looping until both drain (§5.3.4).
package lcice

import (
	"errors"
	"fmt"

	"amtlci/internal/buf"
	"amtlci/internal/core"
	"amtlci/internal/lci"
	"amtlci/internal/metrics"
	"amtlci/internal/sim"
)

// Tag-space layout on the LCI endpoint: user AM tags map to themselves,
// the put handshake uses hsTag, and Direct data transfers draw from
// dataTagBase upward (Direct matching is a separate protocol path, but
// keeping the ranges disjoint makes traces readable).
const (
	hsTag       = -2
	dataTagBase = 1 << 24
	// inlineDataTag marks a handshake whose data arrived inside it.
	inlineDataTag = -1
)

// Config holds the backend's structural parameters.
type Config struct {
	// CommWake and ProgWake model the wake-up granularity of the
	// communication and progress threads.
	CommWake sim.Duration
	ProgWake sim.Duration
	// DispatchCost is the per-completion dispatch cost on the communication
	// thread (pop from FIFO, argument setup).
	DispatchCost sim.Duration
	// AMBatch bounds how many active-message completions are processed
	// before the bulk queue gets a turn (five in the paper, §5.3.4).
	AMBatch int
	// EagerPutMax is the largest put payload carried inside the handshake
	// (§5.3.3). It must leave room for the header within the LCI Buffered
	// limit.
	EagerPutMax int64
	// InlineProgress runs LCI progress on the communication thread instead
	// of a dedicated progress thread — an ablation that removes the
	// paper's key structural change (§5.3.1).
	InlineProgress bool

	// NativePut uses the LCI one-sided Putd extension (the paper's §7
	// future work) instead of the handshake-emulated put: one wire
	// transfer, no rendezvous round, no target-side matching.
	NativePut bool

	// ProgressThreads spreads LCI progress over several dedicated threads
	// (another §7 future-work item: "examining the benefits of using
	// multiple communication or progress threads"). Values below 2 keep
	// the paper's single progress thread.
	ProgressThreads int

	// Metrics is the registry the engine registers its instruments in
	// (core.Stats counters, comm/progress-thread utilization, deferred and
	// FIFO queue depths). Nil gets a private registry; stack.Build shares
	// one across every layer.
	Metrics *metrics.Registry
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		CommWake:       150 * sim.Nanosecond,
		ProgWake:       80 * sim.Nanosecond,
		DispatchCost:   90 * sim.Nanosecond,
		AMBatch:        5,
		EagerPutMax:    8 << 10,
		InlineProgress: false,
	}
}

// handle is a callback handle pushed to the shared FIFO queues (§5.3.2:
// "allocated from a memory pool and filled with information specific to the
// active message").
type handle struct {
	run func()
}

// Engine is the per-rank LCI communication engine.
type Engine struct {
	eng *sim.Engine
	rt  *lci.Runtime
	ep  *lci.Endpoint
	cfg Config

	comm *sim.Proc
	prog *sim.Proc

	tags *core.TagTable
	reg  *core.Registry

	amQ   []handle
	bulkQ []handle
	// deferred holds operations that hit ErrRetry and retry on the
	// communication thread (§5.3.3), in issue order.
	deferred []deferredOp

	drainScheduled bool
	progScheduled  bool
	nextDataTag    int32

	// core.Stats counters (metrics registry, layer "lcice").
	amsSent, amsDelivered    *metrics.Counter
	putsStarted, putsDone    *metrics.Counter
	putBytes, deferredEvents *metrics.Counter

	errFn  func(error)
	failed error
	// deadPeers holds ranks evicted after a PeerDeath verdict: traffic
	// toward them is dropped, arrivals from them ignored, while the engine
	// keeps serving the survivors.
	deadPeers map[int]bool
}

// deferredOp is one back-pressured operation awaiting retry; peer records
// the destination so a dead peer's operations can be purged.
type deferredOp struct {
	peer int
	fn   func() error
}

var _ core.Engine = (*Engine)(nil)

// New builds the engine for rank over the LCI runtime rt.
func New(eng *sim.Engine, rt *lci.Runtime, rank int, cfg Config) *Engine {
	if cfg.AMBatch <= 0 {
		panic("lcice: AMBatch must be positive")
	}
	mreg := cfg.Metrics
	if mreg == nil {
		mreg = metrics.New()
	}
	e := &Engine{
		eng:  eng,
		rt:   rt,
		ep:   rt.Endpoint(rank),
		cfg:  cfg,
		comm: sim.NewProc(eng),
		tags: core.NewTagTable(),
		reg:  core.NewRegistry(rank),

		amsSent:        mreg.Counter("lcice", "ams_sent", rank),
		amsDelivered:   mreg.Counter("lcice", "ams_delivered", rank),
		putsStarted:    mreg.Counter("lcice", "puts_started", rank),
		putsDone:       mreg.Counter("lcice", "puts_done", rank),
		putBytes:       mreg.Counter("lcice", "put_bytes", rank),
		deferredEvents: mreg.Counter("lcice", "deferred", rank),
	}
	e.comm.WakeLatency = cfg.CommWake
	if cfg.InlineProgress {
		e.prog = e.comm
	} else {
		e.prog = sim.NewProc(eng)
		e.prog.WakeLatency = cfg.ProgWake
	}
	mreg.Probe("lcice", "comm_busy", rank, true, func() float64 { return e.comm.BusyTime().Seconds() })
	mreg.Probe("lcice", "prog_busy", rank, true, func() float64 { return e.prog.BusyTime().Seconds() })
	mreg.Probe("lcice", "deferred_queue_depth", rank, false, func() float64 { return float64(len(e.deferred)) })
	mreg.Probe("lcice", "am_queue_depth", rank, false, func() float64 { return float64(len(e.amQ)) })
	mreg.Probe("lcice", "bulk_queue_depth", rank, false, func() float64 { return float64(len(e.bulkQ)) })
	e.ep.SetWake(e.scheduleProgress)
	e.ep.SetMsgComp(lci.Handler(e.onMsg))
	e.ep.SetRMAComp(lci.Handler(e.onRMA))
	e.ep.SetErrHandler(func(peer int, err error) {
		werr := fmt.Errorf("lcice rank %d: %w", rank, err)
		var pd core.PeerDeath
		if errors.As(err, &pd) {
			e.evictPeer(pd.DeadPeer(), werr)
			return
		}
		e.fail(peer, werr)
	})
	return e
}

// onRMA handles a one-sided put completion at the target (progress thread):
// the metadata carries the remote-completion tag and callback data.
func (e *Engine) onRMA(r lci.Request) {
	h, err := core.UnmarshalPutHeader(r.Data.Bytes)
	if err != nil {
		// RMA metadata only ever comes from a peer engine, so a malformed
		// header means that peer is broken — abort, don't crash the rank.
		e.fail(r.Rank, fmt.Errorf("lcice rank %d: bad put metadata from %d: %w", e.Rank(), r.Rank, err))
		return
	}
	e.deliverRemoteCompletion(h.RTag, append([]byte(nil), h.RCBData...), r.Rank)
}

// Rank returns this engine's rank.
func (e *Engine) Rank() int { return e.ep.ID() }

// Size returns the job size.
func (e *Engine) Size() int { return e.rt.Size() }

// CommProc returns the communication thread.
func (e *Engine) CommProc() *sim.Proc { return e.comm }

// ProgProc returns the progress thread (the communication thread when
// InlineProgress is set).
func (e *Engine) ProgProc() *sim.Proc { return e.prog }

// Stats returns activity counters, rebuilt from the metrics registry.
func (e *Engine) Stats() core.Stats {
	return core.Stats{
		AMsSent:      e.amsSent.Value(),
		AMsDelivered: e.amsDelivered.Value(),
		PutsStarted:  e.putsStarted.Value(),
		PutsDone:     e.putsDone.Value(),
		PutBytes:     e.putBytes.Value(),
		Deferred:     e.deferredEvents.Value(),
	}
}

// OnError registers the failure handler; the latest registration replaces
// any earlier one, and a nil fn leaves the current handler in place (see
// core.Engine).
func (e *Engine) OnError(fn func(error)) {
	if fn != nil {
		e.errFn = fn
	}
}

// Err returns the first unrecoverable failure, or nil.
func (e *Engine) Err() error { return e.failed }

// notify delivers a failure to the registered handler; with none installed
// the failure panics — silence would be a hang.
func (e *Engine) notify(err error) {
	if e.errFn == nil {
		panic(err)
	}
	e.errFn(err)
}

// fail records the first unrecoverable failure and notifies the handler.
// Deferred operations headed for the offending peer are purged — they can
// never succeed and would otherwise keep the retry queue (and the
// safety-net timer) alive forever. peer < 0 means the failure is not
// attributable to one peer.
func (e *Engine) fail(peer int, err error) {
	if e.failed != nil {
		return
	}
	e.failed = err
	if peer >= 0 {
		e.purgeDeferred(peer)
	}
	e.notify(err)
}

// evictPeer handles a PeerDeath verdict: the dead rank's queued retries are
// purged and all future traffic to or from it is dropped, but the engine
// stays up for the survivors (so a recovery layer can re-map the dead
// rank's work).
func (e *Engine) evictPeer(peer int, err error) {
	if e.failed != nil || e.deadPeers[peer] {
		return
	}
	if e.deadPeers == nil {
		e.deadPeers = make(map[int]bool)
	}
	e.deadPeers[peer] = true
	e.purgeDeferred(peer)
	e.notify(err)
}

// purgeDeferred drops every queued retry headed for peer.
func (e *Engine) purgeDeferred(peer int) {
	kept := e.deferred[:0]
	for _, op := range e.deferred {
		if op.peer == peer {
			continue
		}
		kept = append(kept, op)
	}
	for i := len(kept); i < len(e.deferred); i++ {
		e.deferred[i] = deferredOp{}
	}
	e.deferred = kept
}

// attempt issues op toward peer, honoring back-pressure and the deferred
// queue's FIFO discipline: once one operation has been deferred, every
// later operation queues behind it instead of stealing the resources its
// retry is waiting for (the starvation the §5.3.3 delegation would
// otherwise allow). Safe because in-flight LCI operations complete without
// new engine submissions, so the queue head always eventually succeeds.
func (e *Engine) attempt(peer int, op func() error) {
	if e.failed != nil || e.deadPeers[peer] {
		return
	}
	if len(e.deferred) > 0 {
		e.deferredEvents.Inc()
		e.pushDeferred(peer, op)
		return
	}
	if err := op(); err != nil {
		if err == lci.ErrRetry {
			e.deferredEvents.Inc()
			e.pushDeferred(peer, op)
			return
		}
		e.fail(peer, fmt.Errorf("lcice rank %d: send to %d: %w", e.Rank(), peer, err))
	}
}

// MemReg registers b for remote puts.
func (e *Engine) MemReg(b buf.Buf) core.MemHandle {
	if e.cfg.NativePut {
		return e.memRegNative(b)
	}
	return e.reg.MemReg(b)
}

// MemDereg releases a registration.
func (e *Engine) MemDereg(h core.MemHandle) {
	if e.cfg.NativePut {
		e.memDeregNative(h)
		return
	}
	e.reg.MemDereg(h)
}

// Lookup resolves a local registration.
func (e *Engine) Lookup(h core.MemHandle) buf.Buf { return e.reg.Lookup(h) }

// TagReg inserts the callback into the hash table (§5.3.2); nothing is
// posted — LCI allocates receive buffers dynamically.
func (e *Engine) TagReg(tag core.Tag, cb core.AMCallback, maxLen int64) {
	e.tags.Register(tag, cb, maxLen)
}

// MemReg registers b for remote puts. With NativePut the registration is
// also exposed to the LCI one-sided layer under the same ID, so a remote
// rank can write it directly.
func (e *Engine) memRegNative(b buf.Buf) core.MemHandle {
	h := e.reg.MemReg(b)
	e.ep.RegisterRMA(lci.RMAKey{ID: h.ID}, b)
	return h
}

func (e *Engine) memDeregNative(h core.MemHandle) {
	e.reg.MemDereg(h)
	e.ep.DeregisterRMA(lci.RMAKey{ID: h.ID})
}

// Submit runs fn on the communication thread after charging cost.
func (e *Engine) Submit(cost sim.Duration, fn func()) { e.comm.Submit(cost, fn) }

// SendAM sends an active message using the Immediate or Buffered protocol
// depending on length (§5.3.2), from the communication thread.
func (e *Engine) SendAM(tag core.Tag, remote int, data []byte) {
	b := buf.FromBytes(data)
	e.Submit(e.rt.Config().SendCost(b.Size), func() {
		if e.failed != nil || e.deadPeers[remote] {
			return
		}
		e.sendEagerWithRetry(remote, int(tag), b)
		e.amsSent.Inc()
	})
}

// SendAMMT sends an active message directly from a worker thread. LCI is
// designed for concurrent callers, so the only extra cost is an atomic
// packet reservation — no global lock (§6.4.3).
func (e *Engine) SendAMMT(worker *sim.Proc, tag core.Tag, remote int, data []byte, done func()) {
	b := buf.FromBytes(data)
	cfg := e.rt.Config()
	worker.Submit(cfg.SendCost(b.Size)+cfg.MTSendCost, func() {
		if e.failed == nil && !e.deadPeers[remote] {
			e.sendEagerWithRetry(remote, int(tag), b)
			e.amsSent.Inc()
		}
		if done != nil {
			done()
		}
	})
}

// sendEagerWithRetry issues an Immediate/Buffered send, deferring to the
// communication thread's retry queue on back-pressure.
func (e *Engine) sendEagerWithRetry(remote, tag int, b buf.Buf) {
	e.attempt(remote, func() error { return e.eagerSend(remote, tag, b) })
}

func (e *Engine) eagerSend(remote, tag int, b buf.Buf) error {
	if b.Size <= e.rt.Config().ImmediateMax {
		return e.ep.Sends(remote, tag, b)
	}
	return e.ep.Sendm(remote, tag, b)
}

// Put starts the one-sided transfer: the §5.3.3 handshake emulation by
// default, or the true one-sided Putd when NativePut is set. Must run on
// the communication thread.
func (e *Engine) Put(a core.PutArgs) {
	if e.failed != nil || e.deadPeers[a.Remote] {
		return
	}
	e.putsStarted.Inc()
	e.putBytes.Add(uint64(a.Size))
	local := e.reg.Lookup(a.LReg).Slice(a.LDispl, a.Size)
	cfg := e.rt.Config()

	if e.cfg.NativePut {
		meta := core.PutHeader{RTag: a.RTag, RCBData: a.RCBData}.Marshal()
		comp := lci.Handler(func(lci.Request) {
			e.putsDone.Inc()
			e.pushBulk(handle{run: func() {
				if a.LocalCB != nil {
					a.LocalCB()
				}
			}})
		})
		e.Submit(cfg.PostCost, func() {
			e.attempt(a.Remote, func() error {
				return e.ep.Putd(a.Remote, lci.RMAKey{ID: a.RReg.ID}, a.RDispl,
					local, meta, comp, nil)
			})
		})
		return
	}

	if a.Size <= e.cfg.EagerPutMax {
		// Eager-data optimization: the data rides inside the handshake and
		// the local completion fires as soon as the send is posted.
		hdr := core.PutHeader{
			RReg: a.RReg, RDispl: a.RDispl, Size: a.Size,
			DataTag: inlineDataTag, RTag: a.RTag, RCBData: a.RCBData,
		}.Marshal()
		hb := buf.FromBytes(hdr)
		e.Submit(cfg.SendCost(hb.Size+a.Size), func() {
			e.attempt(a.Remote, func() error {
				if err := e.ep.Sendmx(a.Remote, hsTag, hb, local); err != nil {
					return err
				}
				e.finishEagerPut(a.LocalCB)
				return nil
			})
		})
		return
	}

	e.nextDataTag++
	dataTag := dataTagBase + int(e.nextDataTag)
	hdr := core.PutHeader{
		RReg: a.RReg, RDispl: a.RDispl, Size: a.Size,
		DataTag: int32(dataTag), RTag: a.RTag, RCBData: a.RCBData,
	}.Marshal()
	hb := buf.FromBytes(hdr)
	e.Submit(cfg.SendCost(hb.Size), func() {
		e.attempt(a.Remote, func() error { return e.ep.Sendm(a.Remote, hsTag, hb) })
	})
	// Completion handler runs on the progress thread; it only pushes the
	// callback handle to the bulk FIFO (§5.3.3).
	comp := lci.Handler(func(lci.Request) {
		e.putsDone.Inc()
		e.pushBulk(handle{run: func() {
			if a.LocalCB != nil {
				a.LocalCB()
			}
		}})
	})
	e.Submit(cfg.PostCost, func() {
		e.attempt(a.Remote, func() error { return e.ep.Sendd(a.Remote, dataTag, local, comp, nil) })
	})
}

func (e *Engine) finishEagerPut(localCB func()) {
	e.putsDone.Inc()
	if localCB != nil {
		e.comm.Submit(0, func() {
			if localCB != nil {
				localCB()
			}
		})
	}
}

// onMsg is the LCI message handler, invoked on the progress thread for every
// dynamically-buffered arrival: user active messages and put handshakes.
func (e *Engine) onMsg(r lci.Request) {
	if r.Tag != hsTag {
		// User AM: allocate a callback handle and push it to the AM FIFO
		// (§5.3.2). The hash-table lookup happens here, on the progress
		// thread, so the communication thread only dispatches.
		tag := core.Tag(r.Tag)
		cb, _ := e.tags.Lookup(tag)
		data := r.Data.Bytes
		src := r.Rank
		e.amsDelivered.Inc()
		e.pushAM(handle{run: func() { cb(e, tag, data, src) }})
		return
	}

	// Put handshake: specialized path bypassing the AM hash table (§5.3.3).
	// A handshake from an evicted peer is dropped — its data transfer will
	// never arrive (the fabric silenced the rank), so posting the matching
	// receive would dangle forever.
	if e.deadPeers[r.Rank] {
		return
	}
	h, err := core.UnmarshalPutHeader(r.Data.Bytes)
	if err != nil {
		e.fail(r.Rank, fmt.Errorf("lcice rank %d: bad put handshake from %d: %w", e.Rank(), r.Rank, err))
		return
	}
	target := e.reg.Lookup(h.RReg).Slice(h.RDispl, h.Size)
	src := r.Rank
	rcb := append([]byte(nil), h.RCBData...)

	if h.DataTag == inlineDataTag {
		// Data arrived inside the handshake.
		buf.Copy(target, r.Extra)
		e.deliverRemoteCompletion(h.RTag, rcb, src)
		return
	}

	// §5.3.3: on back-pressure the progress thread must not spin or recurse
	// into progress; attempt delegates the post to the communication
	// thread's retry queue (and keeps it FIFO with earlier deferrals).
	e.attempt(src, func() error {
		return e.ep.Recvd(src, int(h.DataTag), target, lci.Handler(func(lci.Request) {
			e.deliverRemoteCompletion(h.RTag, rcb, src)
		}), nil)
	})
}

// deliverRemoteCompletion pushes the remote-completion callback handle to
// the bulk FIFO for the communication thread.
func (e *Engine) deliverRemoteCompletion(rtag core.Tag, rcbData []byte, src int) {
	cb, _ := e.tags.Lookup(rtag)
	e.pushBulk(handle{run: func() { cb(e, rtag, rcbData, src) }})
}

func (e *Engine) pushAM(h handle) {
	e.amQ = append(e.amQ, h)
	e.scheduleDrain()
}

func (e *Engine) pushBulk(h handle) {
	e.bulkQ = append(e.bulkQ, h)
	e.scheduleDrain()
}

func (e *Engine) pushDeferred(peer int, fn func() error) {
	e.deferred = append(e.deferred, deferredOp{peer: peer, fn: fn})
	e.scheduleDrain()
}

// scheduleProgress arranges an LCI progress pass on the progress thread.
// With ProgressThreads > 1 the pass cost is divided across the extra
// threads — a first-order model of parallel completion-queue polling, the
// paper's §7 future-work item.
func (e *Engine) scheduleProgress() {
	if e.progScheduled {
		return
	}
	e.progScheduled = true
	cost := e.ep.ProgressCost()
	if e.cfg.ProgressThreads > 1 {
		cost /= sim.Duration(e.cfg.ProgressThreads)
	}
	e.prog.Submit(cost, e.runProgress)
}

func (e *Engine) runProgress() {
	e.progScheduled = false
	e.ep.Progress()
	if e.ep.StagedWork() {
		e.scheduleProgress()
	}
}

// scheduleDrain arranges a communication-thread drain pass.
func (e *Engine) scheduleDrain() {
	if e.drainScheduled {
		return
	}
	e.drainScheduled = true
	e.comm.Submit(0, e.drain)
}

// drain implements the §5.3.4 fairness loop: up to AMBatch active-message
// completions, then all bulk completions, repeating until both queues are
// empty. Retry-deferred operations are attempted between rounds.
func (e *Engine) drain() {
	e.drainScheduled = false

	n := len(e.amQ)
	if n > e.cfg.AMBatch {
		n = e.cfg.AMBatch
	}
	for _, h := range e.amQ[:n] {
		h := h
		e.comm.Submit(e.cfg.DispatchCost, h.run)
	}
	e.amQ = append(e.amQ[:0], e.amQ[n:]...)

	for _, h := range e.bulkQ {
		h := h
		e.comm.Submit(e.cfg.DispatchCost, h.run)
	}
	e.bulkQ = e.bulkQ[:0]

	// Retry deferred operations in arrival order. Snapshot first: a retried
	// operation may itself defer follow-up work (pushDeferred during fn),
	// and that new work must land BEHIND the still-unsatisfied retries —
	// rebuilding the queue as [failed retries, then new deferrals] keeps it
	// FIFO by first-deferral time. A non-back-pressure error aborts.
	pend := e.deferred
	e.deferred = nil
	var kept []deferredOp
	for _, op := range pend {
		if e.failed != nil {
			break
		}
		if err := op.fn(); err != nil {
			if err == lci.ErrRetry {
				kept = append(kept, op)
			} else {
				e.fail(op.peer, fmt.Errorf("lcice rank %d: deferred send to %d: %w", e.Rank(), op.peer, err))
			}
		}
	}
	if e.failed == nil {
		e.deferred = append(kept, e.deferred...)
	}

	if len(e.amQ) > 0 || len(e.bulkQ) > 0 {
		// Loop: queue another pass behind the dispatched callbacks.
		e.scheduleDrain()
	} else if len(e.deferred) > 0 {
		// Nothing dispatchable but retries remain: try again shortly rather
		// than spinning (resources free when completions arrive, which
		// wakes us anyway; this is a safety net).
		e.eng.After(sim.Microsecond, e.scheduleDrain)
	}
}
