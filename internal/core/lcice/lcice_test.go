package lcice

import (
	"bytes"
	"testing"

	"amtlci/internal/buf"
	"amtlci/internal/core"
	"amtlci/internal/fabric"
	"amtlci/internal/lci"
	"amtlci/internal/sim"
)

func harness(n int, cfg Config) (*sim.Engine, []*Engine) {
	return harnessLCI(n, cfg, lci.DefaultConfig())
}

// harnessLCI is harness with an explicit LCI library configuration.
func harnessLCI(n int, cfg Config, lcfg lci.Config) (*sim.Engine, []*Engine) {
	eng := sim.NewEngine()
	fc := fabric.DefaultConfig()
	fc.Jitter = 0
	fab, err := fabric.New(eng, n, fc)
	if err != nil {
		panic(err)
	}
	rt := lci.NewRuntime(eng, fab, lcfg)
	engines := make([]*Engine, n)
	for i := range engines {
		engines[i] = New(eng, rt, i, cfg)
	}
	return eng, engines
}

func TestAMBatchFairness(t *testing.T) {
	// §5.3.4: the communication thread processes at most AMBatch (five)
	// active-message completions before giving the bulk queue a turn. Flood
	// both queues and verify bulk work interleaves rather than starving.
	eng, engines := harness(2, DefaultConfig())
	e := engines[1]
	var order []string
	for i := 0; i < 12; i++ {
		e.pushAM(handle{run: func() { order = append(order, "am") }})
	}
	for i := 0; i < 3; i++ {
		e.pushBulk(handle{run: func() { order = append(order, "bulk") }})
	}
	eng.Run()
	if len(order) != 15 {
		t.Fatalf("processed %d items", len(order))
	}
	// The first 5 must be AMs, then the bulk queue drains before the next
	// AM batch.
	for i := 0; i < 5; i++ {
		if order[i] != "am" {
			t.Fatalf("order %v: first batch not AMs", order)
		}
	}
	bulkIdx := -1
	for i, v := range order {
		if v == "bulk" {
			bulkIdx = i
			break
		}
	}
	if bulkIdx != 5 {
		t.Fatalf("order %v: bulk did not run after the first AM batch", order)
	}
}

func TestDeferredOperationsRetry(t *testing.T) {
	// An operation hitting ErrRetry lands on the communication thread's
	// deferred queue and retries until it succeeds (§5.3.3 delegation).
	eng, engines := harness(2, DefaultConfig())
	e := engines[0]
	tries := 0
	e.pushDeferred(1, func() error {
		tries++
		if tries < 3 {
			return lci.ErrRetry
		}
		return nil
	})
	eng.Run()
	if tries != 3 {
		t.Fatalf("deferred op tried %d times, want 3", tries)
	}
}

func TestInlineProgressSharesCommThread(t *testing.T) {
	eng, engines := harness(2, func() Config {
		c := DefaultConfig()
		c.InlineProgress = true
		return c
	}())
	e := engines[0]
	if e.ProgProc() != e.CommProc() {
		t.Fatal("inline progress must reuse the communication thread")
	}
	_ = eng
}

func TestDedicatedProgressThreadSeparate(t *testing.T) {
	_, engines := harness(2, DefaultConfig())
	if engines[0].ProgProc() == engines[0].CommProc() {
		t.Fatal("default configuration must dedicate a progress thread")
	}
}

func TestEagerPutDataRidesHandshake(t *testing.T) {
	// §5.3.3: payloads at or below EagerPutMax travel inside the handshake:
	// exactly one wire message per put (plus none for data), and the local
	// callback fires without waiting for a round trip.
	eng, engines := harness(2, DefaultConfig())
	src, dst := engines[0], engines[1]
	const doneTag core.Tag = 7
	got := 0
	for _, e := range engines {
		e.TagReg(doneTag, func(core.Engine, core.Tag, []byte, int) { got++ }, 64)
	}
	payload := []byte{1, 2, 3, 4}
	target := make([]byte, 4)
	lreg := src.MemReg(buf.FromBytes(payload))
	rreg := dst.MemReg(buf.FromBytes(target))
	src.Submit(0, func() {
		src.Put(core.PutArgs{LReg: lreg, RReg: rreg, Size: 4, Remote: 1, RTag: doneTag})
	})
	eng.Run()
	if got != 1 || target[3] != 4 {
		t.Fatalf("eager put failed: got=%d target=%v", got, target)
	}
	if src.Stats().PutsDone != 1 {
		t.Fatalf("stats %+v", src.Stats())
	}
}

// TestDeferredPutsStayFIFOUnderStarvation cuts the LCI Direct pool to a
// single slot so that every rendezvous put beyond the first hits ErrRetry
// and lands on the communication thread's deferred queue. Sustained
// starvation must drain that queue in FIFO order — no put dropped, none
// reordered, and no freshly issued operation overtaking an older deferral.
func TestDeferredPutsStayFIFOUnderStarvation(t *testing.T) {
	lcfg := lci.DefaultConfig()
	lcfg.MaxDirect = 1
	eng, engines := harnessLCI(2, DefaultConfig(), lcfg)
	src, dst := engines[0], engines[1]
	const nputs = 8
	const size = int64(9000) // > EagerPutMax: forces the rendezvous path
	const doneTag core.Tag = 9
	var order []int
	for _, e := range engines {
		e.TagReg(doneTag, func(_ core.Engine, _ core.Tag, data []byte, _ int) {
			order = append(order, int(data[0]))
		}, 8)
	}
	targets := make([][]byte, nputs)
	payloads := make([][]byte, nputs)
	for i := 0; i < nputs; i++ {
		payloads[i] = make([]byte, size)
		for j := range payloads[i] {
			payloads[i][j] = byte(i*37 + j)
		}
		targets[i] = make([]byte, size)
		lreg := src.MemReg(buf.FromBytes(payloads[i]))
		rreg := dst.MemReg(buf.FromBytes(targets[i]))
		i := i
		src.Submit(0, func() {
			src.Put(core.PutArgs{LReg: lreg, RReg: rreg, Size: size, Remote: 1,
				RTag: doneTag, RCBData: []byte{byte(i)}})
		})
	}
	eng.Run()
	if len(order) != nputs {
		t.Fatalf("%d of %d puts completed: %v", len(order), nputs, order)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order %v is not FIFO", order)
		}
	}
	for i := range targets {
		if !bytes.Equal(targets[i], payloads[i]) {
			t.Fatalf("put %d payload corrupted", i)
		}
	}
	if src.Stats().Deferred == 0 && dst.Stats().Deferred == 0 {
		t.Fatal("Direct-pool starvation never deferred an operation")
	}
}
