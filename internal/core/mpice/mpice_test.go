package mpice

import (
	"testing"

	"amtlci/internal/buf"
	"amtlci/internal/core"
	"amtlci/internal/fabric"
	"amtlci/internal/mpi"
	"amtlci/internal/sim"
)

func harness(n int, cfg Config) (*sim.Engine, []*Engine) {
	eng := sim.NewEngine()
	fc := fabric.DefaultConfig()
	fc.Jitter = 0
	fab, err := fabric.New(eng, n, fc)
	if err != nil {
		panic(err)
	}
	mcfg := mpi.DefaultConfig()
	mcfg.AllowOvertaking = true
	w := mpi.NewWorld(eng, fab, mcfg)
	engines := make([]*Engine, n)
	for i := range engines {
		engines[i] = New(eng, w, i, cfg)
	}
	return eng, engines
}

func regDone(engines []*Engine, tag core.Tag, count *int) {
	for _, e := range engines {
		e.TagReg(tag, func(core.Engine, core.Tag, []byte, int) { *count++ }, 64)
	}
}

func TestTransferCapDefersSendsFIFO(t *testing.T) {
	// §4.2.2: beyond MaxTransfers concurrent transfers, sends are deferred
	// and started in FIFO order as slots free.
	cfg := DefaultConfig()
	cfg.MaxTransfers = 4
	eng, engines := harness(2, cfg)
	src, dst := engines[0], engines[1]
	const doneTag core.Tag = 9
	done := 0
	regDone(engines, doneTag, &done)
	const n = 24
	var lr, rr []core.MemHandle
	for i := 0; i < n; i++ {
		lr = append(lr, src.MemReg(buf.Virtual(128<<10)))
		rr = append(rr, dst.MemReg(buf.Virtual(128<<10)))
	}
	src.Submit(0, func() {
		for i := 0; i < n; i++ {
			i := i
			src.Put(core.PutArgs{LReg: lr[i], RReg: rr[i], Size: 128 << 10, Remote: 1, RTag: doneTag})
		}
	})
	eng.Run()
	if done != n {
		t.Fatalf("completed %d puts, want %d", done, n)
	}
	if src.Stats().Deferred == 0 {
		t.Fatal("no sends deferred despite cap 4")
	}
}

func TestPersistentReceiveCountHonored(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PersistentPerTag = 2
	_, engines := harness(2, cfg)
	e := engines[0]
	before := len(e.amSlots)
	e.TagReg(42, func(core.Engine, core.Tag, []byte, int) {}, 64)
	if got := len(e.amSlots) - before; got != 2 {
		t.Fatalf("registered %d persistent receives, want 2", got)
	}
}

func TestAMOverflowBeyondPersistentReceives(t *testing.T) {
	// More concurrent AMs than persistent receives: the overflow waits in
	// the unexpected queue and is still delivered after re-arms.
	cfg := DefaultConfig()
	cfg.PersistentPerTag = 1
	eng, engines := harness(2, cfg)
	const tag core.Tag = 11
	got := 0
	regDone(engines, tag, &got)
	for i := 0; i < 20; i++ {
		engines[0].SendAM(tag, 1, []byte{byte(i)})
	}
	eng.Run()
	if got != 20 {
		t.Fatalf("delivered %d AMs, want 20", got)
	}
}

func TestGlobalArrayCompaction(t *testing.T) {
	// After a burst completes, the transfer array must shrink back so later
	// Testsome costs reflect only live requests.
	eng, engines := harness(2, DefaultConfig())
	src, dst := engines[0], engines[1]
	const doneTag core.Tag = 13
	done := 0
	regDone(engines, doneTag, &done)
	for i := 0; i < 10; i++ {
		l := src.MemReg(buf.Virtual(64 << 10))
		r := dst.MemReg(buf.Virtual(64 << 10))
		src.Submit(0, func() {
			src.Put(core.PutArgs{LReg: l, RReg: r, Size: 64 << 10, Remote: 1, RTag: doneTag})
		})
	}
	eng.Run()
	if done != 10 {
		t.Fatalf("done = %d", done)
	}
	if n := len(src.xfer); n != 0 {
		t.Fatalf("transfer array holds %d entries after drain", n)
	}
	if n := len(dst.xfer); n != 0 {
		t.Fatalf("target transfer array holds %d entries after drain", n)
	}
}

func TestRMAModeSkipsHandshakeTraffic(t *testing.T) {
	// The RMA put needs no handshake AM and no CTS: total messages for one
	// put drop versus the two-sided emulation.
	msgs := func(useRMA bool) uint64 {
		cfg := DefaultConfig()
		cfg.UseRMA = useRMA
		eng := sim.NewEngine()
		fc := fabric.DefaultConfig()
		fc.Jitter = 0
		fab, err := fabric.New(eng, 2, fc)
		if err != nil {
			panic(err)
		}
		w := mpi.NewWorld(eng, fab, mpi.DefaultConfig())
		var engines []*Engine
		for i := 0; i < 2; i++ {
			engines = append(engines, New(eng, w, i, cfg))
		}
		const doneTag core.Tag = 15
		done := 0
		for _, e := range engines {
			e.TagReg(doneTag, func(core.Engine, core.Tag, []byte, int) { done++ }, 64)
		}
		src, dst := engines[0], engines[1]
		l := src.MemReg(buf.Virtual(1 << 20))
		r := dst.MemReg(buf.Virtual(1 << 20))
		src.Submit(0, func() {
			src.Put(core.PutArgs{LReg: l, RReg: r, Size: 1 << 20, Remote: 1, RTag: doneTag})
		})
		eng.Run()
		if done != 1 {
			t.Fatalf("useRMA=%v: done=%d", useRMA, done)
		}
		return fab.Stats(0).MsgsSent + fab.Stats(1).MsgsSent
	}
	twoSided := msgs(false)
	rma := msgs(true)
	if rma >= twoSided {
		t.Fatalf("RMA used %d messages, two-sided %d; expected fewer", rma, twoSided)
	}
}
