// Package mpice is the MPI backend of the PaRSEC communication engine,
// implementing Section 4.2 of the paper:
//
//   - active messages are received through a fixed number of persistent
//     receives per registered tag (five, §4.2.1), started with wildcard
//     source and re-enabled after each callback;
//   - active messages are sent with blocking eager MPI_Send;
//   - the one-sided put is emulated with two-sided traffic: an active-message
//     handshake tells the target where to receive and on what tag, then a
//     nonblocking send moves the data (§4.2.2);
//   - at most MaxTransfers data transfers are polled concurrently in a
//     global request array; surplus sends are deferred and surplus receives
//     are posted on dynamically allocated requests that are only promoted
//     into the array — and hence only observed — when space frees (§4.2.2);
//   - progress is MPI_Testsome over the whole array, with completion
//     callbacks executed on the same communication thread, so a long
//     callback stalls all further progress (§4.2.3, §4.3).
package mpice

import (
	"errors"
	"fmt"

	"amtlci/internal/buf"
	"amtlci/internal/core"
	"amtlci/internal/metrics"
	"amtlci/internal/mpi"
	"amtlci/internal/sim"
)

// handshakeTag is the engine-internal active-message tag used for put
// handshakes. It occupies persistent-receive slots like any registered tag.
const handshakeTag core.Tag = 0x7FFF0000

// dataTagBase starts the tag range used for put data transfers, disjoint
// from active-message tags.
const dataTagBase = 1 << 24

// Config holds the backend's structural parameters (the values in the paper
// are the defaults; sweeping them is the point of the ablation benches).
type Config struct {
	// PersistentPerTag is the number of persistent receives pre-posted per
	// registered active-message tag.
	PersistentPerTag int
	// MaxTransfers caps concurrently polled data transfers (sends plus
	// receives) in the global request array.
	MaxTransfers int
	// WakeLatency models how long the communication thread takes to notice
	// new work when idle.
	WakeLatency sim.Duration
	// DispatchCost is the fixed cost of dispatching one completion callback
	// (fetching it from the parallel array, argument setup).
	DispatchCost sim.Duration
	// MaxAMLen bounds active-message payloads (buffer size for persistent
	// receives when the caller registers with maxLen 0).
	MaxAMLen int64

	// UseRMA transports put data with MPI_Put on a dynamic window instead
	// of the §4.2.2 two-sided emulation — the option the paper leaves as
	// future work. Remote completion still needs an explicit notification
	// message (standard MPI RMA cannot express it), and every registration
	// pays the dynamic-window attach/detach costs of [25].
	UseRMA bool

	// Metrics is the registry the engine registers its instruments in
	// (core.Stats counters, comm-thread utilization, deferred-queue and
	// transfer-array depth, progress passes). Nil gets a private registry;
	// stack.Build shares one across every layer.
	Metrics *metrics.Registry
}

// DefaultConfig returns the paper's configuration: 5 persistent receives per
// tag and 30 concurrent transfers.
func DefaultConfig() Config {
	return Config{
		PersistentPerTag: 5,
		MaxTransfers:     30,
		WakeLatency:      150 * sim.Nanosecond,
		DispatchCost:     400 * sim.Nanosecond,
		MaxAMLen:         8 << 10,
	}
}

type amSlot struct {
	tag core.Tag
	cb  core.AMCallback
	req *mpi.Request
	b   []byte
}

type xferSlot struct {
	req    *mpi.Request
	done   bool
	isSend bool
	// Send-side: the put's local completion callback.
	// Recv-side: remote-completion dispatch arguments.
	localCB func()
	rtag    core.Tag
	rcbData []byte
	src     int
	dst     int // send-side destination, for dead-peer eviction
	size    int64
}

type pendingKind int8

const (
	pendingSend pendingKind = iota
	pendingPromote
)

type pendingOp struct {
	kind pendingKind
	// pendingSend: everything needed to post the data Isend.
	data    buf.Buf
	dst     int
	dataTag int
	localCB func()
	size    int64
	// pendingPromote: the already-posted dynamic receive to promote.
	slot *xferSlot
}

// Engine is the per-rank MPI communication engine.
type Engine struct {
	eng  *sim.Engine
	w    *mpi.World
	rank *mpi.Rank
	cfg  Config
	comm *sim.Proc

	tags *core.TagTable
	reg  *core.Registry

	amSlots []*amSlot
	xfer    []*xferSlot
	pending []pendingOp

	reqScratch  []*mpi.Request
	slotScratch []any // parallel to reqScratch: *amSlot or *xferSlot

	progressScheduled bool
	nextDataTag       int32

	// core.Stats counters (metrics registry, layer "mpice").
	amsSent, amsDelivered    *metrics.Counter
	putsStarted, putsDone    *metrics.Counter
	putBytes, deferredEvents *metrics.Counter
	progressPasses           *metrics.Counter

	errFn     func(error)
	failed    error
	deadPeers map[int]bool
}

var _ core.Engine = (*Engine)(nil)

// New builds the engine for rank over world w. The engine installs itself as
// the rank's wake target; one engine per rank.
func New(eng *sim.Engine, w *mpi.World, rank int, cfg Config) *Engine {
	if cfg.PersistentPerTag <= 0 || cfg.MaxTransfers <= 0 {
		panic("mpice: PersistentPerTag and MaxTransfers must be positive")
	}
	mreg := cfg.Metrics
	if mreg == nil {
		mreg = metrics.New()
	}
	e := &Engine{
		eng:  eng,
		w:    w,
		rank: w.Rank(rank),
		cfg:  cfg,
		comm: sim.NewProc(eng),
		tags: core.NewTagTable(),
		reg:  core.NewRegistry(rank),

		amsSent:        mreg.Counter("mpice", "ams_sent", rank),
		amsDelivered:   mreg.Counter("mpice", "ams_delivered", rank),
		putsStarted:    mreg.Counter("mpice", "puts_started", rank),
		putsDone:       mreg.Counter("mpice", "puts_done", rank),
		putBytes:       mreg.Counter("mpice", "put_bytes", rank),
		deferredEvents: mreg.Counter("mpice", "deferred", rank),
		progressPasses: mreg.Counter("mpice", "progress_passes", rank),
	}
	mreg.Probe("mpice", "comm_busy", rank, true, func() float64 { return e.comm.BusyTime().Seconds() })
	mreg.Probe("mpice", "deferred_queue_depth", rank, false, func() float64 { return float64(len(e.pending)) })
	mreg.Probe("mpice", "xfer_depth", rank, false, func() float64 { return float64(len(e.xfer)) })
	e.comm.WakeLatency = cfg.WakeLatency
	e.rank.SetWake(e.schedule)
	e.rank.SetErrHandler(func(peer int, err error) {
		werr := fmt.Errorf("mpice rank %d: %w", rank, err)
		var pd core.PeerDeath
		if errors.As(err, &pd) {
			e.evictPeer(pd.DeadPeer(), werr)
			return
		}
		e.fail(peer, werr)
	})
	// The engine registers its put handshake like any other active message
	// (§4.2.2: "The origin process of the put sends an active message...").
	e.TagReg(handshakeTag, e.onHandshake, 0)
	return e
}

// Rank returns this engine's rank.
func (e *Engine) Rank() int { return e.rank.ID() }

// Size returns the job size.
func (e *Engine) Size() int { return e.w.Size() }

// CommProc returns the communication thread.
func (e *Engine) CommProc() *sim.Proc { return e.comm }

// Stats returns activity counters, rebuilt from the metrics registry.
func (e *Engine) Stats() core.Stats {
	return core.Stats{
		AMsSent:      e.amsSent.Value(),
		AMsDelivered: e.amsDelivered.Value(),
		PutsStarted:  e.putsStarted.Value(),
		PutsDone:     e.putsDone.Value(),
		PutBytes:     e.putBytes.Value(),
		Deferred:     e.deferredEvents.Value(),
	}
}

// OnError registers the failure handler; the latest registration wins and a
// nil fn is ignored (core.Engine semantics).
func (e *Engine) OnError(fn func(error)) {
	if fn != nil {
		e.errFn = fn
	}
}

// Err returns the first unrecoverable failure, or nil.
func (e *Engine) Err() error { return e.failed }

// notify hands err to the registered handler, or panics without one —
// silence would be a hang.
func (e *Engine) notify(err error) {
	if e.errFn == nil {
		panic(err)
	}
	e.errFn(err)
}

// fail records the first unrecoverable failure and notifies the handler.
// Deferred sends headed for the dead peer are purged so the refill loop does
// not keep feeding traffic into a black hole; peer < 0 means the failure is
// not attributable to one peer.
func (e *Engine) fail(peer int, err error) {
	if e.failed != nil {
		return
	}
	e.failed = err
	if peer >= 0 {
		e.purgePending(peer)
	}
	e.notify(err)
}

// evictPeer handles a whole-rank death verdict (core.PeerDeath): traffic
// toward the dead peer is dropped from now on and every in-flight transfer
// involving it is abandoned, but the engine keeps serving the survivors —
// it does NOT enter the failed state. The registered handler still hears
// about the death so a recovery layer can re-map the dead rank's work.
func (e *Engine) evictPeer(peer int, err error) {
	if e.failed != nil || e.deadPeers[peer] {
		return
	}
	if e.deadPeers == nil {
		e.deadPeers = make(map[int]bool)
	}
	e.deadPeers[peer] = true
	e.purgePending(peer)
	// Abandon global-array transfers involving the peer: a send's data would
	// vanish on the wire; a receive's data will never arrive. Marking them
	// done frees their slots at the next compaction, and their completion
	// callbacks never run (that state belongs to the aborted exchange).
	purged := false
	for _, s := range e.xfer {
		if s.done {
			continue
		}
		if (s.isSend && s.dst == peer) || (!s.isSend && s.src == peer) {
			s.done = true
			purged = true
		}
	}
	if purged {
		e.compact()
		e.refill()
	}
	e.schedule()
	e.notify(err)
}

// purgePending drops deferred operations involving peer: sends toward it
// and promotions of receives posted from it.
func (e *Engine) purgePending(peer int) {
	kept := e.pending[:0]
	for _, op := range e.pending {
		switch {
		case op.kind == pendingSend && op.dst == peer:
			continue
		case op.kind == pendingPromote && op.slot.src == peer:
			continue
		}
		kept = append(kept, op)
	}
	for i := len(kept); i < len(e.pending); i++ {
		e.pending[i] = pendingOp{}
	}
	e.pending = kept
}

// MemReg registers b for remote puts. In RMA mode the buffer is also
// attached to the rank's dynamic window, paying the attach cost on the
// communication thread.
func (e *Engine) MemReg(b buf.Buf) core.MemHandle {
	h := e.reg.MemReg(b)
	if e.cfg.UseRMA {
		e.rank.WinAttach(h.ID, b)
		e.Submit(e.w.Config().AttachCost(b.Size), nil)
	}
	return h
}

// MemDereg releases a registration (and detaches the window region in RMA
// mode).
func (e *Engine) MemDereg(h core.MemHandle) {
	if e.cfg.UseRMA {
		e.rank.WinDetach(h.ID)
		e.Submit(e.w.Config().DetachCost, nil)
	}
	e.reg.MemDereg(h)
}

// Lookup resolves a local registration.
func (e *Engine) Lookup(h core.MemHandle) buf.Buf { return e.reg.Lookup(h) }

// TagReg registers an active-message callback and pre-posts its persistent
// receives (§4.2.1).
func (e *Engine) TagReg(tag core.Tag, cb core.AMCallback, maxLen int64) {
	if maxLen <= 0 {
		maxLen = e.cfg.MaxAMLen
	}
	e.tags.Register(tag, cb, maxLen)
	for i := 0; i < e.cfg.PersistentPerTag; i++ {
		s := &amSlot{tag: tag, cb: cb, b: make([]byte, maxLen)}
		s.req = e.rank.RecvInit(buf.FromBytes(s.b), mpi.AnySource, int(tag))
		e.rank.Start(s.req)
		e.amSlots = append(e.amSlots, s)
	}
}

// SendAM sends an eager active message from the communication thread
// (blocking MPI_Send; §4.2.1). data is consumed by the call.
func (e *Engine) SendAM(tag core.Tag, remote int, data []byte) {
	b := buf.FromBytes(data)
	e.Submit(e.w.Config().SendCost(b.Size), func() {
		if e.failed != nil || e.deadPeers[remote] {
			return
		}
		e.rank.Send(b, remote, int(tag))
		e.amsSent.Inc()
	})
}

// SendAMMT sends an active message from a worker thread. The call serializes
// through the MPI global lock (MPI_THREAD_MULTIPLE), which is why the paper
// finds multithreaded sends "generally neutral or negatively impacted" on
// the MPI backend (§6.4.3).
func (e *Engine) SendAMMT(worker *sim.Proc, tag core.Tag, remote int, data []byte, done func()) {
	b := buf.FromBytes(data)
	e.rank.LockedSubmit(e.w.Config().SendCost(b.Size), func() {
		if e.failed != nil || e.deadPeers[remote] {
			if done != nil {
				worker.Submit(0, done)
			}
			return
		}
		e.rank.Send(b, remote, int(tag))
		e.amsSent.Inc()
		if done != nil {
			worker.Submit(0, done)
		}
	})
	e.schedule()
}

// Submit runs fn on the communication thread after charging cost.
func (e *Engine) Submit(cost sim.Duration, fn func()) { e.comm.Submit(cost, fn) }

// Put starts the emulated one-sided transfer (§4.2.2). Must run on the
// communication thread.
func (e *Engine) Put(a core.PutArgs) {
	if e.failed != nil || e.deadPeers[a.Remote] {
		return
	}
	e.putsStarted.Inc()
	e.putBytes.Add(uint64(a.Size))
	local := e.reg.Lookup(a.LReg).Slice(a.LDispl, a.Size)

	if e.cfg.UseRMA {
		e.putRMA(a, local)
		return
	}

	e.nextDataTag++
	dataTag := dataTagBase + int(e.nextDataTag)

	hdr := core.PutHeader{
		RReg: a.RReg, RDispl: a.RDispl, Size: a.Size,
		DataTag: int32(dataTag), RTag: a.RTag, RCBData: a.RCBData,
	}.Marshal()
	e.SendAM(handshakeTag, a.Remote, hdr)

	if len(e.xfer) < e.cfg.MaxTransfers {
		e.postDataSend(local, a.Remote, dataTag, a.LocalCB, a.Size)
	} else {
		// §4.2.2: insufficient space in the global array defers the send.
		e.deferredEvents.Inc()
		e.pending = append(e.pending, pendingOp{
			kind: pendingSend, data: local, dst: a.Remote, dataTag: dataTag,
			localCB: a.LocalCB, size: a.Size,
		})
	}
	e.schedule()
}

func (e *Engine) postDataSend(data buf.Buf, dst, dataTag int, localCB func(), size int64) {
	// Reserve the array slot synchronously so concurrent refills cannot
	// overshoot MaxTransfers; the Isend itself is charged to the thread.
	slot := &xferSlot{isSend: true, localCB: localCB, dst: dst, size: size}
	e.xfer = append(e.xfer, slot)
	e.Submit(e.w.Config().SendCost(size), func() {
		if slot.done {
			// Purged by a dead-peer eviction before the Isend was posted.
			return
		}
		slot.req = e.rank.Isend(data, dst, dataTag)
		e.schedule()
	})
}

// putRMA transports the data with MPI_Put + flush, then sends the remote
// completion notification as an active message (which standard MPI RMA
// cannot deliver itself).
func (e *Engine) putRMA(a core.PutArgs, local buf.Buf) {
	rcb := append([]byte(nil), a.RCBData...)
	e.Submit(e.w.Config().SendCost(a.Size), func() {
		e.rank.RmaPut(a.Remote, a.RReg.ID, a.RDispl, local, func() {
			// Flush returned (runs during a progress pass on the
			// communication thread): notify both sides.
			e.putsDone.Inc()
			e.SendAM(a.RTag, a.Remote, rcb)
			if a.LocalCB != nil {
				e.comm.Submit(e.cfg.DispatchCost, a.LocalCB)
			}
		})
		e.schedule()
	})
}

// onHandshake is the handshake AM callback at the put target: it posts the
// matching receive, into the global array if there is room and onto a
// dynamically allocated request otherwise (§4.2.2).
func (e *Engine) onHandshake(_ core.Engine, _ core.Tag, data []byte, src int) {
	if e.deadPeers[src] {
		// A handshake that was already in flight when its sender was
		// declared dead; the data will never follow.
		return
	}
	h, err := core.UnmarshalPutHeader(data)
	if err != nil {
		// Handshakes only ever come from a peer engine, so a malformed one
		// means that peer is broken — abort the graph, don't crash the rank.
		e.fail(src, fmt.Errorf("mpice rank %d: bad put handshake from %d: %w", e.Rank(), src, err))
		return
	}
	target := e.reg.Lookup(h.RReg).Slice(h.RDispl, h.Size)
	rcb := append([]byte(nil), h.RCBData...)
	e.Submit(e.w.Config().RecvCost(h.Size), func() {
		req := e.rank.Irecv(target, src, int(h.DataTag))
		slot := &xferSlot{req: req, rtag: h.RTag, rcbData: rcb, src: src, size: h.Size}
		if len(e.xfer) < e.cfg.MaxTransfers {
			e.xfer = append(e.xfer, slot)
		} else {
			// Posted but unpolled until promoted (§4.2.2).
			e.deferredEvents.Inc()
			e.pending = append(e.pending, pendingOp{kind: pendingPromote, slot: slot})
		}
		e.schedule()
	})
}

// schedule arranges one progress pass on the communication thread if none is
// queued. It is the backend's analogue of the §4.2.3 progress loop: each
// pass charges the Testsome cost for the whole global array plus the staged
// matching work, then collects and dispatches completions.
func (e *Engine) schedule() {
	if e.progressScheduled {
		return
	}
	e.progressScheduled = true
	nreq := len(e.amSlots) + len(e.xfer)
	cost := e.rank.ProgressCost() + e.w.Config().TestCost(nreq)
	e.comm.Submit(cost, e.runPass)
}

func (e *Engine) runPass() {
	e.progressScheduled = false
	e.progressPasses.Inc()

	// Assemble the global array: persistent AM requests first, then data
	// transfers ("of length 5 x Nam + 30", §4.2.3).
	e.reqScratch = e.reqScratch[:0]
	e.slotScratch = e.slotScratch[:0]
	for _, s := range e.amSlots {
		e.reqScratch = append(e.reqScratch, s.req)
		e.slotScratch = append(e.slotScratch, s)
	}
	for _, s := range e.xfer {
		e.reqScratch = append(e.reqScratch, s.req)
		e.slotScratch = append(e.slotScratch, s)
	}

	idxs := e.rank.Testsome(e.reqScratch)
	for _, i := range idxs {
		switch s := e.slotScratch[i].(type) {
		case *amSlot:
			e.dispatchAM(s)
		case *xferSlot:
			if !s.done { // eviction may have abandoned the slot mid-pass
				e.completeXfer(s)
			}
		}
	}
	if len(idxs) > 0 {
		// Compact the array (free entries at the back) and fill freed space
		// from the deferred FIFO.
		e.compact()
		e.refill()
		// "If no communications were completed ... the progress function
		// returns; otherwise, it repeats" (§4.2.3).
		e.schedule()
	}
}

func (e *Engine) dispatchAM(s *amSlot) {
	size := s.req.Status.Size
	src := s.req.Status.Source
	payload := s.b[:size]
	e.amsDelivered.Inc()
	// The callback and the persistent-receive re-arm both execute on the
	// communication thread; while they run, no Testsome happens — the
	// §4.3 head-of-line blocking.
	e.comm.Submit(e.cfg.DispatchCost, func() {
		s.cb(e, s.tag, payload, src)
		e.comm.Submit(e.w.Config().PostCost, func() {
			e.rank.Start(s.req)
			e.schedule()
		})
	})
}

func (e *Engine) completeXfer(s *xferSlot) {
	s.done = true // mark for compaction
	if s.isSend {
		e.putsDone.Inc()
		if s.localCB != nil {
			e.comm.Submit(e.cfg.DispatchCost, s.localCB)
		}
		return
	}
	// Data landed: fire the remote completion callback registered for RTag.
	cb, _ := e.tags.Lookup(s.rtag)
	e.comm.Submit(e.cfg.DispatchCost, func() {
		cb(e, s.rtag, s.rcbData, s.src)
	})
}

func (e *Engine) compact() {
	out := e.xfer[:0]
	for _, s := range e.xfer {
		if !s.done {
			out = append(out, s)
		}
	}
	for i := len(out); i < len(e.xfer); i++ {
		e.xfer[i] = nil
	}
	e.xfer = out
}

func (e *Engine) refill() {
	for len(e.pending) > 0 && len(e.xfer) < e.cfg.MaxTransfers {
		op := e.pending[0]
		copy(e.pending, e.pending[1:])
		e.pending = e.pending[:len(e.pending)-1]
		switch op.kind {
		case pendingSend:
			e.postDataSend(op.data, op.dst, op.dataTag, op.localCB, op.size)
		case pendingPromote:
			e.xfer = append(e.xfer, op.slot)
		default:
			panic(fmt.Sprintf("mpice: unknown pending op %d", op.kind))
		}
	}
}
