package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"amtlci/internal/buf"
)

func TestRegistryLifecycle(t *testing.T) {
	g := NewRegistry(3)
	b := buf.Virtual(128)
	h := g.MemReg(b)
	if h.Rank != 3 {
		t.Fatalf("handle rank = %d", h.Rank)
	}
	if got := g.Lookup(h); got.Size != 128 {
		t.Fatalf("lookup size = %d", got.Size)
	}
	g.MemDereg(h)
	defer func() {
		if recover() == nil {
			t.Fatal("lookup after dereg did not panic")
		}
	}()
	g.Lookup(h)
}

func TestRegistryRejectsForeignHandles(t *testing.T) {
	g := NewRegistry(0)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign lookup did not panic")
		}
	}()
	g.Lookup(MemHandle{Rank: 1, ID: 5})
}

func TestRegistryHandlesAreUnique(t *testing.T) {
	g := NewRegistry(0)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		h := g.MemReg(buf.Virtual(1))
		if seen[h.ID] {
			t.Fatal("duplicate handle ID")
		}
		seen[h.ID] = true
	}
}

func TestPutHeaderRoundTrip(t *testing.T) {
	f := func(rank int32, id uint64, rdispl, size int64, dataTag, rtag int32, cbData []byte) bool {
		h := PutHeader{
			RReg:    MemHandle{Rank: rank, ID: id},
			RDispl:  rdispl,
			Size:    size,
			DataTag: dataTag,
			RTag:    Tag(rtag),
			RCBData: cbData,
		}
		got, err := UnmarshalPutHeader(h.Marshal())
		return err == nil && got.RReg == h.RReg && got.RDispl == h.RDispl && got.Size == h.Size &&
			got.DataTag == h.DataTag && got.RTag == h.RTag && bytes.Equal(got.RCBData, h.RCBData)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPutHeaderEmptyCallbackData(t *testing.T) {
	h := PutHeader{Size: 42}
	got, err := UnmarshalPutHeader(h.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != 42 || len(got.RCBData) != 0 {
		t.Fatalf("got %+v", got)
	}
}

// TestPutHeaderTruncatedInputErrors checks that every prefix of a valid
// encoding — and arbitrary garbage — yields an error, never a panic.
func TestPutHeaderTruncatedInputErrors(t *testing.T) {
	full := PutHeader{
		RReg:    MemHandle{Rank: 3, ID: 77},
		RDispl:  1 << 20,
		Size:    4096,
		DataTag: 12,
		RTag:    9,
		RCBData: []byte("callback-data"),
	}.Marshal()
	for n := 0; n < len(full); n++ {
		if _, err := UnmarshalPutHeader(full[:n]); err == nil {
			t.Errorf("prefix of %d bytes decoded without error", n)
		}
	}
	if _, err := UnmarshalPutHeader(nil); err == nil {
		t.Error("nil input decoded without error")
	}
	// A header whose declared callback length overruns the buffer.
	bad := append([]byte(nil), full...)
	bad[36] = 0xff
	bad[37] = 0x00
	if _, err := UnmarshalPutHeader(bad); err == nil {
		t.Error("overlong callback length decoded without error")
	}
	// A negative declared callback length.
	neg := append([]byte(nil), full...)
	neg[39] = 0x80
	if _, err := UnmarshalPutHeader(neg); err == nil {
		t.Error("negative callback length decoded without error")
	}
}

// FuzzUnmarshalPutHeader asserts the decoder never panics on arbitrary
// input, and that whatever round-trips, round-trips exactly.
func FuzzUnmarshalPutHeader(f *testing.F) {
	f.Add([]byte{})
	f.Add(PutHeader{Size: 1}.Marshal())
	f.Add(PutHeader{RCBData: []byte{1, 2, 3}}.Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := UnmarshalPutHeader(data)
		if err != nil {
			return
		}
		again, err := UnmarshalPutHeader(h.Marshal())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.RReg != h.RReg || again.RDispl != h.RDispl || again.Size != h.Size ||
			again.DataTag != h.DataTag || again.RTag != h.RTag ||
			!bytes.Equal(again.RCBData, h.RCBData) {
			t.Fatalf("round trip changed header: %+v vs %+v", h, again)
		}
	})
}

func TestTagTable(t *testing.T) {
	tt := NewTagTable()
	called := false
	tt.Register(5, func(Engine, Tag, []byte, int) { called = true }, 100)
	cb, maxLen := tt.Lookup(5)
	if maxLen != 100 {
		t.Fatalf("maxLen = %d", maxLen)
	}
	cb(nil, 5, nil, 0)
	if !called {
		t.Fatal("callback not invoked")
	}
	if tt.Len() != 1 || tt.Tags()[0] != 5 {
		t.Fatalf("Len/Tags wrong: %d %v", tt.Len(), tt.Tags())
	}
}

func TestTagTableDuplicatePanics(t *testing.T) {
	tt := NewTagTable()
	tt.Register(1, func(Engine, Tag, []byte, int) {}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	tt.Register(1, func(Engine, Tag, []byte, int) {}, 0)
}

func TestTagTableUnknownLookupPanics(t *testing.T) {
	tt := NewTagTable()
	defer func() {
		if recover() == nil {
			t.Fatal("unknown lookup did not panic")
		}
	}()
	tt.Lookup(99)
}
