package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"amtlci/internal/buf"
)

func TestRegistryLifecycle(t *testing.T) {
	g := NewRegistry(3)
	b := buf.Virtual(128)
	h := g.MemReg(b)
	if h.Rank != 3 {
		t.Fatalf("handle rank = %d", h.Rank)
	}
	if got := g.Lookup(h); got.Size != 128 {
		t.Fatalf("lookup size = %d", got.Size)
	}
	g.MemDereg(h)
	defer func() {
		if recover() == nil {
			t.Fatal("lookup after dereg did not panic")
		}
	}()
	g.Lookup(h)
}

func TestRegistryRejectsForeignHandles(t *testing.T) {
	g := NewRegistry(0)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign lookup did not panic")
		}
	}()
	g.Lookup(MemHandle{Rank: 1, ID: 5})
}

func TestRegistryHandlesAreUnique(t *testing.T) {
	g := NewRegistry(0)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		h := g.MemReg(buf.Virtual(1))
		if seen[h.ID] {
			t.Fatal("duplicate handle ID")
		}
		seen[h.ID] = true
	}
}

func TestPutHeaderRoundTrip(t *testing.T) {
	f := func(rank int32, id uint64, rdispl, size int64, dataTag, rtag int32, cbData []byte) bool {
		h := PutHeader{
			RReg:    MemHandle{Rank: rank, ID: id},
			RDispl:  rdispl,
			Size:    size,
			DataTag: dataTag,
			RTag:    Tag(rtag),
			RCBData: cbData,
		}
		got := UnmarshalPutHeader(h.Marshal())
		return got.RReg == h.RReg && got.RDispl == h.RDispl && got.Size == h.Size &&
			got.DataTag == h.DataTag && got.RTag == h.RTag && bytes.Equal(got.RCBData, h.RCBData)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPutHeaderEmptyCallbackData(t *testing.T) {
	h := PutHeader{Size: 42}
	got := UnmarshalPutHeader(h.Marshal())
	if got.Size != 42 || len(got.RCBData) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestTagTable(t *testing.T) {
	tt := NewTagTable()
	called := false
	tt.Register(5, func(Engine, Tag, []byte, int) { called = true }, 100)
	cb, maxLen := tt.Lookup(5)
	if maxLen != 100 {
		t.Fatalf("maxLen = %d", maxLen)
	}
	cb(nil, 5, nil, 0)
	if !called {
		t.Fatal("callback not invoked")
	}
	if tt.Len() != 1 || tt.Tags()[0] != 5 {
		t.Fatalf("Len/Tags wrong: %d %v", tt.Len(), tt.Tags())
	}
}

func TestTagTableDuplicatePanics(t *testing.T) {
	tt := NewTagTable()
	tt.Register(1, func(Engine, Tag, []byte, int) {}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	tt.Register(1, func(Engine, Tag, []byte, int) {}, 0)
}

func TestTagTableUnknownLookupPanics(t *testing.T) {
	tt := NewTagTable()
	defer func() {
		if recover() == nil {
			t.Fatal("unknown lookup did not panic")
		}
	}()
	tt.Lookup(99)
}
