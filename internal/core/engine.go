// Package core defines the PaRSEC communication-engine abstraction of the
// paper's Listing 1: a backend-independent active-message plus one-sided-put
// API that the runtime (internal/parsec) programs against, with two
// implementations — internal/core/mpice (Section 4.2) and internal/core/lcice
// (Section 5.3).
//
// The engine owns the rank's communication thread: a serial virtual-time
// processor on which active-message callbacks and completion callbacks
// execute. Backends differ in how wire progress relates to that thread; the
// MPI backend interleaves progress with callback execution on the single
// communication thread, while the LCI backend divorces them onto a dedicated
// progress thread — the structural change the paper credits for most of its
// latency reduction.
package core

import (
	"encoding/binary"
	"fmt"

	"amtlci/internal/buf"
	"amtlci/internal/sim"
)

// Tag identifies a registered active-message callback (tag_reg in Listing 1).
type Tag int32

// AMCallback handles one delivered active message on the communication
// thread. data is only valid for the duration of the call; implementations
// that need it longer must copy it. src is the sending rank.
type AMCallback func(e Engine, tag Tag, data []byte, src int)

// MemHandle names a registered memory region (mem_reg in Listing 1). It is
// 12 bytes on the wire, so a GET DATA active message can carry the
// requester's registration to the data's owner.
type MemHandle struct {
	Rank int32
	ID   uint64
}

// handleBytes is the wire encoding size of a MemHandle.
const handleBytes = 12

// PutArgs carries the arguments of the one-sided put of Listing 1. Data
// flows from the local region (LReg at LDispl) into the remote region (RReg
// at RDispl) on rank Remote. LocalCB runs on the origin's communication
// thread when the local buffer is reusable; at the target, the AM callback
// registered for RTag runs with RCBData once the data has landed — the
// remote completion notification that plain MPI RMA cannot express (§4.2.2).
type PutArgs struct {
	LReg    MemHandle
	LDispl  int64
	RReg    MemHandle
	RDispl  int64
	Size    int64
	Remote  int
	LocalCB func()
	RTag    Tag
	RCBData []byte
}

// Stats counts engine activity for experiments.
type Stats struct {
	AMsSent      uint64
	AMsDelivered uint64
	PutsStarted  uint64
	PutsDone     uint64
	PutBytes     uint64
	Deferred     uint64 // operations that could not start immediately
}

// Engine is the communication engine of Listing 1, plus the threading hooks
// the runtime needs in simulation (Submit replaces "the communication thread
// calls progress in a loop").
type Engine interface {
	// Rank and Size identify this engine within the parallel job.
	Rank() int
	Size() int

	// TagReg registers cb for tag; maxLen bounds the active-message payload
	// (the MPI backend sizes its persistent-receive buffers with it).
	// Registering a tag twice panics.
	TagReg(tag Tag, cb AMCallback, maxLen int64)

	// SendAM sends an eager active message from the communication thread.
	// The engine charges the send cost to the communication thread.
	SendAM(tag Tag, remote int, data []byte)

	// SendAMMT sends an active message directly from a worker thread
	// (PaRSEC's communication multithreading, §6.4.3), bypassing the
	// communication thread. worker is the calling thread; done, if non-nil,
	// runs when the call returns to the worker.
	SendAMMT(worker *sim.Proc, tag Tag, remote int, data []byte, done func())

	// MemReg registers b for remote access and returns its handle;
	// MemDereg releases it. Lookup resolves a local handle (for tests and
	// the runtime's bookkeeping).
	MemReg(b buf.Buf) MemHandle
	MemDereg(h MemHandle)
	Lookup(h MemHandle) buf.Buf

	// Put starts the one-sided transfer described by a. It must be called
	// on the communication thread (via Submit).
	Put(a PutArgs)

	// Submit schedules fn on the communication thread after charging cost,
	// waking it if idle. It is how the runtime funnels work to the engine.
	Submit(cost sim.Duration, fn func())

	// CommProc exposes the communication thread's processor (for
	// utilization measurements).
	CommProc() *sim.Proc

	// OnError registers fn to run (on the engine's goroutine) when the
	// engine hits a communication failure: the transport declared a peer
	// unreachable or dead, or a malformed header arrived on the wire.
	// Registration REPLACES: the engine keeps exactly one handler and the
	// latest registration wins, so a recovery orchestrator can take over
	// error routing from the plain abort a runtime installed earlier. A nil
	// fn is ignored (the previous handler, if any, stays installed); with
	// no handler registered at all a failure panics — silence would be a
	// hang. For an unrecoverable failure the engine stops issuing new
	// traffic afterwards; a failure that satisfies PeerDeath instead evicts
	// the dead peer and keeps the engine running for the survivors.
	OnError(fn func(error))

	// Err returns the first unrecoverable failure, or nil.
	Err() error

	// Stats returns activity counters.
	Stats() Stats
}

// PeerDeath is implemented by transport errors that condemn a whole rank
// (rel.PeerDead), as opposed to a single failed operation. An engine that
// extracts a PeerDeath from its error chain (errors.As) evicts the dead peer
// — dropping traffic toward it and purging in-flight state — but keeps
// serving the surviving ranks, so a recovery layer above can re-map the dead
// rank's work instead of aborting the job.
type PeerDeath interface {
	error
	// DeadPeer returns the rank declared dead.
	DeadPeer() int
}

// Registry implements the MemReg half of an engine; both backends embed it.
type Registry struct {
	rank   int32
	nextID uint64
	mem    map[uint64]buf.Buf
}

// NewRegistry returns an empty registry for rank.
func NewRegistry(rank int) *Registry {
	return &Registry{rank: int32(rank), mem: make(map[uint64]buf.Buf)}
}

// MemReg registers b and returns its handle.
func (g *Registry) MemReg(b buf.Buf) MemHandle {
	g.nextID++
	g.mem[g.nextID] = b
	return MemHandle{Rank: g.rank, ID: g.nextID}
}

// MemDereg releases h. Deregistering an unknown handle panics — it means a
// put raced with deregistration, which would corrupt memory on real RDMA
// hardware.
func (g *Registry) MemDereg(h MemHandle) {
	if h.Rank != g.rank {
		panic(fmt.Sprintf("core: deregistering remote handle %+v at rank %d", h, g.rank))
	}
	if _, ok := g.mem[h.ID]; !ok {
		panic(fmt.Sprintf("core: deregistering unknown handle %+v", h))
	}
	delete(g.mem, h.ID)
}

// Lookup resolves h to its registered buffer, panicking on a foreign or
// unknown handle.
func (g *Registry) Lookup(h MemHandle) buf.Buf {
	if h.Rank != g.rank {
		panic(fmt.Sprintf("core: handle %+v looked up at rank %d", h, g.rank))
	}
	b, ok := g.mem[h.ID]
	if !ok {
		panic(fmt.Sprintf("core: unknown handle %+v", h))
	}
	return b
}

// PutHeader is the handshake both backends exchange to emulate a one-sided
// put over two-sided transport (§4.2.2, §5.3.3): where to receive, how much,
// which tag the data will use, and the remote completion callback.
type PutHeader struct {
	RReg    MemHandle
	RDispl  int64
	Size    int64
	DataTag int32 // backend-chosen tag for the data transfer
	RTag    Tag
	RCBData []byte
}

// Marshal encodes h for the wire.
func (h PutHeader) Marshal() []byte {
	out := make([]byte, 0, 40+len(h.RCBData))
	var tmp [8]byte
	put32 := func(v int32) {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(v))
		out = append(out, tmp[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		out = append(out, tmp[:8]...)
	}
	put32(h.RReg.Rank)
	put64(h.RReg.ID)
	put64(uint64(h.RDispl))
	put64(uint64(h.Size))
	put32(h.DataTag)
	put32(int32(h.RTag))
	put32(int32(len(h.RCBData)))
	out = append(out, h.RCBData...)
	return out
}

// putHeaderFixedBytes is the encoded size of a PutHeader before RCBData.
const putHeaderFixedBytes = 4 + 8 + 8 + 8 + 4 + 4 + 4

// UnmarshalPutHeader decodes a header produced by Marshal. A truncated or
// otherwise malformed buffer yields an error, never a panic — callers decide
// whether that is a protocol bug.
func UnmarshalPutHeader(b []byte) (PutHeader, error) {
	var h PutHeader
	if len(b) < putHeaderFixedBytes {
		return h, fmt.Errorf("core: put header truncated: %d bytes, need %d",
			len(b), putHeaderFixedBytes)
	}
	h.RReg.Rank = int32(binary.LittleEndian.Uint32(b[0:4]))
	h.RReg.ID = binary.LittleEndian.Uint64(b[4:12])
	h.RDispl = int64(binary.LittleEndian.Uint64(b[12:20]))
	h.Size = int64(binary.LittleEndian.Uint64(b[20:28]))
	h.DataTag = int32(binary.LittleEndian.Uint32(b[28:32]))
	h.RTag = Tag(binary.LittleEndian.Uint32(b[32:36]))
	n := int(int32(binary.LittleEndian.Uint32(b[36:40])))
	if n < 0 || putHeaderFixedBytes+n > len(b) {
		return h, fmt.Errorf("core: put header callback data length %d exceeds %d remaining bytes",
			n, len(b)-putHeaderFixedBytes)
	}
	h.RCBData = b[putHeaderFixedBytes : putHeaderFixedBytes+n]
	return h, nil
}

// TagTable is the tag→callback map shared by both backends (a hash table in
// the LCI backend, §5.3.2; parallel arrays in the MPI backend, §4.2.1 —
// functionally identical).
type TagTable struct {
	entries map[Tag]tagEntry
}

type tagEntry struct {
	cb     AMCallback
	maxLen int64
}

// NewTagTable returns an empty table.
func NewTagTable() *TagTable { return &TagTable{entries: make(map[Tag]tagEntry)} }

// Register adds a callback; duplicate registration panics.
func (t *TagTable) Register(tag Tag, cb AMCallback, maxLen int64) {
	if _, dup := t.entries[tag]; dup {
		panic(fmt.Sprintf("core: tag %d registered twice", tag))
	}
	if cb == nil {
		panic("core: nil AM callback")
	}
	t.entries[tag] = tagEntry{cb, maxLen}
}

// Lookup resolves a tag, panicking on unknown tags (an AM for an
// unregistered tag is always a protocol bug).
func (t *TagTable) Lookup(tag Tag) (AMCallback, int64) {
	e, ok := t.entries[tag]
	if !ok {
		panic(fmt.Sprintf("core: active message for unregistered tag %d", tag))
	}
	return e.cb, e.maxLen
}

// Len returns the number of registered tags.
func (t *TagTable) Len() int { return len(t.entries) }

// Tags returns the registered tags in unspecified order.
func (t *TagTable) Tags() []Tag {
	out := make([]Tag, 0, len(t.entries))
	for tag := range t.entries {
		out = append(out, tag)
	}
	return out
}
