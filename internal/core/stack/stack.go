// Package stack assembles a complete simulated communication deployment —
// engine, fabric, message-passing library, and one communication engine per
// rank — for either backend. Every experiment, example, and test in this
// repository starts from a Stack.
package stack

import (
	"fmt"

	"amtlci/internal/core"
	"amtlci/internal/core/lcice"
	"amtlci/internal/core/mpice"
	"amtlci/internal/fabric"
	"amtlci/internal/lci"
	"amtlci/internal/mpi"
	"amtlci/internal/rel"
	"amtlci/internal/sim"
)

// Backend selects the communication-engine implementation.
type Backend int

const (
	// MPI is the baseline backend of Section 4.2.
	MPI Backend = iota
	// LCI is the paper's contribution, Section 5.3.
	LCI
)

// String names the backend as the paper's figures do.
func (b Backend) String() string {
	switch b {
	case MPI:
		return "Open MPI"
	case LCI:
		return "LCI"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// Backends lists both, in the order the paper's legends use.
var Backends = []Backend{LCI, MPI}

// Options configures a deployment. Zero-valued sub-configs are replaced by
// the package defaults.
type Options struct {
	Ranks   int
	Backend Backend
	Seed    uint64 // overrides the fabric noise seed when nonzero

	Fabric fabric.Config
	MPI    mpi.Config
	MPICE  mpice.Config
	LCI    lci.Config
	LCICE  lcice.Config

	// Faults, when non-nil, arms deterministic fault injection on the
	// fabric (chaos testing). Pair it with Rel — the communication
	// libraries assume a lossless wire.
	Faults *fabric.FaultConfig
	// Rel, when non-nil, interposes the reliable-delivery layer
	// (internal/rel) between the fabric and the communication library.
	// Zero-cost when absent: the libraries bind straight to the fabric.
	Rel *rel.Config
}

// DefaultOptions returns the paper-calibrated configuration for n ranks.
func DefaultOptions(b Backend, n int) Options {
	mpiCfg := mpi.DefaultConfig()
	// PaRSEC requests relaxed ordering when available (§4.2.2).
	mpiCfg.AllowOvertaking = true
	return Options{
		Ranks:   n,
		Backend: b,
		Fabric:  fabric.DefaultConfig(),
		MPI:     mpiCfg,
		MPICE:   mpice.DefaultConfig(),
		LCI:     lci.DefaultConfig(),
		LCICE:   lcice.DefaultConfig(),
	}
}

// Stack is one assembled deployment.
type Stack struct {
	Eng     *sim.Engine
	Fab     *fabric.Fabric
	Backend Backend
	Engines []core.Engine

	// Net is what the communication library is bound to: the raw fabric,
	// or Rel when the reliability layer is interposed.
	Net fabric.Network
	// Rel is the reliability layer, nil unless Options.Rel was set.
	Rel *rel.Stack

	// Library handles, populated for the matching backend only (for
	// counter inspection in tests and experiments).
	MPIWorld   *mpi.World
	LCIRuntime *lci.Runtime
}

// Build assembles a deployment from o. Invalid options panic: every caller
// is a test, bench, or command-line tool for which a stack that cannot be
// built is a programming error.
func Build(o Options) *Stack {
	if o.Ranks <= 0 {
		panic("stack: Ranks must be positive")
	}
	eng := sim.NewEngine()
	fc := o.Fabric
	if fc.BandwidthGbps == 0 {
		fc = fabric.DefaultConfig()
	}
	if o.Seed != 0 {
		fc.Seed = o.Seed
	}
	fab, err := fabric.New(eng, o.Ranks, fc)
	if err != nil {
		panic(err)
	}
	if o.Faults != nil {
		if err := fab.InstallFaults(*o.Faults); err != nil {
			panic(err)
		}
	}
	s := &Stack{Eng: eng, Fab: fab, Backend: o.Backend}
	var net fabric.Network = fab
	if o.Rel != nil {
		rl, err := rel.New(fab, *o.Rel)
		if err != nil {
			panic(err)
		}
		s.Rel = rl
		net = rl
	}
	s.Net = net
	s.Engines = make([]core.Engine, o.Ranks)
	switch o.Backend {
	case MPI:
		s.MPIWorld = mpi.NewWorld(eng, net, o.MPI)
		for r := 0; r < o.Ranks; r++ {
			s.Engines[r] = mpice.New(eng, s.MPIWorld, r, o.MPICE)
		}
	case LCI:
		s.LCIRuntime = lci.NewRuntime(eng, net, o.LCI)
		for r := 0; r < o.Ranks; r++ {
			s.Engines[r] = lcice.New(eng, s.LCIRuntime, r, o.LCICE)
		}
	default:
		panic(fmt.Sprintf("stack: unknown backend %d", o.Backend))
	}
	return s
}

// New is shorthand for Build(DefaultOptions(b, n)).
func New(b Backend, n int) *Stack { return Build(DefaultOptions(b, n)) }
