// Package stack assembles a complete simulated communication deployment —
// engine, fabric, message-passing library, and one communication engine per
// rank — for either backend. Every experiment, example, and test in this
// repository starts from a Stack.
package stack

import (
	"fmt"
	"strings"

	"amtlci/internal/core"
	"amtlci/internal/core/lcice"
	"amtlci/internal/core/mpice"
	"amtlci/internal/fabric"
	"amtlci/internal/lci"
	"amtlci/internal/metrics"
	"amtlci/internal/mpi"
	"amtlci/internal/rel"
	"amtlci/internal/sim"
)

// Backend selects the communication-engine implementation.
type Backend int

const (
	// MPI is the baseline backend of Section 4.2.
	MPI Backend = iota
	// LCI is the paper's contribution, Section 5.3.
	LCI
)

// String names the backend as the paper's figures do.
func (b Backend) String() string {
	switch b {
	case MPI:
		return "Open MPI"
	case LCI:
		return "LCI"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// Backends lists both, in the order the paper's legends use.
var Backends = []Backend{LCI, MPI}

// ParseBackend maps a command-line flag value to a Backend. Accepted
// spellings are case-insensitive: "mpi", "openmpi" or "open-mpi" for the
// baseline, "lci" for the paper's engine. Anything else is an error, so a
// typo cannot silently select a backend.
func ParseBackend(s string) (Backend, error) {
	switch strings.ToLower(s) {
	case "mpi", "openmpi", "open-mpi":
		return MPI, nil
	case "lci":
		return LCI, nil
	}
	return 0, fmt.Errorf("stack: unknown backend %q (want \"mpi\" or \"lci\")", s)
}

// Options configures a deployment. Zero-valued sub-configs are replaced by
// the package defaults.
type Options struct {
	Ranks   int
	Backend Backend
	Seed    uint64 // overrides the fabric noise seed when nonzero

	Fabric fabric.Config
	MPI    mpi.Config
	MPICE  mpice.Config
	LCI    lci.Config
	LCICE  lcice.Config

	// Faults, when non-nil, arms deterministic fault injection on the
	// fabric (chaos testing). Pair it with Rel — the communication
	// libraries assume a lossless wire.
	Faults *fabric.FaultConfig
	// Rel, when non-nil, interposes the reliable-delivery layer
	// (internal/rel) between the fabric and the communication library.
	// Zero-cost when absent: the libraries bind straight to the fabric.
	Rel *rel.Config

	// Metrics, when non-nil, is the registry every layer registers its
	// instruments in; Build creates a fresh one otherwise. Either way the
	// shared registry is exposed as Stack.Metrics. Per-layer Metrics fields
	// left nil inherit it; a non-nil per-layer field wins.
	Metrics *metrics.Registry

	// Shards, when > 1, runs the simulation on a sharded parallel domain
	// (sim.Parallel): ranks are partitioned into Shards contiguous blocks
	// advanced in parallel under a conservative round protocol whose
	// per-shard-pair lookahead is the fabric's latency-floor matrix
	// (fabric.LookaheadMatrix). 0 or 1 builds the serial engine.
	// Crash-script fault injection requires the serial engine
	// (fabric.InstallFaults enforces this).
	Shards int

	// ShardTuning overrides the sharded domain's protocol optimizations
	// (pairwise lookahead, idle-shard elision, window coalescing — all on
	// by default). Differential tests use it to exercise each fast path in
	// isolation; every setting is bit-identical to serial. Ignored unless
	// Shards > 1.
	ShardTuning *sim.Tuning
}

// DefaultOptions returns the paper-calibrated configuration for n ranks.
func DefaultOptions(b Backend, n int) Options {
	mpiCfg := mpi.DefaultConfig()
	// PaRSEC requests relaxed ordering when available (§4.2.2).
	mpiCfg.AllowOvertaking = true
	return Options{
		Ranks:   n,
		Backend: b,
		Fabric:  fabric.DefaultConfig(),
		MPI:     mpiCfg,
		MPICE:   mpice.DefaultConfig(),
		LCI:     lci.DefaultConfig(),
		LCICE:   lcice.DefaultConfig(),
	}
}

// Stack is one assembled deployment.
type Stack struct {
	// Dom is the simulation domain every layer schedules on: the serial
	// engine, or a sim.Parallel when Options.Shards > 1. Always non-nil.
	Dom sim.Domain
	// Eng is the serial engine, nil when the domain is sharded — code that
	// genuinely needs one engine must go through Dom.RankEngine and fail
	// loudly rather than silently serialize a sharded deployment.
	Eng     *sim.Engine
	Fab     *fabric.Fabric
	Backend Backend
	Engines []core.Engine

	// Net is what the communication library is bound to: the raw fabric,
	// or Rel when the reliability layer is interposed.
	Net fabric.Network
	// Rel is the reliability layer, nil unless Options.Rel was set.
	Rel *rel.Stack

	// Library handles, populated for the matching backend only (for
	// counter inspection in tests and experiments).
	MPIWorld   *mpi.World
	LCIRuntime *lci.Runtime

	// Metrics is the registry shared by every layer of this deployment.
	Metrics *metrics.Registry
}

// Build assembles a deployment from o. Invalid options panic: every caller
// is a test, bench, or command-line tool for which a stack that cannot be
// built is a programming error.
func Build(o Options) *Stack {
	if o.Ranks <= 0 {
		panic("stack: Ranks must be positive")
	}
	reg := o.Metrics
	if reg == nil {
		reg = metrics.New()
	}
	fc := mergeFabricDefaults(o.Fabric)
	if o.Seed != 0 {
		fc.Seed = o.Seed
	}
	if fc.Metrics == nil {
		fc.Metrics = reg
	}
	if o.MPI.Metrics == nil {
		o.MPI.Metrics = reg
	}
	if o.MPICE.Metrics == nil {
		o.MPICE.Metrics = reg
	}
	if o.LCI.Metrics == nil {
		o.LCI.Metrics = reg
	}
	if o.LCICE.Metrics == nil {
		o.LCICE.Metrics = reg
	}
	var dom sim.Domain
	var eng *sim.Engine
	if o.Shards > 1 {
		la := fabric.Lookahead(fc)
		if la <= 0 {
			panic(fmt.Sprintf("stack: Shards=%d needs a positive fabric latency floor (latency %v, jitter %g)",
				o.Shards, fc.Latency, fc.Jitter))
		}
		par := sim.NewParallel(o.Ranks, o.Shards, la)
		par.SetLookahead(fabric.LookaheadMatrix(fc, o.Ranks, par.Shards(), par.ShardOf))
		if o.ShardTuning != nil {
			par.SetTuning(*o.ShardTuning)
		}
		dom = par
	} else {
		eng = sim.NewEngine()
		dom = eng
	}
	fab, err := fabric.New(dom, o.Ranks, fc)
	if err != nil {
		panic(err)
	}
	if o.Faults != nil {
		if err := fab.InstallFaults(*o.Faults); err != nil {
			panic(err)
		}
	}
	s := &Stack{Dom: dom, Eng: eng, Fab: fab, Backend: o.Backend, Metrics: reg}
	var net fabric.Network = fab
	if o.Rel != nil {
		rc := *o.Rel
		if rc.Metrics == nil {
			rc.Metrics = reg
		}
		rl, err := rel.New(fab, rc)
		if err != nil {
			panic(err)
		}
		s.Rel = rl
		net = rl
	}
	s.Net = net
	s.Engines = make([]core.Engine, o.Ranks)
	switch o.Backend {
	case MPI:
		s.MPIWorld = mpi.NewWorld(dom, net, o.MPI)
		for r := 0; r < o.Ranks; r++ {
			s.Engines[r] = mpice.New(dom.RankEngine(r), s.MPIWorld, r, o.MPICE)
		}
	case LCI:
		s.LCIRuntime = lci.NewRuntime(dom, net, o.LCI)
		for r := 0; r < o.Ranks; r++ {
			s.Engines[r] = lcice.New(dom.RankEngine(r), s.LCIRuntime, r, o.LCICE)
		}
	default:
		panic(fmt.Sprintf("stack: unknown backend %d", o.Backend))
	}
	return s
}

// mergeFabricDefaults fills zero-valued fabric fields from the package
// defaults when the config looks unset (no bandwidth given). A caller that
// customizes only one knob — say Latency — keeps the default bandwidth,
// gaps, and noise instead of having the whole config silently replaced. A
// config with a bandwidth passes through untouched, so explicit zeros in a
// complete config (e.g. Jitter = 0 for a noiseless run) are respected.
func mergeFabricDefaults(fc fabric.Config) fabric.Config {
	if fc.BandwidthGbps != 0 {
		return fc
	}
	def := fabric.DefaultConfig()
	fc.BandwidthGbps = def.BandwidthGbps
	if fc.Latency == 0 {
		fc.Latency = def.Latency
	}
	if fc.MessageGap == 0 {
		fc.MessageGap = def.MessageGap
	}
	if fc.RxOverhead == 0 {
		fc.RxOverhead = def.RxOverhead
	}
	if fc.LoopbackLatency == 0 {
		fc.LoopbackLatency = def.LoopbackLatency
	}
	if fc.CtlBypass == 0 {
		fc.CtlBypass = def.CtlBypass
	}
	if fc.Jitter == 0 {
		fc.Jitter = def.Jitter
	}
	if fc.Seed == 0 {
		fc.Seed = def.Seed
	}
	return fc
}

// New is shorthand for Build(DefaultOptions(b, n)).
func New(b Backend, n int) *Stack { return Build(DefaultOptions(b, n)) }
