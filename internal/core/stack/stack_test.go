package stack

import (
	"fmt"
	"testing"

	"amtlci/internal/buf"
	"amtlci/internal/core"
	"amtlci/internal/sim"
)

// forEachBackend runs a subtest against both communication engines: the
// engine API is backend-independent (Listing 1), so all semantics tests
// must pass identically.
func forEachBackend(t *testing.T, f func(t *testing.T, s *Stack)) {
	t.Helper()
	for _, b := range Backends {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			o := DefaultOptions(b, 2)
			o.Fabric.Jitter = 0
			f(t, Build(o))
		})
	}
}

func TestAMRoundTrip(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Stack) {
		const tag core.Tag = 10
		type rec struct {
			data string
			src  int
		}
		var got []rec
		for r := 0; r < 2; r++ {
			s.Engines[r].TagReg(tag, func(_ core.Engine, _ core.Tag, data []byte, src int) {
				got = append(got, rec{string(data), src})
			}, 4096)
		}
		s.Engines[0].SendAM(tag, 1, []byte("activate!"))
		s.Eng.Run()
		if len(got) != 1 || got[0].data != "activate!" || got[0].src != 0 {
			t.Fatalf("got = %+v", got)
		}
		if s.Engines[0].Stats().AMsSent != 1 {
			t.Fatalf("sender stats = %+v", s.Engines[0].Stats())
		}
	})
}

// TestDuplicateTagRegPanicsOnBothBackends pins down the satellite fix: the
// shared TagTable rejects duplicate registration, and both engines surface
// that identically — a silent last-wins would corrupt collective matching.
func TestDuplicateTagRegPanicsOnBothBackends(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Stack) {
		const tag core.Tag = 12
		cb := func(core.Engine, core.Tag, []byte, int) {}
		s.Engines[0].TagReg(tag, cb, 64)
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate TagReg did not panic")
			}
		}()
		s.Engines[0].TagReg(tag, cb, 64)
	})
}

func TestAMBurstAllDelivered(t *testing.T) {
	// More simultaneous AMs than the MPI backend has persistent receives
	// (5/tag): the overflow must queue and still be delivered.
	forEachBackend(t, func(t *testing.T, s *Stack) {
		const tag core.Tag = 11
		const n = 40
		seen := map[byte]bool{}
		for r := 0; r < 2; r++ {
			s.Engines[r].TagReg(tag, func(_ core.Engine, _ core.Tag, data []byte, src int) {
				seen[data[0]] = true
			}, 64)
		}
		for i := 0; i < n; i++ {
			s.Engines[0].SendAM(tag, 1, []byte{byte(i)})
		}
		s.Eng.Run()
		if len(seen) != n {
			t.Fatalf("delivered %d distinct AMs, want %d", len(seen), n)
		}
	})
}

func putOnce(t *testing.T, s *Stack, size int64) (localDone, remoteDone bool) {
	t.Helper()
	const doneTag core.Tag = 20
	src, dst := s.Engines[0], s.Engines[1]

	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	target := make([]byte, size)

	lreg := src.MemReg(buf.FromBytes(payload))
	rreg := dst.MemReg(buf.FromBytes(target))

	for r := 0; r < 2; r++ {
		r := r
		s.Engines[r].TagReg(doneTag, func(_ core.Engine, _ core.Tag, data []byte, from int) {
			if r != 1 || string(data) != "cbdata" || from != 0 {
				t.Errorf("remote completion at rank %d data %q from %d", r, data, from)
			}
			remoteDone = true
		}, 64)
	}

	src.Submit(0, func() {
		src.Put(core.PutArgs{
			LReg: lreg, RReg: rreg, Size: size, Remote: 1,
			LocalCB: func() { localDone = true },
			RTag:    doneTag, RCBData: []byte("cbdata"),
		})
	})
	s.Eng.Run()

	for i := range payload {
		if target[i] != payload[i] {
			t.Fatalf("payload mismatch at %d (size %d)", i, size)
		}
	}
	return localDone, remoteDone
}

func TestPutSmallAndLarge(t *testing.T) {
	for _, size := range []int64{1, 512, 4 << 10, 64 << 10, 1 << 20} {
		size := size
		t.Run(fmt.Sprintf("size=%d", size), func(t *testing.T) {
			forEachBackend(t, func(t *testing.T, s *Stack) {
				localDone, remoteDone := putOnce(t, s, size)
				if !localDone || !remoteDone {
					t.Fatalf("local=%v remote=%v", localDone, remoteDone)
				}
				st := s.Engines[0].Stats()
				if st.PutsStarted != 1 || st.PutsDone != 1 || st.PutBytes != uint64(size) {
					t.Fatalf("origin stats = %+v", st)
				}
			})
		})
	}
}

func TestPutWithDisplacements(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Stack) {
		const doneTag core.Tag = 21
		srcData := []byte{0, 0, 0, 1, 2, 3, 4, 0}
		dstData := make([]byte, 16)
		lreg := s.Engines[0].MemReg(buf.FromBytes(srcData))
		rreg := s.Engines[1].MemReg(buf.FromBytes(dstData))
		for r := 0; r < 2; r++ {
			s.Engines[r].TagReg(doneTag, func(core.Engine, core.Tag, []byte, int) {}, 16)
		}
		s.Engines[0].Submit(0, func() {
			s.Engines[0].Put(core.PutArgs{
				LReg: lreg, LDispl: 3, RReg: rreg, RDispl: 10, Size: 4,
				Remote: 1, RTag: doneTag,
			})
		})
		s.Eng.Run()
		want := []byte{1, 2, 3, 4}
		for i := range want {
			if dstData[10+i] != want[i] {
				t.Fatalf("dst = %v", dstData)
			}
		}
		for i := 0; i < 10; i++ {
			if dstData[i] != 0 {
				t.Fatalf("displacement leak: dst = %v", dstData)
			}
		}
	})
}

func TestManyConcurrentPutsOverflowTransferCap(t *testing.T) {
	// 100 concurrent puts exceed the MPI backend's 30-transfer array; the
	// deferral machinery must still complete them all, in both backends.
	forEachBackend(t, func(t *testing.T, s *Stack) {
		const doneTag core.Tag = 22
		const n = 100
		const size = 256 << 10
		remote := 0
		local := 0
		for r := 0; r < 2; r++ {
			s.Engines[r].TagReg(doneTag, func(core.Engine, core.Tag, []byte, int) { remote++ }, 16)
		}
		src, dst := s.Engines[0], s.Engines[1]
		var lregs, rregs []core.MemHandle
		for i := 0; i < n; i++ {
			lregs = append(lregs, src.MemReg(buf.Virtual(size)))
			rregs = append(rregs, dst.MemReg(buf.Virtual(size)))
		}
		src.Submit(0, func() {
			for i := 0; i < n; i++ {
				i := i
				src.Put(core.PutArgs{
					LReg: lregs[i], RReg: rregs[i], Size: size, Remote: 1,
					LocalCB: func() { local++ },
					RTag:    doneTag,
				})
			}
		})
		s.Eng.Run()
		if local != n || remote != n {
			t.Fatalf("local=%d remote=%d, want %d", local, remote, n)
		}
		if s.Backend == MPI && src.Stats().Deferred == 0 {
			t.Error("MPI backend should have deferred sends beyond the 30-transfer cap")
		}
	})
}

func TestSendAMMTFromWorkers(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s *Stack) {
		const tag core.Tag = 23
		const workers = 8
		received := 0
		for r := 0; r < 2; r++ {
			s.Engines[r].TagReg(tag, func(core.Engine, core.Tag, []byte, int) { received++ }, 64)
		}
		returned := 0
		for i := 0; i < workers; i++ {
			w := sim.NewProc(s.Eng)
			s.Engines[0].SendAMMT(w, tag, 1, []byte{byte(i)}, func() { returned++ })
		}
		s.Eng.Run()
		if received != workers || returned != workers {
			t.Fatalf("received=%d returned=%d, want %d", received, returned, workers)
		}
	})
}

func TestCommThreadCallbackBlocksMPIProgressMoreThanLCI(t *testing.T) {
	// The structural claim of the paper: a long AM callback on the
	// communication thread delays an independent put far more with the MPI
	// backend (progress shares the thread) than with LCI (dedicated
	// progress thread).
	// A 200µs callback occupies the TARGET's communication thread when the
	// put handshake arrives. With MPI, rendezvous matching happens inside
	// Testsome on that same thread, so the data cannot land until the
	// callback finishes; with LCI, the progress thread posts the matching
	// receive and the bytes arrive on schedule. We observe the actual
	// arrival of the last payload byte.
	const size = 1 << 20
	arrival := func(b Backend) sim.Duration {
		o := DefaultOptions(b, 2)
		o.Fabric.Jitter = 0
		s := Build(o)
		const slowTag, doneTag core.Tag = 30, 31
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = 0xAB
		}
		target := make([]byte, size)
		for r := 0; r < 2; r++ {
			e := s.Engines[r]
			e.TagReg(slowTag, func(eng core.Engine, _ core.Tag, _ []byte, _ int) {
				// Unpacking a large aggregated ACTIVATE (§4.3 example).
				eng.Submit(200*sim.Microsecond, func() {})
			}, 64)
			e.TagReg(doneTag, func(core.Engine, core.Tag, []byte, int) {}, 64)
		}
		src, dst := s.Engines[0], s.Engines[1]
		lreg := src.MemReg(buf.FromBytes(payload))
		rreg := dst.MemReg(buf.FromBytes(target))
		// Slow AM reaches rank 1 just before the put's handshake.
		src.SendAM(slowTag, 1, []byte{1})
		src.Submit(0, func() {
			src.Put(core.PutArgs{LReg: lreg, RReg: rreg, Size: size, Remote: 1, RTag: doneTag})
		})
		var landedAt sim.Time
		var watch func()
		watch = func() {
			if target[size-1] == 0xAB {
				landedAt = s.Eng.Now()
				return
			}
			s.Eng.After(sim.Microsecond, watch)
		}
		s.Eng.After(0, watch)
		s.Eng.Run()
		if landedAt == 0 {
			panic("put data never landed")
		}
		return sim.Duration(landedAt)
	}
	mpiLat := arrival(MPI)
	lciLat := arrival(LCI)
	if lciLat >= mpiLat {
		t.Fatalf("LCI arrival %v not before MPI arrival %v under callback load", lciLat, mpiLat)
	}
	if mpiLat < 150*sim.Microsecond {
		t.Fatalf("MPI arrival %v should absorb most of the 200µs callback", mpiLat)
	}
	if lciLat > 120*sim.Microsecond {
		t.Fatalf("LCI arrival %v should dodge the 200µs callback", lciLat)
	}
}

func TestStacksAreDeterministic(t *testing.T) {
	run := func() sim.Time {
		o := DefaultOptions(LCI, 2)
		s := Build(o)
		const tag core.Tag = 40
		for r := 0; r < 2; r++ {
			s.Engines[r].TagReg(tag, func(core.Engine, core.Tag, []byte, int) {}, 64)
		}
		for i := 0; i < 50; i++ {
			s.Engines[0].SendAM(tag, 1, []byte{byte(i)})
		}
		return s.Eng.Run()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("two identical runs ended at %v and %v", a, b)
	}
}

func TestBackendString(t *testing.T) {
	if MPI.String() != "Open MPI" || LCI.String() != "LCI" {
		t.Fatal("backend names must match the paper's figure legends")
	}
	if Backend(9).String() == "" {
		t.Fatal("unknown backend must still format")
	}
}
