package stack

import (
	"errors"
	"testing"

	"amtlci/internal/core"
	"amtlci/internal/fabric"
	"amtlci/internal/rel"
)

// failingStack builds a two-rank deployment whose 0→1 link is severed, with
// the reliability layer interposed: a single message from rank 0 to rank 1
// exhausts the retry budget and surfaces rel.PeerUnreachable through rank
// 0's engine error path. It is the cheapest deterministic way to make an
// engine invoke its OnError handler.
func failingStack(b Backend) *Stack {
	o := DefaultOptions(b, 2)
	o.Fabric.Jitter = 0
	o.Faults = &fabric.FaultConfig{
		Seed:  3,
		Links: []fabric.LinkFault{{Src: 0, Dst: 1, Sever: true}},
	}
	rc := rel.DefaultConfig()
	o.Rel = &rc
	return Build(o)
}

func provoke(s *Stack) {
	const tag core.Tag = 21
	for r := 0; r < 2; r++ {
		s.Engines[r].TagReg(tag, func(core.Engine, core.Tag, []byte, int) {}, 64)
	}
	s.Engines[0].SendAM(tag, 1, []byte("doomed"))
	s.Eng.Run()
}

// TestOnErrorLatestRegistrationWins pins the replacement contract both
// backends document: the engine keeps exactly one handler, so a recovery
// orchestrator can take over error routing from an earlier plain-abort
// registration — the replaced handler must never fire.
func TestOnErrorLatestRegistrationWins(t *testing.T) {
	forEachFailingBackend(t, func(t *testing.T, s *Stack) {
		var firstCalls, secondCalls int
		s.Engines[0].OnError(func(error) { firstCalls++ })
		s.Engines[0].OnError(func(err error) {
			secondCalls++
			var pu *rel.PeerUnreachable
			if !errors.As(err, &pu) {
				t.Fatalf("handler got %v, want PeerUnreachable", err)
			}
		})
		s.Engines[1].OnError(func(error) {})
		provoke(s)
		if firstCalls != 0 {
			t.Fatalf("replaced handler fired %d times", firstCalls)
		}
		if secondCalls == 0 {
			t.Fatal("replacement handler never fired")
		}
	})
}

// TestOnErrorNilIsIgnored: a nil registration must leave the installed
// handler in place rather than arming a nil-call panic on the progress path.
func TestOnErrorNilIsIgnored(t *testing.T) {
	forEachFailingBackend(t, func(t *testing.T, s *Stack) {
		var calls int
		s.Engines[0].OnError(func(error) { calls++ })
		s.Engines[0].OnError(nil)
		s.Engines[1].OnError(func(error) {})
		provoke(s)
		if calls == 0 {
			t.Fatal("handler uninstalled by a nil registration")
		}
	})
}

// TestOnErrorUnregisteredPanics: with no handler at all, a failure panics
// loudly — silently swallowing it would turn an abort into a hang.
func TestOnErrorUnregisteredPanics(t *testing.T) {
	forEachFailingBackend(t, func(t *testing.T, s *Stack) {
		defer func() {
			if recover() == nil {
				t.Fatal("failure with no OnError handler did not panic")
			}
		}()
		provoke(s)
	})
}

func forEachFailingBackend(t *testing.T, f func(t *testing.T, s *Stack)) {
	t.Helper()
	for _, b := range Backends {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			f(t, failingStack(b))
		})
	}
}
