package stack

import (
	"testing"

	"amtlci/internal/fabric"
	"amtlci/internal/metrics"
	"amtlci/internal/sim"
)

// A partially-specified fabric config must be merged with the defaults
// field-wise, not replaced wholesale: setting only the latency used to
// silently revert bandwidth, gaps, and noise to the defaults AND discard
// the latency itself.
func TestFabricConfigMergesFieldWise(t *testing.T) {
	o := DefaultOptions(LCI, 2)
	o.Fabric = fabric.Config{Latency: 5 * sim.Microsecond}
	s := Build(o)
	got := s.Fab.Config()
	def := fabric.DefaultConfig()
	if got.Latency != 5*sim.Microsecond {
		t.Errorf("Latency = %v, want 5µs (custom value dropped)", got.Latency)
	}
	if got.BandwidthGbps != def.BandwidthGbps {
		t.Errorf("BandwidthGbps = %g, want default %g", got.BandwidthGbps, def.BandwidthGbps)
	}
	if got.MessageGap != def.MessageGap || got.CtlBypass != def.CtlBypass {
		t.Errorf("gaps not defaulted: gap=%v ctl=%d", got.MessageGap, got.CtlBypass)
	}
}

// A complete config (bandwidth set) passes through untouched, so explicit
// zeros — e.g. Jitter = 0 for a noiseless chaos run — are respected.
func TestFabricConfigCompletePassesThrough(t *testing.T) {
	o := DefaultOptions(MPI, 2)
	o.Fabric.Jitter = 0
	s := Build(o)
	if got := s.Fab.Config().Jitter; got != 0 {
		t.Errorf("Jitter = %g, want explicit 0 preserved", got)
	}
}

func TestParseBackend(t *testing.T) {
	good := map[string]Backend{
		"lci": LCI, "LCI": LCI,
		"mpi": MPI, "MPI": MPI, "openmpi": MPI, "Open-MPI": MPI,
	}
	for in, want := range good {
		b, err := ParseBackend(in)
		if err != nil || b != want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v, nil", in, b, err, want)
		}
	}
	for _, in := range []string{"", "lc", "mpii", "ucx"} {
		if _, err := ParseBackend(in); err == nil {
			t.Errorf("ParseBackend(%q) accepted a typo", in)
		}
	}
}

// Build must thread one registry through every layer; with no explicit
// registry it still creates and exposes a shared one.
func TestSharedMetricsRegistry(t *testing.T) {
	for _, b := range Backends {
		reg := metrics.New()
		o := DefaultOptions(b, 2)
		o.Metrics = reg
		s := Build(o)
		if s.Metrics != reg {
			t.Fatalf("%v: Stack.Metrics is not the supplied registry", b)
		}
		if s.Fab.Metrics() != reg {
			t.Fatalf("%v: fabric did not inherit the shared registry", b)
		}
		// Every layer of the chosen backend registered instruments.
		for _, layer := range []string{"fabric"} {
			found := false
			for _, snap := range reg.Snapshots() {
				if snap.Desc.Layer == layer {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%v: no instruments registered for layer %q", b, layer)
			}
		}
		switch b {
		case MPI:
			if s.MPIWorld.Metrics() != reg {
				t.Errorf("mpi world has a private registry")
			}
		case LCI:
			if s.LCIRuntime.Metrics() != reg {
				t.Errorf("lci runtime has a private registry")
			}
		}
	}
}
