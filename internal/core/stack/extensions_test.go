package stack

import (
	"testing"

	"amtlci/internal/buf"
	"amtlci/internal/core"
	"amtlci/internal/sim"
)

// The extension variants (the paper's §7 / §4.2.2 future work) must satisfy
// the same put semantics as the shipping backends.

func buildVariant(t *testing.T, b Backend, mod func(*Options)) *Stack {
	t.Helper()
	o := DefaultOptions(b, 2)
	o.Fabric.Jitter = 0
	if mod != nil {
		mod(&o)
	}
	return Build(o)
}

// variantPut runs one real-bytes put and returns (localDone, remoteDone,
// completion time).
func variantPut(t *testing.T, s *Stack, size int64) sim.Duration {
	t.Helper()
	const doneTag core.Tag = 50
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i*13 + 7)
	}
	target := make([]byte, size)
	src, dst := s.Engines[0], s.Engines[1]
	lreg := src.MemReg(buf.FromBytes(payload))
	rreg := dst.MemReg(buf.FromBytes(target))
	localDone := false
	var remoteAt sim.Time
	for r := 0; r < 2; r++ {
		r := r
		s.Engines[r].TagReg(doneTag, func(_ core.Engine, _ core.Tag, data []byte, from int) {
			if r != 1 || string(data) != "ncb" || from != 0 {
				t.Errorf("bad remote completion at rank %d: %q from %d", r, data, from)
			}
			remoteAt = s.Eng.Now()
		}, 64)
	}
	src.Submit(0, func() {
		src.Put(core.PutArgs{
			LReg: lreg, RReg: rreg, Size: size, Remote: 1,
			LocalCB: func() { localDone = true },
			RTag:    doneTag, RCBData: []byte("ncb"),
		})
	})
	s.Eng.Run()
	if !localDone || remoteAt == 0 {
		t.Fatalf("put incomplete: local=%v remoteAt=%v", localDone, remoteAt)
	}
	for i := range payload {
		if target[i] != payload[i] {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
	return sim.Duration(remoteAt)
}

func TestNativePutConformance(t *testing.T) {
	for _, size := range []int64{1, 4 << 10, 256 << 10, 2 << 20} {
		s := buildVariant(t, LCI, func(o *Options) { o.LCICE.NativePut = true })
		variantPut(t, s, size)
		if st := s.Engines[0].Stats(); st.PutsDone != 1 {
			t.Fatalf("size %d: stats %+v", size, st)
		}
	}
}

func TestMPIRMAConformance(t *testing.T) {
	for _, size := range []int64{1, 4 << 10, 256 << 10, 2 << 20} {
		s := buildVariant(t, MPI, func(o *Options) { o.MPICE.UseRMA = true })
		variantPut(t, s, size)
		if st := s.Engines[0].Stats(); st.PutsDone != 1 {
			t.Fatalf("size %d: stats %+v", size, st)
		}
	}
}

func TestNativePutFasterThanHandshakeEmulation(t *testing.T) {
	// The one-sided path saves the GET side's rendezvous round: remote
	// completion should come no later than with the emulated put.
	const size = 512 << 10
	emulated := variantPut(t, buildVariant(t, LCI, nil), size)
	native := variantPut(t, buildVariant(t, LCI, func(o *Options) { o.LCICE.NativePut = true }), size)
	if native > emulated {
		t.Fatalf("native put %v slower than emulated %v", native, emulated)
	}
}

func TestMPIRMAPaysAttachCosts(t *testing.T) {
	// The §4.2.2 caveat: dynamic-window attach/detach is expensive. The RMA
	// variant must charge visibly more communication-thread time for a
	// registration-heavy workload than the two-sided emulation.
	run := func(useRMA bool) sim.Duration {
		s := buildVariant(t, MPI, func(o *Options) { o.MPICE.UseRMA = useRMA })
		dst := s.Engines[1]
		for i := 0; i < 64; i++ {
			h := dst.MemReg(buf.Virtual(1 << 20))
			dst.MemDereg(h)
		}
		s.Eng.Run()
		return s.Engines[1].CommProc().BusyTime()
	}
	twoSided := run(false)
	rma := run(true)
	if rma <= twoSided {
		t.Fatalf("RMA attach/detach cost invisible: rma=%v two-sided=%v", rma, twoSided)
	}
}

func TestProgressThreadsReduceProgressLatency(t *testing.T) {
	// More progress threads must not hurt, and under bursty arrivals they
	// shorten the progress backlog.
	latency := func(threads int) sim.Duration {
		s := buildVariant(t, LCI, func(o *Options) { o.LCICE.ProgressThreads = threads })
		const tag core.Tag = 60
		var last sim.Time
		for r := 0; r < 2; r++ {
			s.Engines[r].TagReg(tag, func(core.Engine, core.Tag, []byte, int) {
				last = s.Eng.Now()
			}, 4096)
		}
		for i := 0; i < 400; i++ {
			s.Engines[0].SendAM(tag, 1, make([]byte, 2048))
		}
		s.Eng.Run()
		return sim.Duration(last)
	}
	one := latency(1)
	four := latency(4)
	if four > one {
		t.Fatalf("4 progress threads (%v) slower than 1 (%v)", four, one)
	}
}
