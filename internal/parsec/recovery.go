package parsec

import (
	"errors"
	"fmt"
	"sort"

	"amtlci/internal/buf"
	"amtlci/internal/core"
	"amtlci/internal/metrics"
	recov "amtlci/internal/recover"
	"amtlci/internal/sim"
)

// Crash recovery. With EnableRecovery armed, the runtime survives rank
// crashes — including cascades: a second crash during an in-flight recovery,
// or the simultaneous loss of a buddy pair — instead of aborting:
//
//  1. every completed task checkpoints its outputs to the rank's buddy
//     (internal/recover) before its successors are released;
//  2. when the transport declares a rank dead (a core.PeerDeath verdict from
//     the reliable layer's failure detector), each survivor pauses and casts
//     a DEADVOTE for it on the termination-detection control channel; the
//     lowest live rank collects votes over the whole *dead-set*, and a
//     restart arms only when every live survivor has voted for every member
//     of the set;
//  3. recovery rounds are generation-fenced and interruptible: a new verdict
//     arriving while a restart is armed (or an unconverged crash discovered
//     as the round fires) grows the dead-set, bumps the generation, and
//     aborts the stale round — convergence then re-forms over the larger set
//     and one combined restart absorbs all of it;
//  4. the restart re-maps each dead rank's tasks onto the rank holding its
//     checkpoints (the next live ring member when the buddy died too),
//     repairs checkpoint protection — heirs adopt the orphaned copies they
//     hold for the dead, survivors whose buddy died re-replicate their set
//     to a freshly assigned live buddy — wipes all live dataflow state,
//     advances the epoch (so in-flight pre-crash traffic is recognized as
//     stale and dropped), restores checkpointed outputs, re-issues
//     activations for the work that was lost, and resumes.
//
// A task is "done" exactly when its post-remap owner holds a checkpoint for
// it; everything else re-executes. Checkpoints lost with a crash (including
// a whole buddy pair dying, which loses the pair's copies outright)
// therefore cost re-execution, never correctness.

// RecoveryConfig arms crash recovery.
type RecoveryConfig struct {
	// Managers holds one checkpoint manager per rank, built over the same
	// engines the runtime runs on.
	Managers []*recov.Manager
	// RestartDelay separates a converged dead-set from its restart, giving
	// in-flight traffic time to drain (stale traffic is dropped by epoch
	// anyway; the delay just reduces churn). It is also the interruption
	// window: a verdict landing inside it aborts the round.
	RestartDelay sim.Duration
	// MaxRecoveries bounds how many distinct rank deaths the runtime will
	// absorb before aborting like an unprotected run; 0 means 1. A
	// buddy-pair crash absorbed by one restart round still spends two.
	MaxRecoveries int
}

type recoveryState struct {
	cfg RecoveryConfig
	// votes[dead] is the set of survivor ranks whose transport has declared
	// dead gone. Only votes from currently-live voters count toward
	// convergence — a voter that dies takes its vote's weight with it.
	votes map[int]map[int]bool
	// deadSet holds the ranks the current (unfinished) recovery round must
	// absorb; recovered the ranks already absorbed by completed rounds;
	// everDead every distinct rank ever declared dead (the budget).
	deadSet   map[int]bool
	recovered map[int]bool
	everDead  map[int]bool
	// done marks tasks that will not re-execute after the latest restart.
	done map[TaskID]bool
	// gen fences armed restarts: it bumps whenever the dead-set grows, so a
	// restart scheduled for an older, smaller set aborts instead of firing
	// against membership it no longer describes.
	gen     int
	armed   bool
	aborted *metrics.Counter
}

// EnableRecovery arms crash recovery; call it after New and before Run. It
// takes over the engines' error routing: peer-death verdicts feed the
// recovery protocol, anything else still aborts the graph.
func (rt *Runtime) EnableRecovery(rc RecoveryConfig) {
	// Recovery restarts mutate every rank's state in one atomic simulation
	// event, which only a serial engine provides (crash injection is gated
	// the same way in fabric.InstallFaults).
	if rt.dom.Shards() > 1 {
		panic("parsec: crash recovery requires a single-shard domain")
	}
	if len(rc.Managers) != len(rt.nodes) {
		panic(fmt.Sprintf("parsec: %d checkpoint managers for %d ranks",
			len(rc.Managers), len(rt.nodes)))
	}
	if rc.MaxRecoveries <= 0 {
		rc.MaxRecoveries = 1
	}
	rt.rec = &recoveryState{
		cfg:       rc,
		votes:     make(map[int]map[int]bool),
		deadSet:   make(map[int]bool),
		recovered: make(map[int]bool),
		everDead:  make(map[int]bool),
		aborted:   rt.reg.Counter("parsec", "recovery_rounds_aborted", metrics.StackRank),
	}
	for i, n := range rt.nodes {
		i := i
		n.ce.OnError(func(err error) { rt.commError(i, err) })
	}
}

// KillRank marks rank crashed: its handlers and workers go inert. Wire it to
// the fabric's crash notification (fab.OnCrash) so the runtime's view of the
// crash is exactly the fabric's.
func (rt *Runtime) KillRank(rank int) {
	n := rt.nodes[rank]
	n.dead = true
	n.paused = true
}

// rankOf resolves t's executing rank through the recovery remap. Remap
// entries chain across rounds — rank 1's heir may itself die and be
// re-mapped — so resolution follows the chain to the live end (each entry
// pointed to a then-live rank when it was created, and dead ranks never
// revive, so the chain is acyclic and at most nranks long).
func (rt *Runtime) rankOf(t TaskID) int {
	r := rt.tp.RankOf(t)
	for i := 0; i < len(rt.nodes); i++ {
		nr, ok := rt.remap[r]
		if !ok {
			return r
		}
		r = nr
	}
	return r
}

// isDone reports whether t completed before the latest restart.
func (rt *Runtime) isDone(t TaskID) bool { return rt.rec != nil && rt.rec.done[t] }

// checkpointTask streams a completed task's outputs to the rank's buddy.
// No-op (and zero-cost) when recovery is off.
func (rt *Runtime) checkpointTask(n *node, t TaskID, outputs []DataRef) {
	if rt.rec == nil || n.dead {
		return
	}
	flows := make([]recov.FlowCkpt, len(outputs))
	for i, o := range outputs {
		flows[i] = recov.FlowCkpt{Flow: int32(i), Size: o.Buf.Size, Data: o.Buf.Bytes}
	}
	k := recov.Key{Class: t.Class, Index: t.Index}
	m := rt.rec.cfg.Managers[n.rank]
	if owner := rt.rankOf(t); owner != n.rank {
		// A stolen task: the restart's done-set scan looks at the owner, so
		// the completion marker must land there (and at the owner's buddy,
		// covering the owner itself crashing) — not at this thief's buddy.
		// The frame is stamped with the owner's rank so that whoever stores
		// it re-homes it when the OWNER dies, not when this thief does. The
		// buddy index is static ring knowledge; reading the owner's manager
		// for it is a simulator convenience, not a protocol channel.
		// Destinations the thief's detector knows dead are skipped inside
		// CheckpointFor; losing both merely re-executes the task later.
		m.CheckpointFor(k, flows, owner, owner, rt.rec.cfg.Managers[owner].Buddy())
		return
	}
	m.Checkpoint(k, flows)
}

// commError is the engines' error handler once recovery is armed.
func (rt *Runtime) commError(observer int, err error) {
	var pd core.PeerDeath
	if errors.As(err, &pd) {
		rt.peerDead(observer, pd.DeadPeer(), err)
		return
	}
	rt.fail(err)
}

// peerDead handles one survivor's death verdict: the observer stops
// checkpointing to the dead rank, pauses (its pre-crash dataflow state is
// about to be wiped), and re-casts every DEADVOTE it holds on the
// termination-detection control channel to the lowest live rank, which arms
// the restart once the whole dead-set has converged. Convergence is thus a
// wire-level consensus, not a direct-call barrier: a vote travels with real
// latency and the collector is a rank, not the orchestrator.
//
// Re-casting the full vote set — not just the new verdict — is what makes
// the consensus survive the death of its own collector: votes in flight to a
// rank that dies are dropped at the NIC, but the verdict about that rank
// reaches every survivor, and each re-cast replays the lost votes at the new
// collector. Duplicates dedup in the vote book.
func (rt *Runtime) peerDead(observer, dead int, err error) {
	rec := rt.rec
	if rt.failed != nil {
		return
	}
	// Budget check on distinct dead ranks, not restart rounds.
	if !rec.everDead[dead] {
		if len(rec.everDead) >= rec.cfg.MaxRecoveries {
			rt.fail(err)
			return
		}
		rec.everDead[dead] = true
	}
	rt.KillRank(dead) // idempotent; normally already done via fab.OnCrash
	rec.cfg.Managers[observer].MarkDead(dead)
	on := rt.nodes[observer]
	if on.deadVotes[dead] {
		return // duplicate verdict (rel dedups per endpoint; this is belt)
	}
	if on.deadVotes == nil {
		on.deadVotes = make(map[int]bool)
	}
	on.deadVotes[dead] = true
	on.paused = true

	collector := -1
	for r, n := range rt.nodes {
		if !n.dead {
			collector = r
			break
		}
	}
	if collector < 0 {
		rt.fail(err) // no survivors at all
		return
	}
	votes := make([]int, 0, len(on.deadVotes))
	for d := range on.deadVotes {
		votes = append(votes, d)
	}
	sort.Ints(votes)
	for _, d := range votes {
		if collector == observer {
			rt.recordDeadvote(d, observer)
			continue
		}
		vote := termMsg{kind: termDeadvote, epoch: on.epoch, rank: int32(d)}
		on.ce.SendAM(tagTerm, collector, encodeTermMsg(vote))
	}
}

// maybeScheduleRestart arms the restart once every live survivor has voted
// for every member of the dead-set. The armed event carries the generation
// it converged for: a verdict landing inside the RestartDelay window bumps
// the generation and the stale event aborts instead of restarting.
func (rt *Runtime) maybeScheduleRestart() {
	rec := rt.rec
	if rec.armed || len(rec.deadSet) == 0 {
		return
	}
	survivors := 0
	for _, n := range rt.nodes {
		if !n.dead {
			survivors++
		}
	}
	if survivors == 0 {
		return
	}
	for d := range rec.deadSet {
		live := 0
		for v := range rec.votes[d] {
			if !rt.nodes[v].dead {
				live++
			}
		}
		if live < survivors {
			return
		}
	}
	rec.armed = true
	gen := rec.gen
	// Recovery is serial-only (EnableRecovery enforces it), so rank 0's
	// engine is THE engine.
	rt.dom.RankEngine(0).After(rec.cfg.RestartDelay, func() { rt.restartRound(gen) })
}

// FlowCounter is an optional Taskpool extension: how many output flows a
// task produces. Recovery's task enumeration walks successor edges per flow;
// pools without the extension are assumed to produce exactly one.
type FlowCounter interface {
	Flows(t TaskID) int
}

func (rt *Runtime) flowsOf(t TaskID) int {
	if fc, ok := rt.tp.(FlowCounter); ok {
		return fc.Flows(t)
	}
	return 1
}

// enumerateTasks walks the whole task graph from the roots (every non-root
// task is reachable along dependence edges, or it could never have run).
func (rt *Runtime) enumerateTasks() []TaskID {
	seen := make(map[TaskID]bool)
	var queue, all []TaskID
	push := func(t TaskID) {
		if !seen[t] {
			seen[t] = true
			queue = append(queue, t)
		}
	}
	for r := range rt.nodes {
		rt.tp.Roots(r, push)
	}
	var succ []Dep
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		all = append(all, t)
		for f := 0; f < rt.flowsOf(t); f++ {
			succ = rt.tp.Successors(t, int32(f), succ[:0])
			for _, d := range succ {
				push(d.Task)
			}
		}
	}
	return all
}

// nextLive returns the first live rank after r on the ring, or -1 when no
// other rank is alive.
func (rt *Runtime) nextLive(r int) int {
	for i := 1; i < len(rt.nodes); i++ {
		c := (r + i) % len(rt.nodes)
		if !rt.nodes[c].dead {
			return c
		}
	}
	return -1
}

// restartRound rebuilds the runtime around the converged dead-set's absence.
// gen fences it: a round armed for an older generation is stale and aborts.
func (rt *Runtime) restartRound(gen int) {
	rec := rt.rec
	if rt.failed != nil {
		return
	}
	if gen != rec.gen {
		return // aborted: the dead-set grew while armed; counted at the bump
	}
	rec.armed = false
	// A crash can land inside the RestartDelay window without its verdicts
	// having reached the collector yet (the fabric marks the node dead at
	// the crash instant; the lease expiries are still pending). Restarting
	// now would rebuild state around a rank that is already gone — abort the
	// round and let the pending verdicts re-converge with it included.
	for x, n := range rt.nodes {
		if n.dead && !rec.recovered[x] && !rec.deadSet[x] {
			rec.aborted.Inc()
			return
		}
	}
	deads := make([]int, 0, len(rec.deadSet))
	for d := range rec.deadSet {
		deads = append(deads, d)
	}
	sort.Ints(deads)
	rt.restarts.Inc()

	// Every survivor's manager hears about every death (the observers' own
	// verdicts already did this; this is the orchestrator's belt) so nobody
	// ships checkpoint frames into the void.
	for r, m := range rec.cfg.Managers {
		if rt.nodes[r].dead {
			continue
		}
		for _, d := range deads {
			m.MarkDead(d)
		}
	}

	// Re-map ownership: each dead rank's tasks move to the rank holding its
	// checkpoints — its buddy — unless the buddy died in the same cascade
	// (a buddy-pair crash), in which case the next live ring member inherits
	// and the pair's checkpoints are lost: those tasks simply re-execute.
	if rt.remap == nil {
		rt.remap = make(map[int]int)
	}
	for _, d := range deads {
		heir := rec.cfg.Managers[d].Buddy()
		if rt.nodes[heir].dead {
			heir = rt.nextLive(d)
		}
		rt.remap[d] = heir
	}

	// Repair checkpoint protection: each heir adopts the orphaned copies it
	// stored for its dead rank (they join its own protected set), survivors
	// whose buddy died get the next live rank as a fresh buddy and
	// re-replicate their whole set to it, and heirs whose pairing survived
	// re-replicate just the adopted keys. Re-replication frames travel on
	// the ordinary checkpoint tag and are uncounted by the termination
	// detector; ones lost to yet another crash cost re-execution only.
	for r, m := range rec.cfg.Managers {
		if rt.nodes[r].dead {
			continue
		}
		var adopted []recov.Key
		for _, d := range deads {
			if rt.remap[d] == r {
				adopted = append(adopted, m.AdoptOrphans(d)...)
			}
		}
		if rt.nodes[m.Buddy()].dead || m.Buddy() == r {
			if nb := rt.nextLive(r); nb >= 0 {
				m.SetBuddy(nb)
				m.RereplicateAll()
			} else {
				m.SetBuddy(r) // ring collapsed to one: local-only from here
			}
		} else if len(adopted) > 0 {
			m.Rereplicate(adopted)
		}
	}

	// A task is done exactly when its post-remap owner holds a checkpoint:
	// the owner's own completions are stored locally, and a dead rank's are
	// the copies its heir adopted.
	all := rt.enumerateTasks()
	rec.done = make(map[TaskID]bool)
	for _, t := range all {
		owner := rt.rankOf(t)
		if rec.cfg.Managers[owner].Has(recov.Key{Class: t.Class, Index: t.Index}) {
			rec.done[t] = true
		}
	}

	// Wipe every rank's dataflow state and advance the epoch; all pre-crash
	// traffic still in flight becomes recognizably stale.
	for _, n := range rt.nodes {
		n.resetForRecovery()
	}

	// Rebuild per-rank totals under the new ownership; done tasks count as
	// executed and will never run again.
	for _, t := range all {
		n := rt.nodes[rt.rankOf(t)]
		n.total++
		if rec.done[t] {
			n.executed++
		}
	}

	// Restore every done task's outputs at its post-remap owner and re-issue
	// the activations its completion would have sent, filtered down to the
	// consumers that still need them.
	for _, t := range all {
		if !rec.done[t] {
			continue
		}
		owner := rt.rankOf(t)
		flows, ok := rec.cfg.Managers[owner].Lookup(recov.Key{Class: t.Class, Index: t.Index})
		if !ok {
			panic(fmt.Sprintf("parsec: done task %v has no checkpoint at rank %d", t, owner))
		}
		rt.nodes[owner].restoreTask(t, flows)
	}

	// Reseed the roots that still need to run.
	for r := range rt.nodes {
		rt.tp.Roots(r, func(t TaskID) {
			if rec.done[t] {
				return
			}
			n := rt.nodes[rt.rankOf(t)]
			n.stateOf(t)
			n.makeReady(t)
		})
	}

	// The dead ranks leave the termination-detection ring only now: until
	// this point their unexecuted work kept any token parked at an inert
	// rank, which is what made a false announcement between crash and
	// restart impossible. The restart is one atomic simulation event, so
	// every rank's counters were zeroed in lockstep above and the detector's
	// round state starts clean.
	for _, d := range deads {
		rt.term.members[d] = false
	}
	rt.term.outstanding = false
	rt.term.lastValid = false

	// Retire the round: the absorbed ranks move to recovered, their vote
	// books close, and survivors drop the votes they were retaining for
	// re-cast (late duplicates are ignored against recovered ranks).
	for _, d := range deads {
		rec.recovered[d] = true
		delete(rec.deadSet, d)
		delete(rec.votes, d)
		for _, n := range rt.nodes {
			delete(n.deadVotes, d)
		}
	}

	// Resume. Each rank re-evaluates its quiet state: idle survivors nudge
	// the (possibly new) coordinator and go probing for work to steal; if
	// everything was already done, the detector proves it and announces.
	for _, n := range rt.nodes {
		if n.dead {
			continue
		}
		n.paused = false
		n.dispatch()
	}
	for _, n := range rt.nodes {
		if !n.dead {
			n.pollQuiet()
		}
	}
}

// resetForRecovery wipes one rank's dataflow state for a restart. Old memory
// registrations are deliberately leaked rather than deregistered: a put that
// raced the crash may still land in one, and the registry panics on unknown
// handles — the leaked registration absorbs the write and the stale
// completion is dropped by epoch.
func (n *node) resetForRecovery() {
	n.epoch++
	n.store = make(map[flowKey]*flowData)
	n.tasks = make(map[TaskID]*taskState)
	n.ready = prioQueue{}
	n.fetchQ = prioQueue{}
	n.activeFetches = 0
	n.pendingAct = make(map[int][]activation)
	n.flushQueued = make(map[int]bool)
	n.lastOutputs = nil
	n.executed, n.total = 0, 0
	n.idle = n.idle[:0]
	for i := range n.workers {
		n.idle = append(n.idle, i)
	}
	n.paused = true
	// Termination-detection reset: counters restart from zero in the new
	// epoch (stale cross-epoch messages are dropped uncounted on receive, so
	// the books stay balanced), any parked token is void, and the dirty flag
	// re-arms so every rank reintroduces itself to the detector. Stealing
	// state resets alongside: an in-flight probe or grant died with the old
	// epoch. deadVotes is NOT cleared — death verdicts are permanent and a
	// survivor must be able to re-cast them across restarts; the restart
	// prunes only the ranks it just absorbed.
	n.csent, n.crecv = 0, 0
	n.black = false
	n.dirty = true
	n.heldToken = nil
	// pendingOps is NOT zeroed: closures already on the communication thread
	// still fire (their bodies drop stale work by epoch) and each decrements
	// the counter; zeroing here would double-count them negative and wedge
	// the quiet predicate.
	n.probeOut = false
	n.starving = nil
	n.stealSvcQueued = false
	if n.rot != nil {
		n.rot.Reset()
	}
}

// restoreTask re-creates a done task's output flows from its checkpoint: the
// payload becomes flowReady at this rank, local not-yet-done consumers are
// satisfied directly, and each rank that still has consumers waiting gets a
// fresh (tree-less) activation to fetch against.
func (n *node) restoreTask(t TaskID, flows []recov.FlowCkpt) {
	n.tasksRestored.Inc()
	for _, f := range flows {
		key := flowKey{t, f.Flow}
		n.succScratch = n.rt.tp.Successors(t, f.Flow, n.succScratch[:0])
		var locals []TaskID
		var remote []int32
		seen := map[int32]bool{}
		for _, dep := range n.succScratch {
			if n.rt.isDone(dep.Task) {
				continue
			}
			r := n.rankOf(dep.Task)
			if r == n.rank {
				locals = append(locals, dep.Task)
				continue
			}
			if !seen[int32(r)] {
				seen[int32(r)] = true
				remote = append(remote, int32(r))
			}
		}
		if len(locals) == 0 && len(remote) == 0 {
			continue // every consumer already ran; nothing needs this copy
		}
		sort.Slice(remote, func(i, j int) bool { return remote[i] < remote[j] })

		ref := n.rt.tp.MakeCopy(t, f.Flow, f.Size)
		if f.Data != nil {
			buf.Copy(ref.Buf, buf.FromBytes(f.Data))
		}
		now := int64(n.clock.Read(n.eng.Now()))
		fd := &flowData{state: flowReady, ref: ref, size: f.Size}
		fd.meta = activation{task: t, flow: f.Flow, size: f.Size,
			root: int32(n.rank), rootSend: now, hopRank: int32(n.rank), hopSend: now,
			epoch: n.epoch}
		n.store[key] = fd

		for _, lt := range locals {
			fd.localRefs++
			n.satisfy(lt)
		}
		if f.Size > 0 {
			fd.expectedGets = len(remote)
		}
		for _, r := range remote {
			act := fd.meta
			act.subtree = nil
			n.sendActivate(int(r), act, -1)
		}
	}
}
