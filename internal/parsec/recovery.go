package parsec

import (
	"errors"
	"fmt"
	"sort"

	"amtlci/internal/buf"
	"amtlci/internal/core"
	recov "amtlci/internal/recover"
	"amtlci/internal/sim"
)

// Crash recovery. With EnableRecovery armed, the runtime survives the crash
// of one rank instead of aborting:
//
//  1. every completed task checkpoints its outputs to the rank's buddy
//     (internal/recover) before its successors are released;
//  2. when the transport declares a rank dead (a core.PeerDeath verdict from
//     the reliable layer's failure detector), each survivor's engine evicts
//     the dead peer and reports here; the runtime pauses reporting ranks and
//     waits until every survivor has converged on the verdict;
//  3. the restart then re-maps the dead rank's tasks onto its buddy, wipes
//     all live dataflow state, advances the epoch (so in-flight pre-crash
//     traffic is recognized as stale and dropped), restores checkpointed
//     outputs, re-issues activations for the work that was lost, and
//     resumes.
//
// A task is "done" exactly when its post-remap owner holds a checkpoint for
// it; everything else re-executes. Checkpoints lost in flight with the crash
// therefore cost one re-execution, never correctness.

// RecoveryConfig arms crash recovery.
type RecoveryConfig struct {
	// Managers holds one checkpoint manager per rank, built over the same
	// engines the runtime runs on.
	Managers []*recov.Manager
	// RestartDelay separates the last survivor's death verdict from the
	// restart, giving in-flight traffic time to drain (stale traffic is
	// dropped by epoch anyway; the delay just reduces churn).
	RestartDelay sim.Duration
	// MaxRecoveries bounds how many rank deaths the runtime will absorb
	// before aborting like an unprotected run; 0 means 1.
	MaxRecoveries int
}

type recoveryState struct {
	cfg RecoveryConfig
	// verdicts[dead] is the set of survivor ranks whose transport has
	// declared dead gone.
	verdicts map[int]map[int]bool
	// done marks tasks that will not re-execute after the latest restart.
	done       map[TaskID]bool
	recoveries int
	scheduled  map[int]bool
}

// EnableRecovery arms crash recovery; call it after New and before Run. It
// takes over the engines' error routing: peer-death verdicts feed the
// recovery protocol, anything else still aborts the graph.
func (rt *Runtime) EnableRecovery(rc RecoveryConfig) {
	// Recovery restarts mutate every rank's state in one atomic simulation
	// event, which only a serial engine provides (crash injection is gated
	// the same way in fabric.InstallFaults).
	if rt.dom.Shards() > 1 {
		panic("parsec: crash recovery requires a single-shard domain")
	}
	if len(rc.Managers) != len(rt.nodes) {
		panic(fmt.Sprintf("parsec: %d checkpoint managers for %d ranks",
			len(rc.Managers), len(rt.nodes)))
	}
	if rc.MaxRecoveries <= 0 {
		rc.MaxRecoveries = 1
	}
	rt.rec = &recoveryState{
		cfg:       rc,
		verdicts:  make(map[int]map[int]bool),
		scheduled: make(map[int]bool),
	}
	for i, n := range rt.nodes {
		i := i
		n.ce.OnError(func(err error) { rt.commError(i, err) })
	}
}

// KillRank marks rank crashed: its handlers and workers go inert. Wire it to
// the fabric's crash notification (fab.OnCrash) so the runtime's view of the
// crash is exactly the fabric's.
func (rt *Runtime) KillRank(rank int) {
	n := rt.nodes[rank]
	n.dead = true
	n.paused = true
}

// rankOf resolves t's executing rank through the recovery remap.
func (rt *Runtime) rankOf(t TaskID) int {
	r := rt.tp.RankOf(t)
	if rt.remap != nil {
		if nr, ok := rt.remap[r]; ok {
			return nr
		}
	}
	return r
}

// isDone reports whether t completed before the latest restart.
func (rt *Runtime) isDone(t TaskID) bool { return rt.rec != nil && rt.rec.done[t] }

// checkpointTask streams a completed task's outputs to the rank's buddy.
// No-op (and zero-cost) when recovery is off.
func (rt *Runtime) checkpointTask(n *node, t TaskID, outputs []DataRef) {
	if rt.rec == nil || n.dead {
		return
	}
	flows := make([]recov.FlowCkpt, len(outputs))
	for i, o := range outputs {
		flows[i] = recov.FlowCkpt{Flow: int32(i), Size: o.Buf.Size, Data: o.Buf.Bytes}
	}
	k := recov.Key{Class: t.Class, Index: t.Index}
	m := rt.rec.cfg.Managers[n.rank]
	if owner := rt.rankOf(t); owner != n.rank {
		// A stolen task: the restart's done-set scan looks at the owner, so
		// the completion marker must land there (and at the owner's buddy,
		// covering the owner itself crashing) — not at this thief's buddy.
		// The buddy index is static ring knowledge; reading the owner's
		// manager for it is a simulator convenience, not a protocol channel.
		m.CheckpointFor(k, flows, owner, rt.rec.cfg.Managers[owner].Buddy())
		return
	}
	m.Checkpoint(k, flows)
}

// commError is the engines' error handler once recovery is armed.
func (rt *Runtime) commError(observer int, err error) {
	var pd core.PeerDeath
	if errors.As(err, &pd) {
		rt.peerDead(observer, pd.DeadPeer(), err)
		return
	}
	rt.fail(err)
}

// peerDead handles one survivor's death verdict: the observer pauses (its
// pre-crash dataflow state is about to be wiped) and casts a DEADVOTE on
// the termination-detection control channel to the lowest live rank, which
// schedules the restart once every survivor has voted. Convergence is thus
// a wire-level consensus, not a direct-call barrier: a vote travels with
// real latency and the collector is a rank, not the orchestrator.
func (rt *Runtime) peerDead(observer, dead int, err error) {
	rec := rt.rec
	if rt.failed != nil {
		return
	}
	if rec.recoveries >= rec.cfg.MaxRecoveries {
		rt.fail(err)
		return
	}
	rt.KillRank(dead) // idempotent; normally already done via fab.OnCrash
	on := rt.nodes[observer]
	on.paused = true

	collector := -1
	for r, n := range rt.nodes {
		if !n.dead {
			collector = r
			break
		}
	}
	if collector < 0 {
		rt.fail(err) // no survivors at all
		return
	}
	if collector == observer {
		rt.recordDeadvote(dead, observer)
		return
	}
	vote := termMsg{kind: termDeadvote, epoch: on.epoch, rank: int32(dead)}
	on.ce.SendAM(tagTerm, collector, encodeTermMsg(vote))
}

// FlowCounter is an optional Taskpool extension: how many output flows a
// task produces. Recovery's task enumeration walks successor edges per flow;
// pools without the extension are assumed to produce exactly one.
type FlowCounter interface {
	Flows(t TaskID) int
}

func (rt *Runtime) flowsOf(t TaskID) int {
	if fc, ok := rt.tp.(FlowCounter); ok {
		return fc.Flows(t)
	}
	return 1
}

// enumerateTasks walks the whole task graph from the roots (every non-root
// task is reachable along dependence edges, or it could never have run).
func (rt *Runtime) enumerateTasks() []TaskID {
	seen := make(map[TaskID]bool)
	var queue, all []TaskID
	push := func(t TaskID) {
		if !seen[t] {
			seen[t] = true
			queue = append(queue, t)
		}
	}
	for r := range rt.nodes {
		rt.tp.Roots(r, push)
	}
	var succ []Dep
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		all = append(all, t)
		for f := 0; f < rt.flowsOf(t); f++ {
			succ = rt.tp.Successors(t, int32(f), succ[:0])
			for _, d := range succ {
				push(d.Task)
			}
		}
	}
	return all
}

// restart rebuilds the runtime around the dead rank's absence.
func (rt *Runtime) restart(dead int) {
	rec := rt.rec
	if rt.failed != nil {
		return
	}
	rec.recoveries++
	rt.restarts.Inc()

	// Re-map ownership: the dead rank's tasks move to its buddy, and
	// survivors who were checkpointing TO the dead rank re-aim at the same
	// place (falling back to local-only when that is themselves).
	buddy := rec.cfg.Managers[dead].Buddy()
	if rt.remap == nil {
		rt.remap = make(map[int]int)
	}
	rt.remap[dead] = buddy
	for r, m := range rec.cfg.Managers {
		if r != dead && !rt.nodes[r].dead && m.Buddy() == dead {
			m.SetBuddy(buddy)
		}
	}

	// A task is done exactly when its post-remap owner holds a checkpoint:
	// the owner's own completions are stored locally, and the dead rank's
	// are the copies its buddy received.
	all := rt.enumerateTasks()
	rec.done = make(map[TaskID]bool)
	for _, t := range all {
		owner := rt.rankOf(t)
		if rec.cfg.Managers[owner].Has(recov.Key{Class: t.Class, Index: t.Index}) {
			rec.done[t] = true
		}
	}

	// Wipe every rank's dataflow state and advance the epoch; all pre-crash
	// traffic still in flight becomes recognizably stale.
	for _, n := range rt.nodes {
		n.resetForRecovery()
	}

	// Rebuild per-rank totals under the new ownership; done tasks count as
	// executed and will never run again.
	for _, t := range all {
		n := rt.nodes[rt.rankOf(t)]
		n.total++
		if rec.done[t] {
			n.executed++
		}
	}

	// Restore every done task's outputs at its post-remap owner and re-issue
	// the activations its completion would have sent, filtered down to the
	// consumers that still need them.
	for _, t := range all {
		if !rec.done[t] {
			continue
		}
		owner := rt.rankOf(t)
		flows, ok := rec.cfg.Managers[owner].Lookup(recov.Key{Class: t.Class, Index: t.Index})
		if !ok {
			panic(fmt.Sprintf("parsec: done task %v has no checkpoint at rank %d", t, owner))
		}
		rt.nodes[owner].restoreTask(t, flows)
	}

	// Reseed the roots that still need to run.
	for r := range rt.nodes {
		rt.tp.Roots(r, func(t TaskID) {
			if rec.done[t] {
				return
			}
			n := rt.nodes[rt.rankOf(t)]
			n.stateOf(t)
			n.makeReady(t)
		})
	}

	// The dead rank leaves the termination-detection ring only now: until
	// this point its unexecuted work kept any token parked at the inert
	// rank, which is what made a false announcement between crash and
	// restart impossible. The restart is one atomic simulation event, so
	// every rank's counters were zeroed in lockstep above and the detector's
	// round state starts clean.
	rt.term.members[dead] = false
	rt.term.outstanding = false
	rt.term.lastValid = false

	// Resume. Each rank re-evaluates its quiet state: idle survivors nudge
	// the (possibly new) coordinator and go probing for work to steal; if
	// everything was already done, the detector proves it and announces.
	for _, n := range rt.nodes {
		if n.dead {
			continue
		}
		n.paused = false
		n.dispatch()
	}
	for _, n := range rt.nodes {
		if !n.dead {
			n.pollQuiet()
		}
	}
}

// resetForRecovery wipes one rank's dataflow state for a restart. Old memory
// registrations are deliberately leaked rather than deregistered: a put that
// raced the crash may still land in one, and the registry panics on unknown
// handles — the leaked registration absorbs the write and the stale
// completion is dropped by epoch.
func (n *node) resetForRecovery() {
	n.epoch++
	n.store = make(map[flowKey]*flowData)
	n.tasks = make(map[TaskID]*taskState)
	n.ready = prioQueue{}
	n.fetchQ = prioQueue{}
	n.activeFetches = 0
	n.pendingAct = make(map[int][]activation)
	n.flushQueued = make(map[int]bool)
	n.lastOutputs = nil
	n.executed, n.total = 0, 0
	n.idle = n.idle[:0]
	for i := range n.workers {
		n.idle = append(n.idle, i)
	}
	n.paused = true
	// Termination-detection reset: counters restart from zero in the new
	// epoch (stale cross-epoch messages are dropped uncounted on receive, so
	// the books stay balanced), any parked token is void, and the dirty flag
	// re-arms so every rank reintroduces itself to the detector. Stealing
	// state resets alongside: an in-flight probe or grant died with the old
	// epoch.
	n.csent, n.crecv = 0, 0
	n.black = false
	n.dirty = true
	n.heldToken = nil
	// pendingOps is NOT zeroed: closures already on the communication thread
	// still fire (their bodies drop stale work by epoch) and each decrements
	// the counter; zeroing here would double-count them negative and wedge
	// the quiet predicate.
	n.probeOut = false
	n.starving = nil
	n.stealSvcQueued = false
	if n.rot != nil {
		n.rot.Reset()
	}
}

// restoreTask re-creates a done task's output flows from its checkpoint: the
// payload becomes flowReady at this rank, local not-yet-done consumers are
// satisfied directly, and each rank that still has consumers waiting gets a
// fresh (tree-less) activation to fetch against.
func (n *node) restoreTask(t TaskID, flows []recov.FlowCkpt) {
	n.tasksRestored.Inc()
	for _, f := range flows {
		key := flowKey{t, f.Flow}
		n.succScratch = n.rt.tp.Successors(t, f.Flow, n.succScratch[:0])
		var locals []TaskID
		var remote []int32
		seen := map[int32]bool{}
		for _, dep := range n.succScratch {
			if n.rt.isDone(dep.Task) {
				continue
			}
			r := n.rankOf(dep.Task)
			if r == n.rank {
				locals = append(locals, dep.Task)
				continue
			}
			if !seen[int32(r)] {
				seen[int32(r)] = true
				remote = append(remote, int32(r))
			}
		}
		if len(locals) == 0 && len(remote) == 0 {
			continue // every consumer already ran; nothing needs this copy
		}
		sort.Slice(remote, func(i, j int) bool { return remote[i] < remote[j] })

		ref := n.rt.tp.MakeCopy(t, f.Flow, f.Size)
		if f.Data != nil {
			buf.Copy(ref.Buf, buf.FromBytes(f.Data))
		}
		now := int64(n.clock.Read(n.eng.Now()))
		fd := &flowData{state: flowReady, ref: ref, size: f.Size}
		fd.meta = activation{task: t, flow: f.Flow, size: f.Size,
			root: int32(n.rank), rootSend: now, hopRank: int32(n.rank), hopSend: now,
			epoch: n.epoch}
		n.store[key] = fd

		for _, lt := range locals {
			fd.localRefs++
			n.satisfy(lt)
		}
		if f.Size > 0 {
			fd.expectedGets = len(remote)
		}
		for _, r := range remote {
			act := fd.meta
			act.subtree = nil
			n.sendActivate(int(r), act, -1)
		}
	}
}
