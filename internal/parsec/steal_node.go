package parsec

import (
	"amtlci/internal/core"
	"amtlci/internal/sim"
	"amtlci/internal/steal"
)

// Inter-rank work stealing (Config.Steal). A rank whose workers have all
// gone idle — the same quiet transition the termination detector watches —
// probes the other ranks in ring order. A loaded victim grants up to half
// of its *eligible* ready tasks as RMA-style task frames: the task identity
// plus its input-flow sizes. The thief rebuilds each task's dependence
// state from the taskpool (identical on every rank by contract) and pulls
// the actual input tiles over the ordinary GET DATA / put machinery, so
// migrated data moves under the existing flow-word protocol and stolen
// results are announced exactly like home-grown ones. All three steal
// messages are counted by the termination detector: an in-flight grant
// vetoes termination like any other dataflow message.
//
// Eligibility: a ready task can migrate only if every input flow is
// resident (flowReady) at the victim. The thief may itself be a consumer
// rank of an input flow — common under block-cyclic placement — in which
// case an ACTIVATE for that flow has been or will be multicast to it. If
// the activation arrives first, the thief adopts into the existing entry
// and RELEASEs the victim's pin; if the steal lands first, the entry is
// flagged stolen and the later activation merges into it
// (mergeActivation) instead of colliding as a duplicate.
//
// Pin accounting: for each granted task input with a payload the victim
// increments the flow's expectedGets (a pin) so cleanup cannot retire the
// copy before the thief has it. The thief settles every pin exactly once:
// either its GET DATA (the fetch serves and unpins) or an explicit RELEASE
// (the thief already holds or is already fetching its own copy). Shared
// inputs across stolen tasks pin once per granted task and settle once per
// pin.

// maybeProbe sends one steal probe if this (quiet) rank's rotation still
// has victims to try. At most one probe is outstanding; the rotation goes
// dormant after a full unsuccessful cycle and re-arms when local work
// appears or a grant lands — two mutually idle ranks therefore stop probing
// each other instead of ping-ponging forever.
func (n *node) maybeProbe() {
	if n.rot == nil || n.probeOut || n.rt.failed != nil || n.rt.term.announced {
		return
	}
	v, ok := n.rot.Next(func(r int) bool { return !n.rt.nodes[r].dead })
	if !ok {
		return
	}
	n.probeOut = true
	n.probeSentAt = n.eng.Now()
	req := steal.Request{Epoch: n.epoch, Max: uint16(n.cfg.StealMax)}
	n.csent++
	n.ce.SendAM(tagStealReq, v, steal.EncodeRequest(req))
}

// onStealReq runs at the victim: decode, count, and defer the grant
// decision to the communication thread.
func (n *node) onStealReq(_ core.Engine, _ core.Tag, data []byte, src int) {
	if n.dead {
		return
	}
	req, err := steal.DecodeRequest(data)
	if err != nil {
		n.wireFail("parsec: rank %d: bad steal request from %d: %w", n.rank, src, err)
		return
	}
	if req.Epoch != n.epoch {
		n.staleDrops.Inc()
		return
	}
	n.countRecv()
	n.submit(n.cfg.GetDataCost, func() { n.serveSteal(src, req) })
}

// serveSteal grants up to half of the eligible ready tasks to the thief —
// always answering, because the thief's rotation blocks on the reply. A
// denied thief is remembered as starving: when this rank next gains ready
// work it pushes a grant unprompted (serveStarving). Push-on-demand is what
// keeps stealing live without retry timers — a periodic re-probe would be a
// perpetual event source, which would both hold the simulation open and feed
// the termination detector an endless stream of counted messages.
func (n *node) serveSteal(src int, req steal.Request) {
	if n.dead || req.Epoch != n.epoch {
		return // a restart voided the exchange on both ends
	}
	if n.rt.nodes[src].dead {
		return // granting to a crashed thief would strand the tasks
	}
	rep := steal.Reply{Epoch: n.epoch}
	if !n.paused && n.ready.Len() >= 1 {
		// Anything still queued is surplus: the workers are all busy or the
		// queue would have drained into them.
		rep.Tasks = n.grantTasks(src, int(req.Max))
	}
	if len(rep.Tasks) == 0 {
		if n.starving == nil {
			n.starving = make(map[int]bool)
		}
		n.starving[src] = true
	}
	n.csent++
	n.ce.SendAM(tagStealRep, src, steal.EncodeReply(rep))
}

// serveStarving runs on the victim's communication thread after new ready
// work appeared while denied thieves were on record: it pushes each starving
// thief (in rank order, for determinism) an unsolicited grant while surplus
// remains. Thieves that cannot be served right now simply stay starving and
// are retried at the next makeReady.
func (n *node) serveStarving() {
	n.stealSvcQueued = false
	if n.dead || n.paused || n.rt.failed != nil {
		return
	}
	for r := 0; r < n.rt.ranks() && len(n.starving) > 0; r++ {
		if !n.starving[r] {
			continue
		}
		if n.rt.nodes[r].dead {
			delete(n.starving, r)
			continue
		}
		if n.ready.Len() < 1 {
			return
		}
		frames := n.grantTasks(r, n.cfg.StealMax)
		if len(frames) == 0 {
			return // nothing eligible for anyone right now; retry later
		}
		delete(n.starving, r)
		rep := steal.Reply{Epoch: n.epoch, Tasks: frames}
		n.csent++
		n.ce.SendAM(tagStealRep, r, steal.EncodeReply(rep))
	}
}

// grantTasks pops the entire ready queue, selects the lowest-priority
// eligible tasks (the steal-half policy: the victim keeps at least half,
// and keeps its high-priority critical path), detaches them from local
// scheduler state, pins their inputs, and returns their wire frames.
func (n *node) grantTasks(thief, reqMax int) []steal.TaskFrame {
	all := make([]prioItem, 0, n.ready.Len())
	for n.ready.Len() > 0 {
		all = append(all, n.ready.Pop()) // highest priority first
	}
	eligible := make([]int, 0, len(all)) // indices into all
	for i, it := range all {
		if n.stealEligible(it.task, thief) {
			eligible = append(eligible, i)
		}
	}
	// Steal half, but at least one: post-crash imbalance on small graphs
	// trickles tasks into the victim's queue one at a time, and a strict
	// half-of-queue policy would never migrate anything.
	grant := steal.Half(len(eligible))
	if grant == 0 && len(eligible) > 0 {
		grant = 1
	}
	if grant > n.cfg.StealMax {
		grant = n.cfg.StealMax
	}
	if grant > reqMax {
		grant = reqMax
	}
	if grant > steal.MaxTasksPerReply {
		grant = steal.MaxTasksPerReply
	}

	// Take the granted tasks from the low-priority end of the eligible set.
	granted := make(map[int]bool, grant)
	for i := 0; i < grant; i++ {
		granted[eligible[len(eligible)-1-i]] = true
	}
	frames := make([]steal.TaskFrame, 0, grant)
	for i, it := range all {
		if !granted[i] {
			n.ready.Push(it.priority, it.task, nil)
			continue
		}
		frames = append(frames, n.detachTask(it.task))
	}
	if len(frames) > 0 {
		n.stealGrantedC.Add(uint64(len(frames)))
	}
	return frames
}

// stealEligible reports whether t can migrate to thief: all inputs resident.
func (n *node) stealEligible(t TaskID, thief int) bool {
	n.inputScratch = n.rt.tp.Inputs(t, n.inputScratch[:0])
	for _, dep := range n.inputScratch {
		fd, ok := n.store[flowKey{dep.Task, dep.Flow}]
		if !ok || fd.state != flowReady {
			return false
		}
	}
	return true
}

// detachTask removes one ready task from this rank's scheduler state and
// pins its inputs for the thief, returning the wire frame.
func (n *node) detachTask(t TaskID) steal.TaskFrame {
	delete(n.tasks, t)
	n.total--
	n.inputScratch = n.rt.tp.Inputs(t, n.inputScratch[:0])
	frame := steal.TaskFrame{Class: t.Class, Index: t.Index}
	if len(n.inputScratch) > 0 {
		frame.InputSizes = make([]int64, len(n.inputScratch))
	}
	for i, dep := range n.inputScratch {
		key := flowKey{dep.Task, dep.Flow}
		fd := n.store[key] // eligibility guaranteed flowReady above
		frame.InputSizes[i] = fd.size
		// The local reference the ready task held moves to the thief: the
		// thief settles it with a GET (data flows) or a RELEASE.
		fd.localRefs--
		if fd.size > 0 {
			fd.expectedGets++ // pin until the thief settles
		} else {
			n.maybeClean(key, fd)
		}
	}
	return frame
}

// onStealRep runs at the thief: adopt the granted tasks.
func (n *node) onStealRep(_ core.Engine, _ core.Tag, data []byte, src int) {
	if n.dead {
		return
	}
	rep, err := steal.DecodeReply(data)
	if err != nil {
		n.wireFail("parsec: rank %d: bad steal reply from %d: %w", n.rank, src, err)
		return
	}
	if rep.Epoch != n.epoch {
		n.staleDrops.Inc()
		return
	}
	n.countRecv()
	cost := n.cfg.DeliverCost * sim.Duration(1+len(rep.Tasks))
	n.submit(cost, func() { n.adoptStolen(src, rep) })
}

// adoptStolen integrates a steal reply at the thief: record latency,
// rebuild each task's dependence state, settle each input pin with a fetch
// or a release, and let the ordinary satisfy/dispatch machinery take over.
func (n *node) adoptStolen(victim int, rep steal.Reply) {
	if n.dead || rep.Epoch != n.epoch {
		return
	}
	if n.probeOut {
		// Solicited reply: settle the probe. (A pushed grant from a starving
		// registration arrives with no probe outstanding and no latency to
		// attribute.)
		n.probeOut = false
		n.stealLat.Observe(uint64(n.eng.Now().Sub(n.probeSentAt) / sim.Nanosecond))
	}
	if len(rep.Tasks) == 0 {
		// Denial: the victim has registered us as starving. The submit
		// wrapper's pollQuiet probes the next rotation victim if this rank is
		// still quiet.
		return
	}
	n.stealsC.Inc()
	n.stealTasksC.Add(uint64(len(rep.Tasks)))
	n.rot.Reset() // a feeding victim is worth another full cycle later
	for _, f := range rep.Tasks {
		n.adoptTask(victim, f)
	}
}

func (n *node) adoptTask(victim int, f steal.TaskFrame) {
	t := TaskID{Class: f.Class, Index: f.Index}
	n.total++
	n.stateOf(t) // remaining = len(Inputs); the satisfactions below drain it
	n.inputScratch = n.rt.tp.Inputs(t, n.inputScratch[:0])
	if len(n.inputScratch) != len(f.InputSizes) {
		n.wireFail("parsec: steal frame for %v carries %d input sizes, task has %d inputs",
			t, len(f.InputSizes), len(n.inputScratch))
		return
	}
	// Iterate over a stable copy: satisfy() below may re-enter the taskpool
	// and clobber inputScratch.
	deps := append([]Dep(nil), n.inputScratch...)
	for i, dep := range deps {
		key := flowKey{dep.Task, dep.Flow}
		size := f.InputSizes[i]
		fd, ok := n.store[key]
		if !ok {
			if size == 0 {
				// Control flow: nothing to move; synthesize the satisfied
				// entry the activation would have left behind.
				fd = &flowData{state: flowReady, size: 0, stolen: true}
				fd.meta = activation{task: dep.Task, flow: dep.Flow,
					hopRank: int32(victim), epoch: n.epoch}
				n.store[key] = fd
				fd.localRefs++
				n.satisfy(t) // execute() drops the ref and cleans the entry
				continue
			}
			// The victim holds the payload and has pinned it for us: fetch
			// over the ordinary GET DATA path, which settles the pin.
			fd = &flowData{state: flowAnnounced, size: size, stolen: true}
			fd.meta = activation{task: dep.Task, flow: dep.Flow, size: size,
				root: int32(victim), hopRank: int32(victim), epoch: n.epoch}
			n.store[key] = fd
			fd.localRefs++
			fd.waiters = append(fd.waiters, t)
			n.requestFetch(key, fd, n.rt.tp.Priority(t))
			continue
		}
		// A copy already exists here (we produced the flow ourselves, or an
		// earlier steal brought it): reuse it and release the victim's pin —
		// our GET, if any, targets the existing entry's source.
		fd.localRefs++
		if fd.state == flowReady {
			n.satisfy(t)
		} else {
			fd.waiters = append(fd.waiters, t)
			if fd.state == flowAnnounced {
				n.requestFetch(key, fd, n.rt.tp.Priority(t))
			}
		}
		if size > 0 {
			rel := steal.Release{Class: dep.Task.Class, Index: dep.Task.Index,
				Flow: dep.Flow, Epoch: n.epoch}
			n.csent++
			n.ce.SendAM(tagStealRel, victim, steal.EncodeRelease(rel))
		}
	}
	if len(deps) == 0 {
		// A stolen root: ready immediately.
		n.makeReady(t)
	}
}

// mergeActivation folds a real activation into a steal-created store entry:
// the steal raced the multicast and won. Local consumers join exactly as in
// processActivation (stolen tasks are already among the waiters, and their
// RankOf is the victim's, so the successor scan never double-adds them); a
// subtree is forwarded as usual, with this rank's copy — fetched from the
// steal victim — serving the children when it lands.
func (n *node) mergeActivation(key flowKey, fd *flowData, act activation) {
	fd.stolen = false
	n.succScratch = n.rt.tp.Successors(act.task, act.flow, n.succScratch[:0])
	maxPrio := int64(-1 << 62)
	var fresh []TaskID
	for _, dep := range n.succScratch {
		if n.rankOf(dep.Task) != n.rank || n.rt.isDone(dep.Task) {
			continue
		}
		fresh = append(fresh, dep.Task)
		if p := n.rt.tp.Priority(dep.Task); p > maxPrio {
			maxPrio = p
		}
	}
	if len(act.subtree) > 0 {
		tree := append([]int32{int32(n.rank)}, act.subtree...)
		children := treeSplit(tree)
		if act.size > 0 {
			// Control flows never draw GETs; counting children would leak
			// the entry.
			fd.expectedGets += len(children)
		}
		now := int64(n.clock.Read(n.eng.Now()))
		for _, sub := range children {
			fwd := act
			fwd.hopRank = int32(n.rank)
			fwd.hopSend = now
			fwd.subtree = sub[1:]
			n.ce.SendAM(tagActivate, int(sub[0]), encodeActivates([]activation{fwd}))
			n.activatesSent.Inc()
			n.activations.Inc()
			n.csent++
		}
	}
	if fd.state == flowReady {
		// The stolen copy has already landed (or the flow carries no data):
		// release the fresh consumers directly.
		for _, t := range fresh {
			fd.localRefs++
			n.satisfy(t)
		}
		n.maybeClean(key, fd)
		return
	}
	for _, t := range fresh {
		fd.localRefs++
		fd.waiters = append(fd.waiters, t)
	}
	n.requestFetch(key, fd, maxPrio) // no-op unless still announced
}

// onStealRel runs at the victim: the thief settled one input pin without
// fetching.
func (n *node) onStealRel(_ core.Engine, _ core.Tag, data []byte, src int) {
	if n.dead {
		return
	}
	rel, err := steal.DecodeRelease(data)
	if err != nil {
		n.wireFail("parsec: rank %d: bad steal release from %d: %w", n.rank, src, err)
		return
	}
	if rel.Epoch != n.epoch {
		n.staleDrops.Inc()
		return
	}
	n.countRecv()
	n.submit(n.cfg.GetDataCost, func() {
		if n.dead || rel.Epoch != n.epoch {
			return
		}
		key := flowKey{TaskID{Class: rel.Class, Index: rel.Index}, rel.Flow}
		fd, ok := n.store[key]
		if !ok {
			return // already fully retired; the pin died with the epoch
		}
		fd.servedGets++
		n.maybeClean(key, fd)
	})
}
