package parsec

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestActivationRoundTrip(t *testing.T) {
	f := func(class int32, index int64, flow int32, size int64, root int32,
		rootSend, hopSend int64, hopRank, epoch int32, subtree []int32) bool {
		if len(subtree) > 1000 {
			subtree = subtree[:1000]
		}
		// flow and epoch share one packed 16+16-bit wire word.
		flow &= 0xFFFF
		epoch = int32(int16(epoch))
		a := activation{
			task: TaskID{Class: class, Index: index}, flow: flow, size: size,
			root: root, rootSend: rootSend, hopRank: hopRank, hopSend: hopSend,
			epoch: epoch, subtree: subtree,
		}
		got, rest, err := decodeActivation(appendActivation(nil, a))
		if err != nil || len(rest) != 0 {
			return false
		}
		if got.task != a.task || got.flow != a.flow || got.size != a.size ||
			got.root != a.root || got.rootSend != a.rootSend ||
			got.hopRank != a.hopRank || got.hopSend != a.hopSend ||
			got.epoch != a.epoch {
			return false
		}
		if len(got.subtree) != len(a.subtree) {
			return false
		}
		for i := range a.subtree {
			if got.subtree[i] != a.subtree[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregatedActivationsRoundTrip(t *testing.T) {
	var entries []activation
	for i := 0; i < 37; i++ {
		entries = append(entries, activation{
			task: TaskID{Class: int32(i % 4), Index: int64(i * 1000)},
			flow: int32(i % 3), size: int64(i * 4096),
			root: int32(i % 16), rootSend: int64(i) * 777,
			hopRank: int32(i % 8), hopSend: int64(i) * 333,
		})
	}
	got, err := decodeActivates(encodeActivates(entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i].task != entries[i].task || got[i].size != entries[i].size {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestGetDataRoundTrip(t *testing.T) {
	g := getData{task: TaskID{Class: 2, Index: 123456789}, flow: 1, epoch: 3,
		rreg: regHandle{Rank: 7, ID: 0xDEADBEEF}}
	got, err := decodeGetData(g.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != g {
		t.Fatalf("got %+v, want %+v", got, g)
	}
}

func TestPutMetaRoundTrip(t *testing.T) {
	f := func(class int32, index int64, flow, epoch, root int32, rootSend int64,
		hopRank int32, hopSend int64) bool {
		flow &= 0xFFFF
		epoch = int32(int16(epoch))
		m := putMeta{task: TaskID{Class: class, Index: index}, flow: flow,
			epoch: epoch, root: root, rootSend: rootSend, hopRank: hopRank,
			hopSend: hopSend}
		got, err := decodePutMeta(m.encode())
		return err == nil && got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsMalformedPayloads(t *testing.T) {
	act := encodeActivates([]activation{{
		task: TaskID{Class: 1, Index: 2}, flow: 1, size: 64,
		subtree: []int32{3, 4, 5},
	}})
	g := getData{task: TaskID{Class: 2, Index: 9}, flow: 1,
		rreg: regHandle{Rank: 3, ID: 17}}.encode()
	m := putMeta{task: TaskID{Class: 4, Index: 5}, flow: 2, root: 1}.encode()

	cases := []struct {
		name string
		err  func([]byte) error
		good []byte
	}{
		{"activates", func(b []byte) error { _, err := decodeActivates(b); return err }, act},
		{"getData", func(b []byte) error { _, err := decodeGetData(b); return err }, g},
		{"putMeta", func(b []byte) error { _, err := decodePutMeta(b); return err }, m},
	}
	for _, tc := range cases {
		if err := tc.err(tc.good); err != nil {
			t.Fatalf("%s: well-formed payload rejected: %v", tc.name, err)
		}
		// Every strict prefix must be rejected, as must one trailing byte —
		// never a panic, never silent acceptance.
		for cut := 0; cut < len(tc.good); cut++ {
			if err := tc.err(tc.good[:cut]); err == nil {
				t.Fatalf("%s: truncation to %d bytes accepted", tc.name, cut)
			}
		}
		if err := tc.err(append(append([]byte(nil), tc.good...), 0)); err == nil {
			t.Fatalf("%s: trailing byte accepted", tc.name)
		}
	}

	// An ACTIVATE whose count promises more entries than the payload holds.
	if _, err := decodeActivates([]byte{0xFF, 0xFF, 1, 2, 3}); err == nil {
		t.Fatal("oversized ACTIVATE count accepted")
	}
}

func FuzzDecodeActivates(f *testing.F) {
	f.Add(encodeActivates(nil))
	f.Add(encodeActivates([]activation{{
		task: TaskID{Class: 1, Index: 2}, flow: 1, size: 4096,
		root: 3, rootSend: 777, hopRank: 2, hopSend: 333, subtree: []int32{4, 5},
	}}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, b []byte) {
		entries, err := decodeActivates(b)
		if err != nil {
			return
		}
		// Accepted payloads must re-encode byte-for-byte: the format is a
		// bijection, so anything else means a field was mis-parsed.
		if re := encodeActivates(entries); !bytes.Equal(re, b) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", b, re)
		}
	})
}

func FuzzDecodeGetData(f *testing.F) {
	f.Add(getData{task: TaskID{Class: 2, Index: 9}, flow: 1,
		rreg: regHandle{Rank: 3, ID: 17}}.encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		g, err := decodeGetData(b)
		if err != nil {
			return
		}
		if re := g.encode(); !bytes.Equal(re, b) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", b, re)
		}
	})
}

func FuzzDecodePutMeta(f *testing.F) {
	f.Add(putMeta{task: TaskID{Class: 4, Index: 5}, flow: 2, root: 1,
		rootSend: 99, hopRank: 3, hopSend: 101}.encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := decodePutMeta(b)
		if err != nil {
			return
		}
		if re := m.encode(); !bytes.Equal(re, b) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", b, re)
		}
	})
}

func TestTreeSplitPartitionsExactly(t *testing.T) {
	// Property: the children's subtrees partition ranks[1:] (no loss, no
	// duplication), and tree depth is logarithmic.
	f := func(n uint8) bool {
		size := int(n%64) + 1
		ranks := make([]int32, size)
		for i := range ranks {
			ranks[i] = int32(i * 3)
		}
		children := treeSplit(ranks)
		seen := map[int32]bool{}
		for _, sub := range children {
			if len(sub) == 0 {
				return false
			}
			for _, r := range sub {
				if seen[r] || r == ranks[0] {
					return false
				}
				seen[r] = true
			}
		}
		if len(seen) != size-1 {
			return false
		}
		// Binomial root degree is ceil(log2(size)).
		deg := 0
		for s := size; s > 1; s = (s + 1) / 2 {
			deg++
		}
		return len(children) == deg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeSplitDepthLogarithmic(t *testing.T) {
	// Follow the deepest chain: with 1024 ranks the tree depth must be 10.
	var depth func(ranks []int32) int
	depth = func(ranks []int32) int {
		if len(ranks) <= 1 {
			return 0
		}
		best := 0
		for _, sub := range treeSplit(ranks) {
			if d := depth(sub); d > best {
				best = d
			}
		}
		return best + 1
	}
	ranks := make([]int32, 1024)
	for i := range ranks {
		ranks[i] = int32(i)
	}
	if d := depth(ranks); d != 10 {
		t.Fatalf("depth = %d, want 10", d)
	}
}

func TestTrivialTrees(t *testing.T) {
	if c := treeSplit([]int32{5}); len(c) != 0 {
		t.Fatalf("singleton tree has children: %v", c)
	}
	c := treeSplit([]int32{1, 2})
	if len(c) != 1 || len(c[0]) != 1 || c[0][0] != 2 {
		t.Fatalf("pair tree: %v", c)
	}
}

func TestPrioQueueOrdering(t *testing.T) {
	var q prioQueue
	q.Push(1, TaskID{Index: 1}, nil)
	q.Push(9, TaskID{Index: 2}, nil)
	q.Push(5, TaskID{Index: 3}, nil)
	q.Push(9, TaskID{Index: 4}, nil) // FIFO among equals
	want := []int64{2, 4, 3, 1}
	for i, w := range want {
		if got := q.Pop().task.Index; got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
}
