package parsec

import (
	"testing"
	"testing/quick"
)

func TestActivationRoundTrip(t *testing.T) {
	f := func(class int32, index int64, flow int32, size int64, root int32,
		rootSend, hopSend int64, hopRank int32, subtree []int32) bool {
		if len(subtree) > 1000 {
			subtree = subtree[:1000]
		}
		a := activation{
			task: TaskID{Class: class, Index: index}, flow: flow, size: size,
			root: root, rootSend: rootSend, hopRank: hopRank, hopSend: hopSend,
			subtree: subtree,
		}
		got, rest := decodeActivation(appendActivation(nil, a))
		if len(rest) != 0 {
			return false
		}
		if got.task != a.task || got.flow != a.flow || got.size != a.size ||
			got.root != a.root || got.rootSend != a.rootSend ||
			got.hopRank != a.hopRank || got.hopSend != a.hopSend {
			return false
		}
		if len(got.subtree) != len(a.subtree) {
			return false
		}
		for i := range a.subtree {
			if got.subtree[i] != a.subtree[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregatedActivationsRoundTrip(t *testing.T) {
	var entries []activation
	for i := 0; i < 37; i++ {
		entries = append(entries, activation{
			task: TaskID{Class: int32(i % 4), Index: int64(i * 1000)},
			flow: int32(i % 3), size: int64(i * 4096),
			root: int32(i % 16), rootSend: int64(i) * 777,
			hopRank: int32(i % 8), hopSend: int64(i) * 333,
		})
	}
	got := decodeActivates(encodeActivates(entries))
	if len(got) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i].task != entries[i].task || got[i].size != entries[i].size {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestGetDataRoundTrip(t *testing.T) {
	g := getData{task: TaskID{Class: 2, Index: 123456789}, flow: 1,
		rreg: regHandle{Rank: 7, ID: 0xDEADBEEF}}
	got := decodeGetData(g.encode())
	if got != g {
		t.Fatalf("got %+v, want %+v", got, g)
	}
}

func TestPutMetaRoundTrip(t *testing.T) {
	f := func(class int32, index int64, flow, root int32, rootSend int64,
		hopRank int32, hopSend int64) bool {
		m := putMeta{task: TaskID{Class: class, Index: index}, flow: flow,
			root: root, rootSend: rootSend, hopRank: hopRank, hopSend: hopSend}
		return decodePutMeta(m.encode()) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeSplitPartitionsExactly(t *testing.T) {
	// Property: the children's subtrees partition ranks[1:] (no loss, no
	// duplication), and tree depth is logarithmic.
	f := func(n uint8) bool {
		size := int(n%64) + 1
		ranks := make([]int32, size)
		for i := range ranks {
			ranks[i] = int32(i * 3)
		}
		children := treeSplit(ranks)
		seen := map[int32]bool{}
		for _, sub := range children {
			if len(sub) == 0 {
				return false
			}
			for _, r := range sub {
				if seen[r] || r == ranks[0] {
					return false
				}
				seen[r] = true
			}
		}
		if len(seen) != size-1 {
			return false
		}
		// Binomial root degree is ceil(log2(size)).
		deg := 0
		for s := size; s > 1; s = (s + 1) / 2 {
			deg++
		}
		return len(children) == deg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeSplitDepthLogarithmic(t *testing.T) {
	// Follow the deepest chain: with 1024 ranks the tree depth must be 10.
	var depth func(ranks []int32) int
	depth = func(ranks []int32) int {
		if len(ranks) <= 1 {
			return 0
		}
		best := 0
		for _, sub := range treeSplit(ranks) {
			if d := depth(sub); d > best {
				best = d
			}
		}
		return best + 1
	}
	ranks := make([]int32, 1024)
	for i := range ranks {
		ranks[i] = int32(i)
	}
	if d := depth(ranks); d != 10 {
		t.Fatalf("depth = %d, want 10", d)
	}
}

func TestTrivialTrees(t *testing.T) {
	if c := treeSplit([]int32{5}); len(c) != 0 {
		t.Fatalf("singleton tree has children: %v", c)
	}
	c := treeSplit([]int32{1, 2})
	if len(c) != 1 || len(c[0]) != 1 || c[0][0] != 2 {
		t.Fatalf("pair tree: %v", c)
	}
}

func TestPrioQueueOrdering(t *testing.T) {
	var q prioQueue
	q.Push(1, TaskID{Index: 1}, nil)
	q.Push(9, TaskID{Index: 2}, nil)
	q.Push(5, TaskID{Index: 3}, nil)
	q.Push(9, TaskID{Index: 4}, nil) // FIFO among equals
	want := []int64{2, 4, 3, 1}
	for i, w := range want {
		if got := q.Pop().task.Index; got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
}
