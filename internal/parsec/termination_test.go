package parsec_test

import (
	"strings"
	"testing"

	"amtlci/internal/core/stack"
	"amtlci/internal/parsec"
	"amtlci/internal/sim"
)

// TestTerminationAnnouncedAfterRun: every successful run must end with the
// detector having *proven* termination — Run errors out otherwise — and at
// least one token round must have circulated.
func TestTerminationAnnouncedAfterRun(t *testing.T) {
	forBackends(t, func(t *testing.T, b stack.Backend) {
		g := parsec.NewGraphPool("term", 3, false)
		// A little cross-rank diamond so counted traffic actually flows.
		a := g.AddTask(0, 0, 5*sim.Microsecond, 0, 256)
		b1 := g.AddTask(1, 1, 5*sim.Microsecond, 0, 256)
		b2 := g.AddTask(2, 2, 5*sim.Microsecond, 0, 256)
		c := g.AddTask(3, 0, 5*sim.Microsecond, 0)
		g.Link(a, 0, b1)
		g.Link(a, 0, b2)
		g.Link(b1, 0, c)
		g.Link(b2, 0, c)
		_, rt := build(t, b, 3, 2, g, nil)
		if _, err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		if !rt.Terminated() {
			t.Fatal("run succeeded but the detector never announced")
		}
		if rt.TermRounds() < 1 {
			t.Fatalf("term rounds = %d, want >= 1", rt.TermRounds())
		}
	})
}

// TestTerminationSingleRank: the degenerate one-member ring settles locally.
func TestTerminationSingleRank(t *testing.T) {
	g := parsec.NewGraphPool("solo", 1, false)
	g.AddTask(0, 0, sim.Microsecond, 0)
	_, rt := build(t, stack.LCI, 1, 1, g, nil)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if !rt.Terminated() {
		t.Fatal("single-rank run did not announce termination")
	}
}

// TestTerminationAnnouncedOnDeadlock: a deadlocked graph has genuinely
// terminated — nothing will ever run again — so the detector must announce
// (otherwise the park rule would spin or the event queue would hang), while
// Run still reports the more specific deadlock verdict.
func TestTerminationAnnouncedOnDeadlock(t *testing.T) {
	g := parsec.NewGraphPool("dead", 2, false)
	a := g.AddTask(0, 0, sim.Microsecond, 0, 8)
	bb := g.AddTask(1, 1, sim.Microsecond, 0, 8)
	c := g.AddTask(2, 0, sim.Microsecond, 0, 8)
	g.Link(a, 0, bb)
	g.Link(bb, 0, c)
	g.Link(c, 0, bb) // cycle: b needs c, c needs b
	_, rt := build(t, stack.LCI, 2, 2, g, nil)
	_, err := rt.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if !rt.Terminated() {
		t.Fatal("deadlocked graph: detector never announced, yet the queue drained")
	}
}

// TestTerminationListenerFires: OnTerminate listeners run exactly once at the
// announcement.
func TestTerminationListenerFires(t *testing.T) {
	g := parsec.NewGraphPool("listen", 2, false)
	a := g.AddTask(0, 0, sim.Microsecond, 0, 64)
	bb := g.AddTask(1, 1, sim.Microsecond, 0)
	g.Link(a, 0, bb)
	_, rt := build(t, stack.LCI, 2, 2, g, nil)
	fired := 0
	rt.OnTerminate(func() { fired++ })
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("termination listener fired %d times, want 1", fired)
	}
}
