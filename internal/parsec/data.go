package parsec

import (
	"amtlci/internal/buf"
)

// bufAlias lets parsec.DataRef expose the shared buffer type directly.
type bufAlias = buf.Buf

// NewDataRef wraps a buffer.
func NewDataRef(b buf.Buf) DataRef { return DataRef{Buf: b} }

// VirtualData returns a storage-less payload of n bytes.
func VirtualData(n int64) DataRef { return DataRef{Buf: buf.Virtual(n)} }

// RealData wraps a concrete byte slice.
func RealData(b []byte) DataRef { return DataRef{Buf: buf.FromBytes(b)} }

// flowKey identifies one produced dataflow instance.
type flowKey struct {
	task TaskID
	flow int32
}

// flowState is the lifecycle of a dataflow copy at one rank.
type flowState int8

const (
	flowAnnounced flowState = iota // ACTIVATE seen, fetch not started
	flowQueued                     // fetch accepted, waiting in the queue
	flowFetching                   // GET DATA sent, data in flight
	flowReady                      // payload available at this rank
)

// getReq is a GET DATA request waiting at a rank that does not yet hold the
// data (a forwarder whose own copy is still in flight).
type getReq struct {
	requester int
	epoch     int32
	hdr       putMeta
	rreg      regHandle
}
