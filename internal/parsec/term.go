package parsec

import (
	"fmt"

	"amtlci/internal/core"
	"amtlci/internal/metrics"
	"amtlci/internal/sim"
)

// Distributed termination detection. The runtime never *assumes* the
// computation is over: it proves it with a consensus round, in the style of
// PowerGraph's async_consensus, using Safra's token algorithm over the
// rank ring.
//
// Every dataflow protocol message (ACTIVATE, GET DATA, put completion,
// steal traffic) is *counted*: the sender increments csent, the receiver
// increments crecv after the message passes its epoch check, and a receiver
// blackens. A coordinator (the lowest ring member) circulates a token when
// it is locally quiet; each member holds the token until it too is quiet,
// then adds its counter imbalance (csent−crecv) and activity sum
// (csent+crecv) to the token, ORs in its color, whitens itself, and
// forwards. When the token returns white with a zero global imbalance,
// every rank was quiet at its visit and no counted message was in flight —
// in-flight sends veto termination through the q accounting — so the
// coordinator announces termination: listeners fire (the chaos harness
// stops rel heartbeats here) and an ANNOUNCE goes to every member.
//
// Crash interplay: a dead-but-unrecovered rank stays a ring member, so the
// token parks at the inert rank and no round can complete — the dead rank's
// unexecuted work keeps vetoing termination until the restart migrates it.
// The restart (one atomic simulation event) zeroes every rank's counters,
// drops the dead member, and resets the round state; stale cross-epoch
// traffic is never counted on receive, matching its sender counters having
// been zeroed. Survivor convergence before the restart also rides this
// protocol: each survivor's death verdict travels as a DEADVOTE control
// message to the lowest live rank, which schedules the restart when every
// survivor has voted — replacing the old direct-call barrier.
//
// Detector control traffic (token, announce, nudge, deadvote), heartbeats,
// and checkpoint frames are deliberately uncounted: they are not part of
// the computation being detected.

// termMsg kinds.
const (
	termToken    = 1 // Safra token circulating the member ring
	termAnnounce = 2 // coordinator's termination announcement
	termNudge    = 3 // "my counters changed and I am quiet again" hint
	termDeadvote = 4 // survivor's peer-death verdict (rank = the dead peer)
)

// termMsg is the single wire format of the termination control channel.
type termMsg struct {
	kind  byte
	epoch int32
	round int32
	q     int64 // token: accumulated csent−crecv
	acts  int64 // token: accumulated csent+crecv
	black bool  // token: OR of visited colors
	rank  int32 // nudge: sender; deadvote: the dead rank
}

// termMsgBytes is the fixed encoded size of a termMsg.
const termMsgBytes = 1 + 4 + 4 + 8 + 8 + 1 + 4

func encodeTermMsg(m termMsg) []byte {
	b := make([]byte, 0, termMsgBytes)
	b = append(b, m.kind)
	b = le32(b, m.epoch)
	b = le32(b, m.round)
	b = le64(b, m.q)
	b = le64(b, m.acts)
	if m.black {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = le32(b, m.rank)
	return b
}

// decodeTermMsg parses a termination control message. Strict: exact length,
// known kind, boolean color; anything else is an error, never a panic
// (fuzzed).
func decodeTermMsg(b []byte) (termMsg, error) {
	var m termMsg
	if len(b) != termMsgBytes {
		return m, fmt.Errorf("parsec: term message is %d bytes, want %d", len(b), termMsgBytes)
	}
	m.kind = b[0]
	if m.kind < termToken || m.kind > termDeadvote {
		return m, fmt.Errorf("parsec: unknown term message kind %d", m.kind)
	}
	rest := b[1:]
	m.epoch, rest = rd32(rest)
	m.round, rest = rd32(rest)
	m.q, rest = rd64(rest)
	m.acts, rest = rd64(rest)
	switch rest[0] {
	case 0:
	case 1:
		m.black = true
	default:
		return m, fmt.Errorf("parsec: term message color byte %d is not boolean", rest[0])
	}
	m.rank, _ = rd32(rest[1:])
	return m, nil
}

// termState is the runtime-wide detector bookkeeping. The per-rank pieces
// (message counters, color, dirty flag, held token) live on each node; this
// holds the ring membership and the coordinator's round state.
type termState struct {
	// members[r] is true while rank r is part of the token ring. A crashed
	// rank stays a member until its restart completes, which is what makes
	// a false announcement between crash and recovery impossible: the token
	// parks at the inert rank.
	members []bool

	outstanding bool  // a token is in flight (or lost to a dead member)
	round       int32 // rounds initiated this epoch
	lastActs    int64 // previous round's activity sum, for the park rule
	lastValid   bool

	announced bool
	listeners []func()

	rounds    *metrics.Counter
	nudges    *metrics.Counter
	announces *metrics.Counter
}

func newTermState(ranks int, reg *metrics.Registry) *termState {
	ts := &termState{members: make([]bool, ranks)}
	for i := range ts.members {
		ts.members[i] = true
	}
	ts.rounds = reg.Counter("parsec", "term_rounds", metrics.StackRank)
	ts.nudges = reg.Counter("parsec", "term_nudges", metrics.StackRank)
	ts.announces = reg.Counter("parsec", "term_announced", metrics.StackRank)
	return ts
}

// coordinator is the lowest ring member.
func (ts *termState) coordinator() int {
	for r, in := range ts.members {
		if in {
			return r
		}
	}
	return -1
}

// nextMember returns the ring member after r (wrapping), or -1 if r is the
// only member.
func (ts *termState) nextMember(r int) int {
	n := len(ts.members)
	for i := 1; i < n; i++ {
		c := (r + i) % n
		if ts.members[c] {
			return c
		}
	}
	return -1
}

// OnTerminate registers fn to run when the detector announces termination.
// The chaos harness uses it to stop the heartbeat detector — the one event
// source that would otherwise keep the simulation alive forever. fn may fire
// more than once only across recovery epochs, never within one.
func (rt *Runtime) OnTerminate(fn func()) {
	rt.term.listeners = append(rt.term.listeners, fn)
}

// Terminated reports whether the detector has announced termination.
func (rt *Runtime) Terminated() bool { return rt.term.announced }

// TermRounds returns how many detector rounds were initiated.
func (rt *Runtime) TermRounds() int64 { return int64(rt.term.rounds.Value()) }

// tryInitiate starts a detector round at the coordinator. It is a no-op
// unless the coordinator rank itself is locally quiet, no token is in
// flight, and nothing has been announced — so at most one token exists, and
// rounds never spin while the coordinator has work.
func (rt *Runtime) tryInitiate() {
	ts := rt.term
	if ts.announced || ts.outstanding || rt.Err() != nil {
		return
	}
	coord := ts.coordinator()
	if coord < 0 {
		return
	}
	cn := rt.nodes[coord]
	if !cn.localQuiet() {
		return
	}
	ts.round++
	ts.rounds.Inc()
	ts.outstanding = true
	tok := termMsg{kind: termToken, epoch: cn.epoch, round: ts.round}
	next := ts.nextMember(coord)
	if next < 0 {
		// Single-member ring: the round begins and returns right here.
		cn.contributeAndSettle(tok)
		return
	}
	cn.ce.SendAM(tagTerm, next, encodeTermMsg(tok))
}

// contributeAndSettle folds this (locally quiet) rank's counters into the
// token, whitens the rank, and either forwards the token to the next member
// or — back at the coordinator — evaluates the round.
func (n *node) contributeAndSettle(tok termMsg) {
	tok.q += n.csent - n.crecv
	tok.acts += n.csent + n.crecv
	tok.black = tok.black || n.black
	n.black = false

	ts := n.rt.term
	coord := ts.coordinator()
	if n.rank != coord {
		next := ts.nextMember(n.rank)
		if next < 0 {
			return // membership collapsed under us; the restart reset recovers
		}
		n.ce.SendAM(tagTerm, next, encodeTermMsg(tok))
		return
	}

	// Round complete. White with zero imbalance proves global termination;
	// otherwise re-initiate — unless the round was white and the activity
	// sum did not move, in which case nothing happened since the last look
	// and the detector parks until a counted receive nudges it awake (the
	// lost-message deadlock case: re-initiating would spin forever).
	ts.outstanding = false
	if !tok.black && tok.q == 0 {
		n.rt.announce()
		return
	}
	changed := tok.black || !ts.lastValid || tok.acts != ts.lastActs
	ts.lastActs = tok.acts
	ts.lastValid = true
	if changed {
		n.rt.tryInitiate()
	}
}

// announce fires the termination consensus: listeners run (heartbeats stop
// here), and an ANNOUNCE control message goes to every other member so each
// rank learns the verdict through the protocol rather than by fiat.
func (rt *Runtime) announce() {
	ts := rt.term
	if ts.announced {
		return
	}
	ts.announced = true
	ts.announces.Inc()
	coord := ts.coordinator()
	cn := rt.nodes[coord]
	ann := termMsg{kind: termAnnounce, epoch: cn.epoch, round: ts.round}
	for r, in := range ts.members {
		if in && r != coord {
			cn.ce.SendAM(tagTerm, r, encodeTermMsg(ann))
		}
	}
	for _, fn := range ts.listeners {
		fn()
	}
}

// termNudge tells the coordinator this rank went quiet with fresh counter
// activity: a parked (or never-started) detector should look again. Local
// when this rank is the coordinator, a control message otherwise.
func (n *node) termNudge() {
	ts := n.rt.term
	ts.nudges.Inc()
	coord := ts.coordinator()
	if coord == n.rank {
		n.rt.tryInitiate()
		return
	}
	if coord < 0 {
		return
	}
	m := termMsg{kind: termNudge, epoch: n.epoch, rank: int32(n.rank)}
	n.ce.SendAM(tagTerm, coord, encodeTermMsg(m))
}

// onTerm is the control-channel AM handler.
func (n *node) onTerm(_ core.Engine, _ core.Tag, data []byte, src int) {
	if n.dead {
		return
	}
	m, err := decodeTermMsg(data)
	if err != nil {
		n.wireFail("parsec: rank %d: bad term message from %d: %w", n.rank, src, err)
		return
	}
	// Control traffic from before a restart describes a detector epoch that
	// no longer exists. Death verdicts are exempt: a death is permanent and
	// epoch-independent, and a vote crossing a restart (sent pre-bump,
	// arriving post-bump) must still count — its caster will not re-cast
	// until its own next verdict, so dropping it could wedge convergence on
	// the next crash. Late votes for already-recovered ranks are ignored in
	// recordDeadvote instead.
	if m.epoch != n.epoch && m.kind != termDeadvote {
		n.staleDrops.Inc()
		return
	}
	switch m.kind {
	case termToken:
		// Hold the token until this rank is locally quiet; pollQuiet
		// forwards it the moment that becomes true.
		n.heldToken = &m
		n.pollQuiet()
	case termAnnounce:
		// Informational at the member: the global verdict already fired at
		// the coordinator. (A real deployment would gate local teardown on
		// this; the simulated stack tears down via the listeners.)
	case termNudge:
		n.rt.tryInitiate()
	case termDeadvote:
		n.rt.recordDeadvote(int(m.rank), src)
	}
}

// localQuiet is the detector's per-rank activity predicate: every worker
// idle, nothing ready or queued, no fetch in any stage, and no deferred
// communication-thread operation pending. A paused or dead rank is never
// quiet — during a crash-recovery window the detector stalls by design.
func (n *node) localQuiet() bool {
	return !n.dead && !n.paused &&
		len(n.idle) == len(n.workers) &&
		n.ready.Len() == 0 &&
		n.fetchQ.Len() == 0 &&
		n.activeFetches == 0 &&
		n.pendingOps == 0 &&
		len(n.pendingAct) == 0
}

// pollQuiet runs at every point where this rank may have just gone quiet:
// worker idling, completion of a deferred communication-thread operation,
// token arrival, and post-restart resume. When quiet it forwards a held
// token, nudges the coordinator if counters moved since the last nudge, and
// probes for work to steal.
func (n *node) pollQuiet() {
	if !n.localQuiet() {
		return
	}
	if n.heldToken != nil {
		tok := *n.heldToken
		n.heldToken = nil
		n.contributeAndSettle(tok)
	}
	if n.dirty {
		n.dirty = false
		n.termNudge()
	}
	n.maybeProbe()
}

// submit defers fn to the communication thread like ce.Submit, but tracks
// the operation in the quiet predicate: between scheduling and execution the
// rank is provably not quiet, closing the window where balanced counters
// plus an empty scheduler would otherwise fake termination.
func (n *node) submit(cost sim.Duration, fn func()) {
	n.pendingOps++
	n.ce.Submit(cost, func() {
		n.pendingOps--
		fn()
		n.pollQuiet()
	})
}

// countRecv books one counted protocol message accepted by this rank (its
// epoch check passed): the receive counter balances the sender's csent, the
// rank blackens (a round that visited it earlier must not conclude), and the
// dirty flag arms the next quiet-transition nudge.
func (n *node) countRecv() {
	n.crecv++
	n.black = true
	n.dirty = true
}

// recordDeadvote collects one survivor's death verdict at the lowest live
// rank, growing the dead-set the current recovery round must absorb. A rank
// newly joining the set bumps the generation, which aborts any restart armed
// for the older, smaller set — the interruption that lets a crash landing
// mid-convergence fold into one combined round instead of corrupting the
// in-flight one. When every live survivor has voted for every member of the
// set, the restart is scheduled — the same convergence the old direct-call
// barrier provided, now carried by the detector's control channel.
func (rt *Runtime) recordDeadvote(dead, voter int) {
	rec := rt.rec
	if rec == nil || rt.Err() != nil {
		return
	}
	if rec.recovered[dead] {
		return // late duplicate from before the round that absorbed it
	}
	if !rec.deadSet[dead] {
		rec.deadSet[dead] = true
		rec.gen++
		if rec.armed {
			rec.armed = false
			rec.aborted.Inc()
		}
	}
	if rec.votes[dead] == nil {
		rec.votes[dead] = make(map[int]bool)
	}
	rec.votes[dead][voter] = true
	rt.maybeScheduleRestart()
}
