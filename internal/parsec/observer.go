package parsec

import (
	"sort"

	"amtlci/internal/sim"
)

// Observer receives runtime events for tracing and tooling (cmd/trace
// exports them as a Chrome trace). On a serial domain all callbacks run
// synchronously on the simulation goroutine at the event's virtual time; on
// a sharded domain each shard records its ranks' events privately and the
// merged stream replays into the observer on the Run caller's goroutine
// after the simulation, in (timestamp, rank, per-rank sequence) order.
// Either way a single goroutine at a time touches the observer, and the
// per-rank subsequences are identical across shard counts (same virtual
// events, same order); only the interleaving of different ranks' callbacks
// at equal timestamps can differ from serial delivery, which replays in
// global execution order rather than rank order. Implementations must be
// cheap and must not call back into the runtime.
type Observer interface {
	// TaskStart fires when a worker begins executing t; TaskEnd when its
	// completion bookkeeping is done.
	TaskStart(rank, worker int, t TaskID, at sim.Time)
	TaskEnd(rank, worker int, t TaskID, at sim.Time)
	// FetchStart fires when a rank sends GET DATA for a flow; DataArrived
	// when the flow's payload lands (put completion).
	FetchStart(rank int, producer TaskID, flow int32, size int64, at sim.Time)
	DataArrived(rank int, producer TaskID, flow int32, size int64, at sim.Time)
	// ActivateSent fires per ACTIVATE message (after aggregation), with the
	// number of activation entries it carries.
	ActivateSent(rank, dest, entries int, at sim.Time)
}

// NopObserver is an embeddable no-op implementation.
type NopObserver struct{}

// TaskStart implements Observer.
func (NopObserver) TaskStart(int, int, TaskID, sim.Time) {}

// TaskEnd implements Observer.
func (NopObserver) TaskEnd(int, int, TaskID, sim.Time) {}

// FetchStart implements Observer.
func (NopObserver) FetchStart(int, TaskID, int32, int64, sim.Time) {}

// DataArrived implements Observer.
func (NopObserver) DataArrived(int, TaskID, int32, int64, sim.Time) {}

// ActivateSent implements Observer.
func (NopObserver) ActivateSent(int, int, int, sim.Time) {}

// SetObserver installs an observer; nil removes it. Install before Run. On
// a sharded domain the runtime interposes a per-shard recorder — callbacks
// fire from several goroutines, so they buffer into shard-private streams
// and replay into o after Run in deterministic merged order (see Observer).
func (rt *Runtime) SetObserver(o Observer) {
	rt.userObs = o
	rt.obsBufs = nil
	rt.obsSeq = nil
	if o == nil {
		rt.obs = nil
		return
	}
	if ns := rt.dom.Shards(); ns > 1 {
		rt.obsBufs = make([]shardObsBuf, ns)
		rt.obsSeq = make([]uint64, rt.nranks)
		rt.obs = shardObsRecorder{rt}
		return
	}
	rt.obs = o
}

// obsKind discriminates buffered observer records.
type obsKind uint8

const (
	obsTaskStart obsKind = iota
	obsTaskEnd
	obsFetchStart
	obsDataArrived
	obsActivateSent
)

// obsRecord is one buffered observer callback. (at, rank, seq) is a strict
// total order: seq is a per-rank emission counter, and a rank's events are
// emitted by exactly one shard in deterministic order.
type obsRecord struct {
	at     sim.Time
	seq    uint64
	task   TaskID
	size   int64
	rank   int32
	worker int32 // worker for Task*, dest for ActivateSent
	flow   int32 // flow for Fetch*/DataArrived, entries for ActivateSent
	kind   obsKind
}

// shardObsBuf is one shard's private record stream. Only the goroutine
// executing that shard's window appends; padding keeps neighboring shards'
// append bookkeeping off a shared cache line.
type shardObsBuf struct {
	recs []obsRecord
	_    [104]byte
}

// shardObsRecorder is the Observer the runtime installs internally under a
// sharded domain: every callback appends to the emitting rank's shard
// buffer.
type shardObsRecorder struct{ rt *Runtime }

func (s shardObsRecorder) add(rank int, r obsRecord) {
	rt := s.rt
	r.rank = int32(rank)
	r.seq = rt.obsSeq[rank]
	rt.obsSeq[rank]++
	buf := &rt.obsBufs[rt.dom.ShardOf(rank)]
	buf.recs = append(buf.recs, r)
}

func (s shardObsRecorder) TaskStart(rank, worker int, t TaskID, at sim.Time) {
	s.add(rank, obsRecord{kind: obsTaskStart, worker: int32(worker), task: t, at: at})
}

func (s shardObsRecorder) TaskEnd(rank, worker int, t TaskID, at sim.Time) {
	s.add(rank, obsRecord{kind: obsTaskEnd, worker: int32(worker), task: t, at: at})
}

func (s shardObsRecorder) FetchStart(rank int, producer TaskID, flow int32, size int64, at sim.Time) {
	s.add(rank, obsRecord{kind: obsFetchStart, task: producer, flow: flow, size: size, at: at})
}

func (s shardObsRecorder) DataArrived(rank int, producer TaskID, flow int32, size int64, at sim.Time) {
	s.add(rank, obsRecord{kind: obsDataArrived, task: producer, flow: flow, size: size, at: at})
}

func (s shardObsRecorder) ActivateSent(rank, dest, entries int, at sim.Time) {
	s.add(rank, obsRecord{kind: obsActivateSent, worker: int32(dest), flow: int32(entries), at: at})
}

// flushObservations merges the per-shard streams and replays them into the
// user observer. Called after dom.Run() on the caller's goroutine; the
// domain's completed run is the happens-before edge that makes every
// shard's buffer visible. Buffers are reset but kept allocated so repeated
// Runs reuse them; the per-rank seq counters keep counting, preserving the
// strict (at, rank, seq) order across Runs.
func (rt *Runtime) flushObservations() {
	if rt.obsBufs == nil || rt.userObs == nil {
		return
	}
	total := 0
	for i := range rt.obsBufs {
		total += len(rt.obsBufs[i].recs)
	}
	if total == 0 {
		return
	}
	all := make([]obsRecord, 0, total)
	for i := range rt.obsBufs {
		all = append(all, rt.obsBufs[i].recs...)
		rt.obsBufs[i].recs = rt.obsBufs[i].recs[:0]
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := &all[i], &all[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		return a.seq < b.seq
	})
	o := rt.userObs
	for i := range all {
		r := &all[i]
		switch r.kind {
		case obsTaskStart:
			o.TaskStart(int(r.rank), int(r.worker), r.task, r.at)
		case obsTaskEnd:
			o.TaskEnd(int(r.rank), int(r.worker), r.task, r.at)
		case obsFetchStart:
			o.FetchStart(int(r.rank), r.task, r.flow, r.size, r.at)
		case obsDataArrived:
			o.DataArrived(int(r.rank), r.task, r.flow, r.size, r.at)
		case obsActivateSent:
			o.ActivateSent(int(r.rank), int(r.worker), int(r.flow), r.at)
		}
	}
}
