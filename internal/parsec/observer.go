package parsec

import "amtlci/internal/sim"

// Observer receives runtime events for tracing and tooling (cmd/trace
// exports them as a Chrome trace). All callbacks run synchronously on the
// simulation goroutine at the event's virtual time; implementations must be
// cheap and must not call back into the runtime.
type Observer interface {
	// TaskStart fires when a worker begins executing t; TaskEnd when its
	// completion bookkeeping is done.
	TaskStart(rank, worker int, t TaskID, at sim.Time)
	TaskEnd(rank, worker int, t TaskID, at sim.Time)
	// FetchStart fires when a rank sends GET DATA for a flow; DataArrived
	// when the flow's payload lands (put completion).
	FetchStart(rank int, producer TaskID, flow int32, size int64, at sim.Time)
	DataArrived(rank int, producer TaskID, flow int32, size int64, at sim.Time)
	// ActivateSent fires per ACTIVATE message (after aggregation), with the
	// number of activation entries it carries.
	ActivateSent(rank, dest, entries int, at sim.Time)
}

// NopObserver is an embeddable no-op implementation.
type NopObserver struct{}

// TaskStart implements Observer.
func (NopObserver) TaskStart(int, int, TaskID, sim.Time) {}

// TaskEnd implements Observer.
func (NopObserver) TaskEnd(int, int, TaskID, sim.Time) {}

// FetchStart implements Observer.
func (NopObserver) FetchStart(int, TaskID, int32, int64, sim.Time) {}

// DataArrived implements Observer.
func (NopObserver) DataArrived(int, TaskID, int32, int64, sim.Time) {}

// ActivateSent implements Observer.
func (NopObserver) ActivateSent(int, int, int, sim.Time) {}

// SetObserver installs an observer; nil removes it. Install before Run.
// Observers require a serial simulation: callbacks fire from every rank, and
// under a sharded domain they would run concurrently from several goroutines
// against one observer value.
func (rt *Runtime) SetObserver(o Observer) {
	if o != nil && rt.dom.Shards() > 1 {
		panic("parsec: observers require a single-shard domain")
	}
	rt.obs = o
}
