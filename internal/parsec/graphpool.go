package parsec

import (
	"fmt"

	"amtlci/internal/sim"
)

// GraphPool is an explicit task-graph Taskpool: tasks and edges are inserted
// one by one, in the style of PaRSEC's dynamic task discovery interface. It
// suits small and irregular graphs (examples, tests, the microbenchmarks);
// large regular algorithms implement Taskpool directly with computed
// dependences (see internal/cholesky and internal/hicma).
type GraphPool struct {
	name    string
	classes []TaskClass
	ranks   int
	real    bool

	tasks map[TaskID]*graphTask

	perRank []int64

	// ExecuteFn, if non-nil, runs for every task (real numerics).
	ExecuteFn func(t TaskID, inputs []DataRef, outputs []DataRef)
}

type graphTask struct {
	rank   int
	cost   sim.Duration
	prio   int64
	flows  []int64 // output sizes
	inputs []Dep
	succs  [][]Dep // per flow
}

// NewGraphPool creates an empty pool for the given rank count. real selects
// byte-backed payloads; otherwise payloads are virtual.
func NewGraphPool(name string, ranks int, real bool) *GraphPool {
	return &GraphPool{
		name:    name,
		classes: []TaskClass{{Name: "task"}},
		ranks:   ranks,
		real:    real,
		tasks:   make(map[TaskID]*graphTask),
		perRank: make([]int64, ranks),
	}
}

// AddTask inserts a task with the given placement, cost, priority, and
// output flow sizes. All tasks share class 0.
func (g *GraphPool) AddTask(index int64, rank int, cost sim.Duration, prio int64, flowSizes ...int64) TaskID {
	t := TaskID{Class: 0, Index: index}
	if _, dup := g.tasks[t]; dup {
		panic(fmt.Sprintf("parsec: duplicate task %v", t))
	}
	if rank < 0 || rank >= g.ranks {
		panic(fmt.Sprintf("parsec: task %v on invalid rank %d", t, rank))
	}
	g.tasks[t] = &graphTask{
		rank:  rank,
		cost:  cost,
		prio:  prio,
		flows: append([]int64(nil), flowSizes...),
		succs: make([][]Dep, len(flowSizes)),
	}
	g.perRank[rank]++
	return t
}

// Link adds a dependence: consumer reads producer's output flow. A consumer
// reading the same flow twice must be linked twice.
func (g *GraphPool) Link(producer TaskID, flow int32, consumer TaskID) {
	p, ok := g.tasks[producer]
	if !ok {
		panic(fmt.Sprintf("parsec: link from unknown producer %v", producer))
	}
	c, ok := g.tasks[consumer]
	if !ok {
		panic(fmt.Sprintf("parsec: link to unknown consumer %v", consumer))
	}
	if int(flow) >= len(p.flows) {
		panic(fmt.Sprintf("parsec: producer %v has no flow %d", producer, flow))
	}
	p.succs[flow] = append(p.succs[flow], Dep{Task: consumer, Flow: flow})
	c.inputs = append(c.inputs, Dep{Task: producer, Flow: flow})
}

func (g *GraphPool) task(t TaskID) *graphTask {
	gt, ok := g.tasks[t]
	if !ok {
		panic(fmt.Sprintf("parsec: unknown task %v", t))
	}
	return gt
}

// Name implements Taskpool.
func (g *GraphPool) Name() string { return g.name }

// Classes implements Taskpool.
func (g *GraphPool) Classes() []TaskClass { return g.classes }

// RankOf implements Taskpool.
func (g *GraphPool) RankOf(t TaskID) int { return g.task(t).rank }

// Cost implements Taskpool.
func (g *GraphPool) Cost(t TaskID) sim.Duration { return g.task(t).cost }

// Priority implements Taskpool.
func (g *GraphPool) Priority(t TaskID) int64 { return g.task(t).prio }

// Inputs implements Taskpool.
func (g *GraphPool) Inputs(t TaskID, out []Dep) []Dep {
	return append(out, g.task(t).inputs...)
}

// Successors implements Taskpool.
func (g *GraphPool) Successors(t TaskID, flow int32, out []Dep) []Dep {
	return append(out, g.task(t).succs[flow]...)
}

// Roots implements Taskpool.
func (g *GraphPool) Roots(rank int, emit func(TaskID)) {
	// Deterministic order: scan indices in insertion-independent order.
	var ids []TaskID
	for t, gt := range g.tasks {
		if gt.rank == rank && len(gt.inputs) == 0 {
			ids = append(ids, t)
		}
	}
	sortTaskIDs(ids)
	for _, t := range ids {
		emit(t)
	}
}

// LocalTasks implements Taskpool.
func (g *GraphPool) LocalTasks(rank int) int64 { return g.perRank[rank] }

// Execute implements Taskpool: it allocates the declared flow sizes, runs
// ExecuteFn if set, and returns the outputs.
func (g *GraphPool) Execute(t TaskID, inputs []DataRef) []DataRef {
	flows := g.task(t).flows
	outputs := make([]DataRef, len(flows))
	for i, size := range flows {
		outputs[i] = g.alloc(size)
	}
	if g.ExecuteFn != nil {
		g.ExecuteFn(t, inputs, outputs)
	}
	return outputs
}

// MakeCopy implements Taskpool.
func (g *GraphPool) MakeCopy(t TaskID, flow int32, size int64) DataRef {
	return g.alloc(size)
}

func (g *GraphPool) alloc(n int64) DataRef {
	if g.real {
		return RealData(make([]byte, n))
	}
	return VirtualData(n)
}

func sortTaskIDs(ids []TaskID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && less(ids[j], ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

func less(a, b TaskID) bool {
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	return a.Index < b.Index
}
