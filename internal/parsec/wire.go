package parsec

import (
	"encoding/binary"
	"fmt"

	"amtlci/internal/coll"
	"amtlci/internal/core"
)

// Active-message tags registered by the runtime on every engine.
const (
	tagActivate core.Tag = 1 // task completed; activates remote descendants
	tagGetData  core.Tag = 2 // request the data of a completed task's flow
	tagPutDone  core.Tag = 3 // put remote-completion notifications
	tagTerm     core.Tag = 4 // termination-detection control (term.go)
	tagStealReq core.Tag = 5 // work-stealing probe (steal_node.go)
	tagStealRep core.Tag = 6 // work-stealing grant / denial
	tagStealRel core.Tag = 7 // work-stealing input-pin release
)

type regHandle = core.MemHandle

// activation is one entry of an (aggregated) ACTIVATE message: a completed
// task's output flow plus multicast-tree routing and tracing metadata.
type activation struct {
	task     TaskID
	flow     int32
	size     int64
	root     int32 // rank that produced the data
	rootSend int64 // root's clock when the root ACTIVATE was sent (ps)
	hopRank  int32 // rank that sent this ACTIVATE (tree parent; data source)
	hopSend  int64 // hop sender's clock at send time (ps)
	epoch    int32 // recovery epoch the sender was in (stale entries drop)
	subtree  []int32
}

const activationFixedBytes = 4 + 8 + 4 + 8 + 4 + 8 + 4 + 8 + 2

// packFlow merges a flow index and the sender's recovery epoch into the one
// 32-bit flow word each control message already carries. Control-message
// sizes are part of the calibrated cost model (the Fig 2a anchors are pinned
// byte-for-byte), so the recovery extension must not grow them; flows are
// single-digit output indices and the epoch counts restarts, so 16 bits each
// is roomy. The split is a bijection on the full 32-bit word, which the
// decoder fuzzers rely on.
func packFlow(flow, epoch int32) int32 {
	if flow>>16 != 0 {
		panic(fmt.Sprintf("parsec: flow %d overflows the packed wire word", flow))
	}
	return flow | epoch<<16
}

func unpackFlow(v int32) (flow, epoch int32) { return v & 0xFFFF, v >> 16 }

func (a activation) encodedLen() int { return activationFixedBytes + 4*len(a.subtree) }

func appendActivation(b []byte, a activation) []byte {
	b = le32(b, a.task.Class)
	b = le64(b, a.task.Index)
	b = le32(b, packFlow(a.flow, a.epoch))
	b = le64(b, a.size)
	b = le32(b, a.root)
	b = le64(b, a.rootSend)
	b = le32(b, a.hopRank)
	b = le64(b, a.hopSend)
	b = le16(b, uint16(len(a.subtree)))
	for _, r := range a.subtree {
		b = le32(b, r)
	}
	return b
}

func decodeActivation(b []byte) (activation, []byte, error) {
	var a activation
	if len(b) < activationFixedBytes {
		return a, nil, fmt.Errorf("parsec: activation truncated: %d bytes, need %d",
			len(b), activationFixedBytes)
	}
	a.task.Class, b = rd32(b)
	a.task.Index, b = rd64(b)
	var fw int32
	fw, b = rd32(b)
	a.flow, a.epoch = unpackFlow(fw)
	a.size, b = rd64(b)
	a.root, b = rd32(b)
	a.rootSend, b = rd64(b)
	a.hopRank, b = rd32(b)
	a.hopSend, b = rd64(b)
	var n uint16
	n, b = rd16(b)
	if int(n)*4 > len(b) {
		return a, nil, fmt.Errorf("parsec: activation subtree truncated: %d ranks, %d bytes remain",
			n, len(b))
	}
	if n > 0 {
		a.subtree = make([]int32, n)
		for i := range a.subtree {
			a.subtree[i], b = rd32(b)
		}
	}
	return a, b, nil
}

// encodeActivates packs entries into one AM payload, prefixed with a count.
func encodeActivates(entries []activation) []byte {
	n := 2
	for _, a := range entries {
		n += a.encodedLen()
	}
	b := make([]byte, 0, n)
	b = le16(b, uint16(len(entries)))
	for _, a := range entries {
		b = appendActivation(b, a)
	}
	return b
}

func decodeActivates(b []byte) ([]activation, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("parsec: ACTIVATE payload truncated: %d bytes", len(b))
	}
	var n uint16
	n, b = rd16(b)
	if int(n)*activationFixedBytes > len(b) {
		return nil, fmt.Errorf("parsec: ACTIVATE count %d exceeds %d payload bytes", n, len(b))
	}
	out := make([]activation, n)
	var err error
	for i := range out {
		if out[i], b, err = decodeActivation(b); err != nil {
			return nil, err
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("parsec: ACTIVATE payload has %d trailing bytes", len(b))
	}
	return out, nil
}

// getData is the GET DATA request payload.
type getData struct {
	task  TaskID
	flow  int32
	epoch int32
	rreg  regHandle
}

const getDataBytes = 4 + 8 + 4 + 4 + 8

func (g getData) encode() []byte {
	b := make([]byte, 0, getDataBytes)
	b = le32(b, g.task.Class)
	b = le64(b, g.task.Index)
	b = le32(b, packFlow(g.flow, g.epoch))
	b = le32(b, g.rreg.Rank)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0)
	binary.LittleEndian.PutUint64(b[len(b)-8:], g.rreg.ID)
	return b
}

func decodeGetData(b []byte) (getData, error) {
	var g getData
	if len(b) != getDataBytes {
		return g, fmt.Errorf("parsec: GET DATA payload is %d bytes, want %d", len(b), getDataBytes)
	}
	g.task.Class, b = rd32(b)
	g.task.Index, b = rd64(b)
	var fw int32
	fw, b = rd32(b)
	g.flow, g.epoch = unpackFlow(fw)
	g.rreg.Rank, b = rd32(b)
	g.rreg.ID = binary.LittleEndian.Uint64(b)
	return g, nil
}

// putMeta rides as the put's remote-completion callback data: it tells the
// requester which flow arrived and carries the tracing clocks.
type putMeta struct {
	task     TaskID
	flow     int32
	epoch    int32
	root     int32
	rootSend int64
	hopRank  int32
	hopSend  int64
}

const putMetaBytes = 4 + 8 + 4 + 4 + 8 + 4 + 8

func (p putMeta) encode() []byte {
	b := make([]byte, 0, putMetaBytes)
	b = le32(b, p.task.Class)
	b = le64(b, p.task.Index)
	b = le32(b, packFlow(p.flow, p.epoch))
	b = le32(b, p.root)
	b = le64(b, p.rootSend)
	b = le32(b, p.hopRank)
	b = le64(b, p.hopSend)
	return b
}

func decodePutMeta(b []byte) (putMeta, error) {
	var p putMeta
	if len(b) != putMetaBytes {
		return p, fmt.Errorf("parsec: put completion payload is %d bytes, want %d", len(b), putMetaBytes)
	}
	p.task.Class, b = rd32(b)
	p.task.Index, b = rd64(b)
	var fw int32
	fw, b = rd32(b)
	p.flow, p.epoch = unpackFlow(fw)
	p.root, b = rd32(b)
	p.rootSend, b = rd64(b)
	p.hopRank, b = rd32(b)
	p.hopSend, b = rd64(b)
	return p, nil
}

// Little-endian append/read helpers.
func le16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}
func le32(b []byte, v int32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func le64(b []byte, v int64) []byte {
	u := uint64(v)
	return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}
func rd16(b []byte) (uint16, []byte) { return binary.LittleEndian.Uint16(b), b[2:] }
func rd32(b []byte) (int32, []byte)  { return int32(binary.LittleEndian.Uint32(b)), b[4:] }
func rd64(b []byte) (int64, []byte)  { return int64(binary.LittleEndian.Uint64(b)), b[8:] }

// treeSplit computes the binomial multicast children of the first rank in
// ranks: it returns, for each child, the child-rooted slice of the subtree
// (child first). PaRSEC propagates broadcasts down such trees so that no
// single rank serves every consumer. Tree construction is delegated to the
// collectives subsystem, which owns the broadcast schedules.
func treeSplit(ranks []int32) [][]int32 { return coll.TreeSplit(ranks) }
