package parsec

import (
	"bytes"
	"testing"
)

// White-box tests for the termination-control wire format. Behavioral
// detector tests (announcement after real runs) live in termination_test.go
// in the external test package.

func TestTermMsgRoundTrip(t *testing.T) {
	msgs := []termMsg{
		{kind: termToken, epoch: 0, round: 1},
		{kind: termToken, epoch: 3, round: 17, q: -42, acts: 9001, black: true},
		{kind: termAnnounce, epoch: 1, round: 4},
		{kind: termNudge, epoch: 2, rank: 7},
		{kind: termDeadvote, epoch: 5, rank: 3},
	}
	for _, m := range msgs {
		b := encodeTermMsg(m)
		if len(b) != termMsgBytes {
			t.Fatalf("encoded %d bytes, want %d", len(b), termMsgBytes)
		}
		got, err := decodeTermMsg(b)
		if err != nil {
			t.Fatalf("decode(%+v): %v", m, err)
		}
		if got != m {
			t.Fatalf("round trip: got %+v, want %+v", got, m)
		}
	}
}

func TestTermMsgRejectsMalformed(t *testing.T) {
	good := encodeTermMsg(termMsg{kind: termToken, epoch: 1, round: 2, q: 3, acts: 4})

	// Every truncation must be rejected, never panic.
	for i := 0; i < len(good); i++ {
		if _, err := decodeTermMsg(good[:i]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", i)
		}
	}
	// Trailing garbage.
	if _, err := decodeTermMsg(append(append([]byte(nil), good...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Unknown kind.
	bad := append([]byte(nil), good...)
	bad[0] = 99
	if _, err := decodeTermMsg(bad); err == nil {
		t.Fatal("unknown kind accepted")
	}
	bad[0] = 0
	if _, err := decodeTermMsg(bad); err == nil {
		t.Fatal("kind 0 accepted")
	}
	// Non-boolean color byte.
	bad = append([]byte(nil), good...)
	bad[len(bad)-5] = 2
	if _, err := decodeTermMsg(bad); err == nil {
		t.Fatal("color byte 2 accepted")
	}
}

// FuzzDecodeTermMsg: the decoder must never panic, and every frame it
// accepts must re-encode byte-identically (the format has exactly one
// representation per message).
func FuzzDecodeTermMsg(f *testing.F) {
	f.Add(encodeTermMsg(termMsg{kind: termToken, epoch: 1, round: 2, q: -3, acts: 4, black: true}))
	f.Add(encodeTermMsg(termMsg{kind: termDeadvote, epoch: 9, rank: 2}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, termMsgBytes))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeTermMsg(data)
		if err != nil {
			return
		}
		if m.kind < termToken || m.kind > termDeadvote {
			t.Fatalf("accepted unknown kind %d", m.kind)
		}
		if !bytes.Equal(encodeTermMsg(m), data) {
			t.Fatalf("accepted frame does not re-encode identically: %x", data)
		}
	})
}
