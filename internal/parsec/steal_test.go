package parsec_test

import (
	"testing"

	"amtlci/internal/core/stack"
	"amtlci/internal/parsec"
	"amtlci/internal/sim"
)

// rootFarm builds an embarrassingly imbalanced graph: n independent root
// tasks, every one placed on rank 0.
func rootFarm(n int, cost sim.Duration) *parsec.GraphPool {
	g := parsec.NewGraphPool("farm", 4, false)
	for i := 0; i < n; i++ {
		g.AddTask(int64(i), 0, cost, 0)
	}
	return g
}

// TestStealRebalancesRootFarm: with stealing on, idle ranks drain rank 0's
// ready queue and the makespan drops well below the serial pile-up; with
// stealing off not a single steal counter moves.
func TestStealRebalancesRootFarm(t *testing.T) {
	forBackends(t, func(t *testing.T, b stack.Backend) {
		run := func(stealOn bool) (sim.Duration, map[parsec.TaskID]int, *parsec.Runtime) {
			g := rootFarm(16, 50*sim.Microsecond)
			runs := make(map[parsec.TaskID]int)
			g.ExecuteFn = func(tk parsec.TaskID, _, _ []parsec.DataRef) { runs[tk]++ }
			_, rt := build(t, b, 4, 1, g, func(c *parsec.Config) { c.Steal = stealOn })
			d, err := rt.Run()
			if err != nil {
				t.Fatal(err)
			}
			return d, runs, rt
		}

		dOff, runsOff, rtOff := run(false)
		dOn, runsOn, rtOn := run(true)

		for _, runs := range []map[parsec.TaskID]int{runsOff, runsOn} {
			if len(runs) != 16 {
				t.Fatalf("ran %d distinct tasks, want 16", len(runs))
			}
			for tk, c := range runs {
				if c != 1 {
					t.Fatalf("task %v ran %d times", tk, c)
				}
			}
		}
		if got := rtOff.Metrics().Total("parsec", "steals"); got != 0 {
			t.Fatalf("no-steal run recorded %d steals", got)
		}
		if got := rtOff.Metrics().Total("parsec", "steal_granted"); got != 0 {
			t.Fatalf("no-steal run granted %d tasks", got)
		}
		if got := rtOn.Metrics().Total("parsec", "steals"); got == 0 {
			t.Fatal("steal run recorded zero steals on a 16-task single-rank pile-up")
		}
		if dOn >= dOff {
			t.Fatalf("stealing did not help: makespan %v (on) vs %v (off)", dOn, dOff)
		}
		if !rtOn.Terminated() || !rtOff.Terminated() {
			t.Fatal("a run completed without a termination announcement")
		}
	})
}

// TestStealMigratesInputTiles: stolen tasks carry real payload dependences —
// the thief must fetch the producer's tile over the ordinary GET DATA path
// and execute with the correct bytes.
func TestStealMigratesInputTiles(t *testing.T) {
	forBackends(t, func(t *testing.T, b stack.Backend) {
		const consumers = 8
		const size = 4096
		g := parsec.NewGraphPool("tiles", 2, true)
		prod := g.AddTask(0, 0, 5*sim.Microsecond, 0, size)
		var cons []parsec.TaskID
		for i := 0; i < consumers; i++ {
			cons = append(cons, g.AddTask(int64(i+1), 0, 30*sim.Microsecond, 0))
			g.Link(prod, 0, cons[i])
		}
		seen := make(map[parsec.TaskID]byte)
		g.ExecuteFn = func(tk parsec.TaskID, in, out []parsec.DataRef) {
			if tk == prod {
				for i := range out[0].Buf.Bytes {
					out[0].Buf.Bytes[i] = 0xA7
				}
				return
			}
			seen[tk] = in[0].Buf.Bytes[size-1]
		}
		_, rt := build(t, b, 2, 1, g, func(c *parsec.Config) { c.Steal = true })
		if _, err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		if len(seen) != consumers {
			t.Fatalf("%d consumers ran, want %d", len(seen), consumers)
		}
		for tk, v := range seen {
			if v != 0xA7 {
				t.Fatalf("consumer %v saw byte %#x, want 0xA7", tk, v)
			}
		}
		// Rank 1 probed at t=0, was denied (the producer had not finished),
		// and must have been fed later through the starving push path.
		if got := rt.Metrics().Total("parsec", "steals"); got == 0 {
			t.Fatal("idle rank was never fed: the starving push path did not fire")
		}
		if got := rt.Metrics().Total("parsec", "steal_tasks"); got == 0 {
			t.Fatal("steals recorded but zero tasks migrated")
		}
	})
}

// TestStealDifferentialDeterminism: the same stealing configuration must
// replay to the identical makespan, and stealing must not change the
// computed results relative to a no-steal run.
func TestStealDifferentialDeterminism(t *testing.T) {
	run := func(stealOn bool) (sim.Duration, uint64) {
		g := parsec.NewGraphPool("det", 3, true)
		const size = 1024
		prod := g.AddTask(0, 0, 2*sim.Microsecond, 0, size)
		var sum uint64
		for i := 0; i < 9; i++ {
			c := g.AddTask(int64(i+1), 0, 20*sim.Microsecond, int64(i))
			g.Link(prod, 0, c)
		}
		g.ExecuteFn = func(tk parsec.TaskID, in, out []parsec.DataRef) {
			if tk.Index == 0 {
				for i := range out[0].Buf.Bytes {
					out[0].Buf.Bytes[i] = byte(i)
				}
				return
			}
			for _, x := range in[0].Buf.Bytes {
				sum += uint64(x) * uint64(tk.Index)
			}
		}
		_, rt := build(t, stack.LCI, 3, 1, g, func(c *parsec.Config) { c.Steal = stealOn })
		d, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return d, sum
	}

	dOn1, sumOn1 := run(true)
	dOn2, sumOn2 := run(true)
	_, sumOff := run(false)
	if dOn1 != dOn2 || sumOn1 != sumOn2 {
		t.Fatalf("steal replay diverged: (%v,%d) vs (%v,%d)", dOn1, sumOn1, dOn2, sumOn2)
	}
	if sumOn1 != sumOff {
		t.Fatalf("stealing changed the numerics: %d (on) vs %d (off)", sumOn1, sumOff)
	}
}

// TestStealRespectsStealMax: one exchange never migrates more than the cap.
func TestStealRespectsStealMax(t *testing.T) {
	g := rootFarm(16, 50*sim.Microsecond)
	g.ExecuteFn = func(parsec.TaskID, []parsec.DataRef, []parsec.DataRef) {}
	_, rt := build(t, stack.LCI, 4, 1, g, func(c *parsec.Config) {
		c.Steal = true
		c.StealMax = 1
	})
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	steals := rt.Metrics().Total("parsec", "steals")
	tasks := rt.Metrics().Total("parsec", "steal_tasks")
	if steals == 0 {
		t.Fatal("no steals with StealMax=1")
	}
	if tasks > steals {
		t.Fatalf("%d tasks over %d exchanges violates StealMax=1", tasks, steals)
	}
}
