package parsec

import (
	"fmt"
	"sort"

	"amtlci/internal/core"
	"amtlci/internal/metrics"
	"amtlci/internal/sim"
	"amtlci/internal/steal"
)

// node is one rank's runtime instance: scheduler state, worker cores, the
// dataflow store, and the protocol handlers that run on the communication
// thread.
type node struct {
	rt   *Runtime
	rank int
	// eng is the engine of the shard that owns this rank; every event and
	// clock read of this node goes through it, never through another rank's.
	eng *sim.Engine
	ce  core.Engine
	cfg Config

	workers []*sim.Proc
	idle    []int // indices of idle workers, LIFO

	ready prioQueue
	tasks map[TaskID]*taskState
	store map[flowKey]*flowData

	executed int64
	total    int64
	rng      *sim.RNG
	clock    Clock

	// Crash-recovery state. dead marks a rank that crashed (its handlers
	// and workers go inert); paused holds dispatch while a restart is being
	// orchestrated; epoch stamps outgoing protocol messages so traffic from
	// before a restart is recognized and dropped (stale cross-epoch
	// messages would otherwise corrupt the rebuilt dataflow state).
	dead   bool
	paused bool
	epoch  int32
	// deadVotes is the set of ranks this node has cast death verdicts for.
	// It is re-cast wholesale to the current collector on every new verdict
	// (so votes lost with a dead collector are replayed) and survives
	// restarts except for the ranks a round absorbed.
	deadVotes map[int]bool

	// Fetch management (§4.1 deferral, §4.3 duty 3).
	activeFetches int
	fetchQ        prioQueue

	// ACTIVATE aggregation (§4.3 duty 1), funneled mode only.
	pendingAct  map[int][]activation
	flushQueued map[int]bool

	// Termination-detection state (term.go). csent/crecv count the dataflow
	// protocol messages this rank sent and accepted; the imbalance, summed
	// by the circulating token, is what lets in-flight sends veto a
	// termination verdict. pendingOps counts deferred communication-thread
	// operations so the quiet predicate covers the window between scheduling
	// and execution.
	csent, crecv int64
	black        bool
	dirty        bool
	heldToken    *termMsg
	pendingOps   int

	// Work-stealing state (steal_node.go); rot is nil unless cfg.Steal.
	// starving records thieves whose probes this rank denied: when new local
	// work appears, the victim pushes a grant instead of making the thief
	// poll — the event-driven answer to retry timers, which would keep the
	// simulation (and the termination detector) churning forever.
	starving       map[int]bool
	stealSvcQueued bool
	rot            *steal.Rotation
	probeOut       bool
	probeSentAt    sim.Time

	// Runtime counters (metrics registry, layer "parsec", per rank).
	tasksRun, activatesSent, activations  *metrics.Counter
	getsSent, fetchDeferred, bytesFetched *metrics.Counter
	staleDrops, tasksRestored             *metrics.Counter
	stealsC, stealTasksC, stealGrantedC   *metrics.Counter
	stealLat                              *metrics.Histogram

	inputScratch []Dep
	succScratch  []Dep
	lastOutputs  []DataRef
}

type taskState struct {
	remaining int32
	// lazyFlows holds announced-but-unfetched input flows (FetchLazy mode);
	// their fetches launch when remaining == len(lazyFlows).
	lazyFlows []flowKey
}

type flowData struct {
	state        flowState
	ref          DataRef
	size         int64
	lreg         regHandle
	registered   bool
	expectedGets int
	servedGets   int
	pendingGets  []getReq
	waiters      []TaskID
	localRefs    int
	// stolen marks an entry created by adopting a stolen task before any
	// activation for the flow reached this rank; a real activation merges
	// into it (mergeActivation) rather than colliding.
	stolen bool
	// Tracing/forwarding metadata, valid away from the root.
	meta activation
}

func newNode(rt *Runtime, rank int, ce core.Engine, cfg Config) *node {
	n := &node{
		rt:          rt,
		rank:        rank,
		eng:         rt.dom.RankEngine(rank),
		ce:          ce,
		cfg:         cfg,
		tasks:       make(map[TaskID]*taskState),
		store:       make(map[flowKey]*flowData),
		rng:         sim.NewRNG(cfg.Seed ^ (uint64(rank)+1)*0x9E3779B97F4A7C15),
		pendingAct:  make(map[int][]activation),
		flushQueued: make(map[int]bool),
	}
	n.workers = make([]*sim.Proc, cfg.Workers)
	for i := range n.workers {
		n.workers[i] = sim.NewProc(n.eng)
		n.idle = append(n.idle, i)
	}
	reg := rt.reg
	n.tasksRun = reg.Counter("parsec", "tasks_run", rank)
	n.activatesSent = reg.Counter("parsec", "activates_sent", rank)
	n.activations = reg.Counter("parsec", "activations", rank)
	n.getsSent = reg.Counter("parsec", "gets_sent", rank)
	n.fetchDeferred = reg.Counter("parsec", "fetch_deferred", rank)
	n.bytesFetched = reg.Counter("parsec", "bytes_fetched", rank)
	n.staleDrops = reg.Counter("parsec", "stale_drops", rank)
	n.tasksRestored = reg.Counter("parsec", "tasks_restored", rank)
	n.stealsC = reg.Counter("parsec", "steals", rank)
	n.stealTasksC = reg.Counter("parsec", "steal_tasks", rank)
	n.stealGrantedC = reg.Counter("parsec", "steal_granted", rank)
	n.stealLat = reg.Histogram("parsec", "steal_latency_ns", rank)
	// The dirty flag starts armed so a rank that is quiet from the outset
	// (no local tasks, no traffic) still introduces itself to the detector.
	n.dirty = true
	reg.Probe("parsec", "ready_queue_depth", rank, false, func() float64 { return float64(n.ready.Len()) })
	reg.Probe("parsec", "fetch_queue_depth", rank, false, func() float64 { return float64(n.fetchQ.Len()) })
	reg.Probe("parsec", "active_fetches", rank, false, func() float64 { return float64(n.activeFetches) })
	reg.Probe("parsec", "workers_busy", rank, true, func() float64 {
		var busy sim.Duration
		for _, w := range n.workers {
			busy += w.BusyTime()
		}
		return busy.Seconds()
	})
	ce.TagReg(tagActivate, n.onActivate, int64(cfg.AMCap))
	ce.TagReg(tagGetData, n.onGetData, 256)
	ce.TagReg(tagPutDone, n.onPutDone, 256)
	ce.TagReg(tagTerm, n.onTerm, 256)
	ce.TagReg(tagStealReq, n.onStealReq, 256)
	ce.TagReg(tagStealRep, n.onStealRep, 16<<10)
	ce.TagReg(tagStealRel, n.onStealRel, 256)
	if cfg.Steal {
		n.rot = steal.NewRotation(rank, rt.ranks())
	}
	return n
}

// start enumerates root tasks and releases them.
func (n *node) start() {
	n.total = n.rt.tp.LocalTasks(n.rank)
	n.rt.tp.Roots(n.rank, func(t TaskID) {
		n.stateOf(t) // remaining == 0 for roots
		n.makeReady(t)
	})
}

func (n *node) stateOf(t TaskID) *taskState {
	st, ok := n.tasks[t]
	if !ok {
		n.inputScratch = n.rt.tp.Inputs(t, n.inputScratch[:0])
		st = &taskState{remaining: int32(len(n.inputScratch))}
		n.tasks[t] = st
	}
	return st
}

// satisfy decrements t's dependence counter, releasing it at zero.
func (n *node) satisfy(t TaskID) {
	st := n.stateOf(t)
	st.remaining--
	if st.remaining < 0 {
		panic(fmt.Sprintf("parsec: task %v over-satisfied at rank %d", t, n.rank))
	}
	if st.remaining == 0 {
		n.makeReady(t)
		return
	}
	if n.cfg.FetchLazy && len(st.lazyFlows) > 0 && int(st.remaining) == len(st.lazyFlows) {
		n.launchLazy(st)
	}
}

// launchLazy requests every deferred flow of one task; shared flows may
// already be fetching on behalf of another consumer.
func (n *node) launchLazy(st *taskState) {
	keys := st.lazyFlows
	st.lazyFlows = nil
	for _, key := range keys {
		fd := n.store[key]
		if fd == nil || fd.state != flowAnnounced {
			continue
		}
		n.requestFetch(key, fd, 1<<62)
	}
}

func (n *node) makeReady(t TaskID) {
	// Fresh local work re-arms the steal rotation: a dormant thief should
	// try the ring again once its situation has changed. It also wakes the
	// victim side: thieves whose probes were denied get a pushed grant.
	if n.rot != nil {
		n.rot.Reset()
		if len(n.starving) > 0 && !n.stealSvcQueued {
			n.stealSvcQueued = true
			n.submit(0, n.serveStarving)
		}
	}
	n.ready.Push(n.rt.tp.Priority(t), t, nil)
	n.dispatch()
}

// rankOf resolves a task's executing rank through the runtime's recovery
// remap: after a crash, the dead rank's tasks answer to its buddy.
func (n *node) rankOf(t TaskID) int { return n.rt.rankOf(t) }

// dispatch pairs ready tasks with idle workers.
func (n *node) dispatch() {
	if n.dead || n.paused {
		return
	}
	for len(n.idle) > 0 && n.ready.Len() > 0 {
		w := n.idle[len(n.idle)-1]
		n.idle = n.idle[:len(n.idle)-1]
		it := n.ready.Pop()
		n.runTask(it.task, w)
	}
}

// runTask executes t on worker w: scheduling overhead, the (jittered) kernel
// cost, and completion bookkeeping are charged to the worker core.
func (n *node) runTask(t TaskID, w int) {
	cost := n.cfg.SchedCost + n.rng.Jitter(n.rt.tp.Cost(t), n.cfg.Jitter) + n.cfg.CompleteCost
	proc := n.workers[w]
	if n.rt.obs != nil {
		n.rt.obs.TaskStart(n.rank, w, t, n.eng.Now())
	}
	epoch := n.epoch
	proc.Submit(cost, func() {
		// A crash or restart between dispatch and execution voids the task:
		// the worker slot was already handed back by the reset, so the stale
		// closure must vanish without touching the idle list.
		if n.dead || epoch != n.epoch {
			return
		}
		n.execute(t, w)
		n.complete(t, w)
		if n.rt.obs != nil {
			n.rt.obs.TaskEnd(n.rank, w, t, n.eng.Now())
		}
		// The worker picks up the next ready task or goes idle. Idling is a
		// quiet-transition point: the last worker to idle may complete the
		// rank's termination-detection obligations (and go looking for work
		// to steal).
		if n.ready.Len() > 0 {
			it := n.ready.Pop()
			n.runTask(it.task, w)
		} else {
			n.idle = append(n.idle, w)
			n.pollQuiet()
		}
	})
}

// execute gathers inputs and invokes the application's kernel (real
// numerics in small-scale mode, no-op in virtual mode).
func (n *node) execute(t TaskID, w int) {
	n.inputScratch = n.rt.tp.Inputs(t, n.inputScratch[:0])
	inputs := make([]DataRef, len(n.inputScratch))
	for i, dep := range n.inputScratch {
		key := flowKey{dep.Task, dep.Flow}
		fd, ok := n.store[key]
		if !ok || fd.state != flowReady {
			panic(fmt.Sprintf("parsec: rank %d task %v input %v not ready", n.rank, t, dep))
		}
		inputs[i] = fd.ref
		fd.localRefs--
		n.maybeClean(key, fd)
	}
	n.lastOutputs = n.rt.tp.Execute(t, inputs)
}

// complete releases t's descendants: local consumers directly, remote ones
// through the ACTIVATE protocol (Figure 1).
func (n *node) complete(t TaskID, w int) {
	n.executed++
	n.tasksRun.Inc()
	// The task's dependence state is dead from here on (every input was
	// satisfied exactly once, pre-execution); dropping it keeps memory flat
	// on multi-million-task runs.
	delete(n.tasks, t)
	outputs := n.lastOutputs
	n.lastOutputs = nil

	// Buddy checkpointing: record the completed task's outputs before its
	// successors are released, so a crash between the two re-executes the
	// task rather than losing it.
	n.rt.checkpointTask(n, t, outputs)

	for f := 0; f < len(outputs); f++ {
		flow := int32(f)
		key := flowKey{t, flow}
		size := outputs[f].Buf.Size
		n.succScratch = n.rt.tp.Successors(t, flow, n.succScratch[:0])

		fd := &flowData{state: flowReady, ref: outputs[f], size: size}
		now := int64(n.clock.Read(n.eng.Now()))
		fd.meta = activation{task: t, flow: flow, size: size,
			root: int32(n.rank), rootSend: now, hopRank: int32(n.rank), hopSend: now,
			epoch: n.epoch}
		n.store[key] = fd

		// Partition consumers into local tasks and remote ranks. Consumers
		// that already executed before a restart (the recovery done set) are
		// skipped: satisfying them again would corrupt the rebuilt counters.
		var remote []int32
		seen := map[int32]bool{}
		for _, dep := range n.succScratch {
			if n.rt.isDone(dep.Task) {
				continue
			}
			r := n.rankOf(dep.Task)
			if r == n.rank {
				fd.localRefs++
				n.satisfy(dep.Task)
				continue
			}
			if !seen[int32(r)] {
				seen[int32(r)] = true
				remote = append(remote, int32(r))
			}
		}
		if len(remote) == 0 {
			n.maybeClean(key, fd)
			continue
		}
		sort.Slice(remote, func(i, j int) bool { return remote[i] < remote[j] })

		// Multicast: direct sends below the fan-out threshold, binomial
		// tree above it. The tree is rooted at this rank.
		tree := append([]int32{int32(n.rank)}, remote...)
		var children [][]int32
		if len(remote) >= n.cfg.TreeFanout {
			children = treeSplit(tree)
		} else {
			for _, r := range remote {
				children = append(children, []int32{r})
			}
		}
		if size == 0 {
			fd.expectedGets = 0 // control flow: children never fetch
		} else {
			fd.expectedGets = len(children)
		}

		for _, sub := range children {
			act := fd.meta
			act.subtree = sub[1:]
			n.sendActivate(int(sub[0]), act, w)
		}
	}
}

// sendActivate routes one activation entry: funneled through the
// communication thread with aggregation, or sent directly by the worker in
// multithreaded mode. Recovery restores pass w < 0 — there is no worker
// context, so the entry always takes the funneled path.
func (n *node) sendActivate(dest int, act activation, w int) {
	if n.cfg.MTActivate && w >= 0 {
		payload := encodeActivates([]activation{act})
		n.activatesSent.Inc()
		n.activations.Inc()
		n.csent++
		if n.rt.obs != nil {
			n.rt.obs.ActivateSent(n.rank, dest, 1, n.eng.Now())
		}
		n.ce.SendAMMT(n.workers[w], tagActivate, dest, payload, nil)
		return
	}
	n.submit(n.cfg.AggregationCost, func() {
		n.pendingAct[dest] = append(n.pendingAct[dest], act)
		if !n.flushQueued[dest] {
			n.flushQueued[dest] = true
			// The flush runs when the communication thread next gets to it;
			// everything queued for dest in the meantime aggregates into
			// one ACTIVATE message (§4.3 duty 1).
			n.submit(0, func() { n.flushActivates(dest) })
		}
	})
}

func (n *node) flushActivates(dest int) {
	if n.dead {
		return
	}
	n.flushQueued[dest] = false
	entries := n.pendingAct[dest]
	if len(entries) == 0 {
		return
	}
	delete(n.pendingAct, dest)
	// Respect the AM payload cap: chunk if needed.
	for len(entries) > 0 {
		bytes := 2
		cut := 0
		for cut < len(entries) {
			l := entries[cut].encodedLen()
			if bytes+l > n.cfg.AMCap && cut > 0 {
				break
			}
			bytes += l
			cut++
		}
		chunk := entries[:cut]
		entries = entries[cut:]
		n.activatesSent.Inc()
		n.activations.Add(uint64(len(chunk)))
		n.csent++
		if n.rt.obs != nil {
			n.rt.obs.ActivateSent(n.rank, dest, len(chunk), n.eng.Now())
		}
		n.ce.SendAM(tagActivate, dest, encodeActivates(chunk))
	}
}

// wireFail aborts the task graph on a wire-protocol violation. Under fault
// injection a malformed or stray message is a transport failure, not a local
// programming error, so it reports through the runtime instead of panicking.
func (n *node) wireFail(format string, args ...interface{}) {
	n.rt.fail(fmt.Errorf(format, args...))
}

// onActivate handles an ACTIVATE message on the communication thread: per
// §4.3, it "must unpack each aggregated activation, iterate over all local
// descendants of the task in question, determine which data are needed from
// the predecessor, and send GET DATA messages as necessary" — while this
// runs, the thread can do nothing else.
func (n *node) onActivate(_ core.Engine, _ core.Tag, data []byte, src int) {
	if n.dead {
		return
	}
	entries, err := decodeActivates(data)
	if err != nil {
		n.wireFail("parsec: rank %d: bad ACTIVATE from %d: %w", n.rank, src, err)
		return
	}
	// Message-count accounting is per AM, matching the sender's per-message
	// csent; all entries of one aggregated message share the sender's epoch,
	// so the first entry decides whether the message counts. Stale messages
	// stay uncounted on both ends: the restart zeroed the sender's counter.
	if len(entries) > 0 && entries[0].epoch == n.epoch {
		n.countRecv()
	}
	for _, act := range entries {
		act := act
		// Epoch check first: an activation sent before a crash restart
		// describes dataflow state that no longer exists. Dropping it here
		// (not a wire failure) is what makes the restart safe.
		if act.epoch != n.epoch {
			n.staleDrops.Inc()
			continue
		}
		// Unpacking one activation means iterating over every local
		// descendant of the completed task (§4.3), so the processing cost
		// grows with the descendant count.
		desc := 0
		n.succScratch = n.rt.tp.Successors(act.task, act.flow, n.succScratch[:0])
		for _, dep := range n.succScratch {
			if n.rankOf(dep.Task) == n.rank {
				desc++
			}
		}
		cost := n.cfg.ActivateCost + sim.Duration(desc)*n.cfg.ActivateDesc
		n.submit(cost, func() { n.processActivation(act) })
	}
}

func (n *node) processActivation(act activation) {
	// Re-check under the current epoch: a restart may have happened between
	// the AM callback and this deferred processing step.
	if n.dead || act.epoch != n.epoch {
		n.staleDrops.Inc()
		return
	}
	key := flowKey{act.task, act.flow}
	if fd, dup := n.store[key]; dup {
		if fd.stolen {
			// A steal adopted this flow before our own activation arrived:
			// merge the real activation into the steal-created entry instead
			// of treating it as a protocol violation (steal_node.go).
			n.mergeActivation(key, fd, act)
			return
		}
		n.wireFail("parsec: duplicate activation for %v at rank %d", key, n.rank)
		return
	}
	fd := &flowData{state: flowAnnounced, size: act.size, meta: act}
	n.store[key] = fd

	// Local descendants wait for the data; consumers that already executed
	// before a restart are skipped.
	n.succScratch = n.rt.tp.Successors(act.task, act.flow, n.succScratch[:0])
	maxPrio := int64(-1 << 62)
	for _, dep := range n.succScratch {
		if n.rankOf(dep.Task) != n.rank || n.rt.isDone(dep.Task) {
			continue
		}
		fd.waiters = append(fd.waiters, dep.Task)
		fd.localRefs++
		if p := n.rt.tp.Priority(dep.Task); p > maxPrio {
			maxPrio = p
		}
	}

	// Forward the activation down the multicast tree immediately; the
	// children's GET DATA requests queue here until our copy lands.
	if len(act.subtree) > 0 {
		tree := append([]int32{int32(n.rank)}, act.subtree...)
		children := treeSplit(tree)
		fd.expectedGets = len(children)
		now := int64(n.clock.Read(n.eng.Now()))
		for _, sub := range children {
			fwd := act
			fwd.hopRank = int32(n.rank)
			fwd.hopSend = now
			fwd.subtree = sub[1:]
			n.ce.SendAM(tagActivate, int(sub[0]), encodeActivates([]activation{fwd}))
			n.activatesSent.Inc()
			n.activations.Inc()
			n.csent++
		}
	}

	if len(fd.waiters) == 0 && len(act.subtree) == 0 {
		n.wireFail("parsec: activation for %v at rank %d has no consumers", key, n.rank)
		return
	}

	// Control dependences (PaRSEC CTL flows) carry no data: the activation
	// itself satisfies the consumers, with no GET DATA and no put.
	if act.size == 0 {
		fd.state = flowReady
		fd.expectedGets = 0
		waiters := fd.waiters
		fd.waiters = nil
		for _, t := range waiters {
			n.satisfy(t) // localRefs drop when the consumers execute
		}
		n.maybeClean(key, fd)
		return
	}

	if n.cfg.FetchLazy && len(act.subtree) == 0 {
		// Defer the fetch until a consumer is otherwise unblocked (§4.1's
		// defer branch). Forwarding ranks always fetch immediately: their
		// subtree is waiting.
		allBlocked := true
		for _, w := range fd.waiters {
			st := n.stateOf(w)
			st.lazyFlows = append(st.lazyFlows, key)
			if int(st.remaining) == len(st.lazyFlows) {
				allBlocked = false
			}
		}
		if allBlocked {
			n.fetchDeferred.Inc()
			return
		}
		for _, w := range fd.waiters {
			st := n.stateOf(w)
			// Remove the bookkeeping added above; the fetch starts now.
			for i, k := range st.lazyFlows {
				if k == key {
					st.lazyFlows = append(st.lazyFlows[:i], st.lazyFlows[i+1:]...)
					break
				}
			}
		}
	}

	// Fetch now or defer by priority pressure (§4.1).
	n.requestFetch(key, fd, maxPrio)
}

// requestFetch starts a fetch subject to the concurrency cap.
func (n *node) requestFetch(key flowKey, fd *flowData, prio int64) {
	if fd.state != flowAnnounced {
		return
	}
	if n.activeFetches < n.cfg.FetchCap {
		n.startFetch(key, fd)
	} else {
		fd.state = flowQueued
		n.fetchDeferred.Inc()
		n.fetchQ.Push(prio, key.task, func() { n.startFetch(key, fd) })
	}
}

// startFetch sends GET DATA to the tree parent (the data source for this
// rank) with our registered landing buffer.
func (n *node) startFetch(key flowKey, fd *flowData) {
	if n.rt.obs != nil {
		n.rt.obs.FetchStart(n.rank, key.task, key.flow, fd.size, n.eng.Now())
	}
	n.activeFetches++
	fd.state = flowFetching
	fd.ref = n.rt.tp.MakeCopy(key.task, key.flow, fd.size)
	fd.lreg = n.ce.MemReg(fd.ref.Buf)
	fd.registered = true
	g := getData{task: key.task, flow: key.flow, epoch: n.epoch, rreg: fd.lreg}
	n.getsSent.Inc()
	n.csent++
	n.ce.SendAM(tagGetData, int(fd.meta.hopRank), g.encode())
}

// onGetData serves a data request at a rank that holds (or will hold) the
// flow: the owner, or a multicast forwarder.
func (n *node) onGetData(_ core.Engine, _ core.Tag, data []byte, src int) {
	if n.dead {
		return
	}
	g, err := decodeGetData(data)
	if err != nil {
		n.wireFail("parsec: rank %d: bad GET DATA from %d: %w", n.rank, src, err)
		return
	}
	// A request from before a restart points at a landing registration that
	// no longer belongs to live dataflow state; drop it, the requester will
	// re-request under the new epoch if it still needs the data.
	if g.epoch != n.epoch {
		n.staleDrops.Inc()
		return
	}
	n.countRecv()
	key := flowKey{g.task, g.flow}
	fd, ok := n.store[key]
	if !ok {
		n.wireFail("parsec: GET DATA for unknown flow %v at rank %d", key, n.rank)
		return
	}
	req := getReq{requester: src, epoch: g.epoch, rreg: g.rreg}
	if fd.state != flowReady {
		// Forwarder whose own copy is still in flight: queue the request.
		fd.pendingGets = append(fd.pendingGets, req)
		return
	}
	n.submit(n.cfg.GetDataCost, func() { n.servePut(key, fd, req) })
}

// servePut starts the put that answers one GET DATA.
func (n *node) servePut(key flowKey, fd *flowData, req getReq) {
	if !fd.registered {
		fd.lreg = n.ce.MemReg(fd.ref.Buf)
		fd.registered = true
	}
	// The put completion is stamped with the REQUEST's epoch, not the
	// server's: if a restart happened while the request was queued, the
	// requester must recognize the landing data as stale and drop it.
	meta := putMeta{
		task: key.task, flow: key.flow, epoch: req.epoch,
		root: fd.meta.root, rootSend: fd.meta.rootSend,
		hopRank: int32(n.rank), hopSend: int64(n.clock.Read(n.eng.Now())),
	}
	// The put's remote completion is the counted message: until the
	// requester accepts it, this send vetoes termination.
	n.csent++
	n.ce.Put(core.PutArgs{
		LReg: fd.lreg, RReg: req.rreg, Size: fd.size, Remote: req.requester,
		LocalCB: func() {
			fd.servedGets++
			n.maybeClean(key, fd)
		},
		RTag: tagPutDone, RCBData: meta.encode(),
	})
}

// onPutDone runs at the requester when the data has landed: release local
// waiters, serve queued children, and admit the next deferred fetch.
func (n *node) onPutDone(_ core.Engine, _ core.Tag, data []byte, src int) {
	if n.dead {
		return
	}
	m, err := decodePutMeta(data)
	if err != nil {
		n.wireFail("parsec: rank %d: bad put completion from %d: %w", n.rank, src, err)
		return
	}
	// Epoch check BEFORE the store lookup: a put that raced a restart lands
	// in a leaked registration and completes against wiped state — stale,
	// not a protocol violation.
	if m.epoch != n.epoch {
		n.staleDrops.Inc()
		return
	}
	n.countRecv()
	key := flowKey{m.task, m.flow}
	fd, ok := n.store[key]
	if !ok || fd.state != flowFetching {
		n.wireFail("parsec: unexpected put completion for %v at rank %d", key, n.rank)
		return
	}
	epoch := n.epoch
	n.submit(n.cfg.DeliverCost, func() {
		if n.dead || epoch != n.epoch {
			n.staleDrops.Inc()
			return
		}
		fd.state = flowReady
		n.bytesFetched.Add(uint64(fd.size))
		if n.rt.obs != nil {
			n.rt.obs.DataArrived(n.rank, key.task, key.flow, fd.size, n.eng.Now())
		}
		n.rt.tracer.Sample(int(m.root), m.rootSend, int(m.hopRank), m.hopSend,
			n.rank, n.clock.Read(n.eng.Now()))

		for _, t := range fd.waiters {
			n.satisfy(t)
		}
		fd.waiters = nil

		pending := fd.pendingGets
		fd.pendingGets = nil
		for _, req := range pending {
			req := req
			n.submit(n.cfg.GetDataCost, func() { n.servePut(key, fd, req) })
		}

		n.activeFetches--
		if n.fetchQ.Len() > 0 && n.activeFetches < n.cfg.FetchCap {
			n.fetchQ.Pop().fire()
		}
		n.maybeClean(key, fd)
	})
}

// maybeClean retires a flow copy once every local consumer has executed and
// every child has been served (Figure 1's "Cleanup if all done").
func (n *node) maybeClean(key flowKey, fd *flowData) {
	if fd.state != flowReady || fd.localRefs > 0 || fd.servedGets < fd.expectedGets {
		return
	}
	if fd.registered {
		n.ce.MemDereg(fd.lreg)
		fd.registered = false
	}
	delete(n.store, key)
}
