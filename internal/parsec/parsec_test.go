package parsec_test

import (
	"strings"
	"testing"
	"testing/quick"

	"amtlci/internal/core/stack"
	"amtlci/internal/parsec"
	"amtlci/internal/sim"
)

// build assembles a runtime over a fresh stack.
func build(t *testing.T, b stack.Backend, ranks, workers int, tp parsec.Taskpool, mod func(*parsec.Config)) (*stack.Stack, *parsec.Runtime) {
	t.Helper()
	return buildSharded(t, b, ranks, 1, workers, tp, mod)
}

// buildSharded is build on a sharded simulation domain (shards 0 or 1 is
// the serial engine).
func buildSharded(t *testing.T, b stack.Backend, ranks, shards, workers int, tp parsec.Taskpool, mod func(*parsec.Config)) (*stack.Stack, *parsec.Runtime) {
	t.Helper()
	o := stack.DefaultOptions(b, ranks)
	o.Fabric.Jitter = 0
	o.Shards = shards
	s := stack.Build(o)
	cfg := parsec.DefaultConfig(workers)
	cfg.Jitter = 0
	if mod != nil {
		mod(&cfg)
	}
	return s, parsec.New(s.Dom, s.Engines, tp, cfg)
}

func forBackends(t *testing.T, f func(t *testing.T, b stack.Backend)) {
	for _, b := range stack.Backends {
		b := b
		t.Run(b.String(), func(t *testing.T) { f(t, b) })
	}
}

func TestSingleLocalChain(t *testing.T) {
	forBackends(t, func(t *testing.T, b stack.Backend) {
		g := parsec.NewGraphPool("chain", 1, false)
		a := g.AddTask(0, 0, 10*sim.Microsecond, 0, 128)
		bb := g.AddTask(1, 0, 10*sim.Microsecond, 0, 128)
		c := g.AddTask(2, 0, 10*sim.Microsecond, 0)
		g.Link(a, 0, bb)
		g.Link(bb, 0, c)
		var order []parsec.TaskID
		g.ExecuteFn = func(tk parsec.TaskID, _, _ []parsec.DataRef) { order = append(order, tk) }
		_, rt := build(t, b, 1, 2, g, nil)
		d, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(order) != 3 || order[0] != a || order[1] != bb || order[2] != c {
			t.Fatalf("order = %v", order)
		}
		if d < 30*sim.Microsecond {
			t.Fatalf("makespan %v below serial compute time", d)
		}
	})
}

func TestRemoteDependencyMovesRealBytes(t *testing.T) {
	forBackends(t, func(t *testing.T, b stack.Backend) {
		g := parsec.NewGraphPool("remote", 2, true)
		const size = 96 << 10 // rendezvous-sized
		prod := g.AddTask(0, 0, sim.Microsecond, 0, size)
		cons := g.AddTask(1, 1, sim.Microsecond, 0)
		g.Link(prod, 0, cons)
		var got byte
		g.ExecuteFn = func(tk parsec.TaskID, in, out []parsec.DataRef) {
			switch tk {
			case prod:
				for i := range out[0].Buf.Bytes {
					out[0].Buf.Bytes[i] = 0x5C
				}
			case cons:
				got = in[0].Buf.Bytes[size-1]
			}
		}
		_, rt := build(t, b, 2, 2, g, nil)
		if _, err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		if got != 0x5C {
			t.Fatalf("consumer saw byte %#x, want 0x5C", got)
		}
		if rt.Stats(1).BytesFetched != size {
			t.Fatalf("BytesFetched = %d", rt.Stats(1).BytesFetched)
		}
		if rt.Tracer().EndToEnd().N() != 1 {
			t.Fatalf("tracer samples = %d, want 1", rt.Tracer().EndToEnd().N())
		}
	})
}

func TestSmallRemotePayloadUsesEagerPath(t *testing.T) {
	// Payloads at or below the eager thresholds must still arrive intact.
	forBackends(t, func(t *testing.T, b stack.Backend) {
		g := parsec.NewGraphPool("eager", 2, true)
		prod := g.AddTask(0, 0, sim.Microsecond, 0, 64)
		cons := g.AddTask(1, 1, sim.Microsecond, 0)
		g.Link(prod, 0, cons)
		ok := false
		g.ExecuteFn = func(tk parsec.TaskID, in, out []parsec.DataRef) {
			if tk == prod {
				out[0].Buf.Bytes[63] = 0x77
			} else {
				ok = in[0].Buf.Bytes[63] == 0x77
			}
		}
		_, rt := build(t, b, 2, 1, g, nil)
		if _, err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("eager payload corrupted or missing")
		}
	})
}

func TestDiamondMixedLocalRemote(t *testing.T) {
	forBackends(t, func(t *testing.T, b stack.Backend) {
		// A on rank0 feeds B (rank0, local) and C (rank1, remote); D on
		// rank1 needs B and C.
		g := parsec.NewGraphPool("diamond", 2, false)
		a := g.AddTask(0, 0, sim.Microsecond, 0, 4096)
		bb := g.AddTask(1, 0, sim.Microsecond, 0, 4096)
		c := g.AddTask(2, 1, sim.Microsecond, 0, 4096)
		d := g.AddTask(3, 1, sim.Microsecond, 0)
		g.Link(a, 0, bb)
		g.Link(a, 0, c)
		g.Link(bb, 0, d)
		g.Link(c, 0, d)
		ran := map[int64]bool{}
		g.ExecuteFn = func(tk parsec.TaskID, _, _ []parsec.DataRef) { ran[tk.Index] = true }
		_, rt := build(t, b, 2, 2, g, nil)
		if _, err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		if len(ran) != 4 {
			t.Fatalf("ran %d tasks, want 4", len(ran))
		}
	})
}

func TestBroadcastUsesMulticastTree(t *testing.T) {
	forBackends(t, func(t *testing.T, b stack.Backend) {
		const ranks = 9
		g := parsec.NewGraphPool("bcast", ranks, false)
		prod := g.AddTask(0, 0, sim.Microsecond, 0, 32<<10)
		for r := 1; r < ranks; r++ {
			c := g.AddTask(int64(r), r, sim.Microsecond, 0)
			g.Link(prod, 0, c)
		}
		_, rt := build(t, b, ranks, 1, g, nil)
		if _, err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		// Every remote rank fetched the flow once.
		if n := rt.Tracer().EndToEnd().N(); n != ranks-1 {
			t.Fatalf("e2e samples = %d, want %d", n, ranks-1)
		}
		// With a binomial tree, the root serves ceil(log2(9))=4 children,
		// not 8: its GET DATA count stays below the consumer count.
		rootGets := rt.Stats(0).GetsSent
		if rootGets != 0 {
			t.Fatalf("root sent %d GET DATA, want 0", rootGets)
		}
		var forwarded int64
		for r := 1; r < ranks; r++ {
			forwarded += rt.Stats(r).ActivatesSent
		}
		if forwarded == 0 {
			t.Fatal("no rank forwarded activations; tree multicast not exercised")
		}
	})
}

// TestMulticastDeliversToAllRanksExactlyOnce drives the binomial multicast
// tree across odd, even, power-of-two and non-power-of-two rank counts from
// 1 to 64 on both backends: one producer on rank 0 feeds a consumer on every
// other rank, and each consumer must run exactly once with intact data.
func TestMulticastDeliversToAllRanksExactlyOnce(t *testing.T) {
	counts := []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 33, 63, 64}
	forBackends(t, func(t *testing.T, b stack.Backend) {
		for _, ranks := range counts {
			const size = 1 << 10
			g := parsec.NewGraphPool("mcast", ranks, true)
			prod := g.AddTask(0, 0, sim.Microsecond, 0, size)
			for r := 1; r < ranks; r++ {
				c := g.AddTask(int64(r), r, sim.Microsecond, 0)
				g.Link(prod, 0, c)
			}
			runs := make(map[int64]int)
			intact := make(map[int64]bool)
			g.ExecuteFn = func(tk parsec.TaskID, in, out []parsec.DataRef) {
				runs[tk.Index]++
				if tk == prod {
					for i := range out[0].Buf.Bytes {
						out[0].Buf.Bytes[i] = byte(i)
					}
					return
				}
				ok := len(in[0].Buf.Bytes) == size
				if ok {
					ok = in[0].Buf.Bytes[size-1] == byte((size-1)%256)
				}
				intact[tk.Index] = ok
			}
			_, rt := build(t, b, ranks, 1, g, nil)
			if _, err := rt.Run(); err != nil {
				t.Fatalf("n=%d: %v", ranks, err)
			}
			for r := 0; r < ranks; r++ {
				if runs[int64(r)] != 1 {
					t.Fatalf("n=%d: task %d ran %d times, want exactly once", ranks, r, runs[int64(r)])
				}
				if r > 0 && !intact[int64(r)] {
					t.Fatalf("n=%d: rank %d received corrupted data", ranks, r)
				}
			}
			if n := rt.Tracer().EndToEnd().N(); int(n) != ranks-1 {
				t.Fatalf("n=%d: e2e samples = %d, want %d (one delivery per consumer)", ranks, n, ranks-1)
			}
		}
	})
}

func TestPriorityOrderOnSingleWorker(t *testing.T) {
	g := parsec.NewGraphPool("prio", 1, false)
	root := g.AddTask(0, 0, sim.Microsecond, 0, 8)
	low := g.AddTask(1, 0, sim.Microsecond, 1)
	high := g.AddTask(2, 0, sim.Microsecond, 99)
	g.Link(root, 0, low)
	g.Link(root, 0, high)
	var order []int64
	g.ExecuteFn = func(tk parsec.TaskID, _, _ []parsec.DataRef) { order = append(order, tk.Index) }
	_, rt := build(t, stack.LCI, 1, 1, g, nil)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if order[1] != 2 || order[2] != 1 {
		t.Fatalf("priority order violated: %v", order)
	}
}

func TestFetchCapDefersLowPriorityFetches(t *testing.T) {
	forBackends(t, func(t *testing.T, b stack.Backend) {
		g := parsec.NewGraphPool("defer", 2, false)
		const n = 12
		for i := int64(0); i < n; i++ {
			p := g.AddTask(i, 0, sim.Microsecond, 0, 256<<10)
			c := g.AddTask(100+i, 1, sim.Microsecond, i)
			g.Link(p, 0, c)
		}
		_, rt := build(t, b, 2, 4, g, func(c *parsec.Config) { c.FetchCap = 2 })
		if _, err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		if rt.Stats(1).FetchDeferred == 0 {
			t.Fatal("no fetches deferred despite FetchCap=2")
		}
		if rt.Stats(1).TasksRun != n {
			t.Fatalf("rank1 ran %d tasks, want %d", rt.Stats(1).TasksRun, n)
		}
	})
}

func TestActivateAggregationFunneledVsMT(t *testing.T) {
	mkpool := func() *parsec.GraphPool {
		g := parsec.NewGraphPool("agg", 2, false)
		// Many producers on rank 0 all feeding consumers on rank 1: their
		// ACTIVATEs aggregate when funneled through the comm thread.
		for i := int64(0); i < 64; i++ {
			p := g.AddTask(i, 0, 100*sim.Nanosecond, 0, 1024)
			c := g.AddTask(1000+i, 1, 100*sim.Nanosecond, 0)
			g.Link(p, 0, c)
		}
		return g
	}
	_, funneled := build(t, stack.LCI, 2, 8, mkpool(), nil)
	if _, err := funneled.Run(); err != nil {
		t.Fatal(err)
	}
	fs := funneled.Stats(0)
	if fs.ActivatesSent >= fs.Activations {
		t.Fatalf("funneled mode did not aggregate: %d messages for %d activations",
			fs.ActivatesSent, fs.Activations)
	}
	_, mt := build(t, stack.LCI, 2, 8, mkpool(), func(c *parsec.Config) { c.MTActivate = true })
	if _, err := mt.Run(); err != nil {
		t.Fatal(err)
	}
	ms := mt.Stats(0)
	if ms.ActivatesSent != ms.Activations {
		t.Fatalf("MT mode should not aggregate: %d messages for %d activations",
			ms.ActivatesSent, ms.Activations)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// A consumer whose producer lives on a rank that never runs it: we
	// simulate a broken pool by linking to a task that never becomes ready.
	g := parsec.NewGraphPool("dead", 1, false)
	a := g.AddTask(0, 0, sim.Microsecond, 0, 8)
	bb := g.AddTask(1, 0, sim.Microsecond, 0, 8)
	c := g.AddTask(2, 0, sim.Microsecond, 0, 8)
	g.Link(a, 0, bb)
	g.Link(bb, 0, c) // fine so far
	g.Link(c, 0, bb) // cycle: b needs c, c needs b
	_, rt := build(t, stack.LCI, 1, 2, g, nil)
	_, err := rt.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestDeterministicMakespan(t *testing.T) {
	run := func(b stack.Backend) sim.Duration {
		g := parsec.NewGraphPool("det", 4, false)
		idx := int64(0)
		var prev []parsec.TaskID
		for layer := 0; layer < 6; layer++ {
			var cur []parsec.TaskID
			for i := 0; i < 8; i++ {
				tk := g.AddTask(idx, (layer+i)%4, 5*sim.Microsecond, int64(i), 64<<10)
				idx++
				for _, p := range prev {
					g.Link(p, 0, tk)
				}
				cur = append(cur, tk)
			}
			prev = cur
		}
		_, rt := build(t, b, 4, 4, g, nil)
		d, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	for _, b := range stack.Backends {
		if a, bd := run(b), run(b); a != bd {
			t.Fatalf("%v: nondeterministic makespan %v vs %v", b, a, bd)
		}
	}
}

func TestWorkerScalingReducesMakespan(t *testing.T) {
	mk := func(workers int) sim.Duration {
		g := parsec.NewGraphPool("scale", 1, false)
		for i := int64(0); i < 64; i++ {
			g.AddTask(i, 0, 100*sim.Microsecond, 0)
		}
		_, rt := build(t, stack.LCI, 1, workers, g, nil)
		d, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	one, eight := mk(1), mk(8)
	if eight >= one/4 {
		t.Fatalf("8 workers (%v) not meaningfully faster than 1 (%v)", eight, one)
	}
}

func TestSkewedClocksWithCorrections(t *testing.T) {
	g := parsec.NewGraphPool("clock", 2, false)
	p := g.AddTask(0, 0, sim.Microsecond, 0, 128<<10)
	c := g.AddTask(1, 1, sim.Microsecond, 0)
	g.Link(p, 0, c)
	s, rt := build(t, stack.LCI, 2, 1, g, nil)
	_ = s
	offsets := []sim.Duration{0, 5 * sim.Millisecond}
	clocks := []parsec.Clock{{Offset: offsets[0]}, {Offset: offsets[1]}}
	rt.SetClocks(clocks, offsets) // perfect corrections
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	e2e := rt.Tracer().EndToEnd().Mean()
	if e2e < 0 || e2e > 1000 {
		t.Fatalf("corrected e2e latency = %vµs, implausible", e2e)
	}
}

func TestSkewedClocksWithoutCorrectionsDistortLatency(t *testing.T) {
	g := parsec.NewGraphPool("clock2", 2, false)
	p := g.AddTask(0, 0, sim.Microsecond, 0, 128<<10)
	c := g.AddTask(1, 1, sim.Microsecond, 0)
	g.Link(p, 0, c)
	_, rt := build(t, stack.LCI, 2, 1, g, nil)
	clocks := []parsec.Clock{{}, {Offset: 5 * sim.Millisecond}}
	rt.SetClocks(clocks, make([]sim.Duration, 2)) // no corrections
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if e2e := rt.Tracer().EndToEnd().Mean(); e2e < 4000 {
		t.Fatalf("uncorrected skew should distort latency, got %vµs", e2e)
	}
}

func TestControlFlowCarriesNoData(t *testing.T) {
	forBackends(t, func(t *testing.T, b stack.Backend) {
		// A SYNC-style task: remote consumers depend on a zero-size flow.
		g := parsec.NewGraphPool("ctl", 2, false)
		sync := g.AddTask(0, 0, sim.Microsecond, 0, 0) // zero-size flow
		c1 := g.AddTask(1, 1, sim.Microsecond, 0)
		c2 := g.AddTask(2, 1, sim.Microsecond, 0)
		g.Link(sync, 0, c1)
		g.Link(sync, 0, c2)
		_, rt := build(t, b, 2, 2, g, nil)
		if _, err := rt.Run(); err != nil {
			t.Fatal(err)
		}
		// No GET DATA, no bytes fetched: pure control.
		if rt.Stats(1).GetsSent != 0 || rt.Stats(1).BytesFetched != 0 {
			t.Fatalf("control dep moved data: %+v", rt.Stats(1))
		}
		if rt.Stats(0).ActivatesSent == 0 {
			t.Fatal("no activation sent for control flow")
		}
	})
}

func TestControlFlowThroughMulticastTree(t *testing.T) {
	const ranks = 8
	g := parsec.NewGraphPool("ctl-tree", ranks, false)
	sync := g.AddTask(0, 0, sim.Microsecond, 0, 0)
	for r := 1; r < ranks; r++ {
		c := g.AddTask(int64(r), r, sim.Microsecond, 0)
		g.Link(sync, 0, c)
	}
	_, rt := build(t, stack.LCI, ranks, 1, g, nil)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 1; r < ranks; r++ {
		if rt.Stats(r).GetsSent != 0 {
			t.Fatalf("rank %d fetched data for a control flow", r)
		}
	}
}

func TestRandomDAGsCompleteOnBothBackends(t *testing.T) {
	// Property: any randomly generated layered DAG with mixed control and
	// data flows completes without deadlock on both backends, every task
	// runs exactly once, and the two backends fetch identical byte counts
	// (the protocol moves the same data, only timing differs).
	buildRandom := func(seed uint64, ranks int) *parsec.GraphPool {
		rng := sim.NewRNG(seed)
		g := parsec.NewGraphPool("random", ranks, false)
		var prev []parsec.TaskID
		idx := int64(0)
		layers := 2 + rng.Intn(4)
		for l := 0; l < layers; l++ {
			width := 1 + rng.Intn(6)
			var cur []parsec.TaskID
			for i := 0; i < width; i++ {
				var size int64
				switch rng.Intn(3) {
				case 0:
					size = 0 // control flow
				case 1:
					size = int64(1 + rng.Intn(4<<10)) // eager
				default:
					size = int64(32<<10 + rng.Intn(256<<10)) // rendezvous
				}
				tk := g.AddTask(idx, rng.Intn(ranks),
					sim.Duration(rng.Intn(20))*sim.Microsecond, int64(rng.Intn(8)), size)
				idx++
				// Link to a random subset of the previous layer.
				for _, p := range prev {
					if rng.Intn(3) != 0 {
						g.Link(p, 0, tk)
					}
				}
				cur = append(cur, tk)
			}
			prev = cur
		}
		return g
	}

	f := func(seed uint16) bool {
		ranks := 2 + int(seed)%3
		var fetched [2]int64
		for i, b := range stack.Backends {
			g := buildRandom(uint64(seed)+7, ranks)
			_, rt := build(t, b, ranks, 2, g, nil)
			if _, err := rt.Run(); err != nil {
				t.Logf("seed %d backend %v: %v", seed, b, err)
				return false
			}
			var ran int64
			for r := 0; r < ranks; r++ {
				ran += rt.Stats(r).TasksRun
				fetched[i] += rt.Stats(r).BytesFetched
			}
			var want int64
			for r := 0; r < ranks; r++ {
				want += g.LocalTasks(r)
			}
			if ran != want {
				t.Logf("seed %d backend %v: ran %d want %d", seed, b, ran, want)
				return false
			}
		}
		if fetched[0] != fetched[1] {
			t.Logf("seed %d: LCI fetched %d, MPI fetched %d", seed, fetched[0], fetched[1])
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

type countingObserver struct {
	parsec.NopObserver
	starts, ends, fetches, arrivals, activates int
}

func (o *countingObserver) TaskStart(int, int, parsec.TaskID, sim.Time) { o.starts++ }
func (o *countingObserver) TaskEnd(int, int, parsec.TaskID, sim.Time)   { o.ends++ }
func (o *countingObserver) FetchStart(int, parsec.TaskID, int32, int64, sim.Time) {
	o.fetches++
}
func (o *countingObserver) DataArrived(int, parsec.TaskID, int32, int64, sim.Time) {
	o.arrivals++
}
func (o *countingObserver) ActivateSent(int, int, int, sim.Time) { o.activates++ }

func TestObserverSeesEveryEvent(t *testing.T) {
	g := parsec.NewGraphPool("obs", 2, false)
	p := g.AddTask(0, 0, sim.Microsecond, 0, 64<<10)
	c := g.AddTask(1, 1, sim.Microsecond, 0)
	g.Link(p, 0, c)
	_, rt := build(t, stack.LCI, 2, 1, g, nil)
	obs := &countingObserver{}
	rt.SetObserver(obs)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if obs.starts != 2 || obs.ends != 2 {
		t.Fatalf("task events: %d starts, %d ends", obs.starts, obs.ends)
	}
	if obs.fetches != 1 || obs.arrivals != 1 {
		t.Fatalf("comm events: %d fetches, %d arrivals", obs.fetches, obs.arrivals)
	}
	if obs.activates == 0 {
		t.Fatal("no ACTIVATE events observed")
	}
}

// seqEvent is one observed callback, in arrival order.
type seqEvent struct {
	kind    string // "start", "end", "fetch", "arrive", "activate"
	rank    int
	worker  int
	task    parsec.TaskID
	flow    int32
	entries int
	at      sim.Time
}

type sequenceObserver struct {
	parsec.NopObserver
	events []seqEvent
}

func (o *sequenceObserver) TaskStart(rank, worker int, t parsec.TaskID, at sim.Time) {
	o.events = append(o.events, seqEvent{kind: "start", rank: rank, worker: worker, task: t, at: at})
}
func (o *sequenceObserver) TaskEnd(rank, worker int, t parsec.TaskID, at sim.Time) {
	o.events = append(o.events, seqEvent{kind: "end", rank: rank, worker: worker, task: t, at: at})
}
func (o *sequenceObserver) FetchStart(rank int, p parsec.TaskID, flow int32, _ int64, at sim.Time) {
	o.events = append(o.events, seqEvent{kind: "fetch", rank: rank, task: p, flow: flow, at: at})
}
func (o *sequenceObserver) DataArrived(rank int, p parsec.TaskID, flow int32, _ int64, at sim.Time) {
	o.events = append(o.events, seqEvent{kind: "arrive", rank: rank, task: p, flow: flow, at: at})
}
func (o *sequenceObserver) ActivateSent(rank, dest, entries int, at sim.Time) {
	o.events = append(o.events, seqEvent{kind: "activate", rank: rank, entries: entries, at: at})
}

// TestObserverSequence pins down the callback contract on a two-rank graph:
// every TaskStart pairs with exactly one later TaskEnd on the same
// (rank, worker), every FetchStart precedes the DataArrived of the same
// flow on the same rank, and the ActivateSent entry counts add up to the
// runtime's own Activations counter — identically on both backends.
func TestObserverSequence(t *testing.T) {
	forBackends(t, func(t *testing.T, b stack.Backend) {
		serial := observerSeqRun(t, b, 1)
		// The contract holds under sharded simulation too, and each rank's
		// subsequence of callbacks is identical to serial delivery — the
		// merged replay only normalizes cross-rank ties.
		for _, shards := range []int{2, 4} {
			got := observerSeqRun(t, b, shards)
			diffRankStreams(t, shards, serial, got)
		}
	})
}

// diffRankStreams asserts that each rank's callback subsequence in got
// matches serial exactly (kinds, arguments, and timestamps).
func diffRankStreams(t *testing.T, shards int, serial, got []seqEvent) {
	t.Helper()
	perRank := func(evs []seqEvent) map[int][]seqEvent {
		m := map[int][]seqEvent{}
		for _, e := range evs {
			m[e.rank] = append(m[e.rank], e)
		}
		return m
	}
	ws, wg := perRank(serial), perRank(got)
	if len(ws) != len(wg) {
		t.Fatalf("shards=%d: observer streams cover %d ranks, serial %d", shards, len(wg), len(ws))
	}
	for r, want := range ws {
		have := wg[r]
		if len(have) != len(want) {
			t.Fatalf("shards=%d rank %d: %d events, serial %d", shards, r, len(have), len(want))
		}
		for i := range want {
			if have[i] != want[i] {
				t.Fatalf("shards=%d rank %d event %d = %+v, serial %+v", shards, r, i, have[i], want[i])
			}
		}
	}
}

// observerSeqRun executes the two-producer graph under the given shard
// count, checks every observer invariant, and returns the callback stream.
func observerSeqRun(t *testing.T, b stack.Backend, shards int) []seqEvent {
	t.Helper()
	{
		// Two producers on rank 0 feed one consumer each on rank 1, with
		// rendezvous-sized flows so both GET DATA paths are exercised.
		g := parsec.NewGraphPool("seq", 2, false)
		p0 := g.AddTask(0, 0, 2*sim.Microsecond, 0, 64<<10)
		p1 := g.AddTask(1, 0, 2*sim.Microsecond, 0, 64<<10)
		c0 := g.AddTask(2, 1, sim.Microsecond, 0)
		c1 := g.AddTask(3, 1, sim.Microsecond, 0)
		g.Link(p0, 0, c0)
		g.Link(p1, 0, c1)
		_, rt := buildSharded(t, b, 2, shards, 2, g, nil)
		obs := &sequenceObserver{}
		rt.SetObserver(obs)
		if _, err := rt.Run(); err != nil {
			t.Fatal(err)
		}

		// Virtual time never runs backwards across callbacks.
		for i := 1; i < len(obs.events); i++ {
			if obs.events[i].at < obs.events[i-1].at {
				t.Fatalf("event %d at %v precedes event %d at %v",
					i, obs.events[i].at, i-1, obs.events[i-1].at)
			}
		}

		// TaskStart/TaskEnd pair per (rank, worker, task), start first.
		type slot struct {
			rank, worker int
			task         parsec.TaskID
		}
		open := map[slot]sim.Time{}
		pairs := 0
		for _, e := range obs.events {
			k := slot{e.rank, e.worker, e.task}
			switch e.kind {
			case "start":
				if _, dup := open[k]; dup {
					t.Fatalf("second TaskStart for %v before its TaskEnd", k)
				}
				open[k] = e.at
			case "end":
				start, ok := open[k]
				if !ok {
					t.Fatalf("TaskEnd for %v without TaskStart", k)
				}
				if e.at < start {
					t.Fatalf("TaskEnd for %v at %v before its start %v", k, e.at, start)
				}
				delete(open, k)
				pairs++
			}
		}
		if len(open) != 0 {
			t.Fatalf("%d TaskStart(s) never ended: %v", len(open), open)
		}
		if pairs != 4 {
			t.Fatalf("task pairs = %d, want 4", pairs)
		}

		// FetchStart precedes DataArrived for the same (rank, producer, flow).
		type fkey struct {
			rank int
			task parsec.TaskID
			flow int32
		}
		fetched := map[fkey]sim.Time{}
		arrivals := 0
		for _, e := range obs.events {
			k := fkey{e.rank, e.task, e.flow}
			switch e.kind {
			case "fetch":
				fetched[k] = e.at
			case "arrive":
				sent, ok := fetched[k]
				if !ok {
					t.Fatalf("DataArrived for %v without FetchStart", k)
				}
				if e.at < sent {
					t.Fatalf("DataArrived for %v at %v before its fetch %v", k, e.at, sent)
				}
				arrivals++
			}
		}
		if len(fetched) != 2 || arrivals != 2 {
			t.Fatalf("fetches = %d, arrivals = %d, want 2 and 2", len(fetched), arrivals)
		}

		// ActivateSent messages and entry totals match the runtime counters.
		msgs, entries := 0, 0
		for _, e := range obs.events {
			if e.kind == "activate" {
				if e.rank != 0 {
					t.Fatalf("ACTIVATE observed from rank %d, want 0", e.rank)
				}
				msgs++
				entries += e.entries
			}
		}
		var statMsgs, statEntries int64
		for r := 0; r < 2; r++ {
			statMsgs += rt.Stats(r).ActivatesSent
			statEntries += rt.Stats(r).Activations
		}
		if int64(msgs) != statMsgs || int64(entries) != statEntries {
			t.Fatalf("observer saw %d msgs/%d entries, counters say %d/%d",
				msgs, entries, statMsgs, statEntries)
		}
		if entries != 2 {
			t.Fatalf("activation entries = %d, want 2 (one per remote flow)", entries)
		}
		return obs.events
	}
}

// TestObserverSequenceShardedWideGraph runs the sharded observer over a
// four-rank pipeline so four genuinely distinct shards each record a
// stream, and checks the merged replay against serial rank by rank.
func TestObserverSequenceShardedWideGraph(t *testing.T) {
	forBackends(t, func(t *testing.T, b stack.Backend) {
		run := func(shards int) []seqEvent {
			g := parsec.NewGraphPool("wide", 4, false)
			// Rank r's task feeds rank r+1's, plus a second local task per
			// rank, so every rank both computes and communicates.
			var prev parsec.TaskID
			id := int64(0)
			for r := 0; r < 4; r++ {
				tk := g.AddTask(id, r, 2*sim.Microsecond, 0, 64<<10)
				id++
				if r > 0 {
					g.Link(prev, 0, tk)
				}
				prev = tk
				local := g.AddTask(id, r, sim.Microsecond, 0)
				id++
				g.Link(tk, 0, local)
			}
			_, rt := buildSharded(t, b, 4, shards, 2, g, nil)
			obs := &sequenceObserver{}
			rt.SetObserver(obs)
			if _, err := rt.Run(); err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(obs.events); i++ {
				if obs.events[i].at < obs.events[i-1].at {
					t.Fatalf("shards=%d: event %d at %v precedes event %d at %v",
						shards, i, obs.events[i].at, i-1, obs.events[i-1].at)
				}
			}
			return obs.events
		}
		serial := run(1)
		if len(serial) == 0 {
			t.Fatal("serial run produced no observer events")
		}
		for _, shards := range []int{2, 4} {
			diffRankStreams(t, shards, serial, run(shards))
		}
	})
}
