// Package parsec implements the asynchronous many-task runtime of the paper:
// a PaRSEC-style engine that executes a distributed task graph with
// owner-computes placement, priority scheduling, over-decomposition, and the
// ACTIVATE / GET DATA / put communication protocol of Section 4.1 (Figure 1)
// over the backend-independent communication engine of internal/core.
//
// Per Section 4.3, each rank runs a set of worker cores plus a communication
// thread with four duties: aggregating ACTIVATE messages per destination,
// polling communication progress, sending deferred GET DATA messages, and
// initiating deferred puts. Dataflows with many remote consumers propagate
// down a binomial multicast tree, with forwarding ranks serving their
// subtrees once their own copy arrives. Optionally, worker threads send
// ACTIVATE messages themselves (communication multithreading, §6.4.3),
// trading aggregation for latency.
package parsec

import (
	"fmt"

	"amtlci/internal/metrics"
	"amtlci/internal/sim"
)

// TaskID names one task: a class index into the taskpool's class list and a
// class-specific linear index.
type TaskID struct {
	Class int32
	Index int64
}

// String formats the task for traces.
func (t TaskID) String() string { return fmt.Sprintf("c%d[%d]", t.Class, t.Index) }

// Dep names one edge endpoint: for Inputs it is the producing task and the
// producer's output flow; for Successors it is the consuming task and,
// again, the producer's flow the consumer reads.
type Dep struct {
	Task TaskID
	Flow int32
}

// TaskClass is static metadata for one task type.
type TaskClass struct {
	Name string
}

// Taskpool describes a distributed task graph to the runtime. It is the
// PaRSEC parameterized-task-graph contract: dependences are computed from
// task identities, never stored globally, so graphs with millions of tasks
// need no materialized edge lists.
//
// All methods must be deterministic pure functions of their arguments: the
// runtime calls them from multiple (simulated) ranks and relies on every
// rank deriving identical structure.
type Taskpool interface {
	// Name identifies the taskpool in traces and experiment output.
	Name() string

	// Classes returns static per-class metadata; TaskID.Class indexes it.
	Classes() []TaskClass

	// RankOf returns the rank that executes t (owner computes).
	RankOf(t TaskID) int

	// Cost returns t's execution time on one worker core.
	Cost(t TaskID) sim.Duration

	// Priority orders ready tasks; higher executes first. PaRSEC uses
	// priorities both for scheduling and for ordering data fetches (§4.1).
	Priority(t TaskID) int64

	// Inputs appends t's input dependences to out and returns it.
	Inputs(t TaskID, out []Dep) []Dep

	// Successors appends the consumers of t's output flow to out and
	// returns it. Consumers may repeat a rank; the runtime deduplicates.
	Successors(t TaskID, flow int32, out []Dep) []Dep

	// Roots calls emit for every task owned by rank that has no inputs.
	Roots(rank int, emit func(TaskID))

	// LocalTasks returns how many tasks rank owns in total; the runtime
	// uses it for termination and deadlock detection.
	LocalTasks(rank int) int64

	// Execute performs the task's computation and returns one payload per
	// output flow. inputs follows the order of Inputs. The returned sizes
	// may depend on the computation (e.g. tile ranks in TLR algorithms).
	// Virtual-mode pools return storage-less payloads. Execute runs
	// logically on a worker core of RankOf(t).
	Execute(t TaskID, inputs []DataRef) []DataRef

	// MakeCopy returns the landing buffer at a consuming rank for a remote
	// copy of t's output flow, whose size arrived with the activation.
	MakeCopy(t TaskID, flow int32, size int64) DataRef
}

// DataRef is a handle to one dataflow payload.
type DataRef struct {
	Buf bufAlias
}

// bufAlias keeps the public surface tidy without an import cycle; it is
// defined in data.go as = buf.Buf.

// Config controls the runtime.
type Config struct {
	// Workers is the number of worker cores per rank. The paper's platform
	// has 128 cores: 127 workers with the MPI backend (1 comm thread) and
	// 126 with LCI (comm + progress threads), §6.1.2.
	Workers int

	// MTActivate enables communication multithreading: workers send their
	// ACTIVATE messages directly instead of funneling them through the
	// communication thread (§6.4.3). Aggregation is lost.
	MTActivate bool

	// FetchCap bounds concurrently outstanding GET DATA requests per rank;
	// further fetches queue by priority (the §4.1 deferral).
	FetchCap int

	// FetchLazy defers a flow's GET DATA until some local consumer has all
	// its other dependences satisfied — the strictest reading of the §4.1
	// "request data immediately or defer" policy. The microbenchmarks use
	// it to honor their SYNC serialization; HiCMA prefetches eagerly.
	FetchLazy bool

	// TreeFanout switches multicasts to a binomial tree once a flow has at
	// least this many consumer ranks; below it the root sends directly.
	TreeFanout int

	// AMCap bounds one aggregated ACTIVATE message's payload bytes.
	AMCap int

	// Steal enables inter-rank work stealing: a rank whose workers have all
	// gone idle probes the others in ring order and migrates up to half of a
	// loaded victim's eligible ready tasks, together with their input tiles
	// (fetched over the ordinary GET DATA path). Off by default — a no-steal
	// run sends not a single steal message, keeping the calibrated wire
	// traffic byte-identical to the paper's.
	Steal bool

	// StealMax caps the tasks migrated by one steal exchange; 0 means
	// DefaultStealMax.
	StealMax int

	// Jitter is the relative sigma of task-duration noise; Seed seeds it.
	Jitter float64
	Seed   uint64

	// Cost model of runtime-internal work (all charged to the thread that
	// performs it).
	SchedCost       sim.Duration // scheduler pop + worker handoff
	CompleteCost    sim.Duration // per-task completion bookkeeping
	ActivateCost    sim.Duration // per-activation processing in the AM callback
	ActivateDesc    sim.Duration // per local descendant of each activation (§4.3)
	GetDataCost     sim.Duration // per-GET DATA processing at the data owner
	DeliverCost     sim.Duration // per-arrival release processing
	AggregationCost sim.Duration // per-destination flush bookkeeping

	// Metrics is the registry every rank registers its instruments in
	// (task/protocol counters, ready- and fetch-queue depths, worker busy
	// time). Nil gets a private registry; stack.Build shares one across
	// every layer.
	Metrics *metrics.Registry
}

// DefaultStealMax is the per-exchange migration cap when Config.StealMax is
// zero. It matches the steal package's per-reply frame budget.
const DefaultStealMax = 64

// DefaultConfig mirrors the paper's runtime setup for w workers.
func DefaultConfig(w int) Config {
	return Config{
		Workers:         w,
		FetchCap:        16,
		TreeFanout:      4,
		AMCap:           8 << 10,
		Jitter:          0.02,
		Seed:            0xA37,
		SchedCost:       200 * sim.Nanosecond,
		CompleteCost:    400 * sim.Nanosecond,
		ActivateCost:    1500 * sim.Nanosecond,
		ActivateDesc:    1 * sim.Microsecond,
		GetDataCost:     1500 * sim.Nanosecond,
		DeliverCost:     800 * sim.Nanosecond,
		AggregationCost: 150 * sim.Nanosecond,
	}
}

// Stats aggregates one rank's runtime activity.
type Stats struct {
	TasksRun      int64
	ActivatesSent int64 // ACTIVATE messages (after aggregation)
	Activations   int64 // activation entries carried by those messages
	GetsSent      int64
	FetchDeferred int64
	BytesFetched  int64
	WorkerBusy    sim.Duration
	CommBusy      sim.Duration
}
