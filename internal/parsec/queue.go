package parsec

import "container/heap"

// prioItem is an entry in a max-priority queue with FIFO tie-breaking.
type prioItem struct {
	priority int64
	seq      uint64
	task     TaskID
	fire     func() // used by the fetch queue; nil in the ready queue
}

type prioHeap []prioItem

func (h prioHeap) Len() int { return len(h) }
func (h prioHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h prioHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *prioHeap) Push(x any)   { *h = append(*h, x.(prioItem)) }
func (h *prioHeap) Pop() (out any) {
	old := *h
	n := len(old)
	out = old[n-1]
	old[n-1] = prioItem{}
	*h = old[:n-1]
	return out
}

// prioQueue is a max-priority queue (highest priority pops first; FIFO among
// equals). The runtime uses one for ready tasks and one for deferred fetches.
type prioQueue struct {
	h   prioHeap
	seq uint64
}

func (q *prioQueue) Len() int { return len(q.h) }

func (q *prioQueue) Push(priority int64, task TaskID, fire func()) {
	q.seq++
	heap.Push(&q.h, prioItem{priority: priority, seq: q.seq, task: task, fire: fire})
}

func (q *prioQueue) Pop() prioItem {
	return heap.Pop(&q.h).(prioItem)
}
