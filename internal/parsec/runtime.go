package parsec

import (
	"fmt"
	"strings"
	"sync"

	"amtlci/internal/core"
	"amtlci/internal/metrics"
	"amtlci/internal/sim"
	"amtlci/internal/steal"
)

// Runtime drives a distributed taskpool execution over a set of
// communication engines (one per rank) on a shared simulation domain —
// the serial engine, or a sharded sim.Parallel where each rank's node runs
// on its owning shard's goroutine.
type Runtime struct {
	dom    sim.Domain
	tp     Taskpool
	cfg    Config
	nodes  []*node
	tracer *Tracer
	reg    *metrics.Registry

	// obs is what the nodes call: the user's observer on a serial domain,
	// or the internal per-shard recorder on a sharded one. userObs keeps
	// the installed observer for the post-run replay; obsBufs/obsSeq are
	// the recorder's shard streams and per-rank sequence counters
	// (observer.go).
	obs     Observer
	userObs Observer
	obsBufs []shardObsBuf
	obsSeq  []uint64

	// failMu guards failed: under a sharded domain any shard's engine can
	// report the first unrecoverable error concurrently.
	failMu sync.Mutex
	failed error

	// Crash-recovery state (recovery.go); nil until EnableRecovery.
	rec *recoveryState
	// remap redirects a dead rank's task ownership to its buddy.
	remap map[int]int
	// restarts counts completed recovery restarts (whole-runtime metric).
	restarts *metrics.Counter

	// term is the distributed termination detector (term.go); always on.
	term   *termState
	nranks int
}

// New builds a runtime. engines must live on dom's per-rank engines and have
// ranks 0..n-1 in order; it panics otherwise.
func New(dom sim.Domain, engines []core.Engine, tp Taskpool, cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		panic("parsec: need at least one worker per rank")
	}
	if cfg.FetchCap <= 0 {
		panic("parsec: FetchCap must be positive")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.New()
	}
	if cfg.Steal && cfg.StealMax <= 0 {
		cfg.StealMax = DefaultStealMax
	}
	if cfg.StealMax > steal.MaxTasksPerReply {
		cfg.StealMax = steal.MaxTasksPerReply
	}
	rt := &Runtime{dom: dom, tp: tp, cfg: cfg, tracer: NewTracer(len(engines)), reg: reg}
	rt.nranks = len(engines)
	rt.restarts = reg.Counter("parsec", "restarts", metrics.StackRank)
	rt.term = newTermState(len(engines), reg)
	for i, ce := range engines {
		if ce.Rank() != i {
			panic(fmt.Sprintf("parsec: engine %d reports rank %d", i, ce.Rank()))
		}
		rt.nodes = append(rt.nodes, newNode(rt, i, ce, cfg))
		// A communication-engine failure (peer declared unreachable, bad
		// header on the wire) aborts the whole graph: with a task missing,
		// running the DAG to completion is impossible.
		ce.OnError(rt.fail)
	}
	return rt
}

// fail records the first unrecoverable failure and stops the simulation so
// Run can report it instead of spinning until the retry budgets drain. Safe
// to call from any shard.
func (rt *Runtime) fail(err error) {
	rt.failMu.Lock()
	first := rt.failed == nil
	if first {
		rt.failed = err
	}
	rt.failMu.Unlock()
	if first {
		rt.dom.Stop()
	}
}

// Err returns the first unrecoverable failure, or nil.
func (rt *Runtime) Err() error {
	rt.failMu.Lock()
	defer rt.failMu.Unlock()
	return rt.failed
}

// Tracer returns the latency tracer.
func (rt *Runtime) Tracer() *Tracer { return rt.tracer }

// SetClocks installs per-rank skewed clocks and the offset estimates the
// tracer should correct with (from internal/clocksync). With perfect clocks
// this is unnecessary.
func (rt *Runtime) SetClocks(clocks []Clock, corrections []sim.Duration) {
	for i, n := range rt.nodes {
		n.clock = clocks[i]
	}
	rt.tracer.SetCorrections(corrections)
}

// Metrics returns the registry the runtime's instruments live in.
func (rt *Runtime) Metrics() *metrics.Registry { return rt.reg }

// Stats returns rank r's runtime counters, rebuilt from the metrics
// registry; busy times come straight from the thread Procs.
func (rt *Runtime) Stats(r int) Stats {
	n := rt.nodes[r]
	var workerBusy sim.Duration
	for _, w := range n.workers {
		workerBusy += w.BusyTime()
	}
	return Stats{
		TasksRun:      int64(n.tasksRun.Value()),
		ActivatesSent: int64(n.activatesSent.Value()),
		Activations:   int64(n.activations.Value()),
		GetsSent:      int64(n.getsSent.Value()),
		FetchDeferred: int64(n.fetchDeferred.Value()),
		BytesFetched:  int64(n.bytesFetched.Value()),
		WorkerBusy:    workerBusy,
		CommBusy:      n.ce.CommProc().BusyTime(),
	}
}

// Run releases the root tasks and executes the graph to completion,
// returning the virtual makespan. It fails loudly on deadlock: if the event
// queue drains while tasks remain, something violated the taskpool contract.
// A successful run additionally requires the termination detector to have
// announced — completion is proven by consensus, never assumed from the
// event queue draining.
func (rt *Runtime) Run() (sim.Duration, error) {
	start := rt.dom.Now()
	for _, n := range rt.nodes {
		n.start()
	}
	// Seed every rank's quiet machinery: a rank with no local work at release
	// time would otherwise never hit a quiet *transition* — the coordinator
	// would never start a round, and an idle rank would never send its first
	// steal probe.
	for _, n := range rt.nodes {
		n.pollQuiet()
	}
	end := rt.dom.Run()
	// Replay buffered observer streams (sharded domains) before the error
	// checks: a serial observer saw its callbacks during the run even when
	// the run ultimately failed, and the sharded path matches.
	rt.flushObservations()

	var stuck []string
	for _, n := range rt.nodes {
		if n.executed != n.total {
			stuck = append(stuck, fmt.Sprintf("rank %d: %d/%d tasks", n.rank, n.executed, n.total))
		}
	}
	if err := rt.Err(); err != nil {
		return 0, fmt.Errorf("parsec: task graph aborted: %w", err)
	}
	if len(stuck) > 0 {
		// The detector announces here too — a deadlocked graph has genuinely
		// terminated (nothing will ever run again) — but execution is
		// incomplete, which is the more specific verdict.
		return 0, fmt.Errorf("parsec: deadlock, %s", strings.Join(stuck, "; "))
	}
	if !rt.term.announced {
		return 0, fmt.Errorf("parsec: completed without a termination announcement")
	}
	return end.Sub(start), nil
}

// ranks returns the runtime's rank count.
func (rt *Runtime) ranks() int { return rt.nranks }

// TotalTasks sums LocalTasks over all ranks.
func (rt *Runtime) TotalTasks() int64 {
	var total int64
	for i := range rt.nodes {
		total += rt.tp.LocalTasks(i)
	}
	return total
}
