package parsec

import (
	"amtlci/internal/sim"
	"amtlci/internal/stats"
)

// Clock models one rank's skewed local clock, as on a real cluster where
// per-node clocks disagree and latency measurement needs synchronization
// (§6.1.3, [18]). Reading = now + Offset + Drift*now.
type Clock struct {
	Offset sim.Duration
	Drift  float64
}

// Read returns the skewed local reading for true time now.
func (c Clock) Read(now sim.Time) sim.Time {
	return now.Add(c.Offset).Add(sim.Duration(float64(now) * c.Drift))
}

// Tracer accumulates end-to-end communication latencies: from the send of
// the root ACTIVATE message until data arrival at each consumer, across the
// entire multicast tree (the Fig. 4b / 5b metric), plus the per-hop latency
// from the direct multicast predecessor (§6.4.3).
type Tracer struct {
	// corrections[r] is the estimated clock offset of rank r relative to
	// global time; local readings are corrected by subtracting it. With
	// perfect clocks (all zero) measurements are exact.
	corrections []sim.Duration

	// lanes[r] accumulates samples whose RECEIVER is rank r. Samples are
	// recorded on the receiving rank's shard, so per-rank lanes make the
	// tracer safe under a sharded domain with no locking; readers merge the
	// lanes in rank order, which is deterministic.
	lanes []traceLane
}

type traceLane struct {
	e2e stats.Online
	hop stats.Online
}

// NewTracer builds a tracer for n ranks with perfect clock corrections.
func NewTracer(n int) *Tracer {
	return &Tracer{corrections: make([]sim.Duration, n), lanes: make([]traceLane, n)}
}

// SetCorrections installs per-rank clock-offset estimates (from
// internal/clocksync).
func (tr *Tracer) SetCorrections(c []sim.Duration) { tr.corrections = c }

func (tr *Tracer) corrected(local sim.Time, rank int) float64 {
	return float64(local.Add(-tr.corrections[rank]))
}

// Sample records one data arrival. rootSend and hopSend are local clock
// readings at the respective senders; arrival is the receiver's local
// reading.
func (tr *Tracer) Sample(root int, rootSend int64, hopRank int, hopSend int64, me int, arrival sim.Time) {
	a := tr.corrected(arrival, me)
	l := &tr.lanes[me]
	l.e2e.Add((a - tr.corrected(sim.Time(rootSend), root)) / float64(sim.Microsecond))
	l.hop.Add((a - tr.corrected(sim.Time(hopSend), hopRank)) / float64(sim.Microsecond))
}

// EndToEnd returns summary statistics of end-to-end latency in microseconds,
// merged across receiving ranks. Call it after the run: merging while shards
// are still sampling would race.
func (tr *Tracer) EndToEnd() *stats.Online {
	var o stats.Online
	for i := range tr.lanes {
		o.Merge(&tr.lanes[i].e2e)
	}
	return &o
}

// Hop returns summary statistics of single-hop latency in microseconds,
// merged across receiving ranks (same post-run caveat as EndToEnd).
func (tr *Tracer) Hop() *stats.Online {
	var o stats.Online
	for i := range tr.lanes {
		o.Merge(&tr.lanes[i].hop)
	}
	return &o
}
