package bench

import (
	"strings"
	"testing"

	"amtlci/internal/core/stack"
	"amtlci/internal/netpipe"
	"amtlci/internal/stats"
)

// quick is the cheap measurement protocol for unit tests.
var quick = stats.Methodology{Runs: 2, Discard: 1}

func TestWorkersForMatchesPaper(t *testing.T) {
	if WorkersFor(stack.MPI, 1) != 128 || WorkersFor(stack.LCI, 1) != 128 {
		t.Fatal("single-node runs use all 128 cores (§6.1.2)")
	}
	if WorkersFor(stack.MPI, 16) != 127 {
		t.Fatal("MPI multi-node runs use 127 workers")
	}
	if WorkersFor(stack.LCI, 16) != 126 {
		t.Fatal("LCI multi-node runs use 126 workers (comm + progress threads)")
	}
}

func TestPingPongSizesSpanPaperRange(t *testing.T) {
	sizes := PingPongSizes()
	if sizes[0] != 8<<10 || sizes[len(sizes)-1] != 8<<20 {
		t.Fatalf("sweep %v must span 8 KiB..8 MiB", sizes)
	}
}

// TestFig2aAnchors pins the calibration against the paper's reported
// numbers (§6.2): MPI 62.5 Gbit/s at 128 KiB and 45.2 at 90.5 KiB; LCI 64.1
// at 45.25 KiB and 43.5 at 32 KiB. The simulator is expected to land within
// ~25% of each anchor; a regression outside that window means the cost model
// drifted.
func TestFig2aAnchors(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration anchors are slow")
	}
	check := func(b stack.Backend, size int64, want float64) {
		o := DefaultPingPongOpts(b, size)
		o.Runs = quick
		o.Iters = 6
		got := PingPong(o).Gbps
		if got < want*0.75 || got > want*1.25 {
			t.Errorf("%v @%s = %.1f Gbit/s, want %.1f±25%%", b, Bytes(size), got, want)
		}
	}
	check(stack.MPI, 131072, 62.5)
	check(stack.MPI, 92681, 45.2)
	check(stack.LCI, 46340, 64.1)
	check(stack.LCI, 32768, 43.5)
}

func TestPingPongLCIBeatsMPIAtFineGranularity(t *testing.T) {
	for _, size := range []int64{16 << 10, 64 << 10} {
		var got [2]float64
		for i, b := range []stack.Backend{stack.LCI, stack.MPI} {
			o := DefaultPingPongOpts(b, size)
			o.Runs = quick
			o.Iters = 4
			got[i] = PingPong(o).Gbps
		}
		if got[0] <= got[1] {
			t.Fatalf("@%s: LCI %.1f <= MPI %.1f", Bytes(size), got[0], got[1])
		}
	}
}

func TestPingPongBothNearPeakAtCoarseGranularity(t *testing.T) {
	for _, b := range stack.Backends {
		o := DefaultPingPongOpts(b, 2<<20)
		o.Runs = quick
		o.Iters = 4
		if bw := PingPong(o).Gbps; bw < 80 {
			t.Fatalf("%v at 2 MiB = %.1f Gbit/s, want near peak", b, bw)
		}
	}
}

func TestPingPongNetPIPEBaselineAbovePaRSECAtSmallSizes(t *testing.T) {
	// NetPIPE has no runtime overhead, so it upper-bounds both backends at
	// small fragments (visible in Fig 2a).
	size := int64(16 << 10)
	np := netpipe.Bandwidth(netpipe.DefaultConfig(), size)
	o := DefaultPingPongOpts(stack.LCI, size)
	o.Runs = quick
	o.Iters = 4
	if lci := PingPong(o).Gbps; lci >= np {
		t.Fatalf("LCI %.1f >= NetPIPE %.1f at 16 KiB", lci, np)
	}
}

func TestTwoStreamsExceedOneStreamAtFineGranularity(t *testing.T) {
	// Fig 2b: with two streams and plenty of fragments, both directions
	// carry data concurrently and aggregate bandwidth exceeds one stream's.
	one := DefaultPingPongOpts(stack.LCI, 512<<10)
	one.Runs = quick
	one.Iters = 4
	two := one
	two.Streams = 2
	bw1 := PingPong(one).Gbps
	bw2 := PingPong(two).Gbps
	if bw2 <= bw1*1.3 {
		t.Fatalf("two streams %.1f not well above one stream %.1f", bw2, bw1)
	}
}

func TestTwoStreamNoSyncAtLeastAsGoodAsSynced(t *testing.T) {
	// Fig 2b: removing inter-iteration synchronization can only help, and
	// bidirectional traffic approaches the 200 Gbit/s duplex peak. (The
	// paper's large-fragment queueing collapse — streams overtaking each
	// other until both travel in one direction at a time — is an emergent
	// race of the real system that the deterministic simulator does not
	// reproduce; see EXPERIMENTS.md.)
	synced := DefaultPingPongOpts(stack.LCI, 4<<20)
	synced.Streams = 2
	synced.Runs = quick
	synced.Iters = 4
	nosync := synced
	nosync.Sync = false
	a := PingPong(synced).Gbps
	b := PingPong(nosync).Gbps
	if b < a*0.98 {
		t.Fatalf("no-sync %.1f below synced %.1f", b, a)
	}
	if b < 160 {
		t.Fatalf("bidirectional no-sync %.1f well below duplex peak", b)
	}
}

func TestOverlapModelsBracketMeasurement(t *testing.T) {
	o := DefaultOverlapOpts(stack.LCI, 1<<20)
	o.Runs = quick
	r := Overlap(o)
	if r.GFLOPS <= 0 {
		t.Fatal("no throughput measured")
	}
	if r.Roofline < r.NoOverlap {
		t.Fatal("roofline below no-overlap model")
	}
	if r.GFLOPS > r.Roofline*1.1 {
		t.Fatalf("measured %.0f exceeds roofline %.0f", r.GFLOPS, r.Roofline)
	}
}

func TestOverlapLCIAdvantageGrowsAsTasksShrink(t *testing.T) {
	// Fig 3: at small fragments the MPI backend "struggles to move the
	// data fast enough" while LCI keeps pace.
	ratio := func(size int64) float64 {
		var v [2]float64
		for i, b := range []stack.Backend{stack.LCI, stack.MPI} {
			o := DefaultOverlapOpts(b, size)
			o.Runs = quick
			v[i] = Overlap(o).GFLOPS
		}
		return v[0] / v[1]
	}
	coarse := ratio(2 << 20)
	fine := ratio(64 << 10)
	if fine <= coarse {
		t.Fatalf("LCI/MPI ratio did not grow as tasks shrank: coarse %.2f fine %.2f", coarse, fine)
	}
	if fine < 1.5 {
		t.Fatalf("LCI/MPI ratio at 64 KiB = %.2f, want >= 1.5", fine)
	}
}

func TestHiCMASmallConfigCompletes(t *testing.T) {
	o := DefaultHiCMAOpts(stack.LCI, 1200, 4)
	o.N = 36000
	o.Runs = quick
	r := HiCMA(o)
	if r.TimeToSolution <= 0 || r.Tasks <= 0 {
		t.Fatalf("bad result %+v", r)
	}
	if r.E2ELatencyMS <= 0 {
		t.Fatal("no latency samples")
	}
}

func TestHiCMAWithClockSync(t *testing.T) {
	o := DefaultHiCMAOpts(stack.LCI, 1800, 2)
	o.N = 18000
	o.Runs = quick
	o.SyncClocks = true
	r := HiCMA(o)
	if r.E2ELatencyMS < 0 || r.E2ELatencyMS > 1000 {
		t.Fatalf("corrected latency %.2fms implausible", r.E2ELatencyMS)
	}
}

func TestBestTileArgmin(t *testing.T) {
	rs := []HiCMAResult{{NB: 1, TimeToSolution: 5}, {NB: 2, TimeToSolution: 3}, {NB: 3, TimeToSolution: 9}}
	if BestTile(rs).NB != 2 {
		t.Fatal("BestTile picked the wrong row")
	}
}

func TestScaledProblem(t *testing.T) {
	n, tiles := ScaledProblem(1.0, PaperTileSizes)
	if n != 360000 || len(tiles) != len(PaperTileSizes) {
		t.Fatalf("full scale wrong: n=%d tiles=%v", n, tiles)
	}
	n, tiles = ScaledProblem(0.2, PaperTileSizes)
	if n%3600 != 0 || len(tiles) == 0 {
		t.Fatalf("scaled problem n=%d tiles=%v", n, tiles)
	}
	for _, nb := range tiles {
		if n%nb != 0 {
			t.Fatalf("tile %d does not divide %d", nb, n)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "granularity", "LCI", "Open MPI")
	tb.AddFloats("8 KiB", "%.1f", 12.3, 4.56)
	var sb strings.Builder
	tb.Write(&sb)
	out := sb.String()
	for _, want := range []string{"Fig X", "granularity", "12.3", "4.6"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	var md strings.Builder
	tb.Markdown(&md)
	if !strings.Contains(md.String(), "| 8 KiB | 12.3 | 4.6 |") {
		t.Fatalf("markdown:\n%s", md.String())
	}
}

func TestBytesFormatting(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0 B"},
		{64, "64 B"},
		{1023, "1023 B"},
		{1 << 10, "1 KiB"},
		{8 << 10, "8 KiB"},
		{92681, "90.51 KiB"},
		{1<<20 - 1, "1024.00 KiB"},
		{1 << 20, "1 MiB"},
		{1<<20 + 1<<19, "1.50 MiB"}, // fractional MiB stays in MiB, not 1536 KiB
		{1<<20 + 1, "1.00 MiB"},
		{3 << 20, "3 MiB"},
		{256 << 20, "256 MiB"},
		{1 << 30, "1024 MiB"},
	}
	for _, c := range cases {
		if got := Bytes(c.n); got != c.want {
			t.Errorf("Bytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}
