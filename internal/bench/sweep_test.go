package bench

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"amtlci/internal/core/stack"
	"amtlci/internal/stats"
)

func TestSweepPreservesPointOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 100} {
		got := Sweep(workers, 37, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
	if n := len(Sweep(4, 0, func(i int) int { return i })); n != 0 {
		t.Fatalf("empty sweep returned %d results", n)
	}
}

func TestSweepWorkersClamp(t *testing.T) {
	ncpu := runtime.NumCPU()
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	cases := []struct{ j, n, want int }{
		{1, 10, 1},
		{8, 10, 8},
		{8, 3, 3},            // capped at n
		{0, 2, min(ncpu, 2)}, // NumCPU, capped at n
		{-1, 1, 1},           // NumCPU, capped at n=1
		{4, 0, 1},            // floored at 1 so pools stay usable
		{16, 16, 16},
	}
	for _, c := range cases {
		if got := SweepWorkers(c.j, c.n); got != c.want {
			t.Errorf("SweepWorkers(%d, %d) = %d, want %d", c.j, c.n, got, c.want)
		}
	}
	if got := SweepWorkers(0, 1<<30); got < 1 {
		t.Errorf("SweepWorkers(0, big) = %d, want >= 1", got)
	}
}

// TestSweepCtxCancellation pins the cancellation contract: after cancel,
// SweepCtx stops dispatching, in-flight points drain, and the returned slice
// is a gap-free completed prefix. Run under -race in verify, this also
// exercises the dispatch/cancel interleaving.
func TestSweepCtxCancellation(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		const n = 64
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		out, err := SweepCtx(ctx, workers, n, func(i int) int {
			if ran.Add(1) == int64(workers) {
				cancel() // every worker is mid-point; nothing more may dispatch
			}
			time.Sleep(time.Millisecond)
			return i * i
		})
		cancel()
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if len(out) >= n {
			t.Fatalf("workers=%d: cancellation did not stop dispatch (%d/%d points)", workers, len(out), n)
		}
		// The prefix must be gap-free and in point order.
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
		// Every dispatched point completed; nothing beyond the prefix ran
		// except points claimed concurrently with the cancel.
		if got := ran.Load(); got < int64(len(out)) {
			t.Fatalf("workers=%d: %d points ran but prefix has %d", workers, got, len(out))
		}
	}
}

// TestSweepCtxCompletes pins the wrapper equivalence: with an uncancelled
// context SweepCtx returns the full sweep and a nil error, exactly as Sweep.
func TestSweepCtxCompletes(t *testing.T) {
	out, err := SweepCtx(context.Background(), 7, 23, func(i int) int { return i + 1 })
	if err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	if len(out) != 23 {
		t.Fatalf("len = %d, want 23", len(out))
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i+1)
		}
	}
	// A context cancelled before the first dispatch yields an empty prefix.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err = SweepCtx(ctx, 4, 9, func(i int) int { t.Error("point ran after cancel"); return 0 })
	if err == nil || len(out) != 0 {
		t.Fatalf("pre-cancelled sweep: len=%d err=%v, want 0 and context.Canceled", len(out), err)
	}
}

// TestSweepDeterministicAcrossWorkerCounts is the -j determinism guarantee:
// a real HiCMA tile sweep rendered as CSV must be byte-identical at -j 1 and
// -j 8. Every experiment point builds its own engine and seeded RNGs, so
// worker scheduling must not be able to leak into results; this test (run
// under -race in verify) is what keeps that property from regressing.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	tiles := []int{1200, 2400, 4800}
	runs := stats.Methodology{Runs: 1, Discard: 0}
	render := func(workers int) string {
		res := TileScaling(stack.LCI, 9600, 2, false, tiles, runs, workers, 1)
		tbl := NewTable("tile sweep", "tile", "tts", "e2e_ms", "tasks")
		for _, r := range res {
			tbl.AddRow(fmt.Sprint(r.NB), fmt.Sprintf("%.6f", r.TimeToSolution),
				fmt.Sprintf("%.6f", r.E2ELatencyMS), fmt.Sprint(r.Tasks))
		}
		var sb strings.Builder
		tbl.CSV(&sb)
		return sb.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("CSV differs between -j 1 and -j 8:\n--- j=1 ---\n%s--- j=8 ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "1200") {
		t.Fatalf("sweep produced no rows:\n%s", serial)
	}
}

// TestStrongScalingParallelMatchesSerial pins the flattened-grid reassembly
// in StrongScaling: best-tile selection per node count must not depend on
// worker count.
func TestStrongScalingParallelMatchesSerial(t *testing.T) {
	tiles := []int{1200, 2400}
	runs := stats.Methodology{Runs: 1, Discard: 0}
	serial := StrongScaling(9600, []int{2, 4}, tiles, runs, 1, 1)
	parallel := StrongScaling(9600, []int{2, 4}, tiles, runs, 8, 1)
	if len(serial) != len(parallel) {
		t.Fatalf("point counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("point %d differs:\nserial:   %+v\nparallel: %+v", i, serial[i], parallel[i])
		}
	}
}
