package bench

import (
	"fmt"
	"strings"
	"testing"

	"amtlci/internal/core/stack"
	"amtlci/internal/stats"
)

func TestSweepPreservesPointOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 100} {
		got := Sweep(workers, 37, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
	if n := len(Sweep(4, 0, func(i int) int { return i })); n != 0 {
		t.Fatalf("empty sweep returned %d results", n)
	}
}

// TestSweepDeterministicAcrossWorkerCounts is the -j determinism guarantee:
// a real HiCMA tile sweep rendered as CSV must be byte-identical at -j 1 and
// -j 8. Every experiment point builds its own engine and seeded RNGs, so
// worker scheduling must not be able to leak into results; this test (run
// under -race in verify) is what keeps that property from regressing.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	tiles := []int{1200, 2400, 4800}
	runs := stats.Methodology{Runs: 1, Discard: 0}
	render := func(workers int) string {
		res := TileScaling(stack.LCI, 9600, 2, false, tiles, runs, workers)
		tbl := NewTable("tile sweep", "tile", "tts", "e2e_ms", "tasks")
		for _, r := range res {
			tbl.AddRow(fmt.Sprint(r.NB), fmt.Sprintf("%.6f", r.TimeToSolution),
				fmt.Sprintf("%.6f", r.E2ELatencyMS), fmt.Sprint(r.Tasks))
		}
		var sb strings.Builder
		tbl.CSV(&sb)
		return sb.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("CSV differs between -j 1 and -j 8:\n--- j=1 ---\n%s--- j=8 ---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "1200") {
		t.Fatalf("sweep produced no rows:\n%s", serial)
	}
}

// TestStrongScalingParallelMatchesSerial pins the flattened-grid reassembly
// in StrongScaling: best-tile selection per node count must not depend on
// worker count.
func TestStrongScalingParallelMatchesSerial(t *testing.T) {
	tiles := []int{1200, 2400}
	runs := stats.Methodology{Runs: 1, Discard: 0}
	serial := StrongScaling(9600, []int{2, 4}, tiles, runs, 1)
	parallel := StrongScaling(9600, []int{2, 4}, tiles, runs, 8)
	if len(serial) != len(parallel) {
		t.Fatalf("point counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("point %d differs:\nserial:   %+v\nparallel: %+v", i, serial[i], parallel[i])
		}
	}
}
