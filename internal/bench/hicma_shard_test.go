package bench

import (
	"fmt"
	"strings"
	"testing"

	"amtlci/internal/core/stack"
	"amtlci/internal/fabric"
	"amtlci/internal/sim"
	"amtlci/internal/stats"
)

// hicmaAt runs one small HiCMA point on the given shard count.
func hicmaAt(b stack.Backend, shards int) HiCMAResult {
	o := DefaultHiCMAOpts(b, 1200, 16)
	o.N = 19200
	o.Runs = stats.Methodology{Runs: 1, Discard: 0}
	o.Shards = shards
	return HiCMA(o)
}

// TestHiCMAShardedMatchesSerial is the stack-level differential proof: the
// full deployment — fabric, backend runtime, communication engines, parsec —
// simulated on 2, 4, and 8 shards must reproduce the serial run bit for bit
// (makespan, latency means, task counts), for both backends. Per-rank event
// streams are identical by the conservative-window argument (DESIGN §5.12);
// this pins that the whole stack actually honors the shard-safety rules the
// argument depends on.
func TestHiCMAShardedMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second differential")
	}
	for _, b := range stack.Backends {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			serial := hicmaAt(b, 1)
			for _, shards := range []int{2, 3, 4, 8} {
				if got := hicmaAt(b, shards); got != serial {
					t.Errorf("shards=%d diverges from serial:\nserial:  %+v\nsharded: %+v",
						shards, serial, got)
				}
			}
		})
	}
}

// TestHiCMAShardTuningMatrixMatchesSerial exercises each sharded-protocol
// fast path in isolation through the whole stack: the all-off baseline (the
// v1 fixed-window protocol), then pairwise lookahead, idle-shard elision,
// and window coalescing individually, each bit-identical to the serial run
// on both backends, with and without work stealing.
func TestHiCMAShardTuningMatrixMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second differential")
	}
	tunings := []struct {
		name string
		tn   sim.Tuning
	}{
		{"v1-baseline", sim.Tuning{}},
		{"pairwise-only", sim.Tuning{PairwiseLookahead: true}},
		{"elide-only", sim.Tuning{ElideIdleShards: true}},
		{"coalesce-only", sim.Tuning{CoalesceWindows: true}},
	}
	run := func(b stack.Backend, steal bool, shards int, tn *sim.Tuning) HiCMAResult {
		o := DefaultHiCMAOpts(b, 1200, 8)
		o.N = 9600
		o.Runs = stats.Methodology{Runs: 1, Discard: 0}
		o.Steal = steal
		o.Shards = shards
		o.ShardTuning = tn
		return HiCMA(o)
	}
	for _, b := range stack.Backends {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			for _, steal := range []bool{false, true} {
				serial := run(b, steal, 1, nil)
				for _, tc := range tunings {
					tn := tc.tn
					if got := run(b, steal, 4, &tn); got != serial {
						t.Errorf("steal=%v %s diverges from serial:\nserial:  %+v\nsharded: %+v",
							steal, tc.name, serial, got)
					}
				}
			}
		})
	}
}

// TestTileScalingCSVIdenticalSharded pins the experiment pipeline end to
// end: the rendered sweep CSV — what cmd/hicma and the simd cache
// ultimately serve — must be byte-identical whether the points simulate
// serially or on 4 shards.
func TestTileScalingCSVIdenticalSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second differential")
	}
	render := func(shards int) string {
		res := TileScaling(stack.LCI, 9600, 4, false, []int{1200, 2400}, stats.Methodology{Runs: 1}, 1, shards)
		tbl := NewTable("tile sweep", "tile", "tts", "e2e_ms", "hop_ms", "tasks")
		for _, r := range res {
			tbl.AddRow(fmt.Sprint(r.NB), fmt.Sprintf("%.9f", r.TimeToSolution),
				fmt.Sprintf("%.9f", r.E2ELatencyMS), fmt.Sprintf("%.9f", r.HopLatencyMS),
				fmt.Sprint(r.Tasks))
		}
		var sb strings.Builder
		tbl.CSV(&sb)
		return sb.String()
	}
	serial := render(1)
	sharded := render(4)
	if serial != sharded {
		t.Fatalf("CSV differs between shards=1 and shards=4:\n--- serial ---\n%s--- sharded ---\n%s",
			serial, sharded)
	}
	if !strings.Contains(serial, "1200") {
		t.Fatalf("sweep produced no rows:\n%s", serial)
	}
}

// TestHiCMAShardedStealMatchesSerial repeats the differential with
// inter-rank work stealing on: the steal protocol (probes, grants, task +
// tile transfer) is the most timing-entangled cross-rank machinery in the
// runtime, so it gets its own sharded × serial matrix under -race.
func TestHiCMAShardedStealMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second differential")
	}
	run := func(b stack.Backend, shards int) HiCMAResult {
		o := DefaultHiCMAOpts(b, 1200, 8)
		o.N = 9600
		o.Runs = stats.Methodology{Runs: 1, Discard: 0}
		o.Steal = true
		o.Shards = shards
		return HiCMA(o)
	}
	for _, b := range stack.Backends {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			serial := run(b, 1)
			for _, shards := range []int{2, 4} {
				if got := run(b, shards); got != serial {
					t.Errorf("steal shards=%d diverges from serial:\nserial:  %+v\nsharded: %+v",
						shards, serial, got)
				}
			}
		})
	}
}

// TestShardedCrashConfigRejected pins the serial-only gate for crash
// scripts: scheduling a NodeCrash on a sharded domain must fail loudly at
// build time, not corrupt a run.
func TestShardedCrashConfigRejected(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Build accepted a crash schedule on a sharded domain")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "single-shard domain") {
			t.Fatalf("panic %q does not name the single-shard requirement", msg)
		}
	}()
	o := stack.DefaultOptions(stack.LCI, 8)
	o.Shards = 4
	o.Faults = &fabric.FaultConfig{
		Crashes: []fabric.NodeCrash{{Rank: 1, At: sim.Time(50 * sim.Microsecond)}},
	}
	stack.Build(o)
}
