package bench

import (
	"fmt"
	"strconv"

	"amtlci/internal/metrics"
)

// MetricsTable renders every instrument in reg as one table row, sorted by
// layer, name, rank. The layout is deliberately flat — one row per
// instrument with kind-specific columns left empty — so the CSV form loads
// straight into plotting scripts without reshaping.
func MetricsTable(reg *metrics.Registry, title string) *Table {
	t := NewTable(title, "layer", "name", "rank", "kind", "value", "max", "mean", "p50", "p99")
	for _, s := range reg.Snapshots() {
		rank := strconv.Itoa(s.Desc.Rank)
		if s.Desc.Rank == metrics.StackRank {
			rank = "stack"
		}
		num := func(v float64) string {
			if v == 0 {
				return "0"
			}
			return fmt.Sprintf("%g", v)
		}
		max, mean, p50, p99 := "", "", "", ""
		switch s.Kind {
		case metrics.KindGauge:
			max = num(s.Max)
		case metrics.KindHistogram:
			mean = num(s.Mean)
			p50 = num(s.P50)
			p99 = num(s.P99)
		}
		t.AddRow(s.Desc.Layer, s.Desc.Name, rank, s.Kind.String(),
			num(s.Value), max, mean, p50, p99)
	}
	return t
}
