// Package bench contains the experiment harnesses that regenerate every
// table and figure of the paper's evaluation (Section 6): the PaRSEC
// ping-pong bandwidth microbenchmark (Figures 2a/2b), the
// computation/communication overlap benchmark (Figure 3), and the HiCMA TLR
// Cholesky experiments (Figures 4a/4b/5a/5b and Table 2), plus the analytic
// Roofline / No-Overlap models and the NetPIPE baseline hook-up.
package bench

import (
	"fmt"

	"amtlci/internal/core/stack"
	"amtlci/internal/parsec"
	"amtlci/internal/sim"
	"amtlci/internal/stats"
)

// WorkersFor returns the paper's worker-thread count for a 128-core node
// (§6.1.2): all 128 cores on a single node; on multiple nodes one core goes
// to the communication thread, and the LCI backend dedicates another to the
// progress thread.
func WorkersFor(b stack.Backend, ranks int) int {
	if ranks == 1 {
		return 128
	}
	if b == stack.LCI {
		return 126
	}
	return 127
}

// PingPongOpts parameterizes the §6.2 bandwidth benchmark.
type PingPongOpts struct {
	Backend stack.Backend
	// FragSize is the fragment granularity N; the window size is
	// TotalPerIter/FragSize so each iteration moves a constant volume
	// (256 MiB in the paper).
	FragSize     int64
	TotalPerIter int64
	// Streams is the number of independent ping-pong streams (1 for Fig 2a,
	// 2 for Fig 2b); stream c starts on rank c%2.
	Streams int
	// Iters is the number of ping-pong iterations per execution.
	Iters int
	// Sync inserts the SYNC(t) serialization task between iterations
	// (Fig 2b's "no sync" variant disables it).
	Sync bool
	// Runs is the measurement protocol (18 runs discard 3 in the paper).
	Runs stats.Methodology
	// Workers per rank; zero selects the paper's value.
	Workers int
	Seed    uint64
}

// DefaultPingPongOpts mirrors the paper's setup for one fragment size.
func DefaultPingPongOpts(b stack.Backend, fragSize int64) PingPongOpts {
	return PingPongOpts{
		Backend:      b,
		FragSize:     fragSize,
		TotalPerIter: 256 << 20,
		Streams:      1,
		Iters:        4,
		Sync:         true,
		Runs:         stats.Microbenchmark,
		Seed:         1,
	}
}

// pingpongPool builds the §6.2 task graph: PINGPONG(t, f, c) operates on
// fragment f of stream c at iteration t, executing on rank (t+c)%2 so the
// data crosses the network every iteration; SYNC(t) serializes iterations
// through a control flow.
func pingpongPool(o PingPongOpts, computeCost func(int64) sim.Duration) *parsec.GraphPool {
	window := int(o.TotalPerIter / o.FragSize)
	if window < 1 {
		window = 1
	}
	g := parsec.NewGraphPool("pingpong", 2, false)
	ppID := func(t, c, f int) int64 {
		return 2 * int64((t*o.Streams+c)*window+f)
	}
	syncID := func(t int) int64 { return 2*int64(t)*int64(o.Streams*window) + 1 }

	cost := sim.Duration(0)
	if computeCost != nil {
		cost = computeCost(o.FragSize)
	}
	for t := 0; t < o.Iters; t++ {
		for c := 0; c < o.Streams; c++ {
			rank := (t + c) % 2
			for f := 0; f < window; f++ {
				// Flow 0: the fragment; flow 1: control to SYNC.
				id := g.AddTask(ppID(t, c, f), rank, cost, int64(o.Iters-t), o.FragSize, 0)
				if t > 0 {
					g.Link(parsec.TaskID{Index: ppID(t-1, c, f)}, 0, id)
					if o.Sync {
						g.Link(parsec.TaskID{Index: syncID(t - 1)}, 0, id)
					}
				}
			}
		}
		if o.Sync && t < o.Iters-1 {
			// SYNC(t) gathers a control dep from every PINGPONG(t,·,·).
			sid := g.AddTask(syncID(t), 0, 0, 1<<30, 0)
			for c := 0; c < o.Streams; c++ {
				for f := 0; f < window; f++ {
					g.Link(parsec.TaskID{Index: ppID(t, c, f)}, 1, sid)
				}
			}
		}
	}
	return g
}

// PingPongResult is one point of Figure 2.
type PingPongResult struct {
	FragSize int64
	Gbps     float64
}

// PingPong measures aggregate ping-pong bandwidth in Gbit/s for one
// configuration, averaged per the methodology.
func PingPong(o PingPongOpts) PingPongResult {
	if o.Workers == 0 {
		o.Workers = WorkersFor(o.Backend, 2)
	}
	gbps := o.Runs.Collect(func(run int) float64 {
		return pingpongRun(o, uint64(run))
	})
	return PingPongResult{FragSize: o.FragSize, Gbps: gbps}
}

func pingpongRun(o PingPongOpts, run uint64) float64 {
	so := stack.DefaultOptions(o.Backend, 2)
	so.Seed = o.Seed + run*0x9E37
	s := stack.Build(so)
	cfg := parsec.DefaultConfig(o.Workers)
	cfg.Seed = o.Seed + run
	// Deep fetch pipelines within an iteration, but honor the SYNC
	// serialization between iterations (§4.1 deferral, strict reading).
	cfg.FetchCap = 512
	cfg.FetchLazy = o.Sync
	cfg.Metrics = s.Metrics
	rt := parsec.New(s.Eng, s.Engines, pingpongPool(o, nil), cfg)
	d, err := rt.Run()
	if err != nil {
		panic(fmt.Sprintf("bench: pingpong %v", err))
	}
	// Fragments cross the wire at every iteration after the first.
	window := o.TotalPerIter / o.FragSize
	if window < 1 {
		window = 1
	}
	bytes := float64(o.Iters-1) * float64(o.Streams) * float64(window) * float64(o.FragSize)
	return bytes * 8 / d.Seconds() / 1e9
}

// PingPongSizes is the granularity sweep of Figure 2: 8 KiB to 8 MiB.
func PingPongSizes() []int64 {
	var out []int64
	for s := int64(8 << 10); s <= 8<<20; s *= 2 {
		out = append(out, s)
	}
	return out
}

// PingpongPoolForDebug exposes the benchmark graph for calibration tools.
func PingpongPoolForDebug(o PingPongOpts) *parsec.GraphPool { return pingpongPool(o, nil) }
