package bench

import (
	"fmt"

	"amtlci/internal/buf"
	"amtlci/internal/coll"
	"amtlci/internal/core/stack"
	"amtlci/internal/sim"
)

// CollOpts parameterizes one collective measurement: one (backend, rank
// count, operation, algorithm, payload) point of the cmd/collbench sweep.
type CollOpts struct {
	Backend stack.Backend
	Kind    coll.Kind
	// Algo may be coll.Auto to measure what the selector picks.
	Algo  coll.Algorithm
	Ranks int
	// Size follows each operation's selector convention: the full buffer
	// for Bcast/Reduce/Allreduce, one rank's block for Allgather, ignored
	// for Barrier.
	Size int64
	// Iters back-to-back operations are timed together (per-rank chaining,
	// as an application loop would issue them); the mean is reported.
	Iters int
	Tune  coll.Tune
	Seed  uint64
}

// CollTuneFor returns the backend-calibrated selector thresholds, measured
// with `collbench -csv` over ranks {4,16,64} and sizes 256 B – 4 MiB. The
// MPI backend's higher per-message cost (global-array polling, handshake on
// the comm thread) pushes every bandwidth-algorithm crossover up and makes
// Bruck — fewest messages — unbeatable for allgather at 64 ranks.
func CollTuneFor(b stack.Backend) coll.Tune {
	t := coll.DefaultTune() // the LCI calibration
	if b == stack.MPI {
		t.BcastChainMin = 2 << 20
		t.BcastChainMinRanks = 8
		t.ReduceChainMin = 4 << 20
		t.ReduceChainMinRanks = 8
		t.AllgatherRingMin = 2 << 20
		t.AllgatherRingMaxRanks = 32
	}
	return t
}

// DefaultCollOpts returns the paper-calibrated configuration for one point.
func DefaultCollOpts(b stack.Backend, k coll.Kind, ranks int, size int64) CollOpts {
	return CollOpts{
		Backend: b,
		Kind:    k,
		Algo:    coll.Auto,
		Ranks:   ranks,
		Size:    size,
		Iters:   3,
		Tune:    CollTuneFor(b),
		Seed:    1,
	}
}

// CollResult is one measured point.
type CollResult struct {
	// Time is the mean virtual completion time of one operation (entry of
	// the first rank to completion on the last).
	Time sim.Duration
	// Picked is the algorithm that actually ran (resolves Auto).
	Picked coll.Algorithm
}

// Collective measures one configuration in virtual time. Payloads are
// virtual buffers — collbench sweeps to paper-scale sizes where real bytes
// would be pointless — and the simulation is deterministic for a fixed
// Seed, so repeated runs emit identical CSVs.
func Collective(o CollOpts) CollResult {
	if o.Iters <= 0 {
		o.Iters = 1
	}
	picked := o.Algo
	if picked == coll.Auto {
		picked = o.Tune.Pick(o.Kind, o.Size, o.Ranks)
	}

	so := stack.DefaultOptions(o.Backend, o.Ranks)
	if o.Seed != 0 {
		so.Seed = o.Seed
	}
	s := stack.Build(so)
	comms := make([]*coll.Communicator, o.Ranks)
	for r := 0; r < o.Ranks; r++ {
		comms[r] = coll.New(s.Engines[r], coll.DefaultTagBase, o.Tune)
	}

	issue := func(c *coll.Communicator, done func()) {
		switch o.Kind {
		case coll.OpBcast:
			c.Bcast(buf.Virtual(o.Size), 0, o.Algo, done)
		case coll.OpReduce:
			var dst buf.Buf
			if c.Rank() == 0 {
				dst = buf.Virtual(o.Size)
			}
			c.Reduce(dst, buf.Virtual(o.Size), coll.Sum, 0, o.Algo, done)
		case coll.OpAllreduce:
			c.Allreduce(buf.Virtual(o.Size), buf.Virtual(o.Size), coll.Sum, o.Algo, done)
		case coll.OpAllgather:
			c.Allgather(buf.Virtual(o.Size*int64(o.Ranks)), buf.Virtual(o.Size), o.Algo, done)
		case coll.OpBarrier:
			c.Barrier(o.Algo, done)
		default:
			panic(fmt.Sprintf("bench: unknown collective kind %v", o.Kind))
		}
	}

	// Each rank chains its iterations, as an application loop would; the
	// sequence numbers keep successive operations matched while adjacent
	// iterations overlap naturally across ranks.
	left := o.Ranks
	for r := 0; r < o.Ranks; r++ {
		c := comms[r]
		iter := 0
		var next func()
		next = func() {
			if iter == o.Iters {
				left--
				return
			}
			iter++
			issue(c, next)
		}
		next()
	}
	end := s.Eng.Run()
	if left != 0 {
		panic(fmt.Sprintf("bench: collective %v/%v n=%d size=%d: %d ranks unfinished",
			o.Kind, picked, o.Ranks, o.Size, left))
	}
	return CollResult{Time: sim.Duration(end) / sim.Duration(o.Iters), Picked: picked}
}

// CollSizes is the payload sweep of cmd/collbench: 256 B (eager) to 8 MiB
// (64 segments), decades of 4x.
func CollSizes() []int64 {
	var out []int64
	for s := int64(256); s <= 8<<20; s *= 4 {
		out = append(out, s)
	}
	return out
}

// CollKinds lists the swept operations in report order.
func CollKinds() []coll.Kind {
	return []coll.Kind{coll.OpBcast, coll.OpReduce, coll.OpAllreduce, coll.OpAllgather, coll.OpBarrier}
}
