package bench

import (
	"fmt"
	"math"

	"amtlci/internal/clocksync"
	"amtlci/internal/core/stack"
	"amtlci/internal/hicma"
	"amtlci/internal/parsec"
	"amtlci/internal/sim"
	"amtlci/internal/stats"
)

// PaperTileSizes is the tile-size sweep of Figure 4 (and the candidate set
// for Table 2), from the paper's x-axis.
var PaperTileSizes = []int{1200, 1500, 1800, 2400, 3000, 3600, 4500, 4800, 6000}

// PaperNodeCounts is the strong-scaling sweep of Figure 5 / Table 2.
var PaperNodeCounts = []int{1, 2, 4, 8, 16, 32}

// LargeNodeCounts extends the strong-scaling sweep past the paper's 32
// nodes, into the regime where the serial simulator itself becomes the
// bottleneck and a sharded domain (HiCMAOpts.Shards) pays off.
var LargeNodeCounts = []int{256, 512, 1024}

// HiCMAOpts parameterizes one HiCMA TLR Cholesky measurement (§6.4).
type HiCMAOpts struct {
	Backend stack.Backend
	N       int // matrix dimension (360,000 in the paper)
	NB      int // tile size
	Nodes   int
	// MT enables communication multithreading for ACTIVATE messages
	// (§6.4.3).
	MT bool
	// Runs is the measurement protocol (mean of five in §6.1.3).
	Runs stats.Methodology
	// Workers per rank; zero selects the paper's value (§6.1.2).
	Workers int
	// FetchCap for the runtime's GET DATA pipeline.
	FetchCap int
	// SyncClocks runs the §6.1.3 clock-synchronization epoch over skewed
	// rank clocks before the factorization and corrects latencies with the
	// estimated offsets; otherwise clocks are perfect.
	SyncClocks bool
	// Steal enables inter-rank work stealing (idle ranks pull ready tasks
	// and their input tiles from loaded peers).
	Steal bool
	// Shards > 1 runs the simulation itself on a sharded parallel domain:
	// ranks are partitioned into Shards groups, each advanced by its own
	// goroutine under the fabric's conservative lookahead window. The
	// simulated system is identical; only wall-clock time changes (on a
	// multi-core host). Incompatible with SyncClocks, whose measurement
	// epoch needs the serial engine.
	Shards int
	// ShardTuning overrides the sharded protocol's optimization gates
	// (nil keeps them all on); the tuning-matrix differential tests use it.
	ShardTuning *sim.Tuning
	Seed        uint64
}

// DefaultHiCMAOpts mirrors the paper's configuration.
func DefaultHiCMAOpts(b stack.Backend, nb, nodes int) HiCMAOpts {
	return HiCMAOpts{
		Backend:  b,
		N:        360000,
		NB:       nb,
		Nodes:    nodes,
		Runs:     stats.HiCMA,
		FetchCap: 64,
		Seed:     3,
	}
}

// HiCMAResult is one point of Figures 4/5.
type HiCMAResult struct {
	Backend        stack.Backend
	NB             int
	Nodes          int
	MT             bool
	TimeToSolution float64 // seconds, mean over runs
	E2ELatencyMS   float64 // mean end-to-end latency, ms
	HopLatencyMS   float64 // mean single-hop latency, ms
	Tasks          int64
	AvgRank        float64
}

// HiCMA measures one configuration.
func HiCMA(o HiCMAOpts) HiCMAResult {
	if o.Workers == 0 {
		o.Workers = WorkersFor(o.Backend, o.Nodes)
	}
	if o.N%o.NB != 0 {
		panic(fmt.Sprintf("bench: N=%d not divisible by nb=%d", o.N, o.NB))
	}
	var e2e, hop, tasks float64
	var avgRank float64
	tts := o.Runs.Collect(func(run int) float64 {
		t, rt, pool := hicmaRun(o, uint64(run))
		e2e = rt.Tracer().EndToEnd().Mean() / 1000
		hop = rt.Tracer().Hop().Mean() / 1000
		tasks = float64(pool.TotalTasks())
		avgRank = pool.AvgRank()
		return t
	})
	return HiCMAResult{
		Backend: o.Backend, NB: o.NB, Nodes: o.Nodes, MT: o.MT,
		TimeToSolution: tts, E2ELatencyMS: e2e, HopLatencyMS: hop,
		Tasks: int64(tasks), AvgRank: avgRank,
	}
}

func hicmaRun(o HiCMAOpts, run uint64) (float64, *parsec.Runtime, *hicma.Pool) {
	if o.SyncClocks && o.Shards > 1 {
		panic("bench: SyncClocks requires a serial simulation (Shards <= 1)")
	}
	par := hicma.DefaultParams(o.N, o.NB)
	pool := hicma.NewVirtual(par, o.Nodes)
	so := stack.DefaultOptions(o.Backend, o.Nodes)
	so.Seed = o.Seed + run*0x51ED
	so.Shards = o.Shards
	so.ShardTuning = o.ShardTuning
	s := stack.Build(so)

	cfg := parsec.DefaultConfig(o.Workers)
	cfg.Seed = o.Seed + run
	cfg.FetchCap = o.FetchCap
	cfg.MTActivate = o.MT
	cfg.Steal = o.Steal
	cfg.Metrics = s.Metrics
	rt := parsec.New(s.Dom, s.Engines, pool, cfg)

	if o.SyncClocks {
		clocks := clocksync.MakeClocks(o.Nodes, 10*sim.Millisecond, 0, o.Seed+run)
		res := clocksync.Register(s.Eng, s.Engines, clocks, 8).Run()
		rt.SetClocks(clocks, res.Offsets)
	}

	d, err := rt.Run()
	if err != nil {
		panic(fmt.Sprintf("bench: hicma %v", err))
	}
	return d.Seconds(), rt, pool
}

// TileScaling runs the Figure 4a/4b sweep at a fixed node count for one
// backend (optionally multithreaded), over the given tile sizes. workers is
// the sweep parallelism (see Sweep); results are in tile order either way.
// Points simulate on shards simulation shards each (1 = serial).
func TileScaling(b stack.Backend, n, nodes int, mt bool, tiles []int, runs stats.Methodology, workers, shards int) []HiCMAResult {
	return Sweep(workers, len(tiles), func(i int) HiCMAResult {
		o := DefaultHiCMAOpts(b, tiles[i], nodes)
		o.N = n
		o.MT = mt
		o.Runs = runs
		o.Shards = shards
		return HiCMA(o)
	})
}

// BestTile returns the result with the lowest time-to-solution (Table 2's
// per-node-count argmin).
func BestTile(results []HiCMAResult) HiCMAResult {
	best := results[0]
	for _, r := range results[1:] {
		if r.TimeToSolution < best.TimeToSolution {
			best = r
		}
	}
	return best
}

// StrongScalingPoint is one node count of Figure 5: LCI at its best tile,
// Open MPI at LCI's best tile, and Open MPI at its own best tile.
type StrongScalingPoint struct {
	Nodes       int
	LCI         HiCMAResult // best LCI tile
	MPIAtLCI    HiCMAResult // MPI at the LCI-optimal tile
	MPIBest     HiCMAResult // MPI at its own best tile
	LCITile     int
	MPIBestTile int
}

// StrongScaling runs the Figure 5a/5b + Table 2 experiment: for each node
// count, sweep tile sizes for both backends and report the paper's three
// series. The full (node x backend x tile) grid is flattened into one sweep
// so a large -j keeps every worker busy even when a single node count has
// few tiles; per-point determinism makes the reassembled series identical
// to the serial nesting.
// Each point simulates on shards simulation shards (1 = serial); sharding
// matters most at the large node counts, where one simulated step fans out
// to hundreds of rank calendars.
func StrongScaling(n int, nodes []int, tiles []int, runs stats.Methodology, workers, shards int) []StrongScalingPoint {
	type job struct {
		b  stack.Backend
		nd int
		nb int
	}
	var jobs []job
	for _, nd := range nodes {
		for _, b := range []stack.Backend{stack.LCI, stack.MPI} {
			for _, nb := range tiles {
				jobs = append(jobs, job{b, nd, nb})
			}
		}
	}
	res := Sweep(workers, len(jobs), func(i int) HiCMAResult {
		j := jobs[i]
		o := DefaultHiCMAOpts(j.b, j.nb, j.nd)
		o.N = n
		o.Runs = runs
		o.Shards = shards
		return HiCMA(o)
	})

	var out []StrongScalingPoint
	for i := 0; i < len(jobs); i += 2 * len(tiles) {
		nd := jobs[i].nd
		lciAll := res[i : i+len(tiles)]
		mpiAll := res[i+len(tiles) : i+2*len(tiles)]
		lciBest := BestTile(lciAll)
		mpiBest := BestTile(mpiAll)
		var mpiAtLCI HiCMAResult
		for _, r := range mpiAll {
			if r.NB == lciBest.NB {
				mpiAtLCI = r
			}
		}
		out = append(out, StrongScalingPoint{
			Nodes: nd, LCI: lciBest, MPIAtLCI: mpiAtLCI, MPIBest: mpiBest,
			LCITile: lciBest.NB, MPIBestTile: mpiBest.NB,
		})
	}
	return out
}

// ScaledProblem shrinks the paper's N=360,000 problem by factor while
// keeping tile sizes meaningful: it returns the scaled N and the subset of
// tiles that still divide it. factor 1 reproduces the paper exactly.
func ScaledProblem(factor float64, tiles []int) (int, []int) {
	if factor <= 0 || factor > 1 {
		panic("bench: scale factor must be in (0, 1]")
	}
	n := int(math.Round(360000 * factor))
	// Snap to a multiple of 3600 so most paper tile sizes divide it.
	n = (n + 1800) / 3600 * 3600
	if n < 3600 {
		n = 3600
	}
	var ok []int
	for _, nb := range tiles {
		if n%nb == 0 {
			ok = append(ok, nb)
		}
	}
	return n, ok
}
