package bench

import (
	"fmt"
	"math"

	"amtlci/internal/core/stack"
	"amtlci/internal/parsec"
	"amtlci/internal/sim"
	"amtlci/internal/stats"
)

// OverlapOpts parameterizes the §6.3 computation/communication overlap
// benchmark: the ping-pong graph without SYNC, where each task executes
// sqrt(M/8) fused multiply-adds per 8-byte element (GEMM-like intensity),
// and the iteration count is scaled so the total flop count is constant
// across granularities.
type OverlapOpts struct {
	Backend      stack.Backend
	FragSize     int64
	TotalPerIter int64
	Streams      int
	// BaseIters is the iteration count at the largest fragment size
	// (8 MiB); smaller fragments run proportionally more iterations.
	BaseIters int
	// CoreGFLOPS is each worker core's FMA rate for this kernel.
	CoreGFLOPS float64
	Runs       stats.Methodology
	Workers    int
	Seed       uint64
}

// DefaultOverlapOpts mirrors the paper's configuration.
func DefaultOverlapOpts(b stack.Backend, fragSize int64) OverlapOpts {
	return OverlapOpts{
		Backend:      b,
		FragSize:     fragSize,
		TotalPerIter: 256 << 20,
		Streams:      1,
		BaseIters:    2,
		CoreGFLOPS:   40,
		Runs:         stats.Microbenchmark,
		Seed:         2,
	}
}

// taskFlops returns the flop count of one task on an M-byte fragment:
// sqrt(M/8) FMA (2 flops each) per 8-byte element.
func taskFlops(m int64) float64 {
	elems := float64(m / 8)
	return 2 * elems * math.Sqrt(elems)
}

// iters returns the iteration count preserving total flops relative to
// BaseIters at 8 MiB: per-iteration flops scale with sqrt(M), so iterations
// scale with sqrt(8MiB/M).
func (o OverlapOpts) iters() int {
	n := float64(o.BaseIters) * math.Sqrt(float64(8<<20)/float64(o.FragSize))
	if n < 2 {
		return 2
	}
	return int(math.Round(n))
}

// totalFlops is the whole execution's flop count.
func (o OverlapOpts) totalFlops() float64 {
	window := float64(o.TotalPerIter / o.FragSize)
	return float64(o.iters()) * float64(o.Streams) * window * taskFlops(o.FragSize)
}

// OverlapResult is one point of Figure 3, in GFLOP/s, with the two analytic
// bounds.
type OverlapResult struct {
	FragSize  int64
	GFLOPS    float64
	Roofline  float64
	NoOverlap float64
}

// Overlap measures delivered GFLOP/s for one configuration and computes the
// Roofline (communication fully overlapped) and No-Overlap (communication
// fully serialized) models of Figure 3.
func Overlap(o OverlapOpts) OverlapResult {
	if o.Workers == 0 {
		o.Workers = WorkersFor(o.Backend, 2)
	}
	gf := o.Runs.Collect(func(run int) float64 { return overlapRun(o, uint64(run)) })
	roof, noov := o.models()
	return OverlapResult{FragSize: o.FragSize, GFLOPS: gf, Roofline: roof, NoOverlap: noov}
}

func overlapRun(o OverlapOpts, run uint64) float64 {
	so := stack.DefaultOptions(o.Backend, 2)
	so.Seed = o.Seed + run*0x9E37
	s := stack.Build(so)
	cfg := parsec.DefaultConfig(o.Workers)
	cfg.Seed = o.Seed + run
	cfg.FetchCap = 64
	cfg.Metrics = s.Metrics
	pp := PingPongOpts{
		Backend: o.Backend, FragSize: o.FragSize, TotalPerIter: o.TotalPerIter,
		Streams: o.Streams, Iters: o.iters(), Sync: false,
	}
	pool := pingpongPool(pp, func(m int64) sim.Duration {
		return sim.FromSeconds(taskFlops(m) / (o.CoreGFLOPS * 1e9))
	})
	rt := parsec.New(s.Eng, s.Engines, pool, cfg)
	d, err := rt.Run()
	if err != nil {
		panic(fmt.Sprintf("bench: overlap %v", err))
	}
	return o.totalFlops() / d.Seconds() / 1e9
}

// models returns the Roofline and No-Overlap GFLOP/s bounds. Compute time
// uses both nodes' workers; communication time is the total cross-wire
// volume at link bandwidth. When tasks are large, concurrency is limited by
// the number of fragments per node, as the paper notes for 8 MiB fragments.
func (o OverlapOpts) models() (roofline, noOverlap float64) {
	window := float64(o.TotalPerIter / o.FragSize)
	flops := o.totalFlops()
	concurrency := float64(2 * o.Workers)
	if perNode := window * float64(o.Streams) / 2; perNode*2 < concurrency {
		concurrency = perNode * 2
	}
	computeSec := flops / (o.CoreGFLOPS * 1e9 * concurrency)
	// Every fragment crosses the network once per iteration after the
	// first, in each stream.
	bytes := float64(o.iters()-1) * float64(o.Streams) * window * float64(o.FragSize)
	// Without the SYNC task, iterations pipeline deeply and the alternating
	// directions keep both 100 Gbit/s rails busy.
	commSec := bytes * 8 / (200e9)
	roofline = flops / math.Max(computeSec, commSec) / 1e9
	noOverlap = flops / (computeSec + commSec) / 1e9
	return roofline, noOverlap
}

// OverlapSizes is the granularity sweep of Figure 3: 16 KiB to 8 MiB.
func OverlapSizes() []int64 {
	var out []int64
	for s := int64(16 << 10); s <= 8<<20; s *= 2 {
		out = append(out, s)
	}
	return out
}
