package bench

import (
	"strings"
	"testing"

	"amtlci/internal/coll"
	"amtlci/internal/core/stack"
)

func TestCollectiveDeterministicAndOrdered(t *testing.T) {
	for _, b := range stack.Backends {
		o := DefaultCollOpts(b, coll.OpAllreduce, 8, 64<<10)
		r1 := Collective(o)
		r2 := Collective(o)
		if r1.Time != r2.Time {
			t.Errorf("%v: repeated runs differ: %v vs %v", b, r1.Time, r2.Time)
		}
		if r1.Time <= 0 {
			t.Errorf("%v: non-positive time %v", b, r1.Time)
		}
		if r1.Picked != o.Tune.Pick(coll.OpAllreduce, o.Size, o.Ranks) {
			t.Errorf("%v: reported pick %v disagrees with the selector", b, r1.Picked)
		}
	}
}

func TestCollectiveScalesWithSize(t *testing.T) {
	small := Collective(DefaultCollOpts(stack.LCI, coll.OpBcast, 4, 1<<10))
	large := Collective(DefaultCollOpts(stack.LCI, coll.OpBcast, 4, 1<<20))
	if large.Time <= small.Time {
		t.Errorf("1 MiB bcast (%v) not slower than 1 KiB (%v)", large.Time, small.Time)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("x", "a", "b")
	tbl.AddRow("plain", `quo"te,comma`)
	var sb strings.Builder
	tbl.CSV(&sb)
	want := "a,b\nplain,\"quo\"\"te,comma\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}
