package micro

import "testing"

func BenchmarkEngineScheduleFire(b *testing.B)    { EngineScheduleFire(b) }
func BenchmarkRefEngineScheduleFire(b *testing.B) { RefEngineScheduleFire(b) }
func BenchmarkEngineScheduleCancel(b *testing.B)  { EngineScheduleCancel(b) }
func BenchmarkProcSubmitDispatch(b *testing.B)    { ProcSubmitDispatch(b) }
func BenchmarkFabricDeliveryCtl(b *testing.B)     { FabricDeliveryCtl(b) }
func BenchmarkFabricDeliveryBulk(b *testing.B)    { FabricDeliveryBulk(b) }
func BenchmarkParallelDomainShards1(b *testing.B) { ParallelDomainThroughput(1)(b) }
func BenchmarkParallelDomainShards4(b *testing.B) { ParallelDomainThroughput(4)(b) }
func BenchmarkParallelDomainShards8(b *testing.B) { ParallelDomainThroughput(8)(b) }
