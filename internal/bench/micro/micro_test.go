package micro

import "testing"

func BenchmarkEngineScheduleFire(b *testing.B)    { EngineScheduleFire(b) }
func BenchmarkRefEngineScheduleFire(b *testing.B) { RefEngineScheduleFire(b) }
func BenchmarkEngineScheduleCancel(b *testing.B)  { EngineScheduleCancel(b) }
func BenchmarkProcSubmitDispatch(b *testing.B)    { ProcSubmitDispatch(b) }
func BenchmarkFabricDeliveryCtl(b *testing.B)     { FabricDeliveryCtl(b) }
func BenchmarkFabricDeliveryBulk(b *testing.B)    { FabricDeliveryBulk(b) }
func BenchmarkParallelDomainShards1(b *testing.B) { ParallelDomainThroughput(1)(b) }
func BenchmarkParallelDomainShards4(b *testing.B) { ParallelDomainThroughput(4)(b) }
func BenchmarkParallelDomainShards8(b *testing.B) { ParallelDomainThroughput(8)(b) }
func BenchmarkParallelRoundShards2(b *testing.B)  { ParallelRoundOverhead(2)(b) }
func BenchmarkParallelRoundShards4(b *testing.B)  { ParallelRoundOverhead(4)(b) }
func BenchmarkParallelRoundShards8(b *testing.B)  { ParallelRoundOverhead(8)(b) }

// TestParallelRoundHotPathZeroAlloc pins the round protocol's steady state
// at zero allocations per event: the nextTime scan, window computation,
// barrier, and pooled engine events must all reuse memory. The one-time
// Run-entry setup (worker goroutines, parker channels) amortizes away over
// the benchmark's iteration count.
func TestParallelRoundHotPathZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed test")
	}
	for _, shards := range []int{2, 4} {
		r := testing.Benchmark(ParallelRoundOverhead(shards))
		if allocs := r.AllocsPerOp(); allocs != 0 {
			t.Errorf("shards=%d: %d allocs/op in the round hot path, want 0 (%d bytes/op)",
				shards, allocs, r.AllocedBytesPerOp())
		}
	}
}
