// Package micro holds the simulator's steady-state microbenchmarks: event
// scheduling on the calendar-queue engine and on the heap-backed reference
// engine (the before/after pair behind BENCH_sim.json), Proc ring-buffer
// dispatch, and fabric delivery of virtual-payload messages.
//
// The harness bodies are exported funcs so cmd/benchrecord can run them
// programmatically via testing.Benchmark; micro_test.go wraps the same
// bodies as ordinary Benchmark* functions for `go test -bench`.
package micro

import (
	"sync/atomic"
	"testing"

	"amtlci/internal/fabric"
	"amtlci/internal/sim"
)

// benchLCG steps a splitmix-style generator; delays must be cheap and
// deterministic so the benchmark measures the queue, not the RNG.
func benchLCG(s uint64) uint64 {
	return s*6364136223846793005 + 1442695040888963407
}

// tickDelay maps an LCG state to a near-future-dominated delay: mostly
// within a few dozen calendar buckets (sub-20µs), with one event in 256
// jumping far enough to land in the overflow tier, matching the delay mix a
// real run produces (wire latencies and gaps near, timeouts far).
func tickDelay(s uint64) sim.Duration {
	d := sim.Duration(s>>40) + 1 // up to ~16.7µs in ps
	if s&0xFF == 0 {
		d += sim.Duration(1) << 33 // ~8.6ms: beyond the calendar window
	}
	return d
}

const tickFanout = 512 // concurrently pending events in the schedule loops

// EngineScheduleFire drives the calendar-queue engine with a self-refilling
// population of events. Steady state should be allocation-free: every fired
// event's slot goes back to the pool before its callback schedules the next.
func EngineScheduleFire(b *testing.B) {
	e := sim.NewEngine()
	fired := 0
	rng := uint64(0x9E3779B97F4A7C15)
	type tick struct{ fire func() }
	ticks := make([]tick, tickFanout)
	for i := range ticks {
		t := &ticks[i]
		t.fire = func() {
			fired++
			if fired < b.N {
				rng = benchLCG(rng)
				e.After(tickDelay(rng), t.fire)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := range ticks {
		rng = benchLCG(rng)
		e.After(tickDelay(rng), ticks[i].fire)
	}
	e.Run()
}

// RefEngineScheduleFire is the identical workload on the container/heap
// reference engine — the baseline the calendar queue is measured against.
func RefEngineScheduleFire(b *testing.B) {
	e := sim.NewRefEngine()
	fired := 0
	rng := uint64(0x9E3779B97F4A7C15)
	type tick struct{ fire func() }
	ticks := make([]tick, tickFanout)
	for i := range ticks {
		t := &ticks[i]
		t.fire = func() {
			fired++
			if fired < b.N {
				rng = benchLCG(rng)
				e.After(tickDelay(rng), t.fire)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := range ticks {
		rng = benchLCG(rng)
		e.After(tickDelay(rng), ticks[i].fire)
	}
	e.Run()
}

// ParallelDomainThroughput returns a harness measuring event throughput on
// a sharded sim.Parallel domain with the given shard count: 32 rank
// calendars, each self-refilling with local events, with every eighth event
// sending a cross-rank event one lookahead ahead — the access mix the
// sharded stack produces (mostly shard-local work, a steady trickle of
// conservative cross-shard traffic). ns/op includes the window-barrier
// overhead, so shards=1 vs shards=N is exactly the serial-vs-sharded
// simulator comparison BENCH_sim.json records. Wall-clock speedup needs
// GOMAXPROCS >= shards; on fewer cores the sharded numbers measure barrier
// overhead alone.
func ParallelDomainThroughput(shards int) func(*testing.B) {
	return func(b *testing.B) {
		const ranks = 32
		const lookahead = sim.Duration(1) << 20 // ~1.05µs in ns units
		dom := sim.NewParallel(ranks, shards, lookahead)
		var fired atomic.Int64
		type tick struct {
			rank int
			rng  uint64
			fire func()
		}
		ticks := make([]tick, ranks)
		for i := range ticks {
			t := &ticks[i]
			t.rank = i
			t.rng = benchLCG(uint64(i+1) * 0x9E3779B97F4A7C15)
			eng := dom.RankEngine(t.rank)
			t.fire = func() {
				n := fired.Add(1)
				if n >= int64(b.N) {
					dom.Stop()
					return
				}
				t.rng = benchLCG(t.rng)
				if t.rng&7 == 0 {
					dst := (t.rank + 1) % ranks
					dom.CrossAt(t.rank, dst, eng.Now().Add(lookahead+tickDelay(t.rng)),
						ticks[dst].fire)
					return
				}
				eng.After(tickDelay(t.rng), t.fire)
			}
		}
		b.ResetTimer()
		for i := range ticks {
			dom.RankEngine(i).After(tickDelay(ticks[i].rng), ticks[i].fire)
		}
		dom.Run()
		b.StopTimer()
		if fired.Load() == 0 && b.N > 0 {
			b.Fatal("parallel domain fired nothing")
		}
	}
}

// ParallelRoundOverhead returns a harness measuring the sharded domain's
// round-coordination cost in isolation: ranks == shards, every shard holds
// exactly one self-refilling event scheduled one lookahead window ahead, so
// each round admits one event per shard and ns/op is dominated by the
// protocol itself — the lock-free nextTime scan, window computation, and
// barrier — not by event execution. The steady state must be allocation
// free (the zero-alloc test in this package pins it), and the harness
// reports rounds/op so callers can convert per-event numbers to per-round.
func ParallelRoundOverhead(shards int) func(*testing.B) {
	return func(b *testing.B) {
		const lookahead = sim.Duration(1) << 20
		dom := sim.NewParallel(shards, shards, lookahead)
		var fired atomic.Int64
		type tick struct{ fire func() }
		ticks := make([]tick, shards)
		for i := range ticks {
			t := &ticks[i]
			eng := dom.RankEngine(i)
			t.fire = func() {
				if fired.Add(1) >= int64(b.N) {
					dom.Stop()
					return
				}
				eng.After(lookahead, t.fire)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := range ticks {
			dom.RankEngine(i).After(lookahead, ticks[i].fire)
		}
		dom.Run()
		b.StopTimer()
		if fired.Load() == 0 && b.N > 0 {
			b.Fatal("parallel domain fired nothing")
		}
		if r := dom.Rounds(); r > 0 && b.N > 0 {
			b.ReportMetric(float64(r)/float64(b.N), "rounds/op")
		}
	}
}

// EngineScheduleCancel measures the schedule-then-cancel cycle (the
// retransmission-timer pattern: most timers armed by the reliability layer
// are canceled by an ACK before they fire).
func EngineScheduleCancel(b *testing.B) {
	e := sim.NewEngine()
	nop := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cancel(e.After(100*sim.Microsecond, nop))
	}
}

// ProcSubmitDispatch measures the FIFO engine's ring buffer with a
// steadily ~32-deep queue, the regime the NIC tx/rx engines run in under
// many-to-one traffic.
func ProcSubmitDispatch(b *testing.B) {
	e := sim.NewEngine()
	p := sim.NewProc(e)
	done := 0
	var fn func()
	fn = func() {
		done++
		if done+32 <= b.N {
			p.Submit(10, fn)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < 32 && i < b.N; i++ {
		p.Submit(10, fn)
	}
	e.Run()
	b.StopTimer()
	if done == 0 && b.N > 0 {
		b.Fatal("proc dispatched nothing")
	}
}

func benchFabric(b *testing.B, size int64) {
	e := sim.NewEngine()
	cfg := fabric.DefaultConfig()
	f, err := fabric.New(e, 2, cfg)
	if err != nil {
		b.Fatal(err)
	}
	n := 0
	m := &fabric.Message{Src: 0, Dst: 1, Size: size}
	f.SetHandler(0, func(*fabric.Message) {})
	f.SetHandler(1, func(mm *fabric.Message) {
		n++
		if n < b.N {
			mm.Src, mm.Dst = 0, 1
			f.Send(mm)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	f.Send(m)
	e.Run()
	b.StopTimer()
	if n < b.N {
		b.Fatalf("delivered %d of %d messages", n, b.N)
	}
}

// FabricDeliveryCtl measures end-to-end delivery of a virtual-payload
// control-lane message (1 KiB ≤ CtlBypass). With pooled events and pooled
// transfer state this path must not allocate.
func FabricDeliveryCtl(b *testing.B) { benchFabric(b, 1024) }

// FabricDeliveryBulk measures the bulk lane (64 KiB > CtlBypass): transmit
// engine, wire, receive engine — the per-tile path of the HiCMA runs.
func FabricDeliveryBulk(b *testing.B) { benchFabric(b, 64<<10) }
