package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows for experiment output in the layout of the paper's
// figures: one row per x-axis point, one column per series.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one formatted row; the cell count must match the headers.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("bench: row has %d cells, want %d", len(cells), len(t.Columns)))
	}
	t.rows = append(t.rows, cells)
}

// AddFloats appends a row with a leading label and formatted numbers.
func (t *Table) AddFloats(label string, format string, vals ...float64) {
	cells := []string{label}
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf(format, v))
	}
	t.AddRow(cells...)
}

// Write renders the table as aligned text plus a trailing blank line.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Columns)
	for _, row := range t.rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as comma-separated values: a header row of the
// column names followed by the data rows. Cells containing commas, quotes,
// or newlines are double-quoted per RFC 4180, so the output loads directly
// into plotting scripts.
func (t *Table) CSV(w io.Writer) {
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return c
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
	line(t.Columns)
	for _, row := range t.rows {
		line(row)
	}
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s\n\n", t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	fmt.Fprintln(w)
}

// Bytes formats a byte size with the binary units the paper uses. Sizes of
// a mebibyte and up always print in MiB (fractionally when unaligned), so
// 1.5 MiB never masquerades as 1536 KiB.
func Bytes(n int64) string {
	switch {
	case n >= 1<<20:
		if n%(1<<20) == 0 {
			return fmt.Sprintf("%d MiB", n>>20)
		}
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		if n%(1<<10) == 0 {
			return fmt.Sprintf("%d KiB", n>>10)
		}
		return fmt.Sprintf("%.2f KiB", float64(n)/1024)
	default:
		return fmt.Sprintf("%d B", n)
	}
}
