package bench

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Experiment sweeps are embarrassingly parallel: every point builds its own
// simulation engine, fabric, stacks, and seeded RNGs, and nothing in the
// runtime shares mutable globals. Sweep exploits that — points run on a
// worker pool, but results land in the output slice at their point's index,
// so tables, CSVs, and best-tile selections are byte-identical to a serial
// run regardless of worker count or OS scheduling.

// SweepWorkers normalizes a -j flag value against a sweep of n points:
// j <= 0 means one worker per CPU, anything else is used as given — but the
// result is always capped at n (and floored at 1), because a sweep can never
// keep more than n workers busy. This is the same clamp Sweep and SweepCtx
// apply internally; having it here too means callers that size goroutine
// pools, channel buffers, or semaphores from SweepWorkers(j, n) do not
// over-provision slots that could never be used.
func SweepWorkers(j, n int) int {
	w := j
	if j <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Sweep evaluates point(0..n-1) on up to `workers` goroutines and returns
// the results in point order. point must be self-contained: it may not
// touch another point's simulation state (every caller in this package
// builds a fresh engine per point, which is what makes this sound).
// workers is clamped to n; workers <= 1 runs serially on the caller's
// goroutine. Sweep is SweepCtx with a background context: it always runs
// every point.
func Sweep[T any](workers, n int, point func(i int) T) []T {
	out, _ := SweepCtx(context.Background(), workers, n, point)
	return out
}

// SweepCtx is Sweep with cancellation: when ctx is cancelled it stops
// dispatching new points, waits for the points already in flight to finish,
// and returns the results of the completed prefix along with ctx.Err().
//
// Points are dispatched in index order, and a dispatched point always runs
// to completion, so the returned slice is a gap-free prefix of the full
// sweep: len(result) points completed, everything past it was never
// started. A nil error means the prefix is the whole sweep.
func SweepCtx[T any](ctx context.Context, workers, n int, point func(i int) T) ([]T, error) {
	out := make([]T, n)
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return out[:i], err
			}
			out[i] = point(i)
		}
		return out, ctx.Err()
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	done := ctx.Done()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = point(i)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// Every claimed index ran to completion (workers only observe
		// cancellation between points), and indices are claimed in order,
		// so the completed prefix is exactly the claimed range.
		claimed := int(next.Load())
		if claimed > n {
			claimed = n
		}
		return out[:claimed], err
	}
	return out, nil
}
