package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Experiment sweeps are embarrassingly parallel: every point builds its own
// simulation engine, fabric, stacks, and seeded RNGs, and nothing in the
// runtime shares mutable globals. Sweep exploits that — points run on a
// worker pool, but results land in the output slice at their point's index,
// so tables, CSVs, and best-tile selections are byte-identical to a serial
// run regardless of worker count or OS scheduling.

// SweepWorkers normalizes a -j flag value: 0 (or negative) means one worker
// per CPU, anything else is used as given.
func SweepWorkers(j int) int {
	if j <= 0 {
		return runtime.NumCPU()
	}
	return j
}

// Sweep evaluates point(0..n-1) on up to `workers` goroutines and returns
// the results in point order. point must be self-contained: it may not
// touch another point's simulation state (every caller in this package
// builds a fresh engine per point, which is what makes this sound).
// workers <= 1 runs serially on the caller's goroutine.
func Sweep[T any](workers, n int, point func(i int) T) []T {
	out := make([]T, n)
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			out[i] = point(i)
		}
		return out
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = point(i)
			}
		}()
	}
	wg.Wait()
	return out
}
