package linalg

import (
	"fmt"
	"math"
)

// QR computes the thin Householder QR factorization of an m x n matrix with
// m >= n: A = Q R with Q m x n having orthonormal columns and R n x n upper
// triangular.
func QR(a *Matrix) (q, r *Matrix) {
	m, n := a.Rows, a.Cols
	if m < n {
		panic(fmt.Sprintf("linalg: QR needs rows >= cols, got %dx%d", m, n))
	}
	work := a.Clone()
	vs := make([][]float64, n) // Householder vectors
	for k := 0; k < n; k++ {
		// Build the Householder vector for column k.
		var norm float64
		for i := k; i < m; i++ {
			norm += work.At(i, k) * work.At(i, k)
		}
		norm = math.Sqrt(norm)
		v := make([]float64, m-k)
		alpha := work.At(k, k)
		if alpha >= 0 {
			norm = -norm
		}
		if norm == 0 {
			// Zero column: identity reflector.
			vs[k] = v
			continue
		}
		v[0] = alpha - norm
		for i := k + 1; i < m; i++ {
			v[i-k] = work.At(i, k)
		}
		var vv float64
		for _, x := range v {
			vv += x * x
		}
		if vv == 0 {
			vs[k] = v
			continue
		}
		// Apply I - 2 v v^T / (v^T v) to the trailing block.
		for j := k; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i-k] * work.At(i, j)
			}
			f := 2 * dot / vv
			for i := k; i < m; i++ {
				work.Set(i, j, work.At(i, j)-f*v[i-k])
			}
		}
		vs[k] = v
	}
	r = NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, work.At(i, j))
		}
	}
	// Accumulate Q = H_0 ... H_{n-1} applied to the first n columns of I.
	q = NewMatrix(m, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, 1)
	}
	for k := n - 1; k >= 0; k-- {
		v := vs[k]
		var vv float64
		for _, x := range v {
			vv += x * x
		}
		if vv == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i-k] * q.At(i, j)
			}
			f := 2 * dot / vv
			for i := k; i < m; i++ {
				q.Set(i, j, q.At(i, j)-f*v[i-k])
			}
		}
	}
	return q, r
}

// SVD computes the singular value decomposition A = U diag(S) V^T of an
// m x n matrix using the one-sided Jacobi method. U is m x n with
// orthonormal columns (where S > 0), V is n x n orthogonal, and S is
// returned in non-increasing order.
func SVD(a *Matrix) (u *Matrix, s []float64, v *Matrix) {
	m, n := a.Rows, a.Cols
	if m < n {
		// Work on the transpose and swap the factors.
		ut, st, vt := SVD(a.Transpose())
		return vt, st, ut
	}
	u = a.Clone()
	v = NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 60
	eps := 1e-14 * a.FrobNorm()
	for sweep := 0; sweep < maxSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					up, uq := u.At(i, p), u.At(i, q)
					app += up * up
					aqq += uq * uq
					apq += up * uq
				}
				if math.Abs(apq) <= eps*math.Sqrt(app*aqq)+1e-300 {
					continue
				}
				rotated = true
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				sn := c * t
				for i := 0; i < m; i++ {
					up, uq := u.At(i, p), u.At(i, q)
					u.Set(i, p, c*up-sn*uq)
					u.Set(i, q, sn*up+c*uq)
				}
				for i := 0; i < n; i++ {
					vp, vq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vp-sn*vq)
					v.Set(i, q, sn*vp+c*vq)
				}
			}
		}
		if !rotated {
			break
		}
	}
	// Singular values are the column norms of the rotated U.
	s = make([]float64, n)
	for j := 0; j < n; j++ {
		var norm float64
		for i := 0; i < m; i++ {
			norm += u.At(i, j) * u.At(i, j)
		}
		s[j] = math.Sqrt(norm)
		if s[j] > 0 {
			for i := 0; i < m; i++ {
				u.Set(i, j, u.At(i, j)/s[j])
			}
		}
	}
	// Sort descending by singular value (stable selection).
	for i := 0; i < n-1; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if s[j] > s[best] {
				best = j
			}
		}
		if best != i {
			s[i], s[best] = s[best], s[i]
			for r := 0; r < m; r++ {
				u.Data[r*n+i], u.Data[r*n+best] = u.Data[r*n+best], u.Data[r*n+i]
			}
			for r := 0; r < n; r++ {
				v.Data[r*n+i], v.Data[r*n+best] = v.Data[r*n+best], v.Data[r*n+i]
			}
		}
	}
	return u, s, v
}
