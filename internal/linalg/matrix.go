// Package linalg provides the dense linear-algebra kernels that back the
// repository's Cholesky factorizations: GEMM, SYRK, TRSM, POTRF, Householder
// QR, and a one-sided Jacobi SVD. They are straightforward, well-tested
// reference implementations — the performance experiments run on the
// simulator's cost model, so these kernels only need to be correct, not
// fast, and they keep the repository free of external BLAS dependencies.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zeroed r x c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices (all the same length).
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Transpose returns a new transposed matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Equalish reports whether two matrices match within tol element-wise.
func Equalish(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// FrobNorm returns the Frobenius norm.
func (m *Matrix) FrobNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Sub returns a - b.
func Sub(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: Sub shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, a.Cols)
	for i := range c.Data {
		c.Data[i] = a.Data[i] - b.Data[i]
	}
	return c
}

// Mul returns a * b.
func Mul(a, b *Matrix) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	GEMM(c, a, b, 1, false, false)
	return c
}

// GEMM computes C += alpha * op(A) * op(B), where op transposes when the
// corresponding flag is set. Dimensions must conform; it panics otherwise.
func GEMM(c, a, b *Matrix, alpha float64, transA, transB bool) {
	am, ak := a.Rows, a.Cols
	if transA {
		am, ak = ak, am
	}
	bk, bn := b.Rows, b.Cols
	if transB {
		bk, bn = bn, bk
	}
	if ak != bk || c.Rows != am || c.Cols != bn {
		panic(fmt.Sprintf("linalg: GEMM shape mismatch (%dx%d)(%dx%d)->(%dx%d)",
			am, ak, bk, bn, c.Rows, c.Cols))
	}
	at := func(i, k int) float64 {
		if transA {
			return a.Data[k*a.Cols+i]
		}
		return a.Data[i*a.Cols+k]
	}
	bt := func(k, j int) float64 {
		if transB {
			return b.Data[j*b.Cols+k]
		}
		return b.Data[k*b.Cols+j]
	}
	for i := 0; i < am; i++ {
		for j := 0; j < bn; j++ {
			var s float64
			for k := 0; k < ak; k++ {
				s += at(i, k) * bt(k, j)
			}
			c.Data[i*c.Cols+j] += alpha * s
		}
	}
}

// SYRK computes C += alpha * A * A^T, updating the full symmetric matrix.
func SYRK(c, a *Matrix, alpha float64) {
	if c.Rows != a.Rows || c.Cols != a.Rows {
		panic("linalg: SYRK shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.Data[i*a.Cols+k] * a.Data[j*a.Cols+k]
			}
			c.Data[i*c.Cols+j] += alpha * s
			if i != j {
				c.Data[j*c.Cols+i] += alpha * s
			}
		}
	}
}

// POTRF overwrites the lower triangle of a with its Cholesky factor L
// (a = L L^T) and zeroes the strict upper triangle. It returns an error if a
// is not (numerically) positive definite.
func POTRF(a *Matrix) error {
	if a.Rows != a.Cols {
		panic("linalg: POTRF needs a square matrix")
	}
	n := a.Rows
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= a.At(j, k) * a.At(j, k)
		}
		if d <= 0 {
			return fmt.Errorf("linalg: POTRF pivot %d is %g, matrix not positive definite", j, d)
		}
		d = math.Sqrt(d)
		a.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= a.At(i, k) * a.At(j, k)
			}
			a.Set(i, j, s/d)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a.Set(i, j, 0)
		}
	}
	return nil
}

// TRSMRightLowerT solves B := B * L^{-T} in place, where L is lower
// triangular: the dense Cholesky panel update A[m][k] = A[m][k] * L_kk^{-T}.
func TRSMRightLowerT(b, l *Matrix) {
	if l.Rows != l.Cols || b.Cols != l.Rows {
		panic("linalg: TRSMRightLowerT shape mismatch")
	}
	n := l.Rows
	for i := 0; i < b.Rows; i++ {
		row := b.Data[i*b.Cols : (i+1)*b.Cols]
		// Solve x * L^T = row  <=>  L x^T = row^T (forward substitution).
		for j := 0; j < n; j++ {
			s := row[j]
			for k := 0; k < j; k++ {
				s -= row[k] * l.At(j, k)
			}
			row[j] = s / l.At(j, j)
		}
	}
}

// TRSMLeftLower solves X := L^{-1} * B in place (B overwritten), where L is
// lower triangular: the TLR TRSM applied to a low-rank factor.
func TRSMLeftLower(b, l *Matrix) {
	if l.Rows != l.Cols || b.Rows != l.Rows {
		panic("linalg: TRSMLeftLower shape mismatch")
	}
	n := l.Rows
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < n; i++ {
			s := b.At(i, j)
			for k := 0; k < i; k++ {
				s -= l.At(i, k) * b.At(k, j)
			}
			b.Set(i, j, s/l.At(i, i))
		}
	}
}
