package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"amtlci/internal/sim"
)

// randMatrix builds a deterministic pseudo-random matrix.
func randMatrix(r, c int, seed uint64) *Matrix {
	rng := sim.NewRNG(seed)
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

// spdMatrix builds a well-conditioned symmetric positive-definite matrix.
func spdMatrix(n int, seed uint64) *Matrix {
	a := randMatrix(n, n, seed)
	s := NewMatrix(n, n)
	SYRK(s, a, 1)
	for i := 0; i < n; i++ {
		s.Set(i, i, s.At(i, i)+float64(n))
	}
	return s
}

func TestGEMMAgainstHandComputed(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := NewMatrix(2, 2)
	GEMM(c, a, b, 1, false, false)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !Equalish(c, want, 1e-12) {
		t.Fatalf("C = %+v", c)
	}
}

func TestGEMMTransposeVariants(t *testing.T) {
	a := randMatrix(4, 3, 1)
	b := randMatrix(4, 3, 2)
	// C1 = A^T * B via flags; C2 via explicit transpose.
	c1 := NewMatrix(3, 3)
	GEMM(c1, a, b, 1, true, false)
	c2 := Mul(a.Transpose(), b)
	if !Equalish(c1, c2, 1e-12) {
		t.Fatal("transA mismatch")
	}
	c3 := NewMatrix(4, 4)
	GEMM(c3, a, b, 1, false, true)
	c4 := Mul(a, b.Transpose())
	if !Equalish(c3, c4, 1e-12) {
		t.Fatal("transB mismatch")
	}
}

func TestGEMMAccumulatesWithAlpha(t *testing.T) {
	a := randMatrix(3, 3, 3)
	b := randMatrix(3, 3, 4)
	c := randMatrix(3, 3, 5)
	orig := c.Clone()
	GEMM(c, a, b, -2, false, false)
	prod := Mul(a, b)
	for i := range c.Data {
		want := orig.Data[i] - 2*prod.Data[i]
		if math.Abs(c.Data[i]-want) > 1e-12 {
			t.Fatalf("alpha accumulate wrong at %d", i)
		}
	}
}

func TestSYRKMatchesGEMM(t *testing.T) {
	a := randMatrix(5, 3, 6)
	c1 := NewMatrix(5, 5)
	SYRK(c1, a, -1)
	c2 := NewMatrix(5, 5)
	GEMM(c2, a, a, -1, false, true)
	if !Equalish(c1, c2, 1e-12) {
		t.Fatal("SYRK != A A^T")
	}
}

func TestPOTRFReconstructs(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 40} {
		a := spdMatrix(n, uint64(n))
		l := a.Clone()
		if err := POTRF(l); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		recon := NewMatrix(n, n)
		GEMM(recon, l, l, 1, false, true)
		if !Equalish(recon, a, 1e-8*float64(n)) {
			t.Fatalf("n=%d: L L^T != A (err %g)", n, Sub(recon, a).FrobNorm())
		}
		// Upper triangle zeroed.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatal("upper triangle not zeroed")
				}
			}
		}
	}
}

func TestPOTRFRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, -1}})
	if err := POTRF(a); err == nil {
		t.Fatal("POTRF accepted an indefinite matrix")
	}
}

func TestTRSMRightLowerT(t *testing.T) {
	n := 6
	spd := spdMatrix(n, 9)
	l := spd.Clone()
	if err := POTRF(l); err != nil {
		t.Fatal(err)
	}
	b := randMatrix(4, n, 10)
	x := b.Clone()
	TRSMRightLowerT(x, l)
	// Check X * L^T == B.
	recon := NewMatrix(4, n)
	GEMM(recon, x, l, 1, false, true)
	if !Equalish(recon, b, 1e-9) {
		t.Fatalf("X L^T != B, err %g", Sub(recon, b).FrobNorm())
	}
}

func TestTRSMLeftLower(t *testing.T) {
	n := 6
	spd := spdMatrix(n, 11)
	l := spd.Clone()
	if err := POTRF(l); err != nil {
		t.Fatal(err)
	}
	b := randMatrix(n, 3, 12)
	x := b.Clone()
	TRSMLeftLower(x, l)
	recon := Mul(l, x)
	if !Equalish(recon, b, 1e-9) {
		t.Fatalf("L X != B, err %g", Sub(recon, b).FrobNorm())
	}
}

func TestQRProperties(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {8, 3}, {20, 7}, {5, 1}} {
		m, n := dims[0], dims[1]
		a := randMatrix(m, n, uint64(m*100+n))
		q, r := QR(a)
		// A == Q R.
		recon := Mul(q, r)
		if !Equalish(recon, a, 1e-10) {
			t.Fatalf("%dx%d: QR != A (err %g)", m, n, Sub(recon, a).FrobNorm())
		}
		// Q^T Q == I.
		qtq := NewMatrix(n, n)
		GEMM(qtq, q, q, 1, true, false)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(qtq.At(i, j)-want) > 1e-10 {
					t.Fatalf("%dx%d: Q not orthonormal", m, n)
				}
			}
		}
		// R upper triangular.
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				if r.At(i, j) != 0 {
					t.Fatal("R not upper triangular")
				}
			}
		}
	}
}

func TestSVDProperties(t *testing.T) {
	for _, dims := range [][2]int{{5, 5}, {8, 4}, {4, 8}, {12, 3}} {
		m, n := dims[0], dims[1]
		a := randMatrix(m, n, uint64(m*13+n))
		u, s, v := SVD(a)
		// Reconstruct.
		k := len(s)
		us := u.Clone()
		for i := 0; i < us.Rows; i++ {
			for j := 0; j < k; j++ {
				us.Set(i, j, us.At(i, j)*s[j])
			}
		}
		recon := NewMatrix(m, n)
		GEMM(recon, us, v, 1, false, true)
		if !Equalish(recon, a, 1e-9) {
			t.Fatalf("%dx%d: U S V^T != A (err %g)", m, n, Sub(recon, a).FrobNorm())
		}
		// Singular values non-negative, sorted descending.
		for i := 1; i < k; i++ {
			if s[i] > s[i-1]+1e-12 || s[i] < 0 {
				t.Fatalf("%dx%d: singular values not sorted: %v", m, n, s)
			}
		}
	}
}

func TestSVDLowRankMatrixRecovery(t *testing.T) {
	// A rank-2 matrix must show exactly 2 significant singular values.
	u := randMatrix(10, 2, 77)
	v := randMatrix(8, 2, 78)
	a := NewMatrix(10, 8)
	GEMM(a, u, v, 1, false, true)
	_, s, _ := SVD(a)
	if s[0] < 1e-8 || s[1] < 1e-8 {
		t.Fatal("lost the true rank")
	}
	for i := 2; i < len(s); i++ {
		if s[i] > 1e-9*s[0] {
			t.Fatalf("rank-2 matrix has s[%d]=%g", i, s[i])
		}
	}
}

func TestSVDPropertyRandomShapes(t *testing.T) {
	f := func(seed uint16) bool {
		m := int(seed%6) + 2
		n := int(seed/6%6) + 2
		a := randMatrix(m, n, uint64(seed)+1000)
		u, s, v := SVD(a)
		us := u.Clone()
		for i := 0; i < us.Rows; i++ {
			for j := 0; j < len(s); j++ {
				us.Set(i, j, us.At(i, j)*s[j])
			}
		}
		recon := NewMatrix(m, n)
		GEMM(recon, us, v, 1, false, true)
		return Equalish(recon, a, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixHelpers(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("Set/At broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone aliases")
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 5 {
		t.Fatal("Transpose broken")
	}
	if n := FromRows([][]float64{{3, 4}}).FrobNorm(); math.Abs(n-5) > 1e-12 {
		t.Fatalf("FrobNorm = %v", n)
	}
}
