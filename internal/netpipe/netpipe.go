// Package netpipe reimplements the NetPIPE ping-pong benchmark [29] that
// Figure 2a uses as the raw-network baseline: a two-node ping-pong directly
// on the fabric, with only minimal software overhead per message, reporting
// half-round-trip bandwidth per block size.
package netpipe

import (
	"amtlci/internal/fabric"
	"amtlci/internal/sim"
)

// Config parameterizes the benchmark.
type Config struct {
	Fabric fabric.Config
	// Overhead is the per-message software cost at each end (NetPIPE's thin
	// TCP/verbs layer).
	Overhead sim.Duration
	// Reps is the number of round trips measured per block size.
	Reps int
}

// DefaultConfig uses the repository's calibrated fabric and a thin software
// layer.
func DefaultConfig() Config {
	fc := fabric.DefaultConfig()
	fc.Jitter = 0
	return Config{Fabric: fc, Overhead: 300 * sim.Nanosecond, Reps: 16}
}

// Bandwidth returns the NetPIPE bandwidth in Gbit/s for the given block
// size: size / (RTT/2), averaged over Reps round trips.
func Bandwidth(cfg Config, size int64) float64 {
	if cfg.Reps <= 0 {
		panic("netpipe: Reps must be positive")
	}
	eng := sim.NewEngine()
	fab, err := fabric.New(eng, 2, cfg.Fabric)
	if err != nil {
		panic(err)
	}
	cpu := [2]*sim.Proc{sim.NewProc(eng), sim.NewProc(eng)}

	remaining := cfg.Reps
	var finish sim.Time
	var bounce func(at int)
	bounce = func(at int) {
		// The arrival is processed, then the reply (or termination).
		cpu[at].Submit(cfg.Overhead, func() {
			if at == 0 {
				remaining--
				if remaining == 0 {
					finish = eng.Now()
					return
				}
			}
			fab.Send(&fabric.Message{Src: at, Dst: 1 - at, Size: size})
		})
	}
	fab.SetHandler(0, func(m *fabric.Message) { bounce(0) })
	fab.SetHandler(1, func(m *fabric.Message) { bounce(1) })

	// Kick off: rank 0 sends the first block.
	cpu[0].Submit(cfg.Overhead, func() {
		fab.Send(&fabric.Message{Src: 0, Dst: 1, Size: size})
	})
	eng.Run()

	// Each rep is a full round trip carrying size bytes each way.
	halfTrips := float64(2 * cfg.Reps)
	seconds := sim.Duration(finish).Seconds() / halfTrips
	return float64(size) * 8 / seconds / 1e9
}

// Latency returns the half-round-trip time for small messages in
// microseconds.
func Latency(cfg Config) float64 {
	eng := sim.NewEngine()
	fab, err := fabric.New(eng, 2, cfg.Fabric)
	if err != nil {
		panic(err)
	}
	const reps = 32
	remaining := reps
	var finish sim.Time
	fab.SetHandler(1, func(m *fabric.Message) {
		fab.Send(&fabric.Message{Src: 1, Dst: 0, Size: 8})
	})
	fab.SetHandler(0, func(m *fabric.Message) {
		remaining--
		if remaining == 0 {
			finish = eng.Now()
			return
		}
		fab.Send(&fabric.Message{Src: 0, Dst: 1, Size: 8})
	})
	fab.Send(&fabric.Message{Src: 0, Dst: 1, Size: 8})
	eng.Run()
	return sim.Duration(finish).Microseconds() / (2 * reps)
}
