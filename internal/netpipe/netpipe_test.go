package netpipe

import "testing"

func TestBandwidthSaturatesAtLinkRate(t *testing.T) {
	cfg := DefaultConfig()
	bw := Bandwidth(cfg, 8<<20)
	if bw < 0.85*cfg.Fabric.BandwidthGbps || bw > cfg.Fabric.BandwidthGbps {
		t.Fatalf("8 MiB bandwidth = %.1f Gbit/s, want near %.0f", bw, cfg.Fabric.BandwidthGbps)
	}
}

func TestBandwidthMonotoneInSize(t *testing.T) {
	cfg := DefaultConfig()
	prev := 0.0
	for _, size := range []int64{1 << 10, 8 << 10, 64 << 10, 512 << 10, 4 << 20} {
		bw := Bandwidth(cfg, size)
		if bw <= prev {
			t.Fatalf("bandwidth not increasing at %d bytes: %.2f <= %.2f", size, bw, prev)
		}
		prev = bw
	}
}

func TestSmallMessageBandwidthLatencyBound(t *testing.T) {
	cfg := DefaultConfig()
	bw := Bandwidth(cfg, 64)
	// 64 bytes over ~1.5µs half-RTT is well under 1 Gbit/s.
	if bw > 1 {
		t.Fatalf("64B bandwidth = %.3f Gbit/s, implausibly high", bw)
	}
}

func TestLatencyNearWireLatency(t *testing.T) {
	cfg := DefaultConfig()
	lat := Latency(cfg)
	wire := cfg.Fabric.Latency.Microseconds()
	if lat < wire || lat > wire*2 {
		t.Fatalf("half-RTT %.2fµs vs wire %.2fµs", lat, wire)
	}
}

func TestDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	if Bandwidth(cfg, 1<<20) != Bandwidth(cfg, 1<<20) {
		t.Fatal("NetPIPE not deterministic")
	}
}
