// Package tlr implements tile low-rank (TLR) linear algebra: the compressed
// tile format HiCMA operates on (Section 6.4). Off-diagonal tiles of a
// covariance-type matrix are stored as a product U V^T with rank r << nb;
// the TLR Cholesky kernels operate directly on the compressed format, with
// QR+SVD recompression bounding rank growth.
package tlr

import (
	"fmt"
	"math"

	"amtlci/internal/linalg"
)

// LowRank is a tile approximated as U * V^T with U, V of shape nb x r.
type LowRank struct {
	U, V *linalg.Matrix
}

// Rank returns the tile's current rank.
func (lr *LowRank) Rank() int { return lr.U.Cols }

// Rows returns the tile's dimension.
func (lr *LowRank) Rows() int { return lr.U.Rows }

// Bytes returns the packed U x V storage footprint (the message size a TLR
// runtime transfers for this tile).
func (lr *LowRank) Bytes() int64 { return PackedBytes(lr.Rows(), lr.Rank()) }

// PackedBytes returns the byte size of a packed rank-r tile of dimension nb.
func PackedBytes(nb, r int) int64 { return 2 * int64(nb) * int64(r) * 8 }

// Dense reconstructs the tile as a dense matrix.
func (lr *LowRank) Dense() *linalg.Matrix {
	d := linalg.NewMatrix(lr.U.Rows, lr.V.Rows)
	linalg.GEMM(d, lr.U, lr.V, 1, false, true)
	return d
}

// Clone deep-copies the tile.
func (lr *LowRank) Clone() *LowRank {
	return &LowRank{U: lr.U.Clone(), V: lr.V.Clone()}
}

// Compress approximates a dense tile with a low-rank product truncated at
// absolute accuracy eps (singular values at or below eps are dropped) and
// capped at maxRank. Rank never falls below 1. The threshold is absolute
// because HiCMA factors covariance matrices scaled to unit diagonal with a
// fixed accuracy (10^-8 in the paper); an absolute cut is what lets ranks
// of far-from-diagonal tiles "drop to 1" (§6.4.1).
func Compress(a *linalg.Matrix, eps float64, maxRank int) *LowRank {
	u, s, v := linalg.SVD(a)
	k := 1
	for k < len(s) && k < maxRank && s[k] > eps {
		k++
	}
	return truncate(u, s, v, k)
}

// truncate keeps the leading k singular triplets, folding the singular
// values into U.
func truncate(u *linalg.Matrix, s []float64, v *linalg.Matrix, k int) *LowRank {
	uu := linalg.NewMatrix(u.Rows, k)
	vv := linalg.NewMatrix(v.Rows, k)
	for i := 0; i < u.Rows; i++ {
		for j := 0; j < k; j++ {
			uu.Set(i, j, u.At(i, j)*s[j])
		}
	}
	for i := 0; i < v.Rows; i++ {
		for j := 0; j < k; j++ {
			vv.Set(i, j, v.At(i, j))
		}
	}
	return &LowRank{U: uu, V: vv}
}

// TRSM applies the TLR triangular solve A := A * L^{-T} in place: because
// A = U V^T, only the V factor is solved (V := L^{-1} V), an O(nb^2 r)
// operation instead of the dense O(nb^3).
func TRSM(a *LowRank, l *linalg.Matrix) {
	linalg.TRSMLeftLower(a.V, l)
}

// SYRKDense applies D += alpha * A A^T for a low-rank A to a dense tile:
// D += alpha * U (V^T V) U^T, costing O(nb r^2 + nb^2 r).
func SYRKDense(d *linalg.Matrix, a *LowRank, alpha float64) {
	r := a.Rank()
	w := linalg.NewMatrix(r, r)
	linalg.GEMM(w, a.V, a.V, 1, true, false) // V^T V
	uw := linalg.NewMatrix(a.U.Rows, r)
	linalg.GEMM(uw, a.U, w, 1, false, false)
	linalg.GEMM(d, uw, a.U, alpha, false, true)
}

// AddLRProduct updates C += alpha * A * B^T where all three tiles are
// low-rank, then recompresses C to accuracy eps and rank cap maxRank. This
// is the TLR GEMM, the dominant kernel of HiCMA's Cholesky: the naive
// concatenation [U_c, alpha*U_a (V_a^T V_b)] [V_c, U_b]^T would grow the
// rank by rank(A), so a QR+SVD recompression follows.
func AddLRProduct(c *LowRank, a, b *LowRank, alpha, eps float64, maxRank int) {
	ra, rc := a.Rank(), c.Rank()
	nb := c.U.Rows

	// W = V_a^T V_b  (ra x rb), then P = alpha * U_a W (nb x rb).
	w := linalg.NewMatrix(ra, b.Rank())
	linalg.GEMM(w, a.V, b.V, 1, true, false)
	p := linalg.NewMatrix(nb, b.Rank())
	linalg.GEMM(p, a.U, w, alpha, false, false)

	// Concatenate factors: U' = [U_c | P], V' = [V_c | U_b].
	uNew := hcat(c.U, p)
	vNew := hcat(c.V, b.U)
	_ = rc

	recompress(c, uNew, vNew, eps, maxRank)
}

// recompress replaces c with the eps-truncated representation of
// uNew * vNew^T using the QR-SVD scheme.
func recompress(c *LowRank, uNew, vNew *linalg.Matrix, eps float64, maxRank int) {
	if uNew.Cols > uNew.Rows {
		// The concatenated rank exceeds the tile dimension: the "low-rank"
		// detour is pointless, so recompress through the dense form (also
		// the cheaper path in this regime).
		dense := linalg.NewMatrix(uNew.Rows, vNew.Rows)
		linalg.GEMM(dense, uNew, vNew, 1, false, true)
		nc := Compress(dense, eps, maxRank)
		c.U, c.V = nc.U, nc.V
		return
	}
	q1, r1 := linalg.QR(uNew)
	q2, r2 := linalg.QR(vNew)
	// M = R1 * R2^T is small (r' x r').
	m := linalg.NewMatrix(r1.Rows, r2.Rows)
	linalg.GEMM(m, r1, r2, 1, false, true)
	us, s, vs := linalg.SVD(m)
	k := 1
	for k < len(s) && k < maxRank && s[k] > eps {
		k++
	}
	lr := truncate(us, s, vs, k)
	u := linalg.NewMatrix(uNew.Rows, k)
	linalg.GEMM(u, q1, lr.U, 1, false, false)
	v := linalg.NewMatrix(vNew.Rows, k)
	linalg.GEMM(v, q2, lr.V, 1, false, false)
	c.U, c.V = u, v
}

func hcat(a, b *linalg.Matrix) *linalg.Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tlr: hcat rows %d vs %d", a.Rows, b.Rows))
	}
	out := linalg.NewMatrix(a.Rows, a.Cols+b.Cols)
	for i := 0; i < a.Rows; i++ {
		copy(out.Data[i*out.Cols:], a.Data[i*a.Cols:(i+1)*a.Cols])
		copy(out.Data[i*out.Cols+a.Cols:], b.Data[i*b.Cols:(i+1)*b.Cols])
	}
	return out
}

// Problem generates the st-2d-sqexp covariance matrices HiCMA factorizes in
// geostatistical modeling (§6.4.1): points in the unit square with a
// squared-exponential kernel plus a nugget for positive definiteness.
// Points are ordered along a Morton (Z-order) curve, as in real HiCMA
// problem generators, so that index-contiguous blocks are spatially compact
// and off-diagonal tiles compress to low rank.
type Problem struct {
	N      int     // matrix dimension (number of spatial points)
	Length float64 // correlation length
	Nugget float64 // diagonal regularization

	xs, ys []float64
}

// NewProblem builds a problem instance with precomputed point locations.
func NewProblem(n int, length, nugget float64) *Problem {
	p := &Problem{N: n, Length: length, Nugget: nugget}
	side := int(math.Ceil(math.Sqrt(float64(n))))
	// Enumerate grid cells in Morton order, skipping cells outside the
	// side x side grid, until n points are placed.
	pow2 := 1
	for pow2 < side {
		pow2 *= 2
	}
	p.xs = make([]float64, 0, n)
	p.ys = make([]float64, 0, n)
	for z := 0; len(p.xs) < n && z < pow2*pow2; z++ {
		x, y := mortonDecode(uint32(z))
		if int(x) >= side || int(y) >= side {
			continue
		}
		p.xs = append(p.xs, float64(x)/float64(side))
		p.ys = append(p.ys, float64(y)/float64(side))
	}
	if len(p.xs) < n {
		panic("tlr: Morton enumeration under-filled the grid")
	}
	return p
}

// mortonDecode splits the interleaved bits of z into x and y coordinates.
func mortonDecode(z uint32) (x, y uint32) {
	compact := func(v uint32) uint32 {
		v &= 0x55555555
		v = (v | v>>1) & 0x33333333
		v = (v | v>>2) & 0x0F0F0F0F
		v = (v | v>>4) & 0x00FF00FF
		v = (v | v>>8) & 0x0000FFFF
		return v
	}
	return compact(z), compact(z >> 1)
}

// DefaultProblem mirrors the paper's st-2d-sqexp generator at dimension n.
func DefaultProblem(n int) *Problem { return NewProblem(n, 0.1, 1e-4) }

// Entry evaluates the covariance between points i and j.
func (p *Problem) Entry(i, j int) float64 {
	dx := p.xs[i] - p.xs[j]
	dy := p.ys[i] - p.ys[j]
	v := math.Exp(-(dx*dx + dy*dy) / (2 * p.Length * p.Length))
	if i == j {
		v += p.Nugget
	}
	return v
}

// Block materializes the dense sub-matrix with rows [r0, r0+nr) and columns
// [c0, c0+nc).
func (p *Problem) Block(r0, c0, nr, nc int) *linalg.Matrix {
	m := linalg.NewMatrix(nr, nc)
	for i := 0; i < nr; i++ {
		for j := 0; j < nc; j++ {
			m.Set(i, j, p.Entry(r0+i, c0+j))
		}
	}
	return m
}
