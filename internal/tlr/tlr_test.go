package tlr

import (
	"math"
	"testing"

	"amtlci/internal/linalg"
	"amtlci/internal/sim"
)

func randMatrix(r, c int, seed uint64) *linalg.Matrix {
	rng := sim.NewRNG(seed)
	m := linalg.NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

// lowRankMatrix builds an exactly rank-k matrix.
func lowRankMatrix(n, k int, seed uint64) *linalg.Matrix {
	u := randMatrix(n, k, seed)
	v := randMatrix(n, k, seed+1)
	m := linalg.NewMatrix(n, n)
	linalg.GEMM(m, u, v, 1, false, true)
	return m
}

func relErr(approx, exact *linalg.Matrix) float64 {
	return linalg.Sub(approx, exact).FrobNorm() / exact.FrobNorm()
}

func TestCompressRecoversExactRank(t *testing.T) {
	a := lowRankMatrix(24, 3, 5)
	lr := Compress(a, 1e-10, 24)
	if lr.Rank() != 3 {
		t.Fatalf("rank = %d, want 3", lr.Rank())
	}
	if e := relErr(lr.Dense(), a); e > 1e-9 {
		t.Fatalf("reconstruction error %g", e)
	}
}

func TestCompressRespectsMaxRank(t *testing.T) {
	a := randMatrix(16, 16, 7) // full rank
	lr := Compress(a, 1e-15, 4)
	if lr.Rank() != 4 {
		t.Fatalf("rank = %d, want cap 4", lr.Rank())
	}
}

func TestCompressAccuracySweep(t *testing.T) {
	// Covariance tiles compress harder at looser eps; error tracks eps.
	// Use a correlation length spanning several tiles, as in geostatistics
	// problems where tiles are small relative to the correlation range.
	p := NewProblem(400, 0.35, 1e-4)
	a := p.Block(0, 200, 100, 100) // off-diagonal block
	prev := 0
	for _, eps := range []float64{1e-2, 1e-4, 1e-8} {
		lr := Compress(a, eps, 100)
		if lr.Rank() < prev {
			t.Fatalf("rank shrank as eps tightened: %d < %d", lr.Rank(), prev)
		}
		prev = lr.Rank()
		if e := relErr(lr.Dense(), a); e > eps*50 {
			t.Fatalf("eps=%g: error %g too large", eps, e)
		}
	}
	// The sq-exp kernel must actually compress.
	if lr := Compress(a, 1e-8, 100); lr.Rank() > 40 {
		t.Fatalf("sq-exp off-diagonal block rank %d did not compress", lr.Rank())
	}
}

func TestPackedBytes(t *testing.T) {
	if PackedBytes(1200, 10) != 2*1200*10*8 {
		t.Fatal("PackedBytes formula wrong")
	}
	lr := Compress(lowRankMatrix(32, 2, 3), 1e-10, 32)
	if lr.Bytes() != 2*32*int64(lr.Rank())*8 {
		t.Fatal("Bytes() inconsistent")
	}
}

func TestTRSMMatchesDense(t *testing.T) {
	n := 20
	// SPD lower factor.
	spd := linalg.NewMatrix(n, n)
	linalg.SYRK(spd, randMatrix(n, n, 21), 1)
	for i := 0; i < n; i++ {
		spd.Set(i, i, spd.At(i, i)+float64(n))
	}
	l := spd.Clone()
	if err := linalg.POTRF(l); err != nil {
		t.Fatal(err)
	}
	a := lowRankMatrix(n, 4, 22)
	lr := Compress(a, 1e-12, n)
	TRSM(lr, l)
	// Dense reference: A * L^{-T}.
	ref := a.Clone()
	linalg.TRSMRightLowerT(ref, l)
	if e := relErr(lr.Dense(), ref); e > 1e-8 {
		t.Fatalf("TLR TRSM error %g", e)
	}
}

func TestSYRKDenseMatchesDense(t *testing.T) {
	n := 16
	a := lowRankMatrix(n, 3, 31)
	lr := Compress(a, 1e-12, n)
	d1 := randMatrix(n, n, 32)
	d2 := d1.Clone()
	SYRKDense(d1, lr, -1)
	linalg.GEMM(d2, a, a, -1, false, true)
	if e := relErr(d1, d2); e > 1e-8 {
		t.Fatalf("TLR SYRK error %g", e)
	}
}

func TestAddLRProductMatchesDense(t *testing.T) {
	n := 24
	ca := lowRankMatrix(n, 3, 41)
	aa := lowRankMatrix(n, 2, 42)
	ba := lowRankMatrix(n, 4, 43)
	c := Compress(ca, 1e-12, n)
	a := Compress(aa, 1e-12, n)
	b := Compress(ba, 1e-12, n)
	AddLRProduct(c, a, b, -1, 1e-12, n)
	// Dense reference.
	ref := ca.Clone()
	linalg.GEMM(ref, aa, ba, -1, false, true)
	if e := relErr(c.Dense(), ref); e > 1e-8 {
		t.Fatalf("TLR GEMM error %g", e)
	}
	if c.Rank() > 9 {
		t.Fatalf("recompression did not bound rank: %d", c.Rank())
	}
}

func TestAddLRProductRecompressionCapsRank(t *testing.T) {
	n := 20
	c := Compress(lowRankMatrix(n, 2, 51), 1e-12, n)
	for i := uint64(0); i < 6; i++ {
		a := Compress(lowRankMatrix(n, 2, 60+i), 1e-12, n)
		b := Compress(lowRankMatrix(n, 2, 70+i), 1e-12, n)
		AddLRProduct(c, a, b, -1, 1e-10, 5)
		if c.Rank() > 5 {
			t.Fatalf("rank cap violated: %d", c.Rank())
		}
	}
}

func TestProblemMatrixIsSPDAndSymmetric(t *testing.T) {
	p := DefaultProblem(100)
	a := p.Block(0, 0, 100, 100)
	for i := 0; i < 100; i++ {
		for j := 0; j < i; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > 1e-15 {
				t.Fatal("covariance not symmetric")
			}
		}
	}
	l := a.Clone()
	if err := linalg.POTRF(l); err != nil {
		t.Fatalf("covariance not positive definite: %v", err)
	}
}

func TestProblemEntryProperties(t *testing.T) {
	p := DefaultProblem(64)
	if v := p.Entry(5, 5); v <= 1 {
		t.Fatalf("diagonal entry %g must exceed 1 (nugget)", v)
	}
	near := p.Entry(0, 1)
	far := p.Entry(0, 63)
	if near <= far {
		t.Fatalf("covariance must decay with distance: near=%g far=%g", near, far)
	}
}

func TestOffDiagonalRankDecaysWithDistance(t *testing.T) {
	// Tiles further from the diagonal are smoother and compress to lower
	// rank — the property HiCMA's workload model relies on (§6.4).
	p := DefaultProblem(1024)
	nb := 128
	rankAt := func(tileDist int) int {
		b := p.Block(0, tileDist*nb, nb, nb)
		return Compress(b, 1e-8, nb).Rank()
	}
	r1, r4 := rankAt(1), rankAt(4)
	if r4 > r1 {
		t.Fatalf("rank grew with distance: d=1 %d, d=4 %d", r1, r4)
	}
}
