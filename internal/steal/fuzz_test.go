package steal

import (
	"bytes"
	"testing"
)

// FuzzDecodeStealRequest checks that arbitrary bytes never panic the
// request decoder and that accepted frames re-encode byte-identically.
func FuzzDecodeStealRequest(f *testing.F) {
	f.Add(EncodeRequest(Request{Epoch: 1, Max: 32}))
	f.Add([]byte{})
	f.Add(make([]byte, RequestBytes))
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := DecodeRequest(b)
		if err != nil {
			return
		}
		if r.Max == 0 {
			t.Fatal("decoder accepted a zero task budget")
		}
		if !bytes.Equal(EncodeRequest(r), b) {
			t.Fatalf("accepted frame does not re-encode identically: %x", b)
		}
	})
}

// FuzzDecodeStealReply checks that arbitrary bytes never panic the reply
// decoder and that accepted frames re-encode byte-identically (no trailing
// garbage, no negative sizes, count within protocol cap).
func FuzzDecodeStealReply(f *testing.F) {
	f.Add(EncodeReply(Reply{Epoch: 2, Tasks: []TaskFrame{
		{Class: 1, Index: 3, InputSizes: []int64{64, 0}},
	}}))
	f.Add([]byte{})
	f.Add(make([]byte, replyHdrBytes))
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := DecodeReply(b)
		if err != nil {
			return
		}
		if len(r.Tasks) > MaxTasksPerReply {
			t.Fatalf("decoder accepted %d tasks, cap is %d", len(r.Tasks), MaxTasksPerReply)
		}
		for _, tf := range r.Tasks {
			if tf.Index < 0 {
				t.Fatal("decoder accepted a negative task index")
			}
			for _, s := range tf.InputSizes {
				if s < 0 {
					t.Fatal("decoder accepted a negative input size")
				}
			}
		}
		if !bytes.Equal(EncodeReply(r), b) {
			t.Fatalf("accepted frame does not re-encode identically: %x", b)
		}
	})
}

// FuzzDecodeStealRelease checks that arbitrary bytes never panic the
// release decoder and that accepted frames re-encode byte-identically.
func FuzzDecodeStealRelease(f *testing.F) {
	f.Add(EncodeRelease(Release{Class: 1, Index: 2, Flow: 3, Epoch: 4}))
	f.Add([]byte{})
	f.Add(make([]byte, ReleaseBytes))
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := DecodeRelease(b)
		if err != nil {
			return
		}
		if r.Index < 0 {
			t.Fatal("decoder accepted a negative index")
		}
		if !bytes.Equal(EncodeRelease(r), b) {
			t.Fatalf("accepted frame does not re-encode identically: %x", b)
		}
	})
}
