package steal

import (
	"bytes"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	for _, r := range []Request{
		{Epoch: 0, Max: 1},
		{Epoch: 7, Max: 64},
		{Epoch: 1 << 20, Max: 65535},
	} {
		b := EncodeRequest(r)
		if len(b) != RequestBytes {
			t.Fatalf("encoded request is %d bytes, want %d", len(b), RequestBytes)
		}
		got, err := DecodeRequest(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", r, err)
		}
		if got != r {
			t.Fatalf("round trip: got %+v want %+v", got, r)
		}
	}
}

func TestRequestRejectsMalformed(t *testing.T) {
	good := EncodeRequest(Request{Epoch: 3, Max: 8})
	if _, err := DecodeRequest(good[:len(good)-1]); err == nil {
		t.Fatal("truncated request accepted")
	}
	if _, err := DecodeRequest(append(append([]byte(nil), good...), 0)); err == nil {
		t.Fatal("oversized request accepted")
	}
	if _, err := DecodeRequest(EncodeRequest(Request{Epoch: 3, Max: 0})); err == nil {
		t.Fatal("zero-budget request accepted")
	}
}

func TestReplyRoundTrip(t *testing.T) {
	for _, r := range []Reply{
		{Epoch: 0},
		{Epoch: 2, Tasks: []TaskFrame{{Class: 1, Index: 42}}},
		{Epoch: 5, Tasks: []TaskFrame{
			{Class: 0, Index: 0, InputSizes: []int64{128}},
			{Class: 3, Index: 9001, InputSizes: []int64{0, 4096, 17}},
		}},
	} {
		b := EncodeReply(r)
		got, err := DecodeReply(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", r, err)
		}
		if got.Epoch != r.Epoch || len(got.Tasks) != len(r.Tasks) {
			t.Fatalf("round trip: got %+v want %+v", got, r)
		}
		for i := range r.Tasks {
			w, g := r.Tasks[i], got.Tasks[i]
			if g.Class != w.Class || g.Index != w.Index || len(g.InputSizes) != len(w.InputSizes) {
				t.Fatalf("task %d: got %+v want %+v", i, g, w)
			}
			for j := range w.InputSizes {
				if g.InputSizes[j] != w.InputSizes[j] {
					t.Fatalf("task %d size %d: got %d want %d", i, j, g.InputSizes[j], w.InputSizes[j])
				}
			}
		}
	}
}

func TestReplyRejectsMalformed(t *testing.T) {
	good := EncodeReply(Reply{Epoch: 1, Tasks: []TaskFrame{
		{Class: 2, Index: 5, InputSizes: []int64{64, 32}},
	}})
	for cut := 1; cut < len(good); cut++ {
		if _, err := DecodeReply(good[:len(good)-cut]); err == nil {
			t.Fatalf("reply truncated by %d bytes accepted", cut)
		}
	}
	if _, err := DecodeReply(append(append([]byte(nil), good...), 0xFF)); err == nil {
		t.Fatal("reply with trailing byte accepted")
	}
	// Task count above the protocol cap.
	overflow := append([]byte(nil), good...)
	overflow[4], overflow[5] = 0xFF, 0xFF
	if _, err := DecodeReply(overflow); err == nil {
		t.Fatal("reply with absurd task count accepted")
	}
}

func TestReleaseRoundTrip(t *testing.T) {
	r := Release{Class: 4, Index: 77, Flow: 2, Epoch: 1}
	b := EncodeRelease(r)
	if len(b) != ReleaseBytes {
		t.Fatalf("encoded release is %d bytes, want %d", len(b), ReleaseBytes)
	}
	got, err := DecodeRelease(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("round trip: got %+v want %+v", got, r)
	}
	if _, err := DecodeRelease(b[:ReleaseBytes-1]); err == nil {
		t.Fatal("truncated release accepted")
	}
}

func TestHalf(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 9: 4, 64: 32}
	for n, want := range cases {
		if got := Half(n); got != want {
			t.Fatalf("Half(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestRotationVisitsAllPeersOnce(t *testing.T) {
	r := NewRotation(2, 5)
	var seen []int
	for {
		v, ok := r.Next(func(int) bool { return true })
		if !ok {
			break
		}
		seen = append(seen, v)
	}
	want := []int{3, 4, 0, 1}
	if len(seen) != len(want) {
		t.Fatalf("visited %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("visited %v, want %v", seen, want)
		}
	}
	if !r.Dormant() {
		t.Fatal("rotation should be dormant after a full cycle")
	}
	if _, ok := r.Next(func(int) bool { return true }); ok {
		t.Fatal("dormant rotation still yielded a victim")
	}
}

func TestRotationSkipsDeadAndResumesAfterReset(t *testing.T) {
	r := NewRotation(0, 4)
	alive := func(v int) bool { return v != 2 }
	var seen []int
	for {
		v, ok := r.Next(alive)
		if !ok {
			break
		}
		seen = append(seen, v)
	}
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 3 {
		t.Fatalf("visited %v, want [1 3]", seen)
	}
	r.Reset()
	v, ok := r.Next(alive)
	if !ok || v != 1 {
		t.Fatalf("after reset got (%d,%v), want (1,true)", v, ok)
	}
}

func TestRotationSingleRankNeverYields(t *testing.T) {
	r := NewRotation(0, 1)
	if _, ok := r.Next(func(int) bool { return true }); ok {
		t.Fatal("single-rank rotation yielded a victim")
	}
}

func TestEncodeReplyDeterministic(t *testing.T) {
	r := Reply{Epoch: 9, Tasks: []TaskFrame{{Class: 1, Index: 2, InputSizes: []int64{3}}}}
	if !bytes.Equal(EncodeReply(r), EncodeReply(r)) {
		t.Fatal("encoding is not deterministic")
	}
}
