// Package steal defines the inter-rank work-stealing protocol: the wire
// formats of the three steal messages (request, reply, release) and the
// thief-side policy helpers (victim rotation, steal-half split). The heavy
// integration — migrating ready tasks and their input flows between ranks —
// lives in internal/parsec, which owns the scheduler state; this package is
// the protocol's self-contained, fuzzable core.
//
// The shape follows the rma-async idiom: a stolen task travels as a packed
// frame naming the task and the sizes of its input flows, and the thief
// pulls the actual tiles with the runtime's existing GET DATA / put
// machinery, so data movement for stolen work is byte-identical to ordinary
// dataflow traffic. Runs with stealing disabled send none of these messages.
package steal

import (
	"encoding/binary"
	"fmt"
)

// Request asks a victim for ready tasks. Epoch is the thief's recovery
// epoch: a request that raced a restart is recognizably stale. Max bounds
// how many tasks the thief will accept in one reply.
type Request struct {
	Epoch int32
	Max   uint16
}

// RequestBytes is the encoded size of a Request.
const RequestBytes = 4 + 2

// EncodeRequest serializes a steal request.
func EncodeRequest(r Request) []byte {
	b := make([]byte, RequestBytes)
	binary.LittleEndian.PutUint32(b[0:4], uint32(r.Epoch))
	binary.LittleEndian.PutUint16(b[4:6], r.Max)
	return b
}

// DecodeRequest parses a steal request, rejecting anything but the exact
// frame: wrong length or a zero task budget is an error, never a panic
// (fuzzed).
func DecodeRequest(b []byte) (Request, error) {
	var r Request
	if len(b) != RequestBytes {
		return r, fmt.Errorf("steal: request is %d bytes, want %d", len(b), RequestBytes)
	}
	r.Epoch = int32(binary.LittleEndian.Uint32(b[0:4]))
	r.Max = binary.LittleEndian.Uint16(b[4:6])
	if r.Max == 0 {
		return r, fmt.Errorf("steal: request with zero task budget")
	}
	return r, nil
}

// TaskFrame is one migrated task in a steal reply: the task's identity plus
// the sizes of its input flows, in the taskpool's deterministic Inputs
// order. The thief recomputes the flow keys from that order; only the sizes
// (which may be data-dependent, e.g. TLR tile ranks) need the wire.
type TaskFrame struct {
	Class      int32
	Index      int64
	InputSizes []int64
}

// Reply answers a steal request with zero or more task frames. An empty
// reply is a denial: the victim had no surplus eligible work.
type Reply struct {
	Epoch int32
	Tasks []TaskFrame
}

const (
	replyHdrBytes  = 4 + 2     // epoch, task count
	frameHdrBytes  = 4 + 8 + 2 // class, index, input count
	frameSizeBytes = 8         // one input size
)

// MaxTasksPerReply bounds one reply frame; a victim never grants more in a
// single exchange, so reply sizes stay well under any AM payload cap.
const MaxTasksPerReply = 64

// EncodeReply serializes a steal reply.
func EncodeReply(r Reply) []byte {
	n := replyHdrBytes
	for _, t := range r.Tasks {
		n += frameHdrBytes + frameSizeBytes*len(t.InputSizes)
	}
	b := make([]byte, 0, n)
	b = binary.LittleEndian.AppendUint32(b, uint32(r.Epoch))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(r.Tasks)))
	for _, t := range r.Tasks {
		b = binary.LittleEndian.AppendUint32(b, uint32(t.Class))
		b = binary.LittleEndian.AppendUint64(b, uint64(t.Index))
		b = binary.LittleEndian.AppendUint16(b, uint16(len(t.InputSizes)))
		for _, s := range t.InputSizes {
			b = binary.LittleEndian.AppendUint64(b, uint64(s))
		}
	}
	return b
}

// DecodeReply parses a steal reply. Anything malformed — truncation,
// trailing bytes, a count past the frame budget, negative sizes or indices —
// is an error, never a panic (fuzzed).
func DecodeReply(b []byte) (Reply, error) {
	var r Reply
	if len(b) < replyHdrBytes {
		return r, fmt.Errorf("steal: reply truncated: %d bytes, header needs %d", len(b), replyHdrBytes)
	}
	r.Epoch = int32(binary.LittleEndian.Uint32(b[0:4]))
	count := int(binary.LittleEndian.Uint16(b[4:6]))
	if count > MaxTasksPerReply {
		return r, fmt.Errorf("steal: reply carries %d tasks, cap is %d", count, MaxTasksPerReply)
	}
	off := replyHdrBytes
	r.Tasks = make([]TaskFrame, 0, count)
	for i := 0; i < count; i++ {
		if len(b)-off < frameHdrBytes {
			return r, fmt.Errorf("steal: reply task %d truncated", i)
		}
		var t TaskFrame
		t.Class = int32(binary.LittleEndian.Uint32(b[off : off+4]))
		t.Index = int64(binary.LittleEndian.Uint64(b[off+4 : off+12]))
		nin := int(binary.LittleEndian.Uint16(b[off+12 : off+14]))
		off += frameHdrBytes
		if t.Index < 0 {
			return r, fmt.Errorf("steal: reply task %d has negative index %d", i, t.Index)
		}
		if nin*frameSizeBytes > len(b)-off {
			return r, fmt.Errorf("steal: reply task %d input sizes truncated", i)
		}
		if nin > 0 {
			t.InputSizes = make([]int64, nin)
			for j := range t.InputSizes {
				s := int64(binary.LittleEndian.Uint64(b[off : off+8]))
				off += 8
				if s < 0 {
					return r, fmt.Errorf("steal: reply task %d input %d has negative size %d", i, j, s)
				}
				t.InputSizes[j] = s
			}
		}
		r.Tasks = append(r.Tasks, t)
	}
	if off != len(b) {
		return r, fmt.Errorf("steal: reply has %d trailing bytes", len(b)-off)
	}
	return r, nil
}

// Release tells the victim that the thief will not fetch one pinned input
// flow (it already holds, or is already fetching, its own copy), so the
// victim can retire the pin it took at grant time.
type Release struct {
	Class int32 // producing task
	Index int64
	Flow  int32
	Epoch int32
}

// ReleaseBytes is the encoded size of a Release.
const ReleaseBytes = 4 + 8 + 4 + 4

// EncodeRelease serializes a pin release.
func EncodeRelease(r Release) []byte {
	b := make([]byte, ReleaseBytes)
	binary.LittleEndian.PutUint32(b[0:4], uint32(r.Class))
	binary.LittleEndian.PutUint64(b[4:12], uint64(r.Index))
	binary.LittleEndian.PutUint32(b[12:16], uint32(r.Flow))
	binary.LittleEndian.PutUint32(b[16:20], uint32(r.Epoch))
	return b
}

// DecodeRelease parses a pin release; exact length only (fuzzed).
func DecodeRelease(b []byte) (Release, error) {
	var r Release
	if len(b) != ReleaseBytes {
		return r, fmt.Errorf("steal: release is %d bytes, want %d", len(b), ReleaseBytes)
	}
	r.Class = int32(binary.LittleEndian.Uint32(b[0:4]))
	r.Index = int64(binary.LittleEndian.Uint64(b[4:12]))
	r.Flow = int32(binary.LittleEndian.Uint32(b[12:16]))
	r.Epoch = int32(binary.LittleEndian.Uint32(b[16:20]))
	if r.Index < 0 {
		return r, fmt.Errorf("steal: release with negative index %d", r.Index)
	}
	return r, nil
}

// Half is the steal-half policy: how many of n ready tasks a victim grants.
// The victim always keeps at least half (rounded up), so a loaded rank sheds
// surplus without starving itself; below two tasks nothing moves.
func Half(n int) int {
	if n < 2 {
		return 0
	}
	return n / 2
}

// Rotation is a thief's victim iterator: candidates are visited in ring
// order starting after the thief's own rank, and the rotation goes dormant
// after a full unsuccessful cycle. Re-arm (Reset) when new local work
// appears or a probe succeeds — never on probe traffic itself, which is what
// keeps two idle ranks from probing each other forever.
type Rotation struct {
	self, size int
	next       int
	left       int
}

// NewRotation builds a rotation for self among size ranks.
func NewRotation(self, size int) *Rotation {
	r := &Rotation{self: self, size: size}
	r.Reset()
	return r
}

// Reset re-arms the rotation with a full cycle budget, continuing from the
// current cursor (a victim that just fed us is retried before its peers).
func (r *Rotation) Reset() {
	if r.next == 0 && r.left == 0 {
		r.next = (r.self + 1) % r.size
	}
	r.left = r.size - 1
}

// Next returns the next victim candidate for which alive reports true, or
// ok=false when the cycle budget is exhausted (dormant until Reset).
func (r *Rotation) Next(alive func(int) bool) (int, bool) {
	for r.left > 0 {
		v := r.next
		r.next = (r.next + 1) % r.size
		if r.next == r.self {
			r.next = (r.next + 1) % r.size
		}
		r.left--
		if v != r.self && alive(v) {
			return v, true
		}
	}
	return 0, false
}

// Dormant reports whether the rotation has exhausted its cycle budget.
func (r *Rotation) Dormant() bool { return r.left <= 0 }
