package mpi

import (
	"amtlci/internal/buf"
	"amtlci/internal/fabric"
	"amtlci/internal/sim"
)

// clonePayload snapshots a real payload so the sender may reuse its buffer
// (eager semantics); virtual payloads need no snapshot.
func clonePayload(b buf.Buf) buf.Buf {
	if b.IsVirtual() {
		return b
	}
	c := make([]byte, b.Size)
	copy(c, b.Bytes)
	return buf.FromBytes(c)
}

// Isend starts a nonblocking send of b to dst with the given tag and returns
// its request. Eager-sized payloads are buffered and the request completes
// immediately (the wire transfer proceeds in the background); larger
// payloads follow the rendezvous protocol and complete when the NIC has
// drained the source buffer. The caller charges Config.SendCost.
func (r *Rank) Isend(b buf.Buf, dst, tag int) *Request {
	q := &Request{r: r, kind: reqSend, active: true, dst: dst, tag: tag, size: b.Size, b: b}
	r.sent.Inc()
	if b.Size <= r.w.cfg.EagerThreshold {
		// Eager: a copy of the user buffer goes on the wire now, so the
		// send is locally complete.
		r.w.fab.Send(&fabric.Message{
			Src: r.me, Dst: dst, Size: b.Size + r.w.cfg.HeaderBytes,
			Meta: &wire{kind: wireEager, src: r.me, tag: tag, size: b.Size, payload: clonePayload(b)},
		})
		q.done = true
		return q
	}
	// Rendezvous: advertise with an RTS; data moves when the target matches.
	r.isendsInFlight.Add(1)
	r.w.fab.Send(&fabric.Message{
		Src: r.me, Dst: dst, Size: r.w.cfg.CtrlBytes,
		Meta: &wire{kind: wireRTS, src: r.me, tag: tag, size: b.Size, sreq: q},
	})
	return q
}

// Send is the blocking send used for active messages. PaRSEC only ever
// blocks on eager-sized messages (§4.2.1: "Active message sizes typically
// fall within the range where MPI implementations will use an eager
// protocol"), so Send requires an eager-sized payload and completes
// immediately; a rendezvous-sized payload panics to surface the misuse,
// since truly blocking would deadlock a polling-based caller.
func (r *Rank) Send(b buf.Buf, dst, tag int) {
	if b.Size > r.w.cfg.EagerThreshold {
		panic("mpi: blocking Send beyond the eager threshold")
	}
	q := r.Isend(b, dst, tag)
	q.active = false // fire-and-forget; nothing to collect
}

// Irecv posts a nonblocking receive into b matching (src, tag); src may be
// AnySource. The caller charges Config.PostCost. If a matching unexpected
// message is already queued it is consumed immediately.
func (r *Rank) Irecv(b buf.Buf, src, tag int) *Request {
	q := &Request{r: r, kind: reqRecv, active: true, src: src, tag: tag, b: b}
	r.matchOrPost(q)
	return q
}

// RecvInit creates an inactive persistent receive (MPI_Recv_init). Start
// activates it.
func (r *Rank) RecvInit(b buf.Buf, src, tag int) *Request {
	return &Request{r: r, kind: reqRecv, persistent: true, src: src, tag: tag, b: b}
}

// Start activates a persistent request (MPI_Start). The caller charges
// Config.PostCost. Starting an active request or a non-persistent request
// panics.
func (r *Rank) Start(q *Request) {
	if q.kind != reqRecv || !q.persistent {
		panic("mpi: Start supports persistent receives only")
	}
	if q.active {
		panic("mpi: Start on an already-active request")
	}
	q.done = false
	q.awaitingData = false
	q.Status = Status{}
	r.matchOrPost(q)
}

func (r *Rank) matchOrPost(q *Request) {
	q.active = true
	for i, u := range r.unexpected {
		if !match(q, u.src, u.tag) {
			continue
		}
		r.unexpected = append(r.unexpected[:i], r.unexpected[i+1:]...)
		r.unexpectedHits.Inc()
		r.consume(q, u)
		return
	}
	r.posted = append(r.posted, q)
}

// consume applies a matched arrival to a receive request.
func (r *Rank) consume(q *Request, u *wire) {
	switch u.kind {
	case wireEager:
		buf.Copy(q.b, u.payload)
		q.Status = Status{Source: u.src, Tag: u.tag, Size: u.size}
		q.done = true
	case wireRTS:
		// Clear the origin to send: the data message will carry q.
		q.awaitingData = true
		r.w.fab.Send(&fabric.Message{
			Src: r.me, Dst: u.src, Size: r.w.cfg.CtrlBytes,
			Meta: &wire{kind: wireCTS, src: r.me, tag: u.tag, size: u.size, sreq: u.sreq, rreq: q},
		})
	default:
		panic("mpi: unexpected wire kind in consume")
	}
}

// onArrival is the fabric delivery handler: it stages traffic for the next
// progress pass, modeling a NIC writing completion entries that no software
// has looked at yet.
func (r *Rank) onArrival(m *fabric.Message) {
	w := m.Meta.(*wire)
	if w.kind == wireRmaPut {
		// Passive-target RDMA: the write happens without software at the
		// target; only the flush ack goes back.
		r.handleRmaPut(w)
		return
	}
	r.stage(w)
}

func (r *Rank) stage(w *wire) {
	wasEmpty := len(r.staged) == 0
	r.staged = append(r.staged, w)
	if wasEmpty {
		r.notify()
	}
}

// ProgressCost returns the CPU cost of draining the currently staged
// arrivals: matching for every message, ordering enforcement when
// overtaking is disallowed, and eager payload copies.
func (r *Rank) ProgressCost() sim.Duration {
	var d sim.Duration
	scan := sim.Duration(len(r.posted)+len(r.unexpected)) * r.w.cfg.ScanPerEntry
	for _, w := range r.staged {
		switch w.kind {
		case wireSendDone, wireRmaAck:
			d += r.w.cfg.TestPerReq // trivial CQ entry
			continue
		case wireEager:
			d += r.w.cfg.MatchCost + scan + r.w.cfg.copyCost(w.size)
		default:
			d += r.w.cfg.MatchCost + scan
		}
		if !r.w.cfg.AllowOvertaking {
			d += r.w.cfg.OrderCost
		}
	}
	return d
}

// StagedWork reports whether a progress pass has anything to do.
func (r *Rank) StagedWork() bool { return len(r.staged) > 0 }

// Progress drains staged arrivals: matches eager messages and RTSes against
// posted receives, queues the unmatched as unexpected, reacts to CTSes by
// launching rendezvous data, and completes requests whose data arrived.
// Callers charge ProgressCost (sampled immediately before the call). Real
// MPI implementations only progress the wire inside MPI calls; this method
// is the library-side half of that behavior.
func (r *Rank) Progress() {
	staged := r.staged
	r.staged = nil
	for _, w := range staged {
		switch w.kind {
		case wireEager, wireRTS:
			if q := r.findPosted(w.src, w.tag); q != nil {
				r.consume(q, w)
			} else {
				r.unexpected = append(r.unexpected, w)
			}
			if w.kind == wireEager {
				r.received.Inc()
			}
		case wireCTS:
			// We are the rendezvous origin: stream the payload.
			sreq := w.sreq
			r.w.fab.Send(&fabric.Message{
				Src: r.me, Dst: w.src, Size: sreq.size + r.w.cfg.HeaderBytes,
				Meta: &wire{kind: wireData, src: r.me, tag: w.tag, size: sreq.size, payload: sreq.b, rreq: w.rreq},
				OnTx: func() {
					// Source buffer drained: stage a local completion so the
					// next Testsome observes it.
					r.stage(&wire{kind: wireSendDone, sreq: sreq})
				},
			})
		case wireData:
			q := w.rreq
			buf.Copy(q.b, w.payload)
			q.Status = Status{Source: w.src, Tag: w.tag, Size: w.size}
			q.done = true
			q.awaitingData = false
			r.received.Inc()
		case wireSendDone:
			w.sreq.done = true
			r.isendsInFlight.Add(-1)
		case wireRmaAck:
			// Flush completion at the origin: run the put's continuation.
			if w.rmaOp.done != nil {
				w.rmaOp.done()
			}
		}
	}
}

func (r *Rank) findPosted(src, tag int) *Request {
	for i, q := range r.posted {
		if q.done || q.awaitingData {
			continue
		}
		if match(q, src, tag) {
			r.posted = append(r.posted[:i], r.posted[i+1:]...)
			return q
		}
	}
	return nil
}

func match(q *Request, src, tag int) bool {
	return (q.src == AnySource || q.src == src) && q.tag == tag
}

// Testsome runs a progress pass and then collects every completed request
// in reqs, returning their indices. Persistent requests are deactivated
// until re-Started; others are permanently deactivated. nil entries are
// skipped, following the MPI convention for inactive slots. Callers charge
// ProgressCost() + TestCost(len(reqs)).
func (r *Rank) Testsome(reqs []*Request) []int {
	r.Progress()
	var out []int
	for i, q := range reqs {
		if q == nil || !q.active || !q.done {
			continue
		}
		q.active = false
		out = append(out, i)
	}
	return out
}

// LockedSubmit routes a multithreaded MPI call through the library's global
// lock: fn runs after cost plus any queueing delay behind other concurrent
// callers. This is the MPI_THREAD_MULTIPLE serialization the paper cites
// ([24]) as a reason PaRSEC funnels communication through one thread.
func (r *Rank) LockedSubmit(cost sim.Duration, fn func()) {
	r.lock.Submit(r.w.cfg.LockHold+cost, fn)
}

// LockQueue exposes the current depth of the global-lock queue (for tests
// and contention experiments).
func (r *Rank) LockQueue() int { return r.lock.QueueLen() }
