package mpi

import (
	"fmt"

	"amtlci/internal/buf"
	"amtlci/internal/fabric"
	"amtlci/internal/sim"
)

// This file implements the MPI RMA subset that §4.2.2 leaves as future work
// for the PaRSEC put: a single dynamic window per rank (MPI_Win_create_dynamic)
// with frequent attach/detach, MPI_Put, and MPI_Win_flush semantics.
//
// Two properties the paper calls out are modeled explicitly:
//
//   - dynamic-window attach/detach "are known to have performance
//     limitations under most circumstances" [25]: every attach pays
//     Config.AttachCost plus the size-dependent registration cost, and every
//     detach pays Config.DetachCost;
//   - "the PaRSEC put interface requires remote completion notifications,
//     which is not supported by standard MPI RMA": RmaPut only reports
//     *local* flush completion; the backend must send its own notification
//     message afterwards.
//
// The data transfer itself is true passive-target RDMA: the payload lands in
// the attached region at wire delivery with no target-CPU involvement, and
// the flush acknowledgment returns on the control lane.

// wireRmaPut and wireRmaAck extend the wire protocol.
const (
	wireRmaPut wireKind = 100 + iota
	wireRmaAck
)

type rmaOp struct {
	done func()
}

// WinAttach exposes b for one-sided access under id (MPI_Win_attach on the
// rank's dynamic window). The caller charges AttachCost(b.Size). Duplicate
// ids panic.
func (r *Rank) WinAttach(id uint64, b buf.Buf) {
	if r.rmaMem == nil {
		r.rmaMem = make(map[uint64]buf.Buf)
	}
	if _, dup := r.rmaMem[id]; dup {
		panic(fmt.Sprintf("mpi: window region %d attached twice at rank %d", id, r.me))
	}
	r.rmaMem[id] = b
}

// WinDetach withdraws a region (MPI_Win_detach). The caller charges
// Config.DetachCost. Unknown ids panic.
func (r *Rank) WinDetach(id uint64) {
	if _, ok := r.rmaMem[id]; !ok {
		panic(fmt.Sprintf("mpi: detaching unknown window region %d at rank %d", id, r.me))
	}
	delete(r.rmaMem, id)
}

// AttachCost prices one dynamic-window attach: the window synchronization
// plus page registration for the region.
func (c Config) AttachCost(size int64) sim.Duration {
	return c.WinAttach + c.rndvCost(size)
}

// RmaPut writes local into the region attached under id at rank dst, at
// byte offset off, and calls done when an MPI_Win_flush covering the put
// would return (data delivered and acknowledged). The caller charges
// Config.PostCost + rndvCost(local.Size) for the origin-side work.
func (r *Rank) RmaPut(dst int, id uint64, off int64, local buf.Buf, done func()) {
	op := &rmaOp{done: done}
	r.w.fab.Send(&fabric.Message{
		Src: r.me, Dst: dst, Size: local.Size + r.w.cfg.HeaderBytes,
		Meta: &wire{kind: wireRmaPut, src: r.me, size: local.Size,
			payload: local, rmaID: id, rmaOff: off, rmaOp: op},
	})
}

// handleRmaPut performs the passive-target write at delivery time (the NIC
// DMAs into registered memory; no target software runs) and returns the
// flush acknowledgment on the control lane.
func (r *Rank) handleRmaPut(w *wire) {
	target, ok := r.rmaMem[w.rmaID]
	if !ok {
		panic(fmt.Sprintf("mpi: RMA put to unattached region %d at rank %d", w.rmaID, r.me))
	}
	buf.Copy(target.Slice(w.rmaOff, w.size), w.payload)
	r.received.Inc()
	r.w.fab.Send(&fabric.Message{
		Src: r.me, Dst: w.src, Size: r.w.cfg.CtrlBytes,
		Meta: &wire{kind: wireRmaAck, src: r.me, rmaOp: w.rmaOp},
	})
}
