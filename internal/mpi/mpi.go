// Package mpi implements the message-passing library that serves as the
// paper's baseline communication layer (Section 4.2 builds the PaRSEC MPI
// backend on it). It is a faithful functional subset of MPI point-to-point
// semantics on top of the simulated fabric:
//
//   - nonblocking two-sided communication (Isend/Irecv) with tag and
//     ANY_SOURCE matching, an unexpected-message queue, and eager versus
//     rendezvous (RTS/CTS) protocols selected by message size;
//   - persistent receive requests (RecvInit/Start), which the PaRSEC MPI
//     backend uses for active messages (five per registered tag);
//   - Testsome over a request array, with a CPU cost model that grows with
//     the array length — the polling overhead the paper identifies as an MPI
//     scaling bottleneck;
//   - the progress-runs-inside-calls behavior of real MPI implementations:
//     arrived wire traffic is only matched, copied, and completed when some
//     MPI call executes progress. A communication thread stuck in a long
//     callback therefore delays rendezvous handshakes, exactly as in §4.3;
//   - the mpi_assert_allow_overtaking Info key (§4.2.2): strict per-pair
//     ordering enforcement costs a little extra per message and can be
//     switched off;
//   - a global lock modeling MPI_THREAD_MULTIPLE contention (§4.3, [24]):
//     calls from worker threads serialize through it.
//
// CPU cost accounting convention: the library mutates state immediately and
// exposes cost estimators (SendCost, PostCost, ProgressAndTestCost). Callers
// (the communication-engine backends) charge those costs on their thread
// Procs and invoke the state transitions from the charged item's completion,
// so all visible effects occur at correctly accounted virtual times.
package mpi

import (
	"amtlci/internal/buf"
	"amtlci/internal/fabric"
	"amtlci/internal/metrics"
	"amtlci/internal/sim"
)

// AnySource matches a receive against senders of any rank.
const AnySource = -1

// Config holds the software cost model and protocol parameters.
type Config struct {
	// EagerThreshold is the largest payload sent eagerly (copied through
	// library buffers); larger messages use the RTS/CTS rendezvous.
	EagerThreshold int64
	// PostCost is the CPU cost of posting one Isend/Irecv/Start.
	PostCost sim.Duration
	// TestBase and TestPerReq model MPI_Testsome: base call overhead plus a
	// per-inspected-request scan cost.
	TestBase   sim.Duration
	TestPerReq sim.Duration
	// MatchCost is the per-arrival cost of matching one staged wire message
	// against the posted-receive list during progress; ScanPerEntry adds a
	// linear term in the current posted + unexpected queue lengths, the
	// classic MPI matching penalty under bursty many-message load.
	MatchCost    sim.Duration
	ScanPerEntry sim.Duration
	// OrderCost is an extra per-arrival matching cost paid when strict MPI
	// message ordering is enforced (AllowOvertaking disables it).
	OrderCost sim.Duration
	// CopyPsPerByte is the memory-copy cost in picoseconds per byte; eager
	// messages are copied once on each side.
	CopyPsPerByte int64
	// HeaderBytes is the wire framing added to every payload-bearing
	// message; CtrlBytes is the size of RTS/CTS control messages.
	HeaderBytes int64
	CtrlBytes   int64
	// RndvCost is the per-message software cost of the rendezvous path on
	// each side: registration-cache lookup and RNDV protocol processing.
	// RndvPerMiB adds the size-dependent part — page pinning for memory
	// registration. PaRSEC's fetch buffers are allocated dynamically per
	// transfer, so registrations rarely hit the cache (§6.1.2 notes the UCX
	// registration-cache trouble this causes: the authors had to cap
	// UCX_IB_RCACHE_MAX_REGIONS to avoid crashes).
	RndvCost   sim.Duration
	RndvPerMiB sim.Duration
	// WinAttach is the fixed cost of one dynamic-window attach (RMA
	// extension; see rma.go); DetachCost prices the detach.
	WinAttach  sim.Duration
	DetachCost sim.Duration
	// LockHold is how long one multithreaded call occupies the library's
	// global lock.
	LockHold sim.Duration
	// AllowOvertaking corresponds to the mpi_assert_allow_overtaking Info
	// key; PaRSEC sets it because it does not need MPI ordering.
	AllowOvertaking bool

	// Metrics is the registry every rank registers its instruments in
	// (send/receive counters, unexpected-queue depth, rendezvous sends in
	// flight, lock-queue depth). Nil gets a private registry; stack.Build
	// shares one across every layer.
	Metrics *metrics.Registry
}

// DefaultConfig returns a cost model calibrated against Open MPI/UCX-class
// software overheads (Table 1 stack) — a few hundred nanoseconds per posted
// operation and microsecond-scale polling when the request array is long.
func DefaultConfig() Config {
	return Config{
		EagerThreshold: 8 << 10,
		PostCost:       600 * sim.Nanosecond,
		TestBase:       450 * sim.Nanosecond,
		TestPerReq:     60 * sim.Nanosecond,
		MatchCost:      800 * sim.Nanosecond,
		ScanPerEntry:   40 * sim.Nanosecond,
		OrderCost:      60 * sim.Nanosecond,
		CopyPsPerByte:  50, // ~20 GB/s memcpy
		HeaderBytes:    64,
		CtrlBytes:      64,
		RndvCost:       5 * sim.Microsecond,
		RndvPerMiB:     30 * sim.Microsecond,
		WinAttach:      12 * sim.Microsecond,
		DetachCost:     4 * sim.Microsecond,
		LockHold:       350 * sim.Nanosecond,
	}
}

// copyCost returns the one-sided memcpy cost for n bytes.
func (c Config) copyCost(n int64) sim.Duration {
	if n <= 0 {
		return 0
	}
	return sim.Duration(n * c.CopyPsPerByte)
}

// SendCost is the caller-side CPU cost of initiating a send of n bytes:
// posting plus, for eager messages, the library-buffer copy, or, for
// rendezvous messages, the registration/protocol cost.
func (c Config) SendCost(n int64) sim.Duration {
	if n <= c.EagerThreshold {
		return c.PostCost + c.copyCost(n)
	}
	return c.PostCost + c.rndvCost(n)
}

// RecvCost is the caller-side CPU cost of posting a receive of n bytes.
func (c Config) RecvCost(n int64) sim.Duration {
	if n <= c.EagerThreshold {
		return c.PostCost
	}
	return c.PostCost + c.rndvCost(n)
}

func (c Config) rndvCost(n int64) sim.Duration {
	return c.RndvCost + sim.Duration(float64(c.RndvPerMiB)*float64(n)/(1<<20))
}

// TestCost is the CPU cost of scanning nreq requests in Testsome,
// excluding progress work (see Rank.ProgressCost).
func (c Config) TestCost(nreq int) sim.Duration {
	return c.TestBase + sim.Duration(nreq)*c.TestPerReq
}

// World is the set of communicating ranks (MPI_COMM_WORLD).
type World struct {
	dom   sim.Domain
	fab   fabric.Network
	cfg   Config
	ranks []*Rank
	reg   *metrics.Registry
}

// NewWorld attaches one Rank per fabric port and installs delivery handlers.
// fab may be the raw fabric or a reliability layer; when it can report peer
// failures (fabric.ErrNotifier), those are forwarded to each rank's error
// handler.
func NewWorld(dom sim.Domain, fab fabric.Network, cfg Config) *World {
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.New()
	}
	w := &World{dom: dom, fab: fab, cfg: cfg, reg: reg}
	w.ranks = make([]*Rank, fab.Ranks())
	for i := range w.ranks {
		r := &Rank{
			w: w, me: i, lock: sim.NewProc(dom.RankEngine(i)),
			sent:           reg.Counter("mpi", "sent", i),
			received:       reg.Counter("mpi", "received", i),
			unexpectedHits: reg.Counter("mpi", "unexpected_hits", i),
			isendsInFlight: reg.Gauge("mpi", "isends_in_flight", i),
		}
		reg.Probe("mpi", "unexpected_depth", i, false, func() float64 { return float64(len(r.unexpected)) })
		reg.Probe("mpi", "posted_depth", i, false, func() float64 { return float64(len(r.posted)) })
		reg.Probe("mpi", "lock_queue_depth", i, false, func() float64 { return float64(r.lock.QueueLen()) })
		w.ranks[i] = r
		fab.SetHandler(i, r.onArrival)
	}
	if en, ok := fab.(fabric.ErrNotifier); ok {
		for i := range w.ranks {
			r := w.ranks[i]
			en.SetErrHandler(i, r.deliverErr)
		}
	}
	return w
}

// Rank returns the per-rank MPI context.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Config returns the world's cost model.
func (w *World) Config() Config { return w.cfg }

// Metrics returns the registry the world's instruments live in.
func (w *World) Metrics() *metrics.Registry { return w.reg }

// Rank is one process's view of the library. All methods must run on the
// owning simulation engine's goroutine.
type Rank struct {
	w    *World
	me   int
	lock *sim.Proc // MPI_THREAD_MULTIPLE global lock

	staged     []*wire    // arrived, awaiting progress
	posted     []*Request // active receive requests, post order
	unexpected []*wire    // progressed but unmatched arrivals
	rmaMem     map[uint64]buf.Buf

	wake  func()
	errFn func(peer int, err error)

	// Counters for experiments and tests (metrics registry, layer "mpi").
	sent, received, unexpectedHits *metrics.Counter
	// isendsInFlight tracks rendezvous sends posted but not yet locally
	// complete (eager sends complete at post time and never appear here).
	isendsInFlight *metrics.Gauge
}

// Sent counts messages posted by this rank.
func (r *Rank) Sent() uint64 { return r.sent.Value() }

// Received counts payload deliveries at this rank.
func (r *Rank) Received() uint64 { return r.received.Value() }

// UnexpectedHits counts receives satisfied from the unexpected-message
// queue rather than by a fresh arrival.
func (r *Rank) UnexpectedHits() uint64 { return r.unexpectedHits.Value() }

// ID returns this rank's index.
func (r *Rank) ID() int { return r.me }

// SetWake installs a callback invoked whenever new library-level work
// appears (a wire arrival or a local send completion). Backends use it to
// schedule a progress pass instead of busy-polling.
func (r *Rank) SetWake(fn func()) { r.wake = fn }

func (r *Rank) notify() {
	if r.wake != nil {
		r.wake()
	}
}

// SetErrHandler installs the callback run when the transport declares a peer
// unreachable. Without one, the failure panics: an unnoticed dead peer
// otherwise turns into a silent hang.
func (r *Rank) SetErrHandler(fn func(peer int, err error)) { r.errFn = fn }

func (r *Rank) deliverErr(peer int, err error) {
	if r.errFn == nil {
		panic(err)
	}
	r.errFn(peer, err)
}

type wireKind int8

const (
	wireEager wireKind = iota
	wireRTS
	wireCTS
	wireData
	wireSendDone // local pseudo-arrival: rendezvous send buffer released
)

// wire is the header attached to every fabric message.
type wire struct {
	kind    wireKind
	src     int
	tag     int
	size    int64 // payload size (not counting framing)
	payload buf.Buf
	sreq    *Request // rendezvous: originating send request
	rreq    *Request // rendezvous: matched receive request

	// RMA extension fields (rma.go).
	rmaID  uint64
	rmaOff int64
	rmaOp  *rmaOp
}

type reqKind int8

const (
	reqSend reqKind = iota
	reqRecv
)

// Status describes a completed receive.
type Status struct {
	Source int
	Tag    int
	Size   int64
}

// Request is a communication request handle, analogous to MPI_Request.
type Request struct {
	r          *Rank
	kind       reqKind
	persistent bool
	active     bool
	done       bool

	// Matching fields. For receives, src may be AnySource.
	src, tag int
	b        buf.Buf

	// Send-side fields.
	dst  int
	size int64

	// Rendezvous receive: set once an RTS has been matched.
	awaitingData bool

	Status Status
}

// Active reports whether the request has been started and not yet collected.
func (q *Request) Active() bool { return q.active }

// Done reports whether the operation has completed (it may still need to be
// collected by Testsome).
func (q *Request) Done() bool { return q.done }
