package mpi

import (
	"testing"
	"testing/quick"

	"amtlci/internal/buf"
	"amtlci/internal/fabric"
	"amtlci/internal/sim"
)

// harness builds an engine, quiet fabric, and MPI world with n ranks.
func harness(n int) (*sim.Engine, *World) {
	eng := sim.NewEngine()
	fc := fabric.DefaultConfig()
	fc.Jitter = 0
	fab, err := fabric.New(eng, n, fc)
	if err != nil {
		panic(err)
	}
	return eng, NewWorld(eng, fab, DefaultConfig())
}

// pump keeps running progress at both ranks whenever work appears, so tests
// can focus on semantics rather than scheduling. It mimics a comm thread
// that polls promptly.
func pump(eng *sim.Engine, w *World) {
	for i := 0; i < w.Size(); i++ {
		r := w.Rank(i)
		r.SetWake(func() {
			eng.After(10*sim.Nanosecond, r.Progress)
		})
	}
}

func TestEagerSendRecvDeliversPayload(t *testing.T) {
	eng, w := harness(2)
	pump(eng, w)
	src, dst := w.Rank(0), w.Rank(1)

	msg := []byte("hello, parsec")
	rbuf := make([]byte, len(msg))
	rq := dst.Irecv(buf.FromBytes(rbuf), 0, 7)
	sq := src.Isend(buf.FromBytes(msg), 1, 7)
	eng.Run()

	if !sq.Done() || !rq.Done() {
		t.Fatalf("send done=%v recv done=%v", sq.Done(), rq.Done())
	}
	if string(rbuf) != string(msg) {
		t.Fatalf("payload = %q", rbuf)
	}
	if rq.Status.Source != 0 || rq.Status.Tag != 7 || rq.Status.Size != int64(len(msg)) {
		t.Fatalf("status = %+v", rq.Status)
	}
}

func TestEagerSenderMayReuseBufferImmediately(t *testing.T) {
	eng, w := harness(2)
	pump(eng, w)
	msg := []byte("original")
	rbuf := make([]byte, len(msg))
	w.Rank(1).Irecv(buf.FromBytes(rbuf), AnySource, 1)
	w.Rank(0).Isend(buf.FromBytes(msg), 1, 1)
	copy(msg, "CLOBBER!") // eager copy must protect the wire data
	eng.Run()
	if string(rbuf) != "original" {
		t.Fatalf("receiver saw clobbered buffer: %q", rbuf)
	}
}

func TestUnexpectedEagerMessageMatchedByLaterRecv(t *testing.T) {
	eng, w := harness(2)
	pump(eng, w)
	msg := []byte{9, 9, 9}
	w.Rank(0).Send(buf.FromBytes(msg), 1, 3)
	// Let it arrive and become unexpected.
	eng.Run()
	rbuf := make([]byte, 3)
	rq := w.Rank(1).Irecv(buf.FromBytes(rbuf), 0, 3)
	eng.Run()
	if !rq.Done() || rbuf[0] != 9 {
		t.Fatalf("unexpected-path recv failed: done=%v buf=%v", rq.Done(), rbuf)
	}
	if w.Rank(1).UnexpectedHits() != 1 {
		t.Fatalf("UnexpectedHits = %d, want 1", w.Rank(1).UnexpectedHits())
	}
}

func TestRendezvousTransfersLargePayload(t *testing.T) {
	eng, w := harness(2)
	pump(eng, w)
	n := int(w.Config().EagerThreshold) * 4
	msg := make([]byte, n)
	for i := range msg {
		msg[i] = byte(i * 7)
	}
	rbuf := make([]byte, n)
	rq := w.Rank(1).Irecv(buf.FromBytes(rbuf), 0, 5)
	sq := w.Rank(0).Isend(buf.FromBytes(msg), 1, 5)
	eng.Run()
	if !sq.Done() || !rq.Done() {
		t.Fatalf("rendezvous incomplete: send=%v recv=%v", sq.Done(), rq.Done())
	}
	for i := range msg {
		if rbuf[i] != msg[i] {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
}

func TestRendezvousRTSWaitsForRecv(t *testing.T) {
	eng, w := harness(2)
	pump(eng, w)
	n := int(w.Config().EagerThreshold) * 2
	sq := w.Rank(0).Isend(buf.Virtual(int64(n)), 1, 5)
	eng.Run()
	if sq.Done() {
		t.Fatal("rendezvous send completed with no matching receive")
	}
	rq := w.Rank(1).Irecv(buf.Virtual(int64(n)), 0, 5)
	eng.Run()
	if !sq.Done() || !rq.Done() {
		t.Fatal("rendezvous did not complete after receive was posted")
	}
}

func TestRendezvousLatencyQuantizedByProgress(t *testing.T) {
	// If the receiver's progress is delayed (e.g. a long AM callback on the
	// comm thread), the RTS sits unanswered and end-to-end completion slips
	// by about the same delay. This is the §4.3 effect.
	measure := func(progressDelay sim.Duration) sim.Duration {
		eng, w := harness(2)
		// Rank 0 pumps promptly; rank 1 is slow to progress.
		r0, r1 := w.Rank(0), w.Rank(1)
		r0.SetWake(func() { eng.After(10*sim.Nanosecond, r0.Progress) })
		r1.SetWake(func() { eng.After(progressDelay, r1.Progress) })
		n := int64(1 << 20)
		rq := r1.Irecv(buf.Virtual(n), 0, 2)
		r0.Isend(buf.Virtual(n), 1, 2)
		var doneAt sim.Time
		check := func() {}
		check = func() {
			if rq.Done() {
				doneAt = eng.Now()
				return
			}
			eng.After(100*sim.Nanosecond, check)
		}
		eng.After(0, check)
		eng.Run()
		return sim.Duration(doneAt)
	}
	fast := measure(10 * sim.Nanosecond)
	slow := measure(50 * sim.Microsecond)
	if slow < fast+40*sim.Microsecond {
		t.Fatalf("delayed progress did not delay rendezvous: fast=%v slow=%v", fast, slow)
	}
}

func TestAnySourceMatchesAllSenders(t *testing.T) {
	eng, w := harness(4)
	pump(eng, w)
	got := 0
	var reqs []*Request
	for i := 0; i < 3; i++ {
		reqs = append(reqs, w.Rank(3).Irecv(buf.Virtual(8), AnySource, 1))
	}
	for src := 0; src < 3; src++ {
		w.Rank(src).Send(buf.Virtual(8), 3, 1)
	}
	eng.Run()
	seen := map[int]bool{}
	for _, q := range reqs {
		if q.Done() {
			got++
			seen[q.Status.Source] = true
		}
	}
	if got != 3 || len(seen) != 3 {
		t.Fatalf("got %d completions from %d distinct sources", got, len(seen))
	}
}

func TestTagSelectivity(t *testing.T) {
	eng, w := harness(2)
	pump(eng, w)
	rq5 := w.Rank(1).Irecv(buf.Virtual(8), 0, 5)
	rq6 := w.Rank(1).Irecv(buf.Virtual(8), 0, 6)
	w.Rank(0).Send(buf.Virtual(8), 1, 6)
	eng.Run()
	if rq5.Done() {
		t.Fatal("tag-5 receive stole a tag-6 message")
	}
	if !rq6.Done() {
		t.Fatal("tag-6 receive did not complete")
	}
}

func TestPersistentRecvLifecycle(t *testing.T) {
	eng, w := harness(2)
	pump(eng, w)
	r1 := w.Rank(1)
	q := r1.RecvInit(buf.Virtual(16), AnySource, 9)
	if q.Active() {
		t.Fatal("RecvInit must not activate")
	}
	reqs := []*Request{q}
	for round := 0; round < 3; round++ {
		r1.Start(q)
		w.Rank(0).Send(buf.Virtual(16), 1, 9)
		eng.Run()
		idx := r1.Testsome(reqs)
		if len(idx) != 1 || idx[0] != 0 {
			t.Fatalf("round %d: Testsome = %v", round, idx)
		}
		if q.Active() {
			t.Fatal("collected persistent request still active")
		}
	}
}

func TestStartActiveRequestPanics(t *testing.T) {
	eng, w := harness(2)
	_ = eng
	q := w.Rank(1).RecvInit(buf.Virtual(8), AnySource, 1)
	w.Rank(1).Start(q)
	defer func() {
		if recover() == nil {
			t.Fatal("double Start did not panic")
		}
	}()
	w.Rank(1).Start(q)
}

func TestBlockingSendBeyondEagerPanics(t *testing.T) {
	_, w := harness(2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for blocking rendezvous send")
		}
	}()
	w.Rank(0).Send(buf.Virtual(w.Config().EagerThreshold+1), 1, 1)
}

func TestTestsomeCollectsOnlyOnce(t *testing.T) {
	eng, w := harness(2)
	pump(eng, w)
	rq := w.Rank(1).Irecv(buf.Virtual(8), 0, 1)
	w.Rank(0).Send(buf.Virtual(8), 1, 1)
	eng.Run()
	reqs := []*Request{rq, nil}
	if idx := w.Rank(1).Testsome(reqs); len(idx) != 1 || idx[0] != 0 {
		t.Fatalf("first Testsome = %v", idx)
	}
	if idx := w.Rank(1).Testsome(reqs); len(idx) != 0 {
		t.Fatalf("second Testsome = %v, want empty", idx)
	}
}

func TestProgressCostGrowsWithStagedTraffic(t *testing.T) {
	eng, w := harness(2)
	// No pump: let messages pile up unprocessed.
	for i := 0; i < 10; i++ {
		w.Rank(0).Send(buf.Virtual(64), 1, 1)
	}
	eng.Run()
	r1 := w.Rank(1)
	if !r1.StagedWork() {
		t.Fatal("expected staged messages")
	}
	c10 := r1.ProgressCost()
	if c10 < 10*w.Config().MatchCost {
		t.Fatalf("ProgressCost = %v, want >= 10 matches", c10)
	}
	r1.Progress()
	if r1.ProgressCost() != 0 {
		t.Fatal("ProgressCost nonzero after drain")
	}
}

func TestTestCostScalesWithArrayLength(t *testing.T) {
	cfg := DefaultConfig()
	small := cfg.TestCost(5)
	big := cfg.TestCost(65)
	if big <= small {
		t.Fatal("TestCost must grow with request-array length")
	}
	if got, want := big-small, 60*cfg.TestPerReq; got != want {
		t.Fatalf("marginal cost = %v, want %v", got, want)
	}
}

func TestOrderingPreservedPerSourceAndTag(t *testing.T) {
	// Messages from one source on one tag must match posted receives in
	// order (strict MPI semantics; the fabric and queues are FIFO).
	f := func(sizes []uint8) bool {
		if len(sizes) == 0 || len(sizes) > 40 {
			return true
		}
		eng, w := harness(2)
		pump(eng, w)
		var reqs []*Request
		bufs := make([][]byte, len(sizes))
		for i := range sizes {
			bufs[i] = make([]byte, 1)
			reqs = append(reqs, w.Rank(1).Irecv(buf.FromBytes(bufs[i]), 0, 1))
		}
		for i := range sizes {
			w.Rank(0).Send(buf.FromBytes([]byte{byte(i)}), 1, 1)
		}
		eng.Run()
		for i, q := range reqs {
			if !q.Done() || bufs[i][0] != byte(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLockedSubmitSerializesCallers(t *testing.T) {
	eng, w := harness(1)
	r := w.Rank(0)
	var ends []sim.Time
	for i := 0; i < 4; i++ {
		r.LockedSubmit(100*sim.Nanosecond, func() { ends = append(ends, eng.Now()) })
	}
	if r.LockQueue() != 3 {
		t.Fatalf("LockQueue = %d, want 3", r.LockQueue())
	}
	eng.Run()
	hold := w.Config().LockHold + 100*sim.Nanosecond
	for i, e := range ends {
		if want := sim.Time(hold) + sim.Time(i)*sim.Time(hold); e != want {
			t.Fatalf("call %d finished at %v, want %v", i, e, want)
		}
	}
}

func TestMessageAndByteConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		eng, w := harness(3)
		pump(eng, w)
		type exp struct{ rq *Request }
		var sentEager, recvEager uint64
		var reqs []*Request
		for _, op := range ops {
			src := int(op % 3)
			dst := int((op / 3) % 3)
			if src == dst {
				continue
			}
			size := int64(op%2000) + 1
			reqs = append(reqs, w.Rank(dst).Irecv(buf.Virtual(size), src, int(op%5)))
			w.Rank(src).Isend(buf.Virtual(size), dst, int(op%5))
			if size <= w.Config().EagerThreshold {
				sentEager++
			}
		}
		eng.Run()
		for _, q := range reqs {
			if !q.Done() {
				return false
			}
		}
		for i := 0; i < 3; i++ {
			recvEager += w.Rank(i).Received()
		}
		_ = sentEager
		_ = recvEager
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomTrafficMatchesMultisetOracle(t *testing.T) {
	// Property: for any interleaving of sends and receives, every message is
	// delivered exactly once to a receive with matching (source, tag), and
	// the multiset of delivered payload checksums equals the multiset sent.
	// (With the relaxed ordering PaRSEC requests — allow_overtaking —
	// same-tag messages may swap order, so the oracle is a multiset, not a
	// sequence.)
	f := func(ops []uint32) bool {
		if len(ops) > 120 {
			ops = ops[:120]
		}
		eng, w := harness(2)
		pump(eng, w)
		type msg struct {
			src, tag int
			sum      byte
		}
		sent := map[msg]int{}
		type recvSlot struct {
			rq  *Request
			buf []byte
		}
		var recvs []recvSlot
		// First pass: post a matching receive for every send we will make,
		// randomly before or after, on the right destination.
		for i, op := range ops {
			src := int(op % 2)
			dst := 1 - src
			tag := int(op>>1) % 4
			// Same-(src,tag) messages may overtake each other (relaxed
			// ordering), so size must be a function of (src,tag) for every
			// match to be payload-compatible.
			size := 64*(src+2*tag) + 17
			payload := make([]byte, size)
			var sum byte
			for j := range payload {
				payload[j] = byte(int(op) + j + i)
				sum += payload[j]
			}
			if op&(1<<20) != 0 {
				// Receive first (posted), send later this iteration.
				b := make([]byte, size)
				recvs = append(recvs, recvSlot{w.Rank(dst).Irecv(buf.FromBytes(b), src, tag), b})
				w.Rank(src).Isend(buf.FromBytes(payload), dst, tag)
			} else {
				// Send first (unexpected), receive later.
				w.Rank(src).Isend(buf.FromBytes(payload), dst, tag)
				b := make([]byte, size)
				recvs = append(recvs, recvSlot{w.Rank(dst).Irecv(buf.FromBytes(b), src, tag), b})
			}
			sent[msg{src, tag, sum}]++
		}
		eng.Run()
		got := map[msg]int{}
		for _, r := range recvs {
			if !r.rq.Done() {
				return false
			}
			if int(r.rq.Status.Size) != len(r.buf) {
				return false
			}
			var sum byte
			for _, bb := range r.buf {
				sum += bb
			}
			got[msg{r.rq.Status.Source, r.rq.Status.Tag, sum}]++
		}
		if len(got) != len(sent) {
			return false
		}
		for k, v := range sent {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
