package expd

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"amtlci/internal/bench"
)

// Options configures a Server.
type Options struct {
	// Dir is the state directory: the result cache lives in Dir/cache and
	// the job checkpoint in Dir/jobs.json.
	Dir string
	// Workers bounds the sweep worker pool; <=0 selects GOMAXPROCS.
	Workers int
	// CacheMax bounds the result cache to this many point entries with LRU
	// eviction; <=0 leaves it unbounded.
	CacheMax int
}

// Server is the experiment service: it accepts specs, expands them to
// points, runs one job at a time on a bounded worker pool (points of the
// active job fan out across the pool; further jobs queue FIFO), caches
// every point result by content address, and checkpoints the job table so a
// restart resumes interrupted sweeps.
type Server struct {
	opts  Options
	cache *Cache
	met   *serviceMetrics

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // submission order, for listing and checkpointing
	queue   []*Job   // FIFO of queued jobs
	subs    map[string]map[chan Event]bool
	closing bool

	wake chan struct{} // kicks the dispatcher when work arrives
	stop chan struct{} // closed by Close
	idle chan struct{} // closed when the dispatcher exits
}

// NewServer opens the state directory, replays the checkpoint (re-queuing
// any job that was queued or running when the previous incarnation died),
// and starts the dispatcher.
func NewServer(opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	cache, err := OpenCacheBounded(filepath.Join(opts.Dir, "cache"), opts.CacheMax)
	if err != nil {
		return nil, err
	}
	met := newServiceMetrics()
	met.trackEvictions(cache)
	s := &Server{
		opts:  opts,
		cache: cache,
		met:   met,
		jobs:  make(map[string]*Job),
		subs:  make(map[string]map[chan Event]bool),
		wake:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		idle:  make(chan struct{}),
	}
	saved, err := loadCheckpoint(s.checkpointPath())
	if err != nil {
		return nil, err
	}
	for _, cj := range saved {
		job := &Job{ID: cj.ID, Spec: cj.Spec, Points: cj.Spec.Points(),
			state: cj.State, errMsg: cj.Error}
		if job.state == StateDone {
			// Trust-but-verify: a done job whose point results were evicted
			// from the cache is demoted and re-run (cache hits cover
			// whatever survived).
			job.done = len(job.Points)
			job.cached = len(job.Points)
			for _, p := range job.Points {
				if !s.cache.Has(p.Hash()) {
					job.state = StateQueued
					job.done, job.cached = 0, 0
					break
				}
			}
		}
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
		if job.state == StateQueued {
			s.queue = append(s.queue, job)
			s.met.queue(1)
		}
	}
	go s.dispatch()
	if len(s.queue) > 0 {
		s.kick()
	}
	return s, nil
}

// Cache exposes the server's result cache (tests and tooling).
func (s *Server) Cache() *Cache { return s.cache }

func (s *Server) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Submit decodes, canonicalizes, and enqueues a spec. If a job with the
// same content address already exists, its current status is returned with
// fresh=false and nothing is enqueued.
func (s *Server) Submit(raw []byte) (st JobStatus, fresh bool, err error) {
	spec, err := DecodeSpec(raw)
	if err != nil {
		return JobStatus{}, false, err
	}
	id := spec.Hash()
	s.mu.Lock()
	if j, ok := s.jobs[id]; ok {
		st := j.statusLocked()
		s.mu.Unlock()
		return st, false, nil
	}
	if s.closing {
		s.mu.Unlock()
		return JobStatus{}, false, errors.New("expd: server is shutting down")
	}
	job := &Job{ID: id, Spec: spec, Points: spec.Points(), state: StateQueued}
	s.jobs[id] = job
	s.order = append(s.order, id)
	s.queue = append(s.queue, job)
	st = job.statusLocked()
	s.mu.Unlock()

	s.met.submitted()
	s.met.queue(1)
	s.persist()
	s.kick()
	return st, true, nil
}

// Resolve maps an exact ID or a unique prefix (>=6 hex chars) to a job ID.
func (s *Server) Resolve(id string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; ok {
		return id, nil
	}
	if len(id) < 6 {
		return "", fmt.Errorf("expd: no job %q (prefixes need at least 6 characters)", id)
	}
	var match string
	for jid := range s.jobs {
		if strings.HasPrefix(jid, id) {
			if match != "" {
				return "", fmt.Errorf("expd: job prefix %q is ambiguous", id)
			}
			match = jid
		}
	}
	if match == "" {
		return "", fmt.Errorf("expd: no job %q", id)
	}
	return match, nil
}

// Status returns a job's current status.
func (s *Server) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("expd: no job %q", id)
	}
	return j.statusLocked(), nil
}

// List returns every job's status in submission order.
func (s *Server) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].statusLocked())
	}
	return out
}

// Cancel stops a queued or running job. Cancelling a terminal job is a
// no-op returning its status.
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobStatus{}, fmt.Errorf("expd: no job %q", id)
	}
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.userCancelled = true
		for i, q := range s.queue {
			if q == j {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		st := j.statusLocked()
		s.mu.Unlock()
		s.met.queue(-1)
		s.met.jobDone(StateCancelled)
		s.persist()
		s.publish(Event{Type: "state", Job: j.ID, State: StateCancelled, Total: st.Points, Done: st.Done})
		s.closeSubs(j.ID)
		return st, nil
	case StateRunning:
		j.userCancelled = true
		cancel := j.cancel
		st := j.statusLocked()
		s.mu.Unlock()
		if cancel != nil {
			cancel() // the runner finishes the transition
		}
		return st, nil
	default:
		st := j.statusLocked()
		s.mu.Unlock()
		return st, nil
	}
}

// Result assembles a done job's sweep from the cache. Every point of a done
// job is cached by construction, so the assembled bytes are identical
// whether the job simulated or was served warm.
func (s *Server) Result(id string) (Spec, []Point, []PointResult, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Spec{}, nil, nil, fmt.Errorf("expd: no job %q", id)
	}
	state := j.state
	spec, pts := j.Spec, j.Points
	s.mu.Unlock()
	if state != StateDone {
		return Spec{}, nil, nil, fmt.Errorf("expd: job %s is %s, not done", id[:12], state)
	}
	results := make([]PointResult, len(pts))
	for i, p := range pts {
		r, ok := s.cache.GetResult(p.Hash())
		if !ok {
			return Spec{}, nil, nil, fmt.Errorf("expd: point %d of job %s missing from cache", i, id[:12])
		}
		results[i] = r
	}
	return spec, pts, results, nil
}

// Point returns one fully-resolved point of a job (the trace endpoint
// re-simulates it under an observer).
func (s *Server) Point(id string, i int) (Point, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Point{}, fmt.Errorf("expd: no job %q", id)
	}
	if i < 0 || i >= len(j.Points) {
		return Point{}, fmt.Errorf("expd: job %s has %d points, no index %d", id[:12], len(j.Points), i)
	}
	return j.Points[i], nil
}

// Subscribe attaches a progress listener to a job. The returned channel
// closes when the job reaches a terminal state (immediately, if it already
// has); call off to detach early.
func (s *Server) Subscribe(id string) (ch <-chan Event, off func(), st JobStatus, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, nil, JobStatus{}, fmt.Errorf("expd: no job %q", id)
	}
	st = j.statusLocked()
	c := make(chan Event, 256)
	if terminal(j.state) {
		close(c)
		return c, func() {}, st, nil
	}
	if s.subs[id] == nil {
		s.subs[id] = make(map[chan Event]bool)
	}
	s.subs[id][c] = true
	off = func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if set, ok := s.subs[id]; ok && set[c] {
			delete(set, c)
			close(c)
		}
	}
	return c, off, st, nil
}

// publish fans an event out to a job's subscribers, dropping for slow ones
// (the stream is advisory; status is the source of truth).
func (s *Server) publish(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.subs[ev.Job] {
		select {
		case c <- ev:
		default:
		}
	}
}

func (s *Server) closeSubs(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.subs[id] {
		close(c)
	}
	delete(s.subs, id)
}

// MetricsTable snapshots the service metrics registry as a bench table.
func (s *Server) MetricsTable() *bench.Table { return s.met.table() }

// dispatch is the job scheduler: one job runs at a time, its points fanned
// out over the worker pool, so concurrent submissions serialize instead of
// oversubscribing the simulator.
func (s *Server) dispatch() {
	defer close(s.idle)
	for {
		s.mu.Lock()
		var job *Job
		if !s.closing && len(s.queue) > 0 {
			job = s.queue[0]
			s.queue = s.queue[1:]
		}
		closing := s.closing
		s.mu.Unlock()
		if closing {
			return
		}
		if job == nil {
			select {
			case <-s.wake:
				continue
			case <-s.stop:
				return
			}
		}
		s.met.queue(-1)
		s.run(job)
	}
}

// run executes one job to a terminal state (or back to queued on shutdown).
func (s *Server) run(job *Job) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stopWatch := make(chan struct{})
	go func() {
		select {
		case <-s.stop:
			cancel()
		case <-stopWatch:
		}
	}()
	defer close(stopWatch)

	s.mu.Lock()
	if job.state != StateQueued { // cancelled while waiting
		s.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.cancel = cancel
	job.done, job.cached = 0, 0
	total := len(job.Points)
	s.mu.Unlock()
	s.persist()
	s.publish(Event{Type: "state", Job: job.ID, State: StateRunning, Total: total})

	_, err := EvalPoints(ctx, s.opts.Workers, job.Points, s.cache, EvalHooks{
		Start: func(i int) { s.met.pointStart() },
		Done: func(i int, r PointResult, cached bool, perr error, elapsed time.Duration) {
			s.met.pointEnd()
			if perr == nil {
				if cached {
					s.met.hit()
				} else {
					s.met.executed(elapsed)
				}
			}
			s.mu.Lock()
			job.done++
			if cached {
				job.cached++
			}
			done := job.done
			s.mu.Unlock()
			ev := Event{Type: "point", Job: job.ID, Index: i, Total: total,
				Done: done, Cached: cached, ElapsedUS: elapsed.Microseconds()}
			if perr != nil {
				ev.Error = perr.Error()
			}
			s.publish(ev)
		},
	})

	s.mu.Lock()
	job.cancel = nil
	switch {
	case errors.Is(err, context.Canceled):
		if job.userCancelled {
			job.state = StateCancelled
		} else {
			// Shutdown: back to queued so the checkpoint resumes it.
			job.state = StateQueued
		}
	case err != nil:
		job.state = StateFailed
		job.errMsg = err.Error()
	default:
		job.state = StateDone
	}
	st := job.statusLocked()
	s.mu.Unlock()

	if terminal(st.State) {
		s.met.jobDone(st.State)
	}
	s.persist()
	s.publish(Event{Type: "state", Job: job.ID, State: st.State, Total: total, Done: st.Done, Error: st.Error})
	if terminal(st.State) {
		s.closeSubs(job.ID)
	}
}

// Close drains the server: the active job is interrupted (its completed
// points are already cached and its checkpoint state reverts to queued, so
// a restart resumes it), the dispatcher exits, and the final checkpoint is
// written.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		<-s.idle
		return
	}
	s.closing = true
	s.mu.Unlock()
	close(s.stop)
	<-s.idle
	s.persist()
}
