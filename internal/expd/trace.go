package expd

import (
	"fmt"
	"io"

	"amtlci/internal/bench"
	"amtlci/internal/clocksync"
	"amtlci/internal/core/stack"
	"amtlci/internal/ctrace"
	"amtlci/internal/hicma"
	"amtlci/internal/metrics"
	"amtlci/internal/parsec"
	"amtlci/internal/sim"
)

// TracePoint re-simulates one HiCMA point with a ctrace.Recorder attached
// and returns the Chrome-trace events (task slices, message instants, and
// counter tracks). The stack, seeds, and runtime config mirror what
// bench.HiCMA uses for the point's first run, so the trace shows the same
// execution the cached measurement came from — determinism makes the replay
// free of divergence.
func TracePoint(p Point) (events []ctrace.Event, err error) {
	if p.Kind != PointHiCMA {
		return nil, fmt.Errorf("expd: traces are only available for hicma points, not %q", p.Kind)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("expd: tracing point %s: %v", p.Hash()[:12], r)
		}
	}()
	b, err := stack.ParseBackend(p.Backend)
	if err != nil {
		return nil, err
	}
	o := bench.DefaultHiCMAOpts(b, p.NB, p.Nodes)
	o.N = p.N
	o.MT = p.MT
	o.SyncClocks = p.SyncClocks
	if p.Seed != 0 {
		o.Seed = p.Seed
	}

	pool := hicma.NewVirtual(hicma.DefaultParams(o.N, o.NB), o.Nodes)
	so := stack.DefaultOptions(b, o.Nodes)
	so.Seed = o.Seed // run 0 of the measurement protocol
	st := stack.Build(so)
	cfg := parsec.DefaultConfig(bench.WorkersFor(b, o.Nodes))
	cfg.Seed = o.Seed
	cfg.FetchCap = o.FetchCap
	cfg.MTActivate = o.MT
	cfg.Metrics = st.Metrics
	rt := parsec.New(st.Eng, st.Engines, pool, cfg)

	var names []string
	for _, c := range pool.Classes() {
		names = append(names, c.Name)
	}
	rec := ctrace.NewRecorder(names)
	rt.SetObserver(rec)
	smp := metrics.NewSampler(st.Eng, st.Metrics, 100*sim.Microsecond)
	smp.Start()

	if o.SyncClocks {
		clocks := clocksync.MakeClocks(o.Nodes, 10*sim.Millisecond, 0, o.Seed)
		res := clocksync.Register(st.Eng, st.Engines, clocks, 8).Run()
		rt.SetClocks(clocks, res.Offsets)
	}

	if _, err := rt.Run(); err != nil {
		return nil, err
	}
	smp.Flush()
	return append(rec.Events(), ctrace.CounterEvents(smp.Tracks())...), nil
}

// writeTrace serializes events as a Chrome trace JSON array.
func writeTrace(w io.Writer, events []ctrace.Event) error {
	return ctrace.Write(w, events)
}
