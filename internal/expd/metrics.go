package expd

import (
	"sync"
	"time"

	"amtlci/internal/bench"
	"amtlci/internal/metrics"
)

// serviceMetrics wraps a metrics.Registry for the experiment service.
// Registry itself follows the simulator's single-goroutine discipline, so
// every touch from HTTP handlers and pool workers goes through mu here.
type serviceMetrics struct {
	mu  sync.Mutex
	reg *metrics.Registry

	cacheHits      *metrics.Counter
	cacheMisses    *metrics.Counter
	pointsExecuted *metrics.Counter
	jobsSubmitted  *metrics.Counter
	jobsCompleted  *metrics.Counter
	jobsCancelled  *metrics.Counter
	jobsFailed     *metrics.Counter

	queueDepth *metrics.Gauge
	inflight   *metrics.Gauge

	pointUS *metrics.Histogram
}

func newServiceMetrics() *serviceMetrics {
	reg := metrics.New()
	return &serviceMetrics{
		reg:            reg,
		cacheHits:      reg.Counter("expd", "cache_hits", 0),
		cacheMisses:    reg.Counter("expd", "cache_misses", 0),
		pointsExecuted: reg.Counter("expd", "points_executed", 0),
		jobsSubmitted:  reg.Counter("expd", "jobs_submitted", 0),
		jobsCompleted:  reg.Counter("expd", "jobs_completed", 0),
		jobsCancelled:  reg.Counter("expd", "jobs_cancelled", 0),
		jobsFailed:     reg.Counter("expd", "jobs_failed", 0),
		queueDepth:     reg.Gauge("expd", "queue_depth", 0),
		inflight:       reg.Gauge("expd", "inflight_points", 0),
		pointUS:        reg.Histogram("expd", "point_us", 0),
	}
}

func (m *serviceMetrics) hit() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cacheHits.Inc()
}

// executed records a simulated (cache-miss) point and its wall time. The
// points_executed counter is the restart-resume proof: a resumed sweep only
// increments it for points that were not already cached.
func (m *serviceMetrics) executed(elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cacheMisses.Inc()
	m.pointsExecuted.Inc()
	m.pointUS.Observe(uint64(elapsed.Microseconds()))
}

func (m *serviceMetrics) submitted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsSubmitted.Inc()
}

func (m *serviceMetrics) jobDone(state string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch state {
	case StateDone:
		m.jobsCompleted.Inc()
	case StateCancelled:
		m.jobsCancelled.Inc()
	case StateFailed:
		m.jobsFailed.Inc()
	}
}

func (m *serviceMetrics) queue(delta int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queueDepth.Add(delta)
}

func (m *serviceMetrics) pointStart() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inflight.Add(1)
}

func (m *serviceMetrics) pointEnd() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inflight.Add(-1)
}

// trackEvictions exposes a bounded cache's eviction count as the cumulative
// cache_evictions metric (reads zero forever on an unbounded cache). A probe
// rather than a counter: the cache keeps the authoritative count under its
// own lock, and the registry samples it at snapshot time.
func (m *serviceMetrics) trackEvictions(c *Cache) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reg.Probe("expd", "cache_evictions", 0, true, func() float64 {
		return float64(c.Evictions())
	})
}

// table snapshots the registry as a bench table (rendered to CSV or text by
// the /metrics handler).
func (m *serviceMetrics) table() *bench.Table {
	m.mu.Lock()
	defer m.mu.Unlock()
	return bench.MetricsTable(m.reg, "expd service metrics")
}
