package expd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Handler builds the service's HTTP API:
//
//	POST /jobs              submit a spec (JSON body) -> job status
//	GET  /jobs              list jobs
//	GET  /jobs/{id}         job status (exact ID or unique >=6-char prefix)
//	POST /jobs/{id}/cancel  stop a queued or running job
//	GET  /jobs/{id}/result  ?format=csv|json|md (csv default)
//	GET  /jobs/{id}/stream  NDJSON progress events until the job settles
//	GET  /jobs/{id}/trace   ?point=i Chrome/Perfetto trace of one hicma point
//	GET  /metrics           ?format=csv|text service counters, gauges, histograms
//	GET  /healthz           liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.withJob(s.handleStatus))
	mux.HandleFunc("POST /jobs/{id}/cancel", s.withJob(s.handleCancel))
	mux.HandleFunc("GET /jobs/{id}/result", s.withJob(s.handleResult))
	mux.HandleFunc("GET /jobs/{id}/stream", s.withJob(s.handleStream))
	mux.HandleFunc("GET /jobs/{id}/trace", s.withJob(s.handleTrace))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// withJob resolves the {id} path segment (exact or unique prefix) before
// dispatching to the handler.
func (s *Server) withJob(h func(http.ResponseWriter, *http.Request, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, err := s.Resolve(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		h(w, r, id)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, fresh, err := s.Submit(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusOK
	if fresh {
		code = http.StatusCreated
	}
	writeJSON(w, code, struct {
		JobStatus
		Fresh bool `json:"fresh"`
	}{st, fresh})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.List()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request, id string) {
	st, err := s.Status(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request, id string) {
	st, err := s.Cancel(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request, id string) {
	spec, pts, results, err := s.Result(id)
	if err != nil {
		code := http.StatusConflict
		if strings.Contains(err.Error(), "no job") {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}
	switch r.URL.Query().Get("format") {
	case "json":
		writeJSON(w, http.StatusOK, map[string]any{
			"spec": spec, "points": pts, "results": results,
		})
	case "md":
		t, err := AssembleTable(spec, pts, results)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
		t.Markdown(w)
	default:
		t, err := AssembleTable(spec, pts, results)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		t.CSV(w)
	}
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request, id string) {
	ch, off, st, err := s.Subscribe(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	defer off()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	// Lead with a status snapshot so late subscribers know where the job
	// stands before deltas arrive.
	enc.Encode(Event{Type: "state", Job: st.ID, State: st.State,
		Total: st.Points, Done: st.Done, Error: st.Error})
	if fl != nil {
		fl.Flush()
	}
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request, id string) {
	idx := 0
	if q := r.URL.Query().Get("point"); q != "" {
		var err error
		if idx, err = strconv.Atoi(q); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("expd: bad point index %q", q))
			return
		}
	}
	p, err := s.Point(id, idx)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	events, err := TracePoint(p)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%s-p%d.trace.json", id[:12], idx))
	writeTrace(w, events)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	t := s.MetricsTable()
	if r.URL.Query().Get("format") == "csv" {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		t.CSV(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	t.Write(w)
}
