package expd

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"amtlci/internal/bench"
)

// EvalHooks observe point evaluation; either hook may be nil. Hooks are
// called from sweep worker goroutines and must be safe for concurrent use.
type EvalHooks struct {
	// Start fires when a point is dispatched to a worker.
	Start func(i int)
	// Done fires when a point finishes: cached reports a cache hit (no
	// simulation ran), elapsed is the wall time spent on the point.
	Done func(i int, r PointResult, cached bool, err error, elapsed time.Duration)
}

// EvalPoints evaluates pts on up to `workers` goroutines via bench.SweepCtx,
// consulting (and populating) cache when non-nil. Results come back in
// point order. On cancellation the completed prefix is returned with
// ctx.Err(); if any point fails, evaluation continues (other points stay
// cacheable) and the first failure is returned alongside the full slice.
func EvalPoints(ctx context.Context, workers int, pts []Point, cache *Cache, hooks EvalHooks) ([]PointResult, error) {
	type outcome struct {
		res PointResult
		err error
	}
	evaluated, err := bench.SweepCtx(ctx, bench.SweepWorkers(workers, len(pts)), len(pts), func(i int) outcome {
		if hooks.Start != nil {
			hooks.Start(i)
		}
		begin := time.Now()
		p := pts[i]
		h := p.Hash()
		if cache != nil {
			if r, ok := cache.GetResult(h); ok {
				if hooks.Done != nil {
					hooks.Done(i, r, true, nil, time.Since(begin))
				}
				return outcome{res: r}
			}
		}
		r, perr := EvalPoint(p)
		if perr == nil && cache != nil {
			if cerr := cache.PutResult(h, r); cerr != nil {
				perr = fmt.Errorf("expd: caching point result: %w", cerr)
			}
		}
		if hooks.Done != nil {
			hooks.Done(i, r, false, perr, time.Since(begin))
		}
		return outcome{res: r, err: perr}
	})
	out := make([]PointResult, len(evaluated))
	var firstErr error
	for i, o := range evaluated {
		out[i] = o.res
		if o.err != nil && firstErr == nil {
			firstErr = o.err
		}
	}
	if err != nil {
		return out, err
	}
	return out, firstErr
}

// gf formats a float64 with the shortest representation that round-trips,
// so assembled CSVs are exact and byte-stable across cache hit and miss.
func gf(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// AssembleTable renders a completed sweep as its result table, one row per
// measurement in point order. The layout is long-format (one series column
// set per kind), so the CSV loads into plotting scripts without reshaping,
// and the bytes depend only on the results — a cache-served job emits
// byte-identical output to the run that populated the cache.
func AssembleTable(s Spec, pts []Point, results []PointResult) (*bench.Table, error) {
	if len(pts) != len(results) {
		return nil, fmt.Errorf("expd: %d points but %d results", len(pts), len(results))
	}
	switch s.Kind {
	case KindTile, KindNodes:
		t := bench.NewTable("expd "+s.Kind+" sweep",
			"backend", "nodes", "tile", "mt", "tts_s", "e2e_ms", "hop_ms", "tasks", "avg_rank")
		for i, p := range pts {
			r := results[i].HiCMA
			if r == nil {
				return nil, fmt.Errorf("expd: point %d: missing hicma result", i)
			}
			t.AddRow(p.Backend, strconv.Itoa(p.Nodes), strconv.Itoa(p.NB),
				strconv.FormatBool(p.MT), gf(r.TimeToSolution), gf(r.E2ELatencyMS),
				gf(r.HopLatencyMS), strconv.FormatInt(r.Tasks, 10), gf(r.AvgRank))
		}
		return t, nil

	case KindColl:
		t := bench.NewTable("expd coll sweep",
			"backend", "op", "ranks", "bytes", "algorithm", "picked", "time_us")
		for i, p := range pts {
			rows := results[i].Coll
			if rows == nil {
				return nil, fmt.Errorf("expd: point %d: missing coll result", i)
			}
			for _, r := range rows {
				t.AddRow(p.Backend, p.Op, strconv.Itoa(p.Ranks),
					strconv.FormatInt(p.Size, 10), r.Algo, r.Picked,
					fmt.Sprintf("%.3f", r.TimeUS))
			}
		}
		return t, nil

	case KindChaos:
		t := bench.NewTable("expd chaos sweep",
			"backend", "workload", "rate_pct", "makespan_ns", "slowdown",
			"dropped", "duplicated", "corrupted", "retransmits", "verified", "error")
		for i, p := range pts {
			r := results[i].Chaos
			if r == nil {
				return nil, fmt.Errorf("expd: point %d: missing chaos result", i)
			}
			t.AddRow(p.Backend, p.Workload, "0", strconv.FormatInt(r.BaselineNS, 10),
				"1", "0", "0", "0", "0", "true", "")
			for _, row := range r.Rows {
				t.AddRow(p.Backend, p.Workload, gf(row.RatePct),
					strconv.FormatInt(row.MakespanNS, 10), gf(row.Slowdown),
					strconv.FormatUint(row.Dropped, 10), strconv.FormatUint(row.Duplicated, 10),
					strconv.FormatUint(row.Corrupted, 10), strconv.FormatUint(row.Retransmits, 10),
					strconv.FormatBool(row.Verified), row.Err)
			}
		}
		return t, nil
	}
	return nil, fmt.Errorf("expd: unknown spec kind %q", s.Kind)
}

// StrongScalingFrom reassembles a completed nodes-kind sweep into the
// Figure 5 / Table 2 series, mirroring bench.StrongScaling's grid layout
// (node count outer, LCI then MPI, tiles inner — the order Spec.Points
// emits).
func StrongScalingFrom(s Spec, results []PointResult) ([]bench.StrongScalingPoint, error) {
	if s.Kind != KindNodes {
		return nil, fmt.Errorf("expd: StrongScalingFrom wants a %q spec, got %q", KindNodes, s.Kind)
	}
	nt := len(s.Tiles)
	if want := len(s.NodeCounts) * 2 * nt; len(results) != want {
		return nil, fmt.Errorf("expd: %d results, want %d", len(results), want)
	}
	hicmaAt := func(i int) (bench.HiCMAResult, error) {
		if results[i].HiCMA == nil {
			return bench.HiCMAResult{}, fmt.Errorf("expd: point %d: missing hicma result", i)
		}
		return *results[i].HiCMA, nil
	}
	var out []bench.StrongScalingPoint
	for ni, nd := range s.NodeCounts {
		base := ni * 2 * nt
		lciAll := make([]bench.HiCMAResult, nt)
		mpiAll := make([]bench.HiCMAResult, nt)
		for ti := 0; ti < nt; ti++ {
			var err error
			if lciAll[ti], err = hicmaAt(base + ti); err != nil {
				return nil, err
			}
			if mpiAll[ti], err = hicmaAt(base + nt + ti); err != nil {
				return nil, err
			}
		}
		lciBest := bench.BestTile(lciAll)
		mpiBest := bench.BestTile(mpiAll)
		var mpiAtLCI bench.HiCMAResult
		for _, r := range mpiAll {
			if r.NB == lciBest.NB {
				mpiAtLCI = r
			}
		}
		out = append(out, bench.StrongScalingPoint{
			Nodes: nd, LCI: lciBest, MPIAtLCI: mpiAtLCI, MPIBest: mpiBest,
			LCITile: lciBest.NB, MPIBestTile: mpiBest.NB,
		})
	}
	return out, nil
}
