// Package expd is the experiment service: the deterministic simulator
// exposed as a persistent, cache-fronted HTTP/JSON daemon (cmd/simd).
//
// A client submits an experiment Spec — one canonical schema covering the
// sweeps the batch CLIs (cmd/experiments, cmd/hicma, cmd/collbench,
// cmd/chaos) parse ad hoc today. The service validates and canonicalizes
// the spec, decomposes it into self-contained sweep Points, and schedules
// the points on a bounded worker pool (bench.SweepCtx). Every point is
// content-addressed by a stable hash of its canonical encoding: because the
// simulation is deterministic, a cached point result is *exactly* the
// result a re-simulation would produce, so repeated or overlapping sweeps
// are served from the on-disk cache instead of re-simulated — a 256-point
// sweep that shares 200 points with a prior run only simulates the 56 new
// ones. Job state is checkpointed, so a restarted server resumes
// half-finished sweeps from their completed-point prefix.
package expd

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"amtlci/internal/bench"
	"amtlci/internal/chaos"
	"amtlci/internal/coll"
	"amtlci/internal/core/stack"
)

// Spec kinds: which sweep family a spec describes.
const (
	// KindTile is the Figure 4 sweep: HiCMA time-to-solution and latency
	// over tile sizes at a fixed node count.
	KindTile = "tile"
	// KindNodes is the Figure 5 / Table 2 sweep: strong scaling over node
	// counts, sweeping tiles per node count for the best-tile series.
	KindNodes = "nodes"
	// KindColl is the cmd/collbench sweep: collective operation x algorithm
	// x payload x rank count.
	KindColl = "coll"
	// KindChaos is the cmd/chaos fault sweep: workload x fault rate with
	// the reliability layer interposed, verified numerics.
	KindChaos = "chaos"
)

// Size is a byte count that accepts unit spellings on input: a JSON number
// is taken as bytes, a JSON string is parsed with binary units ("256 B",
// "4KiB", "1.5 MiB", "2 GiB" — fractions allowed, case per IEC). It always
// marshals as the plain byte count, so every equivalent spelling
// canonicalizes to the same encoding and therefore the same content hash.
type Size int64

// UnmarshalJSON implements the number-or-unit-string decoding.
func (s *Size) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var str string
		if err := json.Unmarshal(data, &str); err != nil {
			return err
		}
		n, err := ParseSize(str)
		if err != nil {
			return err
		}
		*s = n
		return nil
	}
	var n int64
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("expd: size %s: want a byte count or a unit string", data)
	}
	*s = Size(n)
	return nil
}

// ParseSize parses a unit-spelled byte size: "<number> <unit>" with unit one
// of B, KiB, MiB, GiB (binary, per bench.Bytes); the space is optional and
// the number may be fractional as long as the result is a whole byte count.
func ParseSize(s string) (Size, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{{"GiB", 1 << 30}, {"MiB", 1 << 20}, {"KiB", 1 << 10}, {"B", 1}} {
		if strings.HasSuffix(t, u.suffix) {
			t = strings.TrimSpace(strings.TrimSuffix(t, u.suffix))
			mult = u.mult
			break
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("expd: bad size %q: %v", s, err)
	}
	b := v * float64(mult)
	if b < 0 || b != float64(int64(b)) {
		return 0, fmt.Errorf("expd: size %q is not a whole byte count", s)
	}
	return Size(b), nil
}

// Spec is one experiment request. Every field is optional except Kind;
// omitted fields take the documented defaults during canonicalization, so a
// spec with defaults spelled out hashes identically to one that omits them.
type Spec struct {
	Kind string `json:"kind"`

	// HiCMA sweeps (tile, nodes). Scale shrinks the paper's N=360,000
	// problem (bench.ScaledProblem); N sets the dimension directly and is
	// mutually exclusive with Scale. Tiles defaults to the paper tile sizes
	// that divide N.
	Scale      float64 `json:"scale,omitempty"`
	N          int     `json:"n,omitempty"`
	Nodes      int     `json:"nodes,omitempty"`       // tile kind: node count (default 16)
	NodeCounts []int   `json:"node_counts,omitempty"` // nodes kind: swept counts (default paper)
	Tiles      []int   `json:"tiles,omitempty"`
	MT         bool    `json:"mt,omitempty"` // tile kind: also measure multithreaded ACTIVATEs
	SyncClocks bool    `json:"sync_clocks,omitempty"`
	Steal      bool    `json:"steal,omitempty"` // enable inter-rank work stealing
	// Shards > 1 simulates each point on a sharded parallel domain
	// (identical results, less wall clock on multi-core hosts). 0 and 1
	// both mean serial and canonicalize to 0, so pre-existing cache
	// entries keep their hashes.
	Shards int `json:"shards,omitempty"`
	Runs       int     `json:"runs,omitempty"`  // measurement protocol (default 1)
	Discard    int     `json:"discard,omitempty"`

	// Backends defaults to both, canonical order LCI then MPI. Accepted
	// spellings follow stack.ParseBackend.
	Backends []string `json:"backends,omitempty"`
	// Seed, when nonzero, overrides each point's default seed.
	Seed uint64 `json:"seed,omitempty"`

	// Collective sweeps.
	Ops   []string `json:"ops,omitempty"`   // default: bcast, reduce, allreduce, allgather, barrier
	Ranks []int    `json:"ranks,omitempty"` // default: 4, 16, 64
	Sizes []Size   `json:"sizes,omitempty"` // default: bench.CollSizes
	Iters int      `json:"iters,omitempty"` // default 3

	// Chaos sweeps.
	Workloads []string  `json:"workloads,omitempty"` // default: cholesky, hicma
	Rates     []float64 `json:"rates,omitempty"`     // fault rates in percent (default 0.5, 1, 2)
}

// DecodeSpec parses and canonicalizes a spec from JSON. Unknown fields are
// rejected — a typo must not silently select a default.
func DecodeSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("expd: bad spec: %w", err)
	}
	// Trailing garbage after the object is an error, not ignored input.
	if dec.More() {
		return Spec{}, fmt.Errorf("expd: bad spec: trailing data after JSON object")
	}
	return s.Canonical()
}

// collOpNames maps canonical op names to kinds, in canonical (report) order.
var collOpNames = []struct {
	name string
	kind coll.Kind
}{
	{"bcast", coll.OpBcast},
	{"reduce", coll.OpReduce},
	{"allreduce", coll.OpAllreduce},
	{"allgather", coll.OpAllgather},
	{"barrier", coll.OpBarrier},
}

func parseOp(s string) (string, coll.Kind, error) {
	for _, o := range collOpNames {
		if strings.EqualFold(s, o.name) {
			return o.name, o.kind, nil
		}
	}
	return "", 0, fmt.Errorf("expd: unknown collective op %q", s)
}

func parseWorkload(s string) (string, chaos.Workload, error) {
	switch strings.ToLower(s) {
	case "cholesky":
		return "cholesky", chaos.Cholesky, nil
	case "hicma":
		return "hicma", chaos.HiCMA, nil
	}
	return "", 0, fmt.Errorf("expd: unknown workload %q", s)
}

// backendName is the canonical spelling stored in specs and points.
func backendName(b stack.Backend) string {
	if b == stack.LCI {
		return "lci"
	}
	return "mpi"
}

func sortedUniqInts(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	j := 0
	for i, v := range out {
		if i == 0 || v != out[j-1] {
			out[j] = v
			j++
		}
	}
	return out[:j]
}

func sortedUniqFloats(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	j := 0
	for i, v := range out {
		if i == 0 || v != out[j-1] {
			out[j] = v
			j++
		}
	}
	return out[:j]
}

// Canonical validates s and returns its canonical form: defaults filled in,
// list fields sorted and deduplicated, backend/op/workload spellings
// normalized, Scale resolved into an explicit N. Two specs that describe
// the same experiment canonicalize to the same value and therefore the same
// Hash. The zero fields of other kinds stay zero, so the canonical JSON
// encoding is stable.
func (s Spec) Canonical() (Spec, error) {
	c := Spec{Kind: s.Kind, Seed: s.Seed}

	// Backends: normalize spellings, dedup, canonical order LCI then MPI.
	in := s.Backends
	if len(in) == 0 {
		in = []string{"lci", "mpi"}
	}
	var wantLCI, wantMPI bool
	for _, bs := range in {
		b, err := stack.ParseBackend(bs)
		if err != nil {
			return Spec{}, fmt.Errorf("expd: %v", err)
		}
		if b == stack.LCI {
			wantLCI = true
		} else {
			wantMPI = true
		}
	}
	if wantLCI {
		c.Backends = append(c.Backends, "lci")
	}
	if wantMPI {
		c.Backends = append(c.Backends, "mpi")
	}

	reject := func(cond bool, field string) error {
		if cond {
			return fmt.Errorf("expd: field %q is not valid for kind %q", field, s.Kind)
		}
		return nil
	}

	switch s.Kind {
	case KindTile, KindNodes:
		for _, e := range []error{
			reject(len(s.Ops) != 0, "ops"), reject(len(s.Ranks) != 0, "ranks"),
			reject(len(s.Sizes) != 0, "sizes"), reject(s.Iters != 0, "iters"),
			reject(len(s.Workloads) != 0, "workloads"), reject(len(s.Rates) != 0, "rates"),
		} {
			if e != nil {
				return Spec{}, e
			}
		}
		if s.Shards < 0 {
			return Spec{}, fmt.Errorf("expd: shards %d < 0", s.Shards)
		}
		if s.Shards > 1 {
			if s.SyncClocks {
				return Spec{}, fmt.Errorf("expd: sync_clocks needs a serial simulation (shards <= 1)")
			}
			c.Shards = s.Shards
		}
		if s.Kind == KindNodes {
			if err := reject(s.Nodes != 0, "nodes"); err != nil {
				return Spec{}, err
			}
			if err := reject(s.MT, "mt"); err != nil {
				return Spec{}, err
			}
			c.NodeCounts = sortedUniqInts(s.NodeCounts)
			if len(c.NodeCounts) == 0 {
				c.NodeCounts = append([]int(nil), bench.PaperNodeCounts...)
			}
			for _, nd := range c.NodeCounts {
				if nd < 1 {
					return Spec{}, fmt.Errorf("expd: node count %d < 1", nd)
				}
			}
			if len(c.Backends) != 2 {
				return Spec{}, fmt.Errorf("expd: the nodes sweep needs both backends (best-tile series compare LCI and MPI)")
			}
		} else {
			if err := reject(len(s.NodeCounts) != 0, "node_counts"); err != nil {
				return Spec{}, err
			}
			c.Nodes = s.Nodes
			if c.Nodes == 0 {
				c.Nodes = 16
			}
			if c.Nodes < 1 {
				return Spec{}, fmt.Errorf("expd: nodes %d < 1", c.Nodes)
			}
			c.MT = s.MT
		}
		// Problem size: explicit N wins, otherwise Scale (default 1).
		switch {
		case s.N != 0 && s.Scale != 0:
			return Spec{}, fmt.Errorf("expd: n and scale are mutually exclusive")
		case s.N != 0:
			if s.N < 1 {
				return Spec{}, fmt.Errorf("expd: n %d < 1", s.N)
			}
			c.N = s.N
		default:
			scale := s.Scale
			if scale == 0 {
				scale = 1
			}
			if scale < 0 || scale > 1 {
				return Spec{}, fmt.Errorf("expd: scale %g outside (0, 1]", scale)
			}
			c.N, _ = bench.ScaledProblem(scale, bench.PaperTileSizes)
		}
		if len(s.Tiles) != 0 {
			c.Tiles = sortedUniqInts(s.Tiles)
			for _, nb := range c.Tiles {
				if nb < 1 || c.N%nb != 0 {
					return Spec{}, fmt.Errorf("expd: tile %d does not divide N=%d", nb, c.N)
				}
			}
		} else {
			for _, nb := range bench.PaperTileSizes {
				if c.N%nb == 0 {
					c.Tiles = append(c.Tiles, nb)
				}
			}
			if len(c.Tiles) == 0 {
				return Spec{}, fmt.Errorf("expd: no paper tile size divides N=%d; set tiles explicitly", c.N)
			}
		}
		c.SyncClocks = s.SyncClocks
		c.Steal = s.Steal
		c.Runs, c.Discard = s.Runs, s.Discard
		if c.Runs == 0 {
			c.Runs = 1
		}
		if c.Runs < 0 || c.Discard < 0 || c.Runs <= c.Discard {
			return Spec{}, fmt.Errorf("expd: methodology retains no runs (%d runs, %d discarded)", c.Runs, c.Discard)
		}

	case KindColl:
		for _, e := range []error{
			reject(s.Scale != 0, "scale"), reject(s.N != 0, "n"),
			reject(s.Nodes != 0, "nodes"), reject(len(s.NodeCounts) != 0, "node_counts"),
			reject(len(s.Tiles) != 0, "tiles"), reject(s.MT, "mt"),
			reject(s.SyncClocks, "sync_clocks"), reject(s.Steal, "steal"),
			reject(s.Runs != 0, "runs"), reject(s.Discard != 0, "discard"),
			reject(len(s.Workloads) != 0, "workloads"), reject(len(s.Rates) != 0, "rates"),
			reject(s.Shards != 0, "shards"),
		} {
			if e != nil {
				return Spec{}, e
			}
		}
		if len(s.Ops) == 0 {
			for _, o := range collOpNames {
				c.Ops = append(c.Ops, o.name)
			}
		} else {
			seen := map[string]bool{}
			for _, o := range collOpNames { // canonical order, dedup
				for _, in := range s.Ops {
					name, _, err := parseOp(in)
					if err != nil {
						return Spec{}, err
					}
					if name == o.name && !seen[name] {
						seen[name] = true
						c.Ops = append(c.Ops, name)
					}
				}
			}
		}
		c.Ranks = sortedUniqInts(s.Ranks)
		if len(c.Ranks) == 0 {
			c.Ranks = []int{4, 16, 64}
		}
		for _, n := range c.Ranks {
			if n < 2 {
				return Spec{}, fmt.Errorf("expd: rank count %d < 2", n)
			}
		}
		if len(s.Sizes) == 0 {
			for _, v := range bench.CollSizes() {
				c.Sizes = append(c.Sizes, Size(v))
			}
		} else {
			var raw []int
			for _, v := range s.Sizes {
				if v < 1 {
					return Spec{}, fmt.Errorf("expd: payload size %d < 1", v)
				}
				raw = append(raw, int(v))
			}
			for _, v := range sortedUniqInts(raw) {
				c.Sizes = append(c.Sizes, Size(v))
			}
		}
		c.Iters = s.Iters
		if c.Iters == 0 {
			c.Iters = 3
		}
		if c.Iters < 1 {
			return Spec{}, fmt.Errorf("expd: iters %d < 1", c.Iters)
		}

	case KindChaos:
		for _, e := range []error{
			reject(s.Scale != 0, "scale"), reject(s.N != 0, "n"),
			reject(s.Nodes != 0, "nodes"), reject(len(s.NodeCounts) != 0, "node_counts"),
			reject(len(s.Tiles) != 0, "tiles"), reject(s.MT, "mt"),
			reject(s.SyncClocks, "sync_clocks"), reject(s.Steal, "steal"),
			reject(s.Runs != 0, "runs"), reject(s.Discard != 0, "discard"),
			reject(len(s.Ops) != 0, "ops"), reject(len(s.Ranks) != 0, "ranks"),
			reject(len(s.Sizes) != 0, "sizes"), reject(s.Iters != 0, "iters"),
			reject(s.Shards != 0, "shards"),
		} {
			if e != nil {
				return Spec{}, e
			}
		}
		if len(s.Workloads) == 0 {
			c.Workloads = []string{"cholesky", "hicma"}
		} else {
			seen := map[string]bool{}
			for _, canon := range []string{"cholesky", "hicma"} {
				for _, in := range s.Workloads {
					name, _, err := parseWorkload(in)
					if err != nil {
						return Spec{}, err
					}
					if name == canon && !seen[name] {
						seen[name] = true
						c.Workloads = append(c.Workloads, name)
					}
				}
			}
		}
		c.Rates = sortedUniqFloats(s.Rates)
		if len(c.Rates) == 0 {
			c.Rates = []float64{0.5, 1, 2}
		}
		for _, r := range c.Rates {
			if r <= 0 || r >= 100 {
				return Spec{}, fmt.Errorf("expd: fault rate %g%% outside (0, 100)", r)
			}
		}

	default:
		return Spec{}, fmt.Errorf("expd: unknown spec kind %q (want %q, %q, %q, or %q)",
			s.Kind, KindTile, KindNodes, KindColl, KindChaos)
	}
	return c, nil
}

// Points decomposes a canonical spec into its constituent sweep points, in
// the deterministic order the result CSV reports them. Point hashes are the
// cache keys: a HiCMA point is the same point — and the same cache entry —
// whether a tile sweep or a strong-scaling sweep asked for it.
func (s Spec) Points() []Point {
	var pts []Point
	switch s.Kind {
	case KindTile:
		mts := []bool{false}
		if s.MT {
			mts = []bool{false, true}
		}
		for _, b := range s.Backends {
			for _, mt := range mts {
				for _, nb := range s.Tiles {
					pts = append(pts, Point{
						Kind: PointHiCMA, Backend: b, N: s.N, NB: nb, Nodes: s.Nodes,
						MT: mt, SyncClocks: s.SyncClocks, Steal: s.Steal,
						Shards: s.Shards, Runs: s.Runs, Discard: s.Discard, Seed: s.Seed,
					})
				}
			}
		}
	case KindNodes:
		// Node count outer, backend next, tile inner — the layout
		// StrongScalingFrom reassembles into the Figure 5 series.
		for _, nd := range s.NodeCounts {
			for _, b := range s.Backends {
				for _, nb := range s.Tiles {
					pts = append(pts, Point{
						Kind: PointHiCMA, Backend: b, N: s.N, NB: nb, Nodes: nd,
						SyncClocks: s.SyncClocks, Steal: s.Steal,
						Shards: s.Shards, Runs: s.Runs, Discard: s.Discard, Seed: s.Seed,
					})
				}
			}
		}
	case KindColl:
		for _, b := range s.Backends {
			for _, op := range s.Ops {
				for _, n := range s.Ranks {
					if op == "barrier" {
						pts = append(pts, Point{
							Kind: PointColl, Backend: b, Op: op, Ranks: n,
							Iters: s.Iters, Seed: s.Seed,
						})
						continue
					}
					for _, size := range s.Sizes {
						pts = append(pts, Point{
							Kind: PointColl, Backend: b, Op: op, Ranks: n,
							Size: int64(size), Iters: s.Iters, Seed: s.Seed,
						})
					}
				}
			}
		}
	case KindChaos:
		for _, b := range s.Backends {
			for _, w := range s.Workloads {
				pts = append(pts, Point{
					Kind: PointChaos, Backend: b, Workload: w,
					Rates: append([]float64(nil), s.Rates...), Seed: s.Seed,
				})
			}
		}
	}
	return pts
}
