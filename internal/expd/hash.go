package expd

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Content addressing: a canonical Spec or Point is hashed over its JSON
// encoding. encoding/json emits struct fields in declaration order and
// float64s in their shortest round-trip form, so the encoding — and the
// hash — is a pure function of the canonical value. Canonicalization is
// what makes the hash meaningful: field reordering in the submitted JSON,
// omitted defaults, and equivalent unit spellings all collapse to one
// canonical value and therefore one address (pinned by TestHashInvariance).

// hashOf returns the sha256 hex digest of v's JSON encoding.
func hashOf(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		// Specs and points are plain data; a marshal failure is a
		// programming error, not an input error.
		panic(fmt.Sprintf("expd: marshal for hashing: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Hash is the content address of a spec. It must be called on the
// canonical form (Canonical or DecodeSpec output); hashing a raw spec
// would distinguish spellings that mean the same experiment.
func (s Spec) Hash() string { return hashOf(s) }

// Hash is the content address of one sweep point — the key of the on-disk
// result cache.
func (p Point) Hash() string { return hashOf(p) }
