package expd

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Cache is the on-disk content-addressed result store: one JSON file per
// completed point, named by the point's hash, fanned out over 256
// two-hex-digit subdirectories. Writes are atomic (temp file + rename in
// the same directory), so a cache entry either exists completely or not at
// all — a killed server never leaves a torn result behind, which is what
// makes restart-resume sound.
//
// A bounded cache (OpenCacheBounded with maxEntries > 0) additionally keeps
// an in-memory recency list and evicts the least-recently-used entry — file
// and all — once the bound is exceeded. Eviction is safe by construction:
// a cache entry is a pure function of its point, so an evicted result is
// merely re-simulated on the next miss and the re-filled bytes are
// identical. The recency index is seeded from file modification times on
// open, so the LRU order survives restarts approximately (mtime
// granularity) and exactly for anything touched after open.
type Cache struct {
	dir string

	// Recency tracking, active only when max > 0. The mutex also serializes
	// the file operations of Put/evict against concurrent pool workers.
	mu      sync.Mutex
	max     int
	lru     *list.List               // front = most recently used; values are hashes
	idx     map[string]*list.Element // hash -> lru element
	evicted uint64
}

// OpenCache opens (creating if needed) an unbounded cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	return OpenCacheBounded(dir, 0)
}

// OpenCacheBounded opens a cache holding at most maxEntries point results
// (0 or negative means unbounded). Pre-existing entries are indexed oldest
// mtime first and the bound is enforced immediately, so reopening a shrunk
// cache trims it on the spot.
func OpenCacheBounded(dir string, maxEntries int) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("expd: open cache: %w", err)
	}
	c := &Cache{dir: dir}
	if maxEntries > 0 {
		c.max = maxEntries
		c.lru = list.New()
		c.idx = make(map[string]*list.Element)
		if err := c.seedRecency(); err != nil {
			return nil, fmt.Errorf("expd: open cache: %w", err)
		}
		c.mu.Lock()
		c.evictLocked()
		c.mu.Unlock()
	}
	return c, nil
}

// seedRecency rebuilds the LRU order of a bounded cache from the files on
// disk, oldest modification time first (ties break on hash for
// determinism).
func (c *Cache) seedRecency() error {
	type ent struct {
		hash  string
		mtime int64
	}
	var ents []ent
	subs, err := os.ReadDir(c.dir)
	if err != nil {
		return err
	}
	for _, sub := range subs {
		if !sub.IsDir() || len(sub.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(c.dir, sub.Name()))
		if err != nil {
			return err
		}
		for _, f := range files {
			hash := strings.TrimSuffix(f.Name(), ".json")
			if hash == f.Name() || !validHash(hash) {
				continue // temp files, strays
			}
			info, err := f.Info()
			if err != nil {
				continue // raced with external cleanup
			}
			ents = append(ents, ent{hash: hash, mtime: info.ModTime().UnixNano()})
		}
	}
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].mtime != ents[j].mtime {
			return ents[i].mtime < ents[j].mtime
		}
		return ents[i].hash < ents[j].hash
	})
	for _, e := range ents {
		c.idx[e.hash] = c.lru.PushFront(e.hash)
	}
	return nil
}

// touch marks hash most-recently-used and enforces the bound. No-op on an
// unbounded cache.
func (c *Cache) touch(hash string) {
	if c.max == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[hash]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.idx[hash] = c.lru.PushFront(hash)
	c.evictLocked()
}

// evictLocked drops least-recently-used entries (file and index) until the
// cache is within bounds. Caller holds mu.
func (c *Cache) evictLocked() {
	for c.lru.Len() > c.max {
		el := c.lru.Back()
		hash := el.Value.(string)
		c.lru.Remove(el)
		delete(c.idx, hash)
		os.Remove(c.path(hash, ".json"))
		c.evicted++
	}
}

// Evictions returns the number of entries evicted since open.
func (c *Cache) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evicted
}

// Len returns the number of tracked entries of a bounded cache (0 for an
// unbounded one, which keeps no index).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max == 0 {
		return 0
	}
	return c.lru.Len()
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(hash, suffix string) string {
	return filepath.Join(c.dir, hash[:2], hash+suffix)
}

// validHash guards path construction against non-hash inputs (an HTTP
// handler passes client-supplied IDs through lookup, never here, but keep
// the invariant local).
func validHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	return strings.IndexFunc(h, func(r rune) bool {
		return !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f')
	}) < 0
}

// Get returns the cached bytes for hash, or ok=false on a miss. A hit
// counts as a use for eviction ordering.
func (c *Cache) Get(hash string) ([]byte, bool) {
	if !validHash(hash) {
		return nil, false
	}
	data, err := os.ReadFile(c.path(hash, ".json"))
	if err != nil {
		return nil, false
	}
	c.touch(hash)
	return data, true
}

// Has reports whether hash is cached without reading it. A Has probe does
// not count as a use (the resume scan at server start stats every point of
// every checkpointed job and must not reshuffle the recency order).
func (c *Cache) Has(hash string) bool {
	if !validHash(hash) {
		return false
	}
	_, err := os.Stat(c.path(hash, ".json"))
	return err == nil
}

// Put stores data under hash atomically.
func (c *Cache) Put(hash string, data []byte) error {
	if !validHash(hash) {
		return fmt.Errorf("expd: cache put: bad hash %q", hash)
	}
	dir := filepath.Join(c.dir, hash[:2])
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, hash+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path(hash, ".json")); err != nil {
		return err
	}
	c.touch(hash)
	return nil
}

// GetResult decodes a cached PointResult.
func (c *Cache) GetResult(hash string) (PointResult, bool) {
	data, ok := c.Get(hash)
	if !ok {
		return PointResult{}, false
	}
	var r PointResult
	if err := json.Unmarshal(data, &r); err != nil {
		// A torn or corrupted entry is treated as a miss; the point will
		// re-simulate and overwrite it.
		return PointResult{}, false
	}
	return r, true
}

// PutResult encodes and stores a PointResult.
func (c *Cache) PutResult(hash string, r PointResult) error {
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	return c.Put(hash, data)
}
