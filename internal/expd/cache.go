package expd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Cache is the on-disk content-addressed result store: one JSON file per
// completed point, named by the point's hash, fanned out over 256
// two-hex-digit subdirectories. Writes are atomic (temp file + rename in
// the same directory), so a cache entry either exists completely or not at
// all — a killed server never leaves a torn result behind, which is what
// makes restart-resume sound.
type Cache struct {
	dir string
}

// OpenCache opens (creating if needed) a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("expd: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(hash, suffix string) string {
	return filepath.Join(c.dir, hash[:2], hash+suffix)
}

// validHash guards path construction against non-hash inputs (an HTTP
// handler passes client-supplied IDs through lookup, never here, but keep
// the invariant local).
func validHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	return strings.IndexFunc(h, func(r rune) bool {
		return !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f')
	}) < 0
}

// Get returns the cached bytes for hash, or ok=false on a miss.
func (c *Cache) Get(hash string) ([]byte, bool) {
	if !validHash(hash) {
		return nil, false
	}
	data, err := os.ReadFile(c.path(hash, ".json"))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Has reports whether hash is cached without reading it.
func (c *Cache) Has(hash string) bool {
	if !validHash(hash) {
		return false
	}
	_, err := os.Stat(c.path(hash, ".json"))
	return err == nil
}

// Put stores data under hash atomically.
func (c *Cache) Put(hash string, data []byte) error {
	if !validHash(hash) {
		return fmt.Errorf("expd: cache put: bad hash %q", hash)
	}
	dir := filepath.Join(c.dir, hash[:2])
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, hash+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(hash, ".json"))
}

// GetResult decodes a cached PointResult.
func (c *Cache) GetResult(hash string) (PointResult, bool) {
	data, ok := c.Get(hash)
	if !ok {
		return PointResult{}, false
	}
	var r PointResult
	if err := json.Unmarshal(data, &r); err != nil {
		// A torn or corrupted entry is treated as a miss; the point will
		// re-simulate and overwrite it.
		return PointResult{}, false
	}
	return r, true
}

// PutResult encodes and stores a PointResult.
func (c *Cache) PutResult(hash string, r PointResult) error {
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	return c.Put(hash, data)
}
