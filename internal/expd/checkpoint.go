package expd

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The checkpoint is the server's restart story: jobs.json records every
// job's canonical spec and coarse state, written atomically on each
// transition. Per-point progress is deliberately NOT checkpointed — each
// completed point already lives in the content-addressed cache, so a
// restarted server re-queues interrupted jobs and the sweep fast-forwards
// through the cached prefix without re-simulating anything. The checkpoint
// only needs to remember *what* was asked for, never *how far* it got.

type ckptJob struct {
	ID    string `json:"id"`
	Spec  Spec   `json:"spec"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

type ckptFile struct {
	Jobs []ckptJob `json:"jobs"`
}

func (s *Server) checkpointPath() string {
	return filepath.Join(s.opts.Dir, "jobs.json")
}

// persist atomically rewrites the checkpoint from the current job table.
func (s *Server) persist() {
	s.mu.Lock()
	ck := ckptFile{Jobs: make([]ckptJob, 0, len(s.order))}
	for _, id := range s.order {
		j := s.jobs[id]
		state := j.state
		// A running job checkpoints as queued: if this snapshot is the one
		// a crash leaves behind, the restart should resume it.
		if state == StateRunning {
			state = StateQueued
		}
		ck.Jobs = append(ck.Jobs, ckptJob{ID: j.ID, Spec: j.Spec, State: state, Error: j.errMsg})
	}
	s.mu.Unlock()

	data, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.opts.Dir, "jobs.json.tmp*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Close()
		if err == nil {
			os.Rename(tmp.Name(), s.checkpointPath())
			return
		}
	} else {
		tmp.Close()
	}
	os.Remove(tmp.Name())
}

// loadCheckpoint reads a previous incarnation's job table. A missing file is
// a fresh start; a torn file is an error (the write is atomic, so torn means
// something external corrupted it).
func loadCheckpoint(path string) ([]ckptJob, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var ck ckptFile
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("expd: corrupt checkpoint %s: %w", path, err)
	}
	return ck.Jobs, nil
}
