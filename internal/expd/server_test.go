package expd

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// tinySpec is a 6-point tile sweep (N=3600, 2 backends x 3 tiles) that a
// test machine simulates in well under a second.
const tinySpec = `{"kind":"tile","scale":0.01,"nodes":2,"runs":1}`

func newTestServer(t *testing.T, dir string) *Server {
	t.Helper()
	s, err := NewServer(Options{Dir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// metric pulls one counter/gauge value out of the service metrics table.
func metric(t *testing.T, s *Server, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	s.MetricsTable().CSV(&buf)
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows[1:] {
		if row[1] == name {
			v, err := strconv.ParseFloat(row[4], 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, row[4])
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

func waitState(t *testing.T, s *Server, id, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if terminal(st.State) {
			t.Fatalf("job %s settled as %s (err %q), want %s", id[:12], st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %s", id[:12], st.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func fetch(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return body
}

// TestServerCacheHit drives the acceptance path over HTTP: a sweep runs
// cold, an overlapping sweep is served entirely from the cache, and the
// original spec resubmitted under a different spelling dedups onto the same
// job with byte-identical CSV.
func TestServerCacheHit(t *testing.T) {
	srv := newTestServer(t, t.TempDir())
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) map[string]any {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v map[string]any
		if err := jsonDecode(resp.Body, &v); err != nil {
			t.Fatal(err)
		}
		return v
	}

	first := post(tinySpec)
	id, _ := first["id"].(string)
	if id == "" || first["fresh"] != true {
		t.Fatalf("fresh submit came back %v", first)
	}
	waitState(t, srv, id, StateDone)
	csv1 := fetch(t, ts.URL+"/jobs/"+id+"/result")
	if executed := metric(t, srv, "points_executed"); executed != 6 {
		t.Fatalf("cold sweep executed %v points, want 6", executed)
	}

	// A subset sweep shares every point: zero new simulations.
	sub := post(`{"kind":"tile","scale":0.01,"nodes":2,"runs":1,"tiles":[1200,1800]}`)
	subID, _ := sub["id"].(string)
	if subID == id {
		t.Fatal("subset spec deduped onto the superset job")
	}
	st := waitState(t, srv, subID, StateDone)
	if st.Cached != 4 { // 2 backends x 2 tiles
		t.Errorf("subset sweep hit %d cached points, want 4", st.Cached)
	}
	if hits := metric(t, srv, "cache_hits"); hits != 4 {
		t.Errorf("cache_hits = %v, want 4", hits)
	}
	if executed := metric(t, srv, "points_executed"); executed != 6 {
		t.Errorf("subset sweep re-simulated: points_executed = %v, want still 6", executed)
	}

	// The original spec under a reordered spelling lands on the same job...
	again := post(`{"runs":1,"scale":0.01,"kind":"tile","nodes":2}`)
	if again["id"] != id || again["fresh"] != false {
		t.Fatalf("resubmit did not dedup: %v", again)
	}
	// ...and its CSV is byte-identical to the miss path's.
	csv2 := fetch(t, ts.URL+"/jobs/"+id+"/result")
	if !bytes.Equal(csv1, csv2) {
		t.Errorf("warm CSV differs from cold CSV:\n%s\nvs\n%s", csv1, csv2)
	}
	if !bytes.HasPrefix(csv1, []byte("backend,nodes,tile,mt,")) {
		t.Errorf("unexpected CSV header: %.80s", csv1)
	}
}

func TestServerCancelMidSweep(t *testing.T) {
	srv := newTestServer(t, t.TempDir())
	defer srv.Close()

	// Big enough that it cannot finish before the cancel lands.
	st, fresh, err := srv.Submit([]byte(`{"kind":"nodes","scale":0.05,"runs":5}`))
	if err != nil || !fresh {
		t.Fatalf("submit: %v fresh=%v", err, fresh)
	}
	ch, off, _, err := srv.Subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer off()
	// Wait until the job is actually running, then cancel mid-sweep.
	for ev := range ch {
		if ev.Type == "state" && ev.State == StateRunning {
			break
		}
	}
	if _, err := srv.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	fin := waitState(t, srv, st.ID, StateCancelled)
	if fin.Done >= fin.Points {
		t.Errorf("cancelled job completed all %d points", fin.Points)
	}
	if v := metric(t, srv, "jobs_cancelled"); v != 1 {
		t.Errorf("jobs_cancelled = %v, want 1", v)
	}
}

// TestServerRestartResume is the checkpoint acceptance test: a server killed
// mid-sweep resumes after restart and finishes without re-simulating the
// points the first incarnation completed, proven by the points_executed
// counters of both incarnations summing to exactly the sweep size.
func TestServerRestartResume(t *testing.T) {
	dir := t.TempDir()
	srv1 := newTestServer(t, dir)

	// 14 points: N=18000, 2 backends x the 7 paper tiles dividing 18000,
	// 3 runs each — slow enough that Close lands mid-sweep.
	spec := `{"kind":"tile","scale":0.05,"nodes":2,"runs":3}`
	st, _, err := srv1.Submit([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	total := st.Points
	if total != 14 {
		t.Fatalf("spec expands to %d points, want 14", total)
	}
	ch, off, _, err := srv1.Subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Let the first point land, then take the server down mid-sweep.
	for ev := range ch {
		if ev.Type == "point" {
			break
		}
	}
	off()
	srv1.Close()
	executed1 := metric(t, srv1, "points_executed")
	if executed1 < 1 || executed1 >= float64(total) {
		t.Fatalf("first incarnation executed %v points, want a strict mid-sweep prefix", executed1)
	}

	// The restarted server replays the checkpoint and resumes on its own.
	srv2 := newTestServer(t, dir)
	defer srv2.Close()
	if got, err := srv2.Status(st.ID); err != nil || terminal(got.State) && got.State != StateDone {
		t.Fatalf("restarted server sees job as %v (err %v)", got.State, err)
	}
	fin := waitState(t, srv2, st.ID, StateDone)
	if fin.Done != total {
		t.Fatalf("resumed job finished %d/%d points", fin.Done, total)
	}

	executed2 := metric(t, srv2, "points_executed")
	if executed1+executed2 != float64(total) {
		t.Errorf("executed %v + %v points across restarts, want exactly %d (no recomputation)",
			executed1, executed2, total)
	}
	if hits := metric(t, srv2, "cache_hits"); hits != executed1 {
		t.Errorf("resume hit %v cached points, want %v (the first incarnation's work)", hits, executed1)
	}

	// The result is assembled from the shared cache as if never interrupted.
	if _, _, results, err := srv2.Result(st.ID); err != nil || len(results) != total {
		t.Errorf("Result after resume: %d results, err %v", len(results), err)
	}
}

// jsonDecode is a tiny helper so the test reads naturally.
func jsonDecode(r io.Reader, v any) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("decoding %s: %w", data, err)
	}
	return nil
}
