package expd

import (
	"fmt"
	"math"

	"amtlci/internal/bench"
	"amtlci/internal/chaos"
	"amtlci/internal/coll"
	"amtlci/internal/core/stack"
	"amtlci/internal/fabric"
	"amtlci/internal/rel"
	"amtlci/internal/stats"
)

// Point kinds. HiCMA points are shared between the tile and nodes sweep
// families: the same (backend, n, nb, nodes, …) configuration is the same
// cache entry no matter which spec asked for it.
const (
	PointHiCMA = "hicma"
	PointColl  = "coll"
	PointChaos = "chaos"
)

// Point is one self-contained unit of simulation: everything needed to
// reproduce one sweep point, fully resolved (no defaults left). Its
// canonical JSON encoding is its cache key (Hash).
type Point struct {
	Kind    string `json:"kind"`
	Backend string `json:"backend"`

	// HiCMA points.
	N          int  `json:"n,omitempty"`
	NB         int  `json:"nb,omitempty"`
	Nodes      int  `json:"nodes,omitempty"`
	MT         bool `json:"mt,omitempty"`
	SyncClocks bool `json:"sync_clocks,omitempty"`
	Steal      bool `json:"steal,omitempty"`
	// Shards > 1 simulates the point on a sharded parallel domain. The
	// result is identical to serial, but the field still participates in
	// the cache key: a hash that ignored it could not prove that, and
	// differential tests deliberately compare across shard counts.
	Shards int `json:"shards,omitempty"`
	Runs       int  `json:"runs,omitempty"`
	Discard    int  `json:"discard,omitempty"`

	// Collective points.
	Op    string `json:"op,omitempty"`
	Ranks int    `json:"ranks,omitempty"`
	Size  int64  `json:"size,omitempty"`
	Iters int    `json:"iters,omitempty"`

	// Chaos points: one point per (backend, workload) carries the whole
	// rate sweep, because every rate's slowdown is relative to the same
	// fault-free baseline measured inside the point.
	Workload string    `json:"workload,omitempty"`
	Rates    []float64 `json:"rates,omitempty"` // percent

	Seed uint64 `json:"seed,omitempty"`
}

// CollRow is one algorithm measurement of a collective point: each concrete
// algorithm plus the selector's "auto" pick.
type CollRow struct {
	Algo   string  `json:"algo"`
	Picked string  `json:"picked"`
	TimeUS float64 `json:"time_us"`
}

// ChaosRow is one fault rate of a chaos point.
type ChaosRow struct {
	RatePct     float64 `json:"rate_pct"`
	MakespanNS  int64   `json:"makespan_ns"`
	Slowdown    float64 `json:"slowdown"`
	Dropped     uint64  `json:"dropped"`
	Duplicated  uint64  `json:"duplicated"`
	Corrupted   uint64  `json:"corrupted"`
	Retransmits uint64  `json:"retransmits"`
	Verified    bool    `json:"verified"`
	Err         string  `json:"err,omitempty"`
}

// ChaosPointResult is a chaos point's baseline plus its rate sweep.
type ChaosPointResult struct {
	BaselineNS int64      `json:"baseline_ns"`
	Rows       []ChaosRow `json:"rows"`
}

// PointResult is the outcome of one point, discriminated by which field is
// set. Its canonical JSON encoding is what the cache stores; because the
// simulation is deterministic, the cached bytes are byte-identical to what
// a re-simulation would produce.
type PointResult struct {
	HiCMA *bench.HiCMAResult `json:"hicma,omitempty"`
	Coll  []CollRow          `json:"coll,omitempty"`
	Chaos *ChaosPointResult  `json:"chaos,omitempty"`
}

// finite maps NaN and infinities to 0 so results stay JSON-encodable.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// EvalPoint simulates one point from scratch. Validation happens at spec
// canonicalization; a panic out of the simulator (which signals a
// misconfiguration, not an input error) is converted to an error so a
// long-running service survives it.
func EvalPoint(p Point) (res PointResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("expd: point %s: %v", p.Hash()[:12], r)
		}
	}()
	b, perr := stack.ParseBackend(p.Backend)
	if perr != nil {
		return PointResult{}, perr
	}
	switch p.Kind {
	case PointHiCMA:
		o := bench.DefaultHiCMAOpts(b, p.NB, p.Nodes)
		o.N = p.N
		o.MT = p.MT
		o.SyncClocks = p.SyncClocks
		o.Steal = p.Steal
		o.Shards = p.Shards
		o.Runs = stats.Methodology{Runs: p.Runs, Discard: p.Discard}
		if p.Seed != 0 {
			o.Seed = p.Seed
		}
		r := bench.HiCMA(o)
		// A single-tile problem (nb == n) exchanges no messages, so latency
		// means come back NaN; JSON cannot carry NaN, so "no samples"
		// becomes 0 in the cached result.
		r.TimeToSolution = finite(r.TimeToSolution)
		r.E2ELatencyMS = finite(r.E2ELatencyMS)
		r.HopLatencyMS = finite(r.HopLatencyMS)
		r.AvgRank = finite(r.AvgRank)
		return PointResult{HiCMA: &r}, nil

	case PointColl:
		_, k, kerr := parseOp(p.Op)
		if kerr != nil {
			return PointResult{}, kerr
		}
		rows := make([]CollRow, 0, 4)
		measure := func(algo coll.Algorithm) bench.CollResult {
			o := bench.DefaultCollOpts(b, k, p.Ranks, p.Size)
			o.Algo = algo
			o.Iters = p.Iters
			if p.Seed != 0 {
				o.Seed = p.Seed
			}
			return bench.Collective(o)
		}
		for _, a := range coll.Algorithms(k) {
			r := measure(a)
			rows = append(rows, CollRow{Algo: a.String(), Picked: r.Picked.String(),
				TimeUS: r.Time.Seconds() * 1e6})
		}
		auto := measure(coll.Auto)
		rows = append(rows, CollRow{Algo: "auto", Picked: auto.Picked.String(),
			TimeUS: auto.Time.Seconds() * 1e6})
		return PointResult{Coll: rows}, nil

	case PointChaos:
		_, w, werr := parseWorkload(p.Workload)
		if werr != nil {
			return PointResult{}, werr
		}
		base := chaos.Run(chaos.Opts{Backend: b, Workload: w})
		if base.Err != nil {
			return PointResult{}, fmt.Errorf("expd: fault-free baseline broken: %w", base.Err)
		}
		out := &ChaosPointResult{BaselineNS: int64(base.Makespan)}
		seed := p.Seed
		if seed == 0 {
			seed = 0xC7A05 // cmd/chaos's default schedule seed
		}
		for _, pct := range p.Rates {
			r := pct / 100
			rc := rel.DefaultConfig()
			res := chaos.Run(chaos.Opts{
				Backend: b, Workload: w,
				Faults: &fabric.FaultConfig{Drop: r, Duplicate: r, Corrupt: r, Reorder: r, Seed: seed},
				Rel:    &rc,
			})
			row := ChaosRow{
				RatePct:    pct,
				MakespanNS: int64(res.Makespan),
				Slowdown:   float64(res.Makespan) / float64(base.Makespan),
				Dropped:    res.Faults.Dropped, Duplicated: res.Faults.Duplicated,
				Corrupted: res.Faults.Corrupted, Retransmits: res.Rel.Retransmits,
				Verified: res.Verified,
			}
			if res.Err != nil {
				row.Err = res.Err.Error()
			}
			out.Rows = append(out.Rows, row)
		}
		return PointResult{Chaos: out}, nil
	}
	return PointResult{}, fmt.Errorf("expd: unknown point kind %q", p.Kind)
}
