package expd

// Job lifecycle states. A job is the unit of submission: one canonical spec,
// expanded to its sweep points. The job ID is the spec's content address, so
// resubmitting the same experiment (under any equivalent spelling) lands on
// the same job instead of a duplicate run.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Job is the server's record of one submitted sweep. All mutable fields are
// guarded by the server mutex.
type Job struct {
	ID     string
	Spec   Spec
	Points []Point

	state  string
	errMsg string
	done   int // points completed in the current (or last) run
	cached int // of those, served from the cache

	cancel func() // non-nil exactly while running
	// userCancelled distinguishes an explicit cancel (job stays cancelled)
	// from a server shutdown (job is re-queued in the checkpoint so a
	// restarted server resumes it).
	userCancelled bool
}

// JobStatus is the wire form of a job's state.
type JobStatus struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	State  string `json:"state"`
	Points int    `json:"points"`
	Done   int    `json:"done"`
	Cached int    `json:"cached"`
	Error  string `json:"error,omitempty"`
}

func (j *Job) statusLocked() JobStatus {
	return JobStatus{
		ID: j.ID, Kind: j.Spec.Kind, State: j.state,
		Points: len(j.Points), Done: j.done, Cached: j.cached, Error: j.errMsg,
	}
}

func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// Event is one NDJSON progress record on a job's stream. Type is "state"
// (lifecycle transition) or "point" (one sweep point finished).
type Event struct {
	Type      string `json:"type"`
	Job       string `json:"job"`
	State     string `json:"state,omitempty"`
	Index     int    `json:"index,omitempty"`
	Total     int    `json:"total"`
	Done      int    `json:"done"`
	Cached    bool   `json:"cached,omitempty"`
	ElapsedUS int64  `json:"elapsed_us,omitempty"`
	Error     string `json:"error,omitempty"`
}
