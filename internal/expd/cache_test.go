package expd

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// testHash derives a distinct valid content address from an index.
func testHash(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("cache-test-%d", i)))
	return hex.EncodeToString(sum[:])
}

func payload(i int) []byte {
	return []byte(fmt.Sprintf(`{"entry":%d}`, i))
}

// TestCacheLRUBoundEvictsOldest: filling a bounded cache past its limit
// evicts the oldest entries — index, file, and all — and counts them.
func TestCacheLRUBoundEvictsOldest(t *testing.T) {
	c, err := OpenCacheBounded(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := c.Put(testHash(i), payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Evictions(); got != 2 {
		t.Fatalf("evictions = %d, want 2", got)
	}
	if got := c.Len(); got != 4 {
		t.Fatalf("tracked entries = %d, want 4", got)
	}
	for i := 0; i < 2; i++ {
		if c.Has(testHash(i)) {
			t.Fatalf("entry %d survived eviction", i)
		}
	}
	for i := 2; i < 6; i++ {
		data, ok := c.Get(testHash(i))
		if !ok || !bytes.Equal(data, payload(i)) {
			t.Fatalf("entry %d: ok=%v data=%q, want %q", i, ok, data, payload(i))
		}
	}
}

// TestCacheGetTouchesRecency: a Get refreshes an entry's recency, so the
// eviction victim is the least-recently-USED entry, not the oldest write.
func TestCacheGetTouchesRecency(t *testing.T) {
	c, err := OpenCacheBounded(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Put(testHash(i), payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Get(testHash(0)); !ok {
		t.Fatal("warm entry 0 missing")
	}
	if err := c.Put(testHash(3), payload(3)); err != nil {
		t.Fatal(err)
	}
	if c.Has(testHash(1)) {
		t.Fatal("entry 1 (LRU) should have been evicted")
	}
	for _, i := range []int{0, 2, 3} {
		if !c.Has(testHash(i)) {
			t.Fatalf("entry %d evicted, want kept", i)
		}
	}
}

// TestCacheWarmReadAfterEviction is the correctness property that makes
// bounding safe: an evicted point reads as a miss, re-filling it (what a
// re-simulation would do — results are pure functions of their point)
// restores byte-identical content, and the warm read returns it intact.
func TestCacheWarmReadAfterEviction(t *testing.T) {
	c, err := OpenCacheBounded(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	victim := testHash(0)
	res := PointResult{Coll: []CollRow{{Algo: "auto", Picked: "rdb", TimeUS: 42.5}}}
	if err := c.PutResult(victim, res); err != nil {
		t.Fatal(err)
	}
	first, ok := c.Get(victim)
	if !ok {
		t.Fatal("fresh entry missing")
	}
	first = append([]byte(nil), first...)

	// Push the victim out.
	for i := 1; i <= 2; i++ {
		if err := c.Put(testHash(i), payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions())
	}
	if _, ok := c.GetResult(victim); ok {
		t.Fatal("evicted entry still reads")
	}

	// Re-fill (the re-simulation a real miss triggers) and read warm.
	if err := c.PutResult(victim, res); err != nil {
		t.Fatal(err)
	}
	second, ok := c.Get(victim)
	if !ok {
		t.Fatal("re-filled entry missing")
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("re-filled bytes differ:\n first %s\n second %s", first, second)
	}
	back, ok := c.GetResult(victim)
	if !ok || !reflect.DeepEqual(back, res) {
		t.Fatalf("warm read after eviction: ok=%v got %+v, want %+v", ok, back, res)
	}
}

// TestCacheReopenSeedsRecencyAndTrims: reopening a bounded cache over an
// existing directory rebuilds the LRU order from file mtimes and enforces
// the (possibly shrunk) bound immediately.
func TestCacheReopenSeedsRecencyAndTrims(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir) // unbounded fill
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 5; i++ {
		h := testHash(i)
		if err := c.Put(h, payload(i)); err != nil {
			t.Fatal(err)
		}
		// Distinct, ordered mtimes: entry 0 oldest.
		when := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, h[:2], h+".json"), when, when); err != nil {
			t.Fatal(err)
		}
	}

	b, err := OpenCacheBounded(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b.Evictions() != 2 {
		t.Fatalf("evictions at open = %d, want 2", b.Evictions())
	}
	for i := 0; i < 2; i++ {
		if b.Has(testHash(i)) {
			t.Fatalf("oldest entry %d survived the reopen trim", i)
		}
	}
	for i := 2; i < 5; i++ {
		if data, ok := b.Get(testHash(i)); !ok || !bytes.Equal(data, payload(i)) {
			t.Fatalf("entry %d lost by the reopen trim", i)
		}
	}
	if b.Len() != 3 {
		t.Fatalf("tracked entries = %d, want 3", b.Len())
	}
}
